(* An interactive shell over the TSE system: define views, evolve them
   transparently, inspect extents and history, create and update objects.

   $ tse_cli repl --schema university
   tse> view VS = Person, Student, TA
   tse> add_attribute register:bool to Student in VS
   tse> show VS
   tse> create Student in VS name="ada" register=true
   tse> history VS
*)

open Tse_store
open Tse_schema
open Tse_db
open Tse_views
open Tse_core

type session = {
  mutable tsem : Tsem.t;
  mutable indexes : Tse_query.Indexes.t;
  mutable last_error : string option;
}

let make_session schema seed =
  let db =
    match schema with
    | "university" -> (Tse_workload.University.build ()).db
    | "empty" -> Database.create ()
    | "random" ->
      (Tse_workload.Random_schema.generate ~seed ~classes:10 ~objects:20 ()).db
    | other -> failwith (Printf.sprintf "unknown schema %S" other)
  in
  { tsem = Tsem.of_database db; indexes = Tse_query.Indexes.create db;
    last_error = None }

(* ---------------- tiny parser helpers ---------------- *)

let strip s = String.trim s

let split_commas s =
  String.split_on_char ',' s |> List.map strip |> List.filter (( <> ) "")

let parse_ty = function
  | "int" -> Value.TInt
  | "string" -> Value.TString
  | "bool" -> Value.TBool
  | "float" -> Value.TFloat
  | other -> failwith (Printf.sprintf "unknown type %s (int|string|bool|float)" other)

let parse_value raw =
  let raw = strip raw in
  if raw = "true" then Value.Bool true
  else if raw = "false" then Value.Bool false
  else if raw = "null" then Value.Null
  else if String.length raw >= 2 && raw.[0] = '"' then
    Value.String (String.sub raw 1 (String.length raw - 2))
  else
    match int_of_string_opt raw with
    | Some i -> Value.Int i
    | None -> (
      match float_of_string_opt raw with
      | Some f -> Value.Float f
      | None -> Value.String raw)

(* name=value pairs separated by spaces (values may be quoted without
   spaces inside) *)
let parse_assignments tokens =
  List.filter_map
    (fun tok ->
      match String.index_opt tok '=' with
      | None -> None
      | Some i ->
        Some
          ( String.sub tok 0 i,
            parse_value (String.sub tok (i + 1) (String.length tok - i - 1)) ))
    tokens

let words s =
  String.split_on_char ' ' s |> List.map strip |> List.filter (( <> ) "")

(* ---------------- commands ---------------- *)

let db s = Tsem.db s.tsem

let print_view s view =
  Format.printf "%a" (Generation.pp (Database.graph (db s))) view;
  Format.print_flush ()

let cmd_view s rest =
  (* view NAME = C1, C2, ... *)
  match String.index_opt rest '=' with
  | None -> failwith "usage: view NAME = Class1, Class2, ..."
  | Some i ->
    let name = strip (String.sub rest 0 i) in
    let classes = split_commas (String.sub rest (i + 1) (String.length rest - i - 1)) in
    let v = Tsem.define_view_by_names s.tsem ~name classes in
    Printf.printf "defined %s (version %d, %d classes)\n" name
      v.View_schema.version (View_schema.size v)

let find_view s name = Tsem.current s.tsem name

let cmd_show s rest =
  match words rest with
  | [ name ] ->
    let v = find_view s name in
    print_view s v
  | [] ->
    (* no argument: the global schema *)
    Format.printf "%a" Schema_graph.pp (Database.graph (db s));
    Format.print_flush ()
  | _ -> failwith "usage: show [VIEW]"

let cmd_type s rest =
  match words rest with
  | [ cls; "in"; vname ] ->
    let v = find_view s vname in
    let cid = View_schema.cid_of_exn v cls in
    let g = Database.graph (db s) in
    List.iter
      (fun (n, e) -> Format.printf "  %s = %a@." n Type_info.pp_entry e)
      (Type_info.full_type g cid);
    Format.print_flush ()
  | _ -> failwith "usage: type CLASS in VIEW"

let cmd_extent s rest =
  match words rest with
  | [ cls; "in"; vname ] ->
    let v = find_view s vname in
    let cid = View_schema.cid_of_exn v cls in
    let objs = Database.extent_list (db s) cid in
    Printf.printf "%d object(s): %s\n" (List.length objs)
      (String.concat ", " (List.map Oid.to_string objs))
  | _ -> failwith "usage: extent CLASS in VIEW"

let cmd_create s rest =
  match words rest with
  | cls :: "in" :: vname :: assignments ->
    let v = find_view s vname in
    let cid = View_schema.cid_of_exn v cls in
    let init = parse_assignments assignments in
    let o = Tse_update.Generic.create (db s) cid ~init in
    Printf.printf "created %s\n" (Oid.to_string o)
  | _ -> failwith "usage: create CLASS in VIEW [attr=value ...]"

let cmd_set s rest =
  match words rest with
  | oid :: assignments when String.length oid > 1 && oid.[0] = '#' ->
    let o = Oid.of_int (int_of_string (String.sub oid 1 (String.length oid - 1))) in
    Tse_update.Generic.set (db s) [ o ] (parse_assignments assignments);
    Printf.printf "ok\n"
  | _ -> failwith "usage: set #OID attr=value ..."

let cmd_get s rest =
  match words rest with
  | [ oid; attr ] when String.length oid > 1 && oid.[0] = '#' ->
    let o = Oid.of_int (int_of_string (String.sub oid 1 (String.length oid - 1))) in
    Format.printf "%a@." Value.pp (Database.get_prop (db s) o attr);
    Format.print_flush ()
  | _ -> failwith "usage: get #OID attr"

let evolve s vname change =
  let v = Tsem.evolve s.tsem ~view:vname change in
  Printf.printf "%s evolved to version %d\n" vname v.View_schema.version

let cmd_add_attribute s rest =
  (* add_attribute name:ty to CLASS in VIEW *)
  match words rest with
  | [ spec; "to"; cls; "in"; vname ] -> begin
    match String.split_on_char ':' spec with
    | [ attr; ty ] ->
      evolve s vname
        (Change.Add_attribute { cls; def = Change.attr attr (parse_ty ty) })
    | _ -> failwith "attribute spec must be name:type"
  end
  | _ -> failwith "usage: add_attribute name:type to CLASS in VIEW"

let cmd_delete_attribute s rest =
  match words rest with
  | [ attr; "from"; cls; "in"; vname ] ->
    evolve s vname (Change.Delete_attribute { cls; attr_name = attr })
  | _ -> failwith "usage: delete_attribute name from CLASS in VIEW"

let cmd_add_edge s rest =
  match words rest with
  | [ sup; sub; "in"; vname ] -> evolve s vname (Change.Add_edge { sup; sub })
  | _ -> failwith "usage: add_edge SUP SUB in VIEW"

let cmd_delete_edge s rest =
  match words rest with
  | [ sup; sub; "in"; vname ] ->
    evolve s vname (Change.Delete_edge { sup; sub; connected_to = None })
  | [ sup; sub; "connected_to"; upper; "in"; vname ] ->
    evolve s vname (Change.Delete_edge { sup; sub; connected_to = Some upper })
  | _ -> failwith "usage: delete_edge SUP SUB [connected_to UPPER] in VIEW"

let cmd_add_class s rest =
  match words rest with
  | [ cls; "in"; vname ] -> evolve s vname (Change.Add_class { cls; connected_to = None })
  | [ cls; "under"; sup; "in"; vname ] ->
    evolve s vname (Change.Add_class { cls; connected_to = Some sup })
  | _ -> failwith "usage: add_class NAME [under SUP] in VIEW"

let cmd_delete_class s rest =
  match words rest with
  | [ cls; "in"; vname ] -> evolve s vname (Change.Delete_class { cls })
  | [ cls; "fully"; "in"; vname ] -> evolve s vname (Change.Delete_class_2 { cls })
  | _ -> failwith "usage: delete_class NAME [fully] in VIEW"

let cmd_insert_class s rest =
  match words rest with
  | [ cls; "between"; sup; sub; "in"; vname ] ->
    evolve s vname (Change.Insert_class { cls; sup; sub })
  | _ -> failwith "usage: insert_class NAME between SUP SUB in VIEW"

(* from CLASS in VIEW where <expr>, shared by select and explain *)
let parse_query s usage rest =
  match words rest with
  | "from" :: cls :: "in" :: vname :: "where" :: _ ->
    let v = find_view s vname in
    let cid = View_schema.cid_of_exn v cls in
    let where_pos =
      (* everything after the first " where " is the predicate text *)
      let marker = " where " in
      let rec find i =
        if i + String.length marker > String.length rest then
          failwith "missing where clause"
        else if String.sub rest i (String.length marker) = marker then
          i + String.length marker
        else find (i + 1)
      in
      find 0
    in
    let pred =
      Tse_algebra.Surface.parse_expr
        (String.sub rest where_pos (String.length rest - where_pos))
    in
    (cid, pred)
  | _ -> failwith usage

let cmd_select s rest =
  let cid, pred =
    parse_query s "usage: select from CLASS in VIEW where EXPR" rest
  in
  let ex, hits = Tse_query.Engine.select_explain (db s) s.indexes cid pred in
  Format.printf "plan: %a@." Tse_query.Engine.pp_plan ex.Tse_query.Engine.ex_plan;
  Printf.printf "%d object(s): %s\n" (Oid.Set.cardinal hits)
    (String.concat ", " (List.map Oid.to_string (Oid.Set.elements hits)))

let cmd_explain s rest =
  let cid, pred =
    parse_query s "usage: explain from CLASS in VIEW where EXPR" rest
  in
  let ex = Tse_query.Engine.explain (db s) s.indexes cid pred in
  Format.printf "%a@." Tse_query.Engine.pp_explain ex

let cmd_lint s rest =
  let report = Tse_analysis.Analysis.analyze (Database.graph (db s)) in
  (match words rest with
  | [] | [ "text" ] ->
    Format.printf "%a" Tse_analysis.Analysis.pp_report report;
    Format.print_flush ()
  | [ "json" ] -> print_endline (Tse_analysis.Analysis.report_to_json report)
  | _ -> failwith "usage: lint [json]");
  report

let cmd_stats rest =
  let samples = Tse_obs.Metrics.snapshot () in
  let domains = Tse_pool.Pool.size (Tse_pool.Pool.global ()) in
  let host_cores = Domain.recommended_domain_count () in
  match words rest with
  | [] | [ "text" ] ->
    Printf.printf "# domains %d of %d host cores\n" domains host_cores;
    Format.printf "%a" Tse_obs.Metrics.pp_text samples
  | [ "json" ] ->
    Printf.printf "{\"domains\": %d, \"host_cores\": %d, \"registry\": %s}\n"
      domains host_cores
      (Tse_obs.Metrics.to_json samples)
  | _ -> failwith "usage: stats [json]"

let cmd_index s rest =
  let build kind kname cls attr vname =
    let v = find_view s vname in
    let cid = View_schema.cid_of_exn v cls in
    Tse_query.Indexes.ensure ~kind s.indexes cid attr;
    Printf.printf "%s index built on %s.%s (%d bytes overhead)\n" kname cls
      attr
      (Tse_query.Indexes.overhead_bytes s.indexes)
  in
  match words rest with
  | [ cls; attr; "in"; vname ] ->
    build Tse_query.Indexes.Hash "hash" cls attr vname
  | [ "range"; cls; attr; "in"; vname ] ->
    build Tse_query.Indexes.Ordered "range" cls attr vname
  | _ -> failwith "usage: index [range] CLASS ATTR in VIEW"

let cmd_populate s rest =
  match words rest with
  | [ n ] ->
    let n = int_of_string n in
    let g = Database.graph (db s) in
    (* only meaningful on the university schema *)
    (match Schema_graph.find_by_name g "Person" with
    | None -> failwith "populate requires the university schema"
    | Some _ ->
      let u =
        {
          Tse_workload.University.db = db s;
          person = (Schema_graph.find_by_name_exn g "Person").cid;
          student = (Schema_graph.find_by_name_exn g "Student").cid;
          staff = (Schema_graph.find_by_name_exn g "Staff").cid;
          teaching_staff = (Schema_graph.find_by_name_exn g "TeachingStaff").cid;
          support_staff = (Schema_graph.find_by_name_exn g "SupportStaff").cid;
          ta = (Schema_graph.find_by_name_exn g "TA").cid;
          grad = (Schema_graph.find_by_name_exn g "Grad").cid;
          grader = (Schema_graph.find_by_name_exn g "Grader").cid;
        }
      in
      ignore (Tse_workload.University.populate u ~n);
      Printf.printf "created %d objects (%d total)\n" n
        (Database.object_count (db s)))
  | _ -> failwith "usage: populate N"

let cmd_rename s rest =
  match words rest with
  | [ old_name; "to"; new_name; "in"; vname ] ->
    evolve s vname (Change.Rename_class { old_name; new_name })
  | _ -> failwith "usage: rename OLD to NEW in VIEW"

let cmd_history s rest =
  match words rest with
  | [ vname ] ->
    List.iter
      (fun (v : View_schema.t) ->
        Printf.printf "  VS.%d: %s\n" v.version
          (String.concat ", "
             (List.filter_map (View_schema.local_name v) (View_schema.classes v))))
      (History.versions (Tsem.history s.tsem) vname)
  | _ -> failwith "usage: history VIEW"

let cmd_merge s rest =
  match words rest with
  | [ v1; v2; "as"; name ] ->
    let merged = Merge.merge_current s.tsem ~view1:v1 ~view2:v2 ~new_name:name in
    Printf.printf "merged into %s (%d classes)\n" name (View_schema.size merged)
  | _ -> failwith "usage: merge VIEW1 VIEW2 as NAME"

let cmd_check s =
  match Database.check (db s) with
  | [] -> Printf.printf "database consistent\n"
  | problems -> List.iter (Printf.printf "PROBLEM: %s\n") problems

let cmd_save s rest =
  match words rest with
  | [ path ] ->
    Catalog.save ~history:(Tsem.history s.tsem) (db s) path;
    Printf.printf "catalog (schema + objects + view history) written to %s\n" path
  | _ -> failwith "usage: save PATH"

let cmd_load s rest =
  match words rest with
  | [ path ] ->
    let db', history' = Catalog.load path in
    let tsem' = Tsem.of_database db' in
    List.iter
      (fun name ->
        List.iter
          (fun v -> History.register (Tsem.history tsem') v)
          (History.versions history' name))
      (History.view_names history');
    s.tsem <- tsem';
    s.indexes <- Tse_query.Indexes.create db';
    Printf.printf "catalog loaded: %d classes, %d objects, %d view version(s)\n"
      (Schema_graph.size (Database.graph db'))
      (Database.object_count db')
      (History.total_versions (Tsem.history tsem'))
  | _ -> failwith "usage: load PATH"

let cmd_define s line =
  let cid = Tse_algebra.Surface.define (db s) line in
  Printf.printf "defined virtual class %s\n"
    (Schema_graph.name_of (Database.graph (db s)) cid)

let help () =
  List.iter print_endline
    [
      "commands:";
      "  view NAME = C1, C2, ...            define a view (version 0)";
      "  show [VIEW]                        print a view (or the global schema)";
      "  type CLASS in VIEW                 full type of a class";
      "  extent CLASS in VIEW               members of a class";
      "  create CLASS in VIEW a=v ...       create an object through the view";
      "  set #OID a=v ...                   update attributes";
      "  get #OID a                         read an attribute or method";
      "  add_attribute n:ty to C in VIEW    transparent schema change";
      "  delete_attribute n from C in VIEW";
      "  add_edge SUP SUB in VIEW";
      "  delete_edge SUP SUB [connected_to U] in VIEW";
      "  add_class N [under SUP] in VIEW";
      "  insert_class N between SUP SUB in VIEW";
      "  delete_class N [fully] in VIEW";
      "  rename OLD to NEW in VIEW          view-local class renaming";
      "  history VIEW                       all registered versions";
      "  merge V1 V2 as NAME                Section 7 version merging";
      "  defineVC N as (select from C where ...)   object-algebra view class";
      "  select from C in VIEW where EXPR   run a query (shows the plan)";
      "  explain from C in VIEW where EXPR  compiled plan, index kind, conjunct";
      "                                     order, plan-cache hit/miss, rows";
      "  index C ATTR in VIEW               build a maintained hash index";
      "  index range C ATTR in VIEW         build a maintained range index";
      "  lint [json]                        static analysis of the global schema";
      "  stats [json]                       dump the metrics registry";
      "  check                              run the consistency oracle";
      "  save PATH / load PATH              persist / restore the whole catalog";
      "  help | quit";
    ]

let execute s line =
  let line = strip line in
  if line = "" then ()
  else
    let cmd, rest =
      match String.index_opt line ' ' with
      | None -> (line, "")
      | Some i ->
        (String.sub line 0 i, strip (String.sub line (i + 1) (String.length line - i - 1)))
    in
    match cmd with
    | "quit" | "exit" -> () (* handled by the repl loop; no-op in scripts *)
    | "view" -> cmd_view s rest
    | "show" -> cmd_show s rest
    | "type" -> cmd_type s rest
    | "extent" -> cmd_extent s rest
    | "create" -> cmd_create s rest
    | "set" -> cmd_set s rest
    | "get" -> cmd_get s rest
    | "add_attribute" -> cmd_add_attribute s rest
    | "delete_attribute" -> cmd_delete_attribute s rest
    | "add_edge" -> cmd_add_edge s rest
    | "delete_edge" -> cmd_delete_edge s rest
    | "add_class" -> cmd_add_class s rest
    | "insert_class" -> cmd_insert_class s rest
    | "delete_class" -> cmd_delete_class s rest
    | "populate" -> cmd_populate s rest
    | "select" -> cmd_select s rest
    | "explain" -> cmd_explain s rest
    | "lint" -> ignore (cmd_lint s rest)
    | "stats" -> cmd_stats rest
    | "index" -> cmd_index s rest
    | "rename" -> cmd_rename s rest
    | "history" -> cmd_history s rest
    | "merge" -> cmd_merge s rest
    | "check" -> cmd_check s
    | "save" -> cmd_save s rest
    | "load" -> cmd_load s rest
    | "defineVC" -> cmd_define s line
    | "help" -> help ()
    | other -> failwith (Printf.sprintf "unknown command %s (try help)" other)

let run_line s line =
  match execute s line with
  | () -> ()
  | exception Failure m | exception Invalid_argument m ->
    s.last_error <- Some m;
    Printf.printf "error: %s\n" m
  | exception Change.Rejected m ->
    s.last_error <- Some m;
    Printf.printf "change rejected: %s\n" m
  | exception Tse_update.Generic.Rejected m ->
    s.last_error <- Some m;
    Printf.printf "update rejected: %s\n" m
  | exception Expr.Type_error m ->
    s.last_error <- Some m;
    Printf.printf "type error: %s\n" m
  | exception Expr.Unknown_property p ->
    let m = Printf.sprintf "unknown property %s" p in
    s.last_error <- Some m;
    Printf.printf "error: %s\n" m
  | exception Tse_algebra.Ops.Error m ->
    s.last_error <- Some m;
    Printf.printf "algebra error: %s\n" m
  | exception Tse_algebra.Surface.Parse_error m ->
    s.last_error <- Some m;
    Printf.printf "parse error: %s\n" m

let repl schema seed script =
  let s = make_session schema seed in
  Printf.printf "TSE shell — schema %s loaded (%d classes); type 'help'\n" schema
    (Schema_graph.size (Database.graph (db s)));
  (match script with
  | Some path ->
    let ic = open_in path in
    (try
       while true do
         let line = input_line ic in
         Printf.printf "tse> %s\n" line;
         run_line s line
       done
     with End_of_file -> close_in ic)
  | None -> ());
  let rec loop () =
    Printf.printf "tse> %!";
    match In_channel.input_line stdin with
    | None | Some "quit" | Some "exit" -> Printf.printf "bye\n"
    | Some line ->
      run_line s line;
      loop ()
  in
  loop ()

(* ---------------- durability commands ---------------- *)

let print_report report =
  Format.printf "%a@." Tse_store.Recovery.pp_report report

(* A corrupt snapshot or an unusable path is an expected operator-facing
   error, not a crash: report it and exit 2. *)
let open_durable dir =
  try Durable.open_dir ~dir () with
  | Failure msg ->
    Printf.eprintf "error: %s\n" msg;
    exit 2
  | Unix.Unix_error (e, _, path) ->
    Printf.eprintf "error: %s: %s\n" path (Unix.error_message e);
    exit 2

let recover dir =
  let d, report = open_durable dir in
  print_report report;
  let db = Durable.db d in
  Printf.printf "state: %d classes, %d objects, last batch %d\n"
    (Schema_graph.size (Database.graph db))
    (Database.object_count db) (Durable.seq d);
  (match Database.check db with
  | [] ->
    Printf.printf "database consistent\n";
    Durable.close d
  | problems ->
    List.iter (Printf.printf "PROBLEM: %s\n") problems;
    Durable.close d;
    exit 1)

let checkpoint dir =
  let d, report = open_durable dir in
  print_report report;
  Durable.checkpoint d;
  Printf.printf "checkpoint written: snapshot at batch %d, log reset\n"
    (Durable.seq d);
  Durable.close d

(* ---------------- chaos soak ---------------- *)

let soak dir steps crashes seed out save_catalog =
  let dir =
    match dir with
    | Some d -> d
    | None ->
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tse_soak_%d" (Unix.getpid ()))
  in
  let cfg = { (Tse_workload.Soak.default ~dir) with steps; crashes; seed } in
  Printf.printf "soak: seed=%d steps=%d crashes=%d dir=%s\n%!" seed steps
    crashes dir;
  let o = Tse_workload.Soak.run cfg in
  Format.printf "%a@." Tse_workload.Soak.pp_outcome o;
  (match out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Tse_workload.Soak.to_json cfg o);
    close_out oc;
    Printf.printf "wrote %s\n" path);
  (match save_catalog with
  | None -> ()
  | Some path ->
    (* re-open the survivor and export it as a portable catalog, so the
       soak-evolved schema can be fed back through [lint --catalog] *)
    let t, _ = Tse_core.Durable_tse.open_dir ~dir () in
    Catalog.save
      ~history:(Tse_core.Durable_tse.history t)
      (Tse_core.Durable_tse.db t)
      path;
    Tse_core.Durable_tse.close t;
    Printf.printf "catalog written to %s\n" path);
  if o.Tse_workload.Soak.violations <> [] then exit 1

(* ---------------- live telemetry ---------------- *)

module Timeseries = Tse_obs.Timeseries
module Telemetry_server = Tse_obs.Telemetry_server
module Trace = Tse_obs.Trace
module Trace_analyze = Tse_obs.Trace_analyze

(* serve-stats = soak with the telemetry plane attached: the sampler
   ticks in the background, the endpoint serves /metrics, /series and
   /rates while the workload runs, and an optional linger window keeps
   the endpoint up after the soak so scrapers race nothing. *)
let serve_stats addr sample_ms dir steps crashes seed out linger_s =
  let ts = Timeseries.create () in
  Timeseries.start ?interval_ms:sample_ms ts;
  let srv =
    match Telemetry_server.start ?addr ~ts () with
    | Ok s -> s
    | Error e ->
      Printf.eprintf "error: cannot serve stats: %s\n" e;
      exit 2
  in
  Printf.printf "serving stats on %s (GET /metrics | /series | /rates)\n%!"
    (Telemetry_server.addr srv);
  let dir =
    match dir with
    | Some d -> d
    | None ->
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tse_serve_stats_%d" (Unix.getpid ()))
  in
  let cfg =
    {
      (Tse_workload.Soak.default ~dir) with
      steps;
      crashes;
      seed;
      sampler = Some ts;
    }
  in
  Printf.printf "soak: seed=%d steps=%d crashes=%d dir=%s\n%!" seed steps
    crashes dir;
  let o = Tse_workload.Soak.run cfg in
  Format.printf "%a@." Tse_workload.Soak.pp_outcome o;
  (match out with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Tse_workload.Soak.to_json cfg o);
    close_out oc;
    Printf.printf "wrote %s\n" path);
  if linger_s > 0 then begin
    Printf.printf "soak done; stats stay scrapeable for %ds\n%!" linger_s;
    Unix.sleepf (float_of_int linger_s)
  end;
  Telemetry_server.stop srv;
  Timeseries.stop ts;
  if o.Tse_workload.Soak.violations <> [] then exit 1

let top addr count interval_ms =
  let addr =
    match addr with Some a -> a | None -> Telemetry_server.default_addr ()
  in
  for i = 1 to count do
    (match Telemetry_server.fetch ~addr ~path:"/rates" with
    | Ok body -> print_string body
    | Error e ->
      Printf.eprintf "error: %s: %s\n" addr e;
      exit 2);
    if i < count then begin
      print_newline ();
      Unix.sleepf (float_of_int interval_ms /. 1000.)
    end
  done

let trace_analyze file mode as_json top_n =
  match Trace.parse_file file with
  | Error e ->
    Printf.eprintf "error: %s: %s\n" file e;
    exit 2
  | Ok (spans, damage) -> (
    (match damage with
    | Some (lineno, msg) ->
      Printf.eprintf
        "warning: trace torn at line %d (%s); analyzing the %d spans before \
         it\n"
        lineno msg (List.length spans)
    | None -> ());
    match mode with
    | "summary" ->
      let stats = Trace_analyze.summary spans in
      if as_json then print_endline (Trace_analyze.summary_json stats)
      else Format.printf "%a" Trace_analyze.pp_summary stats
    | "critical" ->
      let roots =
        Trace_analyze.forest spans
        |> List.stable_sort (fun a b ->
               compare b.Trace_analyze.span.Trace.dur_us
                 a.Trace_analyze.span.Trace.dur_us)
        |> List.filteri (fun i _ -> i < top_n)
      in
      Format.printf "%a" Trace_analyze.pp_critical roots
    | "slow" ->
      Format.printf "%a" Trace_analyze.pp_slow
        (Trace_analyze.slowest ~top:top_n spans)
    | other ->
      Printf.eprintf "error: unknown mode %s (summary|critical|slow)\n" other;
      exit 2)

(* ---------------- static analysis ---------------- *)

let lint format schema seed catalog =
  let db =
    match catalog with
    | Some path -> fst (Catalog.load path)
    | None -> db (make_session schema seed)
  in
  let report = Tse_analysis.Analysis.analyze (Database.graph db) in
  (match format with
  | "text" ->
    Format.printf "%a" Tse_analysis.Analysis.pp_report report;
    Format.print_flush ()
  | "json" -> print_endline (Tse_analysis.Analysis.report_to_json report)
  | other ->
    Printf.eprintf "error: unknown format %s (text|json)\n" other;
    exit 2);
  if not (Tse_analysis.Analysis.is_clean report) then exit 1

open Cmdliner

let schema_arg =
  let doc = "Initial schema: university, random or empty." in
  Arg.(value & opt string "university" & info [ "schema" ] ~doc)

let seed_arg =
  let doc = "Seed for the random schema." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let script_arg =
  let doc = "Execute commands from this file before reading stdin." in
  Arg.(value & opt (some string) None & info [ "script" ] ~doc)

let repl_term = Term.(const repl $ schema_arg $ seed_arg $ script_arg)

let dir_arg =
  let doc = "Durable database directory (snapshot + write-ahead log)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"DIR" ~doc)

let lint_format_arg =
  let doc = "Output format: text or json." in
  Arg.(value & pos 0 string "text" & info [] ~docv:"FORMAT" ~doc)

let catalog_arg =
  let doc =
    "Lint the schema of a saved catalog (see the repl's save command) \
     instead of a built-in one."
  in
  Arg.(value & opt (some string) None & info [ "catalog" ] ~docv:"PATH" ~doc)

let lint_cmd =
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Run the static schema analyzer (expression typechecking + \
          derivation linting) over a database schema and print the \
          diagnostics. Exits 1 if any error-severity diagnostic is \
          reported.")
    Term.(const lint $ lint_format_arg $ schema_arg $ seed_arg $ catalog_arg)

let repl_cmd =
  Cmd.v
    (Cmd.info "repl" ~doc:"Interactive shell (the default command)")
    repl_term

let recover_cmd =
  Cmd.v
    (Cmd.info "recover"
       ~doc:
         "Open a durable database directory, replaying (and if necessary \
          truncating) its write-ahead log, report what was recovered and \
          run the consistency oracle. Exits non-zero if the recovered \
          state is inconsistent.")
    Term.(const recover $ dir_arg)

let checkpoint_cmd =
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:
         "Open a durable database directory and fold its write-ahead log \
          into a fresh snapshot (atomic replace), then reset the log.")
    Term.(const checkpoint $ dir_arg)

let soak_dir_arg =
  let doc =
    "Durable database directory for the soak (a throwaway under the \
     temp dir by default)."
  in
  Arg.(value & opt (some string) None & info [ "dir" ] ~docv:"DIR" ~doc)

let soak_steps_arg =
  let doc = "Evolution attempts to run." in
  Arg.(value & opt int 300 & info [ "steps" ] ~doc)

let soak_crashes_arg =
  let doc = "Mid-evolution crash/recover cycles to inject." in
  Arg.(value & opt int 30 & info [ "crashes" ] ~doc)

let soak_seed_arg =
  let doc = "Scenario seed (the whole run is deterministic in it)." in
  Arg.(value & opt int 42 & info [ "seed" ] ~doc)

let soak_out_arg =
  let doc = "Write the BENCH_scenarios.json document to this path." in
  Arg.(value & opt (some string) None & info [ "out" ] ~docv:"PATH" ~doc)

let soak_save_catalog_arg =
  let doc =
    "After the soak, save the surviving database (schema + objects + \
     view history) as a catalog at this path, suitable for \
     $(b,lint --catalog)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "save-catalog" ] ~docv:"PATH" ~doc)

let soak_cmd =
  Cmd.v
    (Cmd.info "soak"
       ~doc:
         "Run the chaos soak harness: seeded scenarios of view evolutions \
          with OCC reader/writer traffic and crashes injected \
          mid-evolution at every evolve phase and WAL record boundary; \
          after every recovery assert invariants, analyzer cleanliness \
          and equivalence with a never-crashed twin. Exits 1 on any \
          violation.")
    Term.(
      const soak $ soak_dir_arg $ soak_steps_arg $ soak_crashes_arg
      $ soak_seed_arg $ soak_out_arg $ soak_save_catalog_arg)

let addr_arg =
  let doc =
    "Stats endpoint address: HOST:PORT (numeric host; port 0 = kernel \
     picks) or unix:PATH. Defaults to TSE_STATS_ADDR, else 127.0.0.1:9464."
  in
  Arg.(value & opt (some string) None & info [ "addr" ] ~docv:"ADDR" ~doc)

let sample_ms_arg =
  let doc =
    "Sampler tick in milliseconds. Defaults to TSE_SAMPLE_MS, else 250."
  in
  Arg.(value & opt (some int) None & info [ "sample-ms" ] ~docv:"MS" ~doc)

let linger_arg =
  let doc =
    "Keep the endpoint scrapeable this many seconds after the soak ends."
  in
  Arg.(value & opt int 0 & info [ "linger-s" ] ~docv:"SECONDS" ~doc)

let serve_stats_cmd =
  Cmd.v
    (Cmd.info "serve-stats"
       ~doc:
         "Run the chaos soak with the live telemetry plane attached: a \
          background sampler ticks the metrics registry into ring-buffer \
          time-series, and an HTTP endpoint serves Prometheus-style \
          exposition (/metrics), the sampled series (/series) and live \
          headline rates (/rates) while the workload runs. Exits 1 on any \
          soak violation.")
    Term.(
      const serve_stats $ addr_arg $ sample_ms_arg $ soak_dir_arg
      $ soak_steps_arg $ soak_crashes_arg $ soak_seed_arg $ soak_out_arg
      $ linger_arg)

let top_count_arg =
  let doc = "Number of refreshes before exiting." in
  Arg.(value & opt int 5 & info [ "n"; "count" ] ~docv:"N" ~doc)

let top_interval_arg =
  let doc = "Milliseconds between refreshes." in
  Arg.(value & opt int 1000 & info [ "interval-ms" ] ~docv:"MS" ~doc)

let top_cmd =
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Attach to a running serve-stats endpoint and render its live \
          rates (ops/s, fsyncs/commit, memo hit rate, pool utilization).")
    Term.(const top $ addr_arg $ top_count_arg $ top_interval_arg)

let trace_file_arg =
  let doc = "TSE_TRACE JSONL file to analyze." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)

let trace_mode_arg =
  let doc =
    "Report: summary (per-phase p50/p95/p99), critical (critical-path \
     breakdown of the slowest roots), or slow (slowest spans)."
  in
  Arg.(value & pos 1 string "summary" & info [] ~docv:"MODE" ~doc)

let trace_json_arg =
  let doc = "Emit JSON instead of the text table (summary mode)." in
  Arg.(value & flag & info [ "json" ] ~doc)

let trace_top_arg =
  let doc = "How many roots/spans the critical and slow modes show." in
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc)

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Analyze a TSE_TRACE span file: rebuild span trees from \
          span/parent ids and attribute latency per phase (quantiles), \
          along critical paths (self-times), or to the slowest spans. \
          Tolerates traces torn by a crash.")
    Term.(
      const trace_analyze $ trace_file_arg $ trace_mode_arg $ trace_json_arg
      $ trace_top_arg)

let cmd =
  Cmd.group
    ~default:repl_term
    (Cmd.info "tse_cli" ~version:"1.0"
       ~doc:"Interactive shell for the Transparent Schema Evolution system")
    [
      repl_cmd; recover_cmd; checkpoint_cmd; lint_cmd; soak_cmd;
      serve_stats_cmd; top_cmd; trace_cmd;
    ]

let () = exit (Cmd.eval cmd)
