(* Tests for the extended object algebra and the classifier (Sections 3.2
   and 3.1). *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_algebra

let check = Alcotest.check
let vpp = Alcotest.testable Value.pp Value.equal
let uni () = Tse_workload.University.build ()

let name_of db cid = Schema_graph.name_of (Database.graph db) cid
let supers_names db cid =
  List.map (name_of db) (Schema_graph.supers (Database.graph db) cid)
  |> List.sort String.compare

let test_select () =
  let u = uni () in
  let db = u.db in
  let young = Database.create_object db u.person ~init:[ ("age", Value.Int 10) ] in
  let old = Database.create_object db u.person ~init:[ ("age", Value.Int 40) ] in
  let adult = Ops.select db ~name:"Adult" ~src:u.person Expr.(attr "age" >= int 18) in
  (* classified below its source *)
  check Alcotest.(list string) "Adult under Person" [ "Person" ]
    (supers_names db adult);
  (* same type as source *)
  Alcotest.(check bool) "type unchanged" true
    (Type_info.type_equal (Database.graph db) adult u.person);
  (* restricted extent *)
  Alcotest.(check bool) "old in" true (Oid.Set.mem old (Database.extent db adult));
  Alcotest.(check bool) "young out" false
    (Oid.Set.mem young (Database.extent db adult));
  Alcotest.(check (list string)) "db consistent" [] (Database.check db)

let test_select_validation () =
  let u = uni () in
  (try
     ignore
       (Ops.select u.db ~name:"Bad" ~src:u.person Expr.(attr "nosuch" === int 1));
     Alcotest.fail "expected rejection"
   with Ops.Error _ -> ());
  try
    ignore (Ops.select u.db ~name:"Person" ~src:u.person Expr.(bool true));
    Alcotest.fail "expected name clash rejection"
  with Ops.Error _ -> ()

let test_hide_figure4 () =
  (* Figure 4: AgelessPerson = hide age from Person, classified as a
     superclass of Person with the same extent. *)
  let u = uni () in
  let db = u.db in
  let p = Database.create_object db u.person ~init:[ ("age", Value.Int 33) ] in
  let ageless = Ops.hide db ~name:"AgelessPerson" ~props:[ "age" ] ~src:u.person in
  let g = Database.graph db in
  Alcotest.(check bool) "AgelessPerson above Person" true
    (Schema_graph.is_strict_ancestor g ~anc:ageless ~desc:u.person);
  Alcotest.(check bool) "age hidden" false (Type_info.has_prop g ageless "age");
  Alcotest.(check bool) "name kept" true (Type_info.has_prop g ageless "name");
  Alcotest.(check bool) "same extent" true
    (Oid.Set.equal (Database.extent db ageless) (Database.extent db u.person));
  Alcotest.(check bool) "object member" true (Database.is_member db p ageless);
  (* Person still sees age *)
  check vpp "age still on Person" (Value.Int 33) (Database.get_prop db p "age");
  Alcotest.(check (list string)) "db consistent" [] (Database.check db)

let test_hide_keeps_subclass_types () =
  let u = uni () in
  let db = u.db in
  let g = Database.graph db in
  (* hiding a local property: the hide class sits between Person and
     Student (Figure 8's Student-without-register shape) *)
  let nogpa = Ops.hide db ~name:"NoGpaStudent" ~props:[ "gpa" ] ~src:u.student in
  Alcotest.(check bool) "between: above Student" true
    (Schema_graph.is_strict_ancestor g ~anc:nogpa ~desc:u.student);
  Alcotest.(check bool) "between: below Person" true
    (Schema_graph.is_strict_ancestor g ~anc:u.person ~desc:nogpa);
  Alcotest.(check bool) "major kept" true (Type_info.has_prop g nogpa "major");
  Alcotest.(check bool) "gpa gone" false (Type_info.has_prop g nogpa "gpa");
  (* Student's own full type is untouched *)
  Alcotest.(check bool) "Student keeps gpa" true (Type_info.has_prop g u.student "gpa");
  (* hiding an inherited property pushes the class to the top: nothing
     below the root can lack [age] *)
  let ageless = Ops.hide db ~name:"AgelessStudent" ~props:[ "age" ] ~src:u.student in
  check Alcotest.(list string) "ageless under root" [ "Object" ]
    (supers_names db ageless);
  Alcotest.(check bool) "ageless above Student" true
    (Schema_graph.is_strict_ancestor g ~anc:ageless ~desc:u.student);
  Alcotest.(check (list string)) "schema invariants" [] (Invariants.check g)

let test_refine_capacity_augmenting () =
  let u = uni () in
  let db = u.db in
  let s = Database.create_object db u.student ~init:[ ("age", Value.Int 20) ] in
  let register = Prop.stored ~origin:(Oid.of_int 0) "register" Value.TBool in
  let student' =
    Ops.refine db ~name:"Student'" ~props:[ register ] ~src:u.student
  in
  let g = Database.graph db in
  check Alcotest.(list string) "below source" [ "Student" ] (supers_names db student');
  Alcotest.(check bool) "extent preserved" true
    (Oid.Set.equal (Database.extent db student') (Database.extent db u.student));
  Alcotest.(check bool) "register defined" true
    (Type_info.has_prop g student' "register");
  (* the existing object was restructured: it can store the new attribute *)
  Database.set_attr db s "register" (Value.Bool true);
  check vpp "new stored data" (Value.Bool true) (Database.get_prop db s "register");
  (* rejection: refining with an existing name *)
  (try
     ignore
       (Ops.refine db ~name:"Bad" ~src:u.student
          ~props:[ Prop.stored ~origin:(Oid.of_int 0) "age" Value.TInt ]);
     Alcotest.fail "expected rejection"
   with Ops.Error _ -> ());
  Alcotest.(check (list string)) "db consistent" [] (Database.check db)

let test_refine_from_sharing () =
  let u = uni () in
  let db = u.db in
  let register = Prop.stored ~origin:(Oid.of_int 0) "register" Value.TBool in
  let student' = Ops.refine db ~name:"Student'" ~props:[ register ] ~src:u.student in
  let ta' =
    Ops.refine_from db ~name:"TA'" ~src:student' ~prop_name:"register" ~target:u.ta
  in
  let g = Database.graph db in
  (* Figure 7 (c): TA' under both TA and Student' *)
  check Alcotest.(list string) "TA' supers" [ "Student'"; "TA" ] (supers_names db ta');
  (* the property is shared, not duplicated: same identity at both classes *)
  let p1 = Option.get (Type_info.find_usable g student' "register") in
  let p2 = Option.get (Type_info.find_usable g ta' "register") in
  Alcotest.(check bool) "shared identity" true (Prop.same_prop p1 p2);
  Alcotest.(check (list string)) "db consistent" [] (Database.check db)

let test_union_and_promotion () =
  let u = uni () in
  let db = u.db in
  let s = Database.create_object db u.student ~init:[] in
  let staff = Database.create_object db u.support_staff ~init:[] in
  let p = Database.create_object db u.person ~init:[] in
  let both = Ops.union db ~name:"StudentOrStaff" u.student u.staff in
  let g = Database.graph db in
  Alcotest.(check bool) "above Student" true
    (Schema_graph.is_strict_ancestor g ~anc:both ~desc:u.student);
  Alcotest.(check bool) "above Staff" true
    (Schema_graph.is_strict_ancestor g ~anc:both ~desc:u.staff);
  Alcotest.(check bool) "below Person (minimal common ancestor)" true
    (Schema_graph.is_strict_ancestor g ~anc:u.person ~desc:both);
  (* union type = common properties = Person's props here *)
  Alcotest.(check bool) "has name" true (Type_info.has_prop g both "name");
  Alcotest.(check bool) "no gpa" false (Type_info.has_prop g both "gpa");
  Alcotest.(check bool) "no salary" false (Type_info.has_prop g both "salary");
  (* extent: members of either *)
  Alcotest.(check bool) "student in" true (Oid.Set.mem s (Database.extent db both));
  Alcotest.(check bool) "staff in" true (Oid.Set.mem staff (Database.extent db both));
  Alcotest.(check bool) "plain person out" false
    (Oid.Set.mem p (Database.extent db both));
  Alcotest.(check (list string)) "db consistent" [] (Database.check db)

let test_union_promotes_common_locals () =
  (* two unrelated classes with a signature-equal local property: the union
     exposes it (lowest common supertype), via promotion *)
  let u = uni () in
  let db = u.db in
  let g = Database.graph db in
  let mk name =
    let cid =
      Schema_graph.register_base g ~name
        ~props:[ Prop.stored ~origin:(Oid.of_int 0) "tag" Value.TString ]
        ~supers:[]
    in
    Database.note_new_class db cid;
    cid
  in
  let a = mk "Aa" and b = mk "Bb" in
  let ab = Ops.union db ~name:"AB" a b in
  Alcotest.(check bool) "common local exposed on union" true
    (Type_info.has_prop g ab "tag");
  (* and it resolves as a single property at the union *)
  match Type_info.find g ab "tag" with
  | Some (Type_info.Single _) -> ()
  | _ -> Alcotest.fail "tag should resolve at the union class"

let test_intersect_difference () =
  let u = uni () in
  let db = u.db in
  let ta = Database.create_object db u.ta ~init:[] in
  let s = Database.create_object db u.student ~init:[] in
  let inter = Ops.intersect db ~name:"StudentAndStaff" u.student u.staff in
  let diff = Ops.difference db ~name:"StudentNotStaff" u.student u.staff in
  let g = Database.graph db in
  check Alcotest.(list string) "intersect below both" [ "Staff"; "Student" ]
    (supers_names db inter);
  check Alcotest.(list string) "difference below first" [ "Student" ]
    (supers_names db diff);
  (* intersect type merges both *)
  Alcotest.(check bool) "gpa on intersect" true (Type_info.has_prop g inter "gpa");
  Alcotest.(check bool) "salary on intersect" true
    (Type_info.has_prop g inter "salary");
  (* difference keeps first argument's type *)
  Alcotest.(check bool) "gpa on difference" true (Type_info.has_prop g diff "gpa");
  Alcotest.(check bool) "no salary on difference" false
    (Type_info.has_prop g diff "salary");
  Alcotest.(check bool) "ta in intersect" true (Oid.Set.mem ta (Database.extent db inter));
  Alcotest.(check bool) "s in difference" true (Oid.Set.mem s (Database.extent db diff));
  Alcotest.(check bool) "ta not in difference" false
    (Oid.Set.mem ta (Database.extent db diff));
  Alcotest.(check (list string)) "db consistent" [] (Database.check db)

let test_duplicate_detection () =
  let u = uni () in
  let db = u.db in
  let pred = Expr.(attr "age" >= int 18) in
  let a1 = Ops.select db ~name:"Adult" ~src:u.person pred in
  let size = Schema_graph.size (Database.graph db) in
  (* same derivation under another name: discarded, existing reused *)
  let a2 = Ops.select db ~name:"Grownup" ~src:u.person pred in
  Alcotest.(check bool) "same class returned" true (Oid.equal a1 a2);
  check Alcotest.int "no new class" size (Schema_graph.size (Database.graph db));
  (* different predicate is a different class *)
  let a3 = Ops.select db ~name:"Senior" ~src:u.person Expr.(attr "age" >= int 65) in
  Alcotest.(check bool) "distinct class" false (Oid.equal a1 a3)

let test_define_vc_nested () =
  let u = uni () in
  let db = u.db in
  let _o1 = Database.create_object db u.student ~init:[ ("age", Value.Int 17) ] in
  let o2 = Database.create_object db u.student ~init:[ ("age", Value.Int 25) ] in
  (* defineVC AdultNoAge as (hide age from (select from Student where age >= 18)) *)
  let vc =
    Ops.define_vc db ~name:"AdultNoAge"
      (Ops.Hide ([ "age" ], Ops.Select (Ops.Class "Student", Expr.(attr "age" >= int 18))))
  in
  let g = Database.graph db in
  Alcotest.(check bool) "age hidden" false (Type_info.has_prop g vc "age");
  Alcotest.(check bool) "gpa visible" true (Type_info.has_prop g vc "gpa");
  check Alcotest.int "only the adult student" 1 (Database.extent_size db vc);
  Alcotest.(check bool) "o2 member" true (Oid.Set.mem o2 (Database.extent db vc));
  (* an anonymous intermediate select class was created *)
  Alcotest.(check bool) "intermediate exists" true
    (Schema_graph.find_by_name g "AdultNoAge$src" <> None);
  Alcotest.(check (list string)) "db consistent" [] (Database.check db)

let test_primed_names () =
  let u = uni () in
  let db = u.db in
  check Alcotest.string "first prime" "Student'" (Ops.primed_name db "Student");
  let register = Prop.stored ~origin:(Oid.of_int 0) "register" Value.TBool in
  ignore (Ops.refine db ~name:"Student'" ~props:[ register ] ~src:u.student);
  check Alcotest.string "second prime" "Student''" (Ops.primed_name db "Student")

let suite =
  [
    Alcotest.test_case "select derives a subclass" `Quick test_select;
    Alcotest.test_case "select validation" `Quick test_select_validation;
    Alcotest.test_case "hide derives a superclass (Fig 4)" `Quick
      test_hide_figure4;
    Alcotest.test_case "hide slots in mid-hierarchy" `Quick
      test_hide_keeps_subclass_types;
    Alcotest.test_case "refine is capacity-augmenting" `Quick
      test_refine_capacity_augmenting;
    Alcotest.test_case "refine_from shares the property" `Quick
      test_refine_from_sharing;
    Alcotest.test_case "union placement, type and extent" `Quick
      test_union_and_promotion;
    Alcotest.test_case "union promotes common locals" `Quick
      test_union_promotes_common_locals;
    Alcotest.test_case "intersect and difference" `Quick test_intersect_difference;
    Alcotest.test_case "duplicate class detection" `Quick test_duplicate_detection;
    Alcotest.test_case "defineVC nested query" `Quick test_define_vc_nested;
    Alcotest.test_case "primed naming" `Quick test_primed_names;
  ]
