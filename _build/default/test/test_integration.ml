(* Cross-feature integration scenarios and failure injection: rejected
   changes must leave no debris, composites interrupted mid-way must leave
   a consistent database, and evolution, updates, merging and persistence
   must compose. *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_views
open Tse_core

let check = Alcotest.check
let vpp = Alcotest.testable Value.pp Value.equal

let fixture () =
  let u = Tse_workload.University.build () in
  ignore (Tse_workload.University.populate u ~n:18);
  (u, Tsem.of_database u.db)

let test_rejected_change_leaves_no_debris () =
  let u, tsem = fixture () in
  ignore (Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student"; "TA" ]);
  let classes_before = Schema_graph.size (Database.graph u.db) in
  let version_before = (Tsem.current tsem "VS").View_schema.version in
  (* gpa exists: the add must be rejected *)
  (try
     ignore
       (Tsem.evolve tsem ~view:"VS"
          (Change.Add_attribute { cls = "Student"; def = Change.attr "gpa" Value.TFloat }));
     Alcotest.fail "expected rejection"
   with Change.Rejected _ -> ());
  check Alcotest.int "no classes created" classes_before
    (Schema_graph.size (Database.graph u.db));
  check Alcotest.int "no version registered" version_before
    (Tsem.current tsem "VS").View_schema.version;
  Alcotest.(check (list string)) "consistent" [] (Database.check u.db)

let test_interrupted_composite_is_consistent () =
  (* insert_class = add_class + add_edge; make the second step fail by
     using an anchor that yields a cycle. The database must stay
     consistent even though the first step already ran. *)
  let u, tsem = fixture () in
  ignore (Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student" ]);
  (try
     ignore
       (Tsem.evolve tsem ~view:"VS"
          (* sup = sub makes the edge step reject *)
          (Change.Insert_class { cls = "Mid"; sup = "Student"; sub = "Student" }));
     Alcotest.fail "expected rejection"
   with Change.Rejected _ -> ());
  Alcotest.(check (list string)) "consistent after interruption" []
    (Database.check u.db);
  (* the view was not registered at a new version *)
  check Alcotest.int "version unchanged" 0
    (Tsem.current tsem "VS").View_schema.version

let test_update_through_every_view_version () =
  (* one object, updated through three schema versions of one view, each
     version exposing more attributes; all versions see the shared state *)
  let u, tsem = fixture () in
  ignore (Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student" ]);
  let v0 = Tsem.current tsem "VS" in
  let v1 =
    Tsem.evolve tsem ~view:"VS"
      (Change.Add_attribute { cls = "Student"; def = Change.attr "register" Value.TBool })
  in
  let v2 =
    Tsem.evolve tsem ~view:"VS"
      (Change.Add_attribute { cls = "Student"; def = Change.attr "email" Value.TString })
  in
  let s0 = View_schema.cid_of_exn v0 "Student" in
  let s1 = View_schema.cid_of_exn v1 "Student" in
  let s2 = View_schema.cid_of_exn v2 "Student" in
  (* create through the OLDEST version *)
  let o = Tse_update.Generic.create u.db s0 ~init:[ ("name", Value.String "zed") ] in
  (* visible and updatable through all three *)
  List.iter
    (fun s -> Alcotest.(check bool) "visible" true (Oid.Set.mem o (Database.extent u.db s)))
    [ s0; s1; s2 ];
  Tse_update.Generic.set u.db [ o ] [ ("register", Value.Bool true) ];
  Tse_update.Generic.set u.db [ o ] [ ("email", Value.String "z@x") ];
  check vpp "v1 attr" (Value.Bool true) (Database.get_prop u.db o "register");
  check vpp "v2 attr" (Value.String "z@x") (Database.get_prop u.db o "email");
  (* the v0 program updates the shared name; v2 sees it *)
  Tse_update.Generic.set u.db [ o ] [ ("name", Value.String "zoe") ];
  check vpp "shared update" (Value.String "zoe") (Database.get_prop u.db o "name");
  Alcotest.(check (list string)) "consistent" [] (Database.check u.db)

let test_evolve_then_merge_then_persist () =
  (* the full product loop: two branches, merge, save, load, continue *)
  let u, tsem = fixture () in
  ignore (Tsem.define_view_by_names tsem ~name:"A" [ "Person"; "Student" ]);
  ignore (Tsem.define_view_by_names tsem ~name:"B" [ "Person"; "Student" ]);
  ignore
    (Tsem.evolve tsem ~view:"A"
       (Change.Add_attribute { cls = "Student"; def = Change.attr "x1" Value.TInt }));
  ignore
    (Tsem.evolve tsem ~view:"B"
       (Change.Add_attribute { cls = "Student"; def = Change.attr "x2" Value.TInt }));
  ignore (Merge.merge_current tsem ~view1:"A" ~view2:"B" ~new_name:"AB");
  let text = Catalog.to_string ~history:(Tsem.history tsem) u.db in
  let db', history' = Catalog.of_string text in
  let tsem' = Tsem.of_database db' in
  List.iter
    (fun name ->
      List.iter
        (fun v -> History.register (Tsem.history tsem') v)
        (History.versions history' name))
    (History.view_names history');
  (* the merged view survived persistence and can itself evolve *)
  let ab = Tsem.current tsem' "AB" in
  check Alcotest.int "merged view classes" 3 (View_schema.size ab);
  let local_student =
    List.find
      (fun n -> String.length n >= 7 && String.sub n 0 7 = "Student")
      (List.filter_map (View_schema.local_name ab) (View_schema.classes ab))
  in
  let v1 =
    Tsem.evolve tsem' ~view:"AB"
      (Change.Add_attribute { cls = local_student; def = Change.attr "x3" Value.TInt })
  in
  check Alcotest.int "merged view evolves" 1 v1.View_schema.version;
  Alcotest.(check (list string)) "loaded db consistent" [] (Database.check db')

let test_view_class_rename_is_local () =
  (* renaming inside a view never leaks to the global schema or others *)
  let u, tsem = fixture () in
  let v = Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student" ] in
  View_schema.rename v u.student "Pupil";
  check Alcotest.string "global name intact" "Student"
    (Schema_graph.name_of (Database.graph u.db) u.student);
  (* changes can now be addressed via the local name *)
  let v1 =
    Tsem.evolve tsem ~view:"VS"
      (Change.Add_attribute { cls = "Pupil"; def = Change.attr "tag" Value.TInt })
  in
  Alcotest.(check bool) "renamed class evolved" true
    (Type_info.has_prop (Database.graph u.db) (View_schema.cid_of_exn v1 "Pupil") "tag")

let test_ambiguity_must_be_renamed_to_invoke () =
  (* Section 6.1.1/6.5.1: conflicting same-named properties are allowed to
     coexist but cannot be invoked until the user renames them *)
  let db = Database.create () in
  let g = Database.graph db in
  let o0 = Oid.of_int 0 in
  let a =
    Schema_graph.register_base g ~name:"A"
      ~props:[ Prop.stored ~origin:o0 "x" Value.TInt ] ~supers:[]
  in
  let b =
    Schema_graph.register_base g ~name:"B"
      ~props:[ Prop.stored ~origin:o0 "x" Value.TString ] ~supers:[]
  in
  let c = Schema_graph.register_base g ~name:"C" ~props:[] ~supers:[ a; b ] in
  List.iter (Database.note_new_class db) [ a; b; c ];
  let o = Database.create_object db c ~init:[] in
  (try
     ignore (Database.get_prop db o "x");
     Alcotest.fail "ambiguous access should fail"
   with Expr.Type_error _ -> ());
  (* disambiguate by renaming at the origin *)
  let ka = Schema_graph.find_exn g a in
  let px = Option.get (Klass.local_prop ka "x") in
  Klass.remove_local_prop ka "x";
  Klass.add_local_prop ka (Prop.rename px "ax");
  Database.set_attr db o "ax" (Value.Int 1);
  Database.set_attr db o "x" (Value.String "s");
  check vpp "renamed readable" (Value.Int 1) (Database.get_prop db o "ax");
  check vpp "survivor readable" (Value.String "s") (Database.get_prop db o "x")

let test_snapshot_corruption_detected () =
  let u, tsem = fixture () in
  let text = Catalog.to_string ~history:(Tsem.history tsem) u.db in
  (* truncate at several points: must raise, never loop or crash hard *)
  List.iter
    (fun frac ->
      let cut = String.length text * frac / 10 in
      let truncated = String.sub text 0 cut in
      match Catalog.of_string truncated with
      | _ -> Alcotest.fail "truncated catalog should not load"
      | exception Failure _ -> ()
      | exception Invalid_argument _ -> ())
    [ 1; 3; 5; 7; 9 ]

let test_stored_data_survives_promotion () =
  (* regression: deleting an attribute creates a hide class above the
     source whose intended type is materialized as promoted local copies
     (same uid). A stored-attribute READ must still resolve to the origin
     class's slice, where the data physically lives — not to the promoted
     copy's empty slice. *)
  let u, tsem = fixture () in
  ignore (Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student" ]);
  let o =
    Database.create_object u.db u.student
      ~init:[ ("name", Value.String "keep-me"); ("gpa", Value.Float 3.3) ]
  in
  (* several content changes, ending in a delete whose hide class lands
     directly under the root (every ancestor still has the attribute) *)
  ignore
    (Tsem.evolve tsem ~view:"VS"
       (Change.Add_attribute { cls = "Student"; def = Change.attr "z1" Value.TInt }));
  ignore
    (Tsem.evolve tsem ~view:"VS"
       (Change.Delete_attribute { cls = "Student"; attr_name = "gpa" }));
  (* the pre-existing stored values are still readable *)
  check vpp "name survives" (Value.String "keep-me") (Database.get_prop u.db o "name");
  (* ... and writable through the same resolution *)
  Database.set_attr u.db o "name" (Value.String "still-me");
  check vpp "write reaches the same slice" (Value.String "still-me")
    (Database.get_prop u.db o "name");
  Alcotest.(check (list string)) "consistent" [] (Database.check u.db)

let test_deep_evolution_chain () =
  (* 15 consecutive changes on one view: versions, consistency and
     updatability hold throughout; every intermediate fingerprint stays
     frozen *)
  let u, tsem = fixture () in
  ignore
    (Tsem.define_view_by_names tsem ~name:"VS"
       [ "Person"; "Student"; "Staff"; "TA" ]);
  let fingerprints = ref [] in
  for i = 1 to 15 do
    let change =
      match i mod 5 with
      | 0 ->
        Change.Add_class
          { cls = Printf.sprintf "Extra%d" i; connected_to = Some "Student" }
      | 1 ->
        Change.Add_attribute
          { cls = "Student"; def = Change.attr (Printf.sprintf "a%d" i) Value.TInt }
      | 2 ->
        Change.Add_method
          {
            cls = "Person";
            method_name = Printf.sprintf "m%d" i;
            body = Expr.int i;
          }
      | 3 ->
        Change.Delete_attribute
          { cls = "Student"; attr_name = Printf.sprintf "a%d" (i - 2) }
      | _ ->
        Change.Add_attribute
          { cls = "TA"; def = Change.attr (Printf.sprintf "t%d" i) Value.TBool }
    in
    ignore (Tsem.evolve tsem ~view:"VS" change);
    let v = Tsem.current tsem "VS" in
    fingerprints := (v.View_schema.version, Verify.view_fingerprint u.db v) :: !fingerprints
  done;
  check Alcotest.int "15 versions" 15 (Tsem.current tsem "VS").View_schema.version;
  Alcotest.(check (list string)) "consistent" [] (Database.check u.db);
  Alcotest.(check bool) "updatable" true
    (Verify.all_updatable u.db (Tsem.current tsem "VS"));
  (* frozen history *)
  List.iter
    (fun (version, fp) ->
      let v = Option.get (History.version (Tsem.history tsem) "VS" version) in
      check Alcotest.string
        (Printf.sprintf "version %d frozen" version)
        fp
        (Verify.view_fingerprint u.db v))
    !fingerprints

let suite =
  [
    Alcotest.test_case "rejected change leaves no debris" `Quick
      test_rejected_change_leaves_no_debris;
    Alcotest.test_case "interrupted composite stays consistent" `Quick
      test_interrupted_composite_is_consistent;
    Alcotest.test_case "updates through every view version" `Quick
      test_update_through_every_view_version;
    Alcotest.test_case "evolve + merge + persist + continue" `Quick
      test_evolve_then_merge_then_persist;
    Alcotest.test_case "view-local rename" `Quick test_view_class_rename_is_local;
    Alcotest.test_case "ambiguity blocked until renamed" `Quick
      test_ambiguity_must_be_renamed_to_invoke;
    Alcotest.test_case "catalog corruption detected" `Quick
      test_snapshot_corruption_detected;
    Alcotest.test_case "stored data survives promotion (regression)" `Quick
      test_stored_data_survives_promotion;
    Alcotest.test_case "deep evolution chain (15 changes)" `Quick
      test_deep_evolution_chain;
  ]
