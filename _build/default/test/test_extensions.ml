(* Tests for the beyond-ORION extensions: partition/coalesce (the
   object-preserving reading of the paper's Section 9 open problems) and
   the impact analyzer. *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_views
open Tse_core

let check = Alcotest.check

let fixture () =
  let u = Tse_workload.University.build () in
  ignore (Tse_workload.University.populate u ~n:24);
  (u, Tsem.of_database u.db)

let test_partition_class () =
  let u, tsem = fixture () in
  ignore (Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student" ]);
  let v1 =
    Tsem.evolve tsem ~view:"VS"
      (Change.Partition_class
         {
           cls = "Person";
           predicate = Expr.(attr "age" >= int 30);
           into_true = "Senior";
           into_false = "Junior";
         })
  in
  let senior = View_schema.cid_of_exn v1 "Senior" in
  let junior = View_schema.cid_of_exn v1 "Junior" in
  let person = View_schema.cid_of_exn v1 "Person" in
  (* the partitions are disjoint and cover the class *)
  Alcotest.(check bool) "disjoint" true
    (Oid.Set.is_empty
       (Oid.Set.inter (Database.extent u.db senior) (Database.extent u.db junior)));
  check Alcotest.int "cover"
    (Database.extent_size u.db person)
    (Database.extent_size u.db senior + Database.extent_size u.db junior);
  (* the view hierarchy places both under Person *)
  let edges = Generation.edges (Database.graph u.db) v1 in
  Alcotest.(check bool) "Senior under Person" true
    (List.exists (fun (s, b) -> Oid.equal s person && Oid.equal b senior) edges);
  (* object-preserving, hence updatable (the point of the extension) *)
  Alcotest.(check bool) "updatable" true (Verify.all_updatable u.db v1);
  (* updates keep partitions consistent: aging an object moves it across *)
  let o = List.hd (Database.extent_list u.db junior) in
  Database.set_attr u.db o "age" (Value.Int 64);
  Alcotest.(check bool) "migrated to Senior" true
    (Oid.Set.mem o (Database.extent u.db senior));
  Alcotest.(check (list string)) "consistent" [] (Database.check u.db)

let test_coalesce_classes () =
  let u, tsem = fixture () in
  ignore
    (Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student"; "Staff" ]);
  let v1 =
    Tsem.evolve tsem ~view:"VS"
      (Change.Coalesce_classes { a = "Student"; b = "Staff"; as_name = "Member" })
  in
  Alcotest.(check bool) "Student gone from view" true
    (View_schema.cid_of v1 "Student" = None);
  Alcotest.(check bool) "Staff gone from view" true
    (View_schema.cid_of v1 "Staff" = None);
  let fused = View_schema.cid_of_exn v1 "Member" in
  check Alcotest.int "extent is the union"
    (Oid.Set.cardinal
       (Oid.Set.union (Database.extent u.db u.student) (Database.extent u.db u.staff)))
    (Database.extent_size u.db fused);
  (* globally nothing was destroyed *)
  Alcotest.(check bool) "Student alive globally" true
    (Schema_graph.mem (Database.graph u.db) u.student);
  Alcotest.(check bool) "updatable" true (Verify.all_updatable u.db v1);
  Alcotest.(check (list string)) "consistent" [] (Database.check u.db)

let test_impact_analyzer () =
  let u, tsem = fixture () in
  ignore u;
  ignore (Tsem.define_view_by_names tsem ~name:"MINE" [ "Person"; "Student"; "TA" ]);
  ignore (Tsem.define_view_by_names tsem ~name:"OTHER" [ "Person"; "Student"; "Grad" ]);
  ignore (Tsem.define_view_by_names tsem ~name:"STAFFONLY" [ "Staff"; "SupportStaff" ]);
  (* adding an attribute to Student reaches OTHER (Student, Grad) but not
     the staff-only view *)
  let r =
    Impact.analyze tsem ~view:"MINE"
      (Change.Add_attribute { cls = "Student"; def = Change.attr "x" Value.TBool })
  in
  (match r.Impact.broken_views with
  | [ ("OTHER", hit) ] ->
    check Alcotest.(list string) "reached classes" [ "Grad"; "Student" ] hit
  | other ->
    Alcotest.failf "unexpected broken views: %s"
      (String.concat "," (List.map fst other)));
  (* edge change on the staff side reaches STAFFONLY *)
  let r2 =
    Impact.analyze tsem ~view:"MINE"
      (Change.Add_edge { sup = "Person"; sub = "TA" })
  in
  ignore r2;
  (* view-only change affects nobody *)
  let r3 = Impact.analyze tsem ~view:"MINE" (Change.Delete_class { cls = "TA" }) in
  Alcotest.(check bool) "delete_class affects nobody" true
    (r3.Impact.broken_views = []);
  (* and the TSE execution indeed leaves OTHER untouched, as predicted *)
  let before = Verify.view_fingerprint (Tsem.db tsem) (Tsem.current tsem "OTHER") in
  ignore
    (Tsem.evolve tsem ~view:"MINE"
       (Change.Add_attribute { cls = "Student"; def = Change.attr "x" Value.TBool }));
  let after = Verify.view_fingerprint (Tsem.db tsem) (Tsem.current tsem "OTHER") in
  Alcotest.(check bool) "TSE avoided the predicted breakage" true
    (String.equal before after)

let test_partition_validation () =
  let u, tsem = fixture () in
  ignore u;
  ignore (Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student" ]);
  (try
     ignore
       (Tsem.evolve tsem ~view:"VS"
          (Change.Partition_class
             {
               cls = "Person";
               predicate = Expr.(attr "nosuch" === int 1);
               into_true = "A";
               into_false = "B";
             }));
     Alcotest.fail "unknown attribute must reject"
   with Change.Rejected _ -> ());
  try
    ignore
      (Tsem.evolve tsem ~view:"VS"
         (Change.Partition_class
            {
              cls = "Person";
              predicate = Expr.(attr "age" >= int 1);
              into_true = "Student";
              into_false = "B";
            }));
    Alcotest.fail "name clash must reject"
  with Change.Rejected _ -> ()

let suite =
  [
    Alcotest.test_case "partition_class (Section 9 extension)" `Quick
      test_partition_class;
    Alcotest.test_case "coalesce_classes (Section 9 extension)" `Quick
      test_coalesce_classes;
    Alcotest.test_case "impact analyzer" `Quick test_impact_analyzer;
    Alcotest.test_case "partition validation" `Quick test_partition_validation;
  ]
