(* Integration tests for the TSE system: the Section 6 translation
   algorithms, verified against the direct-modification oracle
   (Proposition A), view independence (Proposition B), updatability
   (Theorem 1), and version merging (Section 7). *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_views
open Tse_core

let check = Alcotest.check
let vpp = Alcotest.testable Value.pp Value.equal

(* ------------------------------------------------------------------ *)
(* Twin fixtures: two byte-identical universities, one for the TSE
   translation, one for the destructive oracle.                        *)
(* ------------------------------------------------------------------ *)

type fixture = {
  tsem : Tsem.t;
  uni : Tse_workload.University.t;  (* TSE side *)
  oracle : Tse_workload.University.t;  (* direct side *)
}

let fixture ?(n = 24) () =
  let uni = Tse_workload.University.build () in
  ignore (Tse_workload.University.populate uni ~n);
  let oracle = Tse_workload.University.build () in
  ignore (Tse_workload.University.populate oracle ~n);
  { tsem = Tsem.of_database uni.db; uni; oracle }

let uni_view_names = [ "Person"; "Student"; "TA" ]

(* The Figure 3 view: Person, Student, TA. *)
let define_views fx names =
  let v1 = Tsem.define_view_by_names fx.tsem ~name:"VS" names in
  let graph2 = Database.graph fx.oracle.db in
  let cids2 =
    List.map (fun n -> (Schema_graph.find_by_name_exn graph2 n).Klass.cid) names
  in
  let v2 = View_schema.make ~name:"VS" ~version:0 graph2 cids2 in
  (v1, v2)

(* Proposition A: apply the change both ways, compare the views. *)
let check_prop_a ?(names = uni_view_names) change =
  let fx = fixture () in
  let _v1, v2 = define_views fx names in
  let new_view = Tsem.evolve fx.tsem ~view:"VS" change in
  let oracle_view = Direct.apply fx.oracle.db v2 change in
  let diff = Verify.diff_views (fx.uni.db, new_view) (fx.oracle.db, oracle_view) in
  check Alcotest.(list string)
    ("S'' = S' for " ^ Change.to_string change)
    [] diff;
  Alcotest.(check (list string)) "tse db consistent" [] (Database.check fx.uni.db);
  Alcotest.(check bool) "new view updatable (Theorem 1)" true
    (Verify.all_updatable fx.uni.db new_view);
  fx, new_view

(* Proposition B: another view's fingerprint must not move. *)
let check_prop_b ?(names = uni_view_names) ~other_names change =
  let fx = fixture () in
  ignore (Tsem.define_view_by_names fx.tsem ~name:"VS" names);
  ignore (Tsem.define_view_by_names fx.tsem ~name:"OTHER" other_names);
  let before = Verify.view_fingerprint fx.uni.db (Tsem.current fx.tsem "OTHER") in
  ignore (Tsem.evolve fx.tsem ~view:"VS" change);
  let after = Verify.view_fingerprint fx.uni.db (Tsem.current fx.tsem "OTHER") in
  check Alcotest.string
    ("other view untouched by " ^ Change.to_string change)
    before after

(* ------------------------------------------------------------------ *)
(* 6.1 add_attribute (Figures 3 and 7)                                  *)
(* ------------------------------------------------------------------ *)

let add_register =
  Change.Add_attribute
    { cls = "Student"; def = Change.attr "register" Value.TBool }

let test_add_attribute_prop_a () = ignore (check_prop_a add_register)

let test_add_attribute_fig7 () =
  let fx = fixture () in
  let v0 = Tsem.define_view_by_names fx.tsem ~name:"VS" uni_view_names in
  let graph = Database.graph fx.uni.db in
  let v1 = Tsem.evolve fx.tsem ~view:"VS" add_register in
  (* version bookkeeping *)
  check Alcotest.int "old version 0" 0 v0.View_schema.version;
  check Alcotest.int "new version 1" 1 v1.View_schema.version;
  (* the view still shows the classes under their original names *)
  check Alcotest.(list string) "same local names"
    [ "Person"; "Student"; "TA" ]
    (List.filter_map (View_schema.local_name v1) (View_schema.classes v1));
  (* but Student and TA are now the primed virtual classes *)
  let student' = View_schema.cid_of_exn v1 "Student" in
  let ta' = View_schema.cid_of_exn v1 "TA" in
  Alcotest.(check bool) "Student replaced" false
    (Oid.equal student' fx.uni.student);
  check Alcotest.string "global name is primed" "Student'"
    (Schema_graph.name_of graph student');
  (* register is defined on both, sharing one property identity *)
  let p1 = Option.get (Type_info.find_usable graph student' "register") in
  let p2 = Option.get (Type_info.find_usable graph ta' "register") in
  Alcotest.(check bool) "shared identity" true (Prop.same_prop p1 p2);
  (* Grad, outside the view, is untouched (Section 2.2) *)
  Alcotest.(check bool) "Grad unaffected" false
    (Type_info.has_prop graph fx.uni.grad "register");
  (* extents preserved *)
  Alcotest.(check bool) "extent preserved" true
    (Oid.Set.equal
       (Database.extent fx.uni.db student')
       (Database.extent fx.uni.db fx.uni.student));
  (* the old view still works: its Student has no register *)
  let old_student = View_schema.cid_of_exn v0 "Student" in
  Alcotest.(check bool) "old view unchanged" false
    (Type_info.has_prop graph old_student "register")

let test_add_attribute_interop () =
  (* objects are shared between old and new versions of the schema *)
  let fx = fixture ~n:0 () in
  ignore (Tsem.define_view_by_names fx.tsem ~name:"VS" uni_view_names);
  let v0 = Tsem.current fx.tsem "VS" in
  let v1 = Tsem.evolve fx.tsem ~view:"VS" add_register in
  let db = fx.uni.db in
  let student_new = View_schema.cid_of_exn v1 "Student" in
  let student_old = View_schema.cid_of_exn v0 "Student" in
  (* a program on the NEW view creates a student *)
  let o =
    Tse_update.Generic.create db student_new
      ~init:[ ("name", Value.String "amy"); ("register", Value.Bool true) ]
  in
  (* ... which an OLD program sees through its own view *)
  Alcotest.(check bool) "new object visible in old view" true
    (Oid.Set.mem o (Database.extent db student_old));
  check vpp "old view reads shared attr" (Value.String "amy")
    (Database.get_prop db o "name");
  (* an OLD program creates a student; the NEW view sees it, with the
     register attribute at its default *)
  let o2 =
    Tse_update.Generic.create db student_old ~init:[ ("name", Value.String "bob") ]
  in
  Alcotest.(check bool) "old object visible in new view" true
    (Oid.Set.mem o2 (Database.extent db student_new));
  check vpp "register defaults to null" Value.Null
    (Database.get_prop db o2 "register");
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let test_add_attribute_rejects_existing () =
  let fx = fixture () in
  ignore (Tsem.define_view_by_names fx.tsem ~name:"VS" uni_view_names);
  try
    ignore
      (Tsem.evolve fx.tsem ~view:"VS"
         (Change.Add_attribute { cls = "Student"; def = Change.attr "gpa" Value.TFloat }));
    Alcotest.fail "expected rejection"
  with Change.Rejected _ -> ()

let test_add_method_prop_a () =
  ignore
    (check_prop_a
       (Change.Add_method
          { cls = "Person"; method_name = "adult"; body = Expr.(attr "age" >= int 18) }))

(* ------------------------------------------------------------------ *)
(* 6.2 delete_attribute (Figure 8)                                      *)
(* ------------------------------------------------------------------ *)

let test_delete_attribute_prop_a () =
  ignore
    (check_prop_a (Change.Delete_attribute { cls = "Student"; attr_name = "gpa" }))

let test_delete_attribute_semantics () =
  let fx, v1 =
    check_prop_a (Change.Delete_attribute { cls = "Student"; attr_name = "gpa" })
  in
  let graph = Database.graph fx.uni.db in
  let student' = View_schema.cid_of_exn v1 "Student" in
  let ta' = View_schema.cid_of_exn v1 "TA" in
  Alcotest.(check bool) "gpa gone from Student" false
    (Type_info.has_prop graph student' "gpa");
  Alcotest.(check bool) "gpa gone from TA" false
    (Type_info.has_prop graph ta' "gpa");
  (* globally nothing was removed: the old classes still have gpa, and the
     stored data is intact *)
  Alcotest.(check bool) "global Student keeps gpa" true
    (Type_info.has_prop graph fx.uni.student "gpa")

let test_delete_attribute_restores_suppressed () =
  (* C locally overrides an inherited attribute; deleting C's local one
     restores the suppressed attribute (Section 6.2.1). *)
  let db = Database.create () in
  let g = Database.graph db in
  let o0 = Oid.of_int 0 in
  let top =
    Schema_graph.register_base g ~name:"Top"
      ~props:[ Prop.stored ~origin:o0 "x" Value.TInt ]
      ~supers:[]
  in
  let mid =
    Schema_graph.register_base g ~name:"Mid"
      ~props:[ Prop.stored ~origin:o0 "x" Value.TString ]
      ~supers:[ top ]
  in
  let leaf = Schema_graph.register_base g ~name:"Leaf" ~props:[] ~supers:[ mid ] in
  List.iter (Database.note_new_class db) [ top; mid; leaf ];
  let tsem = Tsem.of_database db in
  ignore (Tsem.define_view_by_names tsem ~name:"V" [ "Top"; "Mid"; "Leaf" ]);
  let v1 =
    Tsem.evolve tsem ~view:"V" (Change.Delete_attribute { cls = "Mid"; attr_name = "x" })
  in
  let mid' = View_schema.cid_of_exn v1 "Mid" in
  let leaf' = View_schema.cid_of_exn v1 "Leaf" in
  (* x is still there — but it is Top's x now *)
  (match Type_info.find_usable g mid' "x" with
  | Some p -> Alcotest.(check bool) "restored from Top" true (Oid.equal p.Prop.origin top)
  | None -> Alcotest.fail "suppressed x not restored at Mid");
  (match Type_info.find_usable g leaf' "x" with
  | Some p ->
    Alcotest.(check bool) "propagated to Leaf" true (Oid.equal p.Prop.origin top)
  | None -> Alcotest.fail "suppressed x not restored at Leaf");
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let test_delete_attribute_rejects_nonlocal () =
  let fx = fixture () in
  ignore (Tsem.define_view_by_names fx.tsem ~name:"VS" uni_view_names);
  (* age is defined at Person, hence not local to Student within the view *)
  try
    ignore
      (Tsem.evolve fx.tsem ~view:"VS"
         (Change.Delete_attribute { cls = "Student"; attr_name = "age" }));
    Alcotest.fail "expected rejection"
  with Change.Rejected _ -> ()

let test_delete_attribute_view_relative_local () =
  (* ... but when Person is NOT in the view, Student is the uppermost class
     showing age, so the delete is legal (Section 6.2.1's redefined
     "local"). *)
  let fx = fixture () in
  ignore (Tsem.define_view_by_names fx.tsem ~name:"VS" [ "Student"; "TA" ]);
  let v1 =
    Tsem.evolve fx.tsem ~view:"VS"
      (Change.Delete_attribute { cls = "Student"; attr_name = "age" })
  in
  let graph = Database.graph fx.uni.db in
  let student' = View_schema.cid_of_exn v1 "Student" in
  Alcotest.(check bool) "age hidden in view" false
    (Type_info.has_prop graph student' "age");
  (* other views / global schema untouched *)
  Alcotest.(check bool) "global Person keeps age" true
    (Type_info.has_prop graph fx.uni.person "age")

let test_delete_method_prop_a () =
  (* install a method first, on both twins, then delete it *)
  let fx = fixture () in
  let mk u =
    Klass.add_local_prop
      (Schema_graph.find_exn (Database.graph u.Tse_workload.University.db) u.student)
      (Prop.method_ ~origin:u.student "standing" Expr.(attr "gpa" >= Const (Value.Float 3.0)))
  in
  mk fx.uni;
  mk fx.oracle;
  let _v1, v2 = define_views fx uni_view_names in
  let change = Change.Delete_method { cls = "Student"; method_name = "standing" } in
  let new_view = Tsem.evolve fx.tsem ~view:"VS" change in
  let oracle_view = Direct.apply fx.oracle.db v2 change in
  check Alcotest.(list string) "S'' = S'" []
    (Verify.diff_views (fx.uni.db, new_view) (fx.oracle.db, oracle_view))

(* ------------------------------------------------------------------ *)
(* 6.5 add_edge (Figure 9)                                              *)
(* ------------------------------------------------------------------ *)

let fig9_names = [ "Person"; "Student"; "Staff"; "TeachingStaff"; "SupportStaff"; "TA"; "Grader" ]

let test_add_edge_prop_a () =
  ignore
    (check_prop_a ~names:fig9_names
       (Change.Add_edge { sup = "SupportStaff"; sub = "TA" }))

let test_add_edge_fig9 () =
  let fx, v1 =
    check_prop_a ~names:fig9_names
      (Change.Add_edge { sup = "SupportStaff"; sub = "TA" })
  in
  let db = fx.uni.db in
  let graph = Database.graph db in
  let ta' = View_schema.cid_of_exn v1 "TA" in
  let grader' = View_schema.cid_of_exn v1 "Grader" in
  let support' = View_schema.cid_of_exn v1 "SupportStaff" in
  (* TA and Grader inherit boss *)
  Alcotest.(check bool) "TA inherits boss" true (Type_info.has_prop graph ta' "boss");
  Alcotest.(check bool) "Grader inherits boss" true
    (Type_info.has_prop graph grader' "boss");
  (* the extent of SupportStaff is expanded by TA's extent *)
  Alcotest.(check bool) "TA extent flowed into SupportStaff" true
    (Oid.Set.subset (Database.extent db fx.uni.ta) (Database.extent db support'));
  (* the old SupportStaff did not change *)
  Alcotest.(check bool) "old SupportStaff extent unchanged" false
    (Oid.Set.subset
       (Database.extent db fx.uni.ta)
       (Database.extent db fx.uni.support_staff));
  (* the view hierarchy has the new edge *)
  let edges = Generation.edges graph v1 in
  Alcotest.(check bool) "view edge SupportStaff-TA" true
    (List.exists (fun (s, b) -> Oid.equal s support' && Oid.equal b ta') edges)

let test_add_edge_boss_storage () =
  (* after add_edge, a TA object can actually store a boss value *)
  let fx = fixture ~n:0 () in
  ignore (Tsem.define_view_by_names fx.tsem ~name:"VS" fig9_names);
  let v1 =
    Tsem.evolve fx.tsem ~view:"VS" (Change.Add_edge { sup = "SupportStaff"; sub = "TA" })
  in
  let db = fx.uni.db in
  let ta' = View_schema.cid_of_exn v1 "TA" in
  let o = Tse_update.Generic.create db ta' ~init:[ ("boss", Value.String "dean") ] in
  check vpp "boss stored" (Value.String "dean") (Database.get_prop db o "boss");
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

(* ------------------------------------------------------------------ *)
(* 6.6 delete_edge (Figures 10 and 11)                                  *)
(* ------------------------------------------------------------------ *)

let test_delete_edge_prop_a () =
  ignore
    (check_prop_a ~names:fig9_names
       (Change.Delete_edge { sup = "TeachingStaff"; sub = "TA"; connected_to = None }))

let test_delete_edge_fig10 () =
  let fx, v1 =
    check_prop_a ~names:fig9_names
      (Change.Delete_edge { sup = "TeachingStaff"; sub = "TA"; connected_to = None })
  in
  let db = fx.uni.db in
  let graph = Database.graph db in
  let ta' = View_schema.cid_of_exn v1 "TA" in
  let teaching' = View_schema.cid_of_exn v1 "TeachingStaff" in
  (* lecture no longer inherited into TA *)
  Alcotest.(check bool) "lecture gone from TA" false
    (Type_info.has_prop graph ta' "lecture");
  (* hours (TA's own) still there *)
  Alcotest.(check bool) "hours kept" true (Type_info.has_prop graph ta' "hours");
  (* TeachingStaff's extent no longer contains the TAs *)
  Alcotest.(check bool) "TA extent hidden from TeachingStaff" true
    (Oid.Set.is_empty
       (Oid.Set.inter
          (Database.extent db fx.uni.ta)
          (Database.extent db teaching')));
  (* the view hierarchy lost the edge *)
  let edges = Generation.edges graph v1 in
  Alcotest.(check bool) "no TeachingStaff-TA edge" false
    (List.exists (fun (s, b) -> Oid.equal s teaching' && Oid.equal b ta') edges)

let test_common_sub_fig11 () =
  (* the diamond of Figure 11: deleting Csup-Csub must not remove from v
     the instances still visible through C1..C3 *)
  let db = Database.create () in
  let g = Database.graph db in
  let reg name supers =
    let c = Schema_graph.register_base g ~name ~props:[] ~supers in
    Database.note_new_class db c;
    c
  in
  let v = reg "V" [] in
  let csup = reg "Csup" [ v ] in
  let csub = reg "Csub" [ csup ] in
  let c1 = reg "C1" [ v; csub ] in
  let c2 = reg "C2" [ v; csub ] in
  let c3 = reg "C3" [ v; csub ] in
  let commons = Macros.common_sub db ~v ~sub:csub ~sup:csup ~sub':csub in
  check
    Alcotest.(list string)
    "commonSub returns C1 C2 C3"
    [ "C1"; "C2"; "C3" ]
    (List.sort String.compare (List.map (Schema_graph.name_of g) commons));
  (* end-to-end: instances of C1..C3 stay visible in V after the change *)
  let o1 = Database.create_object db c1 ~init:[] in
  let o2 = Database.create_object db c2 ~init:[] in
  let o3 = Database.create_object db c3 ~init:[] in
  let osub = Database.create_object db csub ~init:[] in
  let tsem = Tsem.of_database db in
  ignore
    (Tsem.define_view_by_names tsem ~name:"W"
       [ "V"; "Csup"; "Csub"; "C1"; "C2"; "C3" ]);
  let v1 =
    Tsem.evolve tsem ~view:"W"
      (Change.Delete_edge { sup = "Csup"; sub = "Csub"; connected_to = None })
  in
  let vnew = View_schema.cid_of_exn v1 "V" in
  let csup_new = View_schema.cid_of_exn v1 "Csup" in
  List.iter
    (fun o ->
      Alcotest.(check bool) "still visible in V" true
        (Oid.Set.mem o (Database.extent db vnew)))
    [ o1; o2; o3 ];
  Alcotest.(check bool) "pure Csub instance hidden from Csup" false
    (Oid.Set.mem osub (Database.extent db csup_new));
  (* C1 reaches Csup only through the deleted edge, so it leaves Csup too *)
  Alcotest.(check bool) "C1 instance left Csup as well" false
    (Oid.Set.mem o1 (Database.extent db csup_new));
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let test_delete_edge_connected_to () =
  let fx, v1 =
    check_prop_a ~names:fig9_names
      (Change.Delete_edge
         { sup = "TeachingStaff"; sub = "TA"; connected_to = Some "Person" })
  in
  ignore fx;
  ignore v1

(* ------------------------------------------------------------------ *)
(* 6.7 add_class (Figure 12), 6.9 insert_class / delete_class_2         *)
(* ------------------------------------------------------------------ *)

let test_add_class_base_anchor_prop_a () =
  ignore
    (check_prop_a (Change.Add_class { cls = "Freshman"; connected_to = Some "Student" }))

let test_add_class_fig12_virtual_anchor () =
  (* HonorStudent is a select virtual class; the new class must end up its
     subclass, empty, and correctly entangled with the predicate *)
  let fx = fixture ~n:0 () in
  let db = fx.uni.db in
  let honor =
    Tse_algebra.Ops.select db ~name:"HonorStudent" ~src:fx.uni.student
      Expr.(attr "gpa" >= Const (Value.Float 3.5))
  in
  ignore honor;
  ignore
    (Tsem.define_view_by_names fx.tsem ~name:"VS"
       [ "Person"; "Student"; "HonorStudent" ]);
  let v1 =
    Tsem.evolve fx.tsem ~view:"VS"
      (Change.Add_class { cls = "HonorParttime"; connected_to = Some "HonorStudent" })
  in
  let graph = Database.graph db in
  let cadd = View_schema.cid_of_exn v1 "HonorParttime" in
  Alcotest.(check bool) "subclass of HonorStudent" true
    (Schema_graph.is_strict_ancestor graph ~anc:honor ~desc:cadd);
  check Alcotest.int "initially empty (Figure 13 (e))" 0
    (Database.extent_size db cadd);
  (* creating through the new class: the object appears in HonorStudent
     and Student too — but only if it satisfies the select predicate *)
  let o =
    Tse_update.Generic.create db cadd
      ~init:[ ("name", Value.String "zoe"); ("gpa", Value.Float 3.9) ]
  in
  Alcotest.(check bool) "visible in HonorStudent" true
    (Oid.Set.mem o (Database.extent db honor));
  Alcotest.(check bool) "visible in Student" true
    (Oid.Set.mem o (Database.extent db fx.uni.student));
  (try
     ignore
       (Tse_update.Generic.create db cadd
          ~init:[ ("name", Value.String "lou"); ("gpa", Value.Float 2.0) ]);
     Alcotest.fail "expected value-closure rejection"
   with Tse_update.Generic.Rejected _ -> ());
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let test_insert_class_fig14 () =
  let fx, v1 =
    check_prop_a
      (Change.Insert_class { cls = "Middle"; sup = "Person"; sub = "Student" })
  in
  let graph = Database.graph fx.uni.db in
  let middle = View_schema.cid_of_exn v1 "Middle" in
  let person = View_schema.cid_of_exn v1 "Person" in
  let student = View_schema.cid_of_exn v1 "Student" in
  Alcotest.(check bool) "Middle below Person" true
    (Schema_graph.is_strict_ancestor graph ~anc:person ~desc:middle);
  Alcotest.(check bool) "Student below Middle" true
    (Schema_graph.is_strict_ancestor graph ~anc:middle ~desc:student);
  (* Middle's global extent covers the students (Section 6.9.1) *)
  Alcotest.(check bool) "students visible in Middle" true
    (Oid.Set.subset
       (Database.extent fx.uni.db student)
       (Database.extent fx.uni.db middle))

let test_delete_class_removes_from_view_only () =
  let fx, v1 = check_prop_a (Change.Delete_class { cls = "TA" }) in
  Alcotest.(check bool) "TA gone from view" true
    (View_schema.cid_of v1 "TA" = None);
  (* the class and its objects are globally intact *)
  Alcotest.(check bool) "TA alive globally" true
    (Schema_graph.mem (Database.graph fx.uni.db) fx.uni.ta);
  Alcotest.(check bool) "TA extent intact" false
    (Oid.Set.is_empty (Database.extent fx.uni.db fx.uni.ta))

let test_delete_class_2_fig15 () =
  let fx, v1 =
    check_prop_a ~names:[ "Person"; "Student"; "TA"; "Grad" ]
      (Change.Delete_class_2 { cls = "Student" })
  in
  let graph = Database.graph fx.uni.db in
  (* Student is gone; Grad and TA are re-attached under Person in the view *)
  Alcotest.(check bool) "Student gone" true (View_schema.cid_of v1 "Student" = None);
  let person = View_schema.cid_of_exn v1 "Person" in
  let grad = View_schema.cid_of_exn v1 "Grad" in
  let ta = View_schema.cid_of_exn v1 "TA" in
  let edges = Generation.edges graph v1 in
  Alcotest.(check bool) "Person-Grad edge" true
    (List.exists (fun (s, b) -> Oid.equal s person && Oid.equal b grad) edges);
  Alcotest.(check bool) "Person-TA edge" true
    (List.exists (fun (s, b) -> Oid.equal s person && Oid.equal b ta) edges);
  (* Student's local property is no longer inherited *)
  Alcotest.(check bool) "gpa gone from Grad" false
    (Type_info.has_prop graph grad "gpa");
  (* but Grad's own property survives *)
  Alcotest.(check bool) "thesis kept" true (Type_info.has_prop graph grad "thesis")

(* ------------------------------------------------------------------ *)
(* Proposition B across all operators                                   *)
(* ------------------------------------------------------------------ *)

let test_prop_b_all_operators () =
  let other = [ "Person"; "Student"; "Grad"; "TeachingStaff"; "TA" ] in
  List.iter
    (fun change -> check_prop_b ~names:fig9_names ~other_names:other change)
    [
      add_register;
      Change.Delete_attribute { cls = "Student"; attr_name = "gpa" };
      Change.Add_method
        { cls = "Person"; method_name = "adult"; body = Expr.(attr "age" >= int 18) };
      Change.Add_edge { sup = "SupportStaff"; sub = "TA" };
      Change.Delete_edge { sup = "TeachingStaff"; sub = "TA"; connected_to = None };
      Change.Add_class { cls = "Freshman"; connected_to = Some "Student" };
      Change.Delete_class { cls = "Grader" };
      Change.Insert_class { cls = "Middle"; sup = "Person"; sub = "Student" };
    ]

(* the contrast: the direct oracle DOES break other views *)
let test_direct_breaks_other_views () =
  let fx = fixture () in
  let _v1, v2 = define_views fx uni_view_names in
  ignore v2;
  let other =
    View_schema.make ~name:"OTHER" ~version:0 (Database.graph fx.oracle.db)
      [ fx.oracle.person; fx.oracle.student; fx.oracle.grad ]
  in
  let before = Verify.view_fingerprint fx.oracle.db other in
  let oracle_view =
    View_schema.make ~name:"VS" ~version:0 (Database.graph fx.oracle.db)
      [ fx.oracle.person; fx.oracle.student; fx.oracle.ta ]
  in
  ignore (Direct.apply fx.oracle.db oracle_view add_register);
  let after = Verify.view_fingerprint fx.oracle.db other in
  Alcotest.(check bool) "direct modification leaks into other views" false
    (String.equal before after)

(* ------------------------------------------------------------------ *)
(* Section 7: version merging (Figure 16)                               *)
(* ------------------------------------------------------------------ *)

let test_merge_fig16 () =
  let fx = fixture ~n:12 () in
  ignore (Tsem.define_view_by_names fx.tsem ~name:"U1" uni_view_names);
  ignore (Tsem.define_view_by_names fx.tsem ~name:"U2" uni_view_names);
  (* user 1 adds register; user 2 adds student_id *)
  ignore (Tsem.evolve fx.tsem ~view:"U1" add_register);
  ignore
    (Tsem.evolve fx.tsem ~view:"U2"
       (Change.Add_attribute { cls = "Student"; def = Change.attr "student_id" Value.TInt }));
  let merged = Merge.merge_current fx.tsem ~view1:"U1" ~view2:"U2" ~new_name:"U3" in
  let graph = Database.graph fx.uni.db in
  (* Person is the same global class in both: appears once *)
  let persons =
    List.filter
      (fun cid -> String.equal (Schema_graph.name_of graph cid) "Person")
      (View_schema.classes merged)
  in
  check Alcotest.int "one Person" 1 (List.length persons);
  (* the two Students are genuinely different classes: both kept, renamed *)
  let student_names =
    List.filter_map (View_schema.local_name merged) (View_schema.classes merged)
    |> List.filter (fun n -> String.length n >= 7 && String.sub n 0 7 = "Student")
    |> List.sort String.compare
  in
  check Alcotest.int "two Students, disambiguated" 2 (List.length student_names);
  Alcotest.(check bool) "suffixed names" true
    (List.for_all (fun n -> String.length n > String.length "Student") student_names);
  (* both carry their own new attribute; objects are shared underneath *)
  let s1 = View_schema.cid_of_exn (Tsem.current fx.tsem "U1") "Student" in
  let s2 = View_schema.cid_of_exn (Tsem.current fx.tsem "U2") "Student" in
  Alcotest.(check bool) "register on U1's Student" true
    (Type_info.has_prop graph s1 "register");
  Alcotest.(check bool) "student_id on U2's Student" true
    (Type_info.has_prop graph s2 "student_id");
  Alcotest.(check bool) "same extent (shared objects)" true
    (Oid.Set.equal (Database.extent fx.uni.db s1) (Database.extent fx.uni.db s2))

let test_merge_no_duplicate_attribute_storage () =
  (* adding the SAME attribute in two views converges to one class thanks
     to duplicate detection (Section 7: no duplicate classes) *)
  let fx = fixture ~n:6 () in
  ignore (Tsem.define_view_by_names fx.tsem ~name:"U1" uni_view_names);
  ignore (Tsem.define_view_by_names fx.tsem ~name:"U2" uni_view_names);
  ignore (Tsem.evolve fx.tsem ~view:"U1" add_register);
  ignore (Tsem.evolve fx.tsem ~view:"U2" add_register);
  let s1 = View_schema.cid_of_exn (Tsem.current fx.tsem "U1") "Student" in
  let s2 = View_schema.cid_of_exn (Tsem.current fx.tsem "U2") "Student" in
  Alcotest.(check bool)
    "the two evolutions share one refine class (no wasted storage)" true
    (Oid.equal s1 s2)

(* ------------------------------------------------------------------ *)
(* Sequences of changes                                                 *)
(* ------------------------------------------------------------------ *)

let test_change_sequence () =
  let fx = fixture () in
  ignore (Tsem.define_view_by_names fx.tsem ~name:"VS" fig9_names);
  let final =
    Tsem.evolve_many fx.tsem ~view:"VS"
      [
        add_register;
        Change.Add_method
          { cls = "Person"; method_name = "adult"; body = Expr.(attr "age" >= int 18) };
        Change.Add_edge { sup = "SupportStaff"; sub = "TA" };
        Change.Delete_attribute { cls = "Student"; attr_name = "major" };
        Change.Add_class { cls = "Freshman"; connected_to = Some "Student" };
      ]
  in
  check Alcotest.int "five versions on top of v0" 5 final.View_schema.version;
  let graph = Database.graph fx.uni.db in
  let student = View_schema.cid_of_exn final "Student" in
  Alcotest.(check bool) "register present" true
    (Type_info.has_prop graph student "register");
  Alcotest.(check bool) "major gone" false (Type_info.has_prop graph student "major");
  Alcotest.(check bool) "adult present" true (Type_info.has_prop graph student "adult");
  (* every historical version remains registered and intact *)
  check Alcotest.int "history depth" 6
    (List.length (Tse_views.History.versions (Tsem.history fx.tsem) "VS"));
  Alcotest.(check (list string)) "consistent" [] (Database.check fx.uni.db);
  Alcotest.(check bool) "updatable" true (Verify.all_updatable fx.uni.db final)

let test_rename_class () =
  let fx, v1 =
    check_prop_a (Change.Rename_class { old_name = "TA"; new_name = "Assistant" })
  in
  let graph = Database.graph fx.uni.db in
  (* purely view-local: the global class keeps its name *)
  check Alcotest.string "global name intact" "TA"
    (Schema_graph.name_of graph (View_schema.cid_of_exn v1 "Assistant"));
  Alcotest.(check bool) "old local name gone" true
    (View_schema.cid_of v1 "TA" = None);
  (* subsequent changes address the new name *)
  let v2 =
    Tsem.evolve fx.tsem ~view:"VS"
      (Change.Add_attribute { cls = "Assistant"; def = Change.attr "badge" Value.TInt })
  in
  Alcotest.(check bool) "evolvable under new name" true
    (Type_info.has_prop graph (View_schema.cid_of_exn v2 "Assistant") "badge");
  (* renaming onto a taken name is rejected *)
  try
    ignore
      (Tsem.evolve fx.tsem ~view:"VS"
         (Change.Rename_class { old_name = "Assistant"; new_name = "Person" }));
    Alcotest.fail "expected rejection"
  with Change.Rejected _ -> ()

let suite =
  [
    Alcotest.test_case "rename_class: view-local, Prop A" `Quick
      test_rename_class;
    Alcotest.test_case "add_attribute: Proposition A" `Quick
      test_add_attribute_prop_a;
    Alcotest.test_case "add_attribute: Figure 7 pipeline" `Quick
      test_add_attribute_fig7;
    Alcotest.test_case "add_attribute: old/new program interop" `Quick
      test_add_attribute_interop;
    Alcotest.test_case "add_attribute: rejects existing name" `Quick
      test_add_attribute_rejects_existing;
    Alcotest.test_case "add_method: Proposition A" `Quick test_add_method_prop_a;
    Alcotest.test_case "delete_attribute: Proposition A" `Quick
      test_delete_attribute_prop_a;
    Alcotest.test_case "delete_attribute: semantics (Fig 8)" `Quick
      test_delete_attribute_semantics;
    Alcotest.test_case "delete_attribute: restores suppressed" `Quick
      test_delete_attribute_restores_suppressed;
    Alcotest.test_case "delete_attribute: rejects non-local" `Quick
      test_delete_attribute_rejects_nonlocal;
    Alcotest.test_case "delete_attribute: view-relative local" `Quick
      test_delete_attribute_view_relative_local;
    Alcotest.test_case "delete_method: Proposition A" `Quick
      test_delete_method_prop_a;
    Alcotest.test_case "add_edge: Proposition A" `Quick test_add_edge_prop_a;
    Alcotest.test_case "add_edge: Figure 9 semantics" `Quick test_add_edge_fig9;
    Alcotest.test_case "add_edge: new attributes storable" `Quick
      test_add_edge_boss_storage;
    Alcotest.test_case "delete_edge: Proposition A" `Quick test_delete_edge_prop_a;
    Alcotest.test_case "delete_edge: Figure 10 semantics" `Quick
      test_delete_edge_fig10;
    Alcotest.test_case "delete_edge: commonSub diamond (Fig 11)" `Quick
      test_common_sub_fig11;
    Alcotest.test_case "delete_edge: connected_to" `Quick
      test_delete_edge_connected_to;
    Alcotest.test_case "add_class: Proposition A (base anchor)" `Quick
      test_add_class_base_anchor_prop_a;
    Alcotest.test_case "add_class: virtual anchor (Fig 12/13)" `Quick
      test_add_class_fig12_virtual_anchor;
    Alcotest.test_case "insert_class: Figure 14" `Quick test_insert_class_fig14;
    Alcotest.test_case "delete_class: view-only removal" `Quick
      test_delete_class_removes_from_view_only;
    Alcotest.test_case "delete_class_2: Figure 15" `Quick test_delete_class_2_fig15;
    Alcotest.test_case "Proposition B: all operators" `Quick
      test_prop_b_all_operators;
    Alcotest.test_case "direct modification breaks other views" `Quick
      test_direct_breaks_other_views;
    Alcotest.test_case "merge: Figure 16" `Quick test_merge_fig16;
    Alcotest.test_case "merge: duplicate change converges" `Quick
      test_merge_no_duplicate_attribute_storage;
    Alcotest.test_case "sequence of five changes" `Quick test_change_sequence;
  ]
