(* Unit tests for the Section 6 auxiliary macros: commonSub,
   findProperties and the origin-class trace. *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_core

let check = Alcotest.check

let names g cids =
  List.map (Schema_graph.name_of g) cids |> List.sort String.compare

let diamond () =
  (* V > Csup > Csub; C1, C2 under both V and Csub; D under C1 *)
  let db = Database.create () in
  let g = Database.graph db in
  let reg name props supers =
    let c = Schema_graph.register_base g ~name ~props ~supers in
    Database.note_new_class db c;
    c
  in
  let o0 = Oid.of_int 0 in
  let v = reg "V" [ Prop.stored ~origin:o0 "top" Value.TInt ] [] in
  let csup = reg "Csup" [ Prop.stored ~origin:o0 "mid" Value.TInt ] [ v ] in
  let csub = reg "Csub" [ Prop.stored ~origin:o0 "low" Value.TInt ] [ csup ] in
  let c1 = reg "C1" [] [ v; csub ] in
  let c2 = reg "C2" [] [ v; csub ] in
  let d = reg "D" [] [ c1 ] in
  (db, g, v, csup, csub, c1, c2, d)

let test_common_sub_basic () =
  let db, g, v, csup, csub, _, _, _ = diamond () in
  let commons = Macros.common_sub db ~v ~sub:csub ~sup:csup ~sub':csub in
  check Alcotest.(list string) "greatest common subclasses" [ "C1"; "C2" ]
    (names g commons)

let test_common_sub_greatest_only () =
  (* D (under C1) is common too, but not GREATEST: only C1/C2 returned *)
  let db, g, v, csup, csub, _, _, d = diamond () in
  let commons = Macros.common_sub db ~v ~sub:csub ~sup:csup ~sub':csub in
  Alcotest.(check bool) "D excluded" false
    (List.mem (Schema_graph.name_of g d) (names g commons))

let test_common_sub_empty_when_no_other_path () =
  let db = Database.create () in
  let g = Database.graph db in
  let reg name supers =
    let c = Schema_graph.register_base g ~name ~props:[] ~supers in
    Database.note_new_class db c;
    c
  in
  let v = reg "V" [] in
  let csup = reg "Csup" [ v ] in
  let csub = reg "Csub" [ csup ] in
  check Alcotest.int "no survivors" 0
    (List.length (Macros.common_sub db ~v ~sub:csub ~sup:csup ~sub':csub))

let test_find_properties_only_through_edge () =
  let db, _, _, csup, csub, _, _, _ = diamond () in
  (* properties reaching Csub only through Csup-Csub: mid (from Csup);
     top survives via... no — Csub's only super is Csup, so top is lost
     too; low is local and stays *)
  let y = Macros.find_properties db ~w:csub ~sup:csup ~sub:csub in
  check Alcotest.(list string) "lost properties" [ "mid"; "top" ] y

let test_find_properties_keeps_multipath () =
  let db, _, _, csup, csub, c1, _, _ = diamond () in
  (* for C1, 'top' survives via the direct V edge and 'low' via the intact
     Csub-C1 edge; only 'mid' arrived exclusively through Csup-Csub *)
  let y = Macros.find_properties db ~w:c1 ~sup:csup ~sub:csub in
  check Alcotest.(list string) "only mid is lost" [ "mid" ]
    (List.sort String.compare y)

let test_origin_classes () =
  let u = Tse_workload.University.build () in
  let db = u.db in
  let g = Database.graph db in
  (* base class: its own origin *)
  check Alcotest.(list string) "base" [ "Person" ]
    (names g (Macros.origin_classes db u.person));
  (* chain of selects: still one origin *)
  let a =
    Tse_algebra.Ops.select db ~name:"A" ~src:u.student Expr.(attr "age" >= int 1)
  in
  let b = Tse_algebra.Ops.select db ~name:"B" ~src:a Expr.(attr "age" >= int 2) in
  check Alcotest.(list string) "chained select" [ "Student" ]
    (names g (Macros.origin_classes db b));
  (* union: both branches' origins (the add-class replay needs them all) *)
  let un = Tse_algebra.Ops.union db ~name:"U" a u.support_staff in
  check Alcotest.(list string) "union merges origins"
    [ "Student"; "SupportStaff" ]
    (List.map (Schema_graph.name_of g) (Macros.origin_classes db un))

let suite =
  [
    Alcotest.test_case "commonSub: diamond survivors" `Quick test_common_sub_basic;
    Alcotest.test_case "commonSub: greatest only" `Quick
      test_common_sub_greatest_only;
    Alcotest.test_case "commonSub: empty without other paths" `Quick
      test_common_sub_empty_when_no_other_path;
    Alcotest.test_case "findProperties: through-edge only" `Quick
      test_find_properties_only_through_edge;
    Alcotest.test_case "findProperties: multipath kept" `Quick
      test_find_properties_keeps_multipath;
    Alcotest.test_case "origin classes" `Quick test_origin_classes;
  ]
