(* Tests for view schemas, hierarchy generation, type closure and the
   view schema history. *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_views

let check = Alcotest.check
let uni () = Tse_workload.University.build ()

let view_of u names =
  let g = Database.graph u.Tse_workload.University.db in
  View_schema.make ~name:"V" ~version:0 g
    (List.map (fun n -> (Schema_graph.find_by_name_exn g n).Klass.cid) names)

let test_view_basics () =
  let u = uni () in
  let v = view_of u [ "Person"; "Student"; "TA" ] in
  check Alcotest.int "size" 3 (View_schema.size v);
  Alcotest.(check bool) "mem" true (View_schema.mem v u.student);
  Alcotest.(check bool) "not mem" false (View_schema.mem v u.grad);
  check (Alcotest.option Alcotest.string) "local name" (Some "Student")
    (View_schema.local_name v u.student);
  View_schema.rename v u.student "Pupil";
  check
    (Alcotest.option (Alcotest.testable Oid.pp Oid.equal))
    "renamed lookup" (Some u.student) (View_schema.cid_of v "Pupil");
  Alcotest.(check bool) "old name free" true (View_schema.cid_of v "Student" = None);
  (try
     View_schema.rename v u.person "Pupil";
     Alcotest.fail "expected name clash"
   with Invalid_argument _ -> ())

let test_generation_skips_hidden_middle () =
  let u = uni () in
  (* Staff is NOT in the view: TeachingStaff connects directly to Person *)
  let v = view_of u [ "Person"; "TeachingStaff"; "TA" ] in
  let g = Database.graph u.db in
  let edges = Generation.edges g v in
  let names =
    List.map
      (fun (s, b) ->
        (Schema_graph.name_of g s, Schema_graph.name_of g b))
      edges
    |> List.sort compare
  in
  check
    Alcotest.(list (pair string string))
    "edges skip hidden classes"
    [ ("Person", "TeachingStaff"); ("TeachingStaff", "TA") ]
    names

let test_generation_diamond () =
  let u = uni () in
  let v = view_of u [ "Person"; "Student"; "TeachingStaff"; "TA" ] in
  let g = Database.graph u.db in
  let supers = Generation.direct_supers_in_view g v u.ta in
  check Alcotest.int "TA has two view supers" 2 (List.length supers);
  check Alcotest.(list string) "roots" [ "Person" ]
    (List.map (Schema_graph.name_of g) (Generation.roots g v))

let test_descendants_in_view () =
  let u = uni () in
  let v = view_of u [ "Person"; "Student"; "TA"; "Grader" ] in
  let g = Database.graph u.db in
  let ds = Generation.descendants_in_view g v u.student in
  check Alcotest.(list string) "descendants incl. self, topmost first"
    [ "Student"; "TA"; "Grader" ]
    (List.map (Schema_graph.name_of g) ds)

let test_type_closure () =
  let u = uni () in
  let g = Database.graph u.db in
  (* add a class-typed attribute: Student.advisor : ref<Staff> *)
  Klass.add_local_prop
    (Schema_graph.find_exn g u.student)
    (Prop.stored ~origin:u.student "advisor" (Value.TRef "Staff"));
  (* Person is deliberately absent: no view class covers Staff *)
  let v = view_of u [ "Student" ] in
  Alcotest.(check bool) "not closed" false (Closure.is_closed u.db v);
  (match Closure.missing u.db v with
  | [ (cid, attr, cname) ] ->
    Alcotest.(check bool) "violating class" true (Oid.equal cid u.student);
    check Alcotest.string "attr" "advisor" attr;
    check Alcotest.string "domain" "Staff" cname
  | _ -> Alcotest.fail "expected exactly one violation");
  let added = Closure.complete u.db v in
  check Alcotest.int "one class added" 1 (List.length added);
  Alcotest.(check bool) "closed now" true (Closure.is_closed u.db v);
  Alcotest.(check bool) "Staff pulled in" true (View_schema.mem v u.staff)

let test_type_closure_covered_by_ancestor () =
  let u = uni () in
  let g = Database.graph u.db in
  Klass.add_local_prop
    (Schema_graph.find_exn g u.student)
    (Prop.stored ~origin:u.student "advisor" (Value.TRef "Staff"));
  (* Person (an ancestor of Staff) is in the view: the reference target is
     representable, so the view counts as closed *)
  let v = view_of u [ "Person"; "Student" ] in
  Alcotest.(check bool) "Person does not cover Staff? it does" true
    (Closure.is_closed u.db v
    = (* Person is an ancestor of Staff, so covered *) true)

let test_history () =
  let u = uni () in
  let g = Database.graph u.db in
  let h = History.create () in
  let v0 = View_schema.make ~name:"V" ~version:0 g [ u.person ] in
  History.register h v0;
  (* wrong version number is rejected *)
  (try
     History.register h (View_schema.make ~name:"V" ~version:5 g [ u.person ]);
     Alcotest.fail "expected version gap rejection"
   with Invalid_argument _ -> ());
  let v1 = History.replace h (View_schema.make ~name:"V" ~version:0 g [ u.student ]) in
  check Alcotest.int "auto versioned" 1 v1.View_schema.version;
  check Alcotest.int "two versions" 2 (List.length (History.versions h "V"));
  (* old versions stay accessible *)
  (match History.version h "V" 0 with
  | Some v -> Alcotest.(check bool) "v0 intact" true (View_schema.mem v u.person)
  | None -> Alcotest.fail "v0 lost");
  check Alcotest.(list string) "names" [ "V" ] (History.view_names h);
  (match History.current h "V" with
  | Some v -> check Alcotest.int "current is v1" 1 v.View_schema.version
  | None -> Alcotest.fail "no current")

let test_substitute () =
  let u = uni () in
  let v = view_of u [ "Person"; "Student" ] in
  let v' = View_schema.substitute v ~old_cid:u.student ~new_cid:u.grad in
  (* the local name travels to the replacement class *)
  check
    (Alcotest.option (Alcotest.testable Oid.pp Oid.equal))
    "name points at new class" (Some u.grad) (View_schema.cid_of v' "Student");
  (* the original view is untouched *)
  check
    (Alcotest.option (Alcotest.testable Oid.pp Oid.equal))
    "original untouched" (Some u.student) (View_schema.cid_of v "Student")

let suite =
  [
    Alcotest.test_case "view schema basics + renaming" `Quick test_view_basics;
    Alcotest.test_case "generation skips hidden classes" `Quick
      test_generation_skips_hidden_middle;
    Alcotest.test_case "generation keeps diamonds" `Quick test_generation_diamond;
    Alcotest.test_case "descendants within view" `Quick test_descendants_in_view;
    Alcotest.test_case "type closure check and completion" `Quick
      test_type_closure;
    Alcotest.test_case "type closure covered by ancestor" `Quick
      test_type_closure_covered_by_ancestor;
    Alcotest.test_case "view schema history" `Quick test_history;
    Alcotest.test_case "substitution keeps local names" `Quick test_substitute;
  ]
