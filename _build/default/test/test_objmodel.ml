(* Tests for the two multiple-classification architectures (Section 4). *)

open Tse_store
open Tse_schema
open Tse_objmodel

let check = Alcotest.check
let vpp = Alcotest.testable Value.pp Value.equal

let fresh_slicing () =
  let cars = Tse_workload.Cars.build () in
  let stats = Stats.create () in
  cars, Slicing.create ~graph:cars.graph ~heap:cars.heap ~stats

let fresh_intersection () =
  let cars = Tse_workload.Cars.build () in
  let stats = Stats.create () in
  cars, Intersection.create ~graph:cars.graph ~heap:cars.heap ~stats

let test_slicing_create_and_membership () =
  let cars, m = fresh_slicing () in
  let o = Slicing.create_object m cars.jeep in
  Alcotest.(check bool) "member of Jeep" true (Slicing.is_member m o cars.jeep);
  Alcotest.(check bool) "member of Car (ancestor)" true
    (Slicing.is_member m o cars.car);
  Alcotest.(check bool) "not Imported" false (Slicing.is_member m o cars.imported);
  check Alcotest.int "two impls (Car, Jeep)" 2 (Slicing.impl_count m o);
  Alcotest.(check bool) "member of root implicitly" true
    (Slicing.is_member m o (Schema_graph.root cars.graph))

let test_slicing_multiple_classification () =
  let cars, m = fresh_slicing () in
  let o = Slicing.create_object m cars.jeep in
  (* the Figure 5 scenario: o becomes Imported too, without losing Jeep *)
  Slicing.add_to_class m o cars.imported;
  Alcotest.(check bool) "still Jeep" true (Slicing.is_member m o cars.jeep);
  Alcotest.(check bool) "now Imported" true (Slicing.is_member m o cars.imported);
  check Alcotest.int "three impls" 3 (Slicing.impl_count m o);
  (* attributes resolve to the right slice *)
  Slicing.set_attr m o "nation" (Value.String "jp");
  Slicing.set_attr m o "model" (Value.String "x1");
  check vpp "nation on Imported slice" (Value.String "jp")
    (Slicing.get_attr m o "nation");
  check vpp "model on Car slice" (Value.String "x1")
    (Slicing.get_attr m o "model");
  let impl_imported = Option.get (Slicing.impl_of m o cars.imported) in
  let impl_car = Option.get (Slicing.impl_of m o cars.car) in
  Alcotest.(check bool) "slices are distinct cells" false
    (Oid.equal impl_imported impl_car);
  check vpp "nation physically on imported impl" (Value.String "jp")
    (Heap.get_slot cars.heap impl_imported "nation");
  check vpp "model physically on car impl" (Value.String "x1")
    (Heap.get_slot cars.heap impl_car "model")

let test_slicing_dynamic_declassification () =
  let cars, m = fresh_slicing () in
  let o = Slicing.create_object m cars.jeep in
  Slicing.add_to_class m o cars.imported;
  Slicing.set_attr m o "nation" (Value.String "jp");
  Slicing.remove_from_class m o cars.imported;
  Alcotest.(check bool) "lost Imported" false (Slicing.is_member m o cars.imported);
  Alcotest.(check bool) "kept Jeep" true (Slicing.is_member m o cars.jeep);
  (* removing a superclass removes the subclass types too *)
  Slicing.remove_from_class m o cars.car;
  Alcotest.(check bool) "losing Car loses Jeep" false
    (Slicing.is_member m o cars.jeep);
  check Alcotest.int "no impls left" 0 (Slicing.impl_count m o)

let test_slicing_casting () =
  let cars, m = fresh_slicing () in
  let o = Slicing.create_object m cars.jeep in
  Alcotest.(check bool) "cast to Car works" true
    (Slicing.cast m o cars.car <> None);
  Alcotest.(check bool) "cast to Imported fails" true
    (Slicing.cast m o cars.imported = None);
  (* back-pointer from the impl object *)
  let impl = Option.get (Slicing.cast m o cars.jeep) in
  check
    (Alcotest.option (Alcotest.testable Oid.pp Oid.equal))
    "conceptual back-pointer" (Some o)
    (Slicing.conceptual_of m impl)

let test_slicing_storage_accounting () =
  let cars, m = fresh_slicing () in
  let o = Slicing.create_object m cars.jeep in
  ignore o;
  let s = Slicing.stats m in
  (* 1 conceptual + 2 impls (Car, Jeep) *)
  check Alcotest.int "oids" 3 s.Stats.oids_allocated;
  check Alcotest.int "pointers (2 per impl)" 4 s.Stats.pointers;
  check Alcotest.int "managerial bytes" ((3 * 8) + (4 * 8))
    (Stats.managerial_bytes s);
  check (Alcotest.float 0.01) "oids/object = 1 + n_impl" 3.0
    (Stats.oids_per_object s)

let test_slicing_set_membership_exact () =
  let cars, m = fresh_slicing () in
  let o = Slicing.create_object m cars.jeep in
  Slicing.set_membership m o [ cars.car; cars.imported ];
  Alcotest.(check bool) "jeep dropped" false (Slicing.is_member m o cars.jeep);
  Alcotest.(check bool) "imported added" true (Slicing.is_member m o cars.imported);
  check Alcotest.int "exactly two impls" 2 (Slicing.impl_count m o)

let test_intersection_single_class () =
  let cars, m = fresh_intersection () in
  let o = Intersection.create_object m cars.jeep in
  Alcotest.(check bool) "member of Jeep" true (Intersection.is_member m o cars.jeep);
  Alcotest.(check bool) "member of Car" true (Intersection.is_member m o cars.car);
  Alcotest.(check bool) "not Imported" false
    (Intersection.is_member m o cars.imported);
  let s = Intersection.stats m in
  check Alcotest.int "one oid per object" 1 s.Stats.oids_allocated;
  check Alcotest.int "no intersection class yet" 0
    (Intersection.intersection_classes_created m)

let test_intersection_class_creation () =
  let cars, m = fresh_intersection () in
  let before = Schema_graph.size cars.graph in
  let o = Intersection.create_object m cars.jeep in
  Intersection.add_to_class m o cars.imported;
  (* the Jeep&Imported class of Figure 5 (b) *)
  check Alcotest.int "one intersection class" 1
    (Intersection.intersection_classes_created m);
  check Alcotest.int "graph grew by one" (before + 1)
    (Schema_graph.size cars.graph);
  Alcotest.(check bool) "member of both" true
    (Intersection.is_member m o cars.jeep && Intersection.is_member m o cars.imported);
  let cls = Intersection.class_of m o in
  check Alcotest.string "auto class name" "Jeep&Imported"
    (Schema_graph.name_of cars.graph cls);
  (* a second object with the same combination reuses the class *)
  let o2 = Intersection.create_object m cars.jeep in
  Intersection.add_to_class m o2 cars.imported;
  check Alcotest.int "intersection class reused" 1
    (Intersection.intersection_classes_created m);
  (* reclassification paid a copy + identity swap per object *)
  let s = Intersection.stats m in
  check Alcotest.int "copies" 2 s.Stats.copies;
  check Alcotest.int "identity swaps" 2 s.Stats.identity_swaps

let test_intersection_identity_preserved () =
  let cars, m = fresh_intersection () in
  let o = Intersection.create_object m cars.jeep in
  Intersection.set_attr m o "model" (Value.String "x1");
  Intersection.add_to_class m o cars.imported;
  (* same OID, values survived the copy+swap *)
  check vpp "value preserved across reclassification" (Value.String "x1")
    (Intersection.get_attr m o "model");
  Intersection.set_attr m o "nation" (Value.String "de");
  Intersection.remove_from_class m o cars.imported;
  Alcotest.(check bool) "imported dropped" false
    (Intersection.is_member m o cars.imported);
  check Alcotest.string "back to Jeep"
    "Jeep"
    (Schema_graph.name_of cars.graph (Intersection.class_of m o))

let test_intersection_subclass_implies () =
  let cars, m = fresh_intersection () in
  let o = Intersection.create_object m cars.car in
  (* adding Jeep (a subclass of Car) replaces Car in the combination *)
  Intersection.add_to_class m o cars.jeep;
  check Alcotest.string "class is Jeep, not Car&Jeep" "Jeep"
    (Schema_graph.name_of cars.graph (Intersection.class_of m o));
  check Alcotest.int "no intersection class" 0
    (Intersection.intersection_classes_created m)

let test_intersection_remove_to_root () =
  let cars, m = fresh_intersection () in
  let o = Intersection.create_object m cars.jeep in
  Intersection.remove_from_class m o cars.car;
  (* losing Car loses Jeep too; the object survives at the root *)
  Alcotest.(check bool) "not a car" false (Intersection.is_member m o cars.car);
  check Alcotest.string "reclassified to root" "Object"
    (Schema_graph.name_of cars.graph (Intersection.class_of m o))

let test_both_models_agree_on_membership () =
  (* the same classification script must yield the same membership facts
     under both architectures *)
  let script (type s) (module M : Model_sig.S with type t = s) (m : s)
      (cars : Tse_workload.Cars.t) =
    let o = M.create_object m cars.jeep in
    M.add_to_class m o cars.imported;
    M.set_attr m o "nation" (Value.String "it");
    M.remove_from_class m o cars.jeep;
    let mem c = M.is_member m o c in
    (mem cars.car, mem cars.jeep, mem cars.imported, M.get_attr m o "nation")
  in
  let cars1, m1 = fresh_slicing () in
  let r1 = script (module Slicing) m1 cars1 in
  let cars2, m2 = fresh_intersection () in
  let r2 = script (module Intersection) m2 cars2 in
  Alcotest.(check bool) "same observable state" true (r1 = r2);
  let car, jeep, imported, nation = r1 in
  Alcotest.(check bool) "car kept" true car;
  Alcotest.(check bool) "jeep dropped" false jeep;
  Alcotest.(check bool) "imported kept" true imported;
  check vpp "nation kept" (Value.String "it") nation

let suite =
  [
    Alcotest.test_case "slicing: create + membership closure" `Quick
      test_slicing_create_and_membership;
    Alcotest.test_case "slicing: multiple classification (Fig 5)" `Quick
      test_slicing_multiple_classification;
    Alcotest.test_case "slicing: dynamic declassification" `Quick
      test_slicing_dynamic_declassification;
    Alcotest.test_case "slicing: casting" `Quick test_slicing_casting;
    Alcotest.test_case "slicing: Table 1 storage accounting" `Quick
      test_slicing_storage_accounting;
    Alcotest.test_case "slicing: exact membership sync" `Quick
      test_slicing_set_membership_exact;
    Alcotest.test_case "intersection: single class" `Quick
      test_intersection_single_class;
    Alcotest.test_case "intersection: auto class creation (Fig 5b)" `Quick
      test_intersection_class_creation;
    Alcotest.test_case "intersection: identity preserved by swap" `Quick
      test_intersection_identity_preserved;
    Alcotest.test_case "intersection: subclass subsumes" `Quick
      test_intersection_subclass_implies;
    Alcotest.test_case "intersection: remove to root" `Quick
      test_intersection_remove_to_root;
    Alcotest.test_case "models agree on observable membership" `Quick
      test_both_models_agree_on_membership;
  ]
