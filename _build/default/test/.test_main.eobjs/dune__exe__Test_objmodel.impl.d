test/test_objmodel.ml: Alcotest Heap Intersection Model_sig Oid Option Schema_graph Slicing Stats Tse_objmodel Tse_schema Tse_store Tse_workload Value
