test/test_surface.ml: Alcotest Database Expr List Oid Ops Schema_graph Surface Tse_algebra Tse_db Tse_schema Tse_store Tse_workload Type_info Value
