test/test_schema.ml: Alcotest Expr Invariants Klass List Oid Option Prop Schema_graph Tse_schema Tse_store Type_info Value
