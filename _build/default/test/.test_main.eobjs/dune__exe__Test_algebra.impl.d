test/test_algebra.ml: Alcotest Database Expr Invariants List Oid Ops Option Prop Schema_graph String Tse_algebra Tse_db Tse_schema Tse_store Tse_workload Type_info Value
