test/test_views.ml: Alcotest Closure Database Generation History Klass List Oid Prop Schema_graph Tse_db Tse_schema Tse_store Tse_views Tse_workload Value View_schema
