test/test_macros.ml: Alcotest Database Expr List Macros Oid Prop Schema_graph String Tse_algebra Tse_core Tse_db Tse_schema Tse_store Tse_workload Value
