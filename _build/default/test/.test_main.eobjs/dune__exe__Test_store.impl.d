test/test_store.ml: Alcotest Buffer Filename Heap Index List Oid QCheck QCheck_alcotest Snapshot Stats Sys Tse_store Txn Value
