test/test_db.ml: Alcotest Database Expr Klass List Oid Printf Prop Schema_graph Tse_db Tse_schema Tse_store Tse_workload Value
