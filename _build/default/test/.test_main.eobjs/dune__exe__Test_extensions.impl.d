test/test_extensions.ml: Alcotest Change Database Expr Generation Impact List Oid Schema_graph String Tse_core Tse_db Tse_schema Tse_store Tse_views Tse_workload Tsem Value Verify View_schema
