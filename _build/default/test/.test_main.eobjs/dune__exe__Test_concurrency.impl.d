test/test_concurrency.ml: Alcotest Database List Occ Result Tse_concurrency Tse_core Tse_db Tse_store Tse_workload Value
