test/test_query.ml: Alcotest Database Engine Expr Format Indexes List Oid Option Tse_algebra Tse_core Tse_db Tse_query Tse_schema Tse_store Tse_update Tse_views Tse_workload Value
