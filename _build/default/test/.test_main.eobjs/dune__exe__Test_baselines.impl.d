test/test_baselines.ml: Alcotest Closql Criteria Encore Goose List Orion Result Rose Tse_baselines
