test/test_update.ml: Alcotest Database Expr Generic List Oid Ops Prop Schema_graph Tse_algebra Tse_db Tse_schema Tse_store Tse_update Tse_workload Type_methods Value
