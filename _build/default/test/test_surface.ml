(* Tests for the textual object-algebra surface syntax. *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_algebra

let check = Alcotest.check
let uni () = Tse_workload.University.build ()

let expr_eq a b = Alcotest.(check bool) (a ^ " parses") true
    (Expr.equal (Surface.parse_expr a) b)

let test_expr_literals () =
  expr_eq "42" (Expr.int 42);
  expr_eq "3.5" (Expr.Const (Value.Float 3.5));
  expr_eq "\"hello world\"" (Expr.str "hello world");
  expr_eq "true" (Expr.bool true);
  expr_eq "null" (Expr.Const Value.Null);
  expr_eq "self" Expr.Self;
  expr_eq "age" (Expr.attr "age")

let test_expr_precedence () =
  (* * binds tighter than +, + tighter than comparison, comparison
     tighter than and, and tighter than or *)
  expr_eq "1 + 2 * 3"
    Expr.(Arith (Add, int 1, Arith (Mul, int 2, int 3)));
  expr_eq "age + 1 >= 18 and gpa > 3.0 or vip = true"
    Expr.(
      (Arith (Add, attr "age", int 1) >= int 18 && (attr "gpa" > Const (Value.Float 3.0)))
      || (attr "vip" === bool true));
  expr_eq "not age < 10" Expr.(Not (attr "age" < int 10));
  expr_eq "(1 + 2) * 3" Expr.(Arith (Mul, Arith (Add, int 1, int 2), int 3))

let test_expr_builtins () =
  expr_eq "in_class(Student)" (Expr.In_class "Student");
  expr_eq "isnull(age)" (Expr.Is_null (Expr.attr "age"));
  expr_eq "if age >= 18 then \"adult\" else \"minor\""
    Expr.(If (attr "age" >= int 18, str "adult", str "minor"));
  expr_eq "\"a\" ^ \"b\"" Expr.(Concat (str "a", str "b"))

let test_expr_errors () =
  List.iter
    (fun bad ->
      try
        ignore (Surface.parse_expr bad);
        Alcotest.fail (bad ^ " should not parse")
      with Surface.Parse_error _ -> ())
    [ ""; "1 +"; "(1"; "\"unterminated"; "1 2"; "if 1 then 2"; "@" ]

let test_query_parsing () =
  (match Surface.parse_query "select from Person where age >= 18" with
  | Ops.Select (Ops.Class "Person", _) -> ()
  | _ -> Alcotest.fail "select shape");
  (match Surface.parse_query "hide age, ssn from Person" with
  | Ops.Hide ([ "age"; "ssn" ], Ops.Class "Person") -> ()
  | _ -> Alcotest.fail "hide shape");
  (match Surface.parse_query "union (Student, Staff)" with
  | Ops.Union (Ops.Class "Student", Ops.Class "Staff") -> ()
  | _ -> Alcotest.fail "union shape");
  match
    Surface.parse_query
      "select from (hide ssn from Person) where age >= 18 and in_class(Student)"
  with
  | Ops.Select (Ops.Hide ([ "ssn" ], Ops.Class "Person"), _) -> ()
  | _ -> Alcotest.fail "nested shape"

let test_define_end_to_end () =
  let u = uni () in
  let db = u.db in
  let _young = Database.create_object db u.person ~init:[ ("age", Value.Int 10) ] in
  let old = Database.create_object db u.person ~init:[ ("age", Value.Int 40) ] in
  let vc = Surface.define db "defineVC Adult as (select from Person where age >= 18)" in
  check Alcotest.string "named" "Adult"
    (Schema_graph.name_of (Database.graph db) vc);
  check Alcotest.int "extent" 1 (Database.extent_size db vc);
  Alcotest.(check bool) "member" true (Oid.Set.mem old (Database.extent db vc));
  (* a capacity-augmenting refine through the surface syntax *)
  let vc2 =
    Surface.define db "defineVC Student' as (refine register : bool for Student)"
  in
  Alcotest.(check bool) "stored attribute created" true
    (Type_info.has_prop (Database.graph db) vc2 "register");
  (* a derived method through the surface syntax *)
  let vc3 =
    Surface.define db "defineVC P2 as (refine senior = age >= 65 for Person)"
  in
  let oldest = Database.create_object db u.person ~init:[ ("age", Value.Int 70) ] in
  ignore vc3;
  Alcotest.(check bool) "method evaluates" true
    (Value.equal (Database.get_prop db oldest "senior") (Value.Bool true));
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let test_define_semantic_errors () =
  let u = uni () in
  (try
     ignore (Surface.define u.db "defineVC X as (select from Nowhere where age > 1)");
     Alcotest.fail "unknown class should fail"
   with Ops.Error _ -> ());
  try
    ignore (Surface.define u.db "defineVC Person as (hide age from Person)");
    Alcotest.fail "name clash should fail"
  with Ops.Error _ -> ()

let suite =
  [
    Alcotest.test_case "expression literals" `Quick test_expr_literals;
    Alcotest.test_case "expression precedence" `Quick test_expr_precedence;
    Alcotest.test_case "expression builtins" `Quick test_expr_builtins;
    Alcotest.test_case "expression errors" `Quick test_expr_errors;
    Alcotest.test_case "query parsing" `Quick test_query_parsing;
    Alcotest.test_case "defineVC end to end" `Quick test_define_end_to_end;
    Alcotest.test_case "defineVC semantic errors" `Quick
      test_define_semantic_errors;
  ]
