(* Tests for the related-work simulators and the executable Table 2. *)

open Tse_baselines

let check = Alcotest.check

let test_orion_no_sharing () =
  let t = Orion.create () in
  let v1 = Orion.initial_version t in
  Orion.add_class t v1 "Person" [ "name" ];
  let p = Orion.create_object t v1 ~cls:"Person" [ ("name", "ada") ] in
  let v2 = Orion.derive_version t ~from:v1 [ ("Person", [ "name"; "email" ]) ] in
  Alcotest.(check bool) "invisible under v2" false (Orion.visible t v2 p);
  let p' = Orion.copy_forward t p ~to_:v2 in
  Alcotest.(check bool) "copy has new identity" false (Orion.same_identity p p');
  check Alcotest.(option string) "values converted" (Some "ada")
    (Orion.get t v2 p' "name");
  (* original freezes *)
  (match Orion.set t v1 p "name" "eve" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "frozen object accepted update");
  (* no back propagation *)
  Orion.delete_object t v2 p';
  Alcotest.(check bool) "old version still sees the object" true
    (Orion.visible t v1 p);
  check Alcotest.int "one copy made" 1 (Orion.copies_made t)

let test_orion_whole_schema_copy () =
  let t = Orion.create () in
  let v1 = Orion.initial_version t in
  List.iter (fun c -> Orion.add_class t v1 c [ "x" ]) [ "A"; "B"; "C"; "D" ];
  check Alcotest.int "four classes" 4 (Orion.class_count_total t);
  ignore (Orion.derive_version t ~from:v1 [ ("A", [ "x"; "y" ]) ]);
  (* deriving duplicated ALL classes, not just the changed one *)
  check Alcotest.int "eight class records" 8 (Orion.class_count_total t)

let test_encore_handlers () =
  let t = Encore.create () in
  let v1 = Encore.define_type t "Person" [ "name" ] in
  let p = Encore.create_object t "Person" v1 [ ("name", "ada") ] in
  let v2 = Encore.new_type_version t "Person" [ "name"; "email" ] in
  (* shared instance: readable through the new version *)
  check
    (Alcotest.result Alcotest.string Alcotest.string)
    "name readable" (Ok "ada")
    (Encore.read t ~as_of:v2 p "name");
  (* missing attribute fails without a handler *)
  Alcotest.(check bool) "email needs handler" true
    (Result.is_error (Encore.read t ~as_of:v2 p "email"));
  Encore.install_handler t "Person" ~from_version:v1 ~attr:"email" (fun _ ->
      "unknown@example");
  check
    (Alcotest.result Alcotest.string Alcotest.string)
    "handler answers" (Ok "unknown@example")
    (Encore.read t ~as_of:v2 p "email");
  check Alcotest.int "one handler = one unit of user effort" 1
    (Encore.handlers_installed t)

let test_closql_conversion_chain () =
  let t = Closql.create () in
  let v1 = Closql.define_class t "P" [ "a" ] in
  let _v2 = Closql.new_class_version t "P" [ "a"; "b" ] in
  let v3 = Closql.new_class_version t "P" [ "a"; "b"; "c" ] in
  let o = Closql.create_object t "P" v1 [ ("a", "1") ] in
  Closql.install_update t "P" ~from_version:v1 ~attr:"b" (fun slots ->
      match List.assoc_opt "a" slots with Some a -> a ^ "b" | None -> "b");
  Closql.install_update t "P" ~from_version:(List.nth (Closql.versions_of t "P") 1)
    ~attr:"c" (fun _ -> "c0");
  let before = Closql.conversions_performed t in
  check
    (Alcotest.result Alcotest.string Alcotest.string)
    "b synthesized across the chain" (Ok "1b")
    (Closql.read t ~as_of:v3 o "b");
  check
    (Alcotest.result Alcotest.string Alcotest.string)
    "c synthesized" (Ok "c0")
    (Closql.read t ~as_of:v3 o "c");
  Alcotest.(check bool) "conversions cost counted" true
    (Closql.conversions_performed t > before);
  check Alcotest.int "two functions = two units of effort" 2
    (Closql.functions_installed t)

let test_goose_composition () =
  let t = Goose.create () in
  let pv1 = Goose.define_class t "Person" [ "name" ] in
  let sv1 = Goose.define_class t "Student" ~super:"Person" [ "gpa" ] in
  let pv2 = Goose.new_class_version t "Person" [ "name"; "email" ] in
  (* flexibility: mix old Student with new Person *)
  (match Goose.compose t [ ("Person", pv2); ("Student", sv1) ] with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  (* consistency checking: a composition missing a needed superclass fails *)
  (match Goose.compose t [ ("Student", sv1) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "inconsistent composition accepted");
  (* wrong version ids are rejected *)
  (match Goose.compose t [ ("Person", sv1) ] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign version accepted");
  (* shared instances *)
  let o = Goose.create_object t "Person" pv1 [ ("name", "ada") ] in
  let schema = Result.get_ok (Goose.compose t [ ("Person", pv2) ]) in
  check
    (Alcotest.result Alcotest.string Alcotest.string)
    "shared read" (Ok "ada") (Goose.read t schema o "name")

let test_rose_automatic () =
  let t = Rose.create () in
  let v1 = Rose.define_type t "P" [ ("a", "") ] in
  let v2 = Rose.new_type_version t "P" [ ("a", ""); ("b", "default-b") ] in
  let o = Rose.create_object t "P" v1 [ ("a", "1") ] in
  check
    (Alcotest.result Alcotest.string Alcotest.string)
    "auto-resolved" (Ok "default-b")
    (Rose.read t ~as_of:v2 o "b");
  check Alcotest.int "resolution counted" 1 (Rose.auto_resolutions t)

let test_table2_matches_paper () =
  let rows = Criteria.run_all () in
  check Alcotest.int "six systems" 6 (List.length rows);
  let find name = List.find (fun r -> r.Criteria.system = name) rows in
  let expect name ~sharing ~flexibility ~subschema ~views ~merging =
    let r = find name in
    Alcotest.(check bool) (name ^ " sharing") sharing r.Criteria.sharing;
    Alcotest.(check bool) (name ^ " flexibility") flexibility r.Criteria.flexibility;
    Alcotest.(check bool) (name ^ " subschema") subschema
      r.Criteria.subschema_evolution;
    Alcotest.(check bool) (name ^ " views+change") views r.Criteria.views_with_change;
    Alcotest.(check bool) (name ^ " merging") merging r.Criteria.version_merging
  in
  (* the paper's Table 2, row by row *)
  expect "Encore" ~sharing:true ~flexibility:true ~subschema:false ~views:false
    ~merging:false;
  expect "Orion" ~sharing:false ~flexibility:false ~subschema:false ~views:false
    ~merging:false;
  expect "Goose" ~sharing:true ~flexibility:true ~subschema:false ~views:false
    ~merging:false;
  expect "CLOSQL" ~sharing:true ~flexibility:true ~subschema:false ~views:false
    ~merging:false;
  expect "Rose" ~sharing:true ~flexibility:true ~subschema:false ~views:false
    ~merging:false;
  expect "TSE system" ~sharing:true ~flexibility:false ~subschema:true
    ~views:true ~merging:true;
  (* effort: only Encore, CLOSQL and Goose demanded user artifacts *)
  Alcotest.(check bool) "Encore needs artifacts" true
    ((find "Encore").Criteria.effort_count > 0);
  Alcotest.(check bool) "CLOSQL needs artifacts" true
    ((find "CLOSQL").Criteria.effort_count > 0);
  check Alcotest.int "TSE needs none" 0 (find "TSE system").Criteria.effort_count;
  check Alcotest.int "Orion needs none" 0 (find "Orion").Criteria.effort_count;
  (* subschema numbers: TSE touched fewer classes than Orion duplicated *)
  Alcotest.(check bool) "TSE touches less than Orion copies" true
    ((find "TSE system").Criteria.classes_touched
    < (find "Orion").Criteria.classes_touched)

let suite =
  [
    Alcotest.test_case "Orion: copy, freeze, no back propagation" `Quick
      test_orion_no_sharing;
    Alcotest.test_case "Orion: whole-schema duplication" `Quick
      test_orion_whole_schema_copy;
    Alcotest.test_case "Encore: exception handlers" `Quick test_encore_handlers;
    Alcotest.test_case "CLOSQL: conversion chains" `Quick
      test_closql_conversion_chain;
    Alcotest.test_case "Goose: composition + consistency" `Quick
      test_goose_composition;
    Alcotest.test_case "Rose: automatic resolution" `Quick test_rose_automatic;
    Alcotest.test_case "Table 2 reproduces the paper" `Quick
      test_table2_matches_paper;
  ]
