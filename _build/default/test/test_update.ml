(* Tests for the generic update operators and their propagation through
   virtual classes (Sections 3.3-3.4). *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_update

let check = Alcotest.check
let vpp = Alcotest.testable Value.pp Value.equal
let uni () = Tse_workload.University.build ()

let test_create_through_base () =
  let u = uni () in
  let o =
    Generic.create u.db u.student
      ~init:[ ("name", Value.String "li"); ("gpa", Value.Float 3.3) ]
  in
  Alcotest.(check bool) "member" true (Database.is_member u.db o u.student);
  check vpp "attr stored" (Value.Float 3.3) (Database.get_prop u.db o "gpa")

let test_create_through_select_value_closure () =
  let u = uni () in
  let adult =
    Tse_algebra.Ops.select u.db ~name:"Adult" ~src:u.person
      Expr.(attr "age" >= int 18)
  in
  (* satisfying create goes to the origin base class Person *)
  let o = Generic.create u.db adult ~init:[ ("age", Value.Int 30) ] in
  Alcotest.(check bool) "in Adult" true (Database.is_member u.db o adult);
  Alcotest.(check bool) "in Person (source)" true
    (Database.is_member u.db o u.person);
  (* violating create: Reject policy refuses and leaves no trace *)
  let before = Database.object_count u.db in
  (try
     ignore (Generic.create u.db adult ~init:[ ("age", Value.Int 10) ]);
     Alcotest.fail "expected rejection"
   with Generic.Rejected _ -> ());
  check Alcotest.int "no orphan object" before (Database.object_count u.db);
  (* Accept policy: the object lands in the source but outside the view
     class (the paper's second resolution) *)
  let o2 =
    Generic.create ~policy:Generic.Policy.lenient u.db adult
      ~init:[ ("age", Value.Int 10) ]
  in
  Alcotest.(check bool) "in Person" true (Database.is_member u.db o2 u.person);
  Alcotest.(check bool) "not in Adult" false (Database.is_member u.db o2 adult)

let test_create_through_hide_defaults () =
  let u = uni () in
  let ageless =
    Tse_algebra.Ops.hide u.db ~name:"AgelessPerson" ~props:[ "age" ] ~src:u.person
  in
  (* cannot assign the hidden attribute through the hide class *)
  (try
     ignore (Generic.create u.db ageless ~init:[ ("age", Value.Int 5) ]);
     Alcotest.fail "expected rejection"
   with Generic.Rejected _ -> ());
  let o = Generic.create u.db ageless ~init:[ ("name", Value.String "v") ] in
  Alcotest.(check bool) "created in source" true
    (Database.is_member u.db o u.person);
  check vpp "hidden attr unset" Value.Null (Database.get_prop u.db o "age")

let test_create_required_attribute () =
  let u = uni () in
  let g = Database.graph u.db in
  let c =
    Schema_graph.register_base g ~name:"Badge"
      ~props:[ Prop.stored ~origin:(Oid.of_int 0) ~required:true "code" Value.TString ]
      ~supers:[]
  in
  Database.note_new_class u.db c;
  (try
     ignore (Generic.create u.db c ~init:[]);
     Alcotest.fail "expected rejection for missing required"
   with Generic.Rejected _ -> ());
  ignore (Generic.create u.db c ~init:[ ("code", Value.String "b1") ])

let test_create_through_union_goes_first () =
  let u = uni () in
  let both = Tse_algebra.Ops.union u.db ~name:"Both" u.student u.staff in
  (* default policy: propagate to the first argument (the substituted
     class rule of Section 6.5.4) *)
  let o = Generic.create u.db both ~init:[] in
  Alcotest.(check bool) "in Student" true (Database.is_member u.db o u.student);
  Alcotest.(check bool) "not in Staff" false (Database.is_member u.db o u.staff);
  Alcotest.(check bool) "in union" true (Database.is_member u.db o both);
  (* explicit policies *)
  let o2 =
    Generic.create
      ~policy:{ Generic.Policy.default with union_target = Generic.Policy.Second }
      u.db both ~init:[]
  in
  Alcotest.(check bool) "second: in Staff" true (Database.is_member u.db o2 u.staff);
  let o3 =
    Generic.create
      ~policy:{ Generic.Policy.default with union_target = Generic.Policy.Both }
      u.db both ~init:[]
  in
  Alcotest.(check bool) "both: Student and Staff" true
    (Database.is_member u.db o3 u.student && Database.is_member u.db o3 u.staff)

let test_create_through_intersect () =
  let u = uni () in
  let inter = Tse_algebra.Ops.intersect u.db ~name:"Inter" u.student u.staff in
  let o = Generic.create u.db inter ~init:[] in
  Alcotest.(check bool) "in both sources" true
    (Database.is_member u.db o u.student && Database.is_member u.db o u.staff);
  Alcotest.(check bool) "in intersect" true (Database.is_member u.db o inter)

let test_create_through_difference () =
  let u = uni () in
  let diff = Tse_algebra.Ops.difference u.db ~name:"Diff" u.student u.staff in
  let o = Generic.create u.db diff ~init:[] in
  Alcotest.(check bool) "in first source" true (Database.is_member u.db o u.student);
  Alcotest.(check bool) "in difference" true (Database.is_member u.db o diff)

let test_origin_bases () =
  let u = uni () in
  let adult =
    Tse_algebra.Ops.select u.db ~name:"Adult" ~src:u.person
      Expr.(attr "age" >= int 18)
  in
  let senior =
    Tse_algebra.Ops.select u.db ~name:"Senior" ~src:adult
      Expr.(attr "age" >= int 65)
  in
  check
    Alcotest.(list string)
    "origin of chained selects"
    [ "Person" ]
    (List.map
       (Schema_graph.name_of (Database.graph u.db))
       (Generic.origin_bases u.db senior));
  check
    Alcotest.(list string)
    "origin of base class is itself"
    [ "Person" ]
    (List.map
       (Schema_graph.name_of (Database.graph u.db))
       (Generic.origin_bases u.db u.person))

let test_set_with_closure_check () =
  let u = uni () in
  let adult =
    Tse_algebra.Ops.select u.db ~name:"Adult" ~src:u.person
      Expr.(attr "age" >= int 18)
  in
  let o = Generic.create u.db adult ~init:[ ("age", Value.Int 30) ] in
  (* a set through the class that would expel the object is refused and
     rolled back under Reject *)
  (try
     Generic.set ~through:adult u.db [ o ] [ ("age", Value.Int 10) ];
     Alcotest.fail "expected rejection"
   with Generic.Rejected _ -> ());
  check vpp "rolled back" (Value.Int 30) (Database.get_prop u.db o "age");
  (* lenient policy lets the object drop out *)
  Generic.set ~policy:Generic.Policy.lenient ~through:adult u.db [ o ]
    [ ("age", Value.Int 10) ];
  check vpp "applied" (Value.Int 10) (Database.get_prop u.db o "age");
  Alcotest.(check bool) "dropped out of Adult" false
    (Database.is_member u.db o adult);
  Alcotest.(check bool) "still a Person" true (Database.is_member u.db o u.person)

let test_add_remove () =
  let u = uni () in
  let o = Generic.create u.db u.person ~init:[] in
  Generic.add u.db [ o ] u.student;
  Alcotest.(check bool) "added" true (Database.is_member u.db o u.student);
  Generic.remove u.db [ o ] u.student;
  Alcotest.(check bool) "removed" false (Database.is_member u.db o u.student);
  Alcotest.(check bool) "still person" true (Database.is_member u.db o u.person)

let test_add_through_refine_restructures () =
  let u = uni () in
  let register = Prop.stored ~origin:(Oid.of_int 0) "register" Value.TBool in
  let student' =
    Tse_algebra.Ops.refine u.db ~name:"Student'" ~props:[ register ] ~src:u.student
  in
  let o = Generic.create u.db u.person ~init:[] in
  (* adding through the refine class propagates to its source Student *)
  Generic.add u.db [ o ] student';
  Alcotest.(check bool) "in Student" true (Database.is_member u.db o u.student);
  Alcotest.(check bool) "in Student'" true (Database.is_member u.db o student');
  (* ... and the object can now store the refining attribute *)
  Generic.set u.db [ o ] [ ("register", Value.Bool true) ];
  check vpp "register stored" (Value.Bool true) (Database.get_prop u.db o "register")

let test_remove_from_union_both () =
  let u = uni () in
  let both = Tse_algebra.Ops.union u.db ~name:"Both" u.student u.staff in
  let o = Generic.create u.db u.ta ~init:[] in
  (* a TA is Student and Staff, hence in the union; removing from the
     union removes from both sources *)
  Alcotest.(check bool) "in union" true (Database.is_member u.db o both);
  Generic.remove u.db [ o ] both;
  Alcotest.(check bool) "out of Student" false (Database.is_member u.db o u.student);
  Alcotest.(check bool) "out of Staff" false (Database.is_member u.db o u.staff);
  Alcotest.(check bool) "out of union" false (Database.is_member u.db o both);
  Alcotest.(check bool) "still a Person" true (Database.is_member u.db o u.person)

let test_delete () =
  let u = uni () in
  let o = Generic.create u.db u.student ~init:[] in
  Generic.delete u.db [ o ];
  Alcotest.(check bool) "destroyed" false (Database.mem_object u.db o);
  check Alcotest.int "no extents left" 0 (Database.extent_size u.db u.person)

let test_theorem1_updatability_end_to_end () =
  (* every virtual class built by the algebra accepts updates that reach
     its origin classes: the Theorem 1 claim exercised dynamically *)
  let u = uni () in
  let open Tse_algebra in
  let adult = Ops.select u.db ~name:"Adult" ~src:u.person Expr.(attr "age" >= int 18) in
  let ageless = Ops.hide u.db ~name:"Ageless" ~props:[ "age" ] ~src:adult in
  let both = Ops.union u.db ~name:"U" ageless u.staff in
  (* a strict create cannot satisfy the select predicate (age is hidden on
     the union's type, so it cannot even be assigned): Reject refuses *)
  (try
     ignore (Generic.create u.db both ~init:[ ("name", Value.String "x") ]);
     Alcotest.fail "expected rejection"
   with Generic.Rejected _ -> ());
  (* the lenient route: create lands in the origin class, a later update
     brings the object into the whole derived chain *)
  let o =
    Generic.create ~policy:Generic.Policy.lenient u.db both
      ~init:[ ("name", Value.String "x") ]
  in
  (* create went down the chain union -> hide -> select -> Person *)
  Alcotest.(check bool) "reached Person" true (Database.is_member u.db o u.person);
  Generic.set u.db [ o ] [ ("age", Value.Int 44) ];
  Alcotest.(check bool) "now satisfies select" true
    (Database.is_member u.db o adult);
  Alcotest.(check bool) "and the whole chain" true
    (Database.is_member u.db o ageless && Database.is_member u.db o both);
  Alcotest.(check (list string)) "consistent" [] (Database.check u.db)

let test_type_specific_methods () =
  (* Section 3.3: type implementors override the generic operators to
     check constraints, maintain derived information, or refuse updates *)
  let u = uni () in
  let methods = Type_methods.create () in
  (* constraint on Staff: salary must be non-negative *)
  let guard db assignments =
    ignore db;
    (match List.assoc_opt "salary" assignments with
    | Some (Value.Int s) when s < 0 -> raise (Generic.Rejected "negative salary")
    | Some _ | None -> ());
    assignments
  in
  Type_methods.on_create methods u.staff guard;
  Type_methods.on_set methods u.staff (fun db _o a -> guard db a);
  (* derived maintenance on Person: default the name *)
  Type_methods.on_create methods u.person (fun _db init ->
      if List.mem_assoc "name" init then init
      else ("name", Value.String "anonymous") :: init);
  check Alcotest.int "hooks installed" 3 (Type_methods.hook_count methods);
  (* the Person hook fires for Staff creates too (lineage) *)
  let o = Generic.create ~methods u.db u.staff ~init:[ ("salary", Value.Int 100) ] in
  check vpp "maintained attribute" (Value.String "anonymous")
    (Database.get_prop u.db o "name");
  (* constraint refusal on create *)
  (try
     ignore (Generic.create ~methods u.db u.staff ~init:[ ("salary", Value.Int (-1)) ]);
     Alcotest.fail "expected constraint rejection"
   with Generic.Rejected _ -> ());
  (* constraint refusal on set *)
  (try
     Generic.set ~methods u.db [ o ] [ ("salary", Value.Int (-5)) ];
     Alcotest.fail "expected constraint rejection on set"
   with Generic.Rejected _ -> ());
  check vpp "salary unchanged" (Value.Int 100) (Database.get_prop u.db o "salary");
  (* delete hook observes (and can veto) destruction *)
  let deleted = ref [] in
  Type_methods.on_delete methods u.person (fun _db o -> deleted := o :: !deleted);
  Generic.delete ~methods u.db [ o ];
  check Alcotest.int "delete observed" 1 (List.length !deleted);
  (* generic operators without ~methods are unaffected *)
  ignore (Generic.create u.db u.staff ~init:[ ("salary", Value.Int (-1)) ])

let suite =
  [
    Alcotest.test_case "type-specific update methods (3.3)" `Quick
      test_type_specific_methods;
    Alcotest.test_case "create through base" `Quick test_create_through_base;
    Alcotest.test_case "create through select: value closure" `Quick
      test_create_through_select_value_closure;
    Alcotest.test_case "create through hide: hidden attrs" `Quick
      test_create_through_hide_defaults;
    Alcotest.test_case "create: required attributes" `Quick
      test_create_required_attribute;
    Alcotest.test_case "create through union: first-arg rule" `Quick
      test_create_through_union_goes_first;
    Alcotest.test_case "create through intersect: both" `Quick
      test_create_through_intersect;
    Alcotest.test_case "create through difference: first" `Quick
      test_create_through_difference;
    Alcotest.test_case "origin classes" `Quick test_origin_bases;
    Alcotest.test_case "set with closure check" `Quick test_set_with_closure_check;
    Alcotest.test_case "add/remove" `Quick test_add_remove;
    Alcotest.test_case "add through refine restructures" `Quick
      test_add_through_refine_restructures;
    Alcotest.test_case "remove from union: both sources" `Quick
      test_remove_from_union_both;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "Theorem 1 end-to-end" `Quick
      test_theorem1_updatability_end_to_end;
  ]
