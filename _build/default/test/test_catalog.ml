(* Tests for whole-database persistence: the catalog must reconstruct a
   fully operational database — schema (including virtual classes and
   their derivations), objects with their slices, memberships, extents
   and the complete view history — such that evolution can continue. *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_views
open Tse_core

let check = Alcotest.check
let vpp = Alcotest.testable Value.pp Value.equal

let evolved_fixture () =
  let u = Tse_workload.University.build () in
  ignore (Tse_workload.University.populate u ~n:18);
  let tsem = Tsem.of_database u.db in
  ignore (Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student"; "TA" ]);
  ignore
    (Tsem.evolve tsem ~view:"VS"
       (Change.Add_attribute { cls = "Student"; def = Change.attr "register" Value.TBool }));
  ignore
    (Tsem.evolve tsem ~view:"VS"
       (Change.Add_method
          { cls = "Person"; method_name = "adult"; body = Expr.(attr "age" >= int 18) }));
  (u, tsem)

let test_roundtrip_schema_and_extents () =
  let u, tsem = evolved_fixture () in
  let text = Catalog.to_string ~history:(Tsem.history tsem) u.db in
  let db', history' = Catalog.of_string text in
  (* same classes (names, kinds, types) *)
  let names db =
    Schema_graph.classes (Database.graph db)
    |> List.map (fun (k : Klass.t) ->
           Printf.sprintf "%s|%s|%s" k.name
             (if Klass.is_virtual k then "v" else "b")
             (Type_info.type_signature (Database.graph db) k.cid))
    |> List.sort String.compare
  in
  check Alcotest.(list string) "classes identical" (names u.db) (names db');
  (* same extents *)
  List.iter
    (fun (k : Klass.t) ->
      check Alcotest.int
        (Printf.sprintf "extent of %s" k.name)
        (Database.extent_size u.db k.cid)
        (Database.extent_size db' k.cid))
    (Schema_graph.classes (Database.graph u.db));
  (* same view history *)
  check Alcotest.(list string) "views" (History.view_names (Tsem.history tsem))
    (History.view_names history');
  check Alcotest.int "versions" 3 (List.length (History.versions history' "VS"));
  (* loaded database passes the consistency oracle *)
  Alcotest.(check (list string)) "consistent" [] (Database.check db')

let test_roundtrip_preserves_data () =
  let u, tsem = evolved_fixture () in
  let o = List.hd (Database.extent_list u.db u.student) in
  Database.set_attr u.db o "register" (Value.Bool true);
  let name_before = Database.get_prop u.db o "name" in
  let text = Catalog.to_string ~history:(Tsem.history tsem) u.db in
  let db', _ = Catalog.of_string text in
  check vpp "shared attr survives" name_before (Database.get_prop db' o "name");
  check vpp "refined stored attr survives" (Value.Bool true)
    (Database.get_prop db' o "register");
  (* derived methods still evaluate *)
  check vpp "method still evaluates"
    (Database.get_prop u.db o "adult")
    (Database.get_prop db' o "adult")

let test_evolution_continues_after_load () =
  let u, tsem = evolved_fixture () in
  let text = Catalog.to_string ~history:(Tsem.history tsem) u.db in
  let db', history' = Catalog.of_string text in
  let tsem' = Tsem.of_database db' in
  (* re-register the loaded history *)
  List.iter
    (fun name ->
      List.iter
        (fun v -> History.register (Tsem.history tsem') v)
        (History.versions history' name))
    (History.view_names history');
  let v =
    Tsem.evolve tsem' ~view:"VS"
      (Change.Add_attribute { cls = "TA"; def = Change.attr "badge" Value.TInt })
  in
  check Alcotest.int "version continues" 3 v.View_schema.version;
  let ta = View_schema.cid_of_exn v "TA" in
  Alcotest.(check bool) "new attribute present" true
    (Type_info.has_prop (Database.graph db') ta "badge");
  (* and the attribute added BEFORE the save is still there too *)
  Alcotest.(check bool) "old refined attribute kept" true
    (Type_info.has_prop (Database.graph db') ta "register");
  Alcotest.(check (list string)) "consistent" [] (Database.check db')

let test_select_classes_still_classify () =
  let u = Tse_workload.University.build () in
  let adult =
    Tse_algebra.Ops.select u.db ~name:"Adult" ~src:u.person
      Expr.(attr "age" >= int 18)
  in
  ignore (Database.create_object u.db u.person ~init:[ ("age", Value.Int 30) ]);
  let text = Catalog.to_string u.db in
  let db', _ = Catalog.of_string text in
  check Alcotest.int "select extent restored" 1 (Database.extent_size db' adult);
  (* predicates survived: a NEW object classifies correctly *)
  let o = Database.create_object db' u.person ~init:[ ("age", Value.Int 50) ] in
  Alcotest.(check bool) "new object classified by loaded predicate" true
    (Database.is_member db' o adult);
  let o2 = Database.create_object db' u.person ~init:[ ("age", Value.Int 5) ] in
  Alcotest.(check bool) "young object excluded" false (Database.is_member db' o2 adult)

let test_file_roundtrip () =
  let u, tsem = evolved_fixture () in
  let path = Filename.temp_file "tse_catalog" ".db" in
  Catalog.save ~history:(Tsem.history tsem) u.db path;
  let db', history' = Catalog.load path in
  Sys.remove path;
  check Alcotest.int "objects" (Database.object_count u.db)
    (Database.object_count db');
  check Alcotest.int "view versions" 3 (List.length (History.versions history' "VS"))

let test_malformed () =
  Alcotest.check_raises "bad header" (Failure "Catalog: bad header") (fun () ->
      ignore (Catalog.of_string "garbage"))

let test_expr_codec_roundtrip () =
  let exprs =
    Expr.
      [
        int 1;
        attr "age" >= int 18 && In_class "Person";
        If (Is_null (attr "x"), str "a;b:c", Concat (str "p", str "q"));
        Not (Self === Const (Value.Ref (Oid.of_int 3)));
        Arith (Div, attr "a", Arith (Mul, int 2, attr "b"));
      ]
  in
  List.iter
    (fun e ->
      let buf = Buffer.create 32 in
      Expr.encode buf e;
      let e', pos = Expr.decode (Buffer.contents buf) 0 in
      check Alcotest.int "consumed" (Buffer.length buf) pos;
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" (Expr.to_string e))
        true (Expr.equal e e'))
    exprs

let suite =
  [
    Alcotest.test_case "roundtrip: schema, extents, history" `Quick
      test_roundtrip_schema_and_extents;
    Alcotest.test_case "roundtrip: object data and methods" `Quick
      test_roundtrip_preserves_data;
    Alcotest.test_case "evolution continues after load" `Quick
      test_evolution_continues_after_load;
    Alcotest.test_case "select predicates survive reload" `Quick
      test_select_classes_still_classify;
    Alcotest.test_case "file save/load" `Quick test_file_roundtrip;
    Alcotest.test_case "malformed input" `Quick test_malformed;
    Alcotest.test_case "expression codec" `Quick test_expr_codec_roundtrip;
  ]
