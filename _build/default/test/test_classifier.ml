(* Focused tests for the classification algorithm: intended types,
   placement, duplicate detection and property promotion. *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_classifier

let check = Alcotest.check
let uni () = Tse_workload.University.build ()

let prop_names props = List.map (fun (p : Prop.t) -> p.Prop.name) props
  |> List.sort String.compare

let test_intended_types () =
  let u = uni () in
  let db = u.db in
  let names d = prop_names (Classification.intended_type db d) in
  (* select keeps the source type *)
  check Alcotest.(list string) "select"
    [ "age"; "name"; "ssn" ]
    (names (Klass.Select (u.person, Expr.bool true)));
  (* hide subtracts *)
  check Alcotest.(list string) "hide"
    [ "name"; "ssn" ]
    (names (Klass.Hide ([ "age" ], u.person)));
  (* refine adds *)
  check Alcotest.(list string) "refine"
    [ "age"; "name"; "ssn"; "x" ]
    (names
       (Klass.Refine ([ Prop.stored ~origin:(Oid.of_int 0) "x" Value.TInt ], u.person)));
  (* union: common properties = lowest common supertype *)
  check Alcotest.(list string) "union"
    [ "age"; "name"; "salary"; "ssn" ]
    (names (Klass.Union (u.teaching_staff, u.support_staff)));
  (* intersect merges *)
  check Alcotest.(list string) "intersect"
    [ "age"; "boss"; "lecture"; "name"; "salary"; "ssn" ]
    (names (Klass.Intersect (u.teaching_staff, u.support_staff)));
  (* difference keeps the first argument *)
  check Alcotest.(list string) "difference"
    [ "age"; "gpa"; "major"; "name"; "ssn" ]
    (names (Klass.Difference (u.student, u.staff)))

let test_duplicate_detection_modulo_commutativity () =
  let u = uni () in
  let db = u.db in
  let a = Tse_algebra.Ops.union db ~name:"U1" u.student u.staff in
  (* union is commutative: swapped arguments are the same class *)
  let b = Tse_algebra.Ops.union db ~name:"U2" u.staff u.student in
  Alcotest.(check bool) "commutative duplicate" true (Oid.equal a b);
  (* difference is NOT commutative *)
  let d1 = Tse_algebra.Ops.difference db ~name:"D1" u.student u.staff in
  let d2 = Tse_algebra.Ops.difference db ~name:"D2" u.staff u.student in
  Alcotest.(check bool) "difference not commutative" false (Oid.equal d1 d2)

let test_duplicate_detection_nested () =
  let u = uni () in
  let db = u.db in
  let q =
    Tse_algebra.Ops.(
      Hide ([ "ssn" ], Select (Class "Person", Expr.(attr "age" >= int 18))))
  in
  let v1 = Tse_algebra.Ops.define_vc db ~name:"V1" q in
  let size = Schema_graph.size (Database.graph db) in
  (* re-running the same nested query reuses BOTH levels *)
  let v2 = Tse_algebra.Ops.define_vc db ~name:"V2" q in
  Alcotest.(check bool) "outer reused" true (Oid.equal v1 v2);
  check Alcotest.int "no new classes at all" size
    (Schema_graph.size (Database.graph db))

let test_promotion_shares_identity () =
  let u = uni () in
  let db = u.db in
  let g = Database.graph db in
  let ageless = Tse_algebra.Ops.hide db ~name:"NoGpa" ~props:[ "gpa" ] ~src:u.student in
  (* 'major' was local at Student; the hide class got a promoted copy with
     the SAME identity, so Student's inheritance view is unchanged *)
  let at_hide = Option.get (Type_info.find_usable g ageless "major") in
  let at_student = Option.get (Type_info.find_usable g u.student "major") in
  Alcotest.(check bool) "promoted copy shares uid" true
    (Prop.same_prop at_hide at_student);
  Alcotest.(check bool) "marked promoted" true at_hide.Prop.promoted

let test_union_between_related_classes () =
  let u = uni () in
  let db = u.db in
  let g = Database.graph db in
  (* union(A, B) where A is an ancestor of B: extent = extent(A); must not
     cycle and must sit above A *)
  let un = Tse_algebra.Ops.union db ~name:"PS" u.person u.student in
  Alcotest.(check bool) "above person" true
    (Schema_graph.is_strict_ancestor g ~anc:un ~desc:u.person);
  Alcotest.(check (list string)) "invariants" [] (Invariants.check g)

let test_refine_from_validation () =
  let u = uni () in
  (try
     ignore
       (Tse_algebra.Ops.refine_from u.db ~name:"Bad" ~src:u.person
          ~prop_name:"ssn" ~target:u.grad);
     Alcotest.fail "target already has the property: must reject"
   with Tse_algebra.Ops.Error _ -> ());
  try
    ignore
      (Tse_algebra.Ops.refine_from u.db ~name:"Bad2" ~src:u.support_staff
         ~prop_name:"nosuch" ~target:u.grad);
    Alcotest.fail "unknown property: must reject"
  with Tse_algebra.Ops.Error _ -> ()

let test_edge_repair_removes_redundancy () =
  let u = uni () in
  let db = u.db in
  let g = Database.graph db in
  (* inserting a refine class below Student must not leave Student with a
     transitive-redundant edge to the new class's subclasses *)
  let r1 =
    Tse_algebra.Ops.refine db ~name:"R1"
      ~props:[ Prop.stored ~origin:(Oid.of_int 0) "a" Value.TInt ]
      ~src:u.student
  in
  let r2 =
    Tse_algebra.Ops.refine db ~name:"R2"
      ~props:[ Prop.stored ~origin:(Oid.of_int 0) "b" Value.TInt ]
      ~src:r1
  in
  ignore r2;
  (* no direct Student -> R2 edge: it reaches R2 through R1 *)
  let direct_subs = Schema_graph.subs g u.student in
  Alcotest.(check bool) "no redundant direct edge" false
    (List.exists (Oid.equal r2) direct_subs);
  Alcotest.(check (list string)) "invariants" [] (Invariants.check g)

let test_classified_class_extents_populated () =
  let u = uni () in
  let db = u.db in
  ignore (Tse_workload.University.populate u ~n:24);
  (* classification populates extents for classes created AFTER the data *)
  let adult =
    Tse_algebra.Ops.select db ~name:"Adult" ~src:u.person
      Expr.(attr "age" >= int 18)
  in
  Alcotest.(check bool) "extent non-empty" true (Database.extent_size db adult > 0);
  Alcotest.(check (list string)) "consistent" [] (Database.check db)

let suite =
  [
    Alcotest.test_case "intended types per operator" `Quick test_intended_types;
    Alcotest.test_case "duplicates modulo commutativity" `Quick
      test_duplicate_detection_modulo_commutativity;
    Alcotest.test_case "nested duplicate reuse" `Quick test_duplicate_detection_nested;
    Alcotest.test_case "promotion shares property identity" `Quick
      test_promotion_shares_identity;
    Alcotest.test_case "union of related classes" `Quick
      test_union_between_related_classes;
    Alcotest.test_case "refine_from validation" `Quick test_refine_from_validation;
    Alcotest.test_case "edge repair removes redundancy" `Quick
      test_edge_repair_removes_redundancy;
    Alcotest.test_case "late classification populates extents" `Quick
      test_classified_class_extents_populated;
  ]
