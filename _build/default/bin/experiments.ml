(* Regenerates the transcript of every table and figure in the paper.
   Usage: experiments.exe [fig1 .. fig16 | table1 | table2 | stats | all] *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_views
open Tse_core
open Tse_workload
open Tse_baselines

let hdr title =
  Printf.printf "\n==================================================\n%s\n==================================================\n"
    title

let show_view db view =
  Format.printf "%a@." (Generation.pp (Database.graph db)) view

let show_extents db = Format.printf "%a@." Database.pp_extents db

let show_class db cid =
  let g = Database.graph db in
  let k = Schema_graph.find_exn g cid in
  Format.printf "  %s%s: {%s}  extent=%d@." k.Klass.name
    (if Klass.is_virtual k then "*" else "")
    (String.concat "; "
       (List.map
          (fun (n, e) -> Format.asprintf "%s=%a" n Type_info.pp_entry e)
          (Type_info.full_type g cid)))
    (Database.extent_size db cid)

let uni_with_population n =
  let u = University.build () in
  ignore (University.populate u ~n);
  u

(* ------------------------------------------------------------------ *)

let fig1 () =
  hdr "Figure 1 — the TSE approach: view replaced, global schema augmented";
  let u = uni_with_population 12 in
  let tsem = Tsem.of_database u.db in
  let v0 = Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student"; "TA" ] in
  Printf.printf "before the change, global schema has %d classes\n"
    (Schema_graph.size (Database.graph u.db));
  show_view u.db v0;
  let v1 =
    Tsem.evolve tsem ~view:"VS"
      (Change.Add_attribute { cls = "Student"; def = Change.attr "register" Value.TBool })
  in
  Printf.printf
    "after 'add_attribute register to Student': global schema has %d classes\n"
    (Schema_graph.size (Database.graph u.db));
  Printf.printf "the user's view was REPLACED (v%d -> v%d); the old one survives:\n"
    v0.View_schema.version v1.View_schema.version;
  show_view u.db v1;
  Printf.printf "old version still registered: %b\n"
    (History.version (Tsem.history tsem) "VS" 0 <> None)

let fig2 () =
  hdr "Figure 2 — the university global schema";
  let u = uni_with_population 24 in
  Format.printf "%a@." Schema_graph.pp (Database.graph u.db);
  show_extents u.db

let fig3_7 () =
  hdr "Figures 3 and 7 — add_attribute register to Student (full pipeline)";
  let u = uni_with_population 12 in
  let tsem = Tsem.of_database u.db in
  ignore (Tsem.define_view_by_names tsem ~name:"VS1" [ "Person"; "Student"; "TA" ]);
  Printf.printf "VS1 (before):\n";
  show_view u.db (Tsem.current tsem "VS1");
  let v2 =
    Tsem.evolve tsem ~view:"VS1"
      (Change.Add_attribute { cls = "Student"; def = Change.attr "register" Value.TBool })
  in
  Printf.printf
    "translator emitted: defineVC Student' as (refine register for Student);\n\
    \                    defineVC TA' as (refine Student':register for TA)\n";
  Printf.printf "VS2 (after; primed classes renamed back inside the view):\n";
  show_view u.db v2;
  Printf.printf "global classes now:\n";
  List.iter (show_class u.db)
    [ u.person; u.student; View_schema.cid_of_exn v2 "Student";
      u.ta; View_schema.cid_of_exn v2 "TA"; u.grad ];
  Printf.printf "note: Grad (outside the view) is untouched\n"

let fig4 () =
  hdr "Figure 4 — virtual class creation: AgelessPerson = hide age from Person";
  let u = uni_with_population 6 in
  let ageless =
    Tse_algebra.Ops.hide u.db ~name:"AgelessPerson" ~props:[ "age" ] ~src:u.person
  in
  show_class u.db ageless;
  show_class u.db u.person;
  Printf.printf "AgelessPerson classified above Person: %b; same extent: %b\n"
    (Schema_graph.is_strict_ancestor (Database.graph u.db) ~anc:ageless
       ~desc:u.person)
    (Oid.Set.equal (Database.extent u.db ageless) (Database.extent u.db u.person))

let fig5 () =
  hdr "Figure 5 — multiple classification: o1 is both Jeep and Imported";
  let module S = Tse_objmodel.Slicing in
  let module I = Tse_objmodel.Intersection in
  let cars = Cars.build () in
  let m = S.create ~graph:cars.graph ~heap:cars.heap ~stats:(Tse_store.Stats.create ()) in
  let o1 = S.create_object m cars.jeep in
  S.add_to_class m o1 cars.imported;
  Printf.printf
    "object-slicing: o1 = conceptual %s with %d implementation objects (Car, Jeep, Imported)\n"
    (Oid.to_string o1) (S.impl_count m o1);
  let cars2 = Cars.build () in
  let mi =
    I.create ~graph:cars2.graph ~heap:cars2.heap ~stats:(Tse_store.Stats.create ())
  in
  let o1' = I.create_object mi cars2.jeep in
  I.add_to_class mi o1' cars2.imported;
  Printf.printf
    "intersection-class: o1 moved into auto-created class %s (copies=%d, swaps=%d)\n"
    (Schema_graph.name_of cars2.graph (I.class_of mi o1'))
    (I.stats mi).Tse_store.Stats.copies
    (I.stats mi).Tse_store.Stats.identity_swaps

let fig6 () =
  hdr "Figure 6 — the TSE system architecture (module map)";
  List.iter print_endline
    [
      "  user schema change";
      "        |";
      "  TSEM (Tse_core.Tsem) ----(1)----> TSE Translator (Tse_core.Translator)";
      "        |                               | emits extended object algebra";
      "        |                               v";
      "        |                 Extended Object Algebra (Tse_algebra.Ops)";
      "        |----(2)----> Classifier (Tse_classifier.Classification)";
      "        |----(3)----> View Manager (Tse_views.{View_schema,Generation,Closure})";
      "        |                 View Schema History (Tse_views.History)";
      "  Global Schema Manager (Tse_db.Database)";
      "  TSE object model: object slicing (Tse_objmodel.Slicing)";
      "  persistent store standing in for GemStone (Tse_store.{Heap,Txn,Snapshot})";
    ]

let fig8 () =
  hdr "Figure 8 — delete_attribute gpa from Student";
  let u = uni_with_population 12 in
  let tsem = Tsem.of_database u.db in
  ignore (Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student"; "TA" ]);
  let v1 =
    Tsem.evolve tsem ~view:"VS"
      (Change.Delete_attribute { cls = "Student"; attr_name = "gpa" })
  in
  show_view u.db v1;
  Printf.printf "new Student type: ";
  show_class u.db (View_schema.cid_of_exn v1 "Student");
  Printf.printf "the stored gpa data is NOT deleted — the old view still reads it:\n";
  show_class u.db u.student

let fig9 () =
  hdr "Figure 9 — add_edge SupportStaff-TA";
  let u = uni_with_population 24 in
  let tsem = Tsem.of_database u.db in
  ignore
    (Tsem.define_view_by_names tsem ~name:"VS"
       [ "Person"; "Student"; "Staff"; "TeachingStaff"; "SupportStaff"; "TA"; "Grader" ]);
  Printf.printf "before: extent(SupportStaff)=%d, extent(TA)=%d\n"
    (Database.extent_size u.db u.support_staff)
    (Database.extent_size u.db u.ta);
  let v1 =
    Tsem.evolve tsem ~view:"VS" (Change.Add_edge { sup = "SupportStaff"; sub = "TA" })
  in
  show_view u.db v1;
  let support' = View_schema.cid_of_exn v1 "SupportStaff" in
  let ta' = View_schema.cid_of_exn v1 "TA" in
  Printf.printf "after: extent(SupportStaff')=%d (expanded by the TAs)\n"
    (Database.extent_size u.db support');
  Printf.printf "TA now inherits boss: %b; Grader too: %b\n"
    (Type_info.has_prop (Database.graph u.db) ta' "boss")
    (Type_info.has_prop (Database.graph u.db)
       (View_schema.cid_of_exn v1 "Grader") "boss")

let fig10 () =
  hdr "Figure 10 — delete_edge TeachingStaff-TA";
  let u = uni_with_population 24 in
  let tsem = Tsem.of_database u.db in
  ignore
    (Tsem.define_view_by_names tsem ~name:"VS"
       [ "Person"; "Student"; "Staff"; "TeachingStaff"; "SupportStaff"; "TA"; "Grader" ]);
  Printf.printf "before: extent(TeachingStaff)=%d (includes the TAs)\n"
    (Database.extent_size u.db u.teaching_staff);
  let v1 =
    Tsem.evolve tsem ~view:"VS"
      (Change.Delete_edge { sup = "TeachingStaff"; sub = "TA"; connected_to = None })
  in
  show_view u.db v1;
  let teaching' = View_schema.cid_of_exn v1 "TeachingStaff" in
  let ta' = View_schema.cid_of_exn v1 "TA" in
  Printf.printf "after: extent(TeachingStaff')=%d (TAs hidden)\n"
    (Database.extent_size u.db teaching');
  Printf.printf "lecture still on TA? %b (findProperties hid it)\n"
    (Type_info.has_prop (Database.graph u.db) ta' "lecture")

let fig11 () =
  hdr "Figure 11 — the commonSub diamond";
  let db = Database.create () in
  let g = Database.graph db in
  let reg name supers =
    let c = Schema_graph.register_base g ~name ~props:[] ~supers in
    Database.note_new_class db c;
    c
  in
  let v = reg "V" [] in
  let csup = reg "Csup" [ v ] in
  let csub = reg "Csub" [ csup ] in
  let c1 = reg "C1" [ v; csub ] in
  let _c2 = reg "C2" [ v; csub ] in
  let _c3 = reg "C3" [ v; csub ] in
  ignore (Database.create_object db c1 ~init:[]);
  ignore (Database.create_object db csub ~init:[]);
  let commons = Macros.common_sub db ~v ~sub:csub ~sup:csup ~sub':csub in
  Printf.printf "commonSub(V, Csub, minus Csup-Csub) = {%s}\n"
    (String.concat ", " (List.map (Schema_graph.name_of g) commons));
  let tsem = Tsem.of_database db in
  ignore
    (Tsem.define_view_by_names tsem ~name:"W" [ "V"; "Csup"; "Csub"; "C1"; "C2"; "C3" ]);
  let v1 =
    Tsem.evolve tsem ~view:"W"
      (Change.Delete_edge { sup = "Csup"; sub = "Csub"; connected_to = None })
  in
  Printf.printf "after the change: extent(V)=%d (C1's instance retained), extent(Csup)=%d\n"
    (Database.extent_size db (View_schema.cid_of_exn v1 "V"))
    (Database.extent_size db (View_schema.cid_of_exn v1 "Csup"))

let fig12_13 () =
  hdr "Figures 12/13 — add_class below a virtual class (derivation replay)";
  let u = uni_with_population 0 in
  let honor =
    Tse_algebra.Ops.select u.db ~name:"HonorStudent" ~src:u.student
      Expr.(attr "gpa" >= Const (Value.Float 3.5))
  in
  let tsem = Tsem.of_database u.db in
  ignore
    (Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student"; "HonorStudent" ]);
  let v1 =
    Tsem.evolve tsem ~view:"VS"
      (Change.Add_class { cls = "HonorParttime"; connected_to = Some "HonorStudent" })
  in
  let cadd = View_schema.cid_of_exn v1 "HonorParttime" in
  Printf.printf
    "HonorParttime built by replaying HonorStudent's derivation over a fresh\n\
     empty base subclass of its origin class (Student):\n";
  show_view u.db v1;
  Printf.printf "subclass of HonorStudent: %b; initially empty: %b\n"
    (Schema_graph.is_strict_ancestor (Database.graph u.db) ~anc:honor ~desc:cadd)
    (Database.extent_size u.db cadd = 0);
  let o =
    Tse_update.Generic.create u.db cadd
      ~init:[ ("name", Value.String "zoe"); ("gpa", Value.Float 3.9) ]
  in
  Printf.printf
    "created one member via the new class; visible in HonorStudent: %b\n"
    (Oid.Set.mem o (Database.extent u.db honor))

let fig14 () =
  hdr "Figure 14 — insert_class Middle between Person-Student";
  let u = uni_with_population 12 in
  let tsem = Tsem.of_database u.db in
  ignore (Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student"; "TA" ]);
  let v1 =
    Tsem.evolve tsem ~view:"VS"
      (Change.Insert_class { cls = "Middle"; sup = "Person"; sub = "Student" })
  in
  show_view u.db v1;
  Printf.printf "extent(Middle)=%d (covers the students)\n"
    (Database.extent_size u.db (View_schema.cid_of_exn v1 "Middle"))

let fig15 () =
  hdr "Figure 15 — delete_class_2 Student";
  let u = uni_with_population 24 in
  let tsem = Tsem.of_database u.db in
  ignore (Tsem.define_view_by_names tsem ~name:"VS" [ "Person"; "Student"; "TA"; "Grad" ]);
  let v1 = Tsem.evolve tsem ~view:"VS" (Change.Delete_class_2 { cls = "Student" }) in
  show_view u.db v1;
  let grad = View_schema.cid_of_exn v1 "Grad" in
  Printf.printf "Grad no longer inherits Student's gpa: %b; keeps thesis: %b\n"
    (not (Type_info.has_prop (Database.graph u.db) grad "gpa"))
    (Type_info.has_prop (Database.graph u.db) grad "thesis");
  Printf.printf "Person extent excludes the pure students: %d of %d objects\n"
    (Database.extent_size u.db (View_schema.cid_of_exn v1 "Person"))
    (Database.object_count u.db)

let fig16 () =
  hdr "Figure 16 — merging two schema versions";
  let u = uni_with_population 12 in
  let tsem = Tsem.of_database u.db in
  ignore (Tsem.define_view_by_names tsem ~name:"VS1" [ "Person"; "Student"; "TA" ]);
  ignore (Tsem.define_view_by_names tsem ~name:"VS2" [ "Person"; "Student"; "TA" ]);
  ignore
    (Tsem.evolve tsem ~view:"VS1"
       (Change.Add_attribute { cls = "Student"; def = Change.attr "register" Value.TBool }));
  ignore
    (Tsem.evolve tsem ~view:"VS2"
       (Change.Add_attribute { cls = "Student"; def = Change.attr "student_id" Value.TInt }));
  let merged = Merge.merge_current tsem ~view1:"VS1" ~view2:"VS2" ~new_name:"VS3" in
  Printf.printf "VS3 = merge(VS1, VS2):\n";
  show_view u.db merged;
  Printf.printf
    "identical Person kept once; the two distinct Students disambiguated;\n\
     instances are shared throughout (never copied per version)\n"

let table1 () =
  hdr "Table 1 — object-slicing vs intersection-class (measured)";
  List.iter
    (fun (n, k) ->
      Format.printf "%a@.@." Table1.pp_comparison
        (Table1.measure ~objects:n ~types_per_object:k))
    [ (1000, 2); (1000, 4) ];
  Printf.printf "class-explosion worst case (every subset of n aspect types):\n";
  List.iter
    (fun n ->
      let s, i = Table1.worst_case_classes ~aspects:n in
      Printf.printf
        "  aspects=%d: slicing adds %d classes, intersection adds %d (2^n-n-1=%d)\n"
        n s i ((1 lsl n) - n - 1))
    [ 2; 3; 4; 5; 6 ]

let table2 () =
  hdr "Table 2 — comparison with related systems (scenario-measured)";
  Format.printf "%a@." Criteria.pp_table (Criteria.run_all ())

let stats () =
  hdr "Section 2 — evolution-frequency statistics [26],[12], synthesized";
  let initial_classes = 10 and initial_attrs = 30 in
  let trace =
    Evolution_trace.generate ~seed:42 ~months:18 ~initial_classes ~initial_attrs
  in
  let s = Evolution_trace.summarize trace in
  let cg, ag, ac = Evolution_trace.ratios s ~initial_classes ~initial_attrs in
  Printf.printf
    "18-month synthetic trace: %d changes (%d add-attr, %d del-attr, %d add-class, %d add-method)\n"
    s.total s.adds_attribute s.deletes_attribute s.adds_class s.adds_method;
  Printf.printf
    "growth ratios: classes +%.0f%% (target 139%%), attributes +%.0f%% (target 274%%), changed %.0f%% (target 59%%)\n"
    (cg *. 100.) (ag *. 100.) (ac *. 100.);
  let rs = Random_schema.generate ~seed:42 ~classes:initial_classes ~objects:40 () in
  let tsem = Tsem.of_database rs.db in
  ignore (Tsem.define_view_by_names tsem ~name:"V" (Random_schema.class_names rs));
  let applied = ref 0 and rejected = ref 0 in
  Evolution_trace.replay tsem ~view:"V" trace ~applied ~rejected;
  Printf.printf
    "replayed through TSE: %d applied, %d rejected; view at version %d; db consistent: %b\n"
    !applied !rejected
    (Tsem.current tsem "V").View_schema.version
    (Database.check rs.db = [])

let all =
  [
    ("fig1", fig1); ("fig2", fig2); ("fig3", fig3_7); ("fig7", fig3_7);
    ("fig4", fig4); ("fig5", fig5); ("fig6", fig6); ("fig8", fig8);
    ("fig9", fig9); ("fig10", fig10); ("fig11", fig11); ("fig12", fig12_13);
    ("fig13", fig12_13); ("fig14", fig14); ("fig15", fig15); ("fig16", fig16);
    ("table1", table1); ("table2", table2); ("stats", stats);
  ]

let () =
  let unique_all =
    [ fig1; fig2; fig3_7; fig4; fig5; fig6; fig8; fig9; fig10; fig11;
      fig12_13; fig14; fig15; fig16; table1; table2; stats ]
  in
  match Array.to_list Sys.argv with
  | [ _ ] | [ _; "all" ] -> List.iter (fun f -> f ()) unique_all
  | _ :: picks ->
    List.iter
      (fun p ->
        match List.assoc_opt p all with
        | Some f -> f ()
        | None ->
          Printf.eprintf "unknown experiment %s; known: %s\n" p
            (String.concat ", " (List.map fst all));
          exit 1)
      picks
  | [] -> ()
