(* A longitudinal evolution audit — reproducing the flavour of the
   schema-evolution measurements the paper cites (Sjøberg's 18-month
   study [26], Marche's stability study [12]) on the TSE system itself.

   A synthetic 18-month change trace, calibrated to the cited growth
   ratios, is replayed through the TSEM against one continuously-evolving
   view, while a second "legacy" view is left untouched. The audit prints
   a month-by-month ledger and verifies at the end that the legacy view
   never moved and every historical version is still served.

   Run with: dune exec examples/evolution_audit.exe *)

open Tse_db
open Tse_views
open Tse_core
open Tse_workload

let () =
  let initial_classes = 10 and initial_attrs = 30 in
  let rs = Random_schema.generate ~seed:2026 ~classes:initial_classes ~objects:60 () in
  let db = rs.db in
  let tsem = Tsem.of_database db in
  let names = Random_schema.class_names rs in
  ignore (Tsem.define_view_by_names tsem ~name:"dev" names);
  ignore
    (Tsem.define_view_by_names tsem ~name:"legacy"
       (List.filteri (fun i _ -> i mod 2 = 0) names));
  let legacy_before = Verify.view_fingerprint db (Tsem.current tsem "legacy") in

  let trace =
    Evolution_trace.generate ~seed:2026 ~months:18 ~initial_classes ~initial_attrs
  in
  let summary = Evolution_trace.summarize trace in
  Printf.printf
    "trace: %d changes over %d months (add-attr %d, del-attr %d, add-class %d, add-method %d)\n\n"
    summary.total summary.months summary.adds_attribute
    summary.deletes_attribute summary.adds_class summary.adds_method;

  Printf.printf "%5s %9s %9s %9s %10s %8s\n" "month" "applied" "rejected"
    "classes" "view-ver" "objects";
  let applied = ref 0 and rejected = ref 0 in
  for month = 1 to 18 do
    List.iter
      (fun (m, change) ->
        if m = month then
          match Tsem.evolve tsem ~view:"dev" change with
          | _ -> incr applied
          | exception Change.Rejected _ -> incr rejected)
      trace;
    Printf.printf "%5d %9d %9d %9d %10d %8d\n" month !applied !rejected
      (Tse_schema.Schema_graph.size (Database.graph db))
      (Tsem.current tsem "dev").View_schema.version
      (Database.object_count db)
  done;

  let cg, ag, ac =
    Evolution_trace.ratios summary ~initial_classes ~initial_attrs
  in
  Printf.printf
    "\ngrowth vs the cited studies: classes +%.0f%% (paper: 139%%), attrs +%.0f%% (paper: 274%%), changed %.0f%% (paper: 59%%)\n"
    (cg *. 100.) (ag *. 100.) (ac *. 100.);

  (* the guarantees that make this sustainable *)
  let legacy_after = Verify.view_fingerprint db (Tsem.current tsem "legacy") in
  Printf.printf "\nlegacy view untouched after 18 months of churn: %b\n"
    (String.equal legacy_before legacy_after);
  let versions = History.versions (Tsem.history tsem) "dev" in
  Printf.printf "historical versions still served: %d\n" (List.length versions);
  Printf.printf "final view updatable (Theorem 1): %b\n"
    (Verify.all_updatable db (Tsem.current tsem "dev"));
  Printf.printf "database consistent: %b\n" (Database.check db = [])
