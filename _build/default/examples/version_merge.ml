(* Version merging (Section 7, Figure 16).

   Two users branch from the same view; each adds a different attribute
   to Student; a third user wants both improvements. In copy-based
   versioning systems this requires instance merging and schema
   integration; in TSE it is a class-collection exercise because the
   global schema already integrates everything and objects were never
   duplicated.

   Run with: dune exec examples/version_merge.exe *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_views
open Tse_core

let () =
  let uni = Tse_workload.University.build () in
  let db = uni.db in
  ignore (Tse_workload.University.populate uni ~n:12);
  let tsem = Tsem.of_database db in
  let names = [ "Person"; "Student"; "TA" ] in
  ignore (Tsem.define_view_by_names tsem ~name:"VS1" names);
  ignore (Tsem.define_view_by_names tsem ~name:"VS2" names);

  (* the two branches of Figure 16 *)
  ignore
    (Tsem.evolve tsem ~view:"VS1"
       (Change.Add_attribute { cls = "Student"; def = Change.attr "register" Value.TBool }));
  ignore
    (Tsem.evolve tsem ~view:"VS2"
       (Change.Add_attribute { cls = "Student"; def = Change.attr "student_id" Value.TInt }));

  let s1 = View_schema.cid_of_exn (Tsem.current tsem "VS1") "Student" in
  let s2 = View_schema.cid_of_exn (Tsem.current tsem "VS2") "Student" in
  let g = Database.graph db in
  Printf.printf "VS1's Student: %s\n" (String.concat ", " (Type_info.prop_names g s1));
  Printf.printf "VS2's Student: %s\n" (String.concat ", " (Type_info.prop_names g s2));

  (* instances were never copied: both branches share every student *)
  Printf.printf "branches share all %d students (no instance merging needed): %b\n"
    (Database.extent_size db s1)
    (Oid.Set.equal (Database.extent db s1) (Database.extent db s2));

  (* the merge *)
  Printf.printf "\nname collisions to disambiguate: %s\n"
    (String.concat ", "
       (Merge.name_collisions (Tsem.current tsem "VS1") (Tsem.current tsem "VS2")));
  let vs3 = Merge.merge_current tsem ~view1:"VS1" ~view2:"VS2" ~new_name:"VS3" in
  Printf.printf "VS3 classes:\n";
  List.iter
    (fun cid ->
      Printf.printf "  %-22s (global %s)\n"
        (Option.get (View_schema.local_name vs3 cid))
        (Schema_graph.name_of g cid))
    (View_schema.classes vs3);

  (* a program on VS3 uses BOTH improvements on one object *)
  let some_student = List.hd (Database.extent_list db s1) in
  Database.set_attr db some_student "register" (Value.Bool true);
  Database.set_attr db some_student "student_id" (Value.Int 4711);
  Format.printf
    "\none object, both branch attributes: register=%a student_id=%a@."
    Value.pp (Database.get_prop db some_student "register")
    Value.pp (Database.get_prop db some_student "student_id");

  (* contrast: adding the same attribute twice converges to one class *)
  ignore
    (Tsem.evolve tsem ~view:"VS2"
       (Change.Add_attribute { cls = "Student"; def = Change.attr "register" Value.TBool }));
  let s2' = View_schema.cid_of_exn (Tsem.current tsem "VS2") "Student" in
  Printf.printf
    "after VS2 also adds register: duplicate detection reuses VS1's class: %b\n"
    (Type_info.has_prop g s2' "register"
    && Type_info.has_prop g s2' "student_id");
  Printf.printf "database consistent: %b\n" (Database.check db = [])
