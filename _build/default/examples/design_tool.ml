(* A CAD tool-integration scenario — the application domain the paper's
   introduction motivates (CAD/CAM, VLSI design).

   A shared component database serves two tools: a LAYOUT tool and a
   SIMULATION tool. Each owns a view. Over time each tool's schema needs
   drift apart: layout wants geometric data, simulation wants electrical
   models and eventually drops fields it never reads. Every change is a
   transparent view evolution; the tools never block each other and keep
   exchanging the same component objects.

   Run with: dune exec examples/design_tool.exe *)

open Tse_store
open Tse_schema
open Tse_db
open Tse_views
open Tse_core

let step fmt = Printf.printf ("\n-- " ^^ fmt ^^ "\n")

let () =
  (* the shared base schema: a little electronics library *)
  let db = Database.create () in
  let g = Database.graph db in
  let stored = Prop.stored ~origin:(Oid.of_int 0) in
  let reg name props supers =
    let cid = Schema_graph.register_base g ~name ~props ~supers in
    Database.note_new_class db cid;
    cid
  in
  let component =
    reg "Component"
      [ stored "part_no" Value.TString; stored "vendor" Value.TString ]
      []
  in
  let resistor = reg "Resistor" [ stored "ohms" Value.TFloat ] [ component ] in
  let capacitor = reg "Capacitor" [ stored "farads" Value.TFloat ] [ component ] in
  let ic = reg "IC" [ stored "pins" Value.TInt ] [ component ] in
  ignore capacitor;
  let tsem = Tsem.of_database db in

  (* both tools start from the same catalogue view *)
  let all = [ "Component"; "Resistor"; "Capacitor"; "IC" ] in
  ignore (Tsem.define_view_by_names tsem ~name:"layout" all);
  ignore (Tsem.define_view_by_names tsem ~name:"simulation" all);

  (* some shared parts *)
  let r1 =
    Database.create_object db resistor
      ~init:[ ("part_no", Value.String "R-100"); ("ohms", Value.Float 470.) ]
  in
  let u1 =
    Database.create_object db ic
      ~init:[ ("part_no", Value.String "U-7400"); ("pins", Value.Int 14) ]
  in

  step "layout tool: needs footprints — adds geometry to Component";
  ignore
    (Tsem.evolve tsem ~view:"layout"
       (Change.Add_attribute { cls = "Component"; def = Change.attr "footprint" Value.TString }));
  ignore
    (Tsem.evolve tsem ~view:"layout"
       (Change.Add_attribute { cls = "Component"; def = Change.attr "x" Value.TFloat }));
  ignore
    (Tsem.evolve tsem ~view:"layout"
       (Change.Add_attribute { cls = "Component"; def = Change.attr "y" Value.TFloat }));
  let layout = Tsem.current tsem "layout" in
  let l_component = View_schema.cid_of_exn layout "Component" in
  Printf.printf "layout's Component: %s\n"
    (String.concat ", " (Type_info.prop_names g l_component));

  step "simulation tool: adds an electrical model, knows nothing of geometry";
  ignore
    (Tsem.evolve tsem ~view:"simulation"
       (Change.Add_attribute { cls = "Component"; def = Change.attr "spice_model" Value.TString }));
  let sim = Tsem.current tsem "simulation" in
  let s_component = View_schema.cid_of_exn sim "Component" in
  Printf.printf "simulation's Component: %s\n"
    (String.concat ", " (Type_info.prop_names g s_component));
  Printf.printf "geometry hidden from simulation: %b\n"
    (not (Type_info.has_prop g s_component "x"));

  step "both tools annotate the SAME resistor object";
  Database.set_attr db r1 "footprint" (Value.String "0805");
  Database.set_attr db r1 "x" (Value.Float 10.5);
  Database.set_attr db r1 "spice_model" (Value.String "R(470)");
  Format.printf "r1: footprint=%a (layout), spice_model=%a (simulation), ohms=%a (shared)@."
    Value.pp (Database.get_prop db r1 "footprint")
    Value.pp (Database.get_prop db r1 "spice_model")
    Value.pp (Database.get_prop db r1 "ohms");

  step "simulation never reads vendor info — deletes it from ITS view";
  ignore
    (Tsem.evolve tsem ~view:"simulation"
       (Change.Delete_attribute { cls = "Component"; attr_name = "vendor" }));
  let sim = Tsem.current tsem "simulation" in
  Printf.printf "simulation's Component lost vendor: %b; layout still has it: %b\n"
    (not (Type_info.has_prop g (View_schema.cid_of_exn sim "Component") "vendor"))
    (Type_info.has_prop g (View_schema.cid_of_exn (Tsem.current tsem "layout") "Component") "vendor");

  step "simulation reorganizes its hierarchy: PassiveComponent between Component and Resistor";
  ignore
    (Tsem.evolve tsem ~view:"simulation"
       (Change.Insert_class { cls = "Passive"; sup = "Component"; sub = "Resistor" }));
  let sim = Tsem.current tsem "simulation" in
  Format.printf "%a@." (Tse_views.Generation.pp g) sim;

  step "a NEW tool wants both worlds: merge the two views";
  let merged = Merge.merge_current tsem ~view1:"layout" ~view2:"simulation" ~new_name:"bringup" in
  Printf.printf "bringup view: %s\n"
    (String.concat ", "
       (List.filter_map (View_schema.local_name merged) (View_schema.classes merged)));

  step "old programs still run: the ORIGINAL catalogue view is intact";
  let v0 = Option.get (History.version (Tsem.history tsem) "layout" 0) in
  let v0_component = View_schema.cid_of_exn v0 "Component" in
  Printf.printf "version-0 Component props: %s\n"
    (String.concat ", " (Type_info.prop_names g v0_component));
  Format.printf "version-0 program reads u1.part_no = %a@." Value.pp
    (Database.get_prop db u1 "part_no");

  Printf.printf "\ntotal view versions registered: %d; database consistent: %b\n"
    (History.total_versions (Tsem.history tsem))
    (Database.check db = [])
