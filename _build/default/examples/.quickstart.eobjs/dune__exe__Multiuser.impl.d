examples/multiuser.ml: Change Database Format Impact List Occ Printf Tse_concurrency Tse_core Tse_db Tse_query Tse_schema Tse_store Tse_views Tse_workload Tsem Value View_schema
