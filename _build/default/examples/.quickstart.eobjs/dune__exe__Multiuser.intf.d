examples/multiuser.mli:
