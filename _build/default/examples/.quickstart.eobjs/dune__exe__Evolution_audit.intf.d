examples/evolution_audit.mli:
