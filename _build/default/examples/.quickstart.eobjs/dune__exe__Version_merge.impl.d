examples/version_merge.ml: Change Database Format List Merge Oid Option Printf Schema_graph String Tse_core Tse_db Tse_schema Tse_store Tse_views Tse_workload Tsem Type_info Value View_schema
