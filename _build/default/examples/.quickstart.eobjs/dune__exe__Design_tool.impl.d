examples/design_tool.ml: Change Database Format History List Merge Oid Option Printf Prop Schema_graph String Tse_core Tse_db Tse_schema Tse_store Tse_views Tsem Type_info Value View_schema
