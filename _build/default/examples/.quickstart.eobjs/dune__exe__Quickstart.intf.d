examples/quickstart.mli:
