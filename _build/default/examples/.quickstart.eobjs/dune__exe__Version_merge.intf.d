examples/version_merge.mli:
