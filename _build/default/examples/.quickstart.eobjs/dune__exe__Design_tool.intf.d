examples/design_tool.mli:
