examples/quickstart.ml: Change Database Format History List Oid Printf String Tse_core Tse_db Tse_schema Tse_store Tse_update Tse_views Tse_workload Tsem Value View_schema
