examples/evolution_audit.ml: Change Database Evolution_trace History List Printf Random_schema String Tse_core Tse_db Tse_schema Tse_views Tse_workload Tsem Verify View_schema
