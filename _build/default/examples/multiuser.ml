(* Multi-user operation: optimistic sessions, maintained indexes and
   transparent schema evolution working together on one shared database —
   the "many users, no service interruption" story of the paper's
   introduction, end to end.

   Run with: dune exec examples/multiuser.exe *)

open Tse_store
open Tse_db
open Tse_views
open Tse_core
open Tse_concurrency

let step fmt = Printf.printf ("\n-- " ^^ fmt ^^ "\n")

let () =
  let uni = Tse_workload.University.build () in
  let db = uni.db in
  let tsem = Tsem.of_database db in
  let occ = Occ.create db in
  let indexes = Tse_query.Indexes.create db in
  ignore (Tse_workload.University.populate uni ~n:60);

  step "two concurrent sessions race on one student";
  let target = List.hd (Database.extent_list db uni.student) in
  let s1 = Occ.begin_session occ in
  let s2 = Occ.begin_session occ in
  ignore (Occ.read s1 target "gpa");
  ignore (Occ.read s2 target "gpa");
  Occ.write s1 target "gpa" (Value.Float 3.1);
  Occ.write s2 target "gpa" (Value.Float 2.9);
  (match Occ.commit s1 with
  | Ok () -> Printf.printf "session 1 committed\n"
  | Error _ -> Printf.printf "session 1 conflicted\n");
  (match Occ.commit s2 with
  | Ok () -> Printf.printf "session 2 committed (unexpected!)\n"
  | Error { objects } ->
    Printf.printf "session 2 aborted: first committer won (%d stale object)\n"
      (List.length objects));
  Format.printf "final gpa: %a@." Value.pp (Database.get_prop db target "gpa");

  step "an index accelerates the registrar's queries";
  Tse_query.Indexes.ensure indexes uni.person "age";
  let pred = Tse_schema.Expr.(attr "age" === int 30) in
  Format.printf "plan: %a — %d hit(s)@." Tse_query.Engine.pp_plan
    (Tse_query.Engine.plan db indexes uni.person pred)
    (Tse_query.Engine.count db indexes uni.person pred);

  step "meanwhile, the registrar's view evolves without stopping anyone";
  ignore (Tsem.define_view_by_names tsem ~name:"registrar" [ "Person"; "Student" ]);
  let v1 =
    Tsem.evolve tsem ~view:"registrar"
      (Change.Add_attribute { cls = "Student"; def = Change.attr "holds" Value.TBool })
  in
  let student' = View_schema.cid_of_exn v1 "Student" in
  Printf.printf "registrar now at version %d\n" v1.View_schema.version;

  step "a session updates through the evolved view; the index keeps up";
  let s3 = Occ.begin_session occ in
  Occ.write s3 target "holds" (Value.Bool true);
  Occ.write s3 target "age" (Value.Int 30);
  (match Occ.commit s3 with
  | Ok () -> Printf.printf "session 3 committed through the evolved view\n"
  | Error _ -> Printf.printf "session 3 conflicted\n");
  Format.printf "indexed query now finds it: %d hit(s) at age=30@."
    (Tse_query.Engine.count db indexes uni.person pred);
  Format.printf "hold flag through the new view: %a@." Value.pp
    (Database.get_prop db target "holds");
  ignore student';

  step "impact analysis before a bolder change";
  ignore (Tsem.define_view_by_names tsem ~name:"payroll" [ "Person"; "Staff" ]);
  let report =
    Impact.analyze tsem ~view:"registrar"
      (Change.Delete_attribute { cls = "Student"; attr_name = "gpa" })
  in
  Format.printf "%a@." Impact.pp_report report;
  Printf.printf "\ndatabase consistent: %b\n" (Database.check db = [])
