(* Quickstart: the paper's running example (Figures 2, 3 and 7).

   A shared university database; a developer owns a personal view; she
   adds an attribute to it; her view evolves, everyone else's keeps
   working, and all programs still share the same objects.

   Run with: dune exec examples/quickstart.exe *)

open Tse_store
open Tse_db
open Tse_views
open Tse_core

let () =
  (* 1. The shared global schema (Figure 2) with some data. *)
  let uni = Tse_workload.University.build () in
  let db = uni.db in
  let tsem = Tsem.of_database db in
  let ada =
    Database.create_object db uni.student
      ~init:[ ("name", Value.String "ada"); ("age", Value.Int 24);
              ("gpa", Value.Float 3.9) ]
  in
  (* 2. Two developers define personal views over the shared schema. *)
  let mine = Tsem.define_view_by_names tsem ~name:"mine" [ "Person"; "Student"; "TA" ] in
  let theirs =
    Tsem.define_view_by_names tsem ~name:"theirs" [ "Person"; "Student"; "Grad" ]
  in
  Printf.printf "my view (version %d): %s\n" mine.View_schema.version
    (String.concat ", " (List.filter_map (View_schema.local_name mine) (View_schema.classes mine)));
  (* 3. New requirements: each student should carry register information.
        I specify the change on MY view — no coordination meetings. *)
  let mine' =
    Tsem.evolve tsem ~view:"mine"
      (Change.Add_attribute { cls = "Student"; def = Change.attr "register" Value.TBool })
  in
  Printf.printf "my view evolved to version %d\n" mine'.View_schema.version;
  (* 4. Transparency: I still call the class "Student" and it now has the
        attribute; I can store data in it right away. *)
  let my_student = View_schema.cid_of_exn mine' "Student" in
  Database.set_attr db ada "register" (Value.Bool true);
  Format.printf "ada.register = %a (through my view)@." Value.pp
    (Database.get_prop db ada "register");
  (* 5. Nobody else noticed: the other developer's view is bit-identical,
        and their programs keep reading the same shared object. *)
  let their_student = View_schema.cid_of_exn theirs "Student" in
  Printf.printf "their Student still has no register attribute: %b\n"
    (not (Tse_schema.Type_info.has_prop (Database.graph db) their_student "register"));
  Format.printf "their program reads the same ada: name = %a@." Value.pp
    (Database.get_prop db ada "name");
  (* 6. Interop: a program on MY view creates a student; THEIRS sees it. *)
  let bob =
    Tse_update.Generic.create db my_student
      ~init:[ ("name", Value.String "bob"); ("register", Value.Bool false) ]
  in
  Printf.printf "bob (created through my evolved view) visible to them: %b\n"
    (Oid.Set.mem bob (Database.extent db their_student));
  (* 7. The old version of my own view is still registered, so my old
        programs keep running too. *)
  Printf.printf "view versions on record for 'mine': %d\n"
    (List.length (History.versions (Tsem.history tsem) "mine"));
  Printf.printf "database consistent: %b\n" (Database.check db = [])
