lib/db/database.ml: Format Int List Printf String Tse_objmodel Tse_schema Tse_store
