lib/db/database.mli: Format Tse_objmodel Tse_schema Tse_store
