type tvid = int

type obj = {
  id : int;
  tname : string;
  bound : tvid;
  slots : (string, string) Hashtbl.t;
}

type tinfo = { mutable versions : (tvid * string list) list (* newest last *) }

type t = {
  types : (string, tinfo) Hashtbl.t;
  handlers : (string * tvid * string, obj -> string) Hashtbl.t;
  mutable next_oid : int;
  mutable next_tvid : int;
  mutable installed : int;
}

let create () =
  {
    types = Hashtbl.create 8;
    handlers = Hashtbl.create 8;
    next_oid = 0;
    next_tvid = 0;
    installed = 0;
  }

let fresh_tvid t =
  let v = t.next_tvid in
  t.next_tvid <- v + 1;
  v

let define_type t name attrs =
  if Hashtbl.mem t.types name then
    invalid_arg (Printf.sprintf "Encore: type %s exists" name);
  let v = fresh_tvid t in
  Hashtbl.replace t.types name { versions = [ (v, attrs) ] };
  v

let tinfo t name =
  match Hashtbl.find_opt t.types name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Encore: unknown type %s" name)

let new_type_version t name attrs =
  let info = tinfo t name in
  let v = fresh_tvid t in
  info.versions <- info.versions @ [ (v, attrs) ];
  v

let versions_of t name = List.map fst (tinfo t name).versions

let attrs_of t name v =
  match List.assoc_opt v (tinfo t name).versions with
  | Some attrs -> attrs
  | None -> invalid_arg (Printf.sprintf "Encore: %s has no version %d" name v)

let create_object t name v init =
  ignore (attrs_of t name v);
  let slots = Hashtbl.create 4 in
  List.iter (fun (k, x) -> Hashtbl.replace slots k x) init;
  let o = { id = t.next_oid; tname = name; bound = v; slots } in
  t.next_oid <- t.next_oid + 1;
  o

let bound_version _t o = o.bound

let install_handler t name ~from_version ~attr f =
  Hashtbl.replace t.handlers (name, from_version, attr) f;
  t.installed <- t.installed + 1

let read t ~as_of o name =
  let reader_attrs = attrs_of t o.tname as_of in
  if not (List.mem name reader_attrs) then
    Error (Printf.sprintf "attribute %s unknown to the reading version" name)
  else if List.mem name (attrs_of t o.tname o.bound) then
    match Hashtbl.find_opt o.slots name with
    | Some x -> Ok x
    | None -> Ok ""
  else
    (* the object's bound version lacks the attribute: exception handler *)
    match Hashtbl.find_opt t.handlers (o.tname, o.bound, name) with
    | Some f -> Ok (f o)
    | None ->
      Error
        (Printf.sprintf
           "no exception handler for %s on version %d instances" name o.bound)

let handlers_installed t = t.installed
let shares_objects = true
