type cvid = int

type obj = {
  id : int;
  cname : string;
  stored : cvid;
  slots : (string, string) Hashtbl.t;
}

type version_def = { attrs : string list; super : string option }
type cinfo = { mutable versions : (cvid * version_def) list }
type composition = (string * cvid) list

type t = {
  classes : (string, cinfo) Hashtbl.t;
  mutable next_oid : int;
  mutable next_cvid : int;
  mutable checks : int;
}

let create () =
  { classes = Hashtbl.create 8; next_oid = 0; next_cvid = 0; checks = 0 }

let fresh_cvid t =
  let v = t.next_cvid in
  t.next_cvid <- v + 1;
  v

let cinfo t name =
  match Hashtbl.find_opt t.classes name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Goose: unknown class %s" name)

let define_class t name ?super attrs =
  if Hashtbl.mem t.classes name then
    invalid_arg (Printf.sprintf "Goose: class %s exists" name);
  let v = fresh_cvid t in
  Hashtbl.replace t.classes name { versions = [ (v, { attrs; super }) ] };
  v

let new_class_version t name ?super attrs =
  let info = cinfo t name in
  let v = fresh_cvid t in
  info.versions <- info.versions @ [ (v, { attrs; super }) ];
  v

let versions_of t name = List.map fst (cinfo t name).versions

let def_of t name v =
  match List.assoc_opt v (cinfo t name).versions with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Goose: %s has no version %d" name v)

let compose t choices =
  t.checks <- t.checks + 1;
  let rec check = function
    | [] -> Ok (choices : composition)
    | (name, v) :: rest -> begin
      match List.assoc_opt v (cinfo t name).versions with
      | None -> Error (Printf.sprintf "version %d does not belong to %s" v name)
      | Some def -> begin
        match def.super with
        | Some s when not (List.mem_assoc s choices) ->
          Error
            (Printf.sprintf
               "inconsistent composition: %s (v%d) needs superclass %s" name v s)
        | Some _ | None -> check rest
      end
    end
  in
  check choices

let composition_size (c : composition) = List.length c

let create_object t name v init =
  ignore (def_of t name v);
  let slots = Hashtbl.create 4 in
  List.iter (fun (k, x) -> Hashtbl.replace slots k x) init;
  let o = { id = t.next_oid; cname = name; stored = v; slots } in
  t.next_oid <- t.next_oid + 1;
  o

let read t composition o name =
  match List.assoc_opt o.cname composition with
  | None -> Error (Printf.sprintf "composition has no version of %s" o.cname)
  | Some v ->
    let def = def_of t o.cname v in
    if not (List.mem name def.attrs) then
      Error (Printf.sprintf "attribute %s not in the composed version" name)
    else (
      (* instances are shared across class versions *)
      match Hashtbl.find_opt o.slots name with
      | Some x -> Ok x
      | None -> Ok "")

let consistency_checks t = t.checks
