type tvid = int

type obj = {
  id : int;
  tname : string;
  stored : tvid;
  slots : (string, string) Hashtbl.t;
}

type tinfo = { mutable versions : (tvid * (string * string) list) list }

type t = {
  types : (string, tinfo) Hashtbl.t;
  mutable next_oid : int;
  mutable next_tvid : int;
  mutable resolved : int;
}

let create () =
  { types = Hashtbl.create 8; next_oid = 0; next_tvid = 0; resolved = 0 }

let fresh_tvid t =
  let v = t.next_tvid in
  t.next_tvid <- v + 1;
  v

let tinfo t name =
  match Hashtbl.find_opt t.types name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Rose: unknown type %s" name)

let define_type t name attrs =
  if Hashtbl.mem t.types name then
    invalid_arg (Printf.sprintf "Rose: type %s exists" name);
  let v = fresh_tvid t in
  Hashtbl.replace t.types name { versions = [ (v, attrs) ] };
  v

let new_type_version t name attrs =
  let info = tinfo t name in
  let v = fresh_tvid t in
  info.versions <- info.versions @ [ (v, attrs) ];
  v

let versions_of t name = List.map fst (tinfo t name).versions

let attrs_of t name v =
  match List.assoc_opt v (tinfo t name).versions with
  | Some attrs -> attrs
  | None -> invalid_arg (Printf.sprintf "Rose: %s has no version %d" name v)

let create_object t name v init =
  ignore (attrs_of t name v);
  let slots = Hashtbl.create 4 in
  List.iter (fun (k, x) -> Hashtbl.replace slots k x) init;
  let o = { id = t.next_oid; tname = name; stored = v; slots } in
  t.next_oid <- t.next_oid + 1;
  o

let read t ~as_of o name =
  let reader_attrs = attrs_of t o.tname as_of in
  match List.assoc_opt name reader_attrs with
  | None -> Error (Printf.sprintf "attribute %s unknown to this version" name)
  | Some default -> begin
    match Hashtbl.find_opt o.slots name with
    | Some x -> Ok x
    | None ->
      if List.mem_assoc name (attrs_of t o.tname o.stored) then Ok ""
      else begin
        (* mismatch: resolve automatically with the declared default *)
        t.resolved <- t.resolved + 1;
        Ok default
      end
  end

let auto_resolutions t = t.resolved
