(** Table 2, executed.

    Each comparison criterion of Section 8 is phrased as a scenario and
    run against every simulated system (and against the real TSE stack),
    so the yes/no cells of the paper's Table 2 are {e measured} instead of
    quoted:

    - {b sharing}: an object created before the schema change is read and
      updated by a program on the new schema, and the update is seen by
      the old program — without the object having been copied;
    - {b effort}: how many user-supplied artifacts (exception handlers,
      update/backdate functions, version-tracking entries) the scenario
      required;
    - {b flexibility}: can a schema be composed from individual class
      versions;
    - {b subschema evolution}: how many class records an add-attribute on
      a 3-class view of the 8-class university schema touches/creates;
    - {b views + schema change} and {b version merging}: exercised on the
      TSE stack, absent by construction elsewhere. *)

type row = {
  system : string;
  sharing : bool;
  effort_count : int;
  effort_desc : string;
  flexibility : bool;
  classes_touched : int;  (** by the subschema-evolution scenario *)
  classes_total : int;
  subschema_evolution : bool;
  views_with_change : bool;
  version_merging : bool;
}

val run_all : unit -> row list
(** Rows for Encore, Orion, Goose, CLOSQL, Rose and the TSE system, in
    the paper's order. *)

val pp_table : Format.formatter -> row list -> unit
(** Render in the shape of the paper's Table 2. *)
