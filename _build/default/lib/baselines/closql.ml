type cvid = int

type obj = {
  id : int;
  cname : string;
  stored : cvid;
  slots : (string, string) Hashtbl.t;
}

type cinfo = { mutable versions : (cvid * string list) list (* oldest first *) }

type t = {
  classes : (string, cinfo) Hashtbl.t;
  updates : (string * cvid * string, (string * string) list -> string) Hashtbl.t;
  backdates : (string * cvid * string, (string * string) list -> string) Hashtbl.t;
  mutable next_oid : int;
  mutable next_cvid : int;
  mutable conversions : int;
  mutable installed : int;
}

let create () =
  {
    classes = Hashtbl.create 8;
    updates = Hashtbl.create 8;
    backdates = Hashtbl.create 8;
    next_oid = 0;
    next_cvid = 0;
    conversions = 0;
    installed = 0;
  }

let fresh_cvid t =
  let v = t.next_cvid in
  t.next_cvid <- v + 1;
  v

let cinfo t name =
  match Hashtbl.find_opt t.classes name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "CLOSQL: unknown class %s" name)

let define_class t name attrs =
  if Hashtbl.mem t.classes name then
    invalid_arg (Printf.sprintf "CLOSQL: class %s exists" name);
  let v = fresh_cvid t in
  Hashtbl.replace t.classes name { versions = [ (v, attrs) ] };
  v

let new_class_version t name attrs =
  let info = cinfo t name in
  let v = fresh_cvid t in
  info.versions <- info.versions @ [ (v, attrs) ];
  v

let versions_of t name = List.map fst (cinfo t name).versions

let attrs_of t name v =
  match List.assoc_opt v (cinfo t name).versions with
  | Some attrs -> attrs
  | None -> invalid_arg (Printf.sprintf "CLOSQL: %s has no version %d" name v)

let install_update t name ~from_version ~attr f =
  Hashtbl.replace t.updates (name, from_version, attr) f;
  t.installed <- t.installed + 1

let install_backdate t name ~to_version ~attr f =
  Hashtbl.replace t.backdates (name, to_version, attr) f;
  t.installed <- t.installed + 1

let create_object t name v init =
  ignore (attrs_of t name v);
  let slots = Hashtbl.create 4 in
  List.iter (fun (k, x) -> Hashtbl.replace slots k x) init;
  let o = { id = t.next_oid; cname = name; stored = v; slots } in
  t.next_oid <- t.next_oid + 1;
  o

let stored_version _t o = o.stored

(* Convert a slot list one step along the version chain. *)
let step t cname ~from_v ~to_v slots ~forward =
  t.conversions <- t.conversions + 1;
  let target_attrs = attrs_of t cname to_v in
  List.filter_map
    (fun attr ->
      match List.assoc_opt attr slots with
      | Some x -> Some (attr, x)
      | None -> begin
        let table = if forward then t.updates else t.backdates in
        let key = if forward then (cname, from_v, attr) else (cname, to_v, attr) in
        match Hashtbl.find_opt table key with
        | Some f -> Some (attr, f slots)
        | None -> None
      end)
    target_attrs

let read t ~as_of o name =
  let chain = versions_of t o.cname in
  if not (List.mem as_of chain) then Error "unknown reading version"
  else begin
    let idx v = Option.get (List.find_index (Int.equal v) chain) in
    let i = idx o.stored and j = idx as_of in
    let slots =
      Hashtbl.fold (fun k x acc -> (k, x) :: acc) o.slots []
    in
    let rec convert slots i =
      if i = j then slots
      else if i < j then
        let from_v = List.nth chain i and to_v = List.nth chain (i + 1) in
        convert (step t o.cname ~from_v ~to_v slots ~forward:true) (i + 1)
      else
        let from_v = List.nth chain i and to_v = List.nth chain (i - 1) in
        convert (step t o.cname ~from_v ~to_v slots ~forward:false) (i - 1)
    in
    let converted = convert slots i in
    if not (List.mem name (attrs_of t o.cname as_of)) then
      Error (Printf.sprintf "attribute %s unknown to version %d" name as_of)
    else
      match List.assoc_opt name converted with
      | Some x -> Ok x
      | None ->
        Error
          (Printf.sprintf
             "no update/backdate function supplies %s for this instance" name)
  end

let conversions_performed t = t.conversions
let functions_installed t = t.installed
let shares_objects = true
