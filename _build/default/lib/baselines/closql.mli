(** CLOSQL-style class versioning (Monk & Sommerville, SIGMOD Record 93),
    simulated:

    - classes are versioned; every instance is {e stored} in the format of
      the version current at its creation;
    - the user supplies, per attribute, {b update}/{b backdate} functions
      converting an instance between adjacent version formats;
    - any program, written against any version, can access any instance:
      the system chains conversion functions at {e access time} (the
      conversion-cost overhead Section 8 mentions, which we count);
    - stored attributes added by a new version have no value on old
      instances unless an update function synthesizes one. *)

type t
type cvid = int
type obj

val create : unit -> t

val define_class : t -> string -> string list -> cvid
val new_class_version : t -> string -> string list -> cvid
val versions_of : t -> string -> cvid list

val install_update :
  t -> string -> from_version:cvid -> attr:string ->
  ((string * string) list -> string) -> unit
(** Synthesize [attr] (introduced after [from_version]) from an older
    instance's slots, when converting {e forward}. *)

val install_backdate :
  t -> string -> to_version:cvid -> attr:string ->
  ((string * string) list -> string) -> unit
(** Recompute [attr] of an older format from a newer instance's slots,
    when converting {e backward} (only needed when the attribute changed
    representation; dropping an attribute needs no function). *)

val create_object : t -> string -> cvid -> (string * string) list -> obj
val stored_version : t -> obj -> cvid

val read : t -> as_of:cvid -> obj -> string -> (string, string) result
(** Read through version [as_of]: converts the instance's format along
    the version chain, applying update/backdate functions. *)

val conversions_performed : t -> int
(** Access-time conversion cost counter. *)

val functions_installed : t -> int
(** User-effort metric for Table 2. *)

val shares_objects : bool
