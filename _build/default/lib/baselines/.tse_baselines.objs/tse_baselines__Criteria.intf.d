lib/baselines/criteria.mli: Format
