lib/baselines/encore.mli:
