lib/baselines/criteria.ml: Closql Encore Format Goose List Orion Printf Result Rose String Tse_core Tse_db Tse_schema Tse_store Tse_views Tse_workload
