lib/baselines/closql.ml: Hashtbl Int List Option Printf
