lib/baselines/table1.mli: Format
