lib/baselines/rose.mli:
