lib/baselines/encore.ml: Hashtbl List Printf
