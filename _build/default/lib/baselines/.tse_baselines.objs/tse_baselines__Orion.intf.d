lib/baselines/orion.mli:
