lib/baselines/orion.ml: Hashtbl List Printf String
