lib/baselines/closql.mli:
