lib/baselines/rose.ml: Hashtbl List Printf
