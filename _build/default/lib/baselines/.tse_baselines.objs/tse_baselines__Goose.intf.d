lib/baselines/goose.mli:
