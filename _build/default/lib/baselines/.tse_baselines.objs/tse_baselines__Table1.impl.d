lib/baselines/table1.ml: Array Format Fun List Printf String Tse_objmodel Tse_schema Tse_store Tse_workload
