lib/baselines/goose.ml: Hashtbl List Printf
