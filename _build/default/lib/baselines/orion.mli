(** ORION-style schema versioning (Kim & Chou, VLDB 88) — the paper's
    Section 8 characterization, simulated:

    - versions are of the {e whole schema hierarchy}, not of classes;
    - deriving a new version copies the complete schema;
    - an instance belongs to the schema version under which it was
      created; to use it under a newer version it must be {e copied and
      converted} — after which the versions hold {e separate} objects;
    - old objects are frozen (non-updatable) under the new schema;
    - no backward propagation: deleting an object under the new version
      leaves it visible under the old one (the inconsistency Section 8
      calls out). *)

type t
type vid = int
type obj

val create : unit -> t

val initial_version : t -> vid
(** Version 0, with an empty schema. *)

val add_class : t -> vid -> string -> string list -> unit
(** [add_class t v name attrs] — only the {e latest} version's schema may
    be edited in place before objects exist; evolution goes through
    {!derive_version}. *)

val derive_version : t -> from:vid -> (string * string list) list -> vid
(** Copy the whole schema of [from], apply per-class attribute overrides,
    return the new version. The copy cost is real: every class record is
    duplicated. *)

val schema_classes : t -> vid -> string list
val class_count_total : t -> int
(** Total class records across all versions — the duplication overhead. *)

val create_object : t -> vid -> cls:string -> (string * string) list -> obj
val visible : t -> vid -> obj -> bool
(** An object is visible only under its creation version (until copied). *)

val copy_forward : t -> obj -> to_:vid -> obj
(** Copy-and-convert an instance to another version: a {e distinct} object
    (a new identity) whose updates do not reach the original. *)

val get : t -> vid -> obj -> string -> string option
val set : t -> vid -> obj -> string -> string -> (unit, string) result
(** Fails when the object is frozen under this version. *)

val delete_object : t -> vid -> obj -> unit
(** Removes the object from this version only — copies under other
    versions survive, demonstrating the lack of back propagation. *)

val same_identity : obj -> obj -> bool
val copies_made : t -> int
