(** Encore-style type versioning (Skarra & Zdonik, OOPSLA 86), simulated:

    - each {e type} keeps a list of versions; an object is bound to the
      version current when it was created;
    - all versions' instances are accessible through the {e version-set
      interface}, but a program written against version [n] reading a
      property absent from an object's bound version needs a
      user-supplied {b exception handler} — without one the access
      fails;
    - the schema itself is not versioned: the user mentally composes a
      "virtual schema version" by tracking which type versions belong
      together. *)

type t
type tvid = int
type obj

val create : unit -> t

val define_type : t -> string -> string list -> tvid
(** First version of a named type. *)

val new_type_version : t -> string -> string list -> tvid
(** Append a version with the given attribute list. Returns its id. *)

val versions_of : t -> string -> tvid list
val attrs_of : t -> string -> tvid -> string list

val create_object : t -> string -> tvid -> (string * string) list -> obj
val bound_version : t -> obj -> tvid

val install_handler :
  t -> string -> from_version:tvid -> attr:string -> (obj -> string) -> unit
(** The user-supplied exception handler: what to answer when a program
    reads [attr] (defined in some newer version) on an object bound to
    [from_version]. *)

val read :
  t -> as_of:tvid -> obj -> string -> (string, string) result
(** Read through version [as_of]'s interface. Objects bound to a version
    lacking the attribute answer via their handler, or fail. *)

val handlers_installed : t -> int
(** User-effort metric for Table 2. *)

val shares_objects : bool
(** [true]: all programs see the single underlying instance. *)
