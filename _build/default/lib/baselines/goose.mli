(** Goose-style class versioning (Kim; Morsi/Navathe/Kim), simulated:

    - individual {e classes} are versioned (not the schema);
    - a usable schema is {e composed by the user} from one version of each
      class — flexible, but the user carries the burden of tracking which
      class versions belong together, and the system must check the
      composition's consistency;
    - instances are shared: any composition containing a version of the
      object's class can reach the object. *)

type t
type cvid = int
type obj
type composition

val create : unit -> t

val define_class : t -> string -> ?super:string -> string list -> cvid
val new_class_version : t -> string -> ?super:string -> string list -> cvid
val versions_of : t -> string -> cvid list

val compose :
  t -> (string * cvid) list -> (composition, string) result
(** Build a schema from class versions. Fails when a chosen version's
    superclass is not part of the composition, or a version id does not
    belong to its class — the consistency checking overhead Section 8
    describes. *)

val composition_size : composition -> int
(** The number of (class, version) pairs the user had to track: the
    effort metric. *)

val create_object : t -> string -> cvid -> (string * string) list -> obj

val read : t -> composition -> obj -> string -> (string, string) result
(** Read an attribute through a composition: the object answers if the
    composition includes {e any} version of its class defining the
    attribute (instances are shared across class versions). *)

val consistency_checks : t -> int
(** How many composition checks the system has performed. *)
