(** Table 1, executed: the object-slicing vs intersection-class
    comparison of Section 4.2, measured on a populated car database
    (Figure 5's schema, scaled).

    The structural rows (#oids, managerial storage, #classes, copies and
    identity swaps paid by dynamic classification) are computed here; the
    timing rows (casting, local- and inherited-attribute access, select
    scans, reclassification) are measured by the bench harness over the
    workloads this module prepares. *)

type metrics = {
  model : string;
  objects : int;
  types_per_object : int;
  oids_per_object : float;  (** Table 1 row: #oids for one object *)
  managerial_bytes : int;  (** Table 1 row: storage for managerial purpose *)
  data_bytes : int;  (** Table 1 row: storage for data values *)
  user_classes : int;
  auto_classes : int;  (** Table 1 row: #classes beyond the user's *)
  reclass_copies : int;  (** dynamic classification: value copies *)
  reclass_swaps : int;  (** dynamic classification: identity swaps *)
}

val measure : objects:int -> types_per_object:int -> metrics * metrics
(** [(slicing, intersection)] after creating [objects] cars and
    dynamically classifying each into [types_per_object - 1] additional
    independent aspect classes. *)

val worst_case_classes : aspects:int -> int * int
(** [(slicing, intersection)] classes created when one object takes every
    subset of [aspects] aspect types — the [2^n] explosion claim. *)

val pp_comparison : Format.formatter -> metrics * metrics -> unit

(** {2 Workloads for the timing benchmarks} *)

type 'a workload = {
  label : string;
  run : unit -> 'a;  (** one measured operation *)
}

val cast_workloads : objects:int -> unit workload * unit workload
val local_attr_workloads : objects:int -> unit workload * unit workload

val inherited_attr_workloads :
  depth:int -> objects:int -> unit workload * unit workload
(** Read an attribute defined [depth] superclasses above the objects'
    class — the access pattern where intersection-class wins. *)

val select_scan_workloads : objects:int -> int workload * int workload
(** Count objects whose local attribute satisfies a predicate — the
    pattern where slicing is claimed to win. *)

val reclass_workloads : objects:int -> unit workload * unit workload
(** Dynamically classify and declassify one object per run. *)
