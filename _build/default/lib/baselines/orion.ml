type vid = int

type obj = { id : int; mutable home : vid }

type cell = {
  cls : string;
  slots : (string, string) Hashtbl.t;
  obj : obj;
  mutable frozen : bool;
}

type version = {
  schema : (string, string list) Hashtbl.t;  (* class -> attrs *)
  objects : (int, cell) Hashtbl.t;
}

type t = {
  versions : (vid, version) Hashtbl.t;
  mutable next_vid : vid;
  mutable next_oid : int;
  mutable copies : int;
}

let create () =
  let t =
    { versions = Hashtbl.create 4; next_vid = 0; next_oid = 0; copies = 0 }
  in
  Hashtbl.replace t.versions 0
    { schema = Hashtbl.create 8; objects = Hashtbl.create 16 };
  t.next_vid <- 1;
  t

let initial_version _t = 0

let version t v =
  match Hashtbl.find_opt t.versions v with
  | Some ver -> ver
  | None -> invalid_arg (Printf.sprintf "Orion: unknown version %d" v)

let add_class t v name attrs = Hashtbl.replace (version t v).schema name attrs

let derive_version t ~from overrides =
  let src = version t from in
  (* the whole schema hierarchy is copied: every class record duplicated *)
  let schema = Hashtbl.copy src.schema in
  List.iter (fun (cls, attrs) -> Hashtbl.replace schema cls attrs) overrides;
  let vid = t.next_vid in
  t.next_vid <- vid + 1;
  Hashtbl.replace t.versions vid { schema; objects = Hashtbl.create 16 };
  vid

let schema_classes t v =
  Hashtbl.fold (fun c _ acc -> c :: acc) (version t v).schema []
  |> List.sort String.compare

let class_count_total t =
  Hashtbl.fold (fun _ ver acc -> acc + Hashtbl.length ver.schema) t.versions 0

let create_object t v ~cls init =
  let ver = version t v in
  if not (Hashtbl.mem ver.schema cls) then
    invalid_arg (Printf.sprintf "Orion: no class %s in version %d" cls v);
  let obj = { id = t.next_oid; home = v } in
  t.next_oid <- t.next_oid + 1;
  let slots = Hashtbl.create 4 in
  List.iter (fun (k, x) -> Hashtbl.replace slots k x) init;
  Hashtbl.replace ver.objects obj.id { cls; slots; obj; frozen = false };
  obj

let visible t v obj = Hashtbl.mem (version t v).objects obj.id

let copy_forward t obj ~to_ =
  let src = version t obj.home in
  let cell =
    match Hashtbl.find_opt src.objects obj.id with
    | Some c -> c
    | None -> invalid_arg "Orion.copy_forward: object not in its home version"
  in
  let dst = version t to_ in
  let attrs =
    match Hashtbl.find_opt dst.schema cell.cls with
    | Some attrs -> attrs
    | None -> []
  in
  (* convert: keep only the attributes the target version's class knows *)
  let slots = Hashtbl.create 4 in
  List.iter
    (fun a ->
      match Hashtbl.find_opt cell.slots a with
      | Some x -> Hashtbl.replace slots a x
      | None -> ())
    attrs;
  let copy = { id = t.next_oid; home = to_ } in
  t.next_oid <- t.next_oid + 1;
  t.copies <- t.copies + 1;
  Hashtbl.replace dst.objects copy.id { cls = cell.cls; slots; obj = copy; frozen = false };
  (* the original freezes under the new regime *)
  cell.frozen <- true;
  copy

let get t v obj name =
  match Hashtbl.find_opt (version t v).objects obj.id with
  | None -> None
  | Some cell -> Hashtbl.find_opt cell.slots name

let set t v obj name x =
  match Hashtbl.find_opt (version t v).objects obj.id with
  | None -> Error "object not visible under this version"
  | Some cell ->
    if cell.frozen then Error "object is frozen (superseded by a newer copy)"
    else begin
      Hashtbl.replace cell.slots name x;
      Ok ()
    end

let delete_object t v obj = Hashtbl.remove (version t v).objects obj.id
let same_identity a b = a.id = b.id
let copies_made t = t.copies
