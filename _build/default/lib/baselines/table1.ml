module Value = Tse_store.Value
module Oid = Tse_store.Oid
module Heap = Tse_store.Heap
module Stats = Tse_store.Stats
module Prop = Tse_schema.Prop
module Schema_graph = Tse_schema.Schema_graph
module Slicing = Tse_objmodel.Slicing
module Intersection = Tse_objmodel.Intersection
module Cars = Tse_workload.Cars

type metrics = {
  model : string;
  objects : int;
  types_per_object : int;
  oids_per_object : float;
  managerial_bytes : int;
  data_bytes : int;
  user_classes : int;
  auto_classes : int;
  reclass_copies : int;
  reclass_swaps : int;
}

let o0 = Oid.of_int 0

(* Independent aspect classes under Car: the types an object dynamically
   acquires (Imported, Leased, Electric, ...). *)
let add_aspects graph car n =
  List.init n (fun i ->
      Schema_graph.register_base graph
        ~name:(Printf.sprintf "Aspect%d" i)
        ~props:[ Prop.stored ~origin:o0 (Printf.sprintf "aspect%d" i) Value.TInt ]
        ~supers:[ car ])

type setup_s = {
  s_model : Slicing.t;
  s_objects : Oid.t array;
  s_cars : Cars.t;
  s_aspects : Tse_schema.Klass.cid list;
}

type setup_i = {
  i_model : Intersection.t;
  i_objects : Oid.t array;
  i_cars : Cars.t;
  i_aspects : Tse_schema.Klass.cid list;
}

let build_slicing ~objects ~aspects_n ~join =
  let cars = Cars.build () in
  let aspects = add_aspects cars.graph cars.car aspects_n in
  let stats = Stats.create () in
  let m = Slicing.create ~graph:cars.graph ~heap:cars.heap ~stats in
  let objs =
    Array.init objects (fun i ->
        let o = Slicing.create_object m cars.jeep in
        Slicing.set_attr m o "model" (Value.String (Printf.sprintf "m%d" i));
        Slicing.set_attr m o "weight" (Value.Int (1000 + i));
        List.iteri
          (fun k a -> if k < join then Slicing.add_to_class m o a)
          aspects;
        o)
  in
  { s_model = m; s_objects = objs; s_cars = cars; s_aspects = aspects }

let build_intersection ~objects ~aspects_n ~join =
  let cars = Cars.build () in
  let aspects = add_aspects cars.graph cars.car aspects_n in
  let stats = Stats.create () in
  let m = Intersection.create ~graph:cars.graph ~heap:cars.heap ~stats in
  let objs =
    Array.init objects (fun i ->
        let o = Intersection.create_object m cars.jeep in
        Intersection.set_attr m o "model" (Value.String (Printf.sprintf "m%d" i));
        Intersection.set_attr m o "weight" (Value.Int (1000 + i));
        List.iteri
          (fun k a -> if k < join then Intersection.add_to_class m o a)
          aspects;
        o)
  in
  { i_model = m; i_objects = objs; i_cars = cars; i_aspects = aspects }

let measure ~objects ~types_per_object =
  let join = max 0 (types_per_object - 1) in
  let aspects_n = max join 1 in
  let s = build_slicing ~objects ~aspects_n ~join in
  let i = build_intersection ~objects ~aspects_n ~join in
  let user_classes = 3 + aspects_n (* Car, Jeep, Imported + aspects *) in
  let stats_s = Slicing.stats s.s_model in
  let stats_i = Intersection.stats i.i_model in
  ( {
      model = "object-slicing";
      objects;
      types_per_object;
      oids_per_object = Stats.oids_per_object stats_s;
      managerial_bytes = Stats.managerial_bytes stats_s;
      data_bytes = stats_s.Stats.data_bytes;
      user_classes;
      auto_classes = 0;
      reclass_copies = stats_s.Stats.copies;
      reclass_swaps = stats_s.Stats.identity_swaps;
    },
    {
      model = "intersection-class";
      objects;
      types_per_object;
      oids_per_object = Stats.oids_per_object stats_i;
      managerial_bytes = Stats.managerial_bytes stats_i;
      data_bytes = stats_i.Stats.data_bytes;
      user_classes;
      auto_classes = Intersection.intersection_classes_created i.i_model;
      reclass_copies = stats_i.Stats.copies;
      reclass_swaps = stats_i.Stats.identity_swaps;
    } )

let worst_case_classes ~aspects =
  (* one object per non-empty subset of the aspect types *)
  let subsets =
    List.init ((1 lsl aspects) - 1) (fun mask ->
        List.filteri (fun i _ -> (mask + 1) lsr i land 1 = 1)
          (List.init aspects Fun.id))
  in
  let s = build_slicing ~objects:0 ~aspects_n:aspects ~join:0 in
  let i = build_intersection ~objects:0 ~aspects_n:aspects ~join:0 in
  let g_before_s = Schema_graph.size (Slicing.graph s.s_model) in
  let g_before_i = Schema_graph.size (Intersection.graph i.i_model) in
  List.iter
    (fun subset ->
      let o = Slicing.create_object s.s_model s.s_cars.car in
      List.iter
        (fun k -> Slicing.add_to_class s.s_model o (List.nth s.s_aspects k))
        subset;
      let o' = Intersection.create_object i.i_model i.i_cars.car in
      List.iter
        (fun k ->
          Intersection.add_to_class i.i_model o' (List.nth i.i_aspects k))
        subset)
    subsets;
  ( Schema_graph.size (Slicing.graph s.s_model) - g_before_s,
    Schema_graph.size (Intersection.graph i.i_model) - g_before_i )

let pp_comparison ppf ((s, i) : metrics * metrics) =
  let row label f = Format.fprintf ppf "%-28s | %-18s | %-18s@ " label (f s) (f i) in
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "TABLE 1 (objects=%d, types/object=%d)@ %-28s | %-18s | %-18s@ %s@ "
    s.objects s.types_per_object "criterion" s.model i.model
    (String.make 70 '-');
  row "#oids for one object" (fun m -> Printf.sprintf "%.2f" m.oids_per_object);
  row "managerial storage (bytes)" (fun m -> string_of_int m.managerial_bytes);
  row "data storage (bytes)" (fun m -> string_of_int m.data_bytes);
  row "#user classes" (fun m -> string_of_int m.user_classes);
  row "#auto (intersection) classes" (fun m -> string_of_int m.auto_classes);
  row "reclass: value copies" (fun m -> string_of_int m.reclass_copies);
  row "reclass: identity swaps" (fun m -> string_of_int m.reclass_swaps);
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* Timing workloads                                                    *)
(* ------------------------------------------------------------------ *)

type 'a workload = { label : string; run : unit -> 'a }

let cast_workloads ~objects =
  let s = build_slicing ~objects ~aspects_n:1 ~join:1 in
  let i = build_intersection ~objects ~aspects_n:1 ~join:1 in
  let cursor = ref 0 in
  let next arr =
    let k = !cursor in
    cursor := (k + 1) mod Array.length arr;
    arr.(k)
  in
  ( {
      label = "cast/slicing";
      run =
        (fun () -> ignore (Slicing.cast s.s_model (next s.s_objects) s.s_cars.car));
    },
    {
      label = "cast/intersection";
      run =
        (fun () ->
          ignore (Intersection.cast i.i_model (next i.i_objects) i.i_cars.car));
    } )

let local_attr_workloads ~objects =
  let s = build_slicing ~objects ~aspects_n:1 ~join:1 in
  let i = build_intersection ~objects ~aspects_n:1 ~join:1 in
  (* the attribute must be populated: empty slots measure the unknown-name
     fallback, not attribute access *)
  Array.iter (fun o -> Slicing.set_attr s.s_model o "offroad" (Value.Bool true)) s.s_objects;
  Array.iter
    (fun o -> Intersection.set_attr i.i_model o "offroad" (Value.Bool true))
    i.i_objects;
  let c = ref 0 in
  let next arr =
    let k = !c in
    c := (k + 1) mod Array.length arr;
    arr.(k)
  in
  ( {
      label = "get_local/slicing";
      run = (fun () -> ignore (Slicing.get_attr s.s_model (next s.s_objects) "offroad"));
    },
    {
      label = "get_local/intersection";
      run =
        (fun () ->
          ignore (Intersection.get_attr i.i_model (next i.i_objects) "offroad"));
    } )

let deep_setup ~depth ~objects =
  let cars, chain = Cars.deep_chain ~depth in
  let leaf = List.nth chain (depth - 1) in
  let stats = Stats.create () in
  let cars2, chain2 = Cars.deep_chain ~depth in
  let leaf2 = List.nth chain2 (depth - 1) in
  let s = Slicing.create ~graph:cars.graph ~heap:cars.heap ~stats in
  let i =
    Intersection.create ~graph:cars2.graph ~heap:cars2.heap ~stats:(Stats.create ())
  in
  let so =
    Array.init objects (fun k ->
        let o = Slicing.create_object s leaf in
        Slicing.set_attr s o "model" (Value.String (string_of_int k));
        o)
  in
  let io =
    Array.init objects (fun k ->
        let o = Intersection.create_object i leaf2 in
        Intersection.set_attr i o "model" (Value.String (string_of_int k));
        o)
  in
  (s, so, i, io)

let inherited_attr_workloads ~depth ~objects =
  let s, so, i, io = deep_setup ~depth ~objects in
  let c = ref 0 in
  let next arr =
    let k = !c in
    c := (k + 1) mod Array.length arr;
    arr.(k)
  in
  ( {
      label = Printf.sprintf "get_inherited(d=%d)/slicing" depth;
      (* 'model' is defined at the root Car, [depth] levels above *)
      run = (fun () -> ignore (Slicing.get_attr s (next so) "model"));
    },
    {
      label = Printf.sprintf "get_inherited(d=%d)/intersection" depth;
      run = (fun () -> ignore (Intersection.get_attr i (next io) "model"));
    } )

let select_scan_workloads ~objects =
  let s = build_slicing ~objects ~aspects_n:1 ~join:1 in
  let i = build_intersection ~objects ~aspects_n:1 ~join:1 in
  let wanted = Value.Int (1000 + (objects / 2)) in
  (* the paper's argument for slicing on selects is clustering: a scan of
     one attribute touches only the defining class's (small) slices. The
     in-memory analog: the query engine resolves the defining class once
     and reads each object's slice directly. *)
  let car = s.s_cars.car in
  ( {
      label = "select_scan/slicing(clustered)";
      run =
        (fun () ->
          Array.fold_left
            (fun acc o ->
              match Slicing.impl_of s.s_model o car with
              | Some impl ->
                if
                  Value.equal
                    (Tse_store.Heap.get_slot (Slicing.heap s.s_model) impl "weight")
                    wanted
                then acc + 1
                else acc
              | None -> acc)
            0 s.s_objects);
    },
    {
      label = "select_scan/intersection";
      run =
        (fun () ->
          Array.fold_left
            (fun acc o ->
              if Value.equal (Intersection.get_attr i.i_model o "weight") wanted
              then acc + 1
              else acc)
            0 i.i_objects);
    } )

let reclass_workloads ~objects =
  let s = build_slicing ~objects ~aspects_n:1 ~join:0 in
  let i = build_intersection ~objects ~aspects_n:1 ~join:0 in
  let aspect_s = List.hd s.s_aspects and aspect_i = List.hd i.i_aspects in
  let c = ref 0 in
  let next arr =
    let k = !c in
    c := (k + 1) mod Array.length arr;
    arr.(k)
  in
  ( {
      label = "reclassify/slicing";
      run =
        (fun () ->
          let o = next s.s_objects in
          Slicing.add_to_class s.s_model o aspect_s;
          Slicing.remove_from_class s.s_model o aspect_s);
    },
    {
      label = "reclassify/intersection";
      run =
        (fun () ->
          let o = next i.i_objects in
          Intersection.add_to_class i.i_model o aspect_i;
          Intersection.remove_from_class i.i_model o aspect_i);
    } )
