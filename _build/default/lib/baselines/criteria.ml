module Value = Tse_store.Value
module Oid = Tse_store.Oid
module Database = Tse_db.Database
module Schema_graph = Tse_schema.Schema_graph
module View_schema = Tse_views.View_schema
module Tsem = Tse_core.Tsem
module Change = Tse_core.Change
module Merge = Tse_core.Merge

type row = {
  system : string;
  sharing : bool;
  effort_count : int;
  effort_desc : string;
  flexibility : bool;
  classes_touched : int;
  classes_total : int;
  subschema_evolution : bool;
  views_with_change : bool;
  version_merging : bool;
}

(* Shared scenario shape: Person(name, age) + 7 unrelated classes; add an
   email attribute to Person; interoperate across the change. *)
let other_classes = [ "A"; "B"; "C"; "D"; "E"; "F"; "G" ]
let total_classes = 1 + List.length other_classes

let run_encore () =
  let t = Encore.create () in
  let v1 = Encore.define_type t "Person" [ "name"; "age" ] in
  List.iter (fun c -> ignore (Encore.define_type t c [ "x" ])) other_classes;
  let p0 = Encore.create_object t "Person" v1 [ ("name", "ada") ] in
  (* evolution touches only the Person type *)
  let v2 = Encore.new_type_version t "Person" [ "name"; "age"; "email" ] in
  (* the new program cannot read email on old instances without a
     user-written exception handler *)
  let before = Encore.read t ~as_of:v2 p0 "email" in
  Encore.install_handler t "Person" ~from_version:v1 ~attr:"email" (fun _ -> "");
  let after = Encore.read t ~as_of:v2 p0 "email" in
  let name_new = Encore.read t ~as_of:v2 p0 "name" in
  {
    system = "Encore";
    sharing = Result.is_ok name_new && Result.is_error before && Result.is_ok after;
    effort_count = Encore.handlers_installed t;
    effort_desc = "must create exception handler";
    flexibility = true (* schemas are virtual lattices of type versions *);
    classes_touched = 1;
    classes_total = total_classes;
    subschema_evolution = false (* type versions, no view scoping *);
    views_with_change = false;
    version_merging = false;
  }

let run_orion () =
  let t = Orion.create () in
  let v1 = Orion.initial_version t in
  Orion.add_class t v1 "Person" [ "name"; "age" ];
  List.iter (fun c -> Orion.add_class t v1 c [ "x" ]) other_classes;
  let before_classes = Orion.class_count_total t in
  let p0 = Orion.create_object t v1 ~cls:"Person" [ ("name", "ada") ] in
  let v2 =
    Orion.derive_version t ~from:v1 [ ("Person", [ "name"; "age"; "email" ]) ]
  in
  (* the object is not visible under v2 without copying *)
  let direct_visible = Orion.visible t v2 p0 in
  let p0' = Orion.copy_forward t p0 ~to_:v2 in
  let shared = Orion.same_identity p0 p0' in
  (* no back propagation: a delete under v2 leaves v1's object alive *)
  Orion.delete_object t v2 p0';
  let still_in_v1 = Orion.visible t v1 p0 in
  ignore still_in_v1;
  {
    system = "Orion";
    sharing = direct_visible && shared (* false: copies, not sharing *);
    effort_count = 0;
    effort_desc = "nothing particular";
    flexibility = false (* whole-schema versions only *);
    classes_touched = Orion.class_count_total t - before_classes;
    classes_total = total_classes;
    subschema_evolution = false (* the whole hierarchy was copied *);
    views_with_change = false;
    version_merging = false;
  }

let run_goose () =
  let t = Goose.create () in
  let v1 = Goose.define_class t "Person" [ "name"; "age" ] in
  List.iter (fun c -> ignore (Goose.define_class t c [ "x" ])) other_classes;
  let p0 = Goose.create_object t "Person" v1 [ ("name", "ada") ] in
  let v2 = Goose.new_class_version t "Person" [ "name"; "age"; "email" ] in
  (* the user composes the new schema: every class version tracked by hand *)
  let composition =
    ("Person", v2)
    :: List.map (fun c -> (c, List.hd (Goose.versions_of t c))) other_classes
  in
  let schema2 =
    match Goose.compose t composition with
    | Ok s -> s
    | Error e -> failwith e
  in
  let name_new = Goose.read t schema2 p0 "name" in
  {
    system = "Goose";
    sharing = Result.is_ok name_new;
    effort_count = Goose.composition_size schema2;
    effort_desc = "keep track of class versions for each schema";
    flexibility = true;
    classes_touched = 1;
    classes_total = total_classes;
    subschema_evolution = false;
    views_with_change = false;
    version_merging = false;
  }

let run_closql () =
  let t = Closql.create () in
  let v1 = Closql.define_class t "Person" [ "name"; "age" ] in
  List.iter (fun c -> ignore (Closql.define_class t c [ "x" ])) other_classes;
  let p0 = Closql.create_object t "Person" v1 [ ("name", "ada") ] in
  let v2 = Closql.new_class_version t "Person" [ "name"; "age"; "email" ] in
  (* without an update function the new attribute cannot be materialized *)
  let before = Closql.read t ~as_of:v2 p0 "email" in
  Closql.install_update t "Person" ~from_version:v1 ~attr:"email" (fun _ -> "");
  let after = Closql.read t ~as_of:v2 p0 "email" in
  let name_new = Closql.read t ~as_of:v2 p0 "name" in
  {
    system = "CLOSQL";
    sharing =
      Result.is_ok name_new && Result.is_error before && Result.is_ok after;
    effort_count = Closql.functions_installed t;
    effort_desc = "must create update/backdate functions";
    flexibility = true;
    classes_touched = 1;
    classes_total = total_classes;
    subschema_evolution = false (* plus per-access conversion cost *);
    views_with_change = false;
    version_merging = false;
  }

let run_rose () =
  let t = Rose.create () in
  let v1 = Rose.define_type t "Person" [ ("name", ""); ("age", "0") ] in
  List.iter
    (fun c -> ignore (Rose.define_type t c [ ("x", "") ]))
    other_classes;
  let p0 = Rose.create_object t "Person" v1 [ ("name", "ada") ] in
  let v2 =
    Rose.new_type_version t "Person"
      [ ("name", ""); ("age", "0"); ("email", "") ]
  in
  let email = Rose.read t ~as_of:v2 p0 "email" in
  let name_new = Rose.read t ~as_of:v2 p0 "name" in
  {
    system = "Rose";
    sharing = Result.is_ok name_new && Result.is_ok email;
    effort_count = 0;
    effort_desc = "nothing particular";
    flexibility = true;
    classes_touched = 1;
    classes_total = total_classes;
    subschema_evolution = false;
    views_with_change = false;
    version_merging = false;
  }

(* The TSE row runs on the real stack: the university schema (8 classes),
   a 3-class view, the Figure 3 change, interop, and a version merge. *)
let run_tse () =
  let uni = Tse_workload.University.build () in
  let db = uni.db in
  let tsem = Tsem.of_database db in
  let names = [ "Person"; "Student"; "TA" ] in
  ignore (Tsem.define_view_by_names tsem ~name:"U1" names);
  ignore (Tsem.define_view_by_names tsem ~name:"U2" names);
  let p0 =
    Database.create_object db uni.student ~init:[ ("name", Value.String "ada") ]
  in
  let classes_before = Schema_graph.size (Database.graph db) in
  let v1 =
    Tsem.evolve tsem ~view:"U1"
      (Change.Add_attribute { cls = "Student"; def = Change.attr "email" Value.TString })
  in
  let classes_touched = Schema_graph.size (Database.graph db) - classes_before in
  (* sharing: the pre-change object is read and written through the new
     view, same identity, and the old view sees the update *)
  let student' = View_schema.cid_of_exn v1 "Student" in
  let sharing =
    Oid.Set.mem p0 (Database.extent db student')
    &&
    (Database.set_attr db p0 "email" (Value.String "a@x");
     Value.equal (Database.get_prop db p0 "name") (Value.String "ada"))
    && Oid.Set.mem p0 (Database.extent db uni.student)
  in
  (* merging: measured by actually merging U1 (evolved) with U2 *)
  let version_merging =
    match Merge.merge_current tsem ~view1:"U1" ~view2:"U2" ~new_name:"U3" with
    | merged -> View_schema.size merged > 0
    | exception _ -> false
  in
  {
    system = "TSE system";
    sharing;
    effort_count = 0;
    effort_desc = "nothing particular";
    flexibility = false (* no free composition from class versions *);
    classes_touched;
    classes_total = Schema_graph.size (Database.graph db) - 1 (* minus root *);
    subschema_evolution = classes_touched < 8 (* only the view's subtree *);
    views_with_change = true;
    version_merging;
  }

let run_all () =
  [ run_encore (); run_orion (); run_goose (); run_closql (); run_rose ();
    run_tse () ]

let yn b = if b then "yes" else "no"

let pp_table ppf rows =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf
    "%-12s | %-7s | %-42s | %-11s | %-9s | %-11s | %-7s@ " "system" "sharing"
    "effort required by user" "flexibility" "subschema" "views+change"
    "merging";
  Format.fprintf ppf "%s@ " (String.make 118 '-');
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s | %-7s | %-42s | %-11s | %-9s | %-11s | %-7s@ "
        r.system (yn r.sharing)
        (Printf.sprintf "%s (%d artifacts)" r.effort_desc r.effort_count)
        (yn r.flexibility)
        (Printf.sprintf "%s (%d/%d)" (yn r.subschema_evolution)
           r.classes_touched r.classes_total)
        (yn r.views_with_change) (yn r.version_merging))
    rows;
  Format.fprintf ppf "@]"
