(** Rose-style automatic type-mismatch resolution (Mehta, Spooner &
    Hardwick, RPI TR 93), simulated:

    - types are versioned; instances stay in their creation format;
    - when a program accesses an instance of a mismatched format, the
      system resolves the mismatch {e automatically}: missing attributes
      answer a type-appropriate default, dropped attributes are ignored —
      no user-supplied handlers or conversion functions ("nothing
      particular" in Table 2);
    - instances are shared by all versions. *)

type t
type tvid = int
type obj

val create : unit -> t

val define_type : t -> string -> (string * string) list -> tvid
(** Attributes with their default values. *)

val new_type_version : t -> string -> (string * string) list -> tvid
val versions_of : t -> string -> tvid list

val create_object : t -> string -> tvid -> (string * string) list -> obj

val read : t -> as_of:tvid -> obj -> string -> (string, string) result
(** Automatic resolution: never demands user artifacts. *)

val auto_resolutions : t -> int
(** How many mismatches were resolved automatically. *)
