(** A small query processor for extent selections.

    Evaluates [select from <class> where <predicate>] queries against a
    database: equality conjuncts on indexed attributes are answered by
    index lookup, the residual predicate is checked per candidate, and
    everything else falls back to an extent scan. {!explain} exposes the
    chosen plan for tests and tuning. *)

type cid = Tse_schema.Klass.cid

type plan =
  | Index_lookup of { attr : string; residual : bool }
      (** answered from the index on [attr]; [residual] when a remaining
          predicate is checked per candidate *)
  | Extent_scan

val plan : Tse_db.Database.t -> Indexes.t -> cid -> Tse_schema.Expr.t -> plan

val select :
  Tse_db.Database.t ->
  Indexes.t ->
  cid ->
  Tse_schema.Expr.t ->
  Tse_store.Oid.Set.t
(** Members of the class satisfying the predicate. *)

val count : Tse_db.Database.t -> Indexes.t -> cid -> Tse_schema.Expr.t -> int

val pp_plan : Format.formatter -> plan -> unit
