lib/query/indexes.ml: List Printf String Tse_db Tse_schema Tse_store
