lib/query/engine.mli: Format Indexes Tse_db Tse_schema Tse_store
