lib/query/engine.ml: Format Indexes List String Tse_db Tse_schema Tse_store
