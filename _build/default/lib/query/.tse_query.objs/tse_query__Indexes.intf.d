lib/query/indexes.mli: Tse_db Tse_schema Tse_store
