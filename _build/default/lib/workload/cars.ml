module Value = Tse_store.Value
module Oid = Tse_store.Oid
module Prop = Tse_schema.Prop
module Schema_graph = Tse_schema.Schema_graph
module Heap = Tse_store.Heap

type cid = Tse_schema.Klass.cid

type t = {
  graph : Schema_graph.t;
  heap : Heap.t;
  car : cid;
  jeep : cid;
  imported : cid;
}

let o0 = Oid.of_int 0
let stored = Prop.stored ~origin:o0

let build () =
  let heap = Heap.create () in
  let graph = Schema_graph.create ~gen:(Heap.gen heap) in
  let car =
    Schema_graph.register_base graph ~name:"Car"
      ~props:
        [ stored "model" Value.TString; stored "weight" Value.TInt ]
      ~supers:[]
  in
  let jeep =
    Schema_graph.register_base graph ~name:"Jeep"
      ~props:[ stored "offroad" Value.TBool ]
      ~supers:[ car ]
  in
  let imported =
    Schema_graph.register_base graph ~name:"Imported"
      ~props:[ stored "nation" Value.TString ]
      ~supers:[ car ]
  in
  { graph; heap; car; jeep; imported }

let deep_chain ~depth =
  let t = build () in
  let rec extend parent i acc =
    if i >= depth then List.rev acc
    else
      let cid =
        Schema_graph.register_base t.graph
          ~name:(Printf.sprintf "Trim%d" i)
          ~props:[ stored (Printf.sprintf "feature%d" i) Value.TInt ]
          ~supers:[ parent ]
      in
      extend cid (i + 1) (cid :: acc)
  in
  let chain = extend t.car 0 [] in
  t, chain
