(** The university database of Figure 2: the running example of the paper.

    Hierarchy (all base classes):
    {v
                      Person
                     /      \
               Student      Staff
               /     \     /     \
            Grad      \  TeachingStaff  SupportStaff
                       \   /
                        TA
                        |
                      Grader
    v}

    [TA] inherits from both [Student] and [TeachingStaff] — the multiple
    inheritance the add-attribute and add-edge examples exercise.
    [SupportStaff] carries [boss] (Figure 9); [TeachingStaff] carries
    [lecture] (Figure 10). *)

type cid = Tse_schema.Klass.cid

type t = {
  db : Tse_db.Database.t;
  person : cid;
  student : cid;
  staff : cid;
  teaching_staff : cid;
  support_staff : cid;
  ta : cid;
  grad : cid;
  grader : cid;
}

val build : unit -> t

val populate : t -> n:int -> Tse_store.Oid.t list
(** Deterministically create [n] objects spread over the leaf and middle
    classes (persons, students, grads, TAs, graders, support staff), with
    name/age/gpa/salary values derived from the index. Returns the created
    objects in creation order. *)

val names_of_fig2 : string list
(** The class names, for display in the experiment transcripts. *)
