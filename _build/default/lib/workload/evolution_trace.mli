(** Synthetic schema-evolution traces calibrated to the measurements the
    paper's introduction cites:

    - Sjøberg's 18-month health-management-system study [26]: classes
      (+139%), attributes (+274%), "every relation has been changed";
    - Marche's seven-application stability study [12]: on average 59% of
      attributes changed.

    The original traces are unpublished, so [generate] synthesizes a
    seeded change sequence whose aggregate counts match those ratios for
    a given starting schema size; the longitudinal benchmark replays it
    through the TSE pipeline. *)

type summary = {
  months : int;
  adds_attribute : int;
  deletes_attribute : int;  (** attribute changes, realized as delete+add *)
  adds_method : int;
  adds_class : int;
  total : int;
}

val generate :
  seed:int ->
  months:int ->
  initial_classes:int ->
  initial_attrs:int ->
  (int * Tse_core.Change.t) list
(** [(month, change)] pairs, ordered by month. Class and attribute names
    are drawn from a [C<i>]/[a<i>] namespace matching
    {!Random_schema.generate}'s output, so the trace can be replayed
    against such a schema. *)

val summarize : (int * Tse_core.Change.t) list -> summary

val ratios :
  summary -> initial_classes:int -> initial_attrs:int -> float * float * float
(** [(class growth, attribute growth, fraction of attributes changed)] —
    compare against (1.39, 2.74, 0.59). *)

val replay :
  Tse_core.Tsem.t ->
  view:string ->
  (int * Tse_core.Change.t) list ->
  applied:int ref ->
  rejected:int ref ->
  unit
(** Apply the trace through the TSEM, counting rejected changes (a change
    can become inapplicable when an earlier one removed its target). *)
