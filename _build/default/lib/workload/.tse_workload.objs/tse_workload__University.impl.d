lib/workload/university.ml: List Printf Tse_db Tse_schema Tse_store
