lib/workload/university.mli: Tse_db Tse_schema Tse_store
