lib/workload/cars.mli: Tse_schema Tse_store
