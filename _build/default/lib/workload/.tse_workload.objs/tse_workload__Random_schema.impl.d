lib/workload/random_schema.ml: Array List Printf Random Tse_db Tse_schema Tse_store
