lib/workload/random_schema.mli: Random Tse_db Tse_schema
