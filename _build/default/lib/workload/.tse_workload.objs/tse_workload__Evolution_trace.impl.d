lib/workload/evolution_trace.ml: Int List Printf Random Tse_core Tse_schema Tse_store
