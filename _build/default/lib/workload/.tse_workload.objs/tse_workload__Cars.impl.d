lib/workload/cars.ml: List Printf Tse_schema Tse_store
