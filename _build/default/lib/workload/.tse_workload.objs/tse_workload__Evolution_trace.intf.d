lib/workload/evolution_trace.mli: Tse_core
