(** Seeded random schemas and populations, for property tests and
    scalability benchmarks.

    Schemas are rooted DAGs: each class gets one or (occasionally) two
    superclasses among the previously created ones, and a few stored
    attributes with distinct names, so multiple-inheritance diamonds and
    deep chains both occur. All randomness is drawn from a caller-seeded
    state — identical seeds give identical databases (the twin-fixture
    requirement of the verification tests). *)

type t = {
  db : Tse_db.Database.t;
  classes : Tse_schema.Klass.cid list;  (** creation order: supers first *)
}

val generate :
  seed:int -> classes:int -> ?attrs_per_class:int -> ?objects:int -> unit -> t
(** [objects] objects are spread uniformly over the classes (default 0).
    [attrs_per_class] defaults to 3. *)

val class_names : t -> string list

val random_class : Random.State.t -> t -> Tse_schema.Klass.cid
val random_attr : Random.State.t -> t -> Tse_schema.Klass.cid -> string option
(** A stored attribute usable at the class, if any. *)
