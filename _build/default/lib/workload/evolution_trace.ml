module Value = Tse_store.Value
module Change = Tse_core.Change
module Tsem = Tse_core.Tsem

type summary = {
  months : int;
  adds_attribute : int;
  deletes_attribute : int;
  adds_method : int;
  adds_class : int;
  total : int;
}

let generate ~seed ~months ~initial_classes ~initial_attrs =
  let rng = Random.State.make [| seed |] in
  (* calibration targets over the whole trace (scaled to its length
     relative to the 18-month study) *)
  let scale = float_of_int months /. 18. in
  let target_class_adds =
    max 1 (int_of_float (1.39 *. float_of_int initial_classes *. scale))
  in
  let target_attr_changes =
    max 1 (int_of_float (0.59 *. float_of_int initial_attrs *. scale))
  in
  (* each change re-adds a replacement attribute, so the direct additions
     are the 274% growth target minus those replacements *)
  let target_attr_adds =
    max 1
      (int_of_float (2.74 *. float_of_int initial_attrs *. scale)
      - target_attr_changes)
  in
  let next_attr = ref 100000 in
  let next_class = ref 100000 in
  let next_method = ref 0 in
  let fresh_attr () =
    incr next_attr;
    Printf.sprintf "a%d" !next_attr
  in
  let changes = ref [] in
  let class_pool = ref (List.init initial_classes (fun i -> Printf.sprintf "C%d" i)) in
  let pick pool = List.nth pool (Random.State.int rng (List.length pool)) in
  (* attributes known to have been added (so a "change" can delete one) *)
  let added_attrs = ref [] in
  let emit month c = changes := (month, c) :: !changes in
  let month_of i total = 1 + (i * months / max 1 total) in
  (* attribute additions *)
  for i = 0 to target_attr_adds - 1 do
    let cls = pick !class_pool in
    let name = fresh_attr () in
    added_attrs := (cls, name) :: !added_attrs;
    emit (month_of i target_attr_adds)
      (Change.Add_attribute { cls; def = Change.attr name Value.TInt })
  done;
  (* attribute changes: delete a previously added attribute and add a
     replacement (the realizable form of "59% of attributes changed") *)
  for i = 0 to target_attr_changes - 1 do
    match !added_attrs with
    | [] -> ()
    | pool ->
      let cls, name = pick pool in
      added_attrs := List.filter (fun (_, n) -> n <> name) !added_attrs;
      let month = month_of i target_attr_changes in
      emit month (Change.Delete_attribute { cls; attr_name = name });
      let name' = fresh_attr () in
      added_attrs := (cls, name') :: !added_attrs;
      emit month
        (Change.Add_attribute { cls; def = Change.attr name' Value.TString })
  done;
  (* class additions *)
  for i = 0 to target_class_adds - 1 do
    incr next_class;
    let cls = Printf.sprintf "C%d" !next_class in
    let anchor = pick !class_pool in
    class_pool := cls :: !class_pool;
    emit (month_of i target_class_adds)
      (Change.Add_class { cls; connected_to = Some anchor })
  done;
  (* sprinkle a few methods *)
  for i = 0 to max 1 (target_attr_adds / 4) - 1 do
    incr next_method;
    let cls = pick !class_pool in
    emit (month_of i (max 1 (target_attr_adds / 4)))
      (Change.Add_method
         {
           cls;
           method_name = Printf.sprintf "m%d" !next_method;
           body = Tse_schema.Expr.int !next_method;
         })
  done;
  List.stable_sort (fun (a, _) (b, _) -> Int.compare a b) (List.rev !changes)

let summarize trace =
  let s =
    {
      months = List.fold_left (fun acc (m, _) -> max acc m) 0 trace;
      adds_attribute = 0;
      deletes_attribute = 0;
      adds_method = 0;
      adds_class = 0;
      total = List.length trace;
    }
  in
  List.fold_left
    (fun s (_, c) ->
      match c with
      | Change.Add_attribute _ -> { s with adds_attribute = s.adds_attribute + 1 }
      | Change.Delete_attribute _ ->
        { s with deletes_attribute = s.deletes_attribute + 1 }
      | Change.Add_method _ -> { s with adds_method = s.adds_method + 1 }
      | Change.Add_class _ -> { s with adds_class = s.adds_class + 1 }
      | Change.Delete_method _ | Change.Add_edge _ | Change.Delete_edge _
      | Change.Delete_class _ | Change.Insert_class _ | Change.Delete_class_2 _
      | Change.Rename_class _ | Change.Partition_class _
      | Change.Coalesce_classes _ ->
        s)
    s trace

let ratios s ~initial_classes ~initial_attrs =
  ( float_of_int s.adds_class /. float_of_int (max 1 initial_classes),
    float_of_int s.adds_attribute /. float_of_int (max 1 initial_attrs),
    float_of_int s.deletes_attribute /. float_of_int (max 1 initial_attrs) )

let replay tsem ~view trace ~applied ~rejected =
  List.iter
    (fun (_, change) ->
      match Tsem.evolve tsem ~view change with
      | _ -> incr applied
      | exception Change.Rejected _ -> incr rejected)
    trace
