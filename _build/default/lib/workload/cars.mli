(** The car schema of Figure 5, used by the multiple-classification
    comparison (Section 4 / Table 1).

    [Car] with stored attributes; [Jeep] a subclass; [Imported] another
    subclass carrying [nation] — an object may need to be both a [Jeep]
    and [Imported], which is exactly the multiple-classification dilemma
    the two architectures resolve differently. Built directly on a schema
    graph + heap (no database kernel) so both object models can drive it. *)

type cid = Tse_schema.Klass.cid

type t = {
  graph : Tse_schema.Schema_graph.t;
  heap : Tse_store.Heap.t;
  car : cid;
  jeep : cid;
  imported : cid;
}

val build : unit -> t

val deep_chain : depth:int -> t * cid list
(** [build ()] extended with a linear chain of [depth] subclasses under
    [Car], each adding one attribute — the workload for the
    inherited-attribute-access benchmark (Table 1's query-performance
    row). Returns the chain from shallowest to deepest. *)
