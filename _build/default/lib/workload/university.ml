module Value = Tse_store.Value
module Oid = Tse_store.Oid
module Prop = Tse_schema.Prop
module Schema_graph = Tse_schema.Schema_graph
module Database = Tse_db.Database

type cid = Tse_schema.Klass.cid

type t = {
  db : Database.t;
  person : cid;
  student : cid;
  staff : cid;
  teaching_staff : cid;
  support_staff : cid;
  ta : cid;
  grad : cid;
  grader : cid;
}

(* Property [origin] is rewritten by [register_base]; the placeholder root
   oid used here never survives. *)
let o0 = Oid.of_int 0
let stored = Prop.stored ~origin:o0

let build () =
  let db = Database.create () in
  let g = Database.graph db in
  let reg name props supers =
    let cid = Schema_graph.register_base g ~name ~props ~supers in
    Database.note_new_class db cid;
    cid
  in
  let person =
    reg "Person"
      [
        stored "name" Value.TString;
        stored "age" Value.TInt;
        stored "ssn" Value.TInt;
      ]
      []
  in
  let student =
    reg "Student"
      [ stored "gpa" Value.TFloat; stored "major" Value.TString ]
      [ person ]
  in
  let staff = reg "Staff" [ stored "salary" Value.TInt ] [ person ] in
  let teaching_staff =
    reg "TeachingStaff" [ stored "lecture" Value.TString ] [ staff ]
  in
  let support_staff =
    reg "SupportStaff" [ stored "boss" Value.TString ] [ staff ]
  in
  let ta = reg "TA" [ stored "hours" Value.TInt ] [ student; teaching_staff ] in
  let grad = reg "Grad" [ stored "thesis" Value.TString ] [ student ] in
  let grader = reg "Grader" [ stored "course" Value.TString ] [ ta ] in
  { db; person; student; staff; teaching_staff; support_staff; ta; grad; grader }

let populate t ~n =
  let created = ref [] in
  for i = 0 to n - 1 do
    let name = Value.String (Printf.sprintf "p%04d" i) in
    let age = Value.Int (18 + (i mod 50)) in
    let common = [ ("name", name); ("age", age); ("ssn", Value.Int (10000 + i)) ] in
    let cls, extra =
      match i mod 6 with
      | 0 -> t.person, []
      | 1 ->
        ( t.student,
          [ ("gpa", Value.Float (2.0 +. float_of_int (i mod 20) /. 10.));
            ("major", Value.String "eecs") ] )
      | 2 -> t.grad, [ ("thesis", Value.String "views"); ("gpa", Value.Float 3.5) ]
      | 3 ->
        ( t.ta,
          [ ("hours", Value.Int (10 + (i mod 10)));
            ("gpa", Value.Float 3.0);
            ("lecture", Value.String "db101");
            ("salary", Value.Int (1000 + i)) ] )
      | 4 -> t.support_staff, [ ("boss", Value.String "dean"); ("salary", Value.Int (2000 + i)) ]
      | _ ->
        ( t.grader,
          [ ("course", Value.String "db101");
            ("hours", Value.Int 5);
            ("gpa", Value.Float 3.2);
            ("salary", Value.Int (500 + i)) ] )
    in
    let o = Database.create_object t.db cls ~init:(common @ extra) in
    created := o :: !created
  done;
  List.rev !created

let names_of_fig2 =
  [
    "Person"; "Student"; "Staff"; "TeachingStaff"; "SupportStaff"; "TA";
    "Grad"; "Grader";
  ]
