module Value = Tse_store.Value
module Expr = Tse_schema.Expr

type attr_def = {
  attr_name : string;
  ty : Value.ty;
  default : Value.t;
  required : bool;
}

let attr ?(default = Value.Null) ?(required = false) attr_name ty =
  { attr_name; ty; default; required }

type t =
  | Add_attribute of { cls : string; def : attr_def }
  | Delete_attribute of { cls : string; attr_name : string }
  | Add_method of { cls : string; method_name : string; body : Expr.t }
  | Delete_method of { cls : string; method_name : string }
  | Add_edge of { sup : string; sub : string }
  | Delete_edge of { sup : string; sub : string; connected_to : string option }
  | Add_class of { cls : string; connected_to : string option }
  | Delete_class of { cls : string }
  | Insert_class of { cls : string; sup : string; sub : string }
  | Delete_class_2 of { cls : string }
  | Rename_class of { old_name : string; new_name : string }
  | Partition_class of {
      cls : string;
      predicate : Expr.t;
      into_true : string;
      into_false : string;
    }
  | Coalesce_classes of { a : string; b : string; as_name : string }

exception Rejected of string

let is_primitive = function
  | Add_attribute _ | Delete_attribute _ | Add_method _ | Delete_method _
  | Add_edge _ | Delete_edge _ | Add_class _ | Delete_class _
  | Rename_class _ ->
    true
  | Insert_class _ | Delete_class_2 _ | Partition_class _ | Coalesce_classes _
    ->
    false

let is_capacity_augmenting = function
  | Add_attribute _ -> true
  | Add_edge _ -> true (* subclasses acquire the superclass's stored attributes *)
  | Delete_attribute _ | Add_method _ | Delete_method _ | Delete_edge _
  | Add_class _ | Delete_class _ | Insert_class _ | Delete_class_2 _
  | Rename_class _ | Partition_class _ | Coalesce_classes _ ->
    false

let pp ppf = function
  | Add_attribute { cls; def } ->
    Format.fprintf ppf "add_attribute %s:%a to %s" def.attr_name Value.pp_ty
      def.ty cls
  | Delete_attribute { cls; attr_name } ->
    Format.fprintf ppf "delete_attribute %s from %s" attr_name cls
  | Add_method { cls; method_name; body } ->
    Format.fprintf ppf "add_method %s = %a to %s" method_name Expr.pp body cls
  | Delete_method { cls; method_name } ->
    Format.fprintf ppf "delete_method %s from %s" method_name cls
  | Add_edge { sup; sub } -> Format.fprintf ppf "add_edge %s-%s" sup sub
  | Delete_edge { sup; sub; connected_to } ->
    Format.fprintf ppf "delete_edge %s-%s%s" sup sub
      (match connected_to with
      | Some c -> " connected_to " ^ c
      | None -> "")
  | Add_class { cls; connected_to } ->
    Format.fprintf ppf "add_class %s%s" cls
      (match connected_to with
      | Some c -> " connected_to " ^ c
      | None -> "")
  | Delete_class { cls } -> Format.fprintf ppf "delete_class %s" cls
  | Insert_class { cls; sup; sub } ->
    Format.fprintf ppf "insert_class %s between %s-%s" cls sup sub
  | Delete_class_2 { cls } -> Format.fprintf ppf "delete_class_2 %s" cls
  | Rename_class { old_name; new_name } ->
    Format.fprintf ppf "rename_class %s to %s" old_name new_name
  | Partition_class { cls; predicate; into_true; into_false } ->
    Format.fprintf ppf "partition_class %s by %a into %s/%s" cls Expr.pp
      predicate into_true into_false
  | Coalesce_classes { a; b; as_name } ->
    Format.fprintf ppf "coalesce_classes %s %s as %s" a b as_name

let to_string c = Format.asprintf "%a" pp c
