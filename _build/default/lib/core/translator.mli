(** The TSE Translator (paper, Sections 5 and 6): maps a schema-change
    request on a view to a sequence of extended-object-algebra operations,
    producing a {e new} view schema that reflects the change — the global
    schema is only ever {e augmented}, never destructively modified, so
    every other view (and the programs running on it) is untouched.

    Each primitive operator follows the algorithm of its subsection of
    Section 6; the two macros are translated by composing primitives
    (Section 6.9). Derived classes get primed global names ([Student'])
    and are renamed back to the original names within the new view
    (Section 6.1.3). *)

val apply :
  Tse_db.Database.t ->
  Tse_views.View_schema.t ->
  Change.t ->
  Tse_views.View_schema.t
(** Translate and execute the change. Returns the replacement view (same
    name and version as the input; the TSEM assigns the version on
    registration).
    @raise Change.Rejected when the change's preconditions fail (Section
    6's semantics subsections). *)

val class_mapping :
  Tse_db.Database.t ->
  Tse_views.View_schema.t ->
  Change.t ->
  (Tse_schema.Klass.cid * Tse_schema.Klass.cid) list
(** Dry-run variant for inspection: the (old class, primed class) pairs
    the translation would create. Mutates the database exactly like
    {!apply} but returns the mapping instead of the view. *)
