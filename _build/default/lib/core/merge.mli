(** Version merging (paper, Section 7).

    Because every view is defined over one integrated global schema and
    objects are never duplicated per version, merging two schema versions
    reduces to collecting their classes:
    - classes that are {e the same class in the global schema} appear once
      (identity is decided by the global schema, not by names);
    - distinct classes that happen to share a view-local name are both
      kept, disambiguated by appending their version numbers
      ([Student.v1] / [Student.v2], Figure 16) — the user may rename them
      afterwards. *)

val merge :
  Tsem.t ->
  view1:string ->
  version1:int ->
  view2:string ->
  version2:int ->
  new_name:string ->
  Tse_views.View_schema.t
(** Merge two registered view versions into version 0 of a new view.
    @raise Invalid_argument if a version is unknown or [new_name] is
    already a registered view. *)

val merge_current :
  Tsem.t -> view1:string -> view2:string -> new_name:string ->
  Tse_views.View_schema.t

val name_collisions :
  Tse_views.View_schema.t -> Tse_views.View_schema.t -> string list
(** Local names naming {e different} global classes in the two views —
    the conflicts the merge will suffix. *)
