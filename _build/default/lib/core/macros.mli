(** The two auxiliary macros of the delete-edge translation (Section 6.6.2)
    and the origin-class trace used by add-class (Section 6.7.2). *)

type cid = Tse_schema.Klass.cid

val common_sub :
  Tse_db.Database.t -> v:cid -> sub:cid -> sup:cid -> sub':cid -> cid list
(** [commonSub(v, C_sub, Csup-Csub)]: the greatest common subclasses of
    [v] and [C_sub] assuming the edge [sup]-[sub'] has been deleted —
    the classes whose instances remain visible to [v] without the edge
    (the Figure 11 situation). Evaluated on a copy of the graph with the
    edge removed. *)

val find_properties :
  Tse_db.Database.t -> w:cid -> sup:cid -> sub:cid -> string list
(** [findProperties(w, Csup-Csub)]: names of the properties inherited into
    [w] {e only} through the given edge — every inheritance path from the
    property's defining class to [w] contains it (footnote 17). Evaluated
    by comparing [w]'s resolved type with and without the edge. *)

val origin_classes : Tse_db.Database.t -> cid -> cid list
(** All origin base classes of a class: the base classes reached by
    recursively tracing {e every} source relationship (Section 3.4's
    definition, used by the add-class translation). A base class is its
    own (sole) origin. *)
