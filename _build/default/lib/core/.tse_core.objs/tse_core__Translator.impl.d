lib/core/translator.ml: Change Format List Macros Option Tse_algebra Tse_classifier Tse_db Tse_schema Tse_store Tse_views
