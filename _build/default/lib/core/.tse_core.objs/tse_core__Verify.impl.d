lib/core/verify.ml: Format List Option Printf String Tse_db Tse_schema Tse_store Tse_views
