lib/core/macros.ml: List String Tse_db Tse_schema Tse_store
