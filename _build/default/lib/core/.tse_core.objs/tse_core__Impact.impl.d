lib/core/impact.ml: Change Format List String Tse_db Tse_schema Tse_store Tse_views Tsem
