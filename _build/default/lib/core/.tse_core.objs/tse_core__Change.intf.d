lib/core/change.mli: Format Tse_schema Tse_store
