lib/core/change.ml: Format Tse_schema Tse_store
