lib/core/impact.mli: Change Format Tse_db Tse_schema Tse_views Tsem
