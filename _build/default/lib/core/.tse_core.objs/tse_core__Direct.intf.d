lib/core/direct.mli: Change Tse_db Tse_views
