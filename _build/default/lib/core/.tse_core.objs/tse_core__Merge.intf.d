lib/core/merge.mli: Tse_views Tsem
