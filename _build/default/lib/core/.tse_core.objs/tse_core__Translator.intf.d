lib/core/translator.mli: Change Tse_db Tse_schema Tse_views
