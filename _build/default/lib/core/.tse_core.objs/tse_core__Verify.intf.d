lib/core/verify.mli: Tse_db Tse_schema Tse_store Tse_views
