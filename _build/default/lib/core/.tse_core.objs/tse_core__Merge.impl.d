lib/core/merge.ml: List Printf String Tse_db Tse_schema Tse_store Tse_views Tsem
