lib/core/direct.ml: Change Format List Option Tse_db Tse_schema Tse_store Tse_views
