lib/core/macros.mli: Tse_db Tse_schema
