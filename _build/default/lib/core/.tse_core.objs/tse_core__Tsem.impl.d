lib/core/tsem.ml: Change List Logs String Translator Tse_db Tse_schema Tse_views Verify
