module Oid = Tse_store.Oid
module Schema_graph = Tse_schema.Schema_graph
module Database = Tse_db.Database
module View_schema = Tse_views.View_schema
module History = Tse_views.History

type cid = Tse_schema.Klass.cid

let resolve view name =
  match View_schema.cid_of view name with Some c -> Some c | None -> None

let with_descendants graph cid =
  Oid.Set.add cid (Schema_graph.descendants graph cid)

let with_ancestors graph cid =
  Oid.Set.add cid (Schema_graph.ancestors graph cid)

let affected_set db view change =
  let graph = Database.graph db in
  let of_name name =
    match resolve view name with Some c -> Oid.Set.singleton c | None -> Oid.Set.empty
  in
  let content name =
    (* type change propagates to every (global!) subclass *)
    Oid.Set.fold
      (fun c acc -> Oid.Set.union acc (with_descendants graph c))
      (of_name name) Oid.Set.empty
  in
  match change with
  | Change.Add_attribute { cls; _ }
  | Change.Delete_attribute { cls; _ }
  | Change.Add_method { cls; _ }
  | Change.Delete_method { cls; _ } ->
    content cls
  | Change.Add_edge { sup; sub } | Change.Delete_edge { sup; sub; _ } ->
    (* subclasses of sub gain/lose inherited properties; superclasses of
       sup gain/lose extent members *)
    Oid.Set.union (content sub)
      (Oid.Set.fold
         (fun c acc -> Oid.Set.union acc (with_ancestors graph c))
         (of_name sup) Oid.Set.empty)
  | Change.Add_class { connected_to; _ } ->
    (* a new empty leaf affects nothing existing; its anchor is untouched *)
    ignore connected_to;
    Oid.Set.empty
  | Change.Insert_class { sup; sub; _ } ->
    Oid.Set.union (content sub) (of_name sup)
  | Change.Delete_class_2 { cls } ->
    Oid.Set.union (content cls)
      (Oid.Set.fold
         (fun c acc -> Oid.Set.union acc (with_ancestors graph c))
         (of_name cls) Oid.Set.empty)
  | Change.Partition_class _ | Change.Coalesce_classes _
  | Change.Delete_class _ | Change.Rename_class _ ->
    (* view-only or purely additive *)
    Oid.Set.empty

let affected_classes db view change =
  Oid.Set.elements
    (Oid.Set.remove (Database.root db) (affected_set db view change))

type report = {
  change : Change.t;
  classes_touched : string list;
  broken_views : (string * string list) list;
}

let analyze tsem ~view change =
  let db = Tsem.db tsem in
  let graph = Database.graph db in
  let v = Tsem.current tsem view in
  let affected = affected_set db v change in
  let classes_touched =
    Oid.Set.elements (Oid.Set.remove (Database.root db) affected)
    |> List.map (Schema_graph.name_of graph)
    |> List.sort String.compare
  in
  let history = Tsem.history tsem in
  let broken_views =
    History.view_names history
    |> List.filter (fun n -> not (String.equal n view))
    |> List.filter_map (fun n ->
           match History.current history n with
           | None -> None
           | Some other ->
             let hit =
               List.filter_map
                 (fun cid ->
                   if Oid.Set.mem cid affected then
                     View_schema.local_name other cid
                   else None)
                 (View_schema.classes other)
             in
             if hit = [] then None else Some (n, List.sort String.compare hit))
  in
  { change; classes_touched; broken_views }

let pp_report ppf r =
  Format.fprintf ppf "@[<v>impact of %s:@ " (Change.to_string r.change);
  Format.fprintf ppf "  global classes a destructive change would touch: %s@ "
    (match r.classes_touched with
    | [] -> "(none)"
    | cs -> String.concat ", " cs);
  (match r.broken_views with
  | [] -> Format.fprintf ppf "  no other view would be affected@ "
  | vs ->
    List.iter
      (fun (name, classes) ->
        Format.fprintf ppf "  view %s would break at: %s@ " name
          (String.concat ", " classes))
      vs);
  Format.fprintf ppf "  under TSE: no other view is affected (Proposition B)@]"
