module Oid = Tse_store.Oid
module Prop = Tse_schema.Prop
module Klass = Tse_schema.Klass
module Schema_graph = Tse_schema.Schema_graph
module Type_info = Tse_schema.Type_info
module Database = Tse_db.Database
module View_schema = Tse_views.View_schema
module Generation = Tse_views.Generation

let rejected fmt = Format.kasprintf (fun s -> raise (Change.Rejected s)) fmt

let resolve view name =
  match View_schema.cid_of view name with
  | Some cid -> cid
  | None -> rejected "class %s is not in view %s" name view.View_schema.view_name

let add_property db view ~cls_name ~prop_name ~mk_prop =
  let graph = Database.graph db in
  let cls = resolve view cls_name in
  if Type_info.has_prop graph cls prop_name then
    rejected "%s already defined for %s" prop_name cls_name;
  let k = Schema_graph.find_exn graph cls in
  Klass.add_local_prop k (Prop.reoriginate (mk_prop ()) cls);
  Database.reclassify_all db;
  view

let delete_property db view ~cls_name ~prop_name =
  let graph = Database.graph db in
  let cls = resolve view cls_name in
  let view_set = View_schema.class_set view in
  if not (Type_info.has_prop graph cls prop_name) then
    rejected "%s is not defined for %s" prop_name cls_name;
  if not (Type_info.is_uppermost_in graph ~view:view_set cls prop_name) then
    rejected "%s is inherited within the view" prop_name;
  let k = Schema_graph.find_exn graph cls in
  if not (Klass.has_local_prop k prop_name) then
    rejected
      "direct oracle limitation: %s is not local to %s in the global schema"
      prop_name cls_name;
  Klass.remove_local_prop k prop_name;
  (* the suppressed inherited property, if any, reappears automatically *)
  Database.reclassify_all db;
  view

let apply_edge db f =
  f (Database.graph db);
  Database.reclassify_all db

let rec apply db view change =
  let graph = Database.graph db in
  match change with
  | Change.Add_attribute { cls; def } ->
    add_property db view ~cls_name:cls ~prop_name:def.attr_name
      ~mk_prop:(fun () ->
        Prop.stored ~origin:(Oid.of_int 0) ~default:def.default
          ~required:def.required def.attr_name def.ty)
  | Change.Add_method { cls; method_name; body } ->
    add_property db view ~cls_name:cls ~prop_name:method_name ~mk_prop:(fun () ->
        Prop.method_ ~origin:(Oid.of_int 0) method_name body)
  | Change.Delete_attribute { cls; attr_name } ->
    delete_property db view ~cls_name:cls ~prop_name:attr_name
  | Change.Delete_method { cls; method_name } ->
    delete_property db view ~cls_name:cls ~prop_name:method_name
  | Change.Add_edge { sup; sub } ->
    let csup = resolve view sup and csub = resolve view sub in
    if Tse_store.Oid.equal csup csub then
      rejected "add_edge: %s-%s is a self edge" sup sub;
    if Schema_graph.is_strict_ancestor graph ~anc:csup ~desc:csub then
      rejected "add_edge: %s is already a superclass of %s" sup sub;
    if Schema_graph.is_strict_ancestor graph ~anc:csub ~desc:csup then
      rejected "add_edge: would create a cycle";
    apply_edge db (fun g -> Schema_graph.add_edge g ~sup:csup ~sub:csub);
    view
  | Change.Delete_edge { sup; sub; connected_to } ->
    let csup = resolve view sup and csub = resolve view sub in
    if
      not
        (List.exists
           (fun (s, b) -> Tse_store.Oid.equal s csup && Tse_store.Oid.equal b csub)
           (Generation.edges graph view))
    then
      rejected "delete_edge: %s is not a direct superclass of %s in the view"
        sup sub;
    let upper =
      Option.map
        (fun name ->
          let c = resolve view name in
          if not (Schema_graph.is_strict_ancestor graph ~anc:c ~desc:csup) then
            rejected "delete_edge: %s must be a superclass of %s" name sup;
          c)
        connected_to
    in
    apply_edge db (fun g ->
        Schema_graph.remove_edge g ~sup:csup ~sub:csub;
        match upper with
        | Some u ->
          if not (Schema_graph.is_ancestor_or_self g ~anc:u ~desc:csub) then
            Schema_graph.add_edge g ~sup:u ~sub:csub
        | None -> ());
    view
  | Change.Add_class { cls; connected_to } ->
    if View_schema.cid_of view cls <> None then
      rejected "add_class: %s already in view" cls;
    let supers =
      match connected_to with
      | None -> []
      | Some s -> [ resolve view s ]
    in
    let cid = Schema_graph.register_base graph ~name:cls ~props:[] ~supers in
    Database.note_new_class db cid;
    let view' = View_schema.copy view in
    View_schema.add_class view' ~as_name:cls graph cid;
    view'
  | Change.Delete_class { cls } ->
    let cid = resolve view cls in
    let view' = View_schema.copy view in
    View_schema.remove_class view' cid;
    view'
  | Change.Rename_class { old_name; new_name } ->
    let cid = resolve view old_name in
    if View_schema.cid_of view new_name <> None then
      rejected "rename_class: %s already names a class in the view" new_name;
    let view' = View_schema.copy view in
    View_schema.rename view' cid new_name;
    view'
  | Change.Partition_class _ | Change.Coalesce_classes _ ->
    (* the Section 9 extensions have no destructive counterpart in the
       ORION taxonomy; the oracle cannot express them *)
    rejected "direct oracle limitation: no destructive form of this change"
  | Change.Insert_class { cls; sup; sub } ->
    let view = apply db view (Change.Add_class { cls; connected_to = Some sup }) in
    apply db view (Change.Add_edge { sup = cls; sub })
  | Change.Delete_class_2 { cls } ->
    let cdel = resolve view cls in
    let subs = Generation.direct_subs_in_view graph view cdel in
    let sups = Generation.direct_supers_in_view graph view cdel in
    apply_edge db (fun g ->
        List.iter
          (fun sub ->
            Schema_graph.remove_edge g ~sup:cdel ~sub;
            List.iter
              (fun sup ->
                if not (Schema_graph.is_ancestor_or_self g ~anc:sup ~desc:sub)
                then Schema_graph.add_edge g ~sup ~sub)
              sups)
          subs;
        List.iter
          (fun sup -> Schema_graph.remove_edge g ~sup ~sub:cdel)
          (Schema_graph.supers g cdel));
    let view' = View_schema.copy view in
    View_schema.remove_class view' cdel;
    view'
