(** The direct-modification oracle: "normal schema modification" as the
    Section 6 correctness proofs define it.

    Each change is applied {e destructively}, in place, to the global
    schema — exactly what a conventional OODB (ORION-style, without
    views) would do, and exactly what the TSE translation must simulate.
    The verification tests build twin databases, apply {!apply} to one and
    {!Translator.apply} to the other, and check the resulting views are
    indistinguishable (Proposition A of each subsection).

    Being destructive, this oracle breaks other views — running it next to
    the TSE translation is also how the Proposition B tests demonstrate
    what TSE avoids. *)

val apply :
  Tse_db.Database.t ->
  Tse_views.View_schema.t ->
  Change.t ->
  Tse_views.View_schema.t
(** Destructively apply the change; returns the (possibly updated) view
    over the mutated schema.
    @raise Change.Rejected under the same preconditions as the
    translator. *)
