module Oid = Tse_store.Oid
module Prop = Tse_schema.Prop
module Klass = Tse_schema.Klass
module Schema_graph = Tse_schema.Schema_graph
module Type_info = Tse_schema.Type_info
module Database = Tse_db.Database

type cid = Klass.cid

let without_edge db ~sup ~sub =
  let g = Schema_graph.copy (Database.graph db) in
  Schema_graph.remove_edge g ~sup ~sub;
  g

let common_sub db ~v ~sub ~sup ~sub' =
  let g' = without_edge db ~sup ~sub:sub' in
  let commons =
    Oid.Set.inter (Schema_graph.descendants g' v) (Schema_graph.descendants g' sub)
  in
  (* greatest elements: drop any class with an ancestor in the set *)
  Oid.Set.elements
    (Oid.Set.filter
       (fun c ->
         not
           (Oid.Set.exists
              (fun d ->
                (not (Oid.equal c d))
                && Schema_graph.is_strict_ancestor g' ~anc:d ~desc:c)
              commons))
       commons)

let find_properties db ~w ~sup ~sub =
  let g = Database.graph db in
  let g' = without_edge db ~sup ~sub in
  let still_inherited name uid =
    List.exists
      (fun (p : Prop.t) -> p.uid = uid)
      (match Type_info.find g' w name with
      | Some (Type_info.Single p) -> [ p ]
      | Some (Type_info.Conflict ps) -> ps
      | None -> [])
  in
  Type_info.full_type g w
  |> List.concat_map (fun (name, entry) ->
         let candidates =
           match entry with
           | Type_info.Single p -> [ p ]
           | Type_info.Conflict ps -> ps
         in
         (* a property is lost iff no candidate with its identity survives
            the edge removal *)
         if
           List.exists (fun (p : Prop.t) -> still_inherited name p.uid) candidates
         then []
         else [ name ])
  |> List.sort String.compare

let origin_classes db cid =
  let g = Database.graph db in
  let seen = ref Oid.Set.empty in
  let bases = ref [] in
  let rec go cid =
    if not (Oid.Set.mem cid !seen) then begin
      seen := Oid.Set.add cid !seen;
      let k = Schema_graph.find_exn g cid in
      match Klass.sources k with
      | [] -> if not (List.exists (Oid.equal cid) !bases) then bases := cid :: !bases
      | sources -> List.iter go sources
    end
  in
  go cid;
  List.rev !bases
