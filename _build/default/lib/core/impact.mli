(** Schema-change impact analysis.

    Section 2.1 motivates TSE with the cost of the decision process: a
    developer "must consult with others to figure out the impact of a
    requested schema change on the existing application programs". This
    module automates exactly that consultation — statically, without
    touching the database: which global classes a change would modify if
    applied {e destructively}, and therefore which other registered views
    (programs) it would break.

    Under TSE the answer is always "none" (Proposition B); the analyzer
    quantifies what the virtual change avoids. *)

type cid = Tse_schema.Klass.cid

val affected_classes :
  Tse_db.Database.t -> Tse_views.View_schema.t -> Change.t -> cid list
(** The global classes whose type or extent a {e destructive} application
    of the change (through the given view) would modify: the target class
    and its global descendants for content changes; both sides' ancestors
    and descendants for hierarchy changes. Empty for view-only changes
    (delete_class, rename_class). *)

type report = {
  change : Change.t;
  classes_touched : string list;  (** global class names *)
  broken_views : (string * string list) list;
      (** other views and the (view-local) names of their classes a
          destructive change would reach *)
}

val analyze : Tsem.t -> view:string -> Change.t -> report
(** Impact on every registered view other than [view], judged by the
    current versions in the history. *)

val pp_report : Format.formatter -> report -> unit
