module Oid = Tse_store.Oid
module View_schema = Tse_views.View_schema
module History = Tse_views.History

let name_collisions v1 v2 =
  List.filter_map
    (fun cid1 ->
      match View_schema.local_name v1 cid1 with
      | None -> None
      | Some name -> (
        match View_schema.cid_of v2 name with
        | Some cid2 when not (Oid.equal cid1 cid2) -> Some name
        | Some _ | None -> None))
    (View_schema.classes v1)
  |> List.sort_uniq String.compare

let get_version tsem view version =
  match History.version (Tsem.history tsem) view version with
  | Some v -> v
  | None ->
    invalid_arg (Printf.sprintf "Merge: no version %d of view %s" version view)

let merge_views tsem v1 v2 ~new_name =
  (match History.current (Tsem.history tsem) new_name with
  | Some _ -> invalid_arg (Printf.sprintf "Merge: view %s already exists" new_name)
  | None -> ());
  let graph = Tse_db.Database.graph (Tsem.db tsem) in
  let collisions = name_collisions v1 v2 in
  let merged = View_schema.make ~name:new_name ~version:0 graph [] in
  let local v cid =
    match View_schema.local_name v cid with
    | Some n -> n
    | None -> Tse_schema.Schema_graph.name_of graph cid
  in
  let add_from (v : View_schema.t) =
    List.iter
      (fun cid ->
        (* identical classes (same global class) appear once *)
        if not (View_schema.mem merged cid) then begin
          let name = local v cid in
          let name =
            if List.mem name collisions then
              Printf.sprintf "%s.%s.v%d" name v.View_schema.view_name
                v.View_schema.version
            else name
          in
          (* belt and braces: never raise on residual collisions *)
          let rec uniquify candidate i =
            if View_schema.cid_of merged candidate = None then candidate
            else uniquify (Printf.sprintf "%s#%d" name i) (i + 1)
          in
          View_schema.add_class merged ~as_name:(uniquify name 2) graph cid
        end)
      (View_schema.classes v)
  in
  add_from v1;
  add_from v2;
  History.register (Tsem.history tsem) merged;
  merged

let merge tsem ~view1 ~version1 ~view2 ~version2 ~new_name =
  let v1 = get_version tsem view1 version1
  and v2 = get_version tsem view2 version2 in
  merge_views tsem v1 v2 ~new_name

let merge_current tsem ~view1 ~view2 ~new_name =
  let v1 = History.current_exn (Tsem.history tsem) view1
  and v2 = History.current_exn (Tsem.history tsem) view2 in
  merge_views tsem v1 v2 ~new_name
