(** The schema-change operators (paper, Section 6).

    The taxonomy is Zicari's primitive set, to which ORION's richer
    operations reduce: four content changes (add/delete attribute,
    add/delete method) and four hierarchy changes (add/delete is-a edge,
    add/delete class), plus the two composite macros of Section 6.9.

    Class references are {e view-local names} — the user specifies changes
    against her own view, never against the global schema. *)

type attr_def = {
  attr_name : string;
  ty : Tse_store.Value.ty;
  default : Tse_store.Value.t;
  required : bool;
}

val attr : ?default:Tse_store.Value.t -> ?required:bool -> string -> Tse_store.Value.ty -> attr_def

type t =
  | Add_attribute of { cls : string; def : attr_def }
      (** ["add_attribute x:def to C"] (Section 6.1) *)
  | Delete_attribute of { cls : string; attr_name : string }
      (** ["delete_attribute x from C"] (Section 6.2) *)
  | Add_method of { cls : string; method_name : string; body : Tse_schema.Expr.t }
      (** ["add_method m:def to C"] (Section 6.3) *)
  | Delete_method of { cls : string; method_name : string }
      (** ["delete_method m from C"] (Section 6.4) *)
  | Add_edge of { sup : string; sub : string }
      (** ["add_edge Csup-Csub"] (Section 6.5) *)
  | Delete_edge of { sup : string; sub : string; connected_to : string option }
      (** ["delete_edge Csup-Csub [connected_to Cupper]"] (Section 6.6) *)
  | Add_class of { cls : string; connected_to : string option }
      (** ["add_class C [connected_to Csup]"] (Section 6.7) *)
  | Delete_class of { cls : string }
      (** ["delete_class C"] — MultiView's removeFromView (Section 6.8) *)
  | Insert_class of { cls : string; sup : string; sub : string }
      (** ["insert_class C between Csup-Csub"] (Section 6.9.1, macro) *)
  | Delete_class_2 of { cls : string }
      (** ["delete_class_2 C"] — ORION-style class deletion (Section
          6.9.2, macro) *)
  | Rename_class of { old_name : string; new_name : string }
      (** view-local renaming — the user-level disambiguation operation
          Sections 6.1.1 and 7 refer to; purely a view change, the global
          schema is untouched *)
  | Partition_class of {
      cls : string;
      predicate : Tse_schema.Expr.t;
      into_true : string;
      into_false : string;
    }
      (** Section 9 extension: split a class into two subclasses by a
          predicate. Expressed object-preservingly (two select classes),
          so — unlike the object-generating form the paper leaves open —
          the result stays updatable. *)
  | Coalesce_classes of { a : string; b : string; as_name : string }
      (** Section 9 extension: fuse two classes into one view class — the
          object-preserving reading (a union class replacing both). *)

exception Rejected of string
(** A schema change refused by its preconditions (e.g. adding an attribute
    that already exists, deleting a non-local attribute). *)

val is_primitive : t -> bool
val is_capacity_augmenting : t -> bool
(** Does the change add stored capacity to the database (Section 2.1)? *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
