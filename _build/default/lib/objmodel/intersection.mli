(** The intersection-class architecture: the comparison baseline of
    Section 4.

    An object is one contiguous heap cell belonging to exactly one class.
    Multiple classification is emulated by {e intersection classes}: when
    an object must carry types [C1] and [C2], a class [C1&C2], subclass of
    both, is created on the fly (if absent) and the object is reclassified
    into it. Dynamic reclassification creates a fresh object of the target
    class, copies every attribute value, and swaps the object identities —
    the GemStone-style mechanism the paper describes.

    Costs surfaced for Table 1: one OID per object; intersection classes
    accumulate (worst case [2^n_classes]); reclassification pays a full
    copy plus an identity swap; inherited-attribute access is a single slot
    read (the row where this model wins). *)

include Model_sig.S

val class_of : t -> Tse_store.Oid.t -> Tse_schema.Klass.cid
(** The single class the object physically belongs to (possibly an
    intersection class). *)

val requested_types : t -> Tse_store.Oid.t -> Tse_schema.Klass.cid list
(** The user-requested type set whose combination the current class
    realizes. *)

val intersection_classes_created : t -> int

val class_for :
  t -> Tse_schema.Klass.cid list -> Tse_schema.Klass.cid
(** The class realizing exactly this combination of types, creating an
    intersection class if none exists.
    @raise Invalid_argument on an empty list. *)
