lib/objmodel/intersection.mli: Model_sig Tse_schema Tse_store
