lib/objmodel/slicing.mli: Model_sig Tse_schema Tse_store
