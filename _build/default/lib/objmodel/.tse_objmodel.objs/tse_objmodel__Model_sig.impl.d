lib/objmodel/model_sig.ml: Tse_schema Tse_store
