lib/objmodel/slicing.ml: Int List Printf String Tse_schema Tse_store
