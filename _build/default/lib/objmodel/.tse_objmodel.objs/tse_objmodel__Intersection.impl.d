lib/objmodel/intersection.ml: Hashtbl List Printf String Tse_schema Tse_store
