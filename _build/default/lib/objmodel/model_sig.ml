(** Common signature of the two multiple-classification architectures of
    Section 4, so the Table 1 benchmarks can drive both through one
    interface. *)

module type S = sig
  type t

  val name : string

  val create :
    graph:Tse_schema.Schema_graph.t ->
    heap:Tse_store.Heap.t ->
    stats:Tse_store.Stats.t ->
    t

  val graph : t -> Tse_schema.Schema_graph.t
  val heap : t -> Tse_store.Heap.t
  val stats : t -> Tse_store.Stats.t

  val create_object : t -> Tse_schema.Klass.cid -> Tse_store.Oid.t
  (** New conceptual object, member of the class (and implicitly of all its
      superclasses). *)

  val destroy_object : t -> Tse_store.Oid.t -> unit

  val add_to_class : t -> Tse_store.Oid.t -> Tse_schema.Klass.cid -> unit
  (** Dynamic classification: the object acquires the class's type. *)

  val remove_from_class : t -> Tse_store.Oid.t -> Tse_schema.Klass.cid -> unit
  (** The object loses the type (and that of the class's descendants). *)

  val is_member : t -> Tse_store.Oid.t -> Tse_schema.Klass.cid -> bool

  val member_classes : t -> Tse_store.Oid.t -> Tse_schema.Klass.cid list
  (** Every class the object is currently a member of, superclasses
      included, root excluded. *)

  val get_attr : t -> Tse_store.Oid.t -> string -> Tse_store.Value.t
  (** Resolved stored-attribute read.
      @raise Tse_schema.Expr.Unknown_property if no member class defines
      the attribute. *)

  val set_attr : t -> Tse_store.Oid.t -> string -> Tse_store.Value.t -> unit

  val cast : t -> Tse_store.Oid.t -> Tse_schema.Klass.cid -> Tse_store.Oid.t option
  (** View the object as an instance of the given class: the Table 1
      "casting" row. Object-slicing switches to the class's implementation
      object; intersection-class checks membership and returns the single
      physical object. *)

  val objects : t -> Tse_store.Oid.t list
  val object_count : t -> int
end
