lib/views/history.ml: Hashtbl List Printf String View_schema
