lib/views/view_schema.mli: Format Tse_schema Tse_store
