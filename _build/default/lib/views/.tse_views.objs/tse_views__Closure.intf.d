lib/views/closure.mli: Tse_db Tse_schema View_schema
