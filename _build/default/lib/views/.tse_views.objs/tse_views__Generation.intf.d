lib/views/generation.mli: Format Tse_schema View_schema
