lib/views/history.mli: View_schema
