lib/views/generation.ml: Format List Printf String Tse_schema Tse_store View_schema
