lib/views/catalog.mli: History Tse_db
