lib/views/view_schema.ml: Format Hashtbl List Printf String Tse_schema Tse_store
