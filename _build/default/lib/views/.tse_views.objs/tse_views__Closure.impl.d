lib/views/closure.ml: List Tse_db Tse_schema Tse_store View_schema
