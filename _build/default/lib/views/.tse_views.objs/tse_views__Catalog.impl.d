lib/views/catalog.ml: Buffer History Int List Printf String Sys Tse_db Tse_schema Tse_store View_schema
