module Oid = Tse_store.Oid
module Schema_graph = Tse_schema.Schema_graph

type cid = Tse_schema.Klass.cid

let edges graph view =
  let members = View_schema.classes view in
  let set = View_schema.class_set view in
  let pairs = ref [] in
  List.iter
    (fun sub ->
      (* global strict ancestors of [sub] inside the view *)
      let ancs = Oid.Set.inter (Schema_graph.ancestors graph sub) set in
      (* keep only the minimal ones: no other view ancestor in between *)
      Oid.Set.iter
        (fun sup ->
          let blocked =
            Oid.Set.exists
              (fun mid ->
                (not (Oid.equal mid sup))
                && Schema_graph.is_strict_ancestor graph ~anc:sup ~desc:mid)
              ancs
          in
          if not blocked then pairs := (sup, sub) :: !pairs)
        ancs)
    members;
  List.rev !pairs

let direct_supers_in_view graph view cid =
  List.filter_map
    (fun (sup, sub) -> if Oid.equal sub cid then Some sup else None)
    (edges graph view)

let direct_subs_in_view graph view cid =
  List.filter_map
    (fun (sup, sub) -> if Oid.equal sup cid then Some sub else None)
    (edges graph view)

let roots graph view =
  List.filter
    (fun cid -> direct_supers_in_view graph view cid = [])
    (View_schema.classes view)

let descendants_in_view graph view cid =
  let set = View_schema.class_set view in
  Schema_graph.subclasses_within graph cid ~in_set:set

let edges_signature graph view =
  let name cid =
    match View_schema.local_name view cid with
    | Some n -> n
    | None -> Schema_graph.name_of graph cid
  in
  edges graph view
  |> List.map (fun (sup, sub) -> Printf.sprintf "%s>%s" (name sup) (name sub))
  |> List.sort String.compare
  |> String.concat ";"

let pp graph ppf view =
  Format.fprintf ppf "@[<v 2>view %s (v%d):@ " view.View_schema.view_name
    view.View_schema.version;
  let name cid =
    match View_schema.local_name view cid with
    | Some n -> n
    | None -> Schema_graph.name_of graph cid
  in
  List.iter
    (fun cid ->
      let supers = direct_supers_in_view graph view cid in
      Format.fprintf ppf "%s <- {%s}@ " (name cid)
        (String.concat ", " (List.map name supers)))
    (View_schema.classes view);
  Format.fprintf ppf "@]"
