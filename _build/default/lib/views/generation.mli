(** Automatic view-schema generation (paper, Section 3.1 subtask 3 /
    [Rundensteiner, CIKM 93]): given the classes selected for a view,
    construct the view's generalization hierarchy from the global schema,
    relieving the user of building (and possibly corrupting) it by hand. *)

type cid = Tse_schema.Klass.cid

val edges : Tse_schema.Schema_graph.t -> View_schema.t -> (cid * cid) list
(** The view's is-a edges [(sup, sub)]: the transitive reduction of the
    global ancestor relation restricted to the view's classes — an edge
    links two view classes when one is a global ancestor of the other with
    no third view class in between. *)

val roots : Tse_schema.Schema_graph.t -> View_schema.t -> cid list
(** View classes with no superclass inside the view. *)

val direct_subs_in_view :
  Tse_schema.Schema_graph.t -> View_schema.t -> cid -> cid list

val direct_supers_in_view :
  Tse_schema.Schema_graph.t -> View_schema.t -> cid -> cid list

val descendants_in_view :
  Tse_schema.Schema_graph.t -> View_schema.t -> cid -> cid list
(** Global descendants restricted to the view, topmost first (the
    "subclasses within the view" traversal of Section 6). *)

val edges_signature : Tse_schema.Schema_graph.t -> View_schema.t -> string
(** Canonical dump of the generated hierarchy using view-local names; the
    Proposition A checks compare these. *)

val pp : Tse_schema.Schema_graph.t -> Format.formatter -> View_schema.t -> unit
(** The whole view: classes with local names and generated edges. *)
