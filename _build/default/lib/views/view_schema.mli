(** A view schema: a named subset of the global schema's classes with
    per-view renaming (paper, glossary: "the schema containing a subset of
    both base and virtual classes as required by a particular user").

    Renaming is what makes transparent evolution possible: the evolved
    view contains the primed classes ([Student'], [TA']) renamed back to
    their original names within the view, so the user cannot tell the
    virtual change from a real one (Section 6.1.3). *)

type cid = Tse_schema.Klass.cid

type t = {
  view_name : string;
  version : int;
  mutable members : (cid * string) list;
      (** class and its view-local name, insertion-ordered *)
}

val make :
  name:string -> version:int -> Tse_schema.Schema_graph.t -> cid list -> t
(** Local names default to the classes' global names.
    @raise Invalid_argument on duplicate classes or duplicate local
    names. *)

val classes : t -> cid list
val class_set : t -> Tse_store.Oid.Set.t
val mem : t -> cid -> bool
val size : t -> int

val local_name : t -> cid -> string option
val cid_of : t -> string -> cid option
val cid_of_exn : t -> string -> cid

val rename : t -> cid -> string -> unit
(** @raise Invalid_argument if the class is absent or the name taken. *)

val add_class : t -> ?as_name:string -> Tse_schema.Schema_graph.t -> cid -> unit
val remove_class : t -> cid -> unit
(** MultiView's [removeFromView]: the paper's delete-class semantics
    (Section 6.8). *)

val substitute : t -> old_cid:cid -> new_cid:cid -> t
(** A copy (same name, version + 1 handled by caller via {!with_version})
    in which [new_cid] replaces [old_cid] under the {e old} class's local
    name — the core of the view-replacement step. *)

val with_version : t -> int -> t
val copy : t -> t

val pp : Tse_schema.Schema_graph.t -> Format.formatter -> t -> unit
