(** Type closure of a view (paper, Section 5: "we can check the
    type-closure of a view schema and incorporate necessary classes").

    A view is type-closed when every class-typed stored attribute
    ([TRef c]) of a view class has its domain class (or a view class that
    is a global ancestor of it) inside the view. *)

type cid = Tse_schema.Klass.cid

val missing :
  Tse_db.Database.t -> View_schema.t -> (cid * string * string) list
(** Violations as [(class, attribute, missing-domain-class-name)]. *)

val is_closed : Tse_db.Database.t -> View_schema.t -> bool

val complete : Tse_db.Database.t -> View_schema.t -> cid list
(** Add each missing domain class to the view (transitively); returns the
    classes added. Unknown domain-class names are reported via
    {!missing} but skipped here. *)
