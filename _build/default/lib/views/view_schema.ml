module Oid = Tse_store.Oid
module Schema_graph = Tse_schema.Schema_graph

type cid = Tse_schema.Klass.cid

type t = {
  view_name : string;
  version : int;
  mutable members : (cid * string) list;
}

let check_members members =
  let seen_cid = Hashtbl.create 8 and seen_name = Hashtbl.create 8 in
  List.iter
    (fun (cid, name) ->
      if Hashtbl.mem seen_cid (Oid.to_int cid) then
        invalid_arg "View_schema: duplicate class";
      if Hashtbl.mem seen_name name then
        invalid_arg (Printf.sprintf "View_schema: duplicate local name %s" name);
      Hashtbl.add seen_cid (Oid.to_int cid) ();
      Hashtbl.add seen_name name ())
    members

let make ~name ~version graph cids =
  let members = List.map (fun cid -> (cid, Schema_graph.name_of graph cid)) cids in
  check_members members;
  { view_name = name; version; members }

let classes t = List.map fst t.members

let class_set t =
  List.fold_left (fun acc (cid, _) -> Oid.Set.add cid acc) Oid.Set.empty t.members

let mem t cid = List.exists (fun (c, _) -> Oid.equal c cid) t.members
let size t = List.length t.members

let local_name t cid =
  List.find_map
    (fun (c, n) -> if Oid.equal c cid then Some n else None)
    t.members

let cid_of t name =
  List.find_map
    (fun (c, n) -> if String.equal n name then Some c else None)
    t.members

let cid_of_exn t name =
  match cid_of t name with
  | Some c -> c
  | None ->
    invalid_arg
      (Printf.sprintf "view %s (v%d) has no class named %s" t.view_name
         t.version name)

let rename t cid name =
  if not (mem t cid) then invalid_arg "View_schema.rename: class not in view";
  (match cid_of t name with
  | Some other when not (Oid.equal other cid) ->
    invalid_arg (Printf.sprintf "View_schema.rename: name %s taken" name)
  | Some _ | None -> ());
  t.members <-
    List.map (fun (c, n) -> if Oid.equal c cid then (c, name) else (c, n)) t.members

let add_class t ?as_name graph cid =
  if mem t cid then invalid_arg "View_schema.add_class: already in view";
  let name =
    match as_name with Some n -> n | None -> Schema_graph.name_of graph cid
  in
  (match cid_of t name with
  | Some _ -> invalid_arg (Printf.sprintf "View_schema.add_class: name %s taken" name)
  | None -> ());
  t.members <- t.members @ [ (cid, name) ]

let remove_class t cid =
  t.members <- List.filter (fun (c, _) -> not (Oid.equal c cid)) t.members

let substitute t ~old_cid ~new_cid =
  {
    t with
    members =
      List.map
        (fun (c, n) -> if Oid.equal c old_cid then (new_cid, n) else (c, n))
        t.members;
  }

let with_version t version = { t with version }
let copy t = { t with members = t.members }

let pp graph ppf t =
  Format.fprintf ppf "@[<v 2>view %s (v%d):@ " t.view_name t.version;
  List.iter
    (fun (cid, name) ->
      let global = Schema_graph.name_of graph cid in
      if String.equal global name then Format.fprintf ppf "%s@ " name
      else Format.fprintf ppf "%s (global: %s)@ " name global)
    t.members;
  Format.fprintf ppf "@]"
