(** Whole-database persistence: schema + objects + view history in one
    stable text artifact.

    The paper ran on GemStone, which persisted everything; our store
    substitutes for it (DESIGN.md), and this module closes the loop: a
    catalog carries the global schema graph (classes with their
    derivations and properties, so virtual classes stay {e virtual} after
    a reload), the heap snapshot, the per-object base memberships, and
    every registered view version. Loading reconstructs a fully
    operational {!Tse_db.Database.t} — evolution can continue where it
    stopped. *)

val to_string : ?history:History.t -> Tse_db.Database.t -> string

val of_string : string -> Tse_db.Database.t * History.t
(** @raise Failure on malformed input. *)

val save : ?history:History.t -> Tse_db.Database.t -> string -> unit
(** Atomic write (temp file + rename). *)

val load : string -> Tse_db.Database.t * History.t
