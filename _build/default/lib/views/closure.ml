module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Prop = Tse_schema.Prop
module Schema_graph = Tse_schema.Schema_graph
module Type_info = Tse_schema.Type_info
module Database = Tse_db.Database

type cid = Tse_schema.Klass.cid

let rec ref_targets = function
  | Value.TRef c -> [ c ]
  | Value.TList t -> ref_targets t
  | Value.TAny | Value.TBool | Value.TInt | Value.TFloat | Value.TString -> []

(* The domain is covered when the named class, or a view class that is a
   global ancestor of it, is in the view. *)
let covered db view cname =
  match Schema_graph.find_by_name (Database.graph db) cname with
  | None -> false
  | Some k ->
    View_schema.mem view k.cid
    || List.exists
         (fun v ->
           Schema_graph.is_strict_ancestor (Database.graph db) ~anc:v ~desc:k.cid)
         (View_schema.classes view)

let missing db view =
  let graph = Database.graph db in
  List.concat_map
    (fun cid ->
      List.concat_map
        (fun (p : Prop.t) ->
          match p.body with
          | Prop.Stored { ty; _ } ->
            List.filter_map
              (fun cname ->
                if covered db view cname then None else Some (cid, p.name, cname))
              (ref_targets ty)
          | Prop.Method _ -> [])
        (Type_info.stored_attrs graph cid))
    (View_schema.classes view)

let is_closed db view = missing db view = []

let complete db view =
  let graph = Database.graph db in
  let added = ref [] in
  let rec fix () =
    match missing db view with
    | [] -> ()
    | violations ->
      let progressed = ref false in
      List.iter
        (fun (_, _, cname) ->
          match Schema_graph.find_by_name graph cname with
          | Some k when not (View_schema.mem view k.cid) ->
            View_schema.add_class view graph k.cid;
            added := k.cid :: !added;
            progressed := true
          | Some _ | None -> ())
        violations;
      if !progressed then fix ()
  in
  fix ();
  List.rev !added
