let scheme = "VS.<n>"

type t = (string, View_schema.t list ref) Hashtbl.t
(* view name -> versions, newest first *)

let create () = Hashtbl.create 8

let versions_ref t name =
  match Hashtbl.find_opt t name with
  | Some r -> r
  | None ->
    let r = ref [] in
    Hashtbl.replace t name r;
    r

let current t name =
  match Hashtbl.find_opt t name with
  | Some { contents = v :: _ } -> Some v
  | Some { contents = [] } | None -> None

let current_exn t name =
  match current t name with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "History: no view named %s" name)

let register t (v : View_schema.t) =
  let r = versions_ref t v.view_name in
  let expected = match !r with [] -> 0 | latest :: _ -> latest.View_schema.version + 1 in
  if v.version <> expected then
    invalid_arg
      (Printf.sprintf "History.register: expected %s version %d, got %d"
         v.view_name expected v.version);
  r := v :: !r

let replace t (v : View_schema.t) =
  let r = versions_ref t v.view_name in
  let next = match !r with [] -> 0 | latest :: _ -> latest.View_schema.version + 1 in
  let v = View_schema.with_version v next in
  r := v :: !r;
  v

let version t name n =
  match Hashtbl.find_opt t name with
  | None -> None
  | Some r -> List.find_opt (fun (v : View_schema.t) -> v.version = n) !r

let versions t name =
  match Hashtbl.find_opt t name with
  | None -> []
  | Some r -> List.rev !r

let view_names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t [] |> List.sort String.compare

let total_versions t = Hashtbl.fold (fun _ r acc -> acc + List.length !r) t 0
