module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Heap = Tse_store.Heap
module Snapshot = Tse_store.Snapshot
module Prop = Tse_schema.Prop
module Expr = Tse_schema.Expr
module Klass = Tse_schema.Klass
module Schema_graph = Tse_schema.Schema_graph
module Database = Tse_db.Database

(* ---------- position-based primitive codecs ---------- *)

let add_int buf i =
  Buffer.add_string buf (string_of_int i);
  Buffer.add_char buf ';'

let add_str buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let add_bool buf b = Buffer.add_char buf (if b then '1' else '0')

let fail_at pos what = failwith (Printf.sprintf "Catalog: %s at %d" what pos)

let read_int s pos =
  let j =
    try String.index_from s pos ';' with Not_found -> fail_at pos "unterminated int"
  in
  (int_of_string (String.sub s pos (j - pos)), j + 1)

let read_str s pos =
  let j =
    try String.index_from s pos ':' with Not_found -> fail_at pos "unterminated str"
  in
  let n = int_of_string (String.sub s pos (j - pos)) in
  if j + 1 + n > String.length s then fail_at pos "truncated str";
  (String.sub s (j + 1) n, j + 1 + n)

let read_bool s pos =
  if pos >= String.length s then fail_at pos "eof";
  match s.[pos] with
  | '1' -> (true, pos + 1)
  | '0' -> (false, pos + 1)
  | c -> fail_at pos (Printf.sprintf "bad bool %C" c)

let read_list read s pos =
  let n, pos = read_int s pos in
  let rec go acc pos k =
    if k = 0 then (List.rev acc, pos)
    else
      let x, pos = read s pos in
      go (x :: acc) pos (k - 1)
  in
  go [] pos n

let add_list buf add xs =
  add_int buf (List.length xs);
  List.iter (add buf) xs

(* ---------- property and derivation codecs ---------- *)

let add_prop buf (p : Prop.t) =
  add_int buf p.uid;
  add_str buf p.name;
  add_int buf (Oid.to_int p.origin);
  add_bool buf p.promoted;
  match p.body with
  | Prop.Stored { ty; default; required } ->
    Buffer.add_char buf 's';
    Value.encode_ty buf ty;
    Value.encode buf default;
    add_bool buf required
  | Prop.Method e ->
    Buffer.add_char buf 'm';
    Expr.encode buf e

let read_prop s pos =
  let uid, pos = read_int s pos in
  let name, pos = read_str s pos in
  let origin, pos = read_int s pos in
  let promoted, pos = read_bool s pos in
  if pos >= String.length s then fail_at pos "eof in prop";
  match s.[pos] with
  | 's' ->
    let ty, pos = Value.decode_ty s (pos + 1) in
    let default, pos = Value.decode s pos in
    let required, pos = read_bool s pos in
    ( Prop.make ~uid ~name
        ~body:(Prop.Stored { ty; default; required })
        ~origin:(Oid.of_int origin) ~promoted,
      pos )
  | 'm' ->
    let e, pos = Expr.decode s (pos + 1) in
    (Prop.make ~uid ~name ~body:(Prop.Method e) ~origin:(Oid.of_int origin) ~promoted, pos)
  | c -> fail_at pos (Printf.sprintf "bad prop body %C" c)

let add_cid buf cid = add_int buf (Oid.to_int cid)

let read_cid s pos =
  let i, pos = read_int s pos in
  (Oid.of_int i, pos)

let add_derivation buf = function
  | Klass.Select (src, pred) ->
    Buffer.add_char buf 'S';
    add_cid buf src;
    Expr.encode buf pred
  | Klass.Hide (names, src) ->
    Buffer.add_char buf 'H';
    add_list buf add_str names;
    add_cid buf src
  | Klass.Refine (props, src) ->
    Buffer.add_char buf 'R';
    add_list buf add_prop props;
    add_cid buf src
  | Klass.Refine_from { src; prop_name; target } ->
    Buffer.add_char buf 'F';
    add_cid buf src;
    add_str buf prop_name;
    add_cid buf target
  | Klass.Union (a, b) ->
    Buffer.add_char buf 'U';
    add_cid buf a;
    add_cid buf b
  | Klass.Intersect (a, b) ->
    Buffer.add_char buf 'N';
    add_cid buf a;
    add_cid buf b
  | Klass.Difference (a, b) ->
    Buffer.add_char buf 'D';
    add_cid buf a;
    add_cid buf b

let read_derivation s pos =
  if pos >= String.length s then fail_at pos "eof in derivation";
  match s.[pos] with
  | 'S' ->
    let src, pos = read_cid s (pos + 1) in
    let pred, pos = Expr.decode s pos in
    (Klass.Select (src, pred), pos)
  | 'H' ->
    let names, pos = read_list (fun s pos -> read_str s pos) s (pos + 1) in
    let src, pos = read_cid s pos in
    (Klass.Hide (names, src), pos)
  | 'R' ->
    let props, pos = read_list read_prop s (pos + 1) in
    let src, pos = read_cid s pos in
    (Klass.Refine (props, src), pos)
  | 'F' ->
    let src, pos = read_cid s (pos + 1) in
    let prop_name, pos = read_str s pos in
    let target, pos = read_cid s pos in
    (Klass.Refine_from { src; prop_name; target }, pos)
  | 'U' ->
    let a, pos = read_cid s (pos + 1) in
    let b, pos = read_cid s pos in
    (Klass.Union (a, b), pos)
  | 'N' ->
    let a, pos = read_cid s (pos + 1) in
    let b, pos = read_cid s pos in
    (Klass.Intersect (a, b), pos)
  | 'D' ->
    let a, pos = read_cid s (pos + 1) in
    let b, pos = read_cid s pos in
    (Klass.Difference (a, b), pos)
  | c -> fail_at pos (Printf.sprintf "bad derivation tag %C" c)

(* ---------- schema blob ---------- *)

let add_class buf (k : Klass.t) =
  add_cid buf k.cid;
  add_str buf k.name;
  (match k.kind with
  | Klass.Base -> Buffer.add_char buf 'B'
  | Klass.Virtual d ->
    Buffer.add_char buf 'V';
    add_derivation buf d);
  add_list buf add_cid k.supers;
  add_list buf add_prop k.local_props

let read_class s pos =
  let cid, pos = read_cid s pos in
  let name, pos = read_str s pos in
  if pos >= String.length s then fail_at pos "eof in class";
  let kind, pos =
    match s.[pos] with
    | 'B' -> (Klass.Base, pos + 1)
    | 'V' ->
      let d, pos = read_derivation s (pos + 1) in
      (Klass.Virtual d, pos)
    | c -> fail_at pos (Printf.sprintf "bad kind %C" c)
  in
  let supers, pos = read_list read_cid s pos in
  let props, pos = read_list read_prop s pos in
  ( { Klass.cid; name; kind; local_props = props; supers; subs = [] },
    pos )

let schema_blob db history =
  let buf = Buffer.create 4096 in
  let graph = Database.graph db in
  add_cid buf (Schema_graph.root graph);
  let classes =
    Schema_graph.classes graph
    |> List.sort (fun (a : Klass.t) b -> Oid.compare a.cid b.cid)
  in
  add_list buf add_class classes;
  (* per-object explicit base memberships *)
  let bases =
    List.map (fun o -> (o, Oid.Set.elements (Database.base_membership db o)))
      (List.sort Oid.compare (Database.objects db))
  in
  add_list buf
    (fun buf (o, cids) ->
      add_cid buf o;
      add_list buf add_cid cids)
    bases;
  (* view history *)
  let views =
    match history with
    | None -> []
    | Some h ->
      List.concat_map
        (fun name -> History.versions h name)
        (History.view_names h)
  in
  add_list buf
    (fun buf (v : View_schema.t) ->
      add_str buf v.view_name;
      add_int buf v.version;
      add_list buf
        (fun buf (cid, lname) ->
          add_cid buf cid;
          add_str buf lname)
        v.members)
    views;
  Buffer.contents buf

let to_string ?history db =
  let blob = schema_blob db history in
  let heap_snapshot = Snapshot.to_string (Database.heap db) in
  let buf = Buffer.create (String.length blob + String.length heap_snapshot + 64) in
  Buffer.add_string buf "TSE-CATALOG 1\n";
  Buffer.add_string buf (Printf.sprintf "SCHEMA %d\n" (String.length blob));
  Buffer.add_string buf blob;
  Buffer.add_string buf "\nHEAP\n";
  Buffer.add_string buf heap_snapshot;
  Buffer.contents buf

let of_string text =
  let header = "TSE-CATALOG 1\n" in
  if String.length text < String.length header
     || String.sub text 0 (String.length header) <> header
  then failwith "Catalog: bad header";
  let pos = String.length header in
  let nl = String.index_from text pos '\n' in
  let schema_line = String.sub text pos (nl - pos) in
  let blob_len =
    match String.split_on_char ' ' schema_line with
    | [ "SCHEMA"; n ] -> int_of_string n
    | _ -> failwith "Catalog: bad SCHEMA line"
  in
  let blob_start = nl + 1 in
  let blob = String.sub text blob_start blob_len in
  let rest = blob_start + blob_len in
  let heap_marker = "\nHEAP\n" in
  if
    String.length text < rest + String.length heap_marker
    || String.sub text rest (String.length heap_marker) <> heap_marker
  then failwith "Catalog: missing HEAP section";
  let heap_text =
    String.sub text
      (rest + String.length heap_marker)
      (String.length text - rest - String.length heap_marker)
  in
  (* heap first: it owns the OID generator *)
  let heap = Snapshot.of_string heap_text in
  let pos = 0 in
  let root, pos = read_cid blob pos in
  let graph = Schema_graph.restore_empty ~gen:(Heap.gen heap) ~root in
  let classes, pos = read_list read_class blob pos in
  List.iter (Schema_graph.install graph) classes;
  Schema_graph.relink_subs graph;
  let bases, pos =
    read_list
      (fun s pos ->
        let o, pos = read_cid s pos in
        let cids, pos = read_list read_cid s pos in
        ((o, cids), pos))
      blob pos
  in
  let db = Database.restore ~heap ~graph ~bases in
  List.iter (fun (k : Klass.t) -> Database.note_new_class db k.cid) classes;
  let views, _pos =
    read_list
      (fun s pos ->
        let name, pos = read_str s pos in
        let version, pos = read_int s pos in
        let members, pos =
          read_list
            (fun s pos ->
              let cid, pos = read_cid s pos in
              let lname, pos = read_str s pos in
              ((cid, lname), pos))
            s pos
        in
        ({ View_schema.view_name = name; version; members }, pos))
      blob pos
  in
  let history = History.create () in
  List.iter
    (fun (v : View_schema.t) -> History.register history v)
    (List.sort
       (fun (a : View_schema.t) b -> Int.compare a.version b.version)
       views);
  (db, history)

let save ?history db path =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try output_string oc (to_string ?history db)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc;
  Sys.rename tmp path

let load path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  of_string s
