(** The View Schema History (paper, Section 5): the dictionary tracking
    every version of every view, "allowing for the substitution of the old
    view by the newly created one".

    Old versions are never discarded — programs written against them keep
    running, which is the whole point of the TSE approach. *)

val scheme : string
(** Version naming scheme used in messages: ["VS.<n>"]. *)

type t

val create : unit -> t

val register : t -> View_schema.t -> unit
(** Record a view version. The version number must be one greater than the
    current latest for that view name (or 0 for a new view).
    @raise Invalid_argument otherwise. *)

val replace : t -> View_schema.t -> View_schema.t
(** [replace h v] registers [v] re-versioned as the successor of the
    current version of its view, and returns the registered copy — the
    "replace the old view with the new one" step of the TSE pipeline. *)

val current : t -> string -> View_schema.t option
val current_exn : t -> string -> View_schema.t
val version : t -> string -> int -> View_schema.t option
val versions : t -> string -> View_schema.t list
(** Oldest first. *)

val view_names : t -> string list
val total_versions : t -> int
