lib/store/value.mli: Buffer Format Oid
