lib/store/heap.ml: Hashtbl List Oid String Value
