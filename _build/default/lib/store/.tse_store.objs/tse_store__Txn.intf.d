lib/store/txn.mli: Heap
