lib/store/snapshot.mli: Heap
