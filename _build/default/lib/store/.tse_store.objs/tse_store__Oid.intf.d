lib/store/oid.mli: Format Hashtbl Map Set
