lib/store/index.mli: Oid Seq Value
