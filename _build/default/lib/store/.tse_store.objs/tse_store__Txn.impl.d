lib/store/txn.ml: Heap
