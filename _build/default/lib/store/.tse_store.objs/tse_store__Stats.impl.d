lib/store/stats.ml: Format
