lib/store/oid.ml: Format Hashtbl Int Map Set
