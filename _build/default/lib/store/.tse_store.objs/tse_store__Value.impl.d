lib/store/value.ml: Bool Buffer Float Format Int List Oid Printf String
