lib/store/stats.mli: Format
