lib/store/heap.mli: Hashtbl Oid Value
