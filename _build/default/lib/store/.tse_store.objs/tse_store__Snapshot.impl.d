lib/store/snapshot.ml: Buffer Hashtbl Heap List Oid Printf Stdlib String Sys Value
