lib/store/index.ml: Hashtbl Oid Seq Stats Value
