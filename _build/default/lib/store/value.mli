(** Stored values and their types.

    The TSE model (like GemStone's Opal, the paper's substrate) stores typed
    slot values. Attribute definitions carry a {!ty}; the update operators
    type-check assignments against it. *)

type t =
  | Null  (** absent / not-yet-assigned slot value *)
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Ref of Oid.t  (** reference to another conceptual object *)
  | List of t list

type ty =
  | TAny
  | TBool
  | TInt
  | TFloat
  | TString
  | TRef of string  (** reference constrained to members of the named class *)
  | TList of ty

val equal : t -> t -> bool
(** Structural equality. OID references compare by identity of the referent,
    matching the paper's duplicate-elimination criterion ("object identity
    equality, not value equality"). *)

val compare : t -> t -> int

val tag_compatible : t -> t -> bool
(** [true] when the two values can be meaningfully ordered against each
    other (same constructor, or an int/float pair). *)

val conforms : t -> ty -> bool
(** [conforms v ty] is [true] when [v] may legally be stored in a slot of
    type [ty]. [Null] conforms to every type; class-constrained references
    are checked for class membership by the database layer, not here. *)

val ty_equal : ty -> ty -> bool

val ty_compatible : ty -> ty -> bool
(** [ty_compatible sub sup]: a slot typed [sub] may be read where [sup] is
    expected. [TAny] is the top. *)

val size_bytes : t -> int
(** Approximate storage footprint of the value, used by Table 1's storage
    accounting. *)

val pp : Format.formatter -> t -> unit
val pp_ty : Format.formatter -> ty -> unit
val to_string : t -> string
val ty_to_string : ty -> string

val encode : Buffer.t -> t -> unit
(** Append a stable, parseable text encoding (snapshot format). *)

val decode : string -> int -> t * int
(** [decode s pos] parses a value encoded by {!encode} starting at [pos],
    returning the value and the position one past its end.
    @raise Failure on malformed input. *)

val encode_ty : Buffer.t -> ty -> unit
val decode_ty : string -> int -> ty * int
