type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | Ref of Oid.t
  | List of t list

type ty = TAny | TBool | TInt | TFloat | TString | TRef of string | TList of ty

let rec equal a b =
  match a, b with
  | Null, Null -> true
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | String x, String y -> String.equal x y
  | Ref x, Ref y -> Oid.equal x y
  | List x, List y -> List.length x = List.length y && List.for_all2 equal x y
  | (Null | Bool _ | Int _ | Float _ | String _ | Ref _ | List _), _ -> false

let tag = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ -> 2
  | Float _ -> 3
  | String _ -> 4
  | Ref _ -> 5
  | List _ -> 6

let rec compare a b =
  match a, b with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | String x, String y -> String.compare x y
  | Ref x, Ref y -> Oid.compare x y
  | List x, List y -> List.compare compare x y
  | a, b -> Int.compare (tag a) (tag b)

let tag_compatible a b =
  match a, b with
  | Int _, Float _ | Float _, Int _ -> true
  | a, b -> tag a = tag b

let rec conforms v ty =
  match v, ty with
  | Null, _ -> true
  | _, TAny -> true
  | Bool _, TBool -> true
  | Int _, TInt -> true
  | Float _, TFloat -> true
  | Int _, TFloat -> true
  | String _, TString -> true
  | Ref _, TRef _ -> true
  | List vs, TList ty -> List.for_all (fun v -> conforms v ty) vs
  | (Bool _ | Int _ | Float _ | String _ | Ref _ | List _), _ -> false

let rec ty_equal a b =
  match a, b with
  | TAny, TAny | TBool, TBool | TInt, TInt | TFloat, TFloat | TString, TString
    ->
    true
  | TRef x, TRef y -> String.equal x y
  | TList x, TList y -> ty_equal x y
  | (TAny | TBool | TInt | TFloat | TString | TRef _ | TList _), _ -> false

let rec ty_compatible sub sup =
  match sub, sup with
  | _, TAny -> true
  | TInt, TFloat -> true
  | TList a, TList b -> ty_compatible a b
  | a, b -> ty_equal a b

let rec size_bytes = function
  | Null -> 1
  | Bool _ -> 1
  | Int _ -> 8
  | Float _ -> 8
  | String s -> 8 + String.length s
  | Ref _ -> 8
  | List vs -> List.fold_left (fun acc v -> acc + size_bytes v) 8 vs

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_bool ppf b
  | Int i -> Format.pp_print_int ppf i
  | Float f -> Format.fprintf ppf "%g" f
  | String s -> Format.fprintf ppf "%S" s
  | Ref o -> Oid.pp ppf o
  | List vs ->
    Format.fprintf ppf "[%a]"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ") pp)
      vs

let rec pp_ty ppf = function
  | TAny -> Format.pp_print_string ppf "any"
  | TBool -> Format.pp_print_string ppf "bool"
  | TInt -> Format.pp_print_string ppf "int"
  | TFloat -> Format.pp_print_string ppf "float"
  | TString -> Format.pp_print_string ppf "string"
  | TRef c -> Format.fprintf ppf "ref<%s>" c
  | TList t -> Format.fprintf ppf "list<%a>" pp_ty t

let to_string v = Format.asprintf "%a" pp v
let ty_to_string t = Format.asprintf "%a" pp_ty t

(* Snapshot encoding: one-character tag followed by a length-prefixed or
   fixed-syntax payload, so decoding needs no backtracking. *)

let rec encode buf = function
  | Null -> Buffer.add_char buf 'N'
  | Bool b -> Buffer.add_string buf (if b then "T" else "F")
  | Int i ->
    Buffer.add_char buf 'I';
    Buffer.add_string buf (string_of_int i);
    Buffer.add_char buf ';'
  | Float f ->
    Buffer.add_char buf 'D';
    Buffer.add_string buf (Printf.sprintf "%h" f);
    Buffer.add_char buf ';'
  | String s ->
    Buffer.add_char buf 'S';
    Buffer.add_string buf (string_of_int (String.length s));
    Buffer.add_char buf ':';
    Buffer.add_string buf s
  | Ref o ->
    Buffer.add_char buf 'R';
    Buffer.add_string buf (string_of_int (Oid.to_int o));
    Buffer.add_char buf ';'
  | List vs ->
    Buffer.add_char buf 'L';
    Buffer.add_string buf (string_of_int (List.length vs));
    Buffer.add_char buf ':';
    List.iter (encode buf) vs

let fail_at pos what = failwith (Printf.sprintf "Value.decode: %s at %d" what pos)

let scan_until s pos stop =
  let j = try String.index_from s pos stop with Not_found -> fail_at pos "unterminated token" in
  String.sub s pos (j - pos), j + 1

let rec decode s pos =
  if pos >= String.length s then fail_at pos "eof";
  match s.[pos] with
  | 'N' -> Null, pos + 1
  | 'T' -> Bool true, pos + 1
  | 'F' -> Bool false, pos + 1
  | 'I' ->
    let tok, p = scan_until s (pos + 1) ';' in
    Int (int_of_string tok), p
  | 'D' ->
    let tok, p = scan_until s (pos + 1) ';' in
    Float (float_of_string tok), p
  | 'S' ->
    let tok, p = scan_until s (pos + 1) ':' in
    let n = int_of_string tok in
    if p + n > String.length s then fail_at p "truncated string";
    String (String.sub s p n), p + n
  | 'R' ->
    let tok, p = scan_until s (pos + 1) ';' in
    Ref (Oid.of_int (int_of_string tok)), p
  | 'L' ->
    let tok, p = scan_until s (pos + 1) ':' in
    let n = int_of_string tok in
    let rec loop acc p k =
      if k = 0 then List (List.rev acc), p
      else
        let v, p = decode s p in
        loop (v :: acc) p (k - 1)
    in
    loop [] p n
  | c -> fail_at pos (Printf.sprintf "bad tag %C" c)

let rec encode_ty buf = function
  | TAny -> Buffer.add_char buf 'a'
  | TBool -> Buffer.add_char buf 'b'
  | TInt -> Buffer.add_char buf 'i'
  | TFloat -> Buffer.add_char buf 'f'
  | TString -> Buffer.add_char buf 's'
  | TRef c ->
    Buffer.add_char buf 'r';
    Buffer.add_string buf (string_of_int (String.length c));
    Buffer.add_char buf ':';
    Buffer.add_string buf c
  | TList t ->
    Buffer.add_char buf 'l';
    encode_ty buf t

let rec decode_ty s pos =
  if pos >= String.length s then fail_at pos "eof";
  match s.[pos] with
  | 'a' -> TAny, pos + 1
  | 'b' -> TBool, pos + 1
  | 'i' -> TInt, pos + 1
  | 'f' -> TFloat, pos + 1
  | 's' -> TString, pos + 1
  | 'r' ->
    let tok, p = scan_until s (pos + 1) ':' in
    let n = int_of_string tok in
    if p + n > String.length s then fail_at p "truncated class name";
    TRef (String.sub s p n), p + n
  | 'l' ->
    let t, p = decode_ty s (pos + 1) in
    TList t, p
  | c -> fail_at pos (Printf.sprintf "bad ty tag %C" c)
