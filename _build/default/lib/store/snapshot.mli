(** Text snapshots of a heap.

    A stable, diffable line format (no [Marshal]) so that persisted
    databases survive compiler upgrades and can be inspected by hand:

    {v
    TSE-HEAP 1
    gen <next-oid>
    obj <oid> <tag> <nslots>
    slot <name> <value-encoding>
    ...
    end
    v} *)

val to_string : Heap.t -> string

val of_string : string -> Heap.t
(** @raise Failure on malformed input. *)

val save : Heap.t -> string -> unit
(** [save heap path] writes atomically (temp file + rename). *)

val load : string -> Heap.t
(** @raise Sys_error if the file cannot be read.
    @raise Failure on malformed content. *)

val roundtrip_equal : Heap.t -> Heap.t -> bool
(** Structural equality of two heaps (same cells, tags and slots); used by
    the persistence tests. *)
