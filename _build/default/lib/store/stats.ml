let sizeof_oid = 8
let sizeof_pointer = 8

type t = {
  mutable oids_allocated : int;
  mutable pointers : int;
  mutable data_bytes : int;
  mutable classes_created : int;
  mutable objects_created : int;
  mutable copies : int;
  mutable identity_swaps : int;
}

let create () =
  {
    oids_allocated = 0;
    pointers = 0;
    data_bytes = 0;
    classes_created = 0;
    objects_created = 0;
    copies = 0;
    identity_swaps = 0;
  }

let reset t =
  t.oids_allocated <- 0;
  t.pointers <- 0;
  t.data_bytes <- 0;
  t.classes_created <- 0;
  t.objects_created <- 0;
  t.copies <- 0;
  t.identity_swaps <- 0

let managerial_bytes t =
  (t.oids_allocated * sizeof_oid) + (t.pointers * sizeof_pointer)

let oids_per_object t =
  if t.objects_created = 0 then 0.
  else float_of_int t.oids_allocated /. float_of_int t.objects_created

let pp ppf t =
  Format.fprintf ppf
    "@[<v>oids=%d pointers=%d data_bytes=%d managerial_bytes=%d@ \
     classes_created=%d objects=%d copies=%d swaps=%d oids/object=%.2f@]"
    t.oids_allocated t.pointers t.data_bytes (managerial_bytes t)
    t.classes_created t.objects_created t.copies t.identity_swaps
    (oids_per_object t)
