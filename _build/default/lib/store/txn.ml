exception Abort

let with_txn heap f =
  Heap.push_journal heap;
  match f () with
  | v ->
    Heap.pop_journal_commit heap;
    Some v
  | exception Abort ->
    Heap.pop_journal_abort heap;
    None
  | exception e ->
    Heap.pop_journal_abort heap;
    raise e

let atomically heap f =
  match with_txn heap f with Some v -> v | None -> raise Abort
