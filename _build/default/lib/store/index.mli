(** Hash indexes mapping attribute values to OID sets.

    Section 4.2 counts index structures among the "storage for purposes
    other than data values"; the query benchmarks use these indexes to give
    both object models identical lookup machinery. *)

type t

val create : unit -> t

val add : t -> Value.t -> Oid.t -> unit
val remove : t -> Value.t -> Oid.t -> unit

val lookup : t -> Value.t -> Oid.Set.t
(** All OIDs currently indexed under the value (empty set if none). *)

val cardinal : t -> int
(** Number of (value, oid) entries. *)

val distinct_keys : t -> int
val clear : t -> unit

val overhead_bytes : t -> int
(** Managerial storage charged to the index: one OID-sized entry per
    (value, oid) pair plus one pointer per distinct key bucket. *)

val of_seq : (Value.t * Oid.t) Seq.t -> t
