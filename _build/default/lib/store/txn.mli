(** Minimal transactions over a {!Heap}.

    GemStone provided transactional persistence under the TSE prototype;
    this module provides the undo-log equivalent: every heap mutation inside
    [with_txn] is journaled and reversed on exception (or explicit
    {!Abort}). Transactions nest: an inner commit folds its log into the
    enclosing transaction. *)

exception Abort
(** Raise inside [with_txn] to roll back without propagating an error. *)

val with_txn : Heap.t -> (unit -> 'a) -> 'a option
(** [with_txn heap f] runs [f] journaled. Returns [Some (f ())] on success;
    on {!Abort} rolls back and returns [None]; on any other exception rolls
    back and re-raises. *)

val atomically : Heap.t -> (unit -> 'a) -> 'a
(** Like {!with_txn} but {!Abort} is re-raised rather than swallowed. *)
