type t = { buckets : (Value.t, Oid.Set.t ref) Hashtbl.t; mutable entries : int }

let create () = { buckets = Hashtbl.create 64; entries = 0 }

let add t v oid =
  match Hashtbl.find_opt t.buckets v with
  | Some set ->
    if not (Oid.Set.mem oid !set) then begin
      set := Oid.Set.add oid !set;
      t.entries <- t.entries + 1
    end
  | None ->
    Hashtbl.replace t.buckets v (ref (Oid.Set.singleton oid));
    t.entries <- t.entries + 1

let remove t v oid =
  match Hashtbl.find_opt t.buckets v with
  | None -> ()
  | Some set ->
    if Oid.Set.mem oid !set then begin
      set := Oid.Set.remove oid !set;
      t.entries <- t.entries - 1;
      if Oid.Set.is_empty !set then Hashtbl.remove t.buckets v
    end

let lookup t v =
  match Hashtbl.find_opt t.buckets v with Some s -> !s | None -> Oid.Set.empty

let cardinal t = t.entries
let distinct_keys t = Hashtbl.length t.buckets

let clear t =
  Hashtbl.reset t.buckets;
  t.entries <- 0

let overhead_bytes t =
  (t.entries * Stats.sizeof_oid) + (distinct_keys t * Stats.sizeof_pointer)

let of_seq seq =
  let t = create () in
  Seq.iter (fun (v, oid) -> add t v oid) seq;
  t
