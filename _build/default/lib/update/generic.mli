(** The generic update operators (Section 3.3) and their propagation
    through virtual classes (Section 3.4).

    Updates issued against a virtual class are translated, along the
    source relationships of its derivation, into updates on its {e origin}
    base classes:
    - select/hide/refine/refine-from propagate to their (single) source;
    - union propagates {b create}/{b add} to its {e first} argument — the
      class the union substitutes in the evolved view, which is exactly
      the paper's resolution of the ambiguity (Section 6.5.4) — and
      {b delete}/{b remove}/{b set} to both;
    - intersect propagates to both arguments;
    - difference propagates to its first argument.

    The {e value closure} problem (Section 3.4): creating or setting an
    object through a select (or difference) class such that the object
    does not satisfy the class's predicate. Both solutions offered by the
    paper are implemented as policies: [Reject] refuses the update,
    [Accept] performs it on the source classes, leaving the object outside
    the virtual class. *)

type cid = Tse_schema.Klass.cid

module Policy : sig
  type value_closure = Reject | Accept
  type union_target = First | Second | Both

  type t = { value_closure : value_closure; union_target : union_target }

  val default : t
  (** [{ value_closure = Reject; union_target = First }] *)

  val lenient : t
  (** [{ value_closure = Accept; union_target = First }] *)
end

exception Rejected of string
(** An update refused under the current policy (value-closure violation,
    assignment to a hidden or unknown attribute, missing required
    attribute). The database is left unchanged. *)

val origin_bases : Tse_db.Database.t -> cid -> cid list
(** The origin classes of a class: the base classes reached by following
    source relationships (Section 3.4); the class itself if it is base.
    Uses the [First]-argument route for unions (see above) — pass a policy
    via {!origin_bases_p} to choose otherwise. *)

val origin_bases_p : Policy.t -> Tse_db.Database.t -> cid -> cid list

val create :
  ?policy:Policy.t ->
  ?methods:Type_methods.t ->
  Tse_db.Database.t ->
  cid ->
  init:(string * Tse_store.Value.t) list ->
  Tse_store.Oid.t
(** [(<class> create [assignments])]: create an object through any (base
    or virtual) class. Assignments may only name properties visible on the
    class; required stored attributes of the origin classes must be
    assigned or have defaults.
    @raise Rejected per policy. *)

val delete :
  ?methods:Type_methods.t -> Tse_db.Database.t -> Tse_store.Oid.t list -> unit
(** [(<set-expr> delete)]: destroy the objects — removed from {e all}
    classes. *)

val set :
  ?policy:Policy.t ->
  ?methods:Type_methods.t ->
  ?through:cid ->
  Tse_db.Database.t ->
  Tse_store.Oid.t list ->
  (string * Tse_store.Value.t) list ->
  unit
(** [(<set-expr> set [assignments])]. With [~through] and a [Reject]
    policy, an assignment that would expel an object from the class it was
    addressed through is rolled back and refused. *)

val add :
  ?policy:Policy.t -> Tse_db.Database.t -> Tse_store.Oid.t list -> cid -> unit
(** [(<set-expr> add <class>)]: the objects acquire the class's type. *)

val remove :
  ?policy:Policy.t -> Tse_db.Database.t -> Tse_store.Oid.t list -> cid -> unit
(** [(<set-expr> remove <class>)]: the objects lose the class's type. *)
