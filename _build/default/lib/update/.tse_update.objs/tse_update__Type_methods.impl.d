lib/update/type_methods.ml: List Tse_db Tse_schema Tse_store
