lib/update/generic.mli: Tse_db Tse_schema Tse_store Type_methods
