lib/update/type_methods.mli: Tse_db Tse_schema Tse_store
