lib/update/generic.ml: Format List Printf Tse_db Tse_schema Tse_store Type_methods
