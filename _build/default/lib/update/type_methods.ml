module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Schema_graph = Tse_schema.Schema_graph
module Database = Tse_db.Database

type cid = Tse_schema.Klass.cid

type init = (string * Value.t) list

type t = {
  creates : (Database.t -> init -> init) list ref Oid.Tbl.t;
  sets : (Database.t -> Oid.t -> init -> init) list ref Oid.Tbl.t;
  deletes : (Database.t -> Oid.t -> unit) list ref Oid.Tbl.t;
}

let create () =
  { creates = Oid.Tbl.create 8; sets = Oid.Tbl.create 8; deletes = Oid.Tbl.create 8 }

let push tbl cid f =
  match Oid.Tbl.find_opt tbl cid with
  | Some r -> r := !r @ [ f ]
  | None -> Oid.Tbl.replace tbl cid (ref [ f ])

let on_create t cid f = push t.creates cid f
let on_set t cid f = push t.sets cid f
let on_delete t cid f = push t.deletes cid f

let hooks tbl cid = match Oid.Tbl.find_opt tbl cid with Some r -> !r | None -> []

(* the addressed class and its ancestors, most general first *)
let lineage db cid =
  let graph = Database.graph db in
  let ancs = Oid.Set.elements (Schema_graph.ancestors graph cid) in
  List.sort Oid.compare ancs @ [ cid ]

let run_create t db cid init =
  List.fold_left
    (fun init c -> List.fold_left (fun init f -> f db init) init (hooks t.creates c))
    init (lineage db cid)

let run_set t db o assignments =
  let members = List.sort Oid.compare (Database.member_classes db o) in
  List.fold_left
    (fun acc c -> List.fold_left (fun acc f -> f db o acc) acc (hooks t.sets c))
    assignments members

let run_delete t db o =
  let members = List.sort Oid.compare (Database.member_classes db o) in
  List.iter
    (fun c -> List.iter (fun f -> f db o) (hooks t.deletes c))
    members

let hook_count t =
  let count tbl = Oid.Tbl.fold (fun _ r acc -> acc + List.length !r) tbl 0 in
  count t.creates + count t.sets + count t.deletes
