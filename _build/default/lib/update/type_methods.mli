(** Type-specific update methods (paper, Section 3.3).

    "Generic update operations can either be used directly or, if desired,
    overridden by type implementors to define type-specific methods. Then,
    arbitrary computations can be performed in such a method e.g., to
    check some constraints, to update additional information, or even to
    refuse the update."

    A registry maps classes to hooks; {!Generic} consults it when invoked
    with [~methods]. Hooks fire for the class the operation was addressed
    through {e and} for every class the object is (becoming) a member of,
    most general first — so a constraint installed on [Person] also guards
    creation through [Student]. *)

type cid = Tse_schema.Klass.cid
type t

val create : unit -> t

val on_create :
  t ->
  cid ->
  (Tse_db.Database.t ->
  (string * Tse_store.Value.t) list ->
  (string * Tse_store.Value.t) list) ->
  unit
(** Transform (or validate) the initialization list before a create that
    would make the object a member of the class. Raise
    {!Generic.Rejected} to refuse. Multiple hooks compose in installation
    order. *)

val on_set :
  t ->
  cid ->
  (Tse_db.Database.t ->
  Tse_store.Oid.t ->
  (string * Tse_store.Value.t) list ->
  (string * Tse_store.Value.t) list) ->
  unit
(** Transform/validate the assignment list of a set touching a member of
    the class. *)

val on_delete :
  t -> cid -> (Tse_db.Database.t -> Tse_store.Oid.t -> unit) -> unit
(** Observe (or veto, by raising) the destruction of a member. *)

val run_create :
  t ->
  Tse_db.Database.t ->
  cid ->
  (string * Tse_store.Value.t) list ->
  (string * Tse_store.Value.t) list
(** Fold all applicable create hooks (the class and its ancestors, most
    general first) over the initialization list. *)

val run_set :
  t ->
  Tse_db.Database.t ->
  Tse_store.Oid.t ->
  (string * Tse_store.Value.t) list ->
  (string * Tse_store.Value.t) list
(** Fold all set hooks of the object's member classes. *)

val run_delete : t -> Tse_db.Database.t -> Tse_store.Oid.t -> unit

val hook_count : t -> int
