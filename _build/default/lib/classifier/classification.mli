(** The classification algorithm (paper, Section 3.1, [Rundensteiner 92]):
    integrate a freshly derived virtual class into the one consistent
    global schema graph.

    Responsibilities:
    - {b duplicate detection}: a new virtual class whose derivation is
      structurally equal to an existing one is discarded and the existing
      class reused (Section 7 relies on this for version merging);
    - {b placement}: generalization edges are added according to the
      derivation semantics — a [select]/[refine]/[difference] class goes
      below its source, a [hide] class above it (inheriting the source's
      direct superclasses where the type fits), a [union] above both
      arguments and below their minimal common ancestors, an [intersect]
      below both arguments;
    - {b property promotion}: properties the intended type requires that
      the new class does not inherit at its position are materialized as
      local, [promoted] definitions sharing the original [uid] (MultiView
      code promotion — Section 6.2.3);
    - {b edge repair}: direct edges made transitive-redundant by the
      insertion are removed;
    - {b extent maintenance}: objects in the source extents are
      reclassified so the new class's extent is populated. *)

type cid = Tse_schema.Klass.cid

val integrate : Tse_db.Database.t -> cid -> cid
(** [integrate db c] links the (unlinked) virtual class [c] into the
    global schema and returns the surviving class id: [c] itself, or the
    pre-existing duplicate if one was found (in which case [c] has been
    removed from the graph). *)

val find_duplicate : Tse_db.Database.t -> cid -> cid option
(** An existing {e different} virtual class with a structurally equal
    derivation, if any. *)

val intended_type :
  Tse_db.Database.t -> Tse_schema.Klass.derivation -> Tse_schema.Prop.t list
(** The full type the algebra assigns to a class with this derivation
    (Section 3.2): select keeps the source type, hide subtracts, refine
    adds, union takes the common properties (the lowest common supertype),
    intersect merges both, difference keeps the first argument's type. *)
