lib/classifier/classification.mli: Tse_db Tse_schema
