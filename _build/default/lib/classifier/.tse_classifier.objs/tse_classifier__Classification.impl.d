lib/classifier/classification.ml: List String Tse_db Tse_schema Tse_store
