(** Properties: stored attributes and (derived) methods.

    The paper's glossary: {e attribute} = state, {e method} = behaviour,
    {e property} = either. The capacity-augmenting extension of the
    [refine] operator (Section 3.2) is precisely that property definitions
    may describe {e stored} attributes — new independent data — not only
    derived ones.

    Every definition carries a [uid]: a per-database identity that survives
    promotion and inheritance-refine ([refine C1:x for C2] shares the
    source's definition, paper Section 3.2). Two same-named properties with
    different uids are genuinely different properties and conflict; the same
    uid reached along two paths is one property (diamond inheritance). *)

type body =
  | Stored of {
      ty : Tse_store.Value.ty;
      default : Tse_store.Value.t;
      required : bool;
    }  (** a stored attribute occupying a slot *)
  | Method of Expr.t  (** a derived property computed on access *)

type t = {
  uid : int;
  name : string;
  body : body;
  origin : Tse_store.Oid.t;
      (** class at which this definition was (originally) locally defined *)
  promoted : bool;
      (** [true] once MultiView code promotion has moved the definition
          upward; such a definition wins name conflicts for the classes it
          was promoted from (paper, Section 6.2.3, Proposition B). *)
}

val fresh_uid : unit -> int
(** Process-wide unique property identities. *)

val bump_uid_floor : int -> unit
(** Ensure future {!fresh_uid} results exceed the given value — called
    when a catalog with persisted uids is loaded. *)

val make :
  uid:int ->
  name:string ->
  body:body ->
  origin:Tse_store.Oid.t ->
  promoted:bool ->
  t
(** Raw constructor for catalog loading; bumps the uid floor. *)

val stored :
  ?default:Tse_store.Value.t ->
  ?required:bool ->
  origin:Tse_store.Oid.t ->
  string ->
  Tse_store.Value.ty ->
  t

val method_ : origin:Tse_store.Oid.t -> string -> Expr.t -> t

val rename : t -> string -> t
(** Same uid, new name: the user-level disambiguation operation. *)

val promote : t -> t
val reoriginate : t -> Tse_store.Oid.t -> t

val with_fresh_uid : t -> t
(** A copy that is a {e distinct} property (used when a schema change must
    introduce an independent same-shaped attribute). *)

val is_stored : t -> bool
val is_method : t -> bool
val same_prop : t -> t -> bool  (** uid equality *)

val signature_equal : t -> t -> bool
(** Name and body shape equality, ignoring uid/origin. Duplicate-class
    detection compares types by signature. *)

val pp : Format.formatter -> t -> unit
