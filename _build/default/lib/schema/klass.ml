module Oid = Tse_store.Oid

type cid = Oid.t

type derivation =
  | Select of cid * Expr.t
  | Hide of string list * cid
  | Refine of Prop.t list * cid
  | Refine_from of { src : cid; prop_name : string; target : cid }
  | Union of cid * cid
  | Intersect of cid * cid
  | Difference of cid * cid

type kind = Base | Virtual of derivation

type t = {
  cid : cid;
  mutable name : string;
  mutable kind : kind;
  mutable local_props : Prop.t list;
  mutable supers : cid list;
  mutable subs : cid list;
}

let make_base ~cid ~name ~props =
  { cid; name; kind = Base; local_props = props; supers = []; subs = [] }

let make_virtual ~cid ~name derivation props =
  { cid; name; kind = Virtual derivation; local_props = props; supers = [];
    subs = [] }

let is_base t = match t.kind with Base -> true | Virtual _ -> false
let is_virtual t = not (is_base t)

let derivation t =
  match t.kind with Base -> None | Virtual d -> Some d

let sources t =
  match t.kind with
  | Base -> []
  | Virtual d -> begin
    match d with
    | Select (c, _) | Hide (_, c) | Refine (_, c) -> [ c ]
    | Refine_from { src; target; _ } -> [ target; src ]
    | Union (a, b) | Intersect (a, b) | Difference (a, b) -> [ a; b ]
  end

let local_prop t name =
  List.find_opt (fun (p : Prop.t) -> String.equal p.name name) t.local_props

let has_local_prop t name = Option.is_some (local_prop t name)

let add_local_prop t p =
  if has_local_prop t p.Prop.name then
    invalid_arg
      (Printf.sprintf "Klass.add_local_prop: %s already defines %s" t.name
         p.Prop.name);
  t.local_props <- t.local_props @ [ p ]

let remove_local_prop t name =
  t.local_props <-
    List.filter (fun (p : Prop.t) -> not (String.equal p.name name)) t.local_props

let replace_local_prop t p =
  remove_local_prop t p.Prop.name;
  t.local_props <- t.local_props @ [ p ]

let derivation_equal a b =
  match a, b with
  | Select (c1, e1), Select (c2, e2) -> Oid.equal c1 c2 && Expr.equal e1 e2
  | Hide (ps1, c1), Hide (ps2, c2) ->
    Oid.equal c1 c2
    && List.sort String.compare ps1 = List.sort String.compare ps2
  | Refine (ps1, c1), Refine (ps2, c2) ->
    Oid.equal c1 c2
    && List.length ps1 = List.length ps2
    && List.for_all2 Prop.signature_equal ps1 ps2
  | Refine_from a, Refine_from b ->
    Oid.equal a.src b.src && Oid.equal a.target b.target
    && String.equal a.prop_name b.prop_name
  | Union (a1, a2), Union (b1, b2) | Intersect (a1, a2), Intersect (b1, b2) ->
    (* union and intersect are commutative *)
    (Oid.equal a1 b1 && Oid.equal a2 b2) || (Oid.equal a1 b2 && Oid.equal a2 b1)
  | Difference (a1, a2), Difference (b1, b2) -> Oid.equal a1 b1 && Oid.equal a2 b2
  | ( ( Select _ | Hide _ | Refine _ | Refine_from _ | Union _ | Intersect _
      | Difference _ ),
      _ ) ->
    false

let pp_derivation ppf = function
  | Select (c, e) -> Format.fprintf ppf "select from %a where %a" Oid.pp c Expr.pp e
  | Hide (ps, c) ->
    Format.fprintf ppf "hide %s from %a" (String.concat ", " ps) Oid.pp c
  | Refine (ps, c) ->
    Format.fprintf ppf "refine %a for %a"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
         Prop.pp)
      ps Oid.pp c
  | Refine_from { src; prop_name; target } ->
    Format.fprintf ppf "refine %a:%s for %a" Oid.pp src prop_name Oid.pp target
  | Union (a, b) -> Format.fprintf ppf "union(%a, %a)" Oid.pp a Oid.pp b
  | Intersect (a, b) -> Format.fprintf ppf "intersect(%a, %a)" Oid.pp a Oid.pp b
  | Difference (a, b) -> Format.fprintf ppf "difference(%a, %a)" Oid.pp a Oid.pp b

let pp ppf t =
  let kind =
    match t.kind with
    | Base -> "base"
    | Virtual d -> Format.asprintf "virtual <- %a" pp_derivation d
  in
  Format.fprintf ppf "@[<v 2>%s (%a, %s)@ props: %a@]" t.name Oid.pp t.cid kind
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Prop.pp)
    t.local_props
