(** Structural invariants of a global schema, used by the test suites.

    [check] returns human-readable violation descriptions; an empty list
    means the schema is well-formed. The property-based tests assert
    emptiness after every randomized schema-change sequence. *)

val check : Schema_graph.t -> string list
(** Verifies:
    - the generalization graph is acyclic;
    - edge lists are symmetric ([a ∈ subs b ⇔ b ∈ supers a]);
    - every class except the root has at least one superclass and is a
      descendant of the root;
    - the root has no superclasses;
    - class names are unique;
    - every virtual class's source classes exist;
    - no class locally defines two properties with one name. *)

val check_exn : Schema_graph.t -> unit
(** @raise Failure listing all violations, if any. *)
