module Oid = Tse_store.Oid
module Value = Tse_store.Value
module SMap = Map.Make (String)

type cid = Klass.cid
type entry = Single of Prop.t | Conflict of Prop.t list

(* Candidate sets: distinct properties (by uid) visible under one name. *)
type candidates = Prop.t list

let add_candidate (p : Prop.t) cs =
  if List.exists (Prop.same_prop p) cs then cs else cs @ [ p ]

let merge_candidates a b = List.fold_left (fun acc p -> add_candidate p acc) a b

(* visible g cid: name -> candidates, with local definitions overriding. *)
let visible graph cid =
  let memo = Oid.Tbl.create 16 in
  let rec go cid =
    match Oid.Tbl.find_opt memo cid with
    | Some m -> m
    | None ->
      let k = Schema_graph.find_exn graph cid in
      let inherited =
        List.fold_left
          (fun acc sup ->
            SMap.union (fun _ a b -> Some (merge_candidates a b)) acc (go sup))
          SMap.empty k.supers
      in
      let m =
        List.fold_left
          (fun acc (p : Prop.t) -> SMap.add p.name [ p ] acc)
          inherited k.local_props
      in
      Oid.Tbl.replace memo cid m;
      m
  in
  go cid

let resolve (cs : candidates) =
  match cs with
  | [] -> assert false
  | [ p ] -> Single p
  | ps -> begin
    (* Promoted definitions take priority (Section 6.2.3, Proposition B). *)
    match List.filter (fun (p : Prop.t) -> p.promoted) ps with
    | [ p ] -> Single p
    | _ -> Conflict ps
  end

let full_type graph cid =
  visible graph cid |> SMap.bindings
  |> List.map (fun (name, cs) -> name, resolve cs)

let find graph cid name =
  Option.map resolve (SMap.find_opt name (visible graph cid))

let find_usable graph cid name =
  match find graph cid name with
  | Some (Single p) -> Some p
  | Some (Conflict _) | None -> None

let has_prop graph cid name = SMap.mem name (visible graph cid)
let prop_names graph cid = SMap.bindings (visible graph cid) |> List.map fst

let usable_props graph cid =
  full_type graph cid
  |> List.filter_map (fun (_, e) ->
         match e with Single p -> Some p | Conflict _ -> None)

let stored_attrs graph cid = List.filter Prop.is_stored (usable_props graph cid)
let methods graph cid = List.filter Prop.is_method (usable_props graph cid)

let inherited_candidates graph cid name =
  let k = Schema_graph.find_exn graph cid in
  List.fold_left
    (fun acc sup ->
      match SMap.find_opt name (visible graph sup) with
      | Some cs -> merge_candidates acc cs
      | None -> acc)
    [] k.supers

let is_uppermost_in graph ~view cid name =
  has_prop graph cid name
  && Oid.Set.for_all
       (fun anc -> not (has_prop graph anc name))
       (Oid.Set.inter (Schema_graph.ancestors graph cid) view)

let body_signature = function
  | Prop.Stored { ty; required; _ } ->
    Printf.sprintf "stored:%s%s" (Value.ty_to_string ty)
      (if required then "!" else "")
  | Prop.Method e -> Printf.sprintf "method:%s" (Expr.to_string e)

let type_signature graph cid =
  full_type graph cid
  |> List.map (fun (name, e) ->
         match e with
         | Single p -> Printf.sprintf "%s=%s" name (body_signature p.body)
         | Conflict ps ->
           Printf.sprintf "%s=conflict{%s}" name
             (String.concat "|"
                (List.sort String.compare
                   (List.map (fun (p : Prop.t) -> body_signature p.Prop.body) ps))))
  |> String.concat ";"

let type_equal graph a b =
  String.equal (type_signature graph a) (type_signature graph b)

let subtype_of graph ~sub ~sup =
  List.for_all
    (fun (p : Prop.t) ->
      match find_usable graph sub p.name with
      | Some q -> String.equal (body_signature p.body) (body_signature q.body)
      | None -> false)
    (usable_props graph sup)

let pp_entry ppf = function
  | Single p -> Prop.pp ppf p
  | Conflict ps ->
    Format.fprintf ppf "CONFLICT{%a}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " | ")
         Prop.pp)
      ps
