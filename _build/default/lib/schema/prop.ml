module Value = Tse_store.Value
module Oid = Tse_store.Oid

type body =
  | Stored of { ty : Value.ty; default : Value.t; required : bool }
  | Method of Expr.t

type t = {
  uid : int;
  name : string;
  body : body;
  origin : Oid.t;
  promoted : bool;
}

let uid_counter = ref 0

let fresh_uid () =
  incr uid_counter;
  !uid_counter

let bump_uid_floor n = if n > !uid_counter then uid_counter := n

let make ~uid ~name ~body ~origin ~promoted =
  bump_uid_floor uid;
  { uid; name; body; origin; promoted }

let stored ?(default = Value.Null) ?(required = false) ~origin name ty =
  { uid = fresh_uid (); name; body = Stored { ty; default; required }; origin;
    promoted = false }

let method_ ~origin name expr =
  { uid = fresh_uid (); name; body = Method expr; origin; promoted = false }

let rename t name = { t with name }
let promote t = { t with promoted = true }
let reoriginate t origin = { t with origin }
let with_fresh_uid t = { t with uid = fresh_uid () }
let is_stored t = match t.body with Stored _ -> true | Method _ -> false
let is_method t = match t.body with Method _ -> true | Stored _ -> false
let same_prop a b = Int.equal a.uid b.uid

let body_equal a b =
  match a, b with
  | Stored x, Stored y ->
    Value.ty_equal x.ty y.ty && Value.equal x.default y.default
    && Bool.equal x.required y.required
  | Method x, Method y -> Expr.equal x y
  | (Stored _ | Method _), _ -> false

let signature_equal a b = String.equal a.name b.name && body_equal a.body b.body

let pp ppf t =
  match t.body with
  | Stored { ty; required; _ } ->
    Format.fprintf ppf "%s : %a%s" t.name Value.pp_ty ty
      (if required then " [required]" else "")
  | Method e -> Format.fprintf ppf "%s() = %a" t.name Expr.pp e
