(** Class records: base classes and virtual classes with their derivations.

    A virtual class records the object-algebra expression that derives it
    (paper, Section 3.2). The derivation DAG drives update propagation
    (Section 3.4), origin-class computation (Section 6.7) and Theorem 1's
    updatability argument. ["class"] being an OCaml keyword, the module is
    named [Klass]. *)

type cid = Tse_store.Oid.t
(** Class identifiers share the database's OID space. *)

(** How a virtual class derives from its source class(es). Constructor
    order follows Section 3.2. *)
type derivation =
  | Select of cid * Expr.t
  | Hide of string list * cid
  | Refine of Prop.t list * cid
      (** capacity-augmenting refine: the listed properties (stored and/or
          derived) are added; each becomes a local property of the virtual
          class *)
  | Refine_from of { src : cid; prop_name : string; target : cid }
      (** [refine C1:x for C2] — inherit/share C1's property x into C2 *)
  | Union of cid * cid
  | Intersect of cid * cid
  | Difference of cid * cid

type kind = Base | Virtual of derivation

type t = {
  cid : cid;
  mutable name : string;
  mutable kind : kind;
  mutable local_props : Prop.t list;
      (** properties introduced or promoted at this class; inherited
          properties are {e not} listed here *)
  mutable supers : cid list;  (** direct superclasses *)
  mutable subs : cid list;  (** direct subclasses *)
}

val make_base : cid:cid -> name:string -> props:Prop.t list -> t
val make_virtual : cid:cid -> name:string -> derivation -> Prop.t list -> t

val is_base : t -> bool
val is_virtual : t -> bool
val derivation : t -> derivation option

val sources : t -> cid list
(** Direct source classes of a virtual class; [[]] for a base class. *)

val local_prop : t -> string -> Prop.t option
val has_local_prop : t -> string -> bool
val add_local_prop : t -> Prop.t -> unit
(** @raise Invalid_argument if a local property with that name exists. *)

val remove_local_prop : t -> string -> unit
val replace_local_prop : t -> Prop.t -> unit

val derivation_equal : derivation -> derivation -> bool
(** Structural equality of derivations (same operator, same sources, same
    parameters). The classifier's duplicate detection relies on it. *)

val pp : Format.formatter -> t -> unit
val pp_derivation : Format.formatter -> derivation -> unit
