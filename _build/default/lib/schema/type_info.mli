(** Full-type computation: which properties a class exposes, after full
    inheritance, overriding and the paper's name-conflict rules.

    Semantics implemented here (paper, Sections 6.1.1, 6.2.3, 6.5.1):
    - {e full inheritance}: every property of a superclass is inherited by
      its subclasses;
    - {e overriding}: a locally defined property suppresses same-named
      inherited ones and blocks their propagation further down;
    - {e multiple-inheritance conflicts}: two same-named properties with
      different identities may be inherited into one class, but the name is
      ambiguous and cannot be invoked until the user renames — {e unless}
      exactly one candidate is a promoted definition, which then has
      priority (Proposition B of Section 6.2.3);
    - the same property reached along several paths (diamond) is one
      property, not a conflict (identity = {!Prop.t.uid}). *)

type cid = Klass.cid

type entry =
  | Single of Prop.t  (** unambiguous (locally defined or inherited) *)
  | Conflict of Prop.t list
      (** ambiguous candidates, each a distinct property *)

val full_type : Schema_graph.t -> cid -> (string * entry) list
(** All property names visible at the class, sorted by name. *)

val find : Schema_graph.t -> cid -> string -> entry option

val find_usable : Schema_graph.t -> cid -> string -> Prop.t option
(** The property if the name resolves unambiguously; [None] if undefined
    or ambiguous. *)

val has_prop : Schema_graph.t -> cid -> string -> bool
(** Defined at all (possibly ambiguous). *)

val prop_names : Schema_graph.t -> cid -> string list

val stored_attrs : Schema_graph.t -> cid -> Prop.t list
(** Unambiguous stored attributes of the full type. *)

val methods : Schema_graph.t -> cid -> Prop.t list

val inherited_candidates : Schema_graph.t -> cid -> string -> Prop.t list
(** Candidates for the name contributed by superclasses only — i.e. what
    the class {e would} inherit, ignoring its own local definition. The
    delete-attribute algorithm uses this to find a suppressed attribute to
    restore (Section 6.2.2). *)

val is_uppermost_in :
  Schema_graph.t -> view:Tse_store.Oid.Set.t -> cid -> string -> bool
(** Is this class the uppermost class {e within the view} exposing the
    property — the paper's view-relative notion of "locally defined"
    (Section 6.2.1)? True when the class has the property and no strict
    ancestor inside [view] has it. *)

val type_signature : Schema_graph.t -> cid -> string
(** Canonical textual signature of the full type (names + shapes, uids
    ignored, conflicts marked). Equal signatures mean equal types for
    duplicate detection and for the Proposition A checks. *)

val type_equal : Schema_graph.t -> cid -> cid -> bool

val subtype_of : Schema_graph.t -> sub:cid -> sup:cid -> bool
(** Structural: every usable property of [sup] appears with an equal shape
    in [sub]'s full type. *)

val pp_entry : Format.formatter -> entry -> unit
