module Value = Tse_store.Value
module Oid = Tse_store.Oid

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div

type t =
  | Const of Value.t
  | Attr of string
  | Self
  | Not of t
  | And of t * t
  | Or of t * t
  | Cmp of cmp * t * t
  | Arith of arith * t * t
  | Concat of t * t
  | Is_null of t
  | In_class of string
  | If of t * t * t

type env = {
  self : Oid.t;
  get : string -> Value.t;
  member_of : string -> bool;
}

exception Unknown_property of string
exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let as_bool = function
  | Value.Bool b -> b
  | Value.Null -> false
  | v -> type_error "expected bool, got %a" Value.pp v

let cmp_result op c =
  match op with
  | Eq -> c = 0
  | Ne -> not (Int.equal c 0)
  | Lt -> Stdlib.( < ) c 0
  | Le -> Stdlib.( <= ) c 0
  | Gt -> Stdlib.( > ) c 0
  | Ge -> Stdlib.( >= ) c 0

let eval_cmp op a b =
  match a, b with
  (* Null only supports (in)equality; ordering against null is an error. *)
  | Value.Null, _ | _, Value.Null -> begin
    match op with
    | Eq -> Value.Bool (Value.equal a b)
    | Ne -> Value.Bool (not (Value.equal a b))
    | Lt | Le | Gt | Ge -> type_error "ordering comparison with null"
  end
  | Value.Int x, Value.Float y ->
    Value.Bool (cmp_result op (Float.compare (float_of_int x) y))
  | Value.Float x, Value.Int y ->
    Value.Bool (cmp_result op (Float.compare x (float_of_int y)))
  | a, b ->
    if Value.tag_compatible a b then Value.Bool (cmp_result op (Value.compare a b))
    else type_error "comparison between %a and %a" Value.pp a Value.pp b

let eval_arith op a b =
  let float_op x y =
    match op with
    | Add -> x +. y
    | Sub -> x -. y
    | Mul -> x *. y
    | Div -> if y = 0. then type_error "division by zero" else x /. y
  in
  match a, b with
  | Value.Int x, Value.Int y -> begin
    match op with
    | Add -> Value.Int (x + y)
    | Sub -> Value.Int (x - y)
    | Mul -> Value.Int (x * y)
    | Div -> if y = 0 then type_error "division by zero" else Value.Int (x / y)
  end
  | Value.Int x, Value.Float y -> Value.Float (float_op (float_of_int x) y)
  | Value.Float x, Value.Int y -> Value.Float (float_op x (float_of_int y))
  | Value.Float x, Value.Float y -> Value.Float (float_op x y)
  | a, b -> type_error "arithmetic on %a and %a" Value.pp a Value.pp b

let rec eval env = function
  | Const v -> v
  | Attr name -> env.get name
  | Self -> Value.Ref env.self
  | Not e -> Value.Bool (not (as_bool (eval env e)))
  | And (a, b) -> Value.Bool (as_bool (eval env a) && as_bool (eval env b))
  | Or (a, b) -> Value.Bool (as_bool (eval env a) || as_bool (eval env b))
  | Cmp (op, a, b) -> eval_cmp op (eval env a) (eval env b)
  | Arith (op, a, b) -> eval_arith op (eval env a) (eval env b)
  | Concat (a, b) -> begin
    match eval env a, eval env b with
    | Value.String x, Value.String y -> Value.String (x ^ y)
    | a, b -> type_error "concat of %a and %a" Value.pp a Value.pp b
  end
  | Is_null e -> Value.Bool (Value.equal (eval env e) Value.Null)
  | In_class c -> Value.Bool (env.member_of c)
  | If (c, t, e) -> if as_bool (eval env c) then eval env t else eval env e

let eval_bool env e = as_bool (eval env e)

let rec equal a b =
  match a, b with
  | Const x, Const y -> Value.equal x y
  | Attr x, Attr y -> String.equal x y
  | Self, Self -> true
  | Not x, Not y -> equal x y
  | And (a1, a2), And (b1, b2) | Or (a1, a2), Or (b1, b2) ->
    equal a1 b1 && equal a2 b2
  | Cmp (o1, a1, a2), Cmp (o2, b1, b2) -> o1 = o2 && equal a1 b1 && equal a2 b2
  | Arith (o1, a1, a2), Arith (o2, b1, b2) ->
    o1 = o2 && equal a1 b1 && equal a2 b2
  | Concat (a1, a2), Concat (b1, b2) -> equal a1 b1 && equal a2 b2
  | Is_null x, Is_null y -> equal x y
  | In_class x, In_class y -> String.equal x y
  | If (a1, a2, a3), If (b1, b2, b3) -> equal a1 b1 && equal a2 b2 && equal a3 b3
  | ( ( Const _ | Attr _ | Self | Not _ | And _ | Or _ | Cmp _ | Arith _
      | Concat _ | Is_null _ | In_class _ | If _ ),
      _ ) ->
    false

let rec collect_attrs acc = function
  | Const _ | Self | In_class _ -> acc
  | Attr name -> name :: acc
  | Not e | Is_null e -> collect_attrs acc e
  | And (a, b) | Or (a, b) | Cmp (_, a, b) | Arith (_, a, b) | Concat (a, b) ->
    collect_attrs (collect_attrs acc a) b
  | If (a, b, c) -> collect_attrs (collect_attrs (collect_attrs acc a) b) c

let free_attrs e = List.sort_uniq String.compare (collect_attrs [] e)

let rec collect_classes acc = function
  | Const _ | Self | Attr _ -> acc
  | In_class c -> c :: acc
  | Not e | Is_null e -> collect_classes acc e
  | And (a, b) | Or (a, b) | Cmp (_, a, b) | Arith (_, a, b) | Concat (a, b) ->
    collect_classes (collect_classes acc a) b
  | If (a, b, c) ->
    collect_classes (collect_classes (collect_classes acc a) b) c

let referenced_classes e = List.sort_uniq String.compare (collect_classes [] e)

let rec rename_attr ~old_name ~new_name = function
  | Const _ as e -> e
  | Attr n -> if String.equal n old_name then Attr new_name else Attr n
  | Self -> Self
  | Not e -> Not (rename_attr ~old_name ~new_name e)
  | And (a, b) ->
    And (rename_attr ~old_name ~new_name a, rename_attr ~old_name ~new_name b)
  | Or (a, b) ->
    Or (rename_attr ~old_name ~new_name a, rename_attr ~old_name ~new_name b)
  | Cmp (o, a, b) ->
    Cmp (o, rename_attr ~old_name ~new_name a, rename_attr ~old_name ~new_name b)
  | Arith (o, a, b) ->
    Arith
      (o, rename_attr ~old_name ~new_name a, rename_attr ~old_name ~new_name b)
  | Concat (a, b) ->
    Concat
      (rename_attr ~old_name ~new_name a, rename_attr ~old_name ~new_name b)
  | Is_null e -> Is_null (rename_attr ~old_name ~new_name e)
  | In_class _ as e -> e
  | If (a, b, c) ->
    If
      ( rename_attr ~old_name ~new_name a,
        rename_attr ~old_name ~new_name b,
        rename_attr ~old_name ~new_name c )

let cmp_symbol = function
  | Eq -> "="
  | Ne -> "<>"
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let arith_symbol = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let rec pp ppf = function
  | Const v -> Value.pp ppf v
  | Attr n -> Format.pp_print_string ppf n
  | Self -> Format.pp_print_string ppf "self"
  | Not e -> Format.fprintf ppf "not(%a)" pp e
  | And (a, b) -> Format.fprintf ppf "(%a and %a)" pp a pp b
  | Or (a, b) -> Format.fprintf ppf "(%a or %a)" pp a pp b
  | Cmp (o, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (cmp_symbol o) pp b
  | Arith (o, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (arith_symbol o) pp b
  | Concat (a, b) -> Format.fprintf ppf "(%a ^ %a)" pp a pp b
  | Is_null e -> Format.fprintf ppf "isnull(%a)" pp e
  | In_class c -> Format.fprintf ppf "in_class(%s)" c
  | If (a, b, c) -> Format.fprintf ppf "(if %a then %a else %a)" pp a pp b pp c

let to_string e = Format.asprintf "%a" pp e

(* Catalog text encoding: one tag character per constructor, operands in
   sequence; strings are length-prefixed like Value's. *)

let add_str buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let cmp_tag = function Eq -> 'e' | Ne -> 'n' | Lt -> 'l' | Le -> 'm' | Gt -> 'g' | Ge -> 'h'
let arith_tag = function Add -> 'a' | Sub -> 's' | Mul -> 'm' | Div -> 'd'

let rec encode buf = function
  | Const v ->
    Buffer.add_char buf 'K';
    Value.encode buf v
  | Attr name ->
    Buffer.add_char buf 'A';
    add_str buf name
  | Self -> Buffer.add_char buf 'Z'
  | Not e ->
    Buffer.add_char buf '!';
    encode buf e
  | And (a, b) ->
    Buffer.add_char buf '&';
    encode buf a;
    encode buf b
  | Or (a, b) ->
    Buffer.add_char buf '|';
    encode buf a;
    encode buf b
  | Cmp (op, a, b) ->
    Buffer.add_char buf 'C';
    Buffer.add_char buf (cmp_tag op);
    encode buf a;
    encode buf b
  | Arith (op, a, b) ->
    Buffer.add_char buf 'R';
    Buffer.add_char buf (arith_tag op);
    encode buf a;
    encode buf b
  | Concat (a, b) ->
    Buffer.add_char buf '^';
    encode buf a;
    encode buf b
  | Is_null e ->
    Buffer.add_char buf '0';
    encode buf e
  | In_class c ->
    Buffer.add_char buf 'M';
    add_str buf c
  | If (a, b, c) ->
    Buffer.add_char buf '?';
    encode buf a;
    encode buf b;
    encode buf c

let fail_at pos what = failwith (Printf.sprintf "Expr.decode: %s at %d" what pos)

let read_str s pos =
  let j =
    try String.index_from s pos ':'
    with Not_found -> fail_at pos "unterminated length"
  in
  let n = int_of_string (String.sub s pos (j - pos)) in
  if j + 1 + n > String.length s then fail_at pos "truncated string";
  (String.sub s (j + 1) n, j + 1 + n)

let cmp_of_tag pos = function
  | 'e' -> Eq | 'n' -> Ne | 'l' -> Lt | 'm' -> Le | 'g' -> Gt | 'h' -> Ge
  | c -> fail_at pos (Printf.sprintf "bad cmp tag %C" c)

let arith_of_tag pos = function
  | 'a' -> Add | 's' -> Sub | 'm' -> Mul | 'd' -> Div
  | c -> fail_at pos (Printf.sprintf "bad arith tag %C" c)

let rec decode s pos =
  if pos >= String.length s then fail_at pos "eof";
  match s.[pos] with
  | 'K' ->
    let v, p = Value.decode s (pos + 1) in
    (Const v, p)
  | 'A' ->
    let name, p = read_str s (pos + 1) in
    (Attr name, p)
  | 'Z' -> (Self, pos + 1)
  | '!' ->
    let e, p = decode s (pos + 1) in
    (Not e, p)
  | '&' ->
    let a, p = decode s (pos + 1) in
    let b, p = decode s p in
    (And (a, b), p)
  | '|' ->
    let a, p = decode s (pos + 1) in
    let b, p = decode s p in
    (Or (a, b), p)
  | 'C' ->
    if pos + 1 >= String.length s then fail_at pos "eof in cmp";
    let op = cmp_of_tag (pos + 1) s.[pos + 1] in
    let a, p = decode s (pos + 2) in
    let b, p = decode s p in
    (Cmp (op, a, b), p)
  | 'R' ->
    if pos + 1 >= String.length s then fail_at pos "eof in arith";
    let op = arith_of_tag (pos + 1) s.[pos + 1] in
    let a, p = decode s (pos + 2) in
    let b, p = decode s p in
    (Arith (op, a, b), p)
  | '^' ->
    let a, p = decode s (pos + 1) in
    let b, p = decode s p in
    (Concat (a, b), p)
  | '0' ->
    let e, p = decode s (pos + 1) in
    (Is_null e, p)
  | 'M' ->
    let c, p = read_str s (pos + 1) in
    (In_class c, p)
  | '?' ->
    let a, p = decode s (pos + 1) in
    let b, p = decode s p in
    let c, p = decode s p in
    (If (a, b, c), p)
  | c -> fail_at pos (Printf.sprintf "bad tag %C" c)

let int i = Const (Value.Int i)
let str s = Const (Value.String s)
let bool b = Const (Value.Bool b)
let attr n = Attr n
let ( === ) a b = Cmp (Eq, a, b)
let ( <> ) a b = Cmp (Ne, a, b)
let ( < ) a b = Cmp (Lt, a, b)
let ( <= ) a b = Cmp (Le, a, b)
let ( > ) a b = Cmp (Gt, a, b)
let ( >= ) a b = Cmp (Ge, a, b)
let ( && ) a b = And (a, b)
let ( || ) a b = Or (a, b)
