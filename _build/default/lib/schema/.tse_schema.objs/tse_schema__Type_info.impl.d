lib/schema/type_info.ml: Expr Format Klass List Map Option Printf Prop Schema_graph String Tse_store
