lib/schema/prop.ml: Bool Expr Format Int String Tse_store
