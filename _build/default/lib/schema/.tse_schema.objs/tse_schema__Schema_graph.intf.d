lib/schema/schema_graph.mli: Format Klass Prop Tse_store
