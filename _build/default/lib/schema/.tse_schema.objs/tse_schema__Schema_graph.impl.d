lib/schema/schema_graph.ml: Format Klass List Printf Prop Queue String Tse_store
