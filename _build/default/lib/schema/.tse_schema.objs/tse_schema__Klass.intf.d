lib/schema/klass.mli: Expr Format Prop Tse_store
