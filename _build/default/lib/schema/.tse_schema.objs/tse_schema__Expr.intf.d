lib/schema/expr.mli: Buffer Format Tse_store
