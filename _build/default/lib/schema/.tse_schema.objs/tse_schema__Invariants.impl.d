lib/schema/invariants.ml: Format Hashtbl Klass List Prop Schema_graph String Tse_store
