lib/schema/klass.ml: Expr Format List Option Printf Prop String Tse_store
