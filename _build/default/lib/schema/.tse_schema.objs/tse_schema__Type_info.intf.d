lib/schema/type_info.mli: Format Klass Prop Schema_graph Tse_store
