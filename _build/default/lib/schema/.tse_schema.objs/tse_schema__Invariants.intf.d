lib/schema/invariants.mli: Schema_graph
