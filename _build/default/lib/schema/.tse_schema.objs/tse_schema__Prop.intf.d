lib/schema/prop.mli: Expr Format Tse_store
