lib/schema/expr.ml: Buffer Float Format Int List Printf Stdlib String Tse_store
