lib/concurrency/occ.ml: List Option Printf String Tse_db Tse_store
