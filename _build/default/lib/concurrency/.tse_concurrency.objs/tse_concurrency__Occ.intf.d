lib/concurrency/occ.mli: Tse_db Tse_store
