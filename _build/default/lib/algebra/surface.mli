(** Textual surface syntax for the object algebra: the paper's notation
    (Section 3.2), parseable so views can be defined interactively:

    {v
    defineVC AgelessPerson as (hide age from Person)
    defineVC Adult as (select from Person where age >= 18)
    defineVC Student' as (refine register : bool for Student)
    defineVC Both as (union (Student, Staff))
    defineVC Rich as (select from (hide ssn from Person)
                      where salary + bonus > 100000)
    v}

    Expressions support integers, floats, strings ("..."), [true], [false],
    [null], [self], attribute names, [in_class(Name)], [isnull(e)],
    comparison ([= <> < <= > >=]), arithmetic ([+ - * /]), string
    concatenation ([^]), [and], [or], [not] and [if e then e else e]. *)

exception Parse_error of string
(** Carries a message including the offending position. *)

val parse_expr : string -> Tse_schema.Expr.t
(** @raise Parse_error on malformed input. *)

val parse_query : string -> Ops.query
(** A query without the [defineVC] wrapper. @raise Parse_error. *)

val parse_define : string -> string * Ops.query
(** A full ["defineVC <name> as <query>"] statement. @raise Parse_error. *)

val define : Tse_db.Database.t -> string -> Tse_schema.Klass.cid
(** Parse and execute a [defineVC] statement.
    @raise Parse_error on syntax errors.
    @raise Ops.Error on semantic errors. *)
