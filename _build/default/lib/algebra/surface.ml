module Value = Tse_store.Value
module Oid = Tse_store.Oid
module Expr = Tse_schema.Expr
module Prop = Tse_schema.Prop

exception Parse_error of string

let parse_error fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

(* ---------------- lexer ---------------- *)

type token =
  | INT of int
  | FLOAT of float
  | STRING of string
  | IDENT of string  (** lowercase-ish: attributes, keywords *)
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | OP of string  (** = <> < <= > >= + - * / ^ *)
  | EOF

let keywords =
  [ "select"; "from"; "where"; "hide"; "refine"; "for"; "union"; "intersect";
    "difference"; "and"; "or"; "not"; "true"; "false"; "null"; "self";
    "in_class"; "isnull"; "if"; "then"; "else"; "defineVC"; "as" ]

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '\''

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let emit tok = tokens := tok :: !tokens in
  let rec go i =
    if i >= n then ()
    else
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> go (i + 1)
      | '(' ->
        emit LPAREN;
        go (i + 1)
      | ')' ->
        emit RPAREN;
        go (i + 1)
      | ',' ->
        emit COMMA;
        go (i + 1)
      | ':' ->
        emit COLON;
        go (i + 1)
      | '"' ->
        let j =
          try String.index_from input (i + 1) '"'
          with Not_found -> parse_error "unterminated string at %d" i
        in
        emit (STRING (String.sub input (i + 1) (j - i - 1)));
        go (j + 1)
      | '<' when i + 1 < n && input.[i + 1] = '>' ->
        emit (OP "<>");
        go (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '=' ->
        emit (OP "<=");
        go (i + 2)
      | '>' when i + 1 < n && input.[i + 1] = '=' ->
        emit (OP ">=");
        go (i + 2)
      | ('=' | '<' | '>' | '+' | '-' | '*' | '/' | '^') as c ->
        emit (OP (String.make 1 c));
        go (i + 1)
      | c when c >= '0' && c <= '9' ->
        let j = ref i in
        let dotted = ref false in
        while
          !j < n
          && ((input.[!j] >= '0' && input.[!j] <= '9')
             || (input.[!j] = '.' && not !dotted))
        do
          if input.[!j] = '.' then dotted := true;
          incr j
        done;
        let lit = String.sub input i (!j - i) in
        if !dotted then emit (FLOAT (float_of_string lit))
        else emit (INT (int_of_string lit));
        go !j
      | c when is_ident_char c ->
        let j = ref i in
        while !j < n && is_ident_char input.[!j] do
          incr j
        done;
        emit (IDENT (String.sub input i (!j - i)));
        go !j
      | c -> parse_error "unexpected character %C at %d" c i
  in
  go 0;
  List.rev (EOF :: !tokens)

(* ---------------- token stream ---------------- *)

type stream = { mutable toks : token list }

let peek st = match st.toks with t :: _ -> t | [] -> EOF

let advance st =
  match st.toks with _ :: rest -> st.toks <- rest | [] -> ()

let token_str = function
  | INT i -> string_of_int i
  | FLOAT f -> string_of_float f
  | STRING s -> Printf.sprintf "%S" s
  | IDENT s -> s
  | LPAREN -> "("
  | RPAREN -> ")"
  | COMMA -> ","
  | COLON -> ":"
  | OP s -> s
  | EOF -> "<eof>"

let expect st tok =
  if peek st = tok then advance st
  else parse_error "expected %s, found %s" (token_str tok) (token_str (peek st))

let expect_ident st kw =
  match peek st with
  | IDENT s when String.equal s kw -> advance st
  | t -> parse_error "expected %s, found %s" kw (token_str t)

let any_ident st =
  match peek st with
  | IDENT s ->
    advance st;
    s
  | t -> parse_error "expected an identifier, found %s" (token_str t)

(* ---------------- expression parser ---------------- *)

(* precedence: or < and < cmp < concat < add < mul < unary *)
let rec parse_or st =
  let left = parse_and st in
  match peek st with
  | IDENT "or" ->
    advance st;
    Expr.Or (left, parse_or st)
  | _ -> left

and parse_and st =
  let left = parse_not st in
  match peek st with
  | IDENT "and" ->
    advance st;
    Expr.And (left, parse_and st)
  | _ -> left

(* [not] binds looser than comparison: [not age < 10] = [not (age < 10)] *)
and parse_not st =
  match peek st with
  | IDENT "not" ->
    advance st;
    Expr.Not (parse_not st)
  | _ -> parse_cmp st

and parse_cmp st =
  let left = parse_concat st in
  match peek st with
  | OP "=" ->
    advance st;
    Expr.Cmp (Expr.Eq, left, parse_concat st)
  | OP "<>" ->
    advance st;
    Expr.Cmp (Expr.Ne, left, parse_concat st)
  | OP "<" ->
    advance st;
    Expr.Cmp (Expr.Lt, left, parse_concat st)
  | OP "<=" ->
    advance st;
    Expr.Cmp (Expr.Le, left, parse_concat st)
  | OP ">" ->
    advance st;
    Expr.Cmp (Expr.Gt, left, parse_concat st)
  | OP ">=" ->
    advance st;
    Expr.Cmp (Expr.Ge, left, parse_concat st)
  | _ -> left

and parse_concat st =
  let left = parse_add st in
  match peek st with
  | OP "^" ->
    advance st;
    Expr.Concat (left, parse_concat st)
  | _ -> left

and parse_add st =
  let rec loop left =
    match peek st with
    | OP "+" ->
      advance st;
      loop (Expr.Arith (Expr.Add, left, parse_mul st))
    | OP "-" ->
      advance st;
      loop (Expr.Arith (Expr.Sub, left, parse_mul st))
    | _ -> left
  in
  loop (parse_mul st)

and parse_mul st =
  let rec loop left =
    match peek st with
    | OP "*" ->
      advance st;
      loop (Expr.Arith (Expr.Mul, left, parse_unary st))
    | OP "/" ->
      advance st;
      loop (Expr.Arith (Expr.Div, left, parse_unary st))
    | _ -> left
  in
  loop (parse_unary st)

and parse_unary st = parse_atom st

and parse_atom st =
  match peek st with
  | INT i ->
    advance st;
    Expr.Const (Value.Int i)
  | FLOAT f ->
    advance st;
    Expr.Const (Value.Float f)
  | STRING s ->
    advance st;
    Expr.Const (Value.String s)
  | IDENT "true" ->
    advance st;
    Expr.Const (Value.Bool true)
  | IDENT "false" ->
    advance st;
    Expr.Const (Value.Bool false)
  | IDENT "null" ->
    advance st;
    Expr.Const Value.Null
  | IDENT "self" ->
    advance st;
    Expr.Self
  | IDENT "in_class" ->
    advance st;
    expect st LPAREN;
    let name = any_ident st in
    expect st RPAREN;
    Expr.In_class name
  | IDENT "isnull" ->
    advance st;
    expect st LPAREN;
    let e = parse_or st in
    expect st RPAREN;
    Expr.Is_null e
  | IDENT "if" ->
    advance st;
    let c = parse_or st in
    expect_ident st "then";
    let t = parse_or st in
    expect_ident st "else";
    let e = parse_or st in
    Expr.If (c, t, e)
  | IDENT name when not (List.mem name keywords) ->
    advance st;
    Expr.Attr name
  | LPAREN ->
    advance st;
    let e = parse_or st in
    expect st RPAREN;
    e
  | t -> parse_error "unexpected %s in expression" (token_str t)

(* ---------------- query parser ---------------- *)

let parse_ty = function
  | "int" -> Value.TInt
  | "float" -> Value.TFloat
  | "string" -> Value.TString
  | "bool" -> Value.TBool
  | other -> parse_error "unknown attribute type %s" other

(* property definitions for refine: name : type, ... or name = expr, ... *)
let rec parse_prop_defs st acc =
  let name = any_ident st in
  let def =
    match peek st with
    | COLON ->
      advance st;
      let ty = parse_ty (any_ident st) in
      Prop.stored ~origin:(Oid.of_int 0) name ty
    | OP "=" ->
      advance st;
      let body = parse_or st in
      Prop.method_ ~origin:(Oid.of_int 0) name body
    | t -> parse_error "expected : or = after property %s, found %s" name (token_str t)
  in
  let acc = acc @ [ def ] in
  match peek st with
  | COMMA ->
    advance st;
    parse_prop_defs st acc
  | _ -> acc

let rec parse_q st =
  match peek st with
  | IDENT "select" ->
    advance st;
    expect_ident st "from";
    let src = parse_q st in
    expect_ident st "where";
    let pred = parse_or st in
    Ops.Select (src, pred)
  | IDENT "hide" ->
    advance st;
    let rec names acc =
      let n = any_ident st in
      let acc = acc @ [ n ] in
      match peek st with
      | COMMA ->
        advance st;
        names acc
      | _ -> acc
    in
    let props = names [] in
    expect_ident st "from";
    Ops.Hide (props, parse_q st)
  | IDENT "refine" ->
    advance st;
    let props = parse_prop_defs st [] in
    expect_ident st "for";
    Ops.Refine (props, parse_q st)
  | IDENT ("union" | "intersect" | "difference") ->
    let op = any_ident st in
    expect st LPAREN;
    let a = parse_q st in
    expect st COMMA;
    let b = parse_q st in
    expect st RPAREN;
    (match op with
    | "union" -> Ops.Union (a, b)
    | "intersect" -> Ops.Intersect (a, b)
    | _ -> Ops.Difference (a, b))
  | IDENT name when not (List.mem name keywords) ->
    advance st;
    Ops.Class name
  | LPAREN ->
    advance st;
    let q = parse_q st in
    expect st RPAREN;
    q
  | t -> parse_error "unexpected %s in query" (token_str t)

(* ---------------- entry points ---------------- *)

let finish st v =
  match peek st with
  | EOF -> v
  | t -> parse_error "trailing input starting at %s" (token_str t)

let parse_expr input =
  let st = { toks = lex input } in
  finish st (parse_or st)

let parse_query input =
  let st = { toks = lex input } in
  finish st (parse_q st)

let parse_define input =
  let st = { toks = lex input } in
  expect_ident st "defineVC";
  let name = any_ident st in
  expect_ident st "as";
  let q = parse_q st in
  finish st (name, q)

let define db input =
  let name, q = parse_define input in
  Ops.define_vc db ~name q
