lib/algebra/ops.mli: Tse_db Tse_schema
