lib/algebra/surface.ml: Format List Ops Printf String Tse_schema Tse_store
