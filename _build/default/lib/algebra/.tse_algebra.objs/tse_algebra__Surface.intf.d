lib/algebra/surface.mli: Ops Tse_db Tse_schema
