lib/algebra/ops.ml: Format Hashtbl List Printf Tse_classifier Tse_db Tse_schema Tse_store
