(** The extended object algebra (Section 3.2): each operator derives a new
    virtual class, which is immediately integrated into the global schema
    by the classifier.

    The capacity-augmenting extension is in {!refine}: its property list
    may contain {e stored} attributes, which augment the database's
    capacity — each member object's representation is restructured with a
    new implementation slice holding the new slots (Section 4). *)

type cid = Tse_schema.Klass.cid

exception Error of string
(** Raised on operator misuse: unknown source class, hiding an undefined
    property, refining with an already-defined name, a select predicate
    over undefined properties, a name already in use. *)

val select :
  Tse_db.Database.t -> name:string -> src:cid -> Tse_schema.Expr.t -> cid
(** [(select from <src> where <predicate>)]: same type, restricted
    extent; classified below the source. *)

val hide :
  Tse_db.Database.t -> name:string -> props:string list -> src:cid -> cid
(** [(hide <props> from <src>)]: same extent, more general type;
    classified above the source. *)

val refine :
  Tse_db.Database.t -> name:string -> props:Tse_schema.Prop.t list -> src:cid -> cid
(** [(refine <property-defs> for <src>)]: same extent, extended type.
    Stored properties make the view capacity-augmenting. Property names
    must not already be defined for the source's type. *)

val refine_from :
  Tse_db.Database.t ->
  name:string ->
  src:cid ->
  prop_name:string ->
  target:cid ->
  cid
(** [refine C1:<prop> for C2] — the inheritance form: the target class
    acquires C1's property, {e sharing} its definition (same identity, so
    methods share their code block and diamonds do not conflict). *)

val union : Tse_db.Database.t -> name:string -> cid -> cid -> cid
val intersect : Tse_db.Database.t -> name:string -> cid -> cid -> cid
val difference : Tse_db.Database.t -> name:string -> cid -> cid -> cid

(** {2 Naming helpers} *)

val primed_name : Tse_db.Database.t -> string -> string
(** [base'], [base''], ... — first variant not yet used by a class; the
    TSE translator names every derived class by priming its original
    (Section 6.1.2, footnote 11). *)

val fresh_name : Tse_db.Database.t -> string -> string
(** [base], [base$2], [base$3], ... — for anonymous intermediates. *)

(** {2 Composite queries — [defineVC <name> as <query>]} *)

type query =
  | Class of string  (** an existing class, by name *)
  | Select of query * Tse_schema.Expr.t
  | Hide of string list * query
  | Refine of Tse_schema.Prop.t list * query
  | Union of query * query
  | Intersect of query * query
  | Difference of query * query

val define_vc : Tse_db.Database.t -> name:string -> query -> cid
(** Evaluate an arbitrarily nested algebra query (Section 3.2's
    [defineVC]): inner subqueries materialize as anonymous virtual classes
    (reused if an equal derivation already exists), the outermost gets
    [name]. *)
