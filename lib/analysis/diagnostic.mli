(** Structured findings of the static schema analyzer.

    Every finding carries a stable machine-readable [code] (documented in
    DESIGN.md, Section 10), the class and property it is about, and a
    human-readable message. [Error] findings make a schema ill-formed and
    are what the evolution admission gate rejects on; [Warning] findings
    are suspicious but legal; [Info] findings are analysis facts (e.g. the
    capacity classification of a derivation). *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;  (** stable identifier, e.g. ["E101"] *)
  cls : string option;  (** class the finding is about *)
  prop : string option;  (** property / predicate involved, if any *)
  message : string;
}

val make :
  ?cls:string -> ?prop:string -> severity -> code:string -> string -> t

val makef :
  ?cls:string ->
  ?prop:string ->
  severity ->
  code:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val is_error : t -> bool
val is_warning : t -> bool
val is_info : t -> bool

val severity_to_string : severity -> string

val compare : t -> t -> int
(** Errors before warnings before infos; then by code, class, property,
    message — a stable report order. *)

val pp : Format.formatter -> t -> unit
(** One line: [error E101 [Class.prop]: message]. *)

val to_json : t -> string
(** One JSON object with [severity], [code], [class], [prop], [message]
    fields. *)
