(** Structured findings of the static schema analyzer.

    Every finding carries a stable machine-readable [code] (documented in
    DESIGN.md, Section 10), the class and property it is about, and a
    human-readable message. [Error] findings make a schema ill-formed and
    are what the evolution admission gate rejects on; [Warning] findings
    are suspicious but legal; [Info] findings are analysis facts (e.g. the
    capacity classification of a derivation). *)

type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;  (** stable identifier, e.g. ["E101"] *)
  cls : string option;  (** class the finding is about *)
  prop : string option;  (** property / predicate involved, if any *)
  message : string;
}

val make :
  ?cls:string -> ?prop:string -> severity -> code:string -> string -> t

val makef :
  ?cls:string ->
  ?prop:string ->
  severity ->
  code:string ->
  ('a, Format.formatter, unit, t) format4 ->
  'a

val is_error : t -> bool
val is_warning : t -> bool
val is_info : t -> bool

val severity_to_string : severity -> string

val compare : t -> t -> int
(** Subject-first: by (class, property), then code, then severity, then
    message — a stable report order that groups a class's findings
    together and is byte-identical across emission orders (hashtable
    iteration, TSE_DOMAINS sharding). *)

val declared_codes : (string * string) list
(** The closed registry of every stable diagnostic code with a one-line
    description: [E1xx] errors (E101–E112 typing/structure, E120–E123
    lens violations) and [W2xx] warnings (W201/W202 predicate facts,
    W210–W213 conditional lens verdicts). The exhaustiveness test
    asserts every declared code is produced by at least one check. *)

val pp : Format.formatter -> t -> unit
(** One line: [error E101 [Class.prop]: message]. *)

val to_json : t -> string
(** One JSON object with [severity], [code], [class], [prop], [message]
    fields. *)
