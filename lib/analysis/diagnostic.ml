type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;
  cls : string option;
  prop : string option;
  message : string;
}

let make ?cls ?prop severity ~code message =
  { severity; code; cls; prop; message }

let makef ?cls ?prop severity ~code fmt =
  Format.kasprintf (fun message -> make ?cls ?prop severity ~code message) fmt

let is_error d = d.severity = Error
let is_warning d = d.severity = Warning
let is_info d = d.severity = Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.code b.code in
    if c <> 0 then c
    else
      let c = Option.compare String.compare a.cls b.cls in
      if c <> 0 then c
      else
        let c = Option.compare String.compare a.prop b.prop in
        if c <> 0 then c else String.compare a.message b.message

let subject d =
  match d.cls, d.prop with
  | Some c, Some p -> Printf.sprintf " [%s.%s]" c p
  | Some c, None -> Printf.sprintf " [%s]" c
  | None, Some p -> Printf.sprintf " [%s]" p
  | None, None -> ""

let pp ppf d =
  Format.fprintf ppf "%s %s%s: %s"
    (severity_to_string d.severity)
    d.code (subject d) d.message

let to_json d =
  let esc = Tse_obs.Metrics.json_escape in
  let opt = function None -> "null" | Some s -> Printf.sprintf "%S" (esc s) in
  Printf.sprintf
    "{\"severity\":\"%s\",\"code\":\"%s\",\"class\":%s,\"prop\":%s,\"message\":\"%s\"}"
    (severity_to_string d.severity)
    (esc d.code) (opt d.cls) (opt d.prop) (esc d.message)
