type severity = Error | Warning | Info

type t = {
  severity : severity;
  code : string;
  cls : string option;
  prop : string option;
  message : string;
}

let make ?cls ?prop severity ~code message =
  { severity; code; cls; prop; message }

let makef ?cls ?prop severity ~code fmt =
  Format.kasprintf (fun message -> make ?cls ?prop severity ~code message) fmt

let is_error d = d.severity = Error
let is_warning d = d.severity = Warning
let is_info d = d.severity = Info

let severity_to_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

(* Subject-first ((class, prop), then code) so renderings group a class's
   diagnostics together and are byte-stable regardless of emission order
   — the emission order varies with hashtable iteration and TSE_DOMAINS
   sharding, the sorted report must not. *)
let compare a b =
  let c = Option.compare String.compare a.cls b.cls in
  if c <> 0 then c
  else
    let c = Option.compare String.compare a.prop b.prop in
    if c <> 0 then c
    else
      let c = String.compare a.code b.code in
      if c <> 0 then c
      else
        let c =
          Int.compare (severity_rank a.severity) (severity_rank b.severity)
        in
        if c <> 0 then c else String.compare a.message b.message

(* The closed registry of stable diagnostic codes. A code outside this
   list is a bug; the exhaustiveness test in test/test_analysis.ml
   asserts every entry here is actually produced by some check. *)
let declared_codes =
  [
    ("E101", "method body reads a property undefined at the class");
    ("E102", "method body reads an ambiguous (conflicting) property");
    ("E103", "In_class test names a nonexistent class");
    ("E104", "operand type mismatch");
    ("E105", "Concat on a non-string operand");
    ("E106", "division by a constant zero");
    ("E107", "non-boolean select predicate");
    ("E108", "attribute addition would collide with an inherited name");
    ("E110", "virtual class has a dangling source class");
    ("E111", "derived methods reference each other in a cycle");
    ("E112", "select predicate reads a property invisible at the source");
    ("E120", "lens: update touches a hidden property");
    ("E121", "lens: update targets an ambiguous property name");
    ("E122", "lens: update through a statically empty difference");
    ("E123", "lens: update through a constantly-false select");
    ("W201", "constant If condition (dead branch)");
    ("W202", "constantly-false select predicate (always-empty extent)");
    ("W210", "lens: create/add through select is conditional");
    ("W211", "lens: set of a membership-read attribute is conditional");
    ("W212", "lens: create/add through union targets the first operand");
    ("W213", "lens: create/add through difference is conditional");
  ]

let subject d =
  match d.cls, d.prop with
  | Some c, Some p -> Printf.sprintf " [%s.%s]" c p
  | Some c, None -> Printf.sprintf " [%s]" c
  | None, Some p -> Printf.sprintf " [%s]" p
  | None, None -> ""

let pp ppf d =
  Format.fprintf ppf "%s %s%s: %s"
    (severity_to_string d.severity)
    d.code (subject d) d.message

let to_json d =
  let esc = Tse_obs.Metrics.json_escape in
  let opt = function None -> "null" | Some s -> Printf.sprintf "%S" (esc s) in
  Printf.sprintf
    "{\"severity\":\"%s\",\"code\":\"%s\",\"class\":%s,\"prop\":%s,\"message\":\"%s\"}"
    (severity_to_string d.severity)
    (esc d.code) (opt d.cls) (opt d.prop) (esc d.message)
