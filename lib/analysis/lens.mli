(** Static lens-law analyzer for view updates.

    A derived class is a lens over its source(s): the derivation is
    [get] (membership + visible type), and update propagation through
    {!Tse_update.Generic} is [put]. This pass classifies, per derived
    class and per update kind, whether the put is well-behaved — i.e.
    whether GetPut/PutGet can be guaranteed statically:

    - {b Translatable}: the update always round-trips; [put] then [get]
      shows exactly the written state, for every object and every store.
    - {b Conditionally translatable}: the update round-trips exactly
      when a side-condition — returned as an {!Tse_schema.Expr.t}
      predicate over the {e post-update} object — holds. Typical case: a
      create through a [select] view lands in the view iff the new
      object satisfies the select predicate (W210).
    - {b Rejected}: no put can satisfy the laws (or the class is
      statically uninhabitable), with a stable [E12x] diagnostic code.

    Verdicts are {e transitive}: a class derived by [intersect] over two
    [select]s inherits both select conditions, because membership is
    decided by the whole derivation chain down to the base classes. The
    principal-source chain used here is the same [version_lineage]
    notion the translator uses for delete_edge blocking (DESIGN.md §15).

    Diagnostic codes (stable; see {!Diagnostic.declared_codes}):
    - [E120] — update through [hide] touches a hidden property: a create
      cannot initialise a required, default-less hidden stored attribute,
      and a set of a hidden attribute can never be read back through the
      view (PutGet is unsatisfiable).
    - [E121] — create through [intersect] whose full type has a
      name conflict (two same-named properties with distinct
      identities): no initialiser can name the property unambiguously.
    - [E122] — update through a statically empty [difference] (the
      subtrahend is an ancestor-or-self of the minuend): every put is
      immediately undone by get.
    - [E123] — update through a [select] whose predicate constant-folds
      to false/null: the extent is provably empty, PutGet cannot hold.
    - [W210] — create/add through [select]: conditional on the
      predicate holding on the post-state.
    - [W211] — set of an attribute (transitively) read by a membership
      predicate: conditional on the object still satisfying the
      predicate after the write.
    - [W212] — create/add through [union]: the runtime targets the
      first operand (paper §6.5.4 / {!Tse_update.Generic.Policy});
      conditional on first-operand membership.
    - [W213] — create/add through [difference]: conditional on the
      object staying out of the subtrahend. *)

open Tse_schema

(** The update kinds {!Tse_update.Generic} can put through a view. *)
type update =
  | Create  (** create a new object through the class *)
  | Delete  (** delete an object outright *)
  | Add  (** add an existing object to the class's extent *)
  | Remove  (** remove an object from the class's extent *)
  | Set of string  (** assign the named stored attribute *)

type verdict =
  | Translatable
  | Conditional of Expr.t
      (** side-condition over the post-update object state; the update
          round-trips iff it evaluates true *)
  | Rejected of string  (** the [E12x] code explaining why *)

type entry = {
  cls : string;
  operator : string;  (** outermost derivation operator, or ["base"] *)
  update : update;
  verdict : verdict;
  diag : Diagnostic.t option;
      (** the [E12x]/[W21x] diagnostic behind a non-Translatable
          verdict; [None] when Translatable *)
}

val operator_name : Klass.derivation -> string
(** ["select" | "hide" | "refine" | "refine_from" | "union" |
    "intersect" | "difference"]. *)

val update_to_string : update -> string
(** ["create" | "delete" | "add" | "remove" | "set a"]. *)

val verdict_to_string : verdict -> string

val membership_reads : Schema_graph.t -> Klass.cid -> string list
(** Attribute names the class's membership transitively depends on:
    free attributes of every select predicate in the derivation
    closure, with derived-method bodies and [In_class] references
    expanded. Sorted, duplicate-free. Setting one of these can move the
    object across the view boundary (W211). *)

val classify : Schema_graph.t -> Klass.cid -> update -> verdict
(** The verdict for one update kind against one class. Base classes are
    always [Translatable] (the identity lens). *)

val class_entries : Schema_graph.t -> Klass.cid -> entry list
(** All interesting entries for one derived class: [Create], [Delete],
    [Add], [Remove], plus [Set a] for every attribute that is
    membership-read or hidden somewhere in the derivation chain.
    Translatable [Set] entries are omitted; the four membership updates
    are always present. Empty for base classes. *)

val analyze : Schema_graph.t -> entry list
(** {!class_entries} over every virtual class, sorted by (class name,
    update kind) — deterministic across graph construction orders. *)

val diagnostics : entry list -> Diagnostic.t list
(** The deduplicated diagnostics carried by the entries, sorted with
    {!Diagnostic.compare}. *)

val entry_to_json : entry -> string
val pp_entry : Format.formatter -> entry -> unit
