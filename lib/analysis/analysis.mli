(** Whole-schema static analysis: typecheck every expression in the
    schema graph and lint every derivation.

    Layer 1 (expression typechecking) walks every derived-method body
    (checked at its owning class) and every select predicate (checked at
    its {e source} class, where the objects being filtered live) through
    {!Typecheck}. Layer 2 (derivation linting) adds:
    - [E110] a virtual class whose source class is gone,
    - [E111] a cycle in the derived-method reference graph (methods
      resolved by name through every body, the same conservative closure
      {!Tse_schema.Deps} uses),
    and classifies every virtual class's derivation by capacity (paper
    Section 3): capacity-{e augmenting} ([refine] introducing stored
    attributes), capacity-{e reducing} ([hide]), capacity-{e preserving}
    otherwise. Capacity is reported as an analysis {e fact}, not a
    diagnostic. *)

open Tse_schema

type capacity = Augmenting | Preserving | Reducing

val capacity_to_string : capacity -> string

val derivation_capacity : Klass.derivation -> capacity

type report = {
  diagnostics : Diagnostic.t list;  (** sorted with {!Diagnostic.compare} *)
  facts : (string * capacity) list;
      (** virtual class name -> capacity classification, sorted by name *)
  lens : Lens.entry list;
      (** per-derived-class translatability verdicts ({!Lens.analyze}).
          Like capacity, these are verdict {e facts} about the view, not
          schema defects: a conditional or rejected verdict does not make
          the schema ill-formed and does not appear in [diagnostics] —
          the admission gate is what turns an [E12x] verdict on a
          {e proposed} evolution into a rejection. *)
  classes_checked : int;
  exprs_checked : int;  (** method bodies + select predicates visited *)
}

val analyze : Schema_graph.t -> report

val errors : report -> Diagnostic.t list
val warnings : report -> Diagnostic.t list

val is_clean : report -> bool
(** No [Error]-severity diagnostics (warnings allowed). *)

val method_cycles : Schema_graph.t -> string list list
(** Each distinct cycle in the derived-method reference graph, as a
    sorted list of the method names involved. *)

val pp_report : Format.formatter -> report -> unit
(** Diagnostics one per line, then capacity facts, then lens verdicts,
    then a summary line. *)

val report_to_json : report -> string
(** One JSON object: error/warning counts, the work counters, the
    diagnostics array, the facts array and the lens verdict array. *)
