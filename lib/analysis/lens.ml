open Tse_store
open Tse_schema

type update = Create | Delete | Add | Remove | Set of string

type verdict =
  | Translatable
  | Conditional of Expr.t
  | Rejected of string

type entry = {
  cls : string;
  operator : string;
  update : update;
  verdict : verdict;
  diag : Diagnostic.t option;
}

let operator_name = function
  | Klass.Select _ -> "select"
  | Klass.Hide _ -> "hide"
  | Klass.Refine _ -> "refine"
  | Klass.Refine_from _ -> "refine_from"
  | Klass.Union _ -> "union"
  | Klass.Intersect _ -> "intersect"
  | Klass.Difference _ -> "difference"

let update_to_string = function
  | Create -> "create"
  | Delete -> "delete"
  | Add -> "add"
  | Remove -> "remove"
  | Set a -> "set " ^ a

let verdict_to_string = function
  | Translatable -> "translatable"
  | Conditional e -> Printf.sprintf "conditional on %s" (Expr.to_string e)
  | Rejected code -> Printf.sprintf "rejected (%s)" code

(* ---------------- membership reads ---------------- *)

(* The attribute names an expression transitively reads when resolved at
   class [at]: derived-method bodies are expanded (cycles guarded by
   [seen_meth]; Analysis reports those as E111 separately) and [In_class]
   references pull in the referenced class's own membership reads. *)
let rec expr_reads g ~seen_cls ~seen_meth ~out at e =
  List.iter
    (fun name ->
      match Type_info.find g at name with
      | Some (Type_info.Single { Prop.body = Prop.Method body; _ }) ->
          if not (Hashtbl.mem seen_meth (at, name)) then begin
            Hashtbl.add seen_meth (at, name) ();
            expr_reads g ~seen_cls ~seen_meth ~out at body
          end
      | Some (Type_info.Single _) | Some (Type_info.Conflict _) | None ->
          out := name :: !out)
    (Expr.free_attrs e);
  List.iter
    (fun cname ->
      match Schema_graph.find_by_name g cname with
      | Some k -> class_reads g ~seen_cls ~seen_meth ~out k.Klass.cid
      | None -> ())
    (Expr.referenced_classes e)

and class_reads g ~seen_cls ~seen_meth ~out cid =
  if not (Oid.Set.mem cid !seen_cls) then begin
    seen_cls := Oid.Set.add cid !seen_cls;
    match Schema_graph.find g cid with
    | None -> ()
    | Some k -> begin
        match k.Klass.kind with
        | Klass.Base -> ()
        | Klass.Virtual d -> begin
            match d with
            | Klass.Select (src, pred) ->
                expr_reads g ~seen_cls ~seen_meth ~out src pred;
                class_reads g ~seen_cls ~seen_meth ~out src
            | Klass.Hide (_, src) | Klass.Refine (_, src) ->
                class_reads g ~seen_cls ~seen_meth ~out src
            | Klass.Refine_from { target; _ } ->
                class_reads g ~seen_cls ~seen_meth ~out target
            | Klass.Union (a, b)
            | Klass.Intersect (a, b)
            | Klass.Difference (a, b) ->
                class_reads g ~seen_cls ~seen_meth ~out a;
                class_reads g ~seen_cls ~seen_meth ~out b
          end
      end
  end

let membership_reads g cid =
  let out = ref [] in
  class_reads g
    ~seen_cls:(ref Oid.Set.empty)
    ~seen_meth:(Hashtbl.create 8)
    ~out cid;
  List.sort_uniq String.compare !out

(* Reads of one predicate resolved at [src], same expansion rules. *)
let predicate_reads g src pred =
  let out = ref [] in
  expr_reads g
    ~seen_cls:(ref Oid.Set.empty)
    ~seen_meth:(Hashtbl.create 8)
    ~out src pred;
  List.sort_uniq String.compare !out

(* ---------------- classification ---------------- *)

exception Reject of string * string  (** code, message *)

(* Accumulated (code, side-condition) pairs, outermost operator first;
   duplicate conditions (the same predicate met along two derivation
   paths) are kept once. *)
let add_cond acc code cond =
  if List.exists (fun (_, c) -> Expr.equal c cond) acc then acc
  else acc @ [ (code, cond) ]

let const_false pred =
  match Typecheck.const_eval pred with
  | Some (Value.Bool false) | Some Value.Null -> true
  | _ -> false

let const_true pred =
  match Typecheck.const_eval pred with
  | Some (Value.Bool true) -> true
  | _ -> false

let hidden_required g src name =
  match Type_info.find g src name with
  | Some (Type_info.Single p) -> begin
      match p.Prop.body with
      | Prop.Stored { required = true; default; _ } ->
          Value.equal default Value.Null
      | Prop.Stored _ | Prop.Method _ -> false
    end
  | Some (Type_info.Conflict ps) ->
      List.exists
        (fun (p : Prop.t) ->
          match p.Prop.body with
          | Prop.Stored { required = true; default; _ } ->
              Value.equal default Value.Null
          | _ -> false)
        ps
  | None -> false

(* create/add walk: which side-conditions must the post-state object
   satisfy for the membership put to round-trip? [creating] additionally
   enforces initialisability (E120/E121). *)
(* Missing classes (dangling sources, E110) end the walk: Analysis
   already reports them as errors, the lens verdict stays best-effort. *)
let kind_of g cid =
  match Schema_graph.find g cid with
  | None -> Klass.Base
  | Some k -> k.Klass.kind

let rec member_walk g ~creating cid acc seen =
  if Oid.Set.mem cid seen then acc
  else
    let seen = Oid.Set.add cid seen in
    match kind_of g cid with
    | Klass.Base -> acc
    | Klass.Virtual d -> begin
        match d with
        | Klass.Select (src, pred) ->
            if const_false pred then
              Reject
                ( "E123",
                  "select predicate is constantly false: the extent is \
                   provably empty, no update can land in the view" )
              |> raise;
            let acc =
              if const_true pred then acc else add_cond acc "W210" pred
            in
            member_walk g ~creating src acc seen
        | Klass.Hide (names, src) ->
            if creating then
              List.iter
                (fun n ->
                  if hidden_required g src n then
                    Reject
                      ( "E120",
                        Printf.sprintf
                          "hidden attribute %s is required and has no \
                           default: a create through this view cannot \
                           initialise it"
                          n )
                    |> raise)
                names;
            member_walk g ~creating src acc seen
        | Klass.Refine (_, src) -> member_walk g ~creating src acc seen
        | Klass.Refine_from { target; _ } ->
            member_walk g ~creating target acc seen
        | Klass.Union (a, _) ->
            (* the put targets the first operand (paper Section 6.5.4,
               Generic.Policy.union_target = First) *)
            let acc =
              add_cond acc "W212" (Expr.In_class (Schema_graph.name_of g a))
            in
            member_walk g ~creating a acc seen
        | Klass.Intersect (a, b) ->
            let acc = member_walk g ~creating a acc seen in
            member_walk g ~creating b acc seen
        | Klass.Difference (a, b) ->
            if Schema_graph.is_ancestor_or_self g ~anc:b ~desc:a then
              Reject
                ( "E122",
                  "difference is statically empty (subtrahend is an \
                   ancestor of the minuend): every put is undone by get" )
              |> raise;
            let acc =
              add_cond acc "W213"
                (Expr.Not (Expr.In_class (Schema_graph.name_of g b)))
            in
            member_walk g ~creating a acc seen
      end

(* set walk: does writing [name] risk moving the object across the view
   boundary (W211), or write state the view can never read back (E120)? *)
let rec set_walk g ~name cid acc seen =
  if Oid.Set.mem cid seen then acc
  else
    let seen = Oid.Set.add cid seen in
    match kind_of g cid with
    | Klass.Base -> acc
    | Klass.Virtual d -> begin
        match d with
        | Klass.Select (src, pred) ->
            if const_false pred then
              Reject
                ( "E123",
                  "select predicate is constantly false: the extent is \
                   provably empty, no update can land in the view" )
              |> raise;
            let acc =
              if
                (not (const_true pred))
                && List.mem name (predicate_reads g src pred)
              then add_cond acc "W211" pred
              else acc
            in
            set_walk g ~name src acc seen
        | Klass.Hide (names, src) ->
            if List.mem name names then
              Reject
                ( "E120",
                  Printf.sprintf
                    "attribute %s is hidden by this view: a value written \
                     through the view could never be read back (PutGet is \
                     unsatisfiable)"
                    name )
              |> raise;
            set_walk g ~name src acc seen
        | Klass.Refine (_, src) -> set_walk g ~name src acc seen
        | Klass.Refine_from { target; _ } -> set_walk g ~name target acc seen
        | Klass.Union (a, b) | Klass.Intersect (a, b) ->
            let acc = set_walk g ~name a acc seen in
            set_walk g ~name b acc seen
        | Klass.Difference (a, b) ->
            let acc = set_walk g ~name a acc seen in
            if List.mem name (membership_reads g b) then
              add_cond acc "W211"
                (Expr.Not (Expr.In_class (Schema_graph.name_of g b)))
            else acc
      end

let conflicting_stored g cid =
  List.find_map
    (fun (n, e) ->
      match e with
      | Type_info.Conflict ps
        when List.exists (fun (p : Prop.t) -> Prop.is_stored p) ps ->
          Some n
      | _ -> None)
    (Type_info.full_type g cid)

let classify_raw g cid update =
  match kind_of g cid with
  | Klass.Base -> (Translatable, None)
  | Klass.Virtual _ -> begin
      let conds =
        try
          match update with
          | Delete | Remove ->
              (* delete propagates to the object itself; remove strips the
                 origin-base memberships the derivation chain depends on —
                 both always leave the view (Generic.remove_targets) *)
              Ok []
          | Create -> begin
              match conflicting_stored g cid with
              | Some n ->
                  Error
                    ( "E121",
                      Printf.sprintf
                        "attribute name %s is ambiguous on this view (two \
                         distinct same-named properties): no initialiser \
                         can target it"
                        n )
              | None ->
                  Ok (member_walk g ~creating:true cid [] Oid.Set.empty)
            end
          | Add -> Ok (member_walk g ~creating:false cid [] Oid.Set.empty)
          | Set name -> begin
              match Type_info.find g cid name with
              | Some (Type_info.Conflict _) ->
                  Error
                    ( "E121",
                      Printf.sprintf
                        "attribute name %s is ambiguous on this view: an \
                         assignment cannot target it"
                        name )
              | Some (Type_info.Single _) | None ->
                  Ok (set_walk g ~name cid [] Oid.Set.empty)
            end
        with Reject (code, msg) -> Error (code, msg)
      in
      let cls = Schema_graph.name_of g cid in
      let prop = match update with Set a -> Some a | _ -> None in
      match conds with
      | Error (code, msg) ->
          ( Rejected code,
            Some
              (Diagnostic.makef ~cls ?prop Diagnostic.Error ~code "%s (%s)"
                 msg (update_to_string update)) )
      | Ok [] -> (Translatable, None)
      | Ok ((code0, _) :: _ as conds) ->
          let side =
            match List.map snd conds with
            | [ c ] -> c
            | c :: rest -> List.fold_left (fun a b -> Expr.And (a, b)) c rest
            | [] -> assert false
          in
          ( Conditional side,
            Some
              (Diagnostic.makef ~cls ?prop Diagnostic.Warning ~code:code0
                 "%s is conditionally translatable: requires %s"
                 (update_to_string update)
                 (Expr.to_string side)) )
    end

let classify g cid update = fst (classify_raw g cid update)

(* hidden attribute names anywhere in the derivation closure *)
let hidden_names g cid =
  let out = ref [] in
  let rec go seen c =
    if Oid.Set.mem c seen then ()
    else
      let seen = Oid.Set.add c seen in
      match kind_of g c with
      | Klass.Base -> ()
      | Klass.Virtual d -> begin
          match d with
          | Klass.Select (s, _) | Klass.Refine (_, s) -> go seen s
          | Klass.Hide (names, s) ->
              out := names @ !out;
              go seen s
          | Klass.Refine_from { target; _ } -> go seen target
          | Klass.Union (a, b)
          | Klass.Intersect (a, b)
          | Klass.Difference (a, b) ->
              go seen a;
              go seen b
        end
  in
  go Oid.Set.empty cid;
  List.sort_uniq String.compare !out

let update_rank = function
  | Create -> 0
  | Delete -> 1
  | Add -> 2
  | Remove -> 3
  | Set _ -> 4

let compare_update a b =
  let c = Int.compare (update_rank a) (update_rank b) in
  if c <> 0 then c
  else
    match (a, b) with
    | Set x, Set y -> String.compare x y
    | _ -> 0

let class_entries g cid =
  match kind_of g cid with
  | Klass.Base -> []
  | Klass.Virtual d ->
      let cls = Schema_graph.name_of g cid in
      let operator = operator_name d in
      let entry update =
        let verdict, diag = classify_raw g cid update in
        { cls; operator; update; verdict; diag }
      in
      let membership = List.map entry [ Create; Delete; Add; Remove ] in
      let set_candidates =
        List.sort_uniq String.compare
          (membership_reads g cid @ hidden_names g cid)
      in
      let sets =
        List.filter_map
          (fun a ->
            let e = entry (Set a) in
            match e.verdict with Translatable -> None | _ -> Some e)
          set_candidates
      in
      membership @ sets

let analyze g =
  Schema_graph.classes g
  |> List.filter (fun k -> k.Klass.kind <> Klass.Base)
  |> List.sort (fun a b -> String.compare a.Klass.name b.Klass.name)
  |> List.concat_map (fun k -> class_entries g k.Klass.cid)
  |> List.sort (fun a b ->
         let c = String.compare a.cls b.cls in
         if c <> 0 then c else compare_update a.update b.update)

let diagnostics entries =
  List.filter_map (fun e -> e.diag) entries
  |> List.sort_uniq Diagnostic.compare

let pp_entry ppf e =
  Format.fprintf ppf "lens [%s]: %s %s" e.cls (update_to_string e.update)
    (verdict_to_string e.verdict);
  match (e.verdict, e.diag) with
  | Rejected code, Some d when String.equal code d.Diagnostic.code ->
      () (* the rejected verdict already renders its code *)
  | _, Some d -> Format.fprintf ppf " (%s)" d.Diagnostic.code
  | _, None -> ()

let entry_to_json e =
  let esc = Tse_obs.Metrics.json_escape in
  let buf = Buffer.create 128 in
  Printf.bprintf buf
    "{\"class\":\"%s\",\"operator\":\"%s\",\"update\":\"%s\",\"verdict\":\"%s\""
    (esc e.cls) (esc e.operator)
    (esc (update_to_string e.update))
    (match e.verdict with
    | Translatable -> "translatable"
    | Conditional _ -> "conditional"
    | Rejected _ -> "rejected");
  (match e.verdict with
  | Conditional c ->
      Printf.bprintf buf ",\"condition\":\"%s\"" (esc (Expr.to_string c))
  | Rejected code -> Printf.bprintf buf ",\"code\":\"%s\"" (esc code)
  | Translatable -> ());
  (match e.diag with
  | Some d when e.verdict <> Rejected d.Diagnostic.code ->
      Printf.bprintf buf ",\"code\":\"%s\"" (esc d.Diagnostic.code)
  | _ -> ());
  Buffer.add_char buf '}';
  Buffer.contents buf
