open Tse_store
open Tse_schema

type result = { ty : Value.ty; diagnostics : Diagnostic.t list }

exception Not_const

let const_eval e =
  let env =
    {
      Expr.self = Oid.of_int 0;
      get = (fun _ -> raise Not_const);
      member_of = (fun _ -> raise Not_const);
    }
  in
  match Expr.eval env e with
  | v -> Some v
  | exception
      ( Not_const | Expr.Type_error _ | Expr.Unknown_property _
      | Division_by_zero ) ->
      None

let rec ty_of_value = function
  | Value.Null -> Value.TAny
  | Value.Bool _ -> Value.TBool
  | Value.Int _ -> Value.TInt
  | Value.Float _ -> Value.TFloat
  | Value.String _ -> Value.TString
  | Value.Ref _ -> Value.TRef ""
  | Value.List [] -> Value.TList Value.TAny
  | Value.List (v :: _) -> Value.TList (ty_of_value v)

let is_numeric = function
  | Value.TInt | Value.TFloat | Value.TAny -> true
  | _ -> false

let is_boolish = function Value.TBool | Value.TAny -> true | _ -> false
let is_stringish = function Value.TString | Value.TAny -> true | _ -> false

(* Mirrors [Value.tag_compatible]: same head constructor, or an int/float
   pair; references compare by identity regardless of class constraint. *)
let comparable a b =
  match (a, b) with
  | Value.TAny, _ | _, Value.TAny -> true
  | (Value.TInt | Value.TFloat), (Value.TInt | Value.TFloat) -> true
  | Value.TRef _, Value.TRef _ -> true
  | Value.TList _, Value.TList _ -> true
  | _ -> Value.ty_equal a b

let is_const_null = function Expr.Const Value.Null -> true | _ -> false

let unify a b =
  if Value.ty_equal a b then a
  else
    match (a, b) with
    | (Value.TInt | Value.TFloat), (Value.TInt | Value.TFloat) -> Value.TFloat
    | _ -> Value.TAny

let infer g cid ~cls ?prop ?(undefined_code = "E101") expr =
  let diags = ref [] in
  let quiet = ref false in
  let emit d = if not !quiet then diags := d :: !diags in
  let errf ~code fmt = Diagnostic.makef ~cls ?prop Diagnostic.Error ~code fmt in
  let warnf ~code fmt =
    Diagnostic.makef ~cls ?prop Diagnostic.Warning ~code fmt
  in
  let visiting = Hashtbl.create 8 in
  let rec go e =
    match e with
    | Expr.Const v -> ty_of_value v
    | Expr.Self -> Value.TRef ""
    | Expr.Attr name -> (
        match Type_info.find g cid name with
        | None ->
            emit
              (errf ~code:undefined_code
                 "reference to property %s, which is not in the full type of %s"
                 name cls);
            Value.TAny
        | Some (Type_info.Conflict cands) ->
            emit
              (errf ~code:"E102"
                 "reference to %s is ambiguous at %s: %d conflicting inherited \
                  definitions"
                 name cls (List.length cands));
            Value.TAny
        | Some (Type_info.Single p) -> (
            match p.Prop.body with
            | Prop.Stored { ty; _ } -> ty
            | Prop.Method body ->
                if Hashtbl.mem visiting p.Prop.name then Value.TAny
                else begin
                  (* Follow the referenced method for its type only; its
                     body is reported at its own definition site. *)
                  Hashtbl.add visiting p.Prop.name ();
                  let was = !quiet in
                  quiet := true;
                  let t = go body in
                  quiet := was;
                  Hashtbl.remove visiting p.Prop.name;
                  t
                end))
    | Expr.Not a ->
        let ta = go a in
        if not (is_boolish ta) then
          emit
            (errf ~code:"E104" "operand of not has type %s, expected bool"
               (Value.ty_to_string ta));
        Value.TBool
    | Expr.And (a, b) | Expr.Or (a, b) ->
        let op = match e with Expr.And _ -> "and" | _ -> "or" in
        let check side x =
          let t = go x in
          if not (is_boolish t) then
            emit
              (errf ~code:"E104" "%s operand of %s has type %s, expected bool"
                 side op (Value.ty_to_string t))
        in
        check "left" a;
        check "right" b;
        Value.TBool
    | Expr.Cmp (op, a, b) ->
        let ta = go a and tb = go b in
        if not (comparable ta tb) then
          emit
            (errf ~code:"E104" "cannot compare %s with %s"
               (Value.ty_to_string ta) (Value.ty_to_string tb));
        (match op with
        | Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge ->
            if is_const_null a || is_const_null b then
              emit
                (errf ~code:"E104"
                   "ordering comparison against null raises at run time")
        | Expr.Eq | Expr.Ne -> ());
        Value.TBool
    | Expr.Arith (op, a, b) ->
        let ta = go a and tb = go b in
        let check side t =
          if not (is_numeric t) then
            emit
              (errf ~code:"E104"
                 "%s operand of arithmetic has type %s, expected int or float"
                 side (Value.ty_to_string t))
        in
        check "left" ta;
        check "right" tb;
        (match op with
        | Expr.Div -> (
            match const_eval b with
            | Some (Value.Int 0) -> emit (errf ~code:"E106" "division by zero")
            | Some (Value.Float f) when f = 0. ->
                emit (errf ~code:"E106" "division by zero")
            | _ -> ())
        | Expr.Add | Expr.Sub | Expr.Mul -> ());
        if Value.ty_equal ta Value.TInt && Value.ty_equal tb Value.TInt then
          Value.TInt
        else if
          (is_numeric ta && is_numeric tb)
          && (Value.ty_equal ta Value.TFloat || Value.ty_equal tb Value.TFloat)
        then Value.TFloat
        else Value.TAny
    | Expr.Concat (a, b) ->
        let check side x =
          let t = go x in
          if not (is_stringish t) then
            emit
              (errf ~code:"E105" "%s operand of concat has type %s, expected \
                                  string" side (Value.ty_to_string t))
        in
        check "left" a;
        check "right" b;
        Value.TString
    | Expr.Is_null a ->
        ignore (go a);
        Value.TBool
    | Expr.In_class name ->
        (match Schema_graph.find_by_name g name with
        | Some _ -> ()
        | None ->
            emit
              (errf ~code:"E103" "in_class test names nonexistent class %s"
                 name));
        Value.TBool
    | Expr.If (c, t_, e_) ->
        let tc = go c in
        if not (is_boolish tc) then
          emit
            (errf ~code:"E104" "if condition has type %s, expected bool"
               (Value.ty_to_string tc));
        (match const_eval c with
        | Some (Value.Bool bv) ->
            emit
              (warnf ~code:"W201"
                 "if condition is constantly %b: the %s branch is dead" bv
                 (if bv then "else" else "then"))
        | _ -> ());
        unify (go t_) (go e_)
  in
  let ty = go expr in
  { ty; diagnostics = List.rev !diags }

let check_method g cid ~cls ~prop expr =
  (infer g cid ~cls ~prop expr).diagnostics

let check_predicate g cid ~cls ?prop ?(undefined_code = "E112") expr =
  let r = infer g cid ~cls ?prop ~undefined_code expr in
  let extra = ref [] in
  if not (is_boolish r.ty) then
    extra :=
      Diagnostic.makef ~cls ?prop Diagnostic.Error ~code:"E107"
        "select predicate has type %s, expected bool"
        (Value.ty_to_string r.ty)
      :: !extra;
  (match const_eval expr with
  | Some (Value.Bool false) | Some Value.Null ->
      extra :=
        Diagnostic.make ~cls ?prop Diagnostic.Warning ~code:"W202"
          "select predicate is constantly false: the extent is always empty"
        :: !extra
  | _ -> ());
  r.diagnostics @ List.rev !extra
