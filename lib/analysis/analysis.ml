open Tse_schema

type capacity = Augmenting | Preserving | Reducing

let capacity_to_string = function
  | Augmenting -> "augmenting"
  | Preserving -> "preserving"
  | Reducing -> "reducing"

let derivation_capacity = function
  | Klass.Refine (props, _) ->
      if List.exists Prop.is_stored props then Augmenting else Preserving
  | Klass.Hide _ -> Reducing
  | Klass.Select _ | Klass.Refine_from _ | Klass.Union _ | Klass.Intersect _
  | Klass.Difference _ ->
      Preserving

type report = {
  diagnostics : Diagnostic.t list;
  facts : (string * capacity) list;
  lens : Lens.entry list;
  classes_checked : int;
  exprs_checked : int;
}

(* The derived-method reference graph, Deps-style conservative: a method
   name is one node wherever it is defined, and an edge m -> n exists
   when any body registered under m reads n and n is a method name. *)
let method_bodies g =
  let bodies : (string, Expr.t list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun k ->
      List.iter
        (fun p ->
          match p.Prop.body with
          | Prop.Method b ->
              let prev =
                Option.value ~default:[] (Hashtbl.find_opt bodies p.Prop.name)
              in
              Hashtbl.replace bodies p.Prop.name (b :: prev)
          | Prop.Stored _ -> ())
        k.Klass.local_props)
    (Schema_graph.classes g);
  bodies

let method_cycles g =
  let bodies = method_bodies g in
  let succs name =
    match Hashtbl.find_opt bodies name with
    | None -> []
    | Some bs ->
        List.concat_map Expr.free_attrs bs
        |> List.filter (Hashtbl.mem bodies)
        |> List.sort_uniq String.compare
  in
  let finished = Hashtbl.create 16 in
  let cycles = ref [] in
  let rec dfs path name =
    if List.mem name path then begin
      let rec upto acc = function
        | [] -> acc
        | x :: _ when String.equal x name -> acc
        | x :: rest -> upto (x :: acc) rest
      in
      let members = List.sort_uniq String.compare (name :: upto [] path) in
      if not (List.mem members !cycles) then cycles := members :: !cycles
    end
    else if not (Hashtbl.mem finished name) then begin
      List.iter (dfs (name :: path)) (succs name);
      Hashtbl.replace finished name ()
    end
  in
  Hashtbl.iter (fun name _ -> dfs [] name) bodies;
  List.sort compare !cycles

let analyze g =
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let facts = ref [] in
  let exprs = ref 0 in
  let classes = Schema_graph.classes g in
  List.iter
    (fun k ->
      let cls = k.Klass.name in
      List.iter
        (fun p ->
          match p.Prop.body with
          | Prop.Method body ->
              incr exprs;
              List.iter emit
                (Typecheck.check_method g k.Klass.cid ~cls ~prop:p.Prop.name
                   body)
          | Prop.Stored _ -> ())
        k.Klass.local_props;
      match k.Klass.kind with
      | Klass.Base -> ()
      | Klass.Virtual deriv ->
          facts := (cls, derivation_capacity deriv) :: !facts;
          List.iter
            (fun src ->
              if not (Schema_graph.mem g src) then
                emit
                  (Diagnostic.makef ~cls Diagnostic.Error ~code:"E110"
                     "virtual class %s has a dangling source class" cls))
            (Klass.sources k);
          (match deriv with
          | Klass.Select (src, pred) when Schema_graph.mem g src ->
              incr exprs;
              List.iter emit
                (Typecheck.check_predicate g src ~cls ~prop:"select" pred)
          | _ -> ()))
    classes;
  List.iter
    (fun members ->
      emit
        (Diagnostic.makef Diagnostic.Error ~code:"E111"
           "derived methods reference each other in a cycle: %s"
           (String.concat ", " members)))
    (method_cycles g);
  {
    diagnostics = List.sort_uniq Diagnostic.compare !diags;
    facts =
      List.sort (fun (a, _) (b, _) -> String.compare a b) !facts;
    lens = Lens.analyze g;
    classes_checked = List.length classes;
    exprs_checked = !exprs;
  }

let errors r = List.filter Diagnostic.is_error r.diagnostics
let warnings r = List.filter Diagnostic.is_warning r.diagnostics
let is_clean r = errors r = []

let pp_report ppf r =
  List.iter (fun d -> Format.fprintf ppf "%a@." Diagnostic.pp d) r.diagnostics;
  List.iter
    (fun (cls, cap) ->
      Format.fprintf ppf "fact [%s]: capacity-%s derivation@." cls
        (capacity_to_string cap))
    r.facts;
  List.iter (fun e -> Format.fprintf ppf "%a@." Lens.pp_entry e) r.lens;
  Format.fprintf ppf "%d errors, %d warnings (%d classes, %d expressions)@."
    (List.length (errors r))
    (List.length (warnings r))
    r.classes_checked r.exprs_checked

let report_to_json r =
  let buf = Buffer.create 512 in
  let esc = Tse_obs.Metrics.json_escape in
  Printf.bprintf buf
    "{\"errors\":%d,\"warnings\":%d,\"classes_checked\":%d,\"exprs_checked\":%d,"
    (List.length (errors r))
    (List.length (warnings r))
    r.classes_checked r.exprs_checked;
  Buffer.add_string buf "\"diagnostics\":[";
  List.iteri
    (fun i d ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Diagnostic.to_json d))
    r.diagnostics;
  Buffer.add_string buf "],\"facts\":[";
  List.iteri
    (fun i (cls, cap) ->
      if i > 0 then Buffer.add_char buf ',';
      Printf.bprintf buf "{\"class\":\"%s\",\"capacity\":\"%s\"}" (esc cls)
        (capacity_to_string cap))
    r.facts;
  Buffer.add_string buf "],\"lens\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Lens.entry_to_json e))
    r.lens;
  Buffer.add_string buf "]}";
  Buffer.contents buf
