(** Static typechecking of {!Tse_schema.Expr} trees against a class's
    full type.

    The inference is deliberately aligned with the runtime semantics of
    [Expr.eval]: [TAny] is the lattice top (unknown, e.g. a [Null]
    constant or an unresolvable reference — never reported twice), int
    and float mix freely in arithmetic and comparisons, and ordering
    against a [Null] constant is flagged because [eval] raises
    [Type_error] there at run time.

    Diagnostic codes produced here (see DESIGN.md Section 10):
    - [E101] reference to a property undefined at the class (method
      bodies; select predicates use [E112] via [undefined_code]),
    - [E102] reference to a [Conflict]-ambiguous property,
    - [E103] [In_class] naming a nonexistent class,
    - [E104] operand type mismatch (boolean ops, comparisons,
      arithmetic, ordering against a null constant, [If] condition),
    - [E105] [Concat] on a non-string operand,
    - [E106] division by a constant zero,
    - [E107] non-boolean select predicate,
    - [W201] constant [If] condition (dead branch),
    - [W202] constantly-false select predicate (always-empty extent;
      constant [true] is {e not} flagged — the translator's identity
      selects rely on it). *)

open Tse_schema

val const_eval : Expr.t -> Tse_store.Value.t option
(** Constant-fold with the runtime evaluator: [Some v] iff the
    expression evaluates to [v] without touching self. *)

type result = {
  ty : Tse_store.Value.ty;  (** inferred type, [TAny] when unknown *)
  diagnostics : Diagnostic.t list;
}

val infer :
  Schema_graph.t ->
  Klass.cid ->
  cls:string ->
  ?prop:string ->
  ?undefined_code:string ->
  Expr.t ->
  result
(** Infer the value type of the expression with property references
    resolved through [Type_info.find] at the given class. Referenced
    derived methods are followed (for their type) but their own bodies
    are not re-reported here. [cls]/[prop] label the diagnostics;
    [undefined_code] (default ["E101"]) is the code used for undefined
    property references. *)

val check_method :
  Schema_graph.t ->
  Klass.cid ->
  cls:string ->
  prop:string ->
  Expr.t ->
  Diagnostic.t list
(** Check a derived-method body owned by the class. *)

val check_predicate :
  Schema_graph.t ->
  Klass.cid ->
  cls:string ->
  ?prop:string ->
  ?undefined_code:string ->
  Expr.t ->
  Diagnostic.t list
(** Check a select predicate against its {e source} class: everything
    {!infer} reports, plus [E107] when the inferred type cannot be
    boolean and [W202] when the predicate constant-folds to
    [false]/[Null]. [undefined_code] defaults to ["E112"] (attribute
    invisible at the source class). *)
