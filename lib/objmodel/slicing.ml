module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Heap = Tse_store.Heap
module Stats = Tse_store.Stats
module Schema_graph = Tse_schema.Schema_graph
module Klass = Tse_schema.Klass
module Prop = Tse_schema.Prop
module Expr = Tse_schema.Expr

type t = {
  graph : Schema_graph.t;
  heap : Heap.t;
  stats : Stats.t;
  (* conceptual oid -> (cid -> impl oid); the heap back-pointers are the
     persistent form, this table is the fast in-memory image. *)
  impls : Oid.t Oid.Tbl.t Oid.Dense.t;
  (* impl oid -> conceptual oid *)
  owners : Oid.t Oid.Dense.t;
}

let name = "object-slicing"

let create ~graph ~heap ~stats =
  { graph; heap; stats; impls = Oid.Dense.create 256; owners = Oid.Dense.create 256 }

let graph t = t.graph
let heap t = t.heap
let stats t = t.stats

let conceptual_tag = "@obj"
let impl_tag cid = "@impl:" ^ string_of_int (Oid.to_int cid)

let impl_table t o =
  match Oid.Dense.find_opt t.impls o with
  | Some tbl -> tbl
  | None -> invalid_arg (Printf.sprintf "Slicing: unknown object %s" (Oid.to_string o))

let impl_of t o cid =
  match Oid.Dense.find_opt t.impls o with
  | None -> None
  | Some tbl -> Oid.Tbl.find_opt tbl cid

(* Compiled-query fast path: a flat closure reading [name] from the
   implementation object of a fixed class, with the table captures
   hoisted out of the per-object hot loop. [None] when the object has no
   implementation at [cid] (unknown object or non-member). *)
let slot_reader t cid name =
  let impls = t.impls in
  let read = Heap.slot_reader t.heap name in
  fun o ->
    match Oid.Dense.find_opt impls o with
    | None -> None
    | Some tbl -> (
      match Oid.Tbl.find_opt tbl cid with
      | None -> None
      | Some impl -> Some (read impl))

let impl_count t o = Oid.Tbl.length (impl_table t o)
let conceptual_of t impl = Oid.Dense.find_opt t.owners impl
let is_member t o cid =
  Oid.equal cid (Schema_graph.root t.graph)
  || (match Oid.Dense.find_opt t.impls o with
     | None -> false
     | Some tbl -> Oid.Tbl.mem tbl cid)

let member_classes t o =
  Oid.Tbl.fold (fun cid _ acc -> cid :: acc) (impl_table t o) []
  |> List.sort Oid.compare

(* Create the implementation object representing [o] at [cid]. *)
let add_impl t o cid =
  let tbl = impl_table t o in
  if not (Oid.Tbl.mem tbl cid) then begin
    let impl = Heap.alloc t.heap ~tag:(impl_tag cid) in
    Heap.set_slot t.heap impl "__conceptual" (Value.Ref o);
    Heap.set_slot t.heap o ("__impl:" ^ string_of_int (Oid.to_int cid)) (Value.Ref impl);
    Oid.Tbl.replace tbl cid impl;
    Oid.Dense.replace t.owners impl o;
    Stats.incr_oids t.stats;
    Stats.add_pointers t.stats 2
  end

let remove_impl t o cid =
  let tbl = impl_table t o in
  match Oid.Tbl.find_opt tbl cid with
  | None -> ()
  | Some impl ->
    Heap.free t.heap impl;
    Heap.remove_slot t.heap o ("__impl:" ^ string_of_int (Oid.to_int cid));
    Oid.Tbl.remove tbl cid;
    Oid.Dense.remove t.owners impl

(* Membership closure: joining a class implies joining its ancestors
   (the root stays implicit). *)
let ensure_member t o cid =
  let root = Schema_graph.root t.graph in
  if not (Oid.equal cid root) then begin
    add_impl t o cid;
    Oid.Set.iter
      (fun anc -> if not (Oid.equal anc root) then add_impl t o anc)
      (Schema_graph.ancestors t.graph cid)
  end

let set_membership t o cids =
  let root = Schema_graph.root t.graph in
  let desired =
    List.fold_left
      (fun acc c -> if Oid.equal c root then acc else Oid.Set.add c acc)
      Oid.Set.empty cids
  in
  let current =
    Oid.Tbl.fold (fun cid _ acc -> Oid.Set.add cid acc) (impl_table t o)
      Oid.Set.empty
  in
  Oid.Set.iter (fun c -> add_impl t o c) (Oid.Set.diff desired current);
  Oid.Set.iter (fun c -> remove_impl t o c) (Oid.Set.diff current desired)

let create_object t cid =
  let o = Heap.alloc t.heap ~tag:conceptual_tag in
  Oid.Dense.replace t.impls o (Oid.Tbl.create 4);
  Stats.incr_oids t.stats;
  Stats.incr_objects t.stats;
  ensure_member t o cid;
  o

let destroy_object t o =
  let tbl = impl_table t o in
  Oid.Tbl.iter
    (fun _ impl ->
      Heap.free t.heap impl;
      Oid.Dense.remove t.owners impl)
    tbl;
  Oid.Dense.remove t.impls o;
  Heap.free t.heap o

let add_to_class = ensure_member

let remove_from_class t o cid =
  if Oid.equal cid (Schema_graph.root t.graph) then
    invalid_arg "Slicing.remove_from_class: cannot remove from root";
  (* Losing a type implies losing every subtype of it. *)
  remove_impl t o cid;
  Oid.Set.iter (fun d -> remove_impl t o d) (Schema_graph.descendants t.graph cid)

let resolve_defining_class t o attr_name =
  let member = member_classes t o in
  let defines cid =
    match Klass.local_prop (Schema_graph.find_exn t.graph cid) attr_name with
    | Some p when Prop.is_stored p -> Some (cid, p)
    | Some _ | None -> None
  in
  let candidates = List.filter_map defines member in
  match candidates with
  | [] -> None
  | [ (cid, _) ] -> Some cid
  | candidates ->
    let uids =
      List.sort_uniq Int.compare
        (List.map (fun (_, (p : Prop.t)) -> p.uid) candidates)
    in
    if List.length uids = 1 then begin
      (* one property, several local copies (promotion): the slot data
         lives at the ORIGIN class — a promoted copy is a type-level
         artifact, not a storage location *)
      let (_, p0) = List.hd candidates in
      match
        List.find_opt (fun (cid, _) -> Oid.equal cid p0.Prop.origin) candidates
      with
      | Some (cid, _) -> Some cid
      | None -> begin
        match
          List.find_opt (fun (_, (p : Prop.t)) -> not p.promoted) candidates
        with
        | Some (cid, _) -> Some cid
        | None -> (
          match List.sort (fun (a, _) (b, _) -> Oid.compare a b) candidates with
          | (cid, _) :: _ -> Some cid
          | [] -> None)
      end
    end
    else begin
      (* genuinely different properties: most specific member class wins;
         among unrelated candidates a promoted definition has priority,
         then lowest cid for determinism *)
      let not_overridden (cid, _) =
        not
          (List.exists
             (fun (other, _) ->
               (not (Oid.equal other cid))
               && Schema_graph.is_strict_ancestor t.graph ~anc:cid ~desc:other)
             candidates)
      in
      let minimal = List.filter not_overridden candidates in
      let minimal =
        match List.filter (fun (_, (p : Prop.t)) -> p.promoted) minimal with
        | [] -> minimal
        | promoted -> promoted
      in
      match List.sort (fun (a, _) (b, _) -> Oid.compare a b) minimal with
      | (cid, _) :: _ -> Some cid
      | [] -> None
    end

let get_attr t o attr_name =
  match resolve_defining_class t o attr_name with
  | None -> raise (Expr.Unknown_property attr_name)
  | Some cid ->
    let impl =
      match impl_of t o cid with Some i -> i | None -> assert false
    in
    let v = Heap.get_slot t.heap impl attr_name in
    if not (Value.equal v Value.Null) then v
    else begin
      (* fall back to the declared default *)
      match Klass.local_prop (Schema_graph.find_exn t.graph cid) attr_name with
      | Some { Prop.body = Stored { default; _ }; _ } -> default
      | Some _ | None -> Value.Null
    end

let set_attr t o attr_name v =
  match resolve_defining_class t o attr_name with
  | None -> raise (Expr.Unknown_property attr_name)
  | Some cid ->
    let impl =
      match impl_of t o cid with Some i -> i | None -> assert false
    in
    let old = Heap.get_slot t.heap impl attr_name in
    let old_bytes = if Value.equal old Value.Null then 0 else Value.size_bytes old in
    let new_bytes = if Value.equal v Value.Null then 0 else Value.size_bytes v in
    Stats.add_data_bytes t.stats (new_bytes - old_bytes);
    Heap.set_slot t.heap impl attr_name v

let cast t o cid =
  if Oid.equal cid (Schema_graph.root t.graph) then Some o else impl_of t o cid

let objects t = Oid.Dense.fold (fun o _ acc -> o :: acc) t.impls []
let object_count t = Oid.Dense.length t.impls

let rebuild ~graph ~heap ~stats =
  let t = create ~graph ~heap ~stats in
  let impl_prefix = "@impl:" in
  Heap.iter heap (fun (cell : Heap.cell) ->
      if String.equal cell.tag conceptual_tag then begin
        let tbl = Oid.Tbl.create 4 in
        Oid.Dense.replace t.impls cell.oid tbl;
        Stats.incr_oids stats;
        Stats.incr_objects stats
      end);
  Heap.iter heap (fun (cell : Heap.cell) ->
      let tag = cell.tag in
      if
        String.length tag > String.length impl_prefix
        && String.sub tag 0 (String.length impl_prefix) = impl_prefix
      then begin
        let cid =
          Oid.of_int
            (int_of_string
               (String.sub tag (String.length impl_prefix)
                  (String.length tag - String.length impl_prefix)))
        in
        match Heap.get_slot heap cell.oid "__conceptual" with
        | Value.Ref owner ->
          (match Oid.Dense.find_opt t.impls owner with
          | Some tbl -> Oid.Tbl.replace tbl cid cell.oid
          | None -> failwith "Slicing.rebuild: orphan implementation object");
          Oid.Dense.replace t.owners cell.oid owner;
          Stats.incr_oids stats;
          Stats.add_pointers stats 2;
          (* recount payload bytes (skip bookkeeping slots) *)
          List.iter
            (fun (name, v) ->
              if String.length name < 2 || String.sub name 0 2 <> "__" then
                if not (Value.equal v Value.Null) then
                  Stats.add_data_bytes stats (Value.size_bytes v))
            (Heap.slots heap cell.oid)
        | _ -> failwith "Slicing.rebuild: implementation object without owner"
      end);
  t
