(** The object-slicing architecture: the TSE object model (Section 4).

    A conceptual object is represented by a conceptual heap cell plus one
    implementation heap cell per member class; each implementation object
    carries the slots for the stored attributes {e locally defined} at its
    class and a back-pointer to the conceptual object. This gives:

    - multiple classification (an object is a member of many classes);
    - dynamic (re)classification by creating/destroying implementation
      objects, identity untouched;
    - cheap casting (switch implementation object);
    - efficient dynamic restructuring: a capacity-augmenting [refine] adds
      one implementation object per member instead of rewriting whole
      objects.

    Storage accounting matches Table 1:
    [(1 + n_impl)·sizeof_oid + n_impl·2·sizeof_pointer] managerial bytes
    per object. *)

include Model_sig.S

val rebuild :
  graph:Tse_schema.Schema_graph.t ->
  heap:Tse_store.Heap.t ->
  stats:Tse_store.Stats.t ->
  t
(** Reconstruct the in-memory tables (conceptual ↔ implementation maps)
    by scanning a loaded heap: conceptual cells carry ["__impl:<cid>"]
    reference slots, implementation cells a ["__conceptual"] back-pointer.
    Storage statistics are recomputed. *)

val impl_of : t -> Tse_store.Oid.t -> Tse_schema.Klass.cid -> Tse_store.Oid.t option
(** The implementation object representing the conceptual object at the
    class, if the object is a member. *)

val slot_reader :
  t -> Tse_schema.Klass.cid -> string -> Tse_store.Oid.t -> Tse_store.Value.t option
(** [slot_reader t cid name] specializes "read slot [name] from the
    object's implementation at [cid]" into one flat closure with every
    table capture hoisted out of the per-object loop — the read path of
    compiled predicates. [None] when the object has no implementation at
    [cid]; missing slots read as [Value.Null]. *)

val impl_count : t -> Tse_store.Oid.t -> int
(** [n_impl] for the object. *)

val conceptual_of : t -> Tse_store.Oid.t -> Tse_store.Oid.t option
(** Back-pointer: conceptual object of an implementation object. *)

val ensure_member : t -> Tse_store.Oid.t -> Tse_schema.Klass.cid -> unit
(** Idempotent [add_to_class]: used by extent maintenance when a derived
    class's predicate starts holding for an existing object. *)

val set_membership : t -> Tse_store.Oid.t -> Tse_schema.Klass.cid list -> unit
(** Make the object's member-class set exactly the given list (root
    excluded): missing implementation objects are created, extra ones
    destroyed (their slice data is discarded, as dynamic declassification
    prescribes). No is-a closure is applied — the caller supplies a closed
    set. *)

val resolve_defining_class :
  t -> Tse_store.Oid.t -> string -> Tse_schema.Klass.cid option
(** The member class whose local definition of the stored attribute wins
    resolution for this object (most specific member class; promoted
    definitions take priority among unrelated candidates). *)
