module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Heap = Tse_store.Heap
module Stats = Tse_store.Stats
module Schema_graph = Tse_schema.Schema_graph
module Klass = Tse_schema.Klass
module Prop = Tse_schema.Prop
module Type_info = Tse_schema.Type_info
module Expr = Tse_schema.Expr

type t = {
  graph : Schema_graph.t;
  heap : Heap.t;
  stats : Stats.t;
  (* object -> the user-requested type combination its class realizes *)
  requested : Oid.t list Oid.Tbl.t;
  (* canonical key of a type combination -> the intersection class *)
  intersections : (string, Oid.t) Hashtbl.t;
  mutable created : int;
}

let name = "intersection-class"

let create ~graph ~heap ~stats =
  {
    graph;
    heap;
    stats;
    requested = Oid.Tbl.create 256;
    intersections = Hashtbl.create 32;
    created = 0;
  }

let graph t = t.graph
let heap t = t.heap
let stats t = t.stats
let intersection_classes_created t = t.created

let class_of t o =
  let tag = Heap.tag_of t.heap o in
  Oid.of_int (int_of_string tag)

let requested_types t o =
  match Oid.Tbl.find_opt t.requested o with
  | Some cs -> cs
  | None -> invalid_arg (Printf.sprintf "Intersection: unknown object %s" (Oid.to_string o))

(* Drop classes implied by another requested class (a subclass carries all
   its superclasses' types already). *)
let minimal_combination t cids =
  let cids = List.sort_uniq Oid.compare cids in
  List.filter
    (fun c ->
      not
        (List.exists
           (fun d ->
             (not (Oid.equal c d))
             && Schema_graph.is_strict_ancestor t.graph ~anc:c ~desc:d)
           cids))
    cids

let combination_key cids =
  String.concat "&" (List.map (fun c -> string_of_int (Oid.to_int c)) cids)

let class_for t cids =
  match minimal_combination t cids with
  | [] -> invalid_arg "Intersection.class_for: empty combination"
  | [ c ] -> c
  | cids -> begin
    let key = combination_key cids in
    match Hashtbl.find_opt t.intersections key with
    | Some c -> c
    | None ->
      let names = List.map (Schema_graph.name_of t.graph) cids in
      let name = String.concat "&" names in
      (* Avoid clashing with a user class of the same name. *)
      let name =
        if Schema_graph.find_by_name t.graph name = None then name
        else name ^ "#" ^ string_of_int (Hashtbl.length t.intersections)
      in
      let cid =
        Schema_graph.register_base t.graph ~name ~props:[] ~supers:cids
      in
      Hashtbl.replace t.intersections key cid;
      t.created <- t.created + 1;
      Stats.incr_classes t.stats;
      cid
  end

let create_object t cid =
  let o = Heap.alloc t.heap ~tag:(string_of_int (Oid.to_int cid)) in
  Oid.Tbl.replace t.requested o [ cid ];
  Stats.incr_oids t.stats;
  Stats.incr_objects t.stats;
  o

let destroy_object t o =
  ignore (requested_types t o);
  Oid.Tbl.remove t.requested o;
  Heap.free t.heap o

(* GemStone-style dynamic reclassification: create a fresh object of the
   target class, copy every value, swap identities, drop the husk. The
   temporary OID is not charged to [oids_allocated] because it does not
   persist; the copy and swap costs are what Table 1 reports. *)
let reclassify t o target =
  if not (Oid.equal (class_of t o) target) then begin
    let tmp = Heap.alloc t.heap ~tag:(string_of_int (Oid.to_int target)) in
    Heap.copy_slots t.heap ~src:o ~dst:tmp;
    Stats.incr_copies t.stats;
    Heap.swap_identity t.heap o tmp;
    Stats.incr_swaps t.stats;
    Heap.free t.heap tmp
  end

let add_to_class t o cid =
  let requested = requested_types t o in
  if not (List.exists (Oid.equal cid) requested) then begin
    let requested = minimal_combination t (cid :: requested) in
    Oid.Tbl.replace t.requested o requested;
    reclassify t o (class_for t requested)
  end

let remove_from_class t o cid =
  let root = Schema_graph.root t.graph in
  if Oid.equal cid root then
    invalid_arg "Intersection.remove_from_class: cannot remove from root";
  if Schema_graph.is_ancestor_or_self t.graph ~anc:cid ~desc:(class_of t o)
  then begin
    (* losing a type keeps the types it merely implied: expand the
       combination to its full upward closure, subtract the class and its
       subclasses, re-minimalize — mirroring the slicing model, where the
       ancestors' implementation objects survive *)
    let requested = requested_types t o in
    let expanded =
      List.fold_left
        (fun acc c ->
          Oid.Set.union acc (Oid.Set.add c (Schema_graph.ancestors t.graph c)))
        Oid.Set.empty requested
      |> Oid.Set.remove root
    in
    let dead = Oid.Set.add cid (Schema_graph.descendants t.graph cid) in
    let requested' =
      minimal_combination t (Oid.Set.elements (Oid.Set.diff expanded dead))
    in
    let requested' = if requested' = [] then [ root ] else requested' in
    Oid.Tbl.replace t.requested o requested';
    reclassify t o (class_for t requested')
  end

let is_member t o cid =
  Oid.equal cid (Schema_graph.root t.graph)
  ||
  let c = class_of t o in
  Schema_graph.is_ancestor_or_self t.graph ~anc:cid ~desc:c

let member_classes t o =
  let c = class_of t o in
  let root = Schema_graph.root t.graph in
  Oid.Set.elements
    (Oid.Set.remove root (Oid.Set.add c (Schema_graph.ancestors t.graph c)))

let prop_of t o attr_name =
  match Type_info.find_usable t.graph (class_of t o) attr_name with
  | Some p when Prop.is_stored p -> p
  | Some _ | None -> raise (Expr.Unknown_property attr_name)

let get_attr t o attr_name =
  (* the architectural advantage this model trades for its other costs:
     every attribute — inherited or not — is a direct slot read on the one
     contiguous object (Table 1's query-performance row); the type lookup
     is only needed when the slot is empty (unknown name vs. default) *)
  let v = Heap.get_slot t.heap o attr_name in
  if not (Value.equal v Value.Null) then v
  else
    let p = prop_of t o attr_name in
    match p.Prop.body with
    | Prop.Stored { default; _ } -> default
    | Prop.Method _ -> Value.Null

let set_attr t o attr_name v =
  ignore (prop_of t o attr_name);
  let old = Heap.get_slot t.heap o attr_name in
  let old_bytes = if Value.equal old Value.Null then 0 else Value.size_bytes old in
  let new_bytes = if Value.equal v Value.Null then 0 else Value.size_bytes v in
  Stats.add_data_bytes t.stats (new_bytes - old_bytes);
  Heap.set_slot t.heap o attr_name v

let cast t o cid = if is_member t o cid then Some o else None
let objects t = Oid.Tbl.fold (fun o _ acc -> o :: acc) t.requested []
let object_count t = Oid.Tbl.length t.requested
