let env_ms name default =
  match Sys.getenv_opt name with
  | Some s -> (
    match float_of_string_opt s with Some f when f > 0. -> f | _ -> default)
  | None -> default

(* Thresholds are process-wide and test-overridable; atomics rather
   than refs because stalls are observed from worker domains. *)
let fsync_stall = Atomic.make (env_ms "TSE_STALL_FSYNC_MS" 100.)
let evolve_budget = Atomic.make (env_ms "TSE_EVOLVE_BUDGET_MS" 500.)

let set_fsync_stall_ms v = Atomic.set fsync_stall v
let set_evolve_budget_ms v = Atomic.set evolve_budget v
let fsync_stall_ms () = Atomic.get fsync_stall
let evolve_budget_ms () = Atomic.get evolve_budget

let ms_buckets = [ 0.25; 0.5; 1.; 2.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000. ]

let m_fsync_stalls = Metrics.counter "watchdog.fsync_stalls"
let m_slow_evolutions = Metrics.counter "watchdog.slow_evolutions"
let m_fuel_pressure = Metrics.counter "watchdog.fuel_pressure"
let h_fsync_ms = Metrics.histogram ~buckets:ms_buckets "wal.fsync_ms"
let h_evolve_ms = Metrics.histogram ~buckets:ms_buckets "evolve.ms"

let observe_fsync ~ms =
  Metrics.observe h_fsync_ms ms;
  if ms > Atomic.get fsync_stall then begin
    Metrics.incr m_fsync_stalls;
    Log.warn "watchdog" "W301: fsync stalled %.1fms (threshold %.0fms)" ms
      (Atomic.get fsync_stall)
  end

let time_evolution ~view f =
  let t0 = Unix.gettimeofday () in
  let record () =
    let ms = (Unix.gettimeofday () -. t0) *. 1000. in
    Metrics.observe h_evolve_ms ms;
    if ms > Atomic.get evolve_budget then begin
      Metrics.incr m_slow_evolutions;
      Log.warn "watchdog" "W302: evolution of %s took %.1fms (budget %.0fms)"
        view ms
        (Atomic.get evolve_budget)
    end
  in
  match f () with
  | v ->
    record ();
    v
  | exception e ->
    record ();
    raise e

let fuel_pressure ~what =
  Metrics.incr m_fuel_pressure;
  Log.warn "watchdog" "W303: reclassify fuel exhausted (%s), full fixpoint"
    what
