(** Process-wide metrics registry.

    Zero-dependency counters, gauges and histograms, registered once by
    name (plus optional labels) and mutated through pre-resolved handles
    so hot paths pay a single atomic update — no hashtable lookup, no
    allocation.  Every handle is domain-safe: counters are striped over
    per-domain atomic cells (summed at read), gauges are a single atomic
    cell, histograms and the registry itself are mutex-guarded.  The
    registry is global: every subsystem contributes to one namespace
    ("wal.fsyncs", "reclass.verdict_memo_hits", ...) and a snapshot can
    be rendered as JSON or human-readable text. *)

type counter
(** Monotonically increasing integer. *)

type gauge
(** Instantaneous float value (may go up or down). *)

type histogram
(** Fixed-boundary cumulative histogram over float observations. *)

val counter : ?labels:(string * string) list -> string -> counter
(** [counter name] registers (or retrieves) the counter [name].
    Registration is idempotent: the same (name, labels) pair always
    returns the same handle.  Raises [Invalid_argument] if [name] is
    already registered as a different metric kind. *)

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge : ?labels:(string * string) list -> string -> gauge
val set_gauge : gauge -> float -> unit
val add_gauge : gauge -> float -> unit
val gauge_value : gauge -> float

val histogram :
  ?labels:(string * string) list -> ?buckets:float list -> string -> histogram
(** [histogram ?buckets name] registers a histogram with the given
    upper-bound boundaries (sorted ascending; an implicit +inf bucket is
    always appended).  [buckets] defaults to powers of two from 1 to
    4096 — suitable for batch/group sizes.  On re-registration the
    existing handle is returned and [buckets] is ignored. *)

val observe : histogram -> float -> unit

type hist_snapshot = {
  h_buckets : (float * int) list;  (** (upper_bound, cumulative count) *)
  h_inf : int;  (** observations above the last boundary *)
  h_count : int;
  h_sum : float;
  h_p50 : float;  (** bucket-interpolated quantiles, 0. when empty *)
  h_p95 : float;
  h_p99 : float;
}

module Histogram : sig
  val percentile : histogram -> float -> float
  (** [percentile h p] ([p] in [0,1]) estimates the [p]-quantile of the
      observations from cumulative bucket counts, interpolating
      linearly inside the bucket the quantile lands in.  Quantiles in
      the +inf bucket report the last finite bound (a lower bound on
      the truth); an empty histogram reports 0. *)

  val percentile_of : hist_snapshot -> float -> float
  (** Same estimate over an already-taken snapshot. *)

  val of_observations : ?buckets:float list -> float list -> hist_snapshot
  (** Fold raw observations into a snapshot (with quantile fields)
      without registering anything — the uniform way for benches to
      build a quantile table from collected latencies. *)
end

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : value;
}

val snapshot : unit -> sample list
(** All registered metrics, sorted by name then labels. *)

val key_of : sample -> string
(** Canonical display key: the name, plus [{k=v,...}] when labeled.
    Stable — the sampler and exposition endpoints key series by it. *)

val find_counter : ?labels:(string * string) list -> string -> int
(** Current value of a counter, or 0 if it was never registered. *)

val reset : unit -> unit
(** Zero every registered metric (registration survives).  Used by the
    benchmarks to scope the registry to a single run. *)

val nonzero : sample list -> sample list
(** Drop samples whose value is identically zero (counter 0, gauge 0.,
    empty histogram).  Used by the benchmarks to keep the embedded
    registry section down to metrics that actually fired. *)

val to_json : sample list -> string
(** One JSON object; histogram values become nested objects. *)

val pp_text : Format.formatter -> sample list -> unit
(** Human-readable rendering, one metric per line. *)

val json_escape : string -> string
(** JSON string-body escaping, shared with the tracer. *)
