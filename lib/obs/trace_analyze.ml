type tree = { span : Trace.span; children : tree list }

type stat = {
  st_name : string;
  st_count : int;
  st_total_us : int;
  st_p50_us : float;
  st_p95_us : float;
  st_p99_us : float;
  st_max_us : int;
}

(* ---- tree building -------------------------------------------------- *)

let forest spans =
  let arr = Array.of_list spans in
  let n = Array.length arr in
  (* First span wins a duplicated sid (merged files); sid 0 means the
     trace predates span ids and can never be a parent. *)
  let by_sid = Hashtbl.create (max 16 n) in
  Array.iteri
    (fun i s ->
      if s.Trace.sid > 0 && not (Hashtbl.mem by_sid s.Trace.sid) then
        Hashtbl.add by_sid s.Trace.sid i)
    arr;
  let children = Array.make (max 1 n) [] in
  let is_child = Array.make (max 1 n) false in
  Array.iteri
    (fun i s ->
      match s.Trace.psid with
      | Some p when p <> s.Trace.sid -> (
        match Hashtbl.find_opt by_sid p with
        | Some pi when pi <> i ->
          children.(pi) <- i :: children.(pi);
          is_child.(i) <- true
        | _ -> ())
      | _ -> ())
    arr;
  let built = Array.make (max 1 n) false in
  let rec build i =
    built.(i) <- true;
    let kids =
      List.rev children.(i)
      |> List.filter (fun j -> not built.(j))
      |> List.map build
    in
    { span = arr.(i); children = kids }
  in
  let roots = ref [] in
  Array.iteri (fun i _ -> if not is_child.(i) then roots := build i :: !roots) arr;
  (* A psid cycle (corrupt input) leaves its members unbuilt: sweep
     them up as extra roots rather than dropping spans. *)
  Array.iteri (fun i _ -> if not built.(i) then roots := build i :: !roots) arr;
  List.rev !roots

let self_us t =
  let covered =
    List.fold_left (fun acc c -> acc + c.span.Trace.dur_us) 0 t.children
  in
  max 0 (t.span.Trace.dur_us - covered)

(* ---- per-phase stats ------------------------------------------------ *)

(* Nearest-rank order statistic over the raw durations — with trace
   files we have every observation, so no bucket estimation needed. *)
let rank_pct sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else begin
    let i = int_of_float (Float.ceil (p *. float_of_int n)) - 1 in
    float_of_int sorted.(max 0 (min (n - 1) i))
  end

let summary spans =
  let groups = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let durs =
        match Hashtbl.find_opt groups s.Trace.name with
        | Some r -> r
        | None ->
          let r = ref [] in
          Hashtbl.add groups s.Trace.name r;
          r
      in
      durs := s.Trace.dur_us :: !durs)
    spans;
  Hashtbl.fold
    (fun name durs acc ->
      let sorted = Array.of_list !durs in
      Array.sort compare sorted;
      let count = Array.length sorted in
      {
        st_name = name;
        st_count = count;
        st_total_us = Array.fold_left ( + ) 0 sorted;
        st_p50_us = rank_pct sorted 0.50;
        st_p95_us = rank_pct sorted 0.95;
        st_p99_us = rank_pct sorted 0.99;
        st_max_us = (if count = 0 then 0 else sorted.(count - 1));
      }
      :: acc)
    groups []
  |> List.sort (fun a b ->
         match compare b.st_total_us a.st_total_us with
         | 0 -> compare a.st_name b.st_name
         | c -> c)

let critical_path t =
  let rec go t acc =
    let acc = (t.span, self_us t) :: acc in
    match t.children with
    | [] -> List.rev acc
    | kids ->
      let widest =
        List.fold_left
          (fun best c ->
            if c.span.Trace.dur_us > best.span.Trace.dur_us then c else best)
          (List.hd kids) (List.tl kids)
      in
      go widest acc
  in
  go t []

let slowest ?(top = 10) spans =
  List.stable_sort
    (fun a b -> compare b.Trace.dur_us a.Trace.dur_us)
    spans
  |> List.filteri (fun i _ -> i < top)

(* ---- rendering ------------------------------------------------------ *)

let ms us = float_of_int us /. 1000.

let summary_json stats =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i st ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"name\":\"%s\",\"count\":%d,\"total_ms\":%.3f,\"p50_ms\":%.3f,\"p95_ms\":%.3f,\"p99_ms\":%.3f,\"max_ms\":%.3f}"
           (Metrics.json_escape st.st_name)
           st.st_count (ms st.st_total_us)
           (st.st_p50_us /. 1000.)
           (st.st_p95_us /. 1000.)
           (st.st_p99_us /. 1000.)
           (ms st.st_max_us)))
    stats;
  Buffer.add_string buf "]";
  Buffer.contents buf

let pp_summary fmt stats =
  Format.fprintf fmt "%-36s %7s %11s %9s %9s %9s %9s@." "phase" "count"
    "total_ms" "p50_ms" "p95_ms" "p99_ms" "max_ms";
  List.iter
    (fun st ->
      Format.fprintf fmt "%-36s %7d %11.3f %9.3f %9.3f %9.3f %9.3f@."
        st.st_name st.st_count (ms st.st_total_us)
        (st.st_p50_us /. 1000.)
        (st.st_p95_us /. 1000.)
        (st.st_p99_us /. 1000.)
        (ms st.st_max_us))
    stats

let pp_critical fmt roots =
  List.iter
    (fun root ->
      Format.fprintf fmt "%s  %.3fms total@." root.span.Trace.name
        (ms root.span.Trace.dur_us);
      List.iteri
        (fun depth (s, self) ->
          Format.fprintf fmt "%s%s  %.3fms (self %.3fms)@."
            (String.make ((depth + 1) * 2) ' ')
            s.Trace.name (ms s.Trace.dur_us) (ms self))
        (critical_path root))
    roots

let pp_slow fmt spans =
  Format.fprintf fmt "%-36s %11s %20s@." "span" "dur_ms" "start_us";
  List.iter
    (fun s ->
      Format.fprintf fmt "%-36s %11.3f %20d@." s.Trace.name (ms s.Trace.dur_us)
        s.Trace.start_us)
    spans
