(** Offline analysis of TSE_TRACE span files.

    Rebuilds span trees from the flat JSONL (children carry their
    enclosing span's id in [psid]; emission order is children-first,
    so linking is by id, never by position) and attributes latency two
    ways: per-phase quantiles over every span sharing a name, and
    critical paths — the longest-child chain under each root with
    self-time (duration minus direct children) at every hop.

    Spans from pre-span-id traces ([sid = 0]) are kept but always
    treated as roots. *)

type tree = { span : Trace.span; children : tree list }

type stat = {
  st_name : string;
  st_count : int;
  st_total_us : int;
  st_p50_us : float;
  st_p95_us : float;
  st_p99_us : float;
  st_max_us : int;
}

val forest : Trace.span list -> tree list
(** Link spans into trees by [sid]/[psid].  A span whose parent id is
    unknown (torn away, or from another process) becomes a root.
    Root order follows input order. *)

val self_us : tree -> int
(** Duration not covered by direct children, clamped at 0 (clock
    clamping can make children sum past the parent). *)

val summary : Trace.span list -> stat list
(** Per-name duration stats, sorted by total time descending.
    Quantiles are exact order statistics over the observed durations
    (nearest-rank), not bucket estimates. *)

val critical_path : tree -> (Trace.span * int) list
(** Root-to-leaf chain following the longest direct child at each
    step; each entry pairs the span with its self-time. *)

val slowest : ?top:int -> Trace.span list -> Trace.span list
(** The [top] (default 10) spans by duration, slowest first. *)

val summary_json : stat list -> string

val pp_summary : Format.formatter -> stat list -> unit
val pp_critical : Format.formatter -> tree list -> unit
val pp_slow : Format.formatter -> Trace.span list -> unit
