type level = Quiet | Error | Warn | Info | Debug

let severity = function
  | Quiet -> 0
  | Error -> 1
  | Warn -> 2
  | Info -> 3
  | Debug -> 4

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "quiet" | "off" | "none" -> Some Quiet
  | "error" -> Some Error
  | "warn" | "warning" -> Some Warn
  | "info" -> Some Info
  | "debug" -> Some Debug
  | _ -> None

let level_to_string = function
  | Quiet -> "quiet"
  | Error -> "error"
  | Warn -> "warn"
  | Info -> "info"
  | Debug -> "debug"

let default_level () =
  match Sys.getenv_opt "TSE_LOG_LEVEL" with
  | None -> Warn
  | Some s -> ( match level_of_string s with Some l -> l | None -> Warn)

let level = ref None

let current_level () =
  match !level with
  | Some l -> l
  | None ->
    let l = default_level () in
    level := Some l;
    l

let set_level l = level := Some l

let log lvl tag fmt =
  if severity lvl <= severity (current_level ()) && lvl <> Quiet then (
    Printf.eprintf "[%s] %s: " (level_to_string lvl) tag;
    Printf.kfprintf
      (fun oc ->
        output_char oc '\n';
        flush oc)
      stderr fmt)
  else Printf.ifprintf stderr fmt

let err tag fmt = log Error tag fmt
let warn tag fmt = log Warn tag fmt
let info tag fmt = log Info tag fmt
let debug tag fmt = log Debug tag fmt
