type span = {
  name : string;
  start_us : int;
  dur_us : int;
  sid : int;
  psid : int option;
  attrs : (string * string) list;
}

(* Wall clock in microseconds, clamped to be monotonic within the
   process (gettimeofday can step backwards under NTP — and spans are
   emitted from every worker domain, so the clamp state is atomic). *)
let last_us = Atomic.make 0

let rec now_us () =
  let t = int_of_float (Unix.gettimeofday () *. 1e6) in
  let last = Atomic.get last_us in
  let t = if t > last then t else last in
  if Atomic.compare_and_set last_us last t then t else now_us ()

(* Span ids are process-unique (a single atomic counter); the parent
   link is per-domain — each domain keeps its own stack of open spans,
   so concurrent workers never see each other's frames as parents. *)
let next_sid = Atomic.make 1
let fresh_sid () = Atomic.fetch_and_add next_sid 1

let open_spans : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let current_parent () =
  match !(Domain.DLS.get open_spans) with [] -> None | sid :: _ -> Some sid

type sink_state =
  | Uninitialized
  | Disabled
  | Emit of (string -> unit) * (unit -> unit)  (* emit, flush *)

let state = ref Uninitialized

let init_from_env () =
  match Sys.getenv_opt "TSE_TRACE" with
  | None | Some "" -> state := Disabled
  | Some path -> (
    match open_out_gen [ Open_append; Open_creat ] 0o644 path with
    | exception Sys_error _ -> state := Disabled
    | oc ->
      at_exit (fun () -> try close_out oc with Sys_error _ -> ());
      state :=
        Emit
          ( (fun line ->
              output_string oc line;
              output_char oc '\n'),
            fun () -> flush oc ))

let sink () =
  (match !state with Uninitialized -> init_from_env () | _ -> ());
  !state

let set_sink = function
  | Some emit -> state := Emit (emit, fun () -> ())
  | None -> state := Uninitialized

let enabled () = match sink () with Emit _ -> true | _ -> false

let flush () = match !state with Emit (_, fl) -> fl () | _ -> ()

let json_escape = Metrics.json_escape

let emit_span emit name start_us dur_us ~sid ~psid attrs =
  let buf = Buffer.create 128 in
  Buffer.add_string buf
    (Printf.sprintf "{\"name\":\"%s\",\"start_us\":%d,\"dur_us\":%d"
       (json_escape name) start_us dur_us);
  Buffer.add_string buf (Printf.sprintf ",\"sid\":%d" sid);
  (match psid with
  | None -> ()
  | Some p -> Buffer.add_string buf (Printf.sprintf ",\"psid\":%d" p));
  (match attrs with
  | [] -> ()
  | attrs ->
    Buffer.add_string buf ",\"attrs\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      attrs;
    Buffer.add_char buf '}');
  Buffer.add_char buf '}';
  emit (Buffer.contents buf)

let with_span ?(attrs = []) name f =
  match sink () with
  | Emit (emit, _) -> (
    let sid = fresh_sid () in
    let psid = current_parent () in
    let stack = Domain.DLS.get open_spans in
    stack := sid :: !stack;
    let pop () =
      match !stack with s :: rest when s = sid -> stack := rest | _ -> ()
    in
    let t0 = now_us () in
    match f () with
    | v ->
      pop ();
      emit_span emit name t0 (now_us () - t0) ~sid ~psid attrs;
      v
    | exception e ->
      pop ();
      emit_span emit name t0 (now_us () - t0) ~sid ~psid
        (attrs @ [ ("err", Printexc.to_string e) ]);
      raise e)
  | _ -> f ()

let event ?(attrs = []) name =
  match sink () with
  | Emit (emit, _) ->
    emit_span emit name (now_us ()) 0 ~sid:(fresh_sid ())
      ~psid:(current_parent ()) attrs
  | _ -> ()

(* ---- parser --------------------------------------------------------- *)
(* A minimal recursive-descent JSON parser covering exactly the shapes
   the emitter produces: objects whose values are strings, integers, or
   one level of string->string object. *)

exception Bad of string

type jv = Jstr of string | Jint of int | Jobj of (string * jv) list

let parse_json (s : string) : jv =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let fail msg = raise (Bad (Printf.sprintf "%s at offset %d" msg !pos)) in
  let skip_ws () =
    while
      !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      advance ()
    done
  in
  let expect c =
    if peek () = Some c then advance ()
    else fail (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance (); loop ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance (); loop ()
        | Some '/' -> Buffer.add_char buf '/'; advance (); loop ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance (); loop ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance (); loop ()
        | Some 't' -> Buffer.add_char buf '\t'; advance (); loop ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance (); loop ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with Failure _ -> fail "bad \\u escape"
          in
          (* The emitter only escapes control chars this way. *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else fail "unsupported \\u escape";
          pos := !pos + 4;
          loop ()
        | _ -> fail "bad escape")
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_int () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
      advance ()
    done;
    if !pos = start then fail "expected number";
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some i -> i
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Jstr (parse_string ())
    | Some '{' -> parse_obj ()
    | Some ('-' | '0' .. '9') -> Jint (parse_int ())
    | _ -> fail "expected value"
  and parse_obj () =
    expect '{';
    skip_ws ();
    if peek () = Some '}' then (advance (); Jobj [])
    else begin
      let fields = ref [] in
      let rec loop () =
        skip_ws ();
        let k = parse_string () in
        skip_ws ();
        expect ':';
        let v = parse_value () in
        fields := (k, v) :: !fields;
        skip_ws ();
        match peek () with
        | Some ',' -> advance (); loop ()
        | Some '}' -> advance ()
        | _ -> fail "expected ',' or '}'"
      in
      loop ();
      Jobj (List.rev !fields)
    end
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let parse_line line =
  match parse_json line with
  | exception Bad msg -> Error msg
  | Jobj fields -> (
    let str k = match List.assoc_opt k fields with Some (Jstr s) -> Some s | _ -> None in
    let int k = match List.assoc_opt k fields with Some (Jint i) -> Some i | _ -> None in
    match (str "name", int "start_us", int "dur_us") with
    | Some name, Some start_us, Some dur_us ->
      let attrs =
        match List.assoc_opt "attrs" fields with
        | Some (Jobj kvs) ->
          List.filter_map
            (fun (k, v) -> match v with Jstr s -> Some (k, s) | _ -> None)
            kvs
        | _ -> []
      in
      (* sid/psid are absent in traces from before span ids existed;
         sid 0 means "unknown" and the analyzer treats it as a root. *)
      let sid = Option.value (int "sid") ~default:0 in
      Ok { name; start_us; dur_us; sid; psid = int "psid"; attrs }
    | _ -> Error "missing name/start_us/dur_us")
  | _ -> Error "not a JSON object"

let parse_file path =
  match open_in path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        (* A crash can tear the last line of the trace exactly like it
           tears the WAL, so a malformed line ends the parse rather
           than failing it: everything before it is returned, with the
           position of the damage. *)
        let rec loop lineno acc =
          match input_line ic with
          | exception End_of_file -> Ok (List.rev acc, None)
          | "" -> loop (lineno + 1) acc
          | line -> (
            match parse_line line with
            | Ok s -> loop (lineno + 1) (s :: acc)
            | Error msg -> Ok (List.rev acc, Some (lineno, msg)))
        in
        loop 1 [])
