(** Tiny leveled logger for warning/diagnostic paths.

    The level comes from [TSE_LOG_LEVEL] (one of [quiet], [error],
    [warn], [info], [debug]; default [warn]) and can be overridden
    programmatically.  Output goes to stderr, prefixed with the level
    and a subsystem tag.  Disabled levels cost one comparison and
    format nothing. *)

type level = Quiet | Error | Warn | Info | Debug

val level_of_string : string -> level option
val level_to_string : level -> string

val set_level : level -> unit
val current_level : unit -> level

val err : string -> ('a, out_channel, unit) format -> 'a
(** [err tag fmt ...] — the first argument is the subsystem tag, e.g.
    ["db"] or ["wal"]. *)

val warn : string -> ('a, out_channel, unit) format -> 'a
val info : string -> ('a, out_channel, unit) format -> 'a
val debug : string -> ('a, out_channel, unit) format -> 'a
