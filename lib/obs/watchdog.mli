(** Stall watchdog: stable-coded warnings for latency pathologies.

    Three conditions, each with a fixed code so log scrapers can match
    on it, a counter, and a latency histogram where timing is involved:

    - [W301] — a WAL fsync took longer than [TSE_STALL_FSYNC_MS]
      (default 100); counter [watchdog.fsync_stalls], histogram
      [wal.fsync_ms].
    - [W302] — a schema evolution ran past [TSE_EVOLVE_BUDGET_MS]
      (default 500); counter [watchdog.slow_evolutions], histogram
      [evolve.ms].
    - [W303] — incremental reclassification exhausted its fuel and
      fell back to a full fixpoint; counter [watchdog.fuel_pressure].

    Warnings go through [Log.warn]; thresholds are read from the
    environment once and overridable in-process for tests. *)

val observe_fsync : ms:float -> unit
(** Record one fsync duration; warn [W301] when over threshold. *)

val time_evolution : view:string -> (unit -> 'a) -> 'a
(** Run an evolution thunk under the wall clock; record its duration
    and warn [W302] when over budget.  Lives here so [lib/core] needs
    no Unix dependency — exceptions propagate after recording. *)

val fuel_pressure : what:string -> unit
(** Note one fuel-exhausted fallback; warns [W303] with [what]
    identifying the reclassification site. *)

val set_fsync_stall_ms : float -> unit
(** Override the [W301] threshold (tests). *)

val set_evolve_budget_ms : float -> unit
(** Override the [W302] threshold (tests). *)

val fsync_stall_ms : unit -> float
val evolve_budget_ms : unit -> float
