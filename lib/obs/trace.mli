(** Span-based tracer with a JSONL sink.

    Off by default; enabled by pointing [TSE_TRACE] at a file path, in
    which case every completed span appends one JSON object per line:

    {v {"name":"durable.commit","start_us":1722850000000000,"dur_us":123,"attrs":{"batches":"2"}} v}

    Timing uses a monotonic-clamped wall clock in microseconds.  When
    disabled, [with_span] costs one flag check plus the closure call. *)

type span = {
  name : string;
  start_us : int;  (** microseconds since the Unix epoch *)
  dur_us : int;
  sid : int;  (** process-unique span id; 0 in pre-span-id traces *)
  psid : int option;
      (** enclosing span's id on the same domain; [None] for roots *)
  attrs : (string * string) list;
}

val enabled : unit -> bool

val with_span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a
(** Run the thunk and, if tracing is on, emit a span covering it.  A
    span is emitted even when the thunk raises (with an ["err"] attr);
    the exception is re-raised. *)

val event : ?attrs:(string * string) list -> string -> unit
(** Zero-duration marker span. *)

val set_sink : (string -> unit) option -> unit
(** Override the sink (mainly for tests).  [Some emit] receives each
    JSON line without the trailing newline; [None] restores the
    [TSE_TRACE]-derived behaviour. *)

val flush : unit -> unit

val parse_line : string -> (span, string) result
(** Parse one JSONL trace line back into a span — the inverse of the
    emitter, used by tests and tooling to round-trip trace files. *)

val parse_file : string -> (span list * (int * string) option, string) result
(** Parse every non-empty line of a trace file.  Crashes tear the
    trace like they tear the WAL, so a malformed line stops the parse
    instead of failing it: the result carries every span before the
    damage plus [Some (lineno, msg)] locating it ([None] when the file
    was clean).  [Error] is reserved for an unreadable file. *)
