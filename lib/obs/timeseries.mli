(** Ring-buffer time-series sampler over the metrics registry.

    A sampler periodically snapshots {!Metrics} and appends one point
    per derived series into fixed-capacity ring buffers:

    - every counter becomes a [rate] series (delta since the previous
      tick divided by elapsed seconds, clamped at 0 so a registry
      [reset] never shows up as a negative rate);
    - every gauge becomes a [gauge] series carrying its raw value;
    - every non-empty histogram becomes three [quantile] series
      ([<key>.p50] / [<key>.p95] / [<key>.p99]) plus a [<key>.rate]
      observation-rate series.

    Sampling can be driven manually ({!sample} — what the soak harness
    does once per step) or by a background domain ({!start}/{!stop})
    ticking every [TSE_SAMPLE_MS] milliseconds (default 250).  All
    state is mutex-guarded; reads are safe while the sampler runs. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh sampler; each series keeps the last [capacity] points
    (default 600 — 2.5 minutes at the default tick). *)

val sample : t -> unit
(** Take one tick now.  The first tick only establishes counter
    baselines — rate series start emitting from the second tick. *)

val start : ?interval_ms:int -> t -> unit
(** Spawn a background domain sampling every [interval_ms] ms
    (default [TSE_SAMPLE_MS], else 250).  Idempotent while running. *)

val stop : t -> unit
(** Stop and join the background domain, if any.  The collected
    series remain readable. *)

val running : t -> bool
val interval_ms : t -> int
(** Tick period the sampler was started with (default until then). *)

val series_names : t -> string list
(** Sorted names of every series that has at least one point. *)

val points : t -> string -> (int * float) list
(** Chronological [(ts_us, value)] points of one series ([[]] if
    unknown).  Timestamps are strictly increasing within a series. *)

val last : t -> string -> (int * float) option

val to_json : t -> string
(** [{"interval_ms":N,"series":[{"name":...,"kind":"rate"|"gauge"|
    "quantile","points":[[ts_us,v],...]},...]}] — the shape served at
    [/series] and embedded in BENCH_scenarios.json. *)

val default_interval_ms : unit -> int
(** [TSE_SAMPLE_MS] if set and positive, else 250. *)
