let default_addr () =
  match Sys.getenv_opt "TSE_STATS_ADDR" with
  | Some a when a <> "" -> a
  | _ -> "127.0.0.1:9464"

(* ---- address syntax ------------------------------------------------- *)

type parsed_addr = Tcp of Unix.inet_addr * int | Sock of string

let parse_addr s =
  match String.index_opt s ':' with
  | None -> Error (Printf.sprintf "bad address %S (want HOST:PORT or unix:PATH)" s)
  | Some i ->
    let scheme = String.sub s 0 i in
    let rest = String.sub s (i + 1) (String.length s - i - 1) in
    if scheme = "unix" then
      if rest = "" then Error "bad address: empty unix path" else Ok (Sock rest)
    else begin
      let host = if scheme = "localhost" || scheme = "" then "127.0.0.1" else scheme in
      match
        (Unix.inet_addr_of_string host, int_of_string_opt rest)
      with
      | ip, Some port when port >= 0 && port < 65536 -> Ok (Tcp (ip, port))
      | _, (None | Some _) -> Error (Printf.sprintf "bad port in %S" s)
      | exception Failure _ ->
        Error (Printf.sprintf "bad host %S (numeric IP or localhost)" host)
    end

let string_of_sockaddr = function
  | Unix.ADDR_UNIX p -> "unix:" ^ p
  | Unix.ADDR_INET (ip, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr ip) port

(* ---- Prometheus-style exposition ------------------------------------ *)

let mangle name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
      | _ -> '_')
    name

let label_escape v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let render_labels = function
  | [] -> ""
  | kvs ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" (mangle k) (label_escape v))
           kvs)
    ^ "}"

let render_metrics () =
  let samples = Metrics.snapshot () in
  let buf = Buffer.create 2048 in
  let typed = Hashtbl.create 32 in
  let type_line base kind =
    if not (Hashtbl.mem typed base) then begin
      Hashtbl.add typed base ();
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
    end
  in
  List.iter
    (fun s ->
      let base = "tse_" ^ mangle s.Metrics.s_name in
      let lbl = render_labels s.Metrics.s_labels in
      match s.Metrics.s_value with
      | Metrics.Counter v ->
        type_line base "counter";
        Buffer.add_string buf (Printf.sprintf "%s%s %d\n" base lbl v)
      | Metrics.Gauge v ->
        type_line base "gauge";
        Buffer.add_string buf (Printf.sprintf "%s%s %.6g\n" base lbl v)
      | Metrics.Histogram h ->
        type_line base "histogram";
        let le bound cum =
          let inner =
            match s.Metrics.s_labels with
            | [] -> Printf.sprintf "le=\"%s\"" bound
            | kvs ->
              String.concat ","
                (List.map
                   (fun (k, v) ->
                     Printf.sprintf "%s=\"%s\"" (mangle k) (label_escape v))
                   kvs)
              ^ Printf.sprintf ",le=\"%s\"" bound
          in
          Buffer.add_string buf
            (Printf.sprintf "%s_bucket{%s} %d\n" base inner cum)
        in
        List.iter
          (fun (bound, cum) -> le (Printf.sprintf "%.6g" bound) cum)
          h.Metrics.h_buckets;
        le "+Inf" h.Metrics.h_count;
        Buffer.add_string buf
          (Printf.sprintf "%s_sum%s %.6g\n" base lbl h.Metrics.h_sum);
        Buffer.add_string buf
          (Printf.sprintf "%s_count%s %d\n" base lbl h.Metrics.h_count))
    samples;
  Buffer.contents buf

(* ---- live-rates table ----------------------------------------------- *)

let last_rate ts name =
  match Timeseries.last ts name with Some (_, v) -> v | None -> 0.

let render_rates ts =
  let buf = Buffer.create 512 in
  (match ts with
  | None -> Buffer.add_string buf "no sampler attached\n"
  | Some ts ->
    let ops = last_rate ts "occ.commits" in
    let fsyncs = last_rate ts "wal.fsyncs" in
    let evolutions = last_rate ts "evolve.ms.rate" in
    let memo_hits = last_rate ts "reclass.verdict_memo_hits" in
    let evals = last_rate ts "reclass.formula_evals" in
    let domains =
      match Timeseries.last ts "pool.domains" with
      | Some (_, v) -> int_of_float v
      | None -> 1
    in
    let cores = Domain.recommended_domain_count () in
    Buffer.add_string buf
      (Printf.sprintf "tse live rates (tick %dms)\n" (Timeseries.interval_ms ts));
    Buffer.add_string buf (Printf.sprintf "%-22s %12.1f\n" "ops/s" ops);
    Buffer.add_string buf
      (Printf.sprintf "%-22s %12.2f\n" "evolutions/s" evolutions);
    Buffer.add_string buf
      (Printf.sprintf "%-22s %12.3f\n" "fsyncs/commit"
         (if ops > 0. then fsyncs /. ops else 0.));
    Buffer.add_string buf
      (Printf.sprintf "%-22s %11.1f%%\n" "memo hit rate"
         (if memo_hits +. evals > 0. then
            100. *. memo_hits /. (memo_hits +. evals)
          else 0.));
    Buffer.add_string buf
      (Printf.sprintf "%-22s %7d of %d cores\n" "pool domains" domains cores));
  Buffer.contents buf

(* ---- the listener --------------------------------------------------- *)

type t = {
  sock : Unix.file_descr;
  bound : string;
  unlink_on_stop : string option;
  wake_wr : Unix.file_descr;
  domain : unit Domain.t;
}

let http_response ?(status = "200 OK") ?(ctype = "text/plain; charset=utf-8")
    body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status ctype (String.length body) body

let route ts path =
  match path with
  | "/metrics" -> http_response (render_metrics ())
  | "/series" ->
    let body =
      match ts with
      | Some ts -> Timeseries.to_json ts
      | None -> "{\"interval_ms\":0,\"series\":[]}"
    in
    http_response ~ctype:"application/json" body
  | "/rates" -> http_response (render_rates ts)
  | "/" ->
    http_response "tse telemetry: GET /metrics | /series | /rates\n"
  | _ -> http_response ~status:"404 Not Found" "not found\n"

let read_request fd =
  (* GET requests are tiny; read until the blank line or a small cap. *)
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec loop () =
    if Buffer.length buf > 16384 then ()
    else begin
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 -> ()
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let rec has_blank i =
          if i + 3 >= String.length s then false
          else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
                  && s.[i + 3] = '\n' then true
          else has_blank (i + 1)
        in
        if not (has_blank 0) then loop ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    end
  in
  loop ();
  Buffer.contents buf

let path_of_request req =
  (* "GET /path HTTP/1.x" *)
  match String.index_opt req ' ' with
  | None -> "/"
  | Some i -> (
    let rest = String.sub req (i + 1) (String.length req - i - 1) in
    match String.index_opt rest ' ' with
    | None -> "/"
    | Some j -> String.sub rest 0 j)

let write_all fd s =
  let len = String.length s in
  let b = Bytes.of_string s in
  let rec go off =
    if off < len then
      match Unix.write fd b off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let handle_conn ts fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      match read_request fd with
      | "" -> ()
      | req -> write_all fd (route ts (path_of_request req)))

let start ?addr ?ts () =
  let addr = match addr with Some a -> a | None -> default_addr () in
  match parse_addr addr with
  | Error e -> Error e
  | Ok parsed -> (
    let sockaddr, dom, unlink =
      match parsed with
      | Tcp (ip, port) -> (Unix.ADDR_INET (ip, port), Unix.PF_INET, None)
      | Sock p ->
        (try if Sys.file_exists p then Sys.remove p with Sys_error _ -> ());
        (Unix.ADDR_UNIX p, Unix.PF_UNIX, Some p)
    in
    match
      let sock = Unix.socket ~cloexec:true dom Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt sock Unix.SO_REUSEADDR true;
         Unix.bind sock sockaddr;
         Unix.listen sock 16
       with e ->
         (try Unix.close sock with Unix.Unix_error _ -> ());
         raise e);
      sock
    with
    | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))
    | sock ->
      let bound = string_of_sockaddr (Unix.getsockname sock) in
      let wake_rd, wake_wr = Unix.pipe ~cloexec:true () in
      let domain =
        Domain.spawn (fun () ->
            let buf = Bytes.create 1 in
            let rec loop () =
              match Unix.select [ sock; wake_rd ] [] [] (-1.) with
              | rs, _, _ when List.mem wake_rd rs ->
                ignore (Unix.read wake_rd buf 0 1)
              | rs, _, _ when List.mem sock rs ->
                (match Unix.accept ~cloexec:true sock with
                | fd, _ -> ( try handle_conn ts fd with _ -> ())
                | exception Unix.Unix_error _ -> ());
                loop ()
              | _ -> loop ()
              | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
            in
            loop ();
            Unix.close wake_rd)
      in
      Log.info "telemetry" "serving stats on %s" bound;
      Ok { sock; bound; unlink_on_stop = unlink; wake_wr; domain })

let addr t = t.bound

let stop t =
  (try ignore (Unix.write t.wake_wr (Bytes.make 1 '\000') 0 1)
   with Unix.Unix_error _ -> ());
  Domain.join t.domain;
  (try Unix.close t.wake_wr with Unix.Unix_error _ -> ());
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  match t.unlink_on_stop with
  | Some p -> ( try Sys.remove p with Sys_error _ -> ())
  | None -> ()

(* ---- client --------------------------------------------------------- *)

let fetch ~addr ~path =
  match parse_addr addr with
  | Error e -> Error e
  | Ok parsed -> (
    let sockaddr, dom =
      match parsed with
      | Tcp (ip, port) -> (Unix.ADDR_INET (ip, port), Unix.PF_INET)
      | Sock p -> (Unix.ADDR_UNIX p, Unix.PF_UNIX)
    in
    match
      let fd = Unix.socket ~cloexec:true dom Unix.SOCK_STREAM 0 in
      (try Unix.connect fd sockaddr
       with e ->
         (try Unix.close fd with Unix.Unix_error _ -> ());
         raise e);
      fd
    with
    | exception Unix.Unix_error (err, fn, _) ->
      Error (Printf.sprintf "%s: %s" fn (Unix.error_message err))
    | fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          write_all fd (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path);
          let buf = Buffer.create 1024 in
          let chunk = Bytes.create 4096 in
          let rec drain () =
            match Unix.read fd chunk 0 (Bytes.length chunk) with
            | 0 -> ()
            | n ->
              Buffer.add_subbytes buf chunk 0 n;
              drain ()
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> drain ()
          in
          drain ();
          let resp = Buffer.contents buf in
          let rec find_blank i =
            if i + 3 >= String.length resp then None
            else if resp.[i] = '\r' && resp.[i + 1] = '\n' && resp.[i + 2] = '\r'
                    && resp.[i + 3] = '\n' then Some (i + 4)
            else find_blank (i + 1)
          in
          match find_blank 0 with
          | None -> Error "malformed response (no header terminator)"
          | Some body_at ->
            let status =
              match String.index_opt resp ' ' with
              | None -> ""
              | Some i ->
                String.sub resp (i + 1)
                  (min 3 (String.length resp - i - 1))
            in
            if status = "200" then
              Ok (String.sub resp body_at (String.length resp - body_at))
            else Error (Printf.sprintf "HTTP %s" status)))
