(** Scrapeable stats endpoint — the repo's first wire protocol.

    A deliberately tiny HTTP/1.0 listener (TCP or Unix socket) run on
    one background domain, serving three read-only routes:

    - [/metrics] — Prometheus-style text exposition of the whole
      metrics registry ([tse_]-prefixed, dots mangled to underscores,
      histograms as [_bucket]/[_sum]/[_count] families);
    - [/series]  — the attached {!Timeseries} sampler's ring buffers
      as JSON ([{"interval_ms":...,"series":[...]}]);
    - [/rates]   — a pre-rendered plain-text table of live headline
      rates (ops/s, fsyncs/commit, memo hit rate, pool utilization),
      which is what [tse_cli top] polls.

    Addresses are ["HOST:PORT"] (numeric host, port 0 lets the kernel
    pick — {!addr} reports the real one) or ["unix:PATH"]; the default
    comes from [TSE_STATS_ADDR], else [127.0.0.1:9464].  Requests are
    handled one at a time — scrape traffic, not a web server. *)

type t

val default_addr : unit -> string

val start : ?addr:string -> ?ts:Timeseries.t -> unit -> (t, string) result
(** Bind, listen, and spawn the accept domain.  [Error] (rather than
    an exception) when the bind fails — sandboxes without network
    access are an expected environment. *)

val addr : t -> string
(** Actually-bound address, in the same syntax [start] accepts. *)

val stop : t -> unit
(** Shut the listener down and join its domain; Unix-socket paths are
    unlinked. *)

val render_metrics : unit -> string
(** The [/metrics] body (also usable without a running server). *)

val render_rates : Timeseries.t option -> string
(** The [/rates] body. *)

val fetch : addr:string -> path:string -> (string, string) result
(** One-shot HTTP/1.0 GET against [addr]; [Ok body] on a 200.  The
    client side of the protocol, used by [tse_cli top] and the CI
    smoke leg's assertions. *)
