(* Domain-safe metrics.

   Counters are striped over a small array of [Atomic.t] cells indexed by
   the calling domain's id: increments from different domains usually hit
   different cells (no contended cache line on parallel scan hot paths)
   and every increment is an atomic RMW, so no update is ever lost —
   [counter_value] folds the stripes. Gauges are a single atomic cell
   (set/add are rare). Histograms take a per-histogram mutex: observations
   happen at batch granularity (group sizes, latencies), never per object.
   The registry itself is guarded by one mutex; handle registration
   happens at module-init time, snapshot/reset at reporting time. *)

let stripes = 8

let domain_slot () = (Domain.self () :> int) land (stripes - 1)

type counter = {
  c_name : string;
  c_labels : (string * string) list;
  c_cells : int Atomic.t array;
}

type gauge = {
  g_name : string;
  g_labels : (string * string) list;
  g_value : float Atomic.t;
}

type histogram = {
  hg_name : string;
  hg_labels : (string * string) list;
  hg_mu : Mutex.t;
  hg_bounds : float array;  (* ascending upper bounds *)
  hg_counts : int array;  (* per-bucket (non-cumulative), length bounds+1; last = +inf *)
  mutable hg_sum : float;
  mutable hg_count : int;
}

type metric = M_counter of counter | M_gauge of gauge | M_histogram of histogram

(* Keyed by name + canonically sorted labels. *)
let registry : (string * (string * string) list, metric) Hashtbl.t =
  Hashtbl.create 64

let reg_mu = Mutex.create ()

let locked f =
  Mutex.lock reg_mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock reg_mu) f

let canon labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | M_counter _ -> "counter"
  | M_gauge _ -> "gauge"
  | M_histogram _ -> "histogram"

let register name labels make describe =
  locked @@ fun () ->
  let key = (name, canon labels) in
  match Hashtbl.find_opt registry key with
  | Some m -> m
  | None ->
    (* Same name under different labels must keep one kind. *)
    Hashtbl.iter
      (fun (n, _) m ->
        if String.equal n name && not (String.equal (kind_name m) describe)
        then
          invalid_arg
            (Printf.sprintf "Metrics: %s already registered as a %s" name
               (kind_name m)))
      registry;
    let m = make (snd key) in
    Hashtbl.replace registry key m;
    m

let counter ?(labels = []) name =
  match
    register name labels
      (fun labels ->
        M_counter
          {
            c_name = name;
            c_labels = labels;
            c_cells = Array.init stripes (fun _ -> Atomic.make 0);
          })
      "counter"
  with
  | M_counter c -> c
  | m ->
    invalid_arg
      (Printf.sprintf "Metrics.counter: %s is a %s" name (kind_name m))

let incr c = Atomic.incr (Array.unsafe_get c.c_cells (domain_slot ()))

let add c n =
  ignore (Atomic.fetch_and_add (Array.unsafe_get c.c_cells (domain_slot ())) n)

let counter_value c =
  Array.fold_left (fun acc cell -> acc + Atomic.get cell) 0 c.c_cells

let gauge ?(labels = []) name =
  match
    register name labels
      (fun labels ->
        M_gauge { g_name = name; g_labels = labels; g_value = Atomic.make 0. })
      "gauge"
  with
  | M_gauge g -> g
  | m -> invalid_arg (Printf.sprintf "Metrics.gauge: %s is a %s" name (kind_name m))

let set_gauge g v = Atomic.set g.g_value v

let rec add_gauge g v =
  let cur = Atomic.get g.g_value in
  if not (Atomic.compare_and_set g.g_value cur (cur +. v)) then add_gauge g v

let gauge_value g = Atomic.get g.g_value

let default_buckets = [ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128.; 256.; 512.; 1024.; 2048.; 4096. ]

let histogram ?(labels = []) ?(buckets = default_buckets) name =
  let bounds = Array.of_list (List.sort_uniq compare buckets) in
  match
    register name labels
      (fun labels ->
        M_histogram
          {
            hg_name = name;
            hg_labels = labels;
            hg_mu = Mutex.create ();
            hg_bounds = bounds;
            hg_counts = Array.make (Array.length bounds + 1) 0;
            hg_sum = 0.;
            hg_count = 0;
          })
      "histogram"
  with
  | M_histogram h -> h
  | m ->
    invalid_arg
      (Printf.sprintf "Metrics.histogram: %s is a %s" name (kind_name m))

let observe h v =
  let n = Array.length h.hg_bounds in
  let rec bucket i = if i >= n then n else if v <= h.hg_bounds.(i) then i else bucket (i + 1) in
  let i = bucket 0 in
  Mutex.lock h.hg_mu;
  h.hg_counts.(i) <- h.hg_counts.(i) + 1;
  h.hg_sum <- h.hg_sum +. v;
  h.hg_count <- h.hg_count + 1;
  Mutex.unlock h.hg_mu

type hist_snapshot = {
  h_buckets : (float * int) list;
  h_inf : int;
  h_count : int;
  h_sum : float;
  h_p50 : float;
  h_p95 : float;
  h_p99 : float;
}

(* Quantile estimate from cumulative bucket counts: find the first
   bucket whose cumulative count reaches p*count and interpolate
   linearly between its lower and upper bound.  Observations above the
   last finite bound have no upper edge to interpolate toward, so
   quantiles landing in the +inf bucket report the last finite bound (a
   lower bound on the true quantile). *)
let percentile_of (h : hist_snapshot) p =
  if h.h_count = 0 then 0.
  else begin
    let p = Float.max 0. (Float.min 1. p) in
    let target = p *. float_of_int h.h_count in
    let rec go prev_bound prev_cum = function
      | [] -> prev_bound
      | (bound, cum) :: rest ->
        if float_of_int cum >= target && cum > prev_cum then begin
          let frac =
            (target -. float_of_int prev_cum)
            /. float_of_int (cum - prev_cum)
          in
          let frac = Float.max 0. (Float.min 1. frac) in
          prev_bound +. (frac *. (bound -. prev_bound))
        end
        else go bound cum rest
    in
    go 0. 0 h.h_buckets
  end

type value = Counter of int | Gauge of float | Histogram of hist_snapshot

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : value;
}

let snapshot_hist h =
  (* Cumulative counts per bound, Prometheus-style. *)
  Mutex.lock h.hg_mu;
  let counts = Array.copy h.hg_counts in
  let count = h.hg_count and sum = h.hg_sum in
  Mutex.unlock h.hg_mu;
  let acc = ref 0 in
  let buckets =
    Array.to_list
      (Array.mapi
         (fun i b ->
           acc := !acc + counts.(i);
           (b, !acc))
         h.hg_bounds)
  in
  let snap =
    {
      h_buckets = buckets;
      h_inf = counts.(Array.length h.hg_bounds);
      h_count = count;
      h_sum = sum;
      h_p50 = 0.;
      h_p95 = 0.;
      h_p99 = 0.;
    }
  in
  {
    snap with
    h_p50 = percentile_of snap 0.50;
    h_p95 = percentile_of snap 0.95;
    h_p99 = percentile_of snap 0.99;
  }

module Histogram = struct
  let percentile_of = percentile_of
  let percentile h p = percentile_of (snapshot_hist h) p

  (* Pure constructor: fold a list of raw observations into a
     [hist_snapshot] without touching the registry.  The uniform way for
     benches and harnesses to turn collected latencies into a quantile
     table instead of hand-rolling sort + index arithmetic. *)
  let of_observations ?(buckets = default_buckets) obs =
    let bounds = Array.of_list (List.sort_uniq compare buckets) in
    let n = Array.length bounds in
    let counts = Array.make (n + 1) 0 in
    let count = ref 0 and sum = ref 0. in
    List.iter
      (fun v ->
        let rec bucket i =
          if i >= n then n else if v <= bounds.(i) then i else bucket (i + 1)
        in
        let i = bucket 0 in
        counts.(i) <- counts.(i) + 1;
        count := !count + 1;
        sum := !sum +. v)
      obs;
    let acc = ref 0 in
    let hb =
      Array.to_list
        (Array.mapi
           (fun i b ->
             acc := !acc + counts.(i);
             (b, !acc))
           bounds)
    in
    let snap =
      {
        h_buckets = hb;
        h_inf = counts.(n);
        h_count = !count;
        h_sum = !sum;
        h_p50 = 0.;
        h_p95 = 0.;
        h_p99 = 0.;
      }
    in
    {
      snap with
      h_p50 = percentile_of snap 0.50;
      h_p95 = percentile_of snap 0.95;
      h_p99 = percentile_of snap 0.99;
    }
end

let snapshot () =
  locked (fun () -> Hashtbl.fold (fun _ m acc -> m :: acc) registry [])
  |> List.map (fun m ->
         match m with
         | M_counter c ->
           {
             s_name = c.c_name;
             s_labels = c.c_labels;
             s_value = Counter (counter_value c);
           }
         | M_gauge g ->
           {
             s_name = g.g_name;
             s_labels = g.g_labels;
             s_value = Gauge (Atomic.get g.g_value);
           }
         | M_histogram h ->
           {
             s_name = h.hg_name;
             s_labels = h.hg_labels;
             s_value = Histogram (snapshot_hist h);
           })
  |> List.sort (fun a b ->
         match String.compare a.s_name b.s_name with
         | 0 -> compare a.s_labels b.s_labels
         | c -> c)

let find_counter ?(labels = []) name =
  match locked (fun () -> Hashtbl.find_opt registry (name, canon labels)) with
  | Some (M_counter c) -> counter_value c
  | _ -> 0

let reset () =
  locked @@ fun () ->
  Hashtbl.iter
    (fun _ m ->
      match m with
      | M_counter c -> Array.iter (fun cell -> Atomic.set cell 0) c.c_cells
      | M_gauge g -> Atomic.set g.g_value 0.
      | M_histogram h ->
        Mutex.lock h.hg_mu;
        Array.fill h.hg_counts 0 (Array.length h.hg_counts) 0;
        h.hg_sum <- 0.;
        h.hg_count <- 0;
        Mutex.unlock h.hg_mu)
    registry

let nonzero samples =
  List.filter
    (fun s ->
      match s.s_value with
      | Counter 0 -> false
      | Gauge v -> v <> 0.
      | Histogram h -> h.h_count > 0
      | Counter _ -> true)
    samples

(* ---- rendering ------------------------------------------------------ *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%g" f

let key_of s =
  match s.s_labels with
  | [] -> s.s_name
  | labels ->
    let body =
      String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels)
    in
    Printf.sprintf "%s{%s}" s.s_name body

let bound_str b =
  if Float.is_integer b then Printf.sprintf "%.0f" b else Printf.sprintf "%g" b

let to_json samples =
  let buf = Buffer.create 1024 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":" (json_escape (key_of s)));
      match s.s_value with
      | Counter n -> Buffer.add_string buf (string_of_int n)
      | Gauge v -> Buffer.add_string buf (float_str v)
      | Histogram h ->
        Buffer.add_string buf
          (Printf.sprintf "{\"count\":%d,\"sum\":%s,\"buckets\":{" h.h_count
             (float_str h.h_sum));
        List.iteri
          (fun j (b, c) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf
              (Printf.sprintf "\"le_%s\":%d" (json_escape (bound_str b)) c))
          h.h_buckets;
        if h.h_buckets <> [] then Buffer.add_char buf ',';
        Buffer.add_string buf (Printf.sprintf "\"le_inf\":%d}}" h.h_count))
    samples;
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp_text ppf samples =
  List.iter
    (fun s ->
      match s.s_value with
      | Counter n -> Format.fprintf ppf "%-42s %d@." (key_of s) n
      | Gauge v -> Format.fprintf ppf "%-42s %s@." (key_of s) (float_str v)
      | Histogram h ->
        Format.fprintf ppf "%-42s count=%d sum=%s@." (key_of s) h.h_count
          (float_str h.h_sum);
        List.iter
          (fun (b, c) ->
            Format.fprintf ppf "%-42s   le %s: %d@." "" (bound_str b) c)
          h.h_buckets;
        Format.fprintf ppf "%-42s   le +inf: %d@." "" h.h_count)
    samples
