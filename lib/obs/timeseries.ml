type point = { ts_us : int; v : float }

type series = {
  kind : string;  (* "rate" | "gauge" | "quantile" *)
  data : point array;
  mutable head : int;  (* next write position *)
  mutable len : int;
}

type runner = { domain : unit Domain.t; wake_wr : Unix.file_descr }

type t = {
  capacity : int;
  mu : Mutex.t;
  series : (string, series) Hashtbl.t;
  baselines : (string, int) Hashtbl.t;  (* counter/hist-count last values *)
  mutable last_ts : int;  (* monotone clamp for tick timestamps *)
  mutable last_tick_us : int;  (* 0 until the first tick *)
  mutable period_ms : int;
  mutable runner : runner option;
}

let default_interval_ms () =
  match Sys.getenv_opt "TSE_SAMPLE_MS" with
  | Some s -> ( match int_of_string_opt s with Some n when n > 0 -> n | _ -> 250)
  | None -> 250

let create ?(capacity = 600) () =
  if capacity <= 0 then invalid_arg "Timeseries.create: capacity must be > 0";
  {
    capacity;
    mu = Mutex.create ();
    series = Hashtbl.create 64;
    baselines = Hashtbl.create 64;
    last_ts = 0;
    last_tick_us = 0;
    period_ms = default_interval_ms ();
    runner = None;
  }

let locked t f =
  Mutex.lock t.mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mu) f

let push t name kind ts_us v =
  let s =
    match Hashtbl.find_opt t.series name with
    | Some s -> s
    | None ->
      let s =
        { kind; data = Array.make t.capacity { ts_us = 0; v = 0. }; head = 0; len = 0 }
      in
      Hashtbl.add t.series name s;
      s
  in
  s.data.(s.head) <- { ts_us; v };
  s.head <- (s.head + 1) mod t.capacity;
  if s.len < t.capacity then s.len <- s.len + 1

(* Counter values only ever regress on a registry [reset]; clamping the
   delta keeps rates non-negative across one and re-baselines after. *)
let delta_of t key value =
  let prev = Hashtbl.find_opt t.baselines key in
  Hashtbl.replace t.baselines key value;
  match prev with
  | None -> None
  | Some p -> Some (if value >= p then value - p else 0)

let sample t =
  let samples = Metrics.snapshot () in
  locked t (fun () ->
      let wall = int_of_float (Unix.gettimeofday () *. 1e6) in
      let now = if wall > t.last_ts then wall else t.last_ts + 1 in
      t.last_ts <- now;
      let first = t.last_tick_us = 0 in
      let dt_s = float_of_int (now - t.last_tick_us) /. 1e6 in
      t.last_tick_us <- now;
      List.iter
        (fun s ->
          let key = Metrics.key_of s in
          match s.Metrics.s_value with
          | Metrics.Counter v -> (
            match delta_of t key v with
            | Some d when not first ->
              push t key "rate" now (float_of_int d /. dt_s)
            | _ -> ())
          | Metrics.Gauge v -> push t key "gauge" now v
          | Metrics.Histogram h ->
            (match delta_of t key h.Metrics.h_count with
            | Some d when not first ->
              push t (key ^ ".rate") "rate" now (float_of_int d /. dt_s)
            | _ -> ());
            if h.Metrics.h_count > 0 then begin
              push t (key ^ ".p50") "quantile" now h.Metrics.h_p50;
              push t (key ^ ".p95") "quantile" now h.Metrics.h_p95;
              push t (key ^ ".p99") "quantile" now h.Metrics.h_p99
            end)
        samples)

(* ---- background sampler --------------------------------------------- *)
(* OCaml has no timed condition wait, so the tick loop sleeps in
   [Unix.select] on a wake pipe: a timeout is a tick, a readable byte
   is the stop signal. *)

let start ?interval_ms t =
  let interval =
    match interval_ms with
    | Some n when n > 0 -> n
    | _ -> default_interval_ms ()
  in
  let spawn () =
    let wake_rd, wake_wr = Unix.pipe ~cloexec:true () in
    let period = float_of_int interval /. 1000. in
    let domain =
      Domain.spawn (fun () ->
          let buf = Bytes.create 1 in
          let rec loop () =
            match Unix.select [ wake_rd ] [] [] period with
            | [], _, _ ->
              sample t;
              loop ()
            | _ -> ignore (Unix.read wake_rd buf 0 1)
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
          in
          loop ();
          Unix.close wake_rd)
    in
    { domain; wake_wr }
  in
  let fresh =
    locked t (fun () ->
        match t.runner with
        | Some _ -> false
        | None ->
          t.period_ms <- interval;
          t.runner <- Some (spawn ());
          true)
  in
  if fresh then sample t (* establish baselines immediately *)

let stop t =
  (* Take the runner out under the lock, but join outside it: the
     sampler domain takes the same lock on every tick. *)
  let r = locked t (fun () -> let r = t.runner in t.runner <- None; r) in
  match r with
  | None -> ()
  | Some { domain; wake_wr } ->
    (try ignore (Unix.write wake_wr (Bytes.make 1 '\000') 0 1)
     with Unix.Unix_error _ -> ());
    Domain.join domain;
    (try Unix.close wake_wr with Unix.Unix_error _ -> ())

let running t = locked t (fun () -> t.runner <> None)
let interval_ms t = locked t (fun () -> t.period_ms)

let points_of s =
  List.init s.len (fun i ->
      let idx = (s.head - s.len + i + Array.length s.data) mod Array.length s.data in
      let p = s.data.(idx) in
      (p.ts_us, p.v))

let series_names t =
  locked t (fun () ->
      Hashtbl.fold (fun k _ acc -> k :: acc) t.series [])
  |> List.sort compare

let points t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.series name with
      | None -> []
      | Some s -> points_of s)

let last t name =
  match points t name with
  | [] -> None
  | ps -> Some (List.nth ps (List.length ps - 1))

let to_json t =
  let all =
    locked t (fun () ->
        Hashtbl.fold (fun k s acc -> (k, s.kind, points_of s) :: acc) t.series [])
    |> List.sort compare
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\"interval_ms\":%d,\"series\":[" (interval_ms t));
  List.iteri
    (fun i (name, kind, pts) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "{\"name\":\"%s\",\"kind\":\"%s\",\"points\":["
           (Metrics.json_escape name) kind);
      List.iteri
        (fun j (ts, v) ->
          if j > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "[%d,%.6g]" ts v))
        pts;
      Buffer.add_string buf "]}")
    all;
  Buffer.add_string buf "]}";
  Buffer.contents buf
