(** The write-ahead log: the durability substrate the paper delegates to
    GemStone ("persistent storage, concurrency control, etc.", Section 5).

    A log is a sequence of {e records}, each framed as

    {v u32le payload-length | u32le crc32(payload) | payload v}

    and each carrying one {e batch}: a sequence number plus the entries
    of one atomic commit (physical heap ops, an OID-generator watermark,
    and opaque extension entries for upper layers — schema blobs, base
    memberships). A batch is all-or-nothing by construction: a crash
    mid-append leaves a torn or checksum-corrupt tail record, which
    {!scan_file} detects and reports so recovery can truncate it —
    graceful degradation instead of refusal to open.

    Appends go through [Unix] descriptors and fsync before returning, and
    are guarded by the ["wal.append.before"], ["wal.append.short"],
    ["wal.append.fsync"] and ["wal.truncate.before"] failpoints. *)

type entry =
  | Op of Heap.op  (** one physical heap mutation *)
  | Gen of int  (** OID-generator watermark ({!Oid.Gen.peek}) *)
  | Ext of string * string
      (** upper-layer payload, opaque to the store: [(kind, blob)] *)

(** {2 Appending} *)

type t

val open_append : path:string -> t
(** Open (creating if needed) for appending. *)

val append : t -> seq:int -> entry list -> unit
(** Frame, checksum, write and fsync one batch. [seq] must increase
    strictly across the life of the database (recovery uses it to skip
    batches already folded into a checkpoint snapshot). *)

val reset : t -> unit
(** Truncate to empty (after a checkpoint folded the log into the
    snapshot). *)

val close : t -> unit

(** {2 Scanning (recovery)} *)

type batch = { seq : int; entries : entry list; start_off : int }

type scan = {
  batches : batch list;  (** every decodable batch, in log order *)
  valid_len : int;  (** bytes of trustworthy prefix *)
  file_len : int;
  reason : string option;
      (** why scanning stopped before [file_len], if it did *)
}

val scan_file : path:string -> scan
(** Read and verify the log. Never raises on torn or corrupt content —
    the bad tail is described by [reason]/[valid_len] instead. A missing
    file is an empty log. *)

val scan_string : string -> scan

val truncate_file : path:string -> int -> unit
(** Cut the log back to the trustworthy prefix. *)

val encode_record : seq:int -> entry list -> string
(** The exact bytes {!append} writes (exposed for tests). *)
