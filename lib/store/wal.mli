(** The write-ahead log: the durability substrate the paper delegates to
    GemStone ("persistent storage, concurrency control, etc.", Section 5).

    A log is a sequence of {e records}, each framed as

    {v u32le payload-length | u32le crc32(payload) | payload v}

    and each carrying one {e batch}: a sequence number plus the entries
    of one atomic commit (physical heap ops, an OID-generator watermark,
    and opaque extension entries for upper layers — schema blobs, base
    memberships). A batch is all-or-nothing by construction: a crash
    mid-append leaves a torn or checksum-corrupt tail record, which
    {!scan_file} detects and reports so recovery can truncate it —
    graceful degradation instead of refusal to open.

    There are two ways to get a batch into the file. {!append} frames,
    writes and fsyncs one batch — durable when it returns. The group
    pipeline splits that: {!append_nosync} only frames the batch into an
    in-memory buffer, and {!sync} flushes every buffered batch with one
    contiguous write followed by one fsync — the amortization {!stats}
    measures. A crash between the two loses exactly the buffered tail;
    a crash inside {!sync} leaves a prefix of the group on disk (whole
    records survive the torn-tail scan, the rest is truncated).

    Appends go through [Unix] descriptors and are guarded by the
    ["wal.append.before"], ["wal.append.short"], ["wal.append.fsync"]
    failpoints (eager path), ["wal.group.append"], ["wal.group.fsync"]
    (group path: crash/short at the buffer boundary, crash before the
    group's single fsync) and ["wal.truncate.before"]. A failed [fsync]
    on the data path raises — it is never swallowed, because the caller
    is about to report durability. *)

type entry =
  | Op of Heap.op  (** one physical heap mutation *)
  | Gen of int  (** OID-generator watermark ({!Oid.Gen.peek}) *)
  | Ext of string * string
      (** upper-layer payload, opaque to the store: [(kind, blob)] *)
  | Evo_begin of { eid : int; view : string; payload : string }
      (** intent record of a schema evolution: [payload] is the encoded
          change list (opaque to the store), [view] the target view,
          [eid] the evolution id (the begin batch's own sequence
          number). Appended as a batch of its own, fsynced. *)
  | Evo_commit of { eid : int; view : string }
      (** decision marker: the evolution [eid] {e will} happen. Recovery
          rolls a committed evolution forward; a begin with no commit is
          discarded (rolled back). Appended as a batch of its own,
          fsynced. *)
  | Evo_done of { eid : int; ok : bool }
      (** the evolution's effects are in the log ([ok = true]; the marker
          rides in the same batch as the physical effects, making them
          one atomic unit) or the evolution was aborted after a failed
          roll-forward ([ok = false]). Either way recovery stops
          replaying it. *)

(** {2 Appending} *)

type t

val open_append : path:string -> t
(** Open (creating if needed) for appending. *)

val append : t -> seq:int -> entry list -> unit
(** Frame, checksum, write and fsync one batch, flushing any buffered
    group first so log order matches commit order. [seq] must increase
    strictly across the life of the database (recovery uses it to skip
    batches already folded into a checkpoint snapshot). *)

val append_nosync : t -> seq:int -> entry list -> unit
(** Frame and checksum one batch into the in-memory group buffer.
    Nothing touches the file until {!sync}; a crash before it loses the
    batch. *)

val sync : t -> unit
(** The sync barrier: write every buffered batch as one contiguous
    stretch of records, then fsync once. No-op when nothing is buffered.
    On return the whole group is durable; on [Unix_error] nothing may be
    assumed durable. *)

val pending_batches : t -> int
(** Batches framed by {!append_nosync} and not yet flushed by {!sync}. *)

(** Amortization counters, cumulative over the life of the handle. One
    {!append} counts as one framed batch and one sync of its own;
    [batches_framed / syncs] is therefore the measured batches-per-fsync
    whatever mix of paths produced the log. *)
type stats = {
  mutable fsyncs : int;  (** [Unix.fsync] calls on the log descriptor *)
  mutable syncs : int;  (** barriers that actually flushed data *)
  mutable batches_framed : int;
  mutable bytes_framed : int;  (** framed record bytes, headers included *)
  mutable max_batches_per_sync : int;
}

val stats : t -> stats

val reset : t -> unit
(** Truncate to empty (after a checkpoint folded the log into the
    snapshot), discarding any buffered batches with it. *)

val close : t -> unit
(** Flush any buffered group ({!sync}, so a failing flush raises rather
    than silently dropping the tail), then close the descriptor. *)

val abandon : t -> unit
(** Close the descriptor {e discarding} any buffered group — for
    dropping a handle whose in-memory state must not reach the file
    (after a simulated crash or a failed recovery roll-forward). *)

(** {2 Scanning (recovery)} *)

type batch = { seq : int; entries : entry list; start_off : int }

type scan = {
  batches : batch list;  (** every decodable batch, in log order *)
  valid_len : int;  (** bytes of trustworthy prefix *)
  file_len : int;
  reason : string option;
      (** why scanning stopped before [file_len], if it did *)
}

val scan_file : path:string -> scan
(** Read and verify the log. Never raises on torn or corrupt content —
    the bad tail is described by [reason]/[valid_len] instead. A missing
    file is an empty log. *)

val scan_string : string -> scan

val truncate_file : path:string -> int -> unit
(** Cut the log back to the trustworthy prefix. *)

val encode_record : seq:int -> entry list -> string
(** The exact bytes {!append} writes (exposed for tests). *)
