(** Named fault-injection points threaded through the store's file I/O.

    Production code declares its failpoints at module initialization and
    calls {!hit} (or {!short}) at the matching point; everything is a
    no-op unless a test has armed the point. Armed actions are one-shot:
    they disarm themselves when they fire, so recovery code re-entering
    the same I/O path does not re-trigger the fault.

    [Crash_now] simulates the process dying at that instant (the raised
    {!Crash} must escape to the test harness, which then drops every
    in-memory handle and re-opens from disk). [Error_now] simulates a
    recoverable I/O error. [Short_write n] asks the surrounding write to
    persist only the first [n] bytes and then crash — a torn write. *)

exception Crash of string
exception Io_error of string

type action = Crash_now | Error_now | Short_write of int

val declare : string -> unit
(** Register a failpoint name (idempotent). Production call sites declare
    every point they guard so tests can enumerate them. *)

val is_declared : string -> bool

val all : unit -> string list
(** Every declared failpoint, sorted — the crash-matrix test iterates
    this to prove it covers each one. *)

val arm : string -> action -> unit
(** @raise Invalid_argument on an undeclared name (catches typos). *)

val disarm : string -> unit
val reset : unit -> unit

val hit : string -> unit
(** Raise {!Crash} or {!Io_error} if the point is armed with
    [Crash_now] / [Error_now]; otherwise do nothing. One-shot. *)

val short : string -> len:int -> int option
(** [Some k] if the point is armed with [Short_write n] ([k = min n len]):
    the caller must write exactly [k] of its [len] bytes and then raise
    [Crash name] itself. One-shot. *)

val hit_count : string -> int
(** How many times the guarded point was reached (armed or not) since
    process start. Also exported to the metrics registry as
    [failpoint.hits{site=<name>}]. *)

val trip_count : string -> int
(** How many times an armed action actually fired at this point. Also
    exported as [failpoint.trips{site=<name>}]. Crash-matrix tests use
    this to prove the fault they armed was really exercised. *)
