type t = int

let equal = Int.equal
let compare = Int.compare

(* OIDs key the hottest tables in the system (heap cells, slicing impl
   maps, extents), so hashing must stay in OCaml: an inline
   multiplicative mix instead of the generic [Hashtbl.hash] C call per
   probe. The shift folds high bits back down because Hashtbl masks to
   the low bits of the bucket array. *)
let hash x =
  let h = x * 0x9E3779B1 in
  (h lxor (h lsr 23)) land max_int
let to_int t = t
let of_int i = i
let pp ppf t = Format.fprintf ppf "#%d" t
let to_string t = "#" ^ string_of_int t

module Gen = struct
  type t = { mutable next : int; mutable count : int }

  let create () = { next = 1; count = 0 }

  let fresh g =
    let o = g.next in
    g.next <- g.next + 1;
    g.count <- g.count + 1;
    o

  let count g = g.count
  let peek g = g.next
  let advance_to g next = if next > g.next then g.next <- next

  let mark_used g oid =
    if oid >= g.next then begin
      g.next <- oid + 1;
      g.count <- g.count + 1
    end
end

module Set = Set.Make (Int)
module Map = Map.Make (Int)

(* Growable array keyed directly by the (dense, sequential) OID: one
   bounds check and one load per probe, no hashing, and ascending-OID
   iteration walks memory sequentially. The mutable-table subset of the
   [Tbl] interface, for structures on scan-hot paths. *)
module Dense = struct
  type 'a t = { mutable arr : 'a option array; mutable live : int }

  let create n = { arr = Array.make (Stdlib.max n 1) None; live = 0 }

  let find_opt t o =
    if o < 0 || o >= Array.length t.arr then None else Array.unsafe_get t.arr o

  let mem t o = find_opt t o <> None

  let replace t o v =
    let n = Array.length t.arr in
    if o >= n then begin
      let grown = Array.make (Stdlib.max (2 * n) (o + 1)) None in
      Array.blit t.arr 0 grown 0 n;
      t.arr <- grown
    end;
    if t.arr.(o) = None then t.live <- t.live + 1;
    t.arr.(o) <- Some v

  let remove t o =
    if find_opt t o <> None then begin
      t.arr.(o) <- None;
      t.live <- t.live - 1
    end

  let iter f t =
    Array.iteri (fun o -> function Some v -> f o v | None -> ()) t.arr

  let fold f t init =
    let acc = ref init in
    Array.iteri (fun o -> function Some v -> acc := f o v !acc | None -> ())
      t.arr;
    !acc

  let capacity t = Array.length t.arr

  let iter_range ~lo ~hi f t =
    let hi = Stdlib.min hi (Array.length t.arr) in
    for o = Stdlib.max lo 0 to hi - 1 do
      match Array.unsafe_get t.arr o with Some v -> f o v | None -> ()
    done

  let fold_range ~lo ~hi f t init =
    let acc = ref init in
    iter_range ~lo ~hi (fun o v -> acc := f o v !acc) t;
    !acc

  let length t = t.live
end
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
