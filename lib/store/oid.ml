type t = int

let equal = Int.equal
let compare = Int.compare
let hash = Hashtbl.hash
let to_int t = t
let of_int i = i
let pp ppf t = Format.fprintf ppf "#%d" t
let to_string t = "#" ^ string_of_int t

module Gen = struct
  type t = { mutable next : int; mutable count : int }

  let create () = { next = 1; count = 0 }

  let fresh g =
    let o = g.next in
    g.next <- g.next + 1;
    g.count <- g.count + 1;
    o

  let count g = g.count
  let peek g = g.next
  let advance_to g next = if next > g.next then g.next <- next

  let mark_used g oid =
    if oid >= g.next then begin
      g.next <- oid + 1;
      g.count <- g.count + 1
    end
end

module Set = Set.Make (Int)
module Map = Map.Make (Int)
module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
