(** The object table: the persistent-store substrate standing in for
    GemStone (paper, Section 5).

    A heap cell is a tagged record of named slots. Both object models store
    their physical objects here: the intersection-class model stores one
    cell per conceptual object; the object-slicing model stores one cell per
    conceptual object plus one per implementation object.

    Mutations are journaled when a transaction is open (see {!Txn}). *)

type t

type cell = {
  oid : Oid.t;
  mutable tag : string;
      (** the owning class name (or an object-model-specific tag) *)
  slots : (string, Value.t) Hashtbl.t;
}

type op =
  | Alloc of Oid.t * string
  | Free of Oid.t
  | Set_tag of Oid.t * string
  | Set_slot of Oid.t * string * Value.t
  | Remove_slot of Oid.t * string
  | Swap of Oid.t * Oid.t
      (** The physical mutation language: what the WAL records and what
          {!Recovery} replays. Every state change of the heap — including
          the compensating changes performed by a transaction rollback —
          is expressible as a sequence of these. *)

val create : unit -> t

val set_logger : t -> (op -> unit) option -> unit
(** Install (or remove) the mutation observer. The logger sees every
    physical change in execution order, {e including} the compensating
    ops applied while a transaction aborts — so replaying the logged
    sequence against a copy of the starting heap reproduces the final
    heap exactly, whatever mix of commits and aborts produced it. Used by
    the durability layer ({!Tse_db.Durable}). *)

val gen : t -> Oid.Gen.t
(** The heap's OID generator (also used for fresh class ids by upper
    layers, so that every identifier in a database is unique). *)

val alloc : t -> tag:string -> Oid.t
(** Allocate a fresh empty cell. *)

val alloc_with : t -> tag:string -> (string * Value.t) list -> Oid.t

val alloc_raw : t -> oid:Oid.t -> tag:string -> Oid.t
(** Install a cell under a caller-chosen OID (snapshot loading). The
    generator is advanced past [oid].
    @raise Invalid_argument if the OID is already allocated. *)

val free : t -> Oid.t -> unit
(** Remove the cell. Freeing an unknown OID is a no-op. *)

val mem : t -> Oid.t -> bool
val find : t -> Oid.t -> cell option

val find_exn : t -> Oid.t -> cell
(** @raise Not_found if the OID is not allocated. *)

val tag_of : t -> Oid.t -> string
val set_tag : t -> Oid.t -> string -> unit

val get_slot : t -> Oid.t -> string -> Value.t
(** Missing slots read as [Value.Null]. *)

val slot_reader : t -> string -> Oid.t -> Value.t
(** [slot_reader t name] specializes {!get_slot} to [name]: the returned
    closure captures the cell table once, for compiled-predicate read
    loops. Missing slots read as [Value.Null].
    @raise Not_found if the OID is not allocated. *)

val set_slot : t -> Oid.t -> string -> Value.t -> unit
val remove_slot : t -> Oid.t -> string -> unit
val slot_names : t -> Oid.t -> string list
val slots : t -> Oid.t -> (string * Value.t) list

val copy_slots : t -> src:Oid.t -> dst:Oid.t -> unit
(** Copy every slot of [src] onto [dst] (intersection-class
    reclassification support). *)

val swap_identity : t -> Oid.t -> Oid.t -> unit
(** Exchange the contents (tag and slots) of two cells, leaving each OID in
    place: the "swap mechanism" that preserves object identity during
    intersection-class dynamic reclassification (Section 4.2). *)

val iter : t -> (cell -> unit) -> unit
val fold : t -> init:'a -> f:('a -> cell -> 'a) -> 'a

val capacity : t -> int
(** One past the largest OID currently representable without growing
    the cell array; [fold] over the whole heap equals [fold_range]
    over [\[0, capacity)].  Shard bound for parallel range walks. *)

val fold_range : t -> lo:int -> hi:int -> init:'a -> f:('a -> cell -> 'a) -> 'a
(** [fold] restricted to cells with [lo <= oid < hi] (clamped),
    ascending OID order within the range. *)

val cell_count : t -> int

val data_bytes : t -> int
(** Total payload bytes of all slot values currently stored. *)

(** {2 Journaling — used by {!Txn}} *)

val push_journal : t -> unit
val pop_journal_commit : t -> unit

val pop_journal_abort : t -> unit
(** Undo, in reverse order, every mutation recorded since the matching
    {!push_journal}. If an individual undo raises, the remaining entries
    are still undone, the journal stack stays balanced, and the first
    error is re-raised afterwards (the failed entry's change survives).
    Guarded by the ["txn.rollback"] failpoint. *)

val journal_depth : t -> int
