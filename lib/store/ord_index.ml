(* Ordered (range) index: attribute value -> OID set, kept in a balanced
   map so contiguous key ranges can be enumerated without touching the rest
   of the population.

   The key order must agree with the predicate language's comparison
   semantics (Expr.eval_cmp), not with Value.compare: Int and Float compare
   numerically there (3 = 3.0), so numeric keys share one ordering domain
   and 3 / 3.0 land in the same bucket. Other tags order among themselves;
   cross-tag keys are kept apart by tag rank and filtered out of range
   answers by bound compatibility. *)

let key_compare a b =
  match (a, b) with
  | Value.Int x, Value.Float y -> Float.compare (float_of_int x) y
  | Value.Float x, Value.Int y -> Float.compare x (float_of_int y)
  | _ -> Value.compare a b

module Key_map = Map.Make (struct
  type t = Value.t

  let compare = key_compare
end)

type bound = Value.t * bool (* value, inclusive? *)

type t = {
  mutable keys : Oid.Set.t Key_map.t;
  mutable entries : int;
}

let create () = { keys = Key_map.empty; entries = 0 }

let add t v oid =
  match Key_map.find_opt v t.keys with
  | Some set ->
    if not (Oid.Set.mem oid set) then begin
      t.keys <- Key_map.add v (Oid.Set.add oid set) t.keys;
      t.entries <- t.entries + 1
    end
  | None ->
    t.keys <- Key_map.add v (Oid.Set.singleton oid) t.keys;
    t.entries <- t.entries + 1

let remove t v oid =
  match Key_map.find_opt v t.keys with
  | None -> ()
  | Some set ->
    if Oid.Set.mem oid set then begin
      let set = Oid.Set.remove oid set in
      t.keys <-
        (if Oid.Set.is_empty set then Key_map.remove v t.keys
         else Key_map.add v set t.keys);
      t.entries <- t.entries - 1
    end

let lookup t v =
  match Key_map.find_opt v t.keys with Some s -> s | None -> Oid.Set.empty

(* A key participates in a range answer only if ordering it against every
   given bound is legal under the predicate semantics: null never orders,
   and cross-tag orderings (beyond the numeric Int/Float mix) are type
   errors, so such keys can never satisfy the original comparison. *)
let key_admissible v = function
  | None -> true
  | Some (b, _) ->
    (not (Value.equal v Value.Null)) && Value.tag_compatible v b

let above_lo v = function
  | None -> not (Value.equal v Value.Null)
  | Some (b, incl) ->
    let c = key_compare v b in
    if incl then c >= 0 else c > 0

let below_hi v = function
  | None -> true
  | Some (b, incl) ->
    let c = key_compare v b in
    if incl then c <= 0 else c < 0

let range t ~lo ~hi =
  if lo = None && hi = None then
    Key_map.fold
      (fun v set acc ->
        if Value.equal v Value.Null then acc else Oid.Set.union set acc)
      t.keys Oid.Set.empty
  else
    (* start at the lower bound and walk keys in order until the upper
       bound is passed; per-key admissibility discards null and
       incompatible-tag keys that happen to fall inside the walk *)
    let seq =
      match lo with
      | Some (b, _) -> Key_map.to_seq_from b t.keys
      | None -> Key_map.to_seq t.keys
    in
    let rec collect acc seq =
      match seq () with
      | Seq.Nil -> acc
      | Seq.Cons ((v, set), rest) ->
        if key_admissible v hi && not (below_hi v hi) then
          (* past an upper bound the key can legally order against *)
          acc
        else
          let acc =
            if
              key_admissible v lo && key_admissible v hi && above_lo v lo
              && below_hi v hi
            then Oid.Set.union set acc
            else acc
          in
          collect acc rest
    in
    collect Oid.Set.empty seq

let cardinal t = t.entries
let distinct_keys t = Key_map.cardinal t.keys

let clear t =
  t.keys <- Key_map.empty;
  t.entries <- 0

let overhead_bytes t =
  (* same accounting as the hash index, plus the tree nodes *)
  (t.entries * Stats.sizeof_oid) + (distinct_keys t * 4 * Stats.sizeof_pointer)

let of_seq seq =
  let t = create () in
  Seq.iter (fun (v, oid) -> add t v oid) seq;
  t
