(** Position-based primitive codecs shared by every persisted format
    (catalog blobs, WAL records, durable snapshots).

    Writers append to a [Buffer]; readers take [(string, pos)] and return
    [(value, pos')]. Ints are decimal + [';'], strings length-prefixed
    ([len ':' bytes]), bools one character, lists count-prefixed. *)

exception Corrupt of string * int
(** [(what, pos)] — raised by every reader on malformed input. WAL
    recovery catches it to truncate at the offending record; snapshot
    loaders convert it to [Failure]. *)

val add_int : Buffer.t -> int -> unit
val add_str : Buffer.t -> string -> unit
val add_bool : Buffer.t -> bool -> unit
val add_list : Buffer.t -> (Buffer.t -> 'a -> unit) -> 'a list -> unit
val read_int : string -> int -> int * int
val read_str : string -> int -> string * int
val read_bool : string -> int -> bool * int
val read_list : (string -> int -> 'a * int) -> string -> int -> 'a list * int

val fail_at : int -> string -> 'a
(** Raise {!Corrupt} — for composite readers built on these primitives. *)
