(** Ordered (range) indexes mapping attribute values to OID sets.

    Companion to the hash {!Index}: same (value, oid) entry model and the
    same event-driven maintenance contract, but keys live in a balanced map
    whose order matches the predicate language's comparison semantics
    (numeric [Int]/[Float] keys share one ordering domain, so [3] and [3.0]
    share a bucket), enabling sargable range lookups. *)

type t

type bound = Value.t * bool
(** A range endpoint: the value and whether the endpoint is inclusive. *)

val create : unit -> t

val add : t -> Value.t -> Oid.t -> unit
val remove : t -> Value.t -> Oid.t -> unit

val lookup : t -> Value.t -> Oid.Set.t
(** Equality probe; numeric keys compare numerically. *)

val range : t -> lo:bound option -> hi:bound option -> Oid.Set.t
(** All OIDs whose key falls in the (possibly half-open) interval. Keys
    that cannot legally order against a bound — [Null], or a tag
    incompatible with the bound's — are excluded, mirroring how the
    evaluator turns such comparisons into type errors (and the enclosing
    membership test into [false]). *)

val cardinal : t -> int
(** Number of (value, oid) entries. *)

val distinct_keys : t -> int
val clear : t -> unit

val overhead_bytes : t -> int
(** Managerial storage charged to the index: one OID-sized entry per
    (value, oid) pair plus tree-node overhead per distinct key. *)

val of_seq : (Value.t * Oid.t) Seq.t -> t
