exception Corrupt of string * int

let fail_at pos what = raise (Corrupt (what, pos))

let add_int buf i =
  Buffer.add_string buf (string_of_int i);
  Buffer.add_char buf ';'

let add_str buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s

let add_bool buf b = Buffer.add_char buf (if b then '1' else '0')

let add_list buf add xs =
  add_int buf (List.length xs);
  List.iter (add buf) xs

let int_of_string_at pos s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> fail_at pos (Printf.sprintf "bad int %S" s)

let read_int s pos =
  let j =
    try String.index_from s pos ';'
    with Not_found | Invalid_argument _ -> fail_at pos "unterminated int"
  in
  (int_of_string_at pos (String.sub s pos (j - pos)), j + 1)

let read_str s pos =
  let j =
    try String.index_from s pos ':'
    with Not_found | Invalid_argument _ -> fail_at pos "unterminated str"
  in
  let n = int_of_string_at pos (String.sub s pos (j - pos)) in
  if n < 0 || j + 1 + n > String.length s then fail_at pos "truncated str";
  (String.sub s (j + 1) n, j + 1 + n)

let read_bool s pos =
  if pos >= String.length s then fail_at pos "eof";
  match s.[pos] with
  | '1' -> (true, pos + 1)
  | '0' -> (false, pos + 1)
  | c -> fail_at pos (Printf.sprintf "bad bool %C" c)

let read_list read s pos =
  let n, pos = read_int s pos in
  if n < 0 then fail_at pos "negative list length";
  let rec go acc pos k =
    if k = 0 then (List.rev acc, pos)
    else
      let x, pos = read s pos in
      go (x :: acc) pos (k - 1)
  in
  go [] pos n
