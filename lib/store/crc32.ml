(* Standard CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320), the
   same checksum zlib and ethernet use. Table-driven, one byte at a time:
   plenty fast for WAL records and dependency-free. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref (Int32.of_int n) in
         for _ = 0 to 7 do
           if Int32.logand !c 1l <> 0l then
             c := Int32.logxor 0xEDB88320l (Int32.shift_right_logical !c 1)
           else c := Int32.shift_right_logical !c 1
         done;
         !c))

let update crc s pos len =
  let table = Lazy.force table in
  let crc = ref (Int32.lognot crc) in
  for i = pos to pos + len - 1 do
    let idx =
      Int32.to_int (Int32.logand (Int32.logxor !crc (Int32.of_int (Char.code s.[i]))) 0xFFl)
    in
    crc := Int32.logxor table.(idx) (Int32.shift_right_logical !crc 8)
  done;
  Int32.lognot !crc

let string s = update 0l s 0 (String.length s)
