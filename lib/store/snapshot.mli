(** Text snapshots of a heap.

    A stable, diffable line format (no [Marshal]) so that persisted
    databases survive compiler upgrades and can be inspected by hand:

    {v
    TSE-HEAP 1
    gen <next-oid>
    obj <oid> <tag> <nslots>
    slot <name> <value-encoding>
    ...
    end
    v} *)

val to_string : Heap.t -> string

val of_string : string -> Heap.t
(** @raise Failure on malformed input, naming the offending line number. *)

val save : Heap.t -> string -> unit
(** [save heap path] writes atomically (temp file + fsync + rename),
    guarded by the ["snapshot.*"] failpoints (see {!Storage}). *)

val load : string -> Heap.t
(** @raise Failure if the file cannot be read (the message names the
    path) or on malformed content. *)

val roundtrip_equal : Heap.t -> Heap.t -> bool
(** Structural equality of two heaps (same cells, tags and slots); used by
    the persistence tests. *)
