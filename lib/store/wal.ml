module Metrics = Tse_obs.Metrics
module Watchdog = Tse_obs.Watchdog
module Pool = Tse_pool.Pool

type entry =
  | Op of Heap.op
  | Gen of int
  | Ext of string * string
  | Evo_begin of { eid : int; view : string; payload : string }
  | Evo_commit of { eid : int; view : string }
  | Evo_done of { eid : int; ok : bool }

type stats = {
  mutable fsyncs : int;
  mutable syncs : int;
  mutable batches_framed : int;
  mutable bytes_framed : int;
  mutable max_batches_per_sync : int;
}

type t = {
  path : string;
  mutable fd : Unix.file_descr option;
  pending : Buffer.t;  (* framed records appended but not yet written *)
  mutable pending_batches : int;
  stats : stats;
}

(* The per-log [stats] record above stays the API benches and tests
   consume; these registry handles aggregate the same events across
   every open log for the global [stats]/metrics surface. *)
let m_fsyncs = Metrics.counter "wal.fsyncs"
let m_syncs = Metrics.counter "wal.syncs"
let m_batches_framed = Metrics.counter "wal.batches_framed"
let m_bytes_framed = Metrics.counter "wal.bytes_framed"
let m_resets = Metrics.counter "wal.resets"

let m_group_batches =
  Metrics.histogram ~buckets:[ 1.; 2.; 4.; 8.; 16.; 32.; 64.; 128. ]
    "wal.group_batches"

let fp_append_before = "wal.append.before"
let fp_append_short = "wal.append.short"
let fp_append_fsync = "wal.append.fsync"
let fp_group_append = "wal.group.append"
let fp_group_fsync = "wal.group.fsync"
let fp_truncate_before = "wal.truncate.before"

let () =
  List.iter Failpoint.declare
    [
      fp_append_before; fp_append_short; fp_append_fsync; fp_group_append;
      fp_group_fsync; fp_truncate_before;
    ]

(* ---------- entry codec (Codec primitives + Value encoding) ---------- *)

let add_oid buf o = Codec.add_int buf (Oid.to_int o)

let read_oid s pos =
  let i, pos = Codec.read_int s pos in
  (Oid.of_int i, pos)

let add_entry buf = function
  | Op (Heap.Alloc (o, tag)) ->
    Buffer.add_char buf 'A';
    add_oid buf o;
    Codec.add_str buf tag
  | Op (Heap.Free o) ->
    Buffer.add_char buf 'F';
    add_oid buf o
  | Op (Heap.Set_tag (o, tag)) ->
    Buffer.add_char buf 'T';
    add_oid buf o;
    Codec.add_str buf tag
  | Op (Heap.Set_slot (o, name, v)) ->
    Buffer.add_char buf 'S';
    add_oid buf o;
    Codec.add_str buf name;
    Value.encode buf v
  | Op (Heap.Remove_slot (o, name)) ->
    Buffer.add_char buf 'R';
    add_oid buf o;
    Codec.add_str buf name
  | Op (Heap.Swap (a, b)) ->
    Buffer.add_char buf 'W';
    add_oid buf a;
    add_oid buf b
  | Gen n ->
    Buffer.add_char buf 'G';
    Codec.add_int buf n
  | Ext (tag, payload) ->
    Buffer.add_char buf 'X';
    Codec.add_str buf tag;
    Codec.add_str buf payload
  | Evo_begin { eid; view; payload } ->
    Buffer.add_char buf 'B';
    Codec.add_int buf eid;
    Codec.add_str buf view;
    Codec.add_str buf payload
  | Evo_commit { eid; view } ->
    Buffer.add_char buf 'C';
    Codec.add_int buf eid;
    Codec.add_str buf view
  | Evo_done { eid; ok } ->
    Buffer.add_char buf 'D';
    Codec.add_int buf eid;
    Codec.add_int buf (if ok then 1 else 0)

let read_entry s pos =
  if pos >= String.length s then Codec.fail_at pos "eof in entry";
  match s.[pos] with
  | 'A' ->
    let o, pos = read_oid s (pos + 1) in
    let tag, pos = Codec.read_str s pos in
    (Op (Heap.Alloc (o, tag)), pos)
  | 'F' ->
    let o, pos = read_oid s (pos + 1) in
    (Op (Heap.Free o), pos)
  | 'T' ->
    let o, pos = read_oid s (pos + 1) in
    let tag, pos = Codec.read_str s pos in
    (Op (Heap.Set_tag (o, tag)), pos)
  | 'S' ->
    let o, pos = read_oid s (pos + 1) in
    let name, pos = Codec.read_str s pos in
    let v, pos = Value.decode s pos in
    (Op (Heap.Set_slot (o, name, v)), pos)
  | 'R' ->
    let o, pos = read_oid s (pos + 1) in
    let name, pos = Codec.read_str s pos in
    (Op (Heap.Remove_slot (o, name)), pos)
  | 'W' ->
    let a, pos = read_oid s (pos + 1) in
    let b, pos = read_oid s pos in
    (Op (Heap.Swap (a, b)), pos)
  | 'G' ->
    let n, pos = Codec.read_int s (pos + 1) in
    (Gen n, pos)
  | 'X' ->
    let tag, pos = Codec.read_str s (pos + 1) in
    let payload, pos = Codec.read_str s pos in
    (Ext (tag, payload), pos)
  | 'B' ->
    let eid, pos = Codec.read_int s (pos + 1) in
    let view, pos = Codec.read_str s pos in
    let payload, pos = Codec.read_str s pos in
    (Evo_begin { eid; view; payload }, pos)
  | 'C' ->
    let eid, pos = Codec.read_int s (pos + 1) in
    let view, pos = Codec.read_str s pos in
    (Evo_commit { eid; view }, pos)
  | 'D' ->
    let eid, pos = Codec.read_int s (pos + 1) in
    let ok, pos = Codec.read_int s pos in
    (match ok with
    | 0 -> (Evo_done { eid; ok = false }, pos)
    | 1 -> (Evo_done { eid; ok = true }, pos)
    | n -> Codec.fail_at pos (Printf.sprintf "bad Evo_done flag %d" n))
  | c -> Codec.fail_at pos (Printf.sprintf "bad entry tag %C" c)

(* ---------- record framing: u32le length, u32le crc32, payload ---------- *)

let header_len = 8

let put_u32le buf (v : int32) =
  for shift = 0 to 3 do
    Buffer.add_char buf
      (Char.chr
         (Int32.to_int (Int32.shift_right_logical v (shift * 8)) land 0xFF))
  done

let get_u32le s pos =
  let b i = Int32.of_int (Char.code s.[pos + i]) in
  Int32.logor (b 0)
    (Int32.logor
       (Int32.shift_left (b 1) 8)
       (Int32.logor (Int32.shift_left (b 2) 16) (Int32.shift_left (b 3) 24)))

let encode_record ~seq entries =
  let payload = Buffer.create 256 in
  Codec.add_int payload seq;
  Codec.add_list payload add_entry entries;
  let payload = Buffer.contents payload in
  let buf = Buffer.create (String.length payload + header_len) in
  put_u32le buf (Int32.of_int (String.length payload));
  put_u32le buf (Crc32.string payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

(* ---------- appending ---------- *)

let open_append ~path =
  let fd =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
  in
  {
    path;
    fd = Some fd;
    pending = Buffer.create 1024;
    pending_batches = 0;
    stats =
      {
        fsyncs = 0;
        syncs = 0;
        batches_framed = 0;
        bytes_framed = 0;
        max_batches_per_sync = 0;
      };
  }

let stats t = t.stats
let pending_batches t = t.pending_batches

let fd_exn t =
  match t.fd with
  | Some fd -> fd
  | None -> invalid_arg "Wal: log already closed"

let frame t ~seq entries =
  let record = encode_record ~seq entries in
  t.stats.batches_framed <- t.stats.batches_framed + 1;
  t.stats.bytes_framed <- t.stats.bytes_framed + String.length record;
  Metrics.incr m_batches_framed;
  Metrics.add m_bytes_framed (String.length record);
  record

(* Data-path fsyncs run under the stall watchdog: a slow disk shows up
   as a W301 warning and in the wal.fsync_ms histogram rather than as
   silent tail latency. *)
let timed_fsync fd =
  let t0 = Unix.gettimeofday () in
  Unix.fsync fd;
  Watchdog.observe_fsync ~ms:((Unix.gettimeofday () -. t0) *. 1000.)

let append_nosync t ~seq entries =
  ignore (fd_exn t);
  Failpoint.hit fp_group_append;
  Buffer.add_string t.pending (frame t ~seq entries);
  t.pending_batches <- t.pending_batches + 1

let sync t =
  if t.pending_batches > 0 then begin
    let fd = fd_exn t in
    let data = Buffer.contents t.pending in
    let batches = t.pending_batches in
    Buffer.clear t.pending;
    t.pending_batches <- 0;
    let len = String.length data in
    (match Failpoint.short fp_group_append ~len with
    | Some k ->
      Storage.write_all fd data 0 k;
      (* Crash simulation only: the [Crash] below escapes to the test
         harness, so no durability is reported — a failed flush of the
         deliberately torn bytes cannot fake anything. *)
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      raise (Failpoint.Crash fp_group_append)
    | None -> Storage.write_all fd data 0 len);
    Failpoint.hit fp_group_fsync;
    (* on the data path a failed fsync must propagate: the caller is about
       to treat the whole group as durable *)
    timed_fsync fd;
    t.stats.fsyncs <- t.stats.fsyncs + 1;
    t.stats.syncs <- t.stats.syncs + 1;
    Metrics.incr m_fsyncs;
    Metrics.incr m_syncs;
    Metrics.observe m_group_batches (float_of_int batches);
    if batches > t.stats.max_batches_per_sync then
      t.stats.max_batches_per_sync <- batches
  end

let append t ~seq entries =
  (* preserve log order if batches are already buffered (policy switch,
     explicit barrier racing an eager commit) *)
  sync t;
  let fd = fd_exn t in
  Failpoint.hit fp_append_before;
  let record = frame t ~seq entries in
  let len = String.length record in
  (match Failpoint.short fp_append_short ~len with
  | Some k ->
    Storage.write_all fd record 0 k;
    (* crash simulation only, as in [sync]: the raise below means no
       durability is ever reported for these torn bytes *)
    (try Unix.fsync fd with Unix.Unix_error _ -> ());
    raise (Failpoint.Crash fp_append_short)
  | None -> Storage.write_all fd record 0 len);
  Failpoint.hit fp_append_fsync;
  timed_fsync fd;
  t.stats.fsyncs <- t.stats.fsyncs + 1;
  t.stats.syncs <- t.stats.syncs + 1;
  Metrics.incr m_fsyncs;
  Metrics.incr m_syncs;
  Metrics.observe m_group_batches 1.;
  if t.stats.max_batches_per_sync = 0 then t.stats.max_batches_per_sync <- 1

let reset t =
  let fd = fd_exn t in
  (* anything still buffered is part of what the caller folded elsewhere
     (checkpoint) or is being discarded with the log *)
  Buffer.clear t.pending;
  t.pending_batches <- 0;
  Failpoint.hit fp_truncate_before;
  Unix.ftruncate fd 0;
  Unix.fsync fd;
  t.stats.fsyncs <- t.stats.fsyncs + 1;
  Metrics.incr m_fsyncs;
  Metrics.incr m_resets

let close t =
  match t.fd with
  | None -> ()
  | Some fd ->
    (* flush any buffered group; a failed write or fsync here propagates
       rather than silently dropping the tail *)
    sync t;
    t.fd <- None;
    Unix.close fd

let abandon t =
  match t.fd with
  | None -> ()
  | Some fd ->
    (* deliberately NOT synced: the handle is being dropped as if the
       process had died (simulated crash, poisoned in-memory state) and
       buffered frames must not reach the file *)
    Buffer.clear t.pending;
    t.pending_batches <- 0;
    t.fd <- None;
    Unix.close fd

(* ---------- scanning ---------- *)

type batch = { seq : int; entries : entry list; start_off : int }

type scan = {
  batches : batch list;
  valid_len : int;
  file_len : int;
  reason : string option;
}

let decode_payload payload =
  let seq, pos = Codec.read_int payload 0 in
  let entries, pos = Codec.read_list read_entry payload pos in
  if pos <> String.length payload then
    Codec.fail_at pos "trailing garbage in record";
  (seq, entries)

let scan_string s =
  let len = String.length s in
  let rec go acc pos =
    if pos = len then (List.rev acc, pos, None)
    else if pos + header_len > len then
      (List.rev acc, pos, Some "torn record header")
    else
      let n = Int32.to_int (get_u32le s pos) in
      if n < 0 || pos + header_len + n > len then
        (List.rev acc, pos, Some "torn record body")
      else
        let crc = get_u32le s (pos + 4) in
        let payload = String.sub s (pos + header_len) n in
        if Crc32.string payload <> crc then
          (List.rev acc, pos, Some "checksum mismatch")
        else
          match decode_payload payload with
          | seq, entries ->
            go ({ seq; entries; start_off = pos } :: acc) (pos + header_len + n)
          | exception Codec.Corrupt (what, _) ->
            (List.rev acc, pos, Some ("undecodable record: " ^ what))
          | exception Failure what ->
            (List.rev acc, pos, Some ("undecodable record: " ^ what))
  in
  let batches, valid_len, reason = go [] 0 in
  { batches; valid_len; file_len = len; reason }

(* Parallel scan: the frame boundary walk (length-prefix hopping) is
   inherently sequential but touches only 8 bytes per frame; the CRC32
   over every payload byte and the record decode are the real cost and
   are independent per frame.  So: walk boundaries first, then verify +
   decode frames in parallel, then merge in frame order keeping batches
   strictly before the first failure — the earliest failed frame (by
   offset) determines [valid_len]/[reason] exactly as the sequential
   scan's early stop does, and results from later frames are discarded. *)
let scan_string_par pool s =
  let len = String.length s in
  let rec walk acc pos =
    if pos = len then (List.rev acc, pos, None)
    else if pos + header_len > len then
      (List.rev acc, pos, Some "torn record header")
    else
      let n = Int32.to_int (get_u32le s pos) in
      if n < 0 || pos + header_len + n > len then
        (List.rev acc, pos, Some "torn record body")
      else walk ((pos, n) :: acc) (pos + header_len + n)
  in
  let frames, tail_pos, tail_reason = walk [] 0 in
  let frames = Array.of_list frames in
  let verdicts =
    Pool.map_chunks pool ~n:(Array.length frames) (fun ~lo ~hi ->
        let out = ref [] in
        for i = hi - 1 downto lo do
          let pos, n = frames.(i) in
          let crc = get_u32le s (pos + 4) in
          let payload = String.sub s (pos + header_len) n in
          let v =
            if Crc32.string payload <> crc then Error "checksum mismatch"
            else
              match decode_payload payload with
              | seq, entries -> Ok { seq; entries; start_off = pos }
              | exception Codec.Corrupt (what, _) ->
                Error ("undecodable record: " ^ what)
              | exception Failure what ->
                Error ("undecodable record: " ^ what)
          in
          out := v :: !out
        done;
        !out)
    |> List.concat
  in
  let rec merge acc i = function
    | [] -> { batches = List.rev acc; valid_len = tail_pos; file_len = len; reason = tail_reason }
    | Ok b :: rest -> merge (b :: acc) (i + 1) rest
    | Error reason :: _ ->
      let pos, _ = frames.(i) in
      { batches = List.rev acc; valid_len = pos; file_len = len; reason = Some reason }
  in
  merge [] 0 verdicts

let scan_string s =
  let pool = Pool.global () in
  if Pool.size pool > 1 && String.length s >= Pool.threshold () * 16 then
    scan_string_par pool s
  else scan_string s

let scan_file ~path =
  if not (Sys.file_exists path) then
    { batches = []; valid_len = 0; file_len = 0; reason = None }
  else scan_string (Storage.read_file path)

let truncate_file ~path n =
  let fd = Unix.openfile path [ Unix.O_WRONLY ] 0o644 in
  Fun.protect
    ~finally:(fun () -> Unix.close fd)
    (fun () ->
      Unix.ftruncate fd n;
      Unix.fsync fd)
