let fp_names prefix =
  [
    prefix ^ ".write.before";
    prefix ^ ".write.short";
    prefix ^ ".fsync";
    prefix ^ ".rename.before";
    prefix ^ ".rename.after";
  ]

let declare_failpoints prefix = List.iter Failpoint.declare (fp_names prefix)

let write_all fd s pos len =
  let rec go pos len =
    if len > 0 then begin
      let n = Unix.write_substring fd s pos len in
      go (pos + n) (len - n)
    end
  in
  go pos len

let write_atomic ~fp ~path contents =
  Failpoint.hit (fp ^ ".write.before");
  let tmp = path ^ ".tmp" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let len = String.length contents in
  (try
     match Failpoint.short (fp ^ ".write.short") ~len with
     | Some k ->
       write_all fd contents 0 k;
       (try Unix.fsync fd with Unix.Unix_error _ -> ());
       Unix.close fd;
       raise (Failpoint.Crash (fp ^ ".write.short"))
     | None ->
       write_all fd contents 0 len;
       Failpoint.hit (fp ^ ".fsync");
       Unix.fsync fd;
       Unix.close fd
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  Failpoint.hit (fp ^ ".rename.before");
  Sys.rename tmp path;
  Failpoint.hit (fp ^ ".rename.after")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let remove_if_exists path = if Sys.file_exists path then Sys.remove path
