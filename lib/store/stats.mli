(** Storage accounting, following Table 1 of the paper.

    Table 1 compares the object-slicing and intersection-class architectures
    on managerial storage: the slicing model pays
    [(1 + n_impl) * sizeof_oid + n_impl * 2 * sizeof_pointer] per object,
    the intersection-class model pays [sizeof_oid]. These constants and the
    counters that the two object models update live here so the bench
    harness can report both sides with identical bookkeeping.

    The record is private: all mutation goes through the functions below,
    which mirror every update into the global metrics registry
    ([table1.*] names) so the Table 1 numbers appear alongside the rest of
    the system's counters. Reads remain plain field accesses. *)

val sizeof_oid : int
(** Bytes charged per object identifier (8, a 64-bit OID). *)

val sizeof_pointer : int
(** Bytes charged per intra-store pointer (8). *)

type t = private {
  mutable oids_allocated : int;  (** OIDs handed out (conceptual + impl). *)
  mutable pointers : int;  (** conceptual<->implementation link pointers *)
  mutable data_bytes : int;  (** payload bytes of slot values *)
  mutable classes_created : int;
      (** classes created by the model itself (e.g. intersection classes) *)
  mutable objects_created : int;  (** conceptual objects *)
  mutable copies : int;
      (** whole-object value copies (intersection-class reclassification) *)
  mutable identity_swaps : int;
}

val create : unit -> t

val reset : t -> unit
(** Zero the per-model struct. The registry aggregates are monotonic and
    are not rewound. *)

val incr_oids : t -> unit
val add_pointers : t -> int -> unit

val add_data_bytes : t -> int -> unit
(** Delta in bytes; may be negative (value overwritten by a smaller one). *)

val incr_classes : t -> unit
val incr_objects : t -> unit
val incr_copies : t -> unit
val incr_swaps : t -> unit

val managerial_bytes : t -> int
(** [oids_allocated * sizeof_oid + pointers * sizeof_pointer]: Table 1's
    "storage for managerial purpose" row. *)

val oids_per_object : t -> float
(** Average identifiers per conceptual object: Table 1's "#oids" row. *)

val pp : Format.formatter -> t -> unit
