module Metrics = Tse_obs.Metrics
module Trace = Tse_obs.Trace

let m_replays = Metrics.counter "recovery.replays"
let m_batches_applied = Metrics.counter "recovery.batches_applied"
let m_entries_applied = Metrics.counter "recovery.entries_applied"
let m_batches_skipped = Metrics.counter "recovery.batches_skipped"
let m_truncations = Metrics.counter "recovery.truncations"
let m_dropped_bytes = Metrics.counter "recovery.dropped_bytes"

type report = {
  batches_applied : int;
  entries_applied : int;
  batches_skipped : int;
  dropped_bytes : int;
  reason : string option;
  last_seq : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>replayed %d batch(es) (%d entr%s), skipped %d already-checkpointed@ \
     dropped %d byte(s)%s@]"
    r.batches_applied r.entries_applied
    (if r.entries_applied = 1 then "y" else "ies")
    r.batches_skipped r.dropped_bytes
    (match r.reason with None -> "" | Some why -> ": " ^ why)

let apply_op heap = function
  | Heap.Alloc (oid, tag) ->
    if Heap.mem heap oid then Heap.set_tag heap oid tag
    else ignore (Heap.alloc_raw heap ~oid ~tag)
  | Heap.Free oid -> Heap.free heap oid
  | Heap.Set_tag (oid, tag) -> Heap.set_tag heap oid tag
  | Heap.Set_slot (oid, name, v) -> Heap.set_slot heap oid name v
  | Heap.Remove_slot (oid, name) -> Heap.remove_slot heap oid name
  | Heap.Swap (a, b) -> Heap.swap_identity heap a b

let replay ~heap ~path ~after ~on_ext =
  Metrics.incr m_replays;
  Trace.with_span ~attrs:[ ("path", path) ] "recovery.replay" @@ fun () ->
  let scan = Wal.scan_file ~path in
  let applied = ref 0 and entries = ref 0 and skipped = ref 0 in
  let last_seq = ref after in
  let stopped_at = ref None in
  (* A batch that fails to apply (it references state the snapshot does not
     contain — possible only if snapshot and log are from different
     databases, or the prefix itself was damaged) ends the replay there:
     everything from that batch on is dropped and reported, mirroring how a
     corrupt record truncates the log. *)
  (try
     List.iter
       (fun (b : Wal.batch) ->
         if b.seq <= after then incr skipped
         else begin
           stopped_at := Some b.start_off;
           List.iter
             (fun entry ->
               (match entry with
               | Wal.Op op -> apply_op heap op
               | Wal.Gen n -> Oid.Gen.advance_to (Heap.gen heap) n
               | Wal.Ext (kind, payload) -> on_ext kind payload);
               incr entries)
             b.entries;
           stopped_at := None;
           last_seq := max !last_seq b.seq;
           incr applied
         end)
       scan.batches
   with e ->
     let what = Printexc.to_string e in
     let off = Option.value !stopped_at ~default:scan.valid_len in
     if off < scan.file_len then Wal.truncate_file ~path off;
     raise
       (Failure
          (Printf.sprintf "Recovery: batch at offset %d failed to apply: %s"
             off what)));
  let dropped = scan.file_len - scan.valid_len in
  if dropped > 0 then begin
    Wal.truncate_file ~path scan.valid_len;
    Metrics.incr m_truncations;
    Metrics.add m_dropped_bytes dropped
  end;
  Metrics.add m_batches_applied !applied;
  Metrics.add m_entries_applied !entries;
  Metrics.add m_batches_skipped !skipped;
  {
    batches_applied = !applied;
    entries_applied = !entries;
    batches_skipped = !skipped;
    dropped_bytes = dropped;
    reason = scan.reason;
    last_seq = !last_seq;
  }
