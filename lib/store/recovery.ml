module Metrics = Tse_obs.Metrics
module Trace = Tse_obs.Trace

let m_replays = Metrics.counter "recovery.replays"
let m_batches_applied = Metrics.counter "recovery.batches_applied"
let m_entries_applied = Metrics.counter "recovery.entries_applied"
let m_batches_skipped = Metrics.counter "recovery.batches_skipped"
let m_truncations = Metrics.counter "recovery.truncations"
let m_dropped_bytes = Metrics.counter "recovery.dropped_bytes"

type pending_evolution = { eid : int; view : string; payload : string }

type report = {
  batches_applied : int;
  entries_applied : int;
  batches_skipped : int;
  dropped_bytes : int;
  reason : string option;
  last_seq : int;
  evo_pending : pending_evolution list;
  evo_discarded : int;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>replayed %d batch(es) (%d entr%s), skipped %d already-checkpointed@ \
     dropped %d byte(s)%s"
    r.batches_applied r.entries_applied
    (if r.entries_applied = 1 then "y" else "ies")
    r.batches_skipped r.dropped_bytes
    (match r.reason with None -> "" | Some why -> ": " ^ why);
  (match r.evo_pending with
  | [] -> ()
  | ps ->
    Format.fprintf ppf "@ %d committed evolution(s) to roll forward (%s)"
      (List.length ps)
      (String.concat ", " (List.map (fun p -> string_of_int p.eid) ps)));
  if r.evo_discarded > 0 then
    Format.fprintf ppf "@ %d uncommitted evolution(s) rolled back"
      r.evo_discarded;
  Format.fprintf ppf "@]"

let apply_op heap = function
  | Heap.Alloc (oid, tag) ->
    if Heap.mem heap oid then Heap.set_tag heap oid tag
    else ignore (Heap.alloc_raw heap ~oid ~tag)
  | Heap.Free oid -> Heap.free heap oid
  | Heap.Set_tag (oid, tag) -> Heap.set_tag heap oid tag
  | Heap.Set_slot (oid, name, v) -> Heap.set_slot heap oid name v
  | Heap.Remove_slot (oid, name) -> Heap.remove_slot heap oid name
  | Heap.Swap (a, b) -> Heap.swap_identity heap a b

let replay ~heap ~path ~after ~on_ext =
  Metrics.incr m_replays;
  Trace.with_span ~attrs:[ ("path", path) ] "recovery.replay" @@ fun () ->
  let scan = Wal.scan_file ~path in
  let applied = ref 0 and entries = ref 0 and skipped = ref 0 in
  let last_seq = ref after in
  let stopped_at = ref None in
  (* evolution protocol state: begins awaiting a commit marker, committed
     evolutions (in log order) awaiting their done marker *)
  let begun : (int, pending_evolution) Hashtbl.t = Hashtbl.create 4 in
  let committed = ref [] (* newest first *) in
  let done_ids : (int, unit) Hashtbl.t = Hashtbl.create 4 in
  (* A batch that fails to apply (it references state the snapshot does not
     contain — possible only if snapshot and log are from different
     databases, or the prefix itself was damaged) ends the replay there:
     everything from that batch on is dropped and reported, mirroring how a
     corrupt record truncates the log. *)
  (try
     List.iter
       (fun (b : Wal.batch) ->
         if b.seq <= after then incr skipped
         else begin
           stopped_at := Some b.start_off;
           List.iter
             (fun entry ->
               (match entry with
               | Wal.Op op -> apply_op heap op
               | Wal.Gen n -> Oid.Gen.advance_to (Heap.gen heap) n
               | Wal.Ext (kind, payload) -> on_ext kind payload
               | Wal.Evo_begin { eid; view; payload } ->
                 Hashtbl.replace begun eid { eid; view; payload }
               | Wal.Evo_commit { eid; view = _ } -> (
                 (* a commit without its begin cannot be replayed (the
                    intent payload is gone); treat it as discarded *)
                 match Hashtbl.find_opt begun eid with
                 | Some p ->
                   Hashtbl.remove begun eid;
                   committed := p :: !committed
                 | None -> ())
               | Wal.Evo_done { eid; ok = _ } ->
                 Hashtbl.replace done_ids eid ();
                 Hashtbl.remove begun eid);
               incr entries)
             b.entries;
           stopped_at := None;
           last_seq := max !last_seq b.seq;
           incr applied
         end)
       scan.batches
   with e ->
     let what = Printexc.to_string e in
     let off = Option.value !stopped_at ~default:scan.valid_len in
     if off < scan.file_len then Wal.truncate_file ~path off;
     raise
       (Failure
          (Printf.sprintf "Recovery: batch at offset %d failed to apply: %s"
             off what)));
  let dropped = scan.file_len - scan.valid_len in
  if dropped > 0 then begin
    Wal.truncate_file ~path scan.valid_len;
    Metrics.incr m_truncations;
    Metrics.add m_dropped_bytes dropped
  end;
  Metrics.add m_batches_applied !applied;
  Metrics.add m_entries_applied !entries;
  Metrics.add m_batches_skipped !skipped;
  let evo_pending =
    List.rev !committed
    |> List.filter (fun p -> not (Hashtbl.mem done_ids p.eid))
  in
  let evo_discarded = Hashtbl.length begun in
  Metrics.add (Metrics.counter "recovery.evo_pending") (List.length evo_pending);
  Metrics.add (Metrics.counter "recovery.evo_discarded") evo_discarded;
  {
    batches_applied = !applied;
    entries_applied = !entries;
    batches_skipped = !skipped;
    dropped_bytes = dropped;
    reason = scan.reason;
    last_seq = !last_seq;
    evo_pending;
    evo_discarded;
  }
