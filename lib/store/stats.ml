module Metrics = Tse_obs.Metrics

let sizeof_oid = 8
let sizeof_pointer = 8

type t = {
  mutable oids_allocated : int;
  mutable pointers : int;
  mutable data_bytes : int;
  mutable classes_created : int;
  mutable objects_created : int;
  mutable copies : int;
  mutable identity_swaps : int;
}

(* Registry mirrors: monotonic aggregates across every Stats.t instance
   (the slicing and intersection models each keep their own struct, but
   the metrics surface sees combined totals). data_bytes is a gauge —
   overwrites shrink it. *)
let m_oids = Metrics.counter "table1.oids_allocated"
let m_pointers = Metrics.counter "table1.pointers"
let m_data_bytes = Metrics.gauge "table1.data_bytes"
let m_classes = Metrics.counter "table1.classes_created"
let m_objects = Metrics.counter "table1.objects_created"
let m_copies = Metrics.counter "table1.copies"
let m_swaps = Metrics.counter "table1.identity_swaps"

let create () =
  {
    oids_allocated = 0;
    pointers = 0;
    data_bytes = 0;
    classes_created = 0;
    objects_created = 0;
    copies = 0;
    identity_swaps = 0;
  }

let reset t =
  (* Resets the per-model struct only; the registry aggregates stay
     monotonic (counters never rewind). *)
  t.oids_allocated <- 0;
  t.pointers <- 0;
  t.data_bytes <- 0;
  t.classes_created <- 0;
  t.objects_created <- 0;
  t.copies <- 0;
  t.identity_swaps <- 0

let incr_oids t =
  t.oids_allocated <- t.oids_allocated + 1;
  Metrics.incr m_oids

let add_pointers t n =
  t.pointers <- t.pointers + n;
  Metrics.add m_pointers n

let add_data_bytes t delta =
  t.data_bytes <- t.data_bytes + delta;
  Metrics.add_gauge m_data_bytes (float_of_int delta)

let incr_classes t =
  t.classes_created <- t.classes_created + 1;
  Metrics.incr m_classes

let incr_objects t =
  t.objects_created <- t.objects_created + 1;
  Metrics.incr m_objects

let incr_copies t =
  t.copies <- t.copies + 1;
  Metrics.incr m_copies

let incr_swaps t =
  t.identity_swaps <- t.identity_swaps + 1;
  Metrics.incr m_swaps

let managerial_bytes t =
  (t.oids_allocated * sizeof_oid) + (t.pointers * sizeof_pointer)

let oids_per_object t =
  if t.objects_created = 0 then 0.
  else float_of_int t.oids_allocated /. float_of_int t.objects_created

let pp ppf t =
  Format.fprintf ppf
    "@[<v>oids=%d pointers=%d data_bytes=%d managerial_bytes=%d@ \
     classes_created=%d objects=%d copies=%d swaps=%d oids/object=%.2f@]"
    t.oids_allocated t.pointers t.data_bytes (managerial_bytes t)
    t.classes_created t.objects_created t.copies t.identity_swaps
    (oids_per_object t)
