let needs_escape c = c = ' ' || c = '\n' || c = '\\'

let escape s =
  (* Tags and slot names are identifiers in practice, but stay safe. *)
  if not (String.exists needs_escape s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | ' ' -> Buffer.add_string buf "\\s"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\\' -> Buffer.add_string buf "\\\\"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let unescape_slow s =
  let buf = Buffer.create (String.length s) in
  let rec loop i =
    if i >= String.length s then Buffer.contents buf
    else if s.[i] = '\\' && i + 1 < String.length s then begin
      (match s.[i + 1] with
      | 's' -> Buffer.add_char buf ' '
      | 'n' -> Buffer.add_char buf '\n'
      | '\\' -> Buffer.add_char buf '\\'
      | c ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c);
      loop (i + 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0

let unescape s = if String.contains s '\\' then unescape_slow s else s

let to_string heap =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "TSE-HEAP 1\n";
  let max_oid =
    Heap.fold heap ~init:0 ~f:(fun acc c -> max acc (Oid.to_int c.Heap.oid))
  in
  Buffer.add_string buf (Printf.sprintf "gen %d\n" (max_oid + 1));
  let cells =
    Heap.fold heap ~init:[] ~f:(fun acc c -> c :: acc)
    |> List.sort (fun (a : Heap.cell) b -> Oid.compare a.oid b.oid)
  in
  List.iter
    (fun (c : Heap.cell) ->
      let slots =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.slots []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      Buffer.add_string buf
        (Printf.sprintf "obj %d %s %d\n" (Oid.to_int c.oid) (escape c.tag)
           (List.length slots));
      List.iter
        (fun (k, v) ->
          Buffer.add_string buf (Printf.sprintf "slot %s " (escape k));
          Value.encode buf v;
          Buffer.add_char buf '\n')
        slots)
    cells;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let m_encodes = Tse_obs.Metrics.counter "snapshot.encodes"
let m_decodes = Tse_obs.Metrics.counter "snapshot.decodes"

(* Instrumented shadow: spans cover the whole encode, counters aggregate
   across heaps. *)
let to_string heap =
  Tse_obs.Trace.with_span "snapshot.encode" @@ fun () ->
  Tse_obs.Metrics.incr m_encodes;
  to_string heap

let fail lineno line what =
  failwith (Printf.sprintf "Snapshot: line %d: %s in %S" lineno what line)

let of_string s =
  let heap = Heap.create () in
  let lines = String.split_on_char '\n' s in
  let current = ref None in
  let expect_slots = ref 0 in
  let seen_end = ref false in
  let handle lineno line =
    let fail what = fail lineno line what in
    if !seen_end || String.length line = 0 then ()
    else
      match String.split_on_char ' ' line with
      | [ "TSE-HEAP"; "1" ] -> ()
      | [ "gen"; _n ] -> ()
      | [ "obj"; oid_s; tag; nslots ] ->
        if !expect_slots > 0 then fail "previous object truncated";
        let oid = Oid.of_int (int_of_string oid_s) in
        let oid = Heap.alloc_raw heap ~oid ~tag:(unescape tag) in
        current := Some oid;
        expect_slots := int_of_string nslots
      | "slot" :: name :: rest ->
        let oid =
          match !current with
          | Some o -> o
          | None -> fail "slot before obj"
        in
        if !expect_slots <= 0 then fail "unexpected slot";
        let payload = String.concat " " rest in
        let v, _ = Value.decode payload 0 in
        Heap.set_slot heap oid (unescape name) v;
        expect_slots := !expect_slots - 1
      | [ "end" ] ->
        if !expect_slots > 0 then fail "truncated object";
        seen_end := true
      | _ -> fail "unrecognized line"
  in
  List.iteri (fun i line -> handle (i + 1) line) lines;
  if not !seen_end then failwith "Snapshot: missing end marker";
  heap

let of_string s =
  Tse_obs.Trace.with_span "snapshot.decode" @@ fun () ->
  Tse_obs.Metrics.incr m_decodes;
  of_string s

let () = Storage.declare_failpoints "snapshot"
let save heap path = Storage.write_atomic ~fp:"snapshot" ~path (to_string heap)

let load path =
  match Storage.read_file path with
  | s -> of_string s
  | exception Sys_error msg ->
    failwith (Printf.sprintf "Snapshot.load %S: %s" path msg)

let roundtrip_equal a b =
  let cells heap =
    Heap.fold heap ~init:[] ~f:(fun acc (c : Heap.cell) ->
        ( Oid.to_int c.oid,
          c.tag,
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.slots []
          |> List.sort Stdlib.compare )
        :: acc)
    |> List.sort Stdlib.compare
  in
  cells a = cells b
