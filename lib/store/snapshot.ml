module Pool = Tse_pool.Pool

let needs_escape c = c = ' ' || c = '\n' || c = '\\'

let escape s =
  (* Tags and slot names are identifiers in practice, but stay safe. *)
  if not (String.exists needs_escape s) then s
  else begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | ' ' -> Buffer.add_string buf "\\s"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\\' -> Buffer.add_string buf "\\\\"
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end

let unescape_slow s =
  let buf = Buffer.create (String.length s) in
  let rec loop i =
    if i >= String.length s then Buffer.contents buf
    else if s.[i] = '\\' && i + 1 < String.length s then begin
      (match s.[i + 1] with
      | 's' -> Buffer.add_char buf ' '
      | 'n' -> Buffer.add_char buf '\n'
      | '\\' -> Buffer.add_char buf '\\'
      | c ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf c);
      loop (i + 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      loop (i + 1)
    end
  in
  loop 0

let unescape s = if String.contains s '\\' then unescape_slow s else s

let encode_cell buf (c : Heap.cell) =
  let slots =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.slots []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Buffer.add_string buf
    (Printf.sprintf "obj %d %s %d\n" (Oid.to_int c.oid) (escape c.tag)
       (List.length slots));
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf (Printf.sprintf "slot %s " (escape k));
      Value.encode buf v;
      Buffer.add_char buf '\n')
    slots

let to_string heap =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "TSE-HEAP 1\n";
  let max_oid =
    Heap.fold heap ~init:0 ~f:(fun acc c -> max acc (Oid.to_int c.Heap.oid))
  in
  Buffer.add_string buf (Printf.sprintf "gen %d\n" (max_oid + 1));
  let pool = Pool.global () in
  if Pool.size pool > 1 && Heap.cell_count heap >= Pool.threshold () then begin
    (* Shard the encode by OID range: cells are immutable for the
       duration, each chunk renders into its own buffer, and chunk
       order equals ascending OID order — so the concatenation is
       byte-identical to the sequential encode. *)
    let parts =
      Pool.map_chunks pool ~n:(Heap.capacity heap) (fun ~lo ~hi ->
          let b = Buffer.create 4096 in
          Heap.fold_range heap ~lo ~hi ~init:() ~f:(fun () c ->
              encode_cell b c);
          Buffer.contents b)
    in
    List.iter (Buffer.add_string buf) parts
  end
  else
    Heap.fold heap ~init:[] ~f:(fun acc c -> c :: acc)
    |> List.sort (fun (a : Heap.cell) b -> Oid.compare a.oid b.oid)
    |> List.iter (encode_cell buf);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let m_encodes = Tse_obs.Metrics.counter "snapshot.encodes"
let m_decodes = Tse_obs.Metrics.counter "snapshot.decodes"

(* Instrumented shadow: spans cover the whole encode, counters aggregate
   across heaps. *)
let to_string heap =
  Tse_obs.Trace.with_span "snapshot.encode" @@ fun () ->
  Tse_obs.Metrics.incr m_encodes;
  to_string heap

let fail lineno line what =
  failwith (Printf.sprintf "Snapshot: line %d: %s in %S" lineno what line)

let of_string s =
  let heap = Heap.create () in
  let lines = String.split_on_char '\n' s in
  let current = ref None in
  let expect_slots = ref 0 in
  let seen_end = ref false in
  let handle lineno line =
    let fail what = fail lineno line what in
    if !seen_end || String.length line = 0 then ()
    else
      match String.split_on_char ' ' line with
      | [ "TSE-HEAP"; "1" ] -> ()
      | [ "gen"; _n ] -> ()
      | [ "obj"; oid_s; tag; nslots ] ->
        if !expect_slots > 0 then fail "previous object truncated";
        let oid = Oid.of_int (int_of_string oid_s) in
        let oid = Heap.alloc_raw heap ~oid ~tag:(unescape tag) in
        current := Some oid;
        expect_slots := int_of_string nslots
      | "slot" :: name :: rest ->
        let oid =
          match !current with
          | Some o -> o
          | None -> fail "slot before obj"
        in
        if !expect_slots <= 0 then fail "unexpected slot";
        let payload = String.concat " " rest in
        let v, _ = Value.decode payload 0 in
        Heap.set_slot heap oid (unescape name) v;
        expect_slots := !expect_slots - 1
      | [ "end" ] ->
        if !expect_slots > 0 then fail "truncated object";
        seen_end := true
      | _ -> fail "unrecognized line"
  in
  List.iteri (fun i line -> handle (i + 1) line) lines;
  if not !seen_end then failwith "Snapshot: missing end marker";
  heap

(* Parallel decode: hoist the per-line work that dominates the cost —
   word splitting and [Value.decode] of slot payloads — into a parallel
   classification pass over line chunks, then run the *same* sequential
   state machine over the classified lines on the coordinating domain.
   The machine re-checks every structural condition in the sequential
   order ("slot before obj" / "unexpected slot" / "previous object
   truncated" precede a stored payload-parse exception, exactly as the
   sequential branch bodies do), so error messages, error precedence and
   heap mutations are identical to [of_string].  Obj headers keep their
   raw fields: [int_of_string] and [Heap.alloc_raw] failures must
   interleave with heap allocation in sequential order. *)
type parsed_line =
  | P_skip  (* empty, header, or gen line — ignored anywhere *)
  | P_obj of string * string * string  (* raw oid, tag, nslots fields *)
  | P_slot of string * Value.t  (* unescaped name, decoded payload *)
  | P_slot_err of string * exn  (* name present but payload undecodable *)
  | P_end
  | P_other  (* unrecognized *)

let classify line =
  if String.length line = 0 then P_skip
  else
    match String.split_on_char ' ' line with
    | [ "TSE-HEAP"; "1" ] -> P_skip
    | [ "gen"; _n ] -> P_skip
    | [ "obj"; oid_s; tag; nslots ] -> P_obj (oid_s, tag, nslots)
    | "slot" :: name :: rest -> (
      let payload = String.concat " " rest in
      match Value.decode payload 0 with
      | v, _ -> P_slot (unescape name, v)
      | exception e -> P_slot_err (name, e))
    | [ "end" ] -> P_end
    | _ -> P_other

let of_string_par pool s =
  let heap = Heap.create () in
  let lines = Array.of_list (String.split_on_char '\n' s) in
  let parsed = Array.make (Array.length lines) P_skip in
  Pool.run pool ~n:(Array.length lines) (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        parsed.(i) <- classify lines.(i)
      done);
  let current = ref None in
  let expect_slots = ref 0 in
  let seen_end = ref false in
  let handle lineno line p =
    let fail what = fail lineno line what in
    if !seen_end then ()
    else
      match p with
      | P_skip -> ()
      | P_obj (oid_s, tag, nslots) ->
        if !expect_slots > 0 then fail "previous object truncated";
        let oid = Oid.of_int (int_of_string oid_s) in
        let oid = Heap.alloc_raw heap ~oid ~tag:(unescape tag) in
        current := Some oid;
        expect_slots := int_of_string nslots
      | P_slot (name, v) ->
        let oid =
          match !current with
          | Some o -> o
          | None -> fail "slot before obj"
        in
        if !expect_slots <= 0 then fail "unexpected slot";
        Heap.set_slot heap oid name v;
        expect_slots := !expect_slots - 1
      | P_slot_err (_name, e) ->
        (match !current with
        | Some _ -> ()
        | None -> fail "slot before obj");
        if !expect_slots <= 0 then fail "unexpected slot";
        raise e
      | P_end ->
        if !expect_slots > 0 then fail "truncated object";
        seen_end := true
      | P_other -> fail "unrecognized line"
  in
  Array.iteri (fun i p -> handle (i + 1) lines.(i) p) parsed;
  if not !seen_end then failwith "Snapshot: missing end marker";
  heap

let of_string s =
  let pool = Pool.global () in
  (* Gate on line count: tiny snapshots — including the hand-crafted
     corrupt corpora in the tests — stay on the sequential machine. *)
  let big () =
    let lines = ref 1 in
    String.iter (fun c -> if c = '\n' then incr lines) s;
    !lines >= Pool.threshold ()
  in
  if Pool.size pool > 1 && big () then of_string_par pool s else of_string s

let of_string s =
  Tse_obs.Trace.with_span "snapshot.decode" @@ fun () ->
  Tse_obs.Metrics.incr m_decodes;
  of_string s

let () = Storage.declare_failpoints "snapshot"
let save heap path = Storage.write_atomic ~fp:"snapshot" ~path (to_string heap)

let load path =
  match Storage.read_file path with
  | s -> of_string s
  | exception Sys_error msg ->
    failwith (Printf.sprintf "Snapshot.load %S: %s" path msg)

let roundtrip_equal a b =
  let cells heap =
    Heap.fold heap ~init:[] ~f:(fun acc (c : Heap.cell) ->
        ( Oid.to_int c.oid,
          c.tag,
          Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.slots []
          |> List.sort Stdlib.compare )
        :: acc)
    |> List.sort Stdlib.compare
  in
  cells a = cells b
