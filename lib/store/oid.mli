(** Object identifiers.

    Every conceptual object, implementation object and class record in the
    store is addressed by an OID. OIDs are never reused within a generator,
    which is what lets the object-slicing model keep stable conceptual
    identity across dynamic reclassification (paper, Section 4). *)

type t
(** An opaque object identifier. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_int : t -> int
(** Stable integer image of the OID, used by the snapshot format. *)

val of_int : int -> t
(** Inverse of {!to_int}; used only when loading snapshots. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** A source of fresh OIDs. Each database owns one generator so that
    identifiers are unique per database, not globally. *)
module Gen : sig
  type oid := t
  type t

  val create : unit -> t

  val fresh : t -> oid
  (** [fresh g] returns an OID never previously returned by [g]. *)

  val count : t -> int
  (** Number of OIDs handed out so far; Table 1's [#oids] accounting. *)

  val mark_used : t -> oid -> unit
  (** Inform the generator that [oid] is in use (snapshot loading), so that
      subsequent {!fresh} calls do not collide with it. *)

  val peek : t -> int
  (** The integer the next {!fresh} would return. Persisted by the WAL so
      that a recovered database never re-issues an OID that a committed —
      then destroyed — object once held. *)

  val advance_to : t -> int -> unit
  (** Ensure the next {!fresh} returns at least the given integer
    (WAL replay of a {!peek} record). Never moves backwards. *)
end

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
