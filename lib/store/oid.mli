(** Object identifiers.

    Every conceptual object, implementation object and class record in the
    store is addressed by an OID. OIDs are never reused within a generator,
    which is what lets the object-slicing model keep stable conceptual
    identity across dynamic reclassification (paper, Section 4). *)

type t
(** An opaque object identifier. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val to_int : t -> int
(** Stable integer image of the OID, used by the snapshot format. *)

val of_int : int -> t
(** Inverse of {!to_int}; used only when loading snapshots. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** A source of fresh OIDs. Each database owns one generator so that
    identifiers are unique per database, not globally. *)
module Gen : sig
  type oid := t
  type t

  val create : unit -> t

  val fresh : t -> oid
  (** [fresh g] returns an OID never previously returned by [g]. *)

  val count : t -> int
  (** Number of OIDs handed out so far; Table 1's [#oids] accounting. *)

  val mark_used : t -> oid -> unit
  (** Inform the generator that [oid] is in use (snapshot loading), so that
      subsequent {!fresh} calls do not collide with it. *)

  val peek : t -> int
  (** The integer the next {!fresh} would return. Persisted by the WAL so
      that a recovered database never re-issues an OID that a committed —
      then destroyed — object once held. *)

  val advance_to : t -> int -> unit
  (** Ensure the next {!fresh} returns at least the given integer
    (WAL replay of a {!peek} record). Never moves backwards. *)
end

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t

(** Growable array keyed directly by the (dense, sequential) OID: one
    bounds check and one load per probe, no hashing, and ascending-OID
    iteration walks memory sequentially. The mutable-table subset of the
    {!Tbl} interface, for structures on scan-hot paths. *)
module Dense : sig
  type oid := t
  type 'a t

  val create : int -> 'a t
  (** Initial capacity hint, as with [Hashtbl.create]. *)

  val find_opt : 'a t -> oid -> 'a option
  val mem : 'a t -> oid -> bool
  val replace : 'a t -> oid -> 'a -> unit
  val remove : 'a t -> oid -> unit

  val iter : (oid -> 'a -> unit) -> 'a t -> unit
  (** Ascending OID order. *)

  val fold : (oid -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
  (** Ascending OID order. *)

  val capacity : 'a t -> int
  (** Current backing-array length: one past the largest OID the store
      can hold without growing.  [iter]/[fold] over the whole store is
      equivalent to a range walk over [\[0, capacity)].  Shard bounds
      for parallel range walks. *)

  val iter_range : lo:int -> hi:int -> (oid -> 'a -> unit) -> 'a t -> unit
  (** [iter_range ~lo ~hi f t] visits live entries with [lo <= oid < hi]
      in ascending OID order.  Bounds are clamped to the store. *)

  val fold_range :
    lo:int -> hi:int -> (oid -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
  (** Range analogue of [fold]; ascending OID order within the range. *)

  val length : 'a t -> int
end
