(** CRC-32 (IEEE) checksums for WAL record integrity. *)

val string : string -> int32
(** Checksum of a whole string. [string "123456789" = 0xCBF43926l]. *)

val update : int32 -> string -> int -> int -> int32
(** [update crc s pos len] extends [crc] over [s.[pos .. pos+len-1]]. *)
