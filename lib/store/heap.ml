module Metrics = Tse_obs.Metrics

type cell = {
  oid : Oid.t;
  mutable tag : string;
  slots : (string, Value.t) Hashtbl.t;
}

(* Slot-level traffic counters, aggregated across every heap instance.
   These sit on the hottest paths in the system (formula evaluation
   reads), so they must stay plain field increments. *)
let m_reads = Metrics.counter "heap.slot_reads"
let m_writes = Metrics.counter "heap.slot_writes"
let m_allocs = Metrics.counter "heap.allocs"
let m_frees = Metrics.counter "heap.frees"
let m_swaps = Metrics.counter "heap.identity_swaps"
let m_rollbacks = Metrics.counter "heap.journal_aborts"

type op =
  | Alloc of Oid.t * string
  | Free of Oid.t
  | Set_tag of Oid.t * string
  | Set_slot of Oid.t * string * Value.t
  | Remove_slot of Oid.t * string
  | Swap of Oid.t * Oid.t

type undo = unit -> unit

(* OIDs are dense sequential ints (Oid.Gen), so the cell store is a
   growable array indexed by OID rather than a hash table: a lookup is
   one bounds check and one load, and extent scans in ascending OID
   order walk the array (and the cells, allocated in creation order)
   near-sequentially — the difference between cache-resident and
   miss-bound million-object scans. *)
type t = {
  mutable cells : cell option array;
  mutable live : int;
  gen : Oid.Gen.t;
  mutable journals : undo list ref list;
  mutable logger : (op -> unit) option;
}

let fp_rollback = "txn.rollback"
let () = Failpoint.declare fp_rollback

let create () =
  { cells = Array.make 256 None; live = 0; gen = Oid.Gen.create ();
    journals = []; logger = None }

let cell_opt t oid =
  let i = Oid.to_int oid in
  if i < 0 || i >= Array.length t.cells then None
  else Array.unsafe_get t.cells i

let put_cell t oid cell =
  let i = Oid.to_int oid in
  let n = Array.length t.cells in
  if i >= n then begin
    let grown = Array.make (Stdlib.max (2 * n) (i + 1)) None in
    Array.blit t.cells 0 grown 0 n;
    t.cells <- grown
  end;
  if t.cells.(i) = None then t.live <- t.live + 1;
  t.cells.(i) <- Some cell

let drop_cell t oid =
  if cell_opt t oid <> None then begin
    t.cells.(Oid.to_int oid) <- None;
    t.live <- t.live - 1
  end

let gen t = t.gen
let set_logger t logger = t.logger <- logger

let log t op = match t.logger with None -> () | Some f -> f op

let record t undo =
  match t.journals with
  | [] -> ()
  | j :: _ -> j := undo :: !j

let alloc t ~tag =
  let oid = Oid.Gen.fresh t.gen in
  put_cell t oid { oid; tag; slots = Hashtbl.create 4 };
  Metrics.incr m_allocs;
  log t (Alloc (oid, tag));
  record t (fun () ->
      drop_cell t oid;
      log t (Free oid));
  oid

let alloc_raw t ~oid ~tag =
  if cell_opt t oid <> None then invalid_arg "Heap.alloc_raw: oid in use";
  Oid.Gen.mark_used t.gen oid;
  put_cell t oid { oid; tag; slots = Hashtbl.create 4 };
  Metrics.incr m_allocs;
  log t (Alloc (oid, tag));
  record t (fun () ->
      drop_cell t oid;
      log t (Free oid));
  oid

let free t oid =
  match cell_opt t oid with
  | None -> ()
  | Some cell ->
    drop_cell t oid;
    Metrics.incr m_frees;
    log t (Free oid);
    record t (fun () ->
        put_cell t oid cell;
        log t (Alloc (oid, cell.tag));
        Hashtbl.iter (fun k v -> log t (Set_slot (oid, k, v))) cell.slots)

let mem t oid = cell_opt t oid <> None
let find t oid = cell_opt t oid

let find_exn t oid =
  match cell_opt t oid with
  | Some c -> c
  | None -> raise Not_found

let tag_of t oid = (find_exn t oid).tag

let set_tag t oid tag =
  let cell = find_exn t oid in
  let old = cell.tag in
  cell.tag <- tag;
  log t (Set_tag (oid, tag));
  record t (fun () ->
      cell.tag <- old;
      log t (Set_tag (oid, old)))

let get_slot t oid name =
  Metrics.incr m_reads;
  match Hashtbl.find_opt (find_exn t oid).slots name with
  | Some v -> v
  | None -> Value.Null

(* Compiled-query fast path: one closure per (heap, slot name) reading
   straight out of the cell array (re-read through [t] each call — the
   array is replaced on growth), so per-object cost is one array load
   plus the slot probe. Semantics match [get_slot]. *)
let slot_reader t name =
  fun oid ->
    Metrics.incr m_reads;
    match cell_opt t oid with
    | None -> raise Not_found
    | Some cell -> (
      match Hashtbl.find_opt cell.slots name with
      | Some v -> v
      | None -> Value.Null)

let set_slot t oid name v =
  let cell = find_exn t oid in
  let old = Hashtbl.find_opt cell.slots name in
  Hashtbl.replace cell.slots name v;
  Metrics.incr m_writes;
  log t (Set_slot (oid, name, v));
  record t (fun () ->
      match old with
      | None ->
        Hashtbl.remove cell.slots name;
        log t (Remove_slot (oid, name))
      | Some v ->
        Hashtbl.replace cell.slots name v;
        log t (Set_slot (oid, name, v)))

let alloc_with t ~tag bindings =
  let oid = alloc t ~tag in
  List.iter (fun (k, v) -> set_slot t oid k v) bindings;
  oid

let remove_slot t oid name =
  let cell = find_exn t oid in
  match Hashtbl.find_opt cell.slots name with
  | None -> ()
  | Some old ->
    Hashtbl.remove cell.slots name;
    Metrics.incr m_writes;
    log t (Remove_slot (oid, name));
    record t (fun () ->
        Hashtbl.replace cell.slots name old;
        log t (Set_slot (oid, name, old)))

let slot_names t oid =
  Hashtbl.fold (fun k _ acc -> k :: acc) (find_exn t oid).slots []
  |> List.sort String.compare

let slots t oid =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) (find_exn t oid).slots []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let copy_slots t ~src ~dst =
  let from = find_exn t src in
  Hashtbl.iter (fun k v -> set_slot t dst k v) from.slots

let swap_identity t a b =
  let ca = find_exn t a and cb = find_exn t b in
  let tag_a = ca.tag and tag_b = cb.tag in
  let slots_a = Hashtbl.copy ca.slots and slots_b = Hashtbl.copy cb.slots in
  let assign (c : cell) tag slots =
    c.tag <- tag;
    Hashtbl.reset c.slots;
    Hashtbl.iter (fun k v -> Hashtbl.replace c.slots k v) slots
  in
  assign ca tag_b slots_b;
  assign cb tag_a slots_a;
  Metrics.incr m_swaps;
  log t (Swap (a, b));
  record t (fun () ->
      assign ca tag_a slots_a;
      assign cb tag_b slots_b;
      (* swapping is an involution, so the compensation is the same op *)
      log t (Swap (a, b)))

(* Ascending-OID order (a strengthening of the old arbitrary hash
   order). *)
let iter t f =
  Array.iter (function Some c -> f c | None -> ()) t.cells

let fold t ~init ~f =
  Array.fold_left (fun acc -> function Some c -> f acc c | None -> acc)
    init t.cells

let capacity t = Array.length t.cells

let fold_range t ~lo ~hi ~init ~f =
  let hi = min hi (Array.length t.cells) in
  let acc = ref init in
  for i = max lo 0 to hi - 1 do
    match Array.unsafe_get t.cells i with
    | Some c -> acc := f !acc c
    | None -> ()
  done;
  !acc

let cell_count t = t.live

let data_bytes t =
  fold t ~init:0 ~f:(fun acc c ->
      Hashtbl.fold (fun _ v acc -> acc + Value.size_bytes v) c.slots acc)

let push_journal t = t.journals <- ref [] :: t.journals

let pop_journal_commit t =
  match t.journals with
  | [] -> invalid_arg "Heap.pop_journal_commit: no open journal"
  | j :: rest ->
    t.journals <- rest;
    (* A committed nested journal folds its undo entries into the parent so
       an outer abort still reverses them. *)
    (match rest with
    | [] -> ()
    | parent :: _ -> parent := !j @ !parent)

let pop_journal_abort t =
  match t.journals with
  | [] -> invalid_arg "Heap.pop_journal_abort: no open journal"
  | j :: rest ->
    Metrics.incr m_rollbacks;
    (* Entries must not re-journal while undoing. *)
    t.journals <- [];
    (* An entry that fails to undo must not abandon the rest of the
       rollback: later (= earlier-recorded) entries are still reversed and
       the journal stack stays balanced; the first error is re-raised. *)
    let deferred = ref None in
    List.iter
      (fun undo ->
        match
          Failpoint.hit fp_rollback;
          undo ()
        with
        | () -> ()
        | exception e -> if !deferred = None then deferred := Some e)
      !j;
    t.journals <- rest;
    (match !deferred with Some e -> raise e | None -> ())

let journal_depth t = List.length t.journals
