(** Shared file I/O for the store's persisted artifacts: atomic
    whole-file writes (temp file + fsync + rename) with fault-injection
    points, used by snapshots, catalogs and checkpoints. *)

val declare_failpoints : string -> unit
(** Register the five failpoints guarding an atomic write under the
    prefix: [<p>.write.before], [<p>.write.short], [<p>.fsync],
    [<p>.rename.before], [<p>.rename.after]. Call once at module
    initialization of each writer. *)

val write_atomic : fp:string -> path:string -> string -> unit
(** Write contents to [path ^ ".tmp"], fsync, rename over [path]. A crash
    anywhere before the rename leaves the previous file intact; after the
    rename the new contents are durable. [fp] is the failpoint prefix
    passed to {!declare_failpoints}. *)

val write_all : Unix.file_descr -> string -> int -> int -> unit
(** Loop [Unix.write_substring] to completion. *)

val read_file : string -> string
val remove_if_exists : string -> unit
