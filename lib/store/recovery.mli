(** Replay a WAL tail onto a snapshot-loaded heap.

    Opening a database is [snapshot + wal tail]: load the snapshot, then
    {!replay} every batch whose sequence number the snapshot does not
    already cover. A torn or checksum-corrupt tail is truncated — with a
    {!report} of what was dropped — instead of refusing to open. *)

type pending_evolution = { eid : int; view : string; payload : string }
(** A schema evolution whose {!Wal.entry.Evo_begin} and
    {!Wal.entry.Evo_commit} both survived in the log but whose
    {!Wal.entry.Evo_done} marker did not: the crash hit after the
    decision was made durable and before its effects were. The caller
    (the layer that understands [payload]) must roll it forward. *)

type report = {
  batches_applied : int;
  entries_applied : int;
  batches_skipped : int;
      (** batches already folded into the snapshot (seq <= [after]) —
          nonzero when a crash hit between checkpoint-rename and
          log truncation *)
  dropped_bytes : int;  (** bytes cut off the tail *)
  reason : string option;  (** why the tail was cut, when it was *)
  last_seq : int;  (** highest batch sequence now reflected in the heap *)
  evo_pending : pending_evolution list;
      (** committed-but-unapplied evolutions, in log order *)
  evo_discarded : int;
      (** [Evo_begin] records with no commit marker — intents whose
          crash preceded the decision, rolled back by ignoring them (no
          physical effect of theirs is ever in the log) *)
}

val pp_report : Format.formatter -> report -> unit

val replay :
  heap:Heap.t ->
  path:string ->
  after:int ->
  on_ext:(string -> string -> unit) ->
  report
(** Apply every batch with [seq > after] to the heap, in log order;
    [on_ext] receives extension entries (schema blobs, base memberships)
    for the caller to interpret. The log file is physically truncated to
    its trustworthy prefix when a bad tail is found.

    @raise Failure if a structurally valid batch fails to {e apply}
    (snapshot and log disagree about what exists — distinct from tail
    corruption, which is handled); the log is truncated before the
    offending batch first. *)

val apply_op : Heap.t -> Heap.op -> unit
(** Apply one physical op (idempotent for re-allocation: an [Alloc] of a
    live OID just refreshes the tag). *)
