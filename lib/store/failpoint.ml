module Metrics = Tse_obs.Metrics

exception Crash of string
exception Io_error of string

type action = Crash_now | Error_now | Short_write of int

type site = {
  mutable hits : int;  (* times the guarded point was reached *)
  mutable trips : int;  (* times an armed action actually fired *)
  m_hits : Metrics.counter;
  m_trips : Metrics.counter;
}

let declared : (string, site) Hashtbl.t = Hashtbl.create 16
let armed : (string, action) Hashtbl.t = Hashtbl.create 8

let site_of name =
  match Hashtbl.find_opt declared name with
  | Some s -> s
  | None ->
    let s =
      {
        hits = 0;
        trips = 0;
        m_hits = Metrics.counter ~labels:[ ("site", name) ] "failpoint.hits";
        m_trips = Metrics.counter ~labels:[ ("site", name) ] "failpoint.trips";
      }
    in
    Hashtbl.replace declared name s;
    s

let declare name = ignore (site_of name)
let is_declared name = Hashtbl.mem declared name

let all () =
  Hashtbl.fold (fun name _ acc -> name :: acc) declared []
  |> List.sort String.compare

let hit_count name =
  match Hashtbl.find_opt declared name with Some s -> s.hits | None -> 0

let trip_count name =
  match Hashtbl.find_opt declared name with Some s -> s.trips | None -> 0

let arm name action =
  if not (Hashtbl.mem declared name) then
    invalid_arg (Printf.sprintf "Failpoint.arm: unknown failpoint %s" name);
  Hashtbl.replace armed name action

let disarm name = Hashtbl.remove armed name
let reset () = Hashtbl.reset armed

let note_hit name =
  let s = site_of name in
  s.hits <- s.hits + 1;
  Metrics.incr s.m_hits;
  s

let note_trip s =
  s.trips <- s.trips + 1;
  Metrics.incr s.m_trips

let hit name =
  let s = note_hit name in
  match Hashtbl.find_opt armed name with
  | None | Some (Short_write _) -> ()
  | Some Crash_now ->
    Hashtbl.remove armed name;
    note_trip s;
    raise (Crash name)
  | Some Error_now ->
    Hashtbl.remove armed name;
    note_trip s;
    raise (Io_error name)

let short name ~len =
  let s = note_hit name in
  match Hashtbl.find_opt armed name with
  | Some (Short_write n) ->
    Hashtbl.remove armed name;
    note_trip s;
    Some (min (max n 0) len)
  | Some Crash_now | Some Error_now | None -> None
