exception Crash of string
exception Io_error of string

type action = Crash_now | Error_now | Short_write of int

let declared : (string, unit) Hashtbl.t = Hashtbl.create 16
let armed : (string, action) Hashtbl.t = Hashtbl.create 8

let declare name =
  if not (Hashtbl.mem declared name) then Hashtbl.replace declared name ()

let is_declared name = Hashtbl.mem declared name

let all () =
  Hashtbl.fold (fun name () acc -> name :: acc) declared []
  |> List.sort String.compare

let arm name action =
  if not (Hashtbl.mem declared name) then
    invalid_arg (Printf.sprintf "Failpoint.arm: unknown failpoint %s" name);
  Hashtbl.replace armed name action

let disarm name = Hashtbl.remove armed name
let reset () = Hashtbl.reset armed

let hit name =
  match Hashtbl.find_opt armed name with
  | None | Some (Short_write _) -> ()
  | Some Crash_now ->
    Hashtbl.remove armed name;
    raise (Crash name)
  | Some Error_now ->
    Hashtbl.remove armed name;
    raise (Io_error name)

let short name ~len =
  match Hashtbl.find_opt armed name with
  | Some (Short_write n) ->
    Hashtbl.remove armed name;
    Some (min (max n 0) len)
  | Some Crash_now | Some Error_now | None -> None
