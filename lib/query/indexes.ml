module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Index = Tse_store.Index
module Ord_index = Tse_store.Ord_index
module Prop = Tse_schema.Prop
module Type_info = Tse_schema.Type_info
module Database = Tse_db.Database

type cid = Tse_schema.Klass.cid
type kind = Hash | Ordered

type backing = B_hash of Index.t | B_ord of Ord_index.t

type entry = {
  e_cid : cid;
  e_attr : string;
  backing : backing;
  (* last indexed value per object, so updates can unindex the old one *)
  current : Value.t Oid.Tbl.t;
}

type t = {
  db : Database.t;
  mutable entries : entry list;
  plans : Compile.cache;
}

let key_matches e cid attr = Oid.equal e.e_cid cid && String.equal e.e_attr attr

let backing_add e v o =
  match e.backing with
  | B_hash i -> Index.add i v o
  | B_ord i -> Ord_index.add i v o

let backing_remove e v o =
  match e.backing with
  | B_hash i -> Index.remove i v o
  | B_ord i -> Ord_index.remove i v o

(* (Re)index one object in one entry according to its current state. *)
let refresh_object e db o =
  let was = Oid.Tbl.find_opt e.current o in
  let now =
    if
      Database.mem_object db o
      && Oid.Set.mem o (Database.extent db e.e_cid)
    then
      match Database.get_prop db o e.e_attr with
      | v -> Some v
      | exception _ -> None
    else None
  in
  (match was with
  | Some v -> (
    match now with
    | Some v' when Value.equal v v' -> ()
    | _ ->
      backing_remove e v o;
      Oid.Tbl.remove e.current o)
  | None -> ());
  match now with
  | Some v when Oid.Tbl.find_opt e.current o = None ->
    backing_add e v o;
    Oid.Tbl.replace e.current o v
  | Some _ | None -> ()

let on_event t event =
  let handle o = List.iter (fun e -> refresh_object e t.db o) t.entries in
  match event with
  | Database.Object_created o
  | Database.Object_destroyed o
  | Database.Bases_changed o
  (* a membership change moves the object across extents and can change
     what an indexed attribute name resolves to: refresh everything *)
  | Database.Membership_delta (o, _, _) ->
    handle o
  | Database.Attr_set (o, attr, _) ->
    (* a stored-attribute write can only move entries indexing that name *)
    List.iter
      (fun e -> if String.equal e.e_attr attr then refresh_object e t.db o)
      t.entries
  | Database.Reclassified _ ->
    (* reclassification that changed nothing changes no index; real
       changes arrive as [Membership_delta] *)
    ()

let create db =
  let t = { db; entries = []; plans = Compile.create_cache () } in
  Database.add_listener db (fun ev -> on_event t ev);
  t

let plan_cache t = t.plans

let ensure ?(kind = Hash) t cid attr =
  let graph = Database.graph t.db in
  (match Type_info.find_usable graph cid attr with
  | Some p when Prop.is_stored p -> ()
  | Some _ ->
    invalid_arg (Printf.sprintf "Indexes.ensure: %s is a method" attr)
  | None ->
    invalid_arg
      (Printf.sprintf "Indexes.ensure: %s undefined for the class" attr));
  t.entries <- List.filter (fun e -> not (key_matches e cid attr)) t.entries;
  let backing =
    match kind with
    | Hash -> B_hash (Index.create ())
    | Ordered -> B_ord (Ord_index.create ())
  in
  let e = { e_cid = cid; e_attr = attr; backing; current = Oid.Tbl.create 64 } in
  Oid.Set.iter (fun o -> refresh_object e t.db o) (Database.extent t.db cid);
  t.entries <- e :: t.entries

let drop t cid attr =
  t.entries <- List.filter (fun e -> not (key_matches e cid attr)) t.entries

let find t cid attr =
  List.find_opt (fun e -> key_matches e cid attr) t.entries

let lookup t cid attr v =
  Option.map
    (fun e ->
      match e.backing with
      | B_hash i -> Index.lookup i v
      | B_ord i -> Ord_index.lookup i v)
    (find t cid attr)

let range_lookup t cid attr ~lo ~hi =
  Option.bind (find t cid attr) (fun e ->
      match e.backing with
      | B_ord i -> Some (Ord_index.range i ~lo ~hi)
      | B_hash _ -> None)

let indexed t cid attr = find t cid attr <> None

let kind_of t cid attr =
  Option.map
    (fun e -> match e.backing with B_hash _ -> Hash | B_ord _ -> Ordered)
    (find t cid attr)

let key_cardinality t cid attr =
  Option.map
    (fun e ->
      match e.backing with
      | B_hash i -> Index.distinct_keys i
      | B_ord i -> Ord_index.distinct_keys i)
    (find t cid attr)

let entry_count t cid attr =
  Option.map
    (fun e ->
      match e.backing with
      | B_hash i -> Index.cardinal i
      | B_ord i -> Ord_index.cardinal i)
    (find t cid attr)

let overhead_bytes t =
  List.fold_left
    (fun acc e ->
      acc
      +
      match e.backing with
      | B_hash i -> Index.overhead_bytes i
      | B_ord i -> Ord_index.overhead_bytes i)
    0 t.entries

let index_count t = List.length t.entries
