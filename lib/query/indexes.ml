module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Index = Tse_store.Index
module Prop = Tse_schema.Prop
module Type_info = Tse_schema.Type_info
module Database = Tse_db.Database

type cid = Tse_schema.Klass.cid

type entry = {
  e_cid : cid;
  e_attr : string;
  index : Index.t;
  (* last indexed value per object, so updates can unindex the old one *)
  current : Value.t Oid.Tbl.t;
}

type t = { db : Database.t; mutable entries : entry list }

let key_matches e cid attr = Oid.equal e.e_cid cid && String.equal e.e_attr attr

(* (Re)index one object in one entry according to its current state. *)
let refresh_object e db o =
  let was = Oid.Tbl.find_opt e.current o in
  let now =
    if
      Database.mem_object db o
      && Oid.Set.mem o (Database.extent db e.e_cid)
    then
      match Database.get_prop db o e.e_attr with
      | v -> Some v
      | exception _ -> None
    else None
  in
  (match was with
  | Some v -> (
    match now with
    | Some v' when Value.equal v v' -> ()
    | _ ->
      Index.remove e.index v o;
      Oid.Tbl.remove e.current o)
  | None -> ());
  match now with
  | Some v when Oid.Tbl.find_opt e.current o = None ->
    Index.add e.index v o;
    Oid.Tbl.replace e.current o v
  | Some _ | None -> ()

let on_event t event =
  let handle o = List.iter (fun e -> refresh_object e t.db o) t.entries in
  match event with
  | Database.Object_created o
  | Database.Object_destroyed o
  | Database.Bases_changed o
  (* a membership change moves the object across extents and can change
     what an indexed attribute name resolves to: refresh everything *)
  | Database.Membership_delta (o, _, _) ->
    handle o
  | Database.Attr_set (o, attr, _) ->
    (* a stored-attribute write can only move entries indexing that name *)
    List.iter
      (fun e -> if String.equal e.e_attr attr then refresh_object e t.db o)
      t.entries
  | Database.Reclassified _ ->
    (* reclassification that changed nothing changes no index; real
       changes arrive as [Membership_delta] *)
    ()

let create db =
  let t = { db; entries = [] } in
  Database.add_listener db (fun ev -> on_event t ev);
  t

let ensure t cid attr =
  let graph = Database.graph t.db in
  (match Type_info.find_usable graph cid attr with
  | Some p when Prop.is_stored p -> ()
  | Some _ ->
    invalid_arg (Printf.sprintf "Indexes.ensure: %s is a method" attr)
  | None ->
    invalid_arg
      (Printf.sprintf "Indexes.ensure: %s undefined for the class" attr));
  t.entries <- List.filter (fun e -> not (key_matches e cid attr)) t.entries;
  let e =
    { e_cid = cid; e_attr = attr; index = Index.create (); current = Oid.Tbl.create 64 }
  in
  Oid.Set.iter (fun o -> refresh_object e t.db o) (Database.extent t.db cid);
  t.entries <- e :: t.entries

let drop t cid attr =
  t.entries <- List.filter (fun e -> not (key_matches e cid attr)) t.entries

let lookup t cid attr v =
  List.find_map
    (fun e -> if key_matches e cid attr then Some (Index.lookup e.index v) else None)
    t.entries

let indexed t cid attr = List.exists (fun e -> key_matches e cid attr) t.entries

let key_cardinality t cid attr =
  List.find_map
    (fun e ->
      if key_matches e cid attr then Some (Index.distinct_keys e.index)
      else None)
    t.entries

let overhead_bytes t =
  List.fold_left (fun acc e -> acc + Index.overhead_bytes e.index) 0 t.entries

let index_count t = List.length t.entries
