(** Plan-level predicate compilation and the plan cache.

    Lowers a [(class, predicate)] pair once per schema state into the
    version-stable artifacts the planner and executor consume: the
    compiled whole-predicate evaluator, the cost-ordered conjunct
    breakdown (with per-conjunct compiled closures and sargability
    facts), and the Select-derivation ancestry for predicate pushdown.
    Access-path choice is deliberately not part of the cached artifact:
    indexes come and go without a schema-version bump, so the planner
    re-decides per execution. *)

type cid = Tse_schema.Klass.cid

(** A sargable fact: the conjunct constrains an attribute against a
    constant, so an index on that attribute can answer it. *)
type sarg =
  | Sarg_eq of string * Tse_store.Value.t
  | Sarg_cmp of string * Tse_schema.Expr.cmp * Tse_store.Value.t
      (** attribute on the left; the comparison is Lt/Le/Gt/Ge *)

type conjunct = {
  c_expr : Tse_schema.Expr.t;  (** const-folded *)
  c_text : string;
  c_cost : int;  (** {!Tse_schema.Expr_compile.cost} *)
  c_sarg : sarg option;
  c_eval : Tse_store.Oid.t -> bool;
      (** compiled; raises like [Expr.eval_bool] — the executor absorbs
          errors over the whole residual chain, matching
          [Database.holds] *)
}

type compiled = {
  cp_pred : Tse_store.Oid.t -> bool;
      (** whole predicate, [Database.holds] semantics *)
  cp_conjuncts : conjunct list;  (** cost-ordered, cheapest first *)
  cp_chain : (cid * conjunct list) list;
      (** Select ancestry, nearest source first: each entry is a source
          class and the conjuncts of the select predicate deriving the
          previous level from it *)
}

val sarg_of : Tse_schema.Expr.t -> sarg option
val compile : Tse_db.Database.t -> cid -> Tse_schema.Expr.t -> compiled

(** {2 Plan cache}

    Keyed on the predicate's stable encoding per class; flushed whenever
    {!Tse_db.Database.compile_stamp} moves, so a compiled plan built
    under an old schema state is never reused. *)

type cache

val create_cache : unit -> cache

val get : cache -> Tse_db.Database.t -> cid -> Tse_schema.Expr.t -> compiled * bool
(** The compiled artifact and whether it was a cache hit. Counters:
    [query.plan_cache_hits] / [query.plan_cache_misses]. *)
