(** Maintained attribute indexes.

    GemStone-style associative access for the select operator: an index
    on [(class, attribute)] maps attribute values to the members of the
    class holding them, and is kept current by listening to the database's
    change events (attribute writes, object creation/destruction and
    reclassification). Two backings share that maintenance contract:
    [Hash] answers equality probes, [Ordered] additionally answers range
    lookups. Section 4.2 counts such structures among the managerial
    storage; {!overhead_bytes} reports it.

    The structure also hosts the query engine's plan cache
    ({!plan_cache}), so one value carries everything a session's query
    pipeline needs. *)

type cid = Tse_schema.Klass.cid

type kind = Hash | Ordered

type t

val create : Tse_db.Database.t -> t
(** Registers the maintenance listener on the database. *)

val ensure : ?kind:kind -> t -> cid -> string -> unit
(** Build (or rebuild) the index on the class's attribute from the
    current extent, and maintain it from now on. [kind] defaults to
    [Hash]; at most one index exists per [(class, attr)] — re-ensuring
    with a different kind rebuilds.
    @raise Invalid_argument if the attribute is not a usable stored
    attribute of the class. *)

val drop : t -> cid -> string -> unit

val lookup : t -> cid -> string -> Tse_store.Value.t -> Tse_store.Oid.Set.t option
(** [Some members] when an index exists on [(class, attr)] — already
    restricted to the class's extent; [None] when no index exists.
    Equality probes are answered by either backing. *)

val range_lookup :
  t ->
  cid ->
  string ->
  lo:Tse_store.Ord_index.bound option ->
  hi:Tse_store.Ord_index.bound option ->
  Tse_store.Oid.Set.t option
(** [Some members] in the key interval when an [Ordered] index exists on
    [(class, attr)]; [None] when there is no index or it is [Hash]. *)

val indexed : t -> cid -> string -> bool
val kind_of : t -> cid -> string -> kind option

val key_cardinality : t -> cid -> string -> int option
(** [Some n] when an index exists on [(class, attr)]: the number of
    distinct keys in its buckets. More distinct keys means smaller
    buckets for the same extent, so the planner prefers the equality
    conjunct whose index has the highest key cardinality. *)

val entry_count : t -> cid -> string -> int option
(** Number of (value, oid) entries — the indexed population, used with
    {!key_cardinality} to estimate bucket sizes. *)

val overhead_bytes : t -> int
val index_count : t -> int

val plan_cache : t -> Compile.cache
(** The plan cache the query engine consults for this index set's
    database. *)
