(** Maintained attribute indexes.

    GemStone-style associative access for the select operator: an index
    on [(class, attribute)] maps attribute values to the members of the
    class holding them, and is kept current by listening to the database's
    change events (attribute writes, object creation/destruction and
    reclassification). Section 4.2 counts such structures among the
    managerial storage; {!overhead_bytes} reports it. *)

type cid = Tse_schema.Klass.cid
type t

val create : Tse_db.Database.t -> t
(** Registers the maintenance listener on the database. *)

val ensure : t -> cid -> string -> unit
(** Build (or rebuild) the index on the class's attribute from the
    current extent, and maintain it from now on.
    @raise Invalid_argument if the attribute is not a usable stored
    attribute of the class. *)

val drop : t -> cid -> string -> unit

val lookup : t -> cid -> string -> Tse_store.Value.t -> Tse_store.Oid.Set.t option
(** [Some members] when an index exists on [(class, attr)] — already
    restricted to the class's extent; [None] when no index exists. *)

val indexed : t -> cid -> string -> bool

val key_cardinality : t -> cid -> string -> int option
(** [Some n] when an index exists on [(class, attr)]: the number of
    distinct keys in its buckets. More distinct keys means smaller
    buckets for the same extent, so the planner prefers the equality
    conjunct whose index has the highest key cardinality. *)

val overhead_bytes : t -> int
val index_count : t -> int
