module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Expr = Tse_schema.Expr
module Database = Tse_db.Database
module Metrics = Tse_obs.Metrics
module Trace = Tse_obs.Trace
module Pool = Tse_pool.Pool

type cid = Tse_schema.Klass.cid

type index_kind = Hash | Range

type plan =
  | Index_lookup of { attr : string; kind : index_kind; residual : bool }
  | Range_scan of { attr : string; residual : bool }
  | Extent_scan

let m_selects = Metrics.counter "query.selects"
let m_index_lookups = Metrics.counter "query.index_lookups"
let m_range_scans = Metrics.counter "query.range_scans"
let m_extent_scans = Metrics.counter "query.extent_scans"
let m_rows_scanned = Metrics.counter "query.rows_scanned"
let m_rows_returned = Metrics.counter "query.rows_returned"
let m_pushdowns = Metrics.counter "query.pushdowns"

(* --- access-path selection ----------------------------------------------

   Chosen per execution from the cached compiled artifact: index
   availability and cardinalities are not version-stamped, so only the
   predicate decomposition is cached, never the chosen path. *)

type access =
  | A_eq of {
      a_cls : cid;
      a_depth : int;
      a_attr : string;
      a_kind : Indexes.kind;
      a_value : Value.t;
      a_consumed : Compile.conjunct list;
    }
  | A_range of {
      a_cls : cid;
      a_depth : int;
      a_attr : string;
      a_lo : Tse_store.Ord_index.bound option;
      a_hi : Tse_store.Ord_index.bound option;
      a_consumed : Compile.conjunct list;
    }
  | A_scan

(* Planning levels: the queried class itself, then each Select ancestor.
   At depth [d] the sargable conjuncts are the query's own plus those of
   every select predicate between the queried class and that ancestor —
   membership in the queried extent implies all of them, so an ancestor
   index probe only needs intersecting back with the queried extent. *)
let levels (compiled : Compile.compiled) cid =
  let rec go cls depth conjs chain acc =
    let acc = (cls, depth, conjs) :: acc in
    match chain with
    | [] -> List.rev acc
    | (src, cs) :: rest -> go src (depth + 1) (conjs @ cs) rest acc
  in
  go cid 0 compiled.Compile.cp_conjuncts compiled.Compile.cp_chain []

let bound_of_cmp op v =
  match op with
  | Expr.Gt -> `Lo (v, false)
  | Expr.Ge -> `Lo (v, true)
  | Expr.Lt -> `Hi (v, false)
  | Expr.Le -> `Hi (v, true)
  | Expr.Eq | Expr.Ne -> `None

(* Candidate paths at one level, with their estimated candidate counts. *)
let level_candidates indexes (cls, depth, conjs) =
  let avg_bucket attr =
    match (Indexes.entry_count indexes cls attr, Indexes.key_cardinality indexes cls attr)
    with
    | Some n, Some k -> (n + Stdlib.max 1 k - 1) / Stdlib.max 1 k
    | _ -> Stdlib.max_int
  in
  (* equality probes: both index kinds answer them *)
  let eqs =
    List.filter_map
      (fun (c : Compile.conjunct) ->
        match c.c_sarg with
        | Some (Compile.Sarg_eq (a, v)) -> begin
          match Indexes.kind_of indexes cls a with
          | Some kind ->
            Some
              ( avg_bucket a,
                A_eq
                  {
                    a_cls = cls;
                    a_depth = depth;
                    a_attr = a;
                    a_kind = kind;
                    a_value = v;
                    a_consumed = [ c ];
                  } )
          | None -> None
        end
        | _ -> None)
      conjs
  in
  (* range windows: collect the first lower and first upper bound per
     ordered-indexed attribute; further range conjuncts on the same
     attribute stay in the residual *)
  let range_attrs =
    List.filter_map
      (fun (c : Compile.conjunct) ->
        match c.c_sarg with
        | Some (Compile.Sarg_cmp (a, _, _))
          when Indexes.kind_of indexes cls a = Some Indexes.Ordered ->
          Some a
        | _ -> None)
      conjs
    |> List.sort_uniq String.compare
  in
  let ranges =
    List.filter_map
      (fun a ->
        let lo = ref None and hi = ref None and consumed = ref [] in
        List.iter
          (fun (c : Compile.conjunct) ->
            match c.c_sarg with
            | Some (Compile.Sarg_cmp (a', op, v)) when String.equal a a' -> begin
              match bound_of_cmp op v with
              | `Lo b when !lo = None ->
                lo := Some b;
                consumed := c :: !consumed
              | `Hi b when !hi = None ->
                hi := Some b;
                consumed := c :: !consumed
              | _ -> ()
            end
            | _ -> ())
          conjs;
        if !lo = None && !hi = None then None
        else
          let pop =
            match Indexes.entry_count indexes cls a with
            | Some n -> n
            | None -> Stdlib.max_int
          in
          (* crude textbook selectivity: 1/2 per open side, 1/4 boxed *)
          let est =
            if pop = Stdlib.max_int then pop
            else if !lo <> None && !hi <> None then pop / 4
            else pop / 2
          in
          Some
            ( est,
              A_range
                {
                  a_cls = cls;
                  a_depth = depth;
                  a_attr = a;
                  a_lo = !lo;
                  a_hi = !hi;
                  a_consumed = !consumed;
                } ))
      range_attrs
  in
  eqs @ ranges

let choose_access db indexes cid compiled =
  let scan_cost = Oid.Set.cardinal (Database.extent db cid) in
  let candidates =
    List.concat_map (level_candidates indexes) (levels compiled cid)
  in
  let best =
    List.fold_left
      (fun best (est, a) ->
        match best with
        | Some (best_est, _) when best_est <= est -> best
        | _ -> Some (est, a))
      None candidates
  in
  match best with
  | Some (est, a) when est <= scan_cost -> a
  | _ -> A_scan

let plan_of_access residual = function
  | A_eq { a_attr; a_kind; _ } ->
    Index_lookup
      {
        attr = a_attr;
        kind = (match a_kind with Indexes.Hash -> Hash | Indexes.Ordered -> Range);
        residual;
      }
  | A_range { a_attr; _ } -> Range_scan { attr = a_attr; residual }
  | A_scan -> Extent_scan

(* Residual evaluation: the un-consumed query conjuncts, in compiled cost
   order, under whole-chain error absorption (Database.holds contract).
   Conjuncts implied by the access path are skipped: an index hit proves
   its own conjunct, and intersection with the queried extent proves every
   pushed select predicate. *)
let residual_conjuncts (compiled : Compile.compiled) consumed =
  List.filter
    (fun (c : Compile.conjunct) -> not (List.memq c consumed))
    compiled.Compile.cp_conjuncts

let residual_eval cs o =
  match List.for_all (fun (c : Compile.conjunct) -> c.Compile.c_eval o) cs with
  | b -> b
  | exception (Expr.Unknown_property _ | Expr.Type_error _) -> false

type explain = {
  ex_plan : plan;  (* the plan that actually ran *)
  chosen_index : string option;
  key_cardinality : int option;
  conjunct_order : string list;
  plan_cache_hit : bool;
  pushdown_depth : int;
  rows_scanned : int;
  rows_returned : int;
}

let compiled_for db indexes cid pred =
  Compile.get (Indexes.plan_cache indexes) db cid pred

(* Parallel predicate evaluation over a candidate set: shard the
   ascending element array by index range across the global pool, filter
   (or count) per shard, and merge per-chunk results in chunk order —
   chunk order is ascending-OID order, so the merged result is identical
   to the sequential left-to-right evaluation.  Compiled predicates are
   safe to run from worker domains: they only read the object they are
   applied to, and [Database.with_shared_read] switches the resolution
   memo to bypass and pre-warms the schema-reachability caches.  The
   plan-cache entry was compiled before we get here, so in-region
   lookups never hit a compile-on-miss branch.  Small candidate sets
   (or a single-domain pool) stay on the sequential path. *)
let m_par_scans = Metrics.counter "query.parallel_scans"

let par_filter db pred set =
  let n = Oid.Set.cardinal set in
  let pool = Pool.global () in
  if Pool.size pool <= 1 || n < Pool.threshold () then Oid.Set.filter pred set
  else begin
    Metrics.incr m_par_scans;
    let arr = Array.of_list (Oid.Set.elements set) in
    Database.with_shared_read db (fun () ->
        Pool.map_chunks pool ~n (fun ~lo ~hi ->
            let acc = ref [] in
            for i = hi - 1 downto lo do
              let o = arr.(i) in
              if pred o then acc := o :: !acc
            done;
            !acc))
    |> List.concat |> Oid.Set.of_list
  end

let par_count db pred set =
  let n = Oid.Set.cardinal set in
  let pool = Pool.global () in
  if Pool.size pool <= 1 || n < Pool.threshold () then
    Oid.Set.fold (fun o acc -> if pred o then acc + 1 else acc) set 0
  else begin
    Metrics.incr m_par_scans;
    let arr = Array.of_list (Oid.Set.elements set) in
    Database.with_shared_read db (fun () ->
        Pool.map_chunks pool ~n (fun ~lo ~hi ->
            let c = ref 0 in
            for i = lo to hi - 1 do
              if pred arr.(i) then incr c
            done;
            !c))
    |> List.fold_left ( + ) 0
  end

let plan db indexes cid pred =
  let compiled, _ = compiled_for db indexes cid pred in
  let access = choose_access db indexes cid compiled in
  let residual =
    match access with
    | A_eq { a_consumed; _ } | A_range { a_consumed; _ } ->
      residual_conjuncts compiled a_consumed <> []
    | A_scan -> false
  in
  plan_of_access residual access

(* One instrumented core: every select goes through here so the explain
   numbers and the registry counters describe the execution that really
   happened (including the dropped-index fallback to a scan). *)
let select_explain db indexes cid pred =
  Metrics.incr m_selects;
  Trace.with_span "query.select" @@ fun () ->
  let compiled, cache_hit = compiled_for db indexes cid pred in
  let scan () =
    let extent = Database.extent db cid in
    let result = par_filter db compiled.Compile.cp_pred extent in
    (Extent_scan, None, None, 0, Oid.Set.cardinal extent, result)
  in
  let probe access candidates =
    match candidates with
    | None -> (* index dropped concurrently: scan *) scan ()
    | Some bucket ->
      let cls, depth, attr, consumed =
        match access with
        | A_eq { a_cls; a_depth; a_attr; a_consumed; _ } ->
          (a_cls, a_depth, a_attr, a_consumed)
        | A_range { a_cls; a_depth; a_attr; a_consumed; _ } ->
          (a_cls, a_depth, a_attr, a_consumed)
        | A_scan -> assert false
      in
      if depth > 0 then Metrics.incr m_pushdowns;
      (* an ancestor probe overshoots the queried extent; intersecting
         back both restricts it and discharges every pushed predicate *)
      let candidates =
        if depth > 0 then Oid.Set.inter bucket (Database.extent db cid)
        else bucket
      in
      let residual = residual_conjuncts compiled consumed in
      let result =
        if residual = [] then candidates
        else par_filter db (residual_eval residual) candidates
      in
      ( plan_of_access (residual <> []) access,
        Some attr,
        Indexes.key_cardinality indexes cls attr,
        depth,
        Oid.Set.cardinal candidates,
        result )
  in
  let access = choose_access db indexes cid compiled in
  let ran, chosen_index, key_cardinality, depth, scanned, result =
    match access with
    | A_scan -> scan ()
    | A_eq { a_cls; a_attr; a_value; _ } ->
      probe access (Indexes.lookup indexes a_cls a_attr a_value)
    | A_range { a_cls; a_attr; a_lo; a_hi; _ } ->
      probe access (Indexes.range_lookup indexes a_cls a_attr ~lo:a_lo ~hi:a_hi)
  in
  (match ran with
  | Index_lookup _ -> Metrics.incr m_index_lookups
  | Range_scan _ -> Metrics.incr m_range_scans
  | Extent_scan -> Metrics.incr m_extent_scans);
  let returned = Oid.Set.cardinal result in
  Metrics.add m_rows_scanned scanned;
  Metrics.add m_rows_returned returned;
  ( {
      ex_plan = ran;
      chosen_index;
      key_cardinality;
      conjunct_order =
        List.map
          (fun (c : Compile.conjunct) -> c.Compile.c_text)
          compiled.Compile.cp_conjuncts;
      plan_cache_hit = cache_hit;
      pushdown_depth = depth;
      rows_scanned = scanned;
      rows_returned = returned;
    },
    result )

let select db indexes cid pred = snd (select_explain db indexes cid pred)
let explain db indexes cid pred = fst (select_explain db indexes cid pred)

(* Count without materializing a result set: fold the compiled evaluator
   over the candidates (the full extent, or an index probe's bucket). *)
let count db indexes cid pred =
  let compiled, _ = compiled_for db indexes cid pred in
  let fold_count pred set = par_count db pred set in
  let scan () =
    let extent = Database.extent db cid in
    Metrics.add m_rows_scanned (Oid.Set.cardinal extent);
    fold_count compiled.Compile.cp_pred extent
  in
  let probe consumed depth = function
    | None -> scan ()
    | Some bucket ->
      let candidates =
        if depth > 0 then Oid.Set.inter bucket (Database.extent db cid)
        else bucket
      in
      Metrics.add m_rows_scanned (Oid.Set.cardinal candidates);
      let residual = residual_conjuncts compiled consumed in
      if residual = [] then Oid.Set.cardinal candidates
      else fold_count (residual_eval residual) candidates
  in
  match choose_access db indexes cid compiled with
  | A_scan -> scan ()
  | A_eq { a_cls; a_attr; a_value; a_depth; a_consumed; _ } ->
    probe a_consumed a_depth (Indexes.lookup indexes a_cls a_attr a_value)
  | A_range { a_cls; a_attr; a_lo; a_hi; a_depth; a_consumed; _ } ->
    probe a_consumed a_depth
      (Indexes.range_lookup indexes a_cls a_attr ~lo:a_lo ~hi:a_hi)

let kind_name = function Hash -> "hash" | Range -> "range"

let pp_plan ppf = function
  | Index_lookup { attr; kind; residual } ->
    Format.fprintf ppf "index lookup (%s) on %s%s" (kind_name kind) attr
      (if residual then " + residual filter" else "")
  | Range_scan { attr; residual } ->
    Format.fprintf ppf "range index scan on %s%s" attr
      (if residual then " + residual filter" else "")
  | Extent_scan -> Format.pp_print_string ppf "extent scan"

let pp_explain ppf e =
  Format.fprintf ppf
    "@[<v>plan: %a@ index: %s@ key cardinality: %s@ conjunct order: %s@ \
     plan cache: %s@ pushdown depth: %d@ rows scanned: %d@ rows returned: %d@]"
    pp_plan e.ex_plan
    (Option.value e.chosen_index ~default:"-")
    (match e.key_cardinality with Some n -> string_of_int n | None -> "-")
    (match e.conjunct_order with
    | [] -> "-"
    | cs -> String.concat "; " cs)
    (if e.plan_cache_hit then "hit" else "miss")
    e.pushdown_depth e.rows_scanned e.rows_returned
