module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Expr = Tse_schema.Expr
module Database = Tse_db.Database

type cid = Tse_schema.Klass.cid

type plan = Index_lookup of { attr : string; residual : bool } | Extent_scan

(* Split a predicate into [attr = const] conjuncts and the rest. *)
let rec equality_conjuncts = function
  | Expr.Cmp (Expr.Eq, Expr.Attr a, Expr.Const v)
  | Expr.Cmp (Expr.Eq, Expr.Const v, Expr.Attr a) ->
    ([ (a, v) ], [])
  | Expr.And (l, r) ->
    let el, rl = equality_conjuncts l in
    let er, rr = equality_conjuncts r in
    (el @ er, rl @ rr)
  | e -> ([], [ e ])

let rec conjoin = function
  | [] -> Expr.bool true
  | [ e ] -> e
  | e :: rest -> Expr.And (e, conjoin rest)

let choose db indexes cid pred =
  ignore db;
  let eqs, residual = equality_conjuncts pred in
  let usable = List.filter (fun (a, _) -> Indexes.indexed indexes cid a) eqs in
  match usable with
  | [] -> (Extent_scan, None)
  | first :: rest ->
    (* prefer the most selective index: highest key cardinality means the
       smallest buckets over the same extent (ties keep predicate order) *)
    let cardinality (a, _) =
      Option.value (Indexes.key_cardinality indexes cid a) ~default:0
    in
    let attr, v =
      List.fold_left
        (fun best c -> if cardinality c > cardinality best then c else best)
        first rest
    in
    (* remaining equality conjuncts join the residual predicate *)
    let rest =
      List.filter_map
        (fun (a, w) ->
          if String.equal a attr && Value.equal v w then None
          else Some Expr.(Cmp (Eq, Attr a, Const w)))
        eqs
      @ residual
    in
    ( Index_lookup { attr; residual = rest <> [] },
      Some (attr, v, conjoin rest, rest <> []) )

let plan db indexes cid pred = fst (choose db indexes cid pred)

let select db indexes cid pred =
  match choose db indexes cid pred with
  | Extent_scan, _ ->
    Oid.Set.filter (fun o -> Database.holds db o pred) (Database.extent db cid)
  | Index_lookup _, Some (attr, v, residual, has_residual) -> begin
    match Indexes.lookup indexes cid attr v with
    | None -> (* index dropped concurrently: scan *)
      Oid.Set.filter (fun o -> Database.holds db o pred) (Database.extent db cid)
    | Some candidates ->
      if has_residual then
        Oid.Set.filter (fun o -> Database.holds db o residual) candidates
      else candidates
  end
  | Index_lookup _, None -> assert false

let count db indexes cid pred = Oid.Set.cardinal (select db indexes cid pred)

let pp_plan ppf = function
  | Index_lookup { attr; residual } ->
    Format.fprintf ppf "index lookup on %s%s" attr
      (if residual then " + residual filter" else "")
  | Extent_scan -> Format.pp_print_string ppf "extent scan"
