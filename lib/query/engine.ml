module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Expr = Tse_schema.Expr
module Database = Tse_db.Database
module Metrics = Tse_obs.Metrics
module Trace = Tse_obs.Trace

type cid = Tse_schema.Klass.cid

type plan = Index_lookup of { attr : string; residual : bool } | Extent_scan

let m_selects = Metrics.counter "query.selects"
let m_index_lookups = Metrics.counter "query.index_lookups"
let m_extent_scans = Metrics.counter "query.extent_scans"
let m_rows_scanned = Metrics.counter "query.rows_scanned"
let m_rows_returned = Metrics.counter "query.rows_returned"

(* Split a predicate into [attr = const] conjuncts and the rest. *)
let rec equality_conjuncts = function
  | Expr.Cmp (Expr.Eq, Expr.Attr a, Expr.Const v)
  | Expr.Cmp (Expr.Eq, Expr.Const v, Expr.Attr a) ->
    ([ (a, v) ], [])
  | Expr.And (l, r) ->
    let el, rl = equality_conjuncts l in
    let er, rr = equality_conjuncts r in
    (el @ er, rl @ rr)
  | e -> ([], [ e ])

let rec conjoin = function
  | [] -> Expr.bool true
  | [ e ] -> e
  | e :: rest -> Expr.And (e, conjoin rest)

let choose db indexes cid pred =
  ignore db;
  let eqs, residual = equality_conjuncts pred in
  let usable = List.filter (fun (a, _) -> Indexes.indexed indexes cid a) eqs in
  match usable with
  | [] -> (Extent_scan, None)
  | first :: rest ->
    (* prefer the most selective index: highest key cardinality means the
       smallest buckets over the same extent (ties keep predicate order) *)
    let cardinality (a, _) =
      Option.value (Indexes.key_cardinality indexes cid a) ~default:0
    in
    let attr, v =
      List.fold_left
        (fun best c -> if cardinality c > cardinality best then c else best)
        first rest
    in
    (* remaining equality conjuncts join the residual predicate *)
    let rest =
      List.filter_map
        (fun (a, w) ->
          if String.equal a attr && Value.equal v w then None
          else Some Expr.(Cmp (Eq, Attr a, Const w)))
        eqs
      @ residual
    in
    ( Index_lookup { attr; residual = rest <> [] },
      Some (attr, v, conjoin rest, rest <> []) )

let plan db indexes cid pred = fst (choose db indexes cid pred)

type explain = {
  ex_plan : plan;  (* the plan that actually ran *)
  chosen_index : string option;
  key_cardinality : int option;
  rows_scanned : int;
  rows_returned : int;
}

(* One instrumented core: every select goes through here so the explain
   numbers and the registry counters describe the execution that really
   happened (including the dropped-index fallback to a scan). *)
let select_explain db indexes cid pred =
  Metrics.incr m_selects;
  Trace.with_span "query.select" @@ fun () ->
  let scan () =
    let extent = Database.extent db cid in
    let result =
      Oid.Set.filter (fun o -> Database.holds db o pred) extent
    in
    (Extent_scan, Oid.Set.cardinal extent, result)
  in
  let ran, scanned, result =
    match choose db indexes cid pred with
    | Extent_scan, _ -> scan ()
    | (Index_lookup _ as p), Some (attr, v, residual, has_residual) -> begin
      match Indexes.lookup indexes cid attr v with
      | None -> (* index dropped concurrently: scan *)
        scan ()
      | Some candidates ->
        let result =
          if has_residual then
            Oid.Set.filter (fun o -> Database.holds db o residual) candidates
          else candidates
        in
        (p, Oid.Set.cardinal candidates, result)
    end
    | Index_lookup _, None -> assert false
  in
  let chosen_index =
    match ran with Index_lookup { attr; _ } -> Some attr | Extent_scan -> None
  in
  (match ran with
  | Index_lookup _ -> Metrics.incr m_index_lookups
  | Extent_scan -> Metrics.incr m_extent_scans);
  let returned = Oid.Set.cardinal result in
  Metrics.add m_rows_scanned scanned;
  Metrics.add m_rows_returned returned;
  ( {
      ex_plan = ran;
      chosen_index;
      key_cardinality =
        Option.bind chosen_index (Indexes.key_cardinality indexes cid);
      rows_scanned = scanned;
      rows_returned = returned;
    },
    result )

let select db indexes cid pred = snd (select_explain db indexes cid pred)
let explain db indexes cid pred = fst (select_explain db indexes cid pred)

let count db indexes cid pred = Oid.Set.cardinal (select db indexes cid pred)

let pp_plan ppf = function
  | Index_lookup { attr; residual } ->
    Format.fprintf ppf "index lookup on %s%s" attr
      (if residual then " + residual filter" else "")
  | Extent_scan -> Format.pp_print_string ppf "extent scan"

let pp_explain ppf e =
  Format.fprintf ppf "@[<v>plan: %a@ index: %s@ key cardinality: %s@ \
                      rows scanned: %d@ rows returned: %d@]"
    pp_plan e.ex_plan
    (Option.value e.chosen_index ~default:"-")
    (match e.key_cardinality with Some n -> string_of_int n | None -> "-")
    e.rows_scanned e.rows_returned
