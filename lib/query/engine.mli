(** A small query processor for extent selections.

    Evaluates [select from <class> where <predicate>] queries against a
    database: equality conjuncts on indexed attributes are answered by
    index lookup, the residual predicate is checked per candidate, and
    everything else falls back to an extent scan. {!explain} exposes the
    chosen plan for tests and tuning. *)

type cid = Tse_schema.Klass.cid

type plan =
  | Index_lookup of { attr : string; residual : bool }
      (** answered from the index on [attr]; [residual] when a remaining
          predicate is checked per candidate *)
  | Extent_scan

val plan : Tse_db.Database.t -> Indexes.t -> cid -> Tse_schema.Expr.t -> plan

val select :
  Tse_db.Database.t ->
  Indexes.t ->
  cid ->
  Tse_schema.Expr.t ->
  Tse_store.Oid.Set.t
(** Members of the class satisfying the predicate. *)

val count : Tse_db.Database.t -> Indexes.t -> cid -> Tse_schema.Expr.t -> int

type explain = {
  ex_plan : plan;  (** the plan that actually ran (a concurrently dropped
                       index degrades to [Extent_scan]) *)
  chosen_index : string option;  (** indexed attribute used, if any *)
  key_cardinality : int option;
      (** distinct keys in the chosen index at execution time *)
  rows_scanned : int;
      (** objects examined: the extent for a scan, the key's candidate
          bucket for an index lookup *)
  rows_returned : int;
}

val explain :
  Tse_db.Database.t -> Indexes.t -> cid -> Tse_schema.Expr.t -> explain
(** Run the query and report how it was executed. *)

val select_explain :
  Tse_db.Database.t ->
  Indexes.t ->
  cid ->
  Tse_schema.Expr.t ->
  explain * Tse_store.Oid.Set.t
(** {!explain} and the result set from one execution. *)

val pp_plan : Format.formatter -> plan -> unit
val pp_explain : Format.formatter -> explain -> unit
