(** The query processor for extent selections.

    Evaluates [select from <class> where <predicate>] queries against a
    database through a compiled pipeline: the predicate is lowered once
    per schema state (constant folding, cost-ordered conjuncts, compiled
    closures — see {!Compile}) and cached; per execution the planner
    extracts equality and range (sargable) conjuncts, considers indexes
    on the class and on its Select ancestors (predicate pushdown through
    the derivation DAG), and picks index probe vs. extent scan by
    estimated candidate cardinality. {!explain} exposes the execution for
    tests and tuning. *)

type cid = Tse_schema.Klass.cid

type index_kind = Hash | Range

type plan =
  | Index_lookup of { attr : string; kind : index_kind; residual : bool }
      (** answered by an equality probe of the index on [attr];
          [residual] when remaining conjuncts are checked per candidate *)
  | Range_scan of { attr : string; residual : bool }
      (** answered by a key-interval walk of the ordered index on
          [attr] *)
  | Extent_scan

val plan : Tse_db.Database.t -> Indexes.t -> cid -> Tse_schema.Expr.t -> plan
(** The plan the engine would choose right now (warms the plan cache). *)

val select :
  Tse_db.Database.t ->
  Indexes.t ->
  cid ->
  Tse_schema.Expr.t ->
  Tse_store.Oid.Set.t
(** Members of the class satisfying the predicate. *)

val count : Tse_db.Database.t -> Indexes.t -> cid -> Tse_schema.Expr.t -> int
(** Same planning as {!select}, but folds the compiled evaluator over the
    candidates without materializing a result set. *)

type explain = {
  ex_plan : plan;  (** the plan that actually ran (a concurrently dropped
                       index degrades to [Extent_scan]) *)
  chosen_index : string option;  (** indexed attribute used, if any *)
  key_cardinality : int option;
      (** distinct keys in the chosen index at execution time *)
  conjunct_order : string list;
      (** the compiled conjuncts in evaluation (cost) order *)
  plan_cache_hit : bool;
      (** whether the compiled plan came from the cache *)
  pushdown_depth : int;
      (** how many Select derivation levels the chosen index probe was
          pushed through (0 = an index on the queried class itself) *)
  rows_scanned : int;
      (** objects examined: the extent for a scan, the candidate set for
          an index probe *)
  rows_returned : int;
}

val explain :
  Tse_db.Database.t -> Indexes.t -> cid -> Tse_schema.Expr.t -> explain
(** Run the query and report how it was executed. *)

val select_explain :
  Tse_db.Database.t ->
  Indexes.t ->
  cid ->
  Tse_schema.Expr.t ->
  explain * Tse_store.Oid.Set.t
(** {!explain} and the result set from one execution. *)

val pp_plan : Format.formatter -> plan -> unit
val pp_explain : Format.formatter -> explain -> unit
