(* Plan-level predicate compilation for the query engine.

   A (class, predicate) pair is lowered once into version-stable
   artifacts: the compiled whole-predicate evaluator, the cost-ordered
   conjunct breakdown with per-conjunct compiled closures and sargability
   facts, and the Select-derivation ancestry the planner can push the
   query through. Access-path choice is NOT cached — index availability
   and cardinalities change without a schema-version bump, so the planner
   re-decides per execution from these artifacts. *)

module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Expr = Tse_schema.Expr
module Expr_compile = Tse_schema.Expr_compile
module Klass = Tse_schema.Klass
module Schema_graph = Tse_schema.Schema_graph
module Database = Tse_db.Database
module Metrics = Tse_obs.Metrics

type cid = Klass.cid

(* A sargable fact about one conjunct: it constrains [attr] against a
   constant, so an index on [attr] can answer it. *)
type sarg =
  | Sarg_eq of string * Value.t
  | Sarg_cmp of string * Expr.cmp * Value.t
      (* attr on the left; cmp is one of Lt/Le/Gt/Ge *)

type conjunct = {
  c_expr : Expr.t;  (* const-folded *)
  c_text : string;
  c_cost : int;
  c_sarg : sarg option;
  c_eval : Oid.t -> bool;
      (* compiled, raises like Expr.eval_bool; the executor absorbs
         errors over the whole residual chain *)
}

type compiled = {
  cp_pred : Oid.t -> bool;  (* whole predicate, Database.holds semantics *)
  cp_conjuncts : conjunct list;  (* cost-ordered, cheapest first *)
  cp_chain : (cid * conjunct list) list;
      (* Select ancestry of the queried class, nearest source first:
         [(src, conjuncts of the select's predicate); ...]. Because the
         queried extent is maintained as a subset of every ancestor's
         extent filtered by these predicates, an index on an ancestor can
         serve the query once candidates are intersected back with the
         queried extent. *)
}

let flip_cmp = function
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le
  | (Expr.Eq | Expr.Ne) as op -> op

let sarg_of = function
  | Expr.Cmp (Expr.Eq, Expr.Attr a, Expr.Const v)
  | Expr.Cmp (Expr.Eq, Expr.Const v, Expr.Attr a) ->
    Some (Sarg_eq (a, v))
  | Expr.Cmp ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op, Expr.Attr a, Expr.Const v)
    ->
    Some (Sarg_cmp (a, op, v))
  | Expr.Cmp ((Expr.Lt | Expr.Le | Expr.Gt | Expr.Ge) as op, Expr.Const v, Expr.Attr a)
    ->
    Some (Sarg_cmp (a, flip_cmp op, v))
  | _ -> None

let chain_depth_cap = 8

let compile db cid pred =
  let binder = Database.compiled_binder db in
  let mk e =
    let e = Expr_compile.const_fold e in
    {
      c_expr = e;
      c_text = Expr.to_string e;
      c_cost = Expr_compile.cost e;
      c_sarg = sarg_of e;
      c_eval = Expr_compile.compile_bool binder e;
    }
  in
  let order cs =
    List.stable_sort (fun a b -> Int.compare a.c_cost b.c_cost) cs
  in
  let graph = Database.graph db in
  let rec chain c depth =
    if depth >= chain_depth_cap then []
    else
      match (Schema_graph.find_exn graph c).Klass.kind with
      | Klass.Virtual (Klass.Select (src, p)) ->
        (src, List.map mk (Expr_compile.conjuncts p)) :: chain src (depth + 1)
      | Klass.Base | Klass.Virtual _ -> []
      | exception _ -> []
  in
  {
    cp_pred = Database.compile_pred db pred;
    cp_conjuncts = order (List.map mk (Expr_compile.conjuncts pred));
    cp_chain = chain cid 0;
  }

(* --- plan cache ---------------------------------------------------------

   Keyed on (class, predicate encoding); the whole table is flushed when
   the database's compile stamp moves, so a stale compiled plan can never
   be returned after a schema evolution. *)

type cache = {
  tbl : (string, compiled) Hashtbl.t;
  mutable stamp : int;
}

let m_hits = Metrics.counter "query.plan_cache_hits"
let m_misses = Metrics.counter "query.plan_cache_misses"

let cache_capacity = 512

let create_cache () = { tbl = Hashtbl.create 64; stamp = min_int }

let cache_key cid pred =
  let buf = Buffer.create 64 in
  Buffer.add_string buf (string_of_int (Oid.to_int cid));
  Buffer.add_char buf '|';
  Expr.encode buf pred;
  Buffer.contents buf

let get cache db cid pred =
  let stamp = Database.compile_stamp db in
  if cache.stamp <> stamp then begin
    Hashtbl.reset cache.tbl;
    cache.stamp <- stamp
  end;
  let key = cache_key cid pred in
  match Hashtbl.find_opt cache.tbl key with
  | Some c ->
    Metrics.incr m_hits;
    (c, true)
  | None ->
    Metrics.incr m_misses;
    if Hashtbl.length cache.tbl >= cache_capacity then Hashtbl.reset cache.tbl;
    let c = compile db cid pred in
    Hashtbl.replace cache.tbl key c;
    (c, false)
