(** The expression language for select predicates and derived methods.

    MultiView's object algebra attaches a predicate to every [select]
    virtual class and a code block to every derived method (paper,
    Sections 3.2-3.3). Expressions are evaluated against one object
    ("self") through an abstract environment, so this module depends on
    neither the object model nor the database kernel. *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge
type arith = Add | Sub | Mul | Div

type t =
  | Const of Tse_store.Value.t
  | Attr of string  (** value of the named property on self *)
  | Self  (** self's OID as a [Ref] value *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Cmp of cmp * t * t
  | Arith of arith * t * t
  | Concat of t * t
  | Is_null of t
  | In_class of string  (** is self a member of the named class? *)
  | If of t * t * t

(** Evaluation environment: how to read self's properties and test class
    membership. *)
type env = {
  self : Tse_store.Oid.t;
  get : string -> Tse_store.Value.t;
      (** property read; must raise {!Unknown_property} for undefined names *)
  member_of : string -> bool;
}

exception Unknown_property of string
exception Type_error of string

val eval : env -> t -> Tse_store.Value.t
(** @raise Unknown_property if the expression reads an undefined property.
    @raise Type_error on ill-typed operations (e.g. [1 + "a"]). *)

(** {2 Evaluation primitives}

    Exposed so {!Expr_compile} can reuse the exact operator semantics;
    compiled closures must agree with {!eval} node for node. *)

val as_bool : Tse_store.Value.t -> bool
(** [Null] coerces to [false]; non-bool raises {!Type_error}. *)

val cmp_result : cmp -> int -> bool
val eval_cmp : cmp -> Tse_store.Value.t -> Tse_store.Value.t -> Tse_store.Value.t
val eval_arith : arith -> Tse_store.Value.t -> Tse_store.Value.t -> Tse_store.Value.t

val eval_bool : env -> t -> bool
(** Evaluate as a predicate. [Null] is treated as [false].
    @raise Type_error if the result is a non-boolean, non-null value. *)

val equal : t -> t -> bool
(** Structural equality; the classifier uses it for duplicate-class
    detection (two [select] classes with equal sources and equal predicates
    denote the same class). *)

val free_attrs : t -> string list
(** Property names the expression reads, without duplicates, sorted. The
    type-closure check uses this. *)

val referenced_classes : t -> string list
(** Class names mentioned in [In_class] tests, sorted. *)

val rename_attr : old_name:string -> new_name:string -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val encode : Buffer.t -> t -> unit
(** Stable text encoding for the database catalog (see
    {!Tse_db.Catalog}). *)

val decode : string -> int -> t * int
(** Inverse of {!encode}. @raise Failure on malformed input. *)

(** {2 Convenience constructors} *)

val int : int -> t
val str : string -> t
val bool : bool -> t
val attr : string -> t
val ( === ) : t -> t -> t
val ( <> ) : t -> t -> t
val ( < ) : t -> t -> t
val ( <= ) : t -> t -> t
val ( > ) : t -> t -> t
val ( >= ) : t -> t -> t
val ( && ) : t -> t -> t
val ( || ) : t -> t -> t
