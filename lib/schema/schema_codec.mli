(** Position-based persistence codecs for schema structures (properties,
    derivations, class records, whole graphs), shared by the catalog
    format ({!Tse_views.Catalog}) and the durability layer's snapshots
    and WAL schema records ({!Tse_db.Durable}).

    All readers raise {!Tse_store.Codec.Corrupt} on malformed input. *)

val add_cid : Buffer.t -> Klass.cid -> unit
val read_cid : string -> int -> Klass.cid * int
val add_prop : Buffer.t -> Prop.t -> unit
val read_prop : string -> int -> Prop.t * int
val add_derivation : Buffer.t -> Klass.derivation -> unit
val read_derivation : string -> int -> Klass.derivation * int

val add_class : Buffer.t -> Klass.t -> unit

val read_class : string -> int -> Klass.t * int
(** The returned class's [subs] are empty; callers install every class
    and then {!Schema_graph.relink_subs}. *)

val encode_graph : Schema_graph.t -> string
(** Root cid + every class, sorted by cid — a deterministic image, equal
    for equal schemas (the durability layer diffs successive images to
    decide whether a commit must log the schema). *)

val decode_graph : gen:Tse_store.Oid.Gen.t -> string -> Schema_graph.t
(** Rebuild a graph (sharing the heap's OID generator) from
    {!encode_graph} output. *)
