(* Closure compiler for Expr.t: lower a predicate once, evaluate it many
   times. The tree-walking Expr.eval pays per evaluation for dispatch, env
   closure allocation and name resolution; compilation pays those costs once
   per (expression, schema-state) and returns flat closures. *)

module Value = Tse_store.Value
open Expr

(* Expr's convenience constructors shadow the boolean operators, and a
   let-bound alias of Stdlib's [&&]/[||] primitives is a strict function
   (no short-circuit), so compiled chains spell the conditional out. *)

type 'o binder = {
  b_attr : string -> 'o -> Value.t;
  b_member : string -> 'o -> bool;
  b_self : 'o -> Value.t;
}

(* --- constant folding ----------------------------------------------------

   A subtree with no Attr/Self/In_class leaves is evaluated at compile time.
   Folding is exact: if compile-time evaluation raises, the node is kept so
   the error still surfaces (at the same evaluation point) at run time. *)

let const_env =
  {
    self = Tse_store.Oid.of_int 0;
    get = (fun n -> raise (Unknown_property n));
    member_of = (fun _ -> false);
  }

let rec const_fold e =
  let try_fold e' =
    match eval const_env e' with
    | v -> Const v
    | exception (Type_error _ | Unknown_property _) -> e'
  in
  match e with
  | Const _ | Attr _ | Self | In_class _ -> e
  | Not a -> begin
    match const_fold a with
    | Const _ as a' -> try_fold (Not a')
    | a' -> Not a'
  end
  | And (a, b) -> begin
    match (const_fold a, const_fold b) with
    (* short-circuit: a false-ish left conjunct decides the result even when
       the right side would raise, so dropping [b'] is exact *)
    | (Const v as a'), b' -> begin
      match as_bool v with
      | false -> Const (Value.Bool false)
      | true -> And (a', b')
      | exception Type_error _ -> And (a', b')
    end
    | a', b' -> And (a', b')
  end
  | Or (a, b) -> begin
    match (const_fold a, const_fold b) with
    | (Const v as a'), b' -> begin
      match as_bool v with
      | true -> Const (Value.Bool true)
      | false -> Or (a', b')
      | exception Type_error _ -> Or (a', b')
    end
    | a', b' -> Or (a', b')
  end
  | Cmp (op, a, b) -> begin
    match (const_fold a, const_fold b) with
    | (Const _ as a'), (Const _ as b') -> try_fold (Cmp (op, a', b'))
    | a', b' -> Cmp (op, a', b')
  end
  | Arith (op, a, b) -> begin
    match (const_fold a, const_fold b) with
    | (Const _ as a'), (Const _ as b') -> try_fold (Arith (op, a', b'))
    | a', b' -> Arith (op, a', b')
  end
  | Concat (a, b) -> begin
    match (const_fold a, const_fold b) with
    | (Const _ as a'), (Const _ as b') -> try_fold (Concat (a', b'))
    | a', b' -> Concat (a', b')
  end
  | Is_null a -> begin
    match const_fold a with
    | Const v -> Const (Value.Bool (Value.equal v Value.Null))
    | a' -> Is_null a'
  end
  | If (c, t, e') -> begin
    match const_fold c with
    | Const v as c' -> begin
      (* the taken branch is exact under eval's semantics *)
      match as_bool v with
      | true -> const_fold t
      | false -> const_fold e'
      | exception Type_error _ -> If (c', const_fold t, const_fold e')
    end
    | c' -> If (c', const_fold t, const_fold e')
  end

(* --- conjuncts ----------------------------------------------------------- *)

let conjuncts e =
  let rec flat acc = function
    | And (a, b) -> flat (flat acc b) a
    | e -> e :: acc
  in
  flat [] e

let conjoin = function
  | [] -> Const (Value.Bool true)
  | c :: rest -> List.fold_left (fun acc e -> And (acc, e)) c rest

(* Static cost heuristic for conjunct ordering: attribute reads dominate the
   per-object cost, equality tests tend to be the most selective. The exact
   numbers only need to rank "cheap selective test" before "expensive or
   permissive test". *)
let cost e =
  let rec size = function
    | Const _ | Self -> 1
    | Attr _ -> 4
    | In_class _ -> 3
    | Not a | Is_null a -> 1 + size a
    | And (a, b) | Or (a, b) | Arith (_, a, b) | Concat (a, b) ->
      1 + size a + size b
    | Cmp (_, a, b) -> 1 + size a + size b
    | If (a, b, c) -> 1 + size a + size b + size c
  in
  match e with
  | Cmp (Eq, _, _) -> size e (* equality keeps its raw size: selective *)
  | Cmp (_, _, _) -> size e + 1
  | _ -> size e + 2

(* Reordering conjuncts is only sound at the TOP level of a predicate whose
   evaluation absorbs Unknown_property/Type_error into [false] (the
   Database.holds contract): under that absorption the And-chain result is
   order-independent (any conjunct that is false or raises forces the whole
   chain to false). Inside Not/Or the error/false distinction is observable,
   so nested structure is never touched. *)
let order_conjuncts cs =
  List.stable_sort (fun a b -> Int.compare (cost a) (cost b)) cs

(* --- compilation --------------------------------------------------------- *)

let rec compile_value : 'o. 'o binder -> t -> 'o -> Value.t =
  fun binder e ->
  match e with
  | Const v -> fun _ -> v
  | Attr name -> binder.b_attr name
  | Self -> binder.b_self
  | Not a ->
    let fa = compile_bool binder a in
    fun o -> Value.Bool (not (fa o))
  | And (a, b) ->
    let fa = compile_bool binder a and fb = compile_bool binder b in
    fun o -> Value.Bool (if fa o then fb o else false)
  | Or (a, b) ->
    let fa = compile_bool binder a and fb = compile_bool binder b in
    fun o -> Value.Bool (if fa o then true else fb o)
  | Cmp (op, a, b) ->
    let fa = compile_value binder a and fb = compile_value binder b in
    fun o -> eval_cmp op (fa o) (fb o)
  | Arith (op, a, b) ->
    let fa = compile_value binder a and fb = compile_value binder b in
    fun o -> eval_arith op (fa o) (fb o)
  | Concat (a, b) ->
    let fa = compile_value binder a and fb = compile_value binder b in
    fun o -> begin
      match (fa o, fb o) with
      | Value.String x, Value.String y -> Value.String (x ^ y)
      | a, b ->
        raise
          (Type_error
             (Format.asprintf "concat of %a and %a" Value.pp a Value.pp b))
    end
  | Is_null a ->
    let fa = compile_value binder a in
    fun o -> Value.Bool (Value.equal (fa o) Value.Null)
  | In_class c -> begin
    let fm = binder.b_member c in
    fun o -> Value.Bool (fm o)
  end
  | If (c, t, e') ->
    let fc = compile_bool binder c in
    let ft = compile_value binder t and fe = compile_value binder e' in
    fun o -> if fc o then ft o else fe o

(* Boolean contexts avoid boxing intermediate Value.Bool results. *)
and compile_bool : 'o. 'o binder -> t -> 'o -> bool =
  fun binder e ->
  match e with
  | Const v ->
    let b = as_bool v in
    fun _ -> b
  | Not a ->
    let fa = compile_bool binder a in
    fun o -> not (fa o)
  | And (a, b) ->
    let fa = compile_bool binder a and fb = compile_bool binder b in
    fun o -> if fa o then fb o else false
  | Or (a, b) ->
    let fa = compile_bool binder a and fb = compile_bool binder b in
    fun o -> if fa o then true else fb o
  | Cmp (op, Attr a, Const (Value.Int k)) ->
    (* the dominant shape in select predicates: attr OP int-literal *)
    let fa = binder.b_attr a in
    fun o -> begin
      match fa o with
      | Value.Int x -> cmp_result op (Int.compare x k)
      | v -> as_bool (eval_cmp op v (Value.Int k))
    end
  | Cmp (op, a, b) ->
    let fa = compile_value binder a and fb = compile_value binder b in
    fun o -> as_bool (eval_cmp op (fa o) (fb o))
  | Is_null a ->
    let fa = compile_value binder a in
    fun o -> Value.equal (fa o) Value.Null
  | In_class c -> binder.b_member c
  | If (c, t, e') ->
    let fc = compile_bool binder c in
    let ft = compile_bool binder t and fe = compile_bool binder e' in
    fun o -> if fc o then ft o else fe o
  | (Attr _ | Self | Arith _ | Concat _) as e ->
    let fv = compile_value binder e in
    fun o -> as_bool (fv o)

let compile_pred binder e =
  let cs = order_conjuncts (List.map const_fold (conjuncts e)) in
  match conjoin cs with
  | Const v -> begin
    match as_bool v with
    | b -> fun _ -> b
    | exception Type_error _ -> fun _ -> false
  end
  | folded ->
    let f = compile_bool binder folded in
    fun o ->
      (* Database.holds semantics: evaluation errors mean "not a member" *)
      (match f o with
      | b -> b
      | exception (Unknown_property _ | Type_error _) -> false)
