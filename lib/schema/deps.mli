(** Static dependency index over the derivation DAG (the incremental
    reclassification engine's map of "what can a change actually touch").

    For every [select] class the index records, transitively through
    method bodies its predicate may invoke:

    - the stored-attribute names whose values the predicate can read, and
    - the classes whose membership the predicate can observe (via
      [In_class], and via classes that locally carry one of the read
      attributes — creating or destroying such a slice changes what the
      attribute resolves to).

    The index is a pure function of the schema; consumers must recompute
    it whenever the schema graph changes (see
    {!Schema_graph.version}). *)

type t

val compute : Schema_graph.t -> t

val selects_on_attr : t -> string -> Tse_store.Oid.Set.t
(** Select classes whose predicate verdict may change when the named
    stored attribute of an object is written. Empty means a write to the
    attribute can never change any membership. *)

val selects_on_class : t -> Klass.cid -> Tse_store.Oid.Set.t
(** Select classes whose predicate verdict may change for an object when
    that object's membership of the given class changes. *)

val select_count : t -> int
(** Number of select classes indexed (diagnostics). *)

val pp : Format.formatter -> t -> unit
