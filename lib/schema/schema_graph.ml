module Oid = Tse_store.Oid

type cid = Klass.cid

type t = {
  classes : Klass.t Oid.Tbl.t;
  gen : Oid.Gen.t;
  root : cid;
  (* reachability caches, flushed on any edge or class mutation *)
  anc_cache : Oid.Set.t Oid.Tbl.t;
  desc_cache : Oid.Set.t Oid.Tbl.t;
  (* monotone stamp for derived structures (dependency index, derivation
     order) to detect that the class set or topology changed under them *)
  mutable version : int;
}

let gen t = t.gen
let version t = t.version
let root t = t.root
let find t cid = Oid.Tbl.find_opt t.classes cid

let find_exn t cid =
  match find t cid with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "Schema_graph: unknown class %s" (Oid.to_string cid))

let name_of t cid = (find_exn t cid).name
let mem t cid = Oid.Tbl.mem t.classes cid

let find_by_name t name =
  Oid.Tbl.fold
    (fun _ (k : Klass.t) acc ->
      if acc = None && String.equal k.name name then Some k else acc)
    t.classes None

let find_by_name_exn t name =
  match find_by_name t name with
  | Some k -> k
  | None -> invalid_arg (Printf.sprintf "Schema_graph: no class named %s" name)

let classes t = Oid.Tbl.fold (fun _ k acc -> k :: acc) t.classes []
let cids t = Oid.Tbl.fold (fun cid _ acc -> cid :: acc) t.classes []
let size t = Oid.Tbl.length t.classes
let supers t cid = (find_exn t cid).supers
let subs t cid = (find_exn t cid).subs

let closure next start =
  let seen = ref Oid.Set.empty in
  let rec visit cid =
    List.iter
      (fun c ->
        if not (Oid.Set.mem c !seen) then begin
          seen := Oid.Set.add c !seen;
          visit c
        end)
      (next cid)
  in
  visit start;
  !seen

let flush_caches t =
  t.version <- t.version + 1;
  Oid.Tbl.reset t.anc_cache;
  Oid.Tbl.reset t.desc_cache

let cached cache compute cid =
  match Oid.Tbl.find_opt cache cid with
  | Some s -> s
  | None ->
    let s = compute cid in
    Oid.Tbl.replace cache cid s;
    s

let ancestors t cid = cached t.anc_cache (closure (supers t)) cid
let descendants t cid = cached t.desc_cache (closure (subs t)) cid

let is_strict_ancestor t ~anc ~desc = Oid.Set.mem anc (ancestors t desc)

let is_ancestor_or_self t ~anc ~desc =
  Oid.equal anc desc || is_strict_ancestor t ~anc ~desc

let create ~gen =
  let root = Oid.Gen.fresh gen in
  let t =
    { classes = Oid.Tbl.create 64; gen; root; anc_cache = Oid.Tbl.create 64;
      desc_cache = Oid.Tbl.create 64; version = 0 }
  in
  Oid.Tbl.replace t.classes root
    (Klass.make_base ~cid:root ~name:"Object" ~props:[]);
  t

let check_fresh_name t name =
  match find_by_name t name with
  | Some k ->
    invalid_arg
      (Printf.sprintf "Schema_graph: class name %s already used by %s" name
         (Oid.to_string k.cid))
  | None -> ()

let link t ~sup ~sub =
  let ksup = find_exn t sup and ksub = find_exn t sub in
  if not (List.exists (Oid.equal sub) ksup.subs) then begin
    ksup.subs <- ksup.subs @ [ sub ];
    ksub.supers <- ksub.supers @ [ sup ];
    flush_caches t
  end

let unlink t ~sup ~sub =
  let ksup = find_exn t sup and ksub = find_exn t sub in
  ksup.subs <- List.filter (fun c -> not (Oid.equal c sub)) ksup.subs;
  ksub.supers <- List.filter (fun c -> not (Oid.equal c sup)) ksub.supers;
  flush_caches t

let add_edge t ~sup ~sub =
  if Oid.equal sup sub then invalid_arg "Schema_graph.add_edge: self edge";
  if is_strict_ancestor t ~anc:sub ~desc:sup then
    invalid_arg
      (Printf.sprintf "Schema_graph.add_edge: %s-%s would create a cycle"
         (name_of t sup) (name_of t sub));
  let ksub = find_exn t sub in
  (* A real superclass supersedes the default root attachment. *)
  if
    (not (Oid.equal sup t.root))
    && List.exists (Oid.equal t.root) ksub.supers
  then unlink t ~sup:t.root ~sub;
  link t ~sup ~sub

let remove_edge t ~sup ~sub =
  unlink t ~sup ~sub;
  let ksub = find_exn t sub in
  if ksub.supers = [] && not (Oid.equal sub t.root) then
    link t ~sup:t.root ~sub

let register_base t ~name ~props ~supers =
  check_fresh_name t name;
  let cid = Oid.Gen.fresh t.gen in
  let props = List.map (fun p -> Prop.reoriginate p cid) props in
  let k = Klass.make_base ~cid ~name ~props in
  Oid.Tbl.replace t.classes cid k;
  (match supers with
  | [] -> link t ~sup:t.root ~sub:cid
  | supers -> List.iter (fun sup -> add_edge t ~sup ~sub:cid) supers);
  cid

let register_virtual t ~name derivation props =
  check_fresh_name t name;
  let cid = Oid.Gen.fresh t.gen in
  let props = List.map (fun p -> Prop.reoriginate p cid) props in
  let k = Klass.make_virtual ~cid ~name derivation props in
  Oid.Tbl.replace t.classes cid k;
  (* no edge is linked yet, so flush_caches never runs: bump explicitly *)
  t.version <- t.version + 1;
  cid

let remove t cid =
  if Oid.equal cid t.root then invalid_arg "Schema_graph.remove: root";
  let k = find_exn t cid in
  List.iter (fun sup -> unlink t ~sup ~sub:cid) k.supers;
  List.iter (fun sub -> remove_edge t ~sup:cid ~sub) k.subs;
  Oid.Tbl.remove t.classes cid;
  (* an edgeless class reaches neither link nor unlink: bump explicitly *)
  t.version <- t.version + 1

let subclasses_within t cid ~in_set =
  let seen = ref Oid.Set.empty in
  let order = ref [] in
  let rec visit c =
    if not (Oid.Set.mem c !seen) then begin
      seen := Oid.Set.add c !seen;
      if Oid.Set.mem c in_set then order := c :: !order;
      List.iter visit (subs t c)
    end
  in
  visit cid;
  List.rev !order

let topo_order t =
  let indegree = Oid.Tbl.create 64 in
  Oid.Tbl.iter
    (fun cid (k : Klass.t) -> Oid.Tbl.replace indegree cid (List.length k.supers))
    t.classes;
  let queue = Queue.create () in
  Oid.Tbl.iter (fun cid d -> if d = 0 then Queue.add cid queue) indegree;
  let order = ref [] in
  while not (Queue.is_empty queue) do
    let cid = Queue.pop queue in
    order := cid :: !order;
    List.iter
      (fun sub ->
        let d = Oid.Tbl.find indegree sub - 1 in
        Oid.Tbl.replace indegree sub d;
        if d = 0 then Queue.add sub queue)
      (subs t cid)
  done;
  let order = List.rev !order in
  assert (List.length order = size t);
  order

let paths_down t ~src ~dst =
  let rec walk c path =
    let path = c :: path in
    if Oid.equal c dst then [ List.rev path ]
    else List.concat_map (fun sub -> walk sub path) (subs t c)
  in
  walk src []

let is_redundant_edge t ~sup ~sub =
  List.exists
    (fun mid ->
      (not (Oid.equal mid sub)) && is_strict_ancestor t ~anc:mid ~desc:sub)
    (subs t sup)

let copy t =
  let t' =
    { classes = Oid.Tbl.create (size t); gen = t.gen; root = t.root;
      anc_cache = Oid.Tbl.create 64; desc_cache = Oid.Tbl.create 64;
      version = t.version }
  in
  Oid.Tbl.iter
    (fun cid (k : Klass.t) ->
      Oid.Tbl.replace t'.classes cid
        {
          Klass.cid = k.cid;
          name = k.name;
          kind = k.kind;
          local_props = k.local_props;
          supers = k.supers;
          subs = k.subs;
        })
    t.classes;
  t'

let restore_empty ~gen ~root =
  Oid.Gen.mark_used gen root;
  { classes = Oid.Tbl.create 64; gen; root; anc_cache = Oid.Tbl.create 64;
    desc_cache = Oid.Tbl.create 64; version = 0 }

let install t (k : Klass.t) =
  Oid.Gen.mark_used t.gen k.cid;
  Oid.Tbl.replace t.classes k.cid k;
  flush_caches t

let relink_subs t =
  Oid.Tbl.iter (fun _ (k : Klass.t) -> k.subs <- []) t.classes;
  let order = Oid.Tbl.fold (fun cid _ acc -> cid :: acc) t.classes [] in
  List.iter
    (fun sub ->
      List.iter
        (fun sup ->
          let ksup = find_exn t sup in
          if not (List.exists (Oid.equal sub) ksup.subs) then
            ksup.subs <- ksup.subs @ [ sub ])
        (find_exn t sub).supers)
    (List.sort Oid.compare order);
  flush_caches t

let pp ppf t =
  let order = topo_order t in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun cid ->
      let k = find_exn t cid in
      Format.fprintf ppf "%s%s <- {%s}@ " k.name
        (if Klass.is_virtual k then "*" else "")
        (String.concat ", " (List.map (name_of t) k.supers)))
    order;
  Format.fprintf ppf "@]"
