module Oid = Tse_store.Oid

let check graph =
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  let root = Schema_graph.root graph in
  let classes = Schema_graph.classes graph in
  (* acyclicity: a class must never be its own strict ancestor. A
     dangling superclass edge makes the ancestor closure raise; swallow
     it here — the endpoint-existence clause below reports it. *)
  List.iter
    (fun (k : Klass.t) ->
      match Schema_graph.ancestors graph k.cid with
      | anc -> if Oid.Set.mem k.cid anc then add "cycle through class %s" k.name
      | exception Invalid_argument _ -> ())
    classes;
  (* edge symmetry and endpoint existence *)
  List.iter
    (fun (k : Klass.t) ->
      List.iter
        (fun sup ->
          match Schema_graph.find graph sup with
          | None -> add "%s lists missing superclass %s" k.name (Oid.to_string sup)
          | Some ksup ->
            if not (List.exists (Oid.equal k.cid) ksup.subs) then
              add "edge %s->%s not symmetric" ksup.name k.name)
        k.supers;
      List.iter
        (fun sub ->
          match Schema_graph.find graph sub with
          | None -> add "%s lists missing subclass %s" k.name (Oid.to_string sub)
          | Some ksub ->
            if not (List.exists (Oid.equal k.cid) ksub.supers) then
              add "edge %s->%s not symmetric" k.name ksub.name)
        k.subs)
    classes;
  (* rootedness *)
  List.iter
    (fun (k : Klass.t) ->
      if Oid.equal k.cid root then begin
        if k.supers <> [] then add "root has superclasses"
      end
      else begin
        if k.supers = [] then add "class %s is disconnected (no superclass)" k.name;
        match Schema_graph.is_strict_ancestor graph ~anc:root ~desc:k.cid with
        | true -> ()
        | false -> add "class %s is not a descendant of the root" k.name
        | exception Invalid_argument _ -> ()
      end)
    classes;
  (* unique names *)
  let names = Hashtbl.create 16 in
  List.iter
    (fun (k : Klass.t) ->
      if Hashtbl.mem names k.name then add "duplicate class name %s" k.name
      else Hashtbl.add names k.name ())
    classes;
  (* virtual sources exist *)
  List.iter
    (fun (k : Klass.t) ->
      List.iter
        (fun src ->
          if not (Schema_graph.mem graph src) then
            add "virtual class %s has missing source %s" k.name
              (Oid.to_string src))
        (Klass.sources k))
    classes;
  (* unique local property names *)
  List.iter
    (fun (k : Klass.t) ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (p : Prop.t) ->
          if Hashtbl.mem seen p.name then
            add "class %s defines property %s twice" k.name p.name
          else Hashtbl.add seen p.name ())
        k.local_props)
    classes;
  List.rev !problems

let check_exn graph =
  match check graph with
  | [] -> ()
  | problems ->
    failwith ("schema invariants violated:\n  " ^ String.concat "\n  " problems)
