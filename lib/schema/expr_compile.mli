(** Closure compiler for {!Expr.t}.

    Lowers an expression once into flat closures so repeated evaluation
    (extent scans, reclassification fixpoints) skips the tree-walk dispatch,
    per-call env allocation and per-read name resolution of {!Expr.eval}.

    Compiled code must be invalidated whenever the schema state it was
    compiled against changes (see {!Tse_schema.Schema_graph.version}): the
    binder is consulted once per distinct name at compile time, so renames,
    new declarers of an attribute, or class additions can change what the
    closures should do. *)

(** How to bind the names an expression mentions. Each function is called
    once per distinct name at compile time and returns the per-object
    accessor; this is where a database can substitute a fast-path getter. *)
type 'o binder = {
  b_attr : string -> 'o -> Tse_store.Value.t;
      (** must raise {!Expr.Unknown_property} for undefined names *)
  b_member : string -> 'o -> bool;
  b_self : 'o -> Tse_store.Value.t;
}

val const_fold : Expr.t -> Expr.t
(** Exact constant folding: a folded expression evaluates to the same value
    (or raises the same class of error at the same point) as the original
    under {!Expr.eval}. Subtrees whose compile-time evaluation would raise
    are left intact. *)

val conjuncts : Expr.t -> Expr.t list
(** Flatten a top-level [And] chain, in source order. *)

val conjoin : Expr.t list -> Expr.t
(** Left-fold conjuncts back into one expression; [[]] becomes [true]. *)

val cost : Expr.t -> int
(** Static per-object evaluation cost heuristic (attribute reads dominate;
    equality comparisons rank as most selective). *)

val order_conjuncts : Expr.t list -> Expr.t list
(** Stable sort by {!cost}, cheapest first. Only sound for the top-level
    conjuncts of a predicate evaluated under error absorption (the
    [Database.holds] contract) — reordering inside [Not]/[Or] would change
    which errors escape. *)

val compile_value : 'o binder -> Expr.t -> 'o -> Tse_store.Value.t
(** Same semantics as {!Expr.eval}, including raised errors. *)

val compile_bool : 'o binder -> Expr.t -> 'o -> bool
(** Same semantics as {!Expr.eval_bool}, including raised errors. *)

val compile_pred : 'o binder -> Expr.t -> 'o -> bool
(** Full predicate pipeline: constant folding, top-level conjunct
    reordering (cheapest first), and absorption of
    {!Expr.Unknown_property}/{!Expr.Type_error} into [false] — i.e. the
    [Database.holds] membership contract. *)
