module Oid = Tse_store.Oid

type t = {
  attr_selects : (string, Oid.Set.t) Hashtbl.t;
  class_selects : Oid.Set.t Oid.Tbl.t;
  select_count : int;
}

let selects_on_attr t name =
  Option.value (Hashtbl.find_opt t.attr_selects name) ~default:Oid.Set.empty

let selects_on_class t cid =
  Option.value (Oid.Tbl.find_opt t.class_selects cid) ~default:Oid.Set.empty

let select_count t = t.select_count

(* A predicate reads a property by NAME; resolution may land on a stored
   slot or on a method whose body reads further properties. The schema
   does not say which definition an individual object resolves to, so the
   closure is conservative: a name is expanded through EVERY method body
   defined under it anywhere in the schema. *)
let compute g =
  let classes = Schema_graph.classes g in
  let methods : (string, Expr.t list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (k : Klass.t) ->
      List.iter
        (fun (p : Prop.t) ->
          match p.body with
          | Prop.Method e ->
            Hashtbl.replace methods p.name
              (e :: Option.value (Hashtbl.find_opt methods p.name) ~default:[])
          | Prop.Stored _ -> ())
        k.local_props)
    classes;
  let attr_selects = Hashtbl.create 32 in
  let class_selects = Oid.Tbl.create 32 in
  let add_attr name cid =
    Hashtbl.replace attr_selects name
      (Oid.Set.add cid
         (Option.value (Hashtbl.find_opt attr_selects name)
            ~default:Oid.Set.empty))
  in
  let add_class c cid =
    Oid.Tbl.replace class_selects c
      (Oid.Set.add cid
         (Option.value (Oid.Tbl.find_opt class_selects c)
            ~default:Oid.Set.empty))
  in
  (* free attrs and referenced class names of a predicate, closed through
     method bodies *)
  let closure pred =
    let attrs = ref [] in
    let cnames = ref (Expr.referenced_classes pred) in
    let seen = Hashtbl.create 8 in
    let rec visit name =
      if not (Hashtbl.mem seen name) then begin
        Hashtbl.add seen name ();
        attrs := name :: !attrs;
        List.iter
          (fun body ->
            cnames := Expr.referenced_classes body @ !cnames;
            List.iter visit (Expr.free_attrs body))
          (Option.value (Hashtbl.find_opt methods name) ~default:[])
      end
    in
    List.iter visit (Expr.free_attrs pred);
    (!attrs, List.sort_uniq String.compare !cnames)
  in
  let select_count = ref 0 in
  List.iter
    (fun (k : Klass.t) ->
      match k.kind with
      | Klass.Virtual (Klass.Select (_, pred)) ->
        incr select_count;
        let attrs, cnames = closure pred in
        List.iter (fun a -> add_attr a k.cid) attrs;
        List.iter
          (fun cn ->
            match Schema_graph.find_by_name g cn with
            | Some kc -> add_class kc.Klass.cid k.cid
            | None -> () (* member_of on an unknown name is constantly false *))
          cnames
      | Klass.Base | Klass.Virtual _ -> ())
    classes;
  (* carrier rule: gaining/losing a class that locally defines a property
     some predicate reads changes what (and whether) that name resolves *)
  List.iter
    (fun (k : Klass.t) ->
      List.iter
        (fun (p : Prop.t) ->
          match Hashtbl.find_opt attr_selects p.name with
          | Some selects -> Oid.Set.iter (fun s -> add_class k.cid s) selects
          | None -> ())
        k.local_props)
    classes;
  { attr_selects; class_selects; select_count = !select_count }

let pp ppf t =
  Format.fprintf ppf "@[<v>selects: %d@ " t.select_count;
  Hashtbl.iter
    (fun name s ->
      Format.fprintf ppf "attr %s -> {%s}@ " name
        (String.concat ", " (List.map Oid.to_string (Oid.Set.elements s))))
    t.attr_selects;
  Oid.Tbl.iter
    (fun c s ->
      Format.fprintf ppf "class %s -> {%s}@ " (Oid.to_string c)
        (String.concat ", " (List.map Oid.to_string (Oid.Set.elements s))))
    t.class_selects;
  Format.fprintf ppf "@]"
