module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Codec = Tse_store.Codec

let add_cid buf cid = Codec.add_int buf (Oid.to_int cid)

let read_cid s pos =
  let i, pos = Codec.read_int s pos in
  (Oid.of_int i, pos)

let add_prop buf (p : Prop.t) =
  Codec.add_int buf p.uid;
  Codec.add_str buf p.name;
  Codec.add_int buf (Oid.to_int p.origin);
  Codec.add_bool buf p.promoted;
  match p.body with
  | Prop.Stored { ty; default; required } ->
    Buffer.add_char buf 's';
    Value.encode_ty buf ty;
    Value.encode buf default;
    Codec.add_bool buf required
  | Prop.Method e ->
    Buffer.add_char buf 'm';
    Expr.encode buf e

let read_prop s pos =
  let uid, pos = Codec.read_int s pos in
  let name, pos = Codec.read_str s pos in
  let origin, pos = Codec.read_int s pos in
  let promoted, pos = Codec.read_bool s pos in
  if pos >= String.length s then Codec.fail_at pos "eof in prop";
  match s.[pos] with
  | 's' ->
    let ty, pos = Value.decode_ty s (pos + 1) in
    let default, pos = Value.decode s pos in
    let required, pos = Codec.read_bool s pos in
    ( Prop.make ~uid ~name
        ~body:(Prop.Stored { ty; default; required })
        ~origin:(Oid.of_int origin) ~promoted,
      pos )
  | 'm' ->
    let e, pos = Expr.decode s (pos + 1) in
    ( Prop.make ~uid ~name ~body:(Prop.Method e) ~origin:(Oid.of_int origin)
        ~promoted,
      pos )
  | c -> Codec.fail_at pos (Printf.sprintf "bad prop body %C" c)

let add_derivation buf = function
  | Klass.Select (src, pred) ->
    Buffer.add_char buf 'S';
    add_cid buf src;
    Expr.encode buf pred
  | Klass.Hide (names, src) ->
    Buffer.add_char buf 'H';
    Codec.add_list buf Codec.add_str names;
    add_cid buf src
  | Klass.Refine (props, src) ->
    Buffer.add_char buf 'R';
    Codec.add_list buf add_prop props;
    add_cid buf src
  | Klass.Refine_from { src; prop_name; target } ->
    Buffer.add_char buf 'F';
    add_cid buf src;
    Codec.add_str buf prop_name;
    add_cid buf target
  | Klass.Union (a, b) ->
    Buffer.add_char buf 'U';
    add_cid buf a;
    add_cid buf b
  | Klass.Intersect (a, b) ->
    Buffer.add_char buf 'N';
    add_cid buf a;
    add_cid buf b
  | Klass.Difference (a, b) ->
    Buffer.add_char buf 'D';
    add_cid buf a;
    add_cid buf b

let read_derivation s pos =
  if pos >= String.length s then Codec.fail_at pos "eof in derivation";
  match s.[pos] with
  | 'S' ->
    let src, pos = read_cid s (pos + 1) in
    let pred, pos = Expr.decode s pos in
    (Klass.Select (src, pred), pos)
  | 'H' ->
    let names, pos = Codec.read_list Codec.read_str s (pos + 1) in
    let src, pos = read_cid s pos in
    (Klass.Hide (names, src), pos)
  | 'R' ->
    let props, pos = Codec.read_list read_prop s (pos + 1) in
    let src, pos = read_cid s pos in
    (Klass.Refine (props, src), pos)
  | 'F' ->
    let src, pos = read_cid s (pos + 1) in
    let prop_name, pos = Codec.read_str s pos in
    let target, pos = read_cid s pos in
    (Klass.Refine_from { src; prop_name; target }, pos)
  | 'U' ->
    let a, pos = read_cid s (pos + 1) in
    let b, pos = read_cid s pos in
    (Klass.Union (a, b), pos)
  | 'N' ->
    let a, pos = read_cid s (pos + 1) in
    let b, pos = read_cid s pos in
    (Klass.Intersect (a, b), pos)
  | 'D' ->
    let a, pos = read_cid s (pos + 1) in
    let b, pos = read_cid s pos in
    (Klass.Difference (a, b), pos)
  | c -> Codec.fail_at pos (Printf.sprintf "bad derivation tag %C" c)

let add_class buf (k : Klass.t) =
  add_cid buf k.cid;
  Codec.add_str buf k.name;
  (match k.kind with
  | Klass.Base -> Buffer.add_char buf 'B'
  | Klass.Virtual d ->
    Buffer.add_char buf 'V';
    add_derivation buf d);
  Codec.add_list buf add_cid k.supers;
  Codec.add_list buf add_prop k.local_props

let read_class s pos =
  let cid, pos = read_cid s pos in
  let name, pos = Codec.read_str s pos in
  if pos >= String.length s then Codec.fail_at pos "eof in class";
  let kind, pos =
    match s.[pos] with
    | 'B' -> (Klass.Base, pos + 1)
    | 'V' ->
      let d, pos = read_derivation s (pos + 1) in
      (Klass.Virtual d, pos)
    | c -> Codec.fail_at pos (Printf.sprintf "bad kind %C" c)
  in
  let supers, pos = Codec.read_list read_cid s pos in
  let props, pos = Codec.read_list read_prop s pos in
  ({ Klass.cid; name; kind; local_props = props; supers; subs = [] }, pos)

let encode_graph graph =
  let buf = Buffer.create 1024 in
  add_cid buf (Schema_graph.root graph);
  let classes =
    Schema_graph.classes graph
    |> List.sort (fun (a : Klass.t) b -> Oid.compare a.cid b.cid)
  in
  Codec.add_list buf add_class classes;
  Buffer.contents buf

let decode_graph ~gen s =
  let root, pos = read_cid s 0 in
  let graph = Schema_graph.restore_empty ~gen ~root in
  let classes, pos = Codec.read_list read_class s pos in
  if pos <> String.length s then Codec.fail_at pos "trailing schema bytes";
  List.iter (Schema_graph.install graph) classes;
  Schema_graph.relink_subs graph;
  graph
