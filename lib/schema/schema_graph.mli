(** The global schema: one rooted DAG of base and virtual classes.

    MultiView integrates every virtual class into a single consistent
    global schema graph (paper, Section 3.1); all views select their
    classes from here. The distinguished root class (the paper's
    [ROOT]/[OBJECT]) is created with the graph and is the default
    superclass of otherwise-unconnected classes. *)

type cid = Klass.cid
type t

val create : gen:Tse_store.Oid.Gen.t -> t
val gen : t -> Tse_store.Oid.Gen.t

val version : t -> int
(** Monotone mutation stamp: bumped on every class registration/removal
    and every is-a edge change. Derived structures (the {!Deps} index,
    cached derivation orders) compare it to detect staleness. *)

val root : t -> cid
(** The system root class, named ["Object"]. *)

(** {2 Class registry} *)

val register_base :
  t -> name:string -> props:Prop.t list -> supers:cid list -> cid
(** Create and link a base class. An empty [supers] list links the class
    under the root. Property [origin] fields are rewritten to the new
    class.
    @raise Invalid_argument if the name is already in use by another class. *)

val register_virtual :
  t -> name:string -> Klass.derivation -> Prop.t list -> cid
(** Create a virtual class {e without} is-a edges; the classifier is
    responsible for linking it (Section 3.1, subtask 2). *)

val find : t -> cid -> Klass.t option
val find_exn : t -> cid -> Klass.t
val find_by_name : t -> string -> Klass.t option
val find_by_name_exn : t -> string -> Klass.t
val name_of : t -> cid -> string
val mem : t -> cid -> bool
val classes : t -> Klass.t list
val cids : t -> cid list
val size : t -> int

val remove : t -> cid -> unit
(** Unlink the class from all neighbours and drop it. The root cannot be
    removed. *)

(** {2 Generalization edges} *)

val add_edge : t -> sup:cid -> sub:cid -> unit
(** Make [sup] a direct superclass of [sub]. Adding an existing edge is a
    no-op; if [sub]'s only superclass was the root, the root edge is
    dropped first (the root stays an indirect ancestor).
    @raise Invalid_argument if the edge would create a cycle. *)

val remove_edge : t -> sup:cid -> sub:cid -> unit
(** Remove a direct edge; if this disconnects [sub] from every superclass,
    [sub] is re-attached under the root (paper, Section 6.6.1). *)

val supers : t -> cid -> cid list
val subs : t -> cid -> cid list

val ancestors : t -> cid -> Tse_store.Oid.Set.t
(** All transitive superclasses, excluding the class itself. *)

val descendants : t -> cid -> Tse_store.Oid.Set.t

val is_strict_ancestor : t -> anc:cid -> desc:cid -> bool
val is_ancestor_or_self : t -> anc:cid -> desc:cid -> bool

val subclasses_within : t -> cid -> in_set:Tse_store.Oid.Set.t -> cid list
(** Descendants (including the class itself) restricted to [in_set] — the
    "subclasses of C within a view" traversal used by the Section 6
    translation algorithms. *)

val topo_order : t -> cid list
(** Every class after all of its superclasses. *)

val paths_down : t -> src:cid -> dst:cid -> cid list list
(** All generalization paths from ancestor [src] down to descendant [dst],
    each path listed from [src] to [dst] inclusive. Used by the
    [findProperties] macro (Section 6.6.2, footnote 17). *)

val is_redundant_edge : t -> sup:cid -> sub:cid -> bool
(** [true] when [sub] would remain a descendant of [sup] through some other
    path if the direct edge were removed. *)

val copy : t -> t
(** Deep copy (fresh class records, same cids). The direct-modification
    oracle and Proposition B checks mutate copies. *)

(** {2 Catalog loading} *)

val restore_empty : gen:Tse_store.Oid.Gen.t -> root:cid -> t
(** An empty graph whose root will be the class with the given id; the
    loader must {!install} that class (and all others) itself. *)

val install : t -> Klass.t -> unit
(** Register a class record verbatim (no edge bookkeeping, no checks);
    catalog loading only. The generator is advanced past its cid. *)

val relink_subs : t -> unit
(** Rebuild every class's [subs] list from the [supers] lists — called
    once after all classes are installed. *)

val pp : Format.formatter -> t -> unit
