module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Prop = Tse_schema.Prop
module Klass = Tse_schema.Klass
module Expr = Tse_schema.Expr
module Schema_graph = Tse_schema.Schema_graph
module Type_info = Tse_schema.Type_info
module Database = Tse_db.Database

type cid = Klass.cid

module Policy = struct
  type value_closure = Reject | Accept
  type union_target = First | Second | Both

  type t = { value_closure : value_closure; union_target : union_target }

  let default = { value_closure = Reject; union_target = First }
  let lenient = { value_closure = Accept; union_target = First }
end

exception Rejected of string

let rejected fmt = Format.kasprintf (fun s -> raise (Rejected s)) fmt

(* Source classes that receive a create/add through this class. *)
let rec add_targets policy db cid =
  let k = Schema_graph.find_exn (Database.graph db) cid in
  match k.kind with
  | Klass.Base -> [ cid ]
  | Klass.Virtual d -> begin
    match d with
    | Klass.Select (c, _) | Klass.Hide (_, c) | Klass.Refine (_, c) ->
      add_targets policy db c
    | Klass.Refine_from { target; _ } -> add_targets policy db target
    | Klass.Union (a, b) -> begin
      match policy.Policy.union_target with
      | Policy.First -> add_targets policy db a
      | Policy.Second -> add_targets policy db b
      | Policy.Both -> add_targets policy db a @ add_targets policy db b
    end
    | Klass.Intersect (a, b) -> add_targets policy db a @ add_targets policy db b
    | Klass.Difference (a, _) -> add_targets policy db a
  end

let dedup cids =
  List.fold_left
    (fun acc c -> if List.exists (Oid.equal c) acc then acc else acc @ [ c ])
    [] cids

let origin_bases_p policy db cid = dedup (add_targets policy db cid)
let origin_bases db cid = origin_bases_p Policy.default db cid

(* Every class whose membership the create/add must establish must get its
   required stored attributes from [init] or from declared defaults. *)
let check_required db cid init =
  let graph = Database.graph db in
  List.iter
    (fun (p : Prop.t) ->
      match p.body with
      | Prop.Stored { required = true; default; _ }
        when Value.equal default Value.Null ->
        if not (List.mem_assoc p.name init) then
          rejected "required attribute %s of %s not assigned" p.name
            (Schema_graph.name_of graph cid)
      | Prop.Stored _ | Prop.Method _ -> ())
    (Type_info.stored_attrs graph cid)

(* Assignments issued through class [cid] may only name properties visible
   there: a hide class cannot receive values for its hidden attributes. *)
let check_visible db cid init =
  let graph = Database.graph db in
  List.iter
    (fun (name, _) ->
      if not (Type_info.has_prop graph cid name) then
        rejected "attribute %s is not visible on %s" name
          (Schema_graph.name_of graph cid))
    init

let check_closure policy db cid o what =
  match policy.Policy.value_closure with
  | Policy.Accept -> `Ok
  | Policy.Reject ->
    if Database.is_member db o cid then `Ok
    else `Violation (Printf.sprintf "%s violates the membership predicate" what)

let create ?(policy = Policy.default) ?methods db cid ~init =
  let graph = Database.graph db in
  check_visible db cid init;
  (* type-specific create methods (Section 3.3): transform or refuse *)
  let init =
    match methods with
    | Some m -> Type_methods.run_create m db cid init
    | None -> init
  in
  check_visible db cid init;
  let bases = origin_bases_p policy db cid in
  (match bases with
  | [] -> rejected "class %s has no origin base class" (Schema_graph.name_of graph cid)
  | _ -> ());
  List.iter (fun b -> check_required db b init) bases;
  let o =
    match bases with
    | first :: rest ->
      (* all base memberships must exist before the init writes: a slot
         carried by a refine slice or by a second origin base (intersect)
         is only storable once the object is a member there *)
      let o = Database.create_object db first ~init:[] in
      List.iter (fun b -> Database.add_base_membership db o b) rest;
      (try List.iter (fun (n, v) -> Database.set_attr db o n v) init
       with e ->
         Database.destroy_object db o;
         (match e with
         | Expr.Unknown_property n ->
           rejected
             "attribute %s has no storable slot on the object created \
              through %s (its membership predicate is not satisfied)"
             n
             (Schema_graph.name_of graph cid)
         | e -> raise e));
      o
    | [] -> assert false
  in
  (* value closure: the new object must actually be a member of the class
     it was created through *)
  match check_closure policy db cid o "created object" with
  | `Ok -> o
  | `Violation msg ->
    Database.destroy_object db o;
    rejected "create through %s rejected: %s" (Schema_graph.name_of graph cid) msg

let delete ?methods db objects =
  List.iter
    (fun o ->
      (match methods with
      | Some m -> Type_methods.run_delete m db o
      | None -> ());
      Database.destroy_object db o)
    objects

let set ?(policy = Policy.default) ?methods ?through db objects assignments =
  List.iter
    (fun o ->
      (match through with
      | Some cid when not (Database.is_member db o cid) ->
        rejected "object %s is not a member of the addressed class"
          (Oid.to_string o)
      | Some _ | None -> ());
      let assignments =
        match methods with
        | Some m -> Type_methods.run_set m db o assignments
        | None -> assignments
      in
      let saved =
        List.map (fun (name, _) -> (name, Database.get_prop db o name)) assignments
      in
      List.iter (fun (name, v) -> Database.set_attr db o name v) assignments;
      match through with
      | None -> ()
      | Some cid -> begin
        match check_closure policy db cid o "updated object" with
        | `Ok -> ()
        | `Violation msg ->
          (* roll the slots back, then refuse *)
          List.iter (fun (name, v) -> Database.set_attr db o name v) saved;
          rejected "set through %s rejected: %s"
            (Schema_graph.name_of (Database.graph db) cid)
            msg
      end)
    objects

let add ?(policy = Policy.default) db objects cid =
  let bases = origin_bases_p policy db cid in
  List.iter
    (fun o ->
      let before = Database.member_classes db o in
      List.iter (fun b -> Database.add_base_membership db o b) bases;
      match check_closure policy db cid o "added object" with
      | `Ok -> ()
      | `Violation msg ->
        (* restore previous membership *)
        let before_base =
          List.filter
            (fun c -> Klass.is_base (Schema_graph.find_exn (Database.graph db) c))
            before
        in
        List.iter
          (fun b ->
            if not (List.exists (Oid.equal b) before_base) then
              Database.remove_base_membership db o b)
          bases;
        rejected "add to %s rejected: %s"
          (Schema_graph.name_of (Database.graph db) cid)
          msg)
    objects

(* Source classes that a remove propagates to (delete/remove/set always go
   to both arguments of a set operation if the object is a member). *)
let rec remove_targets db cid o =
  let k = Schema_graph.find_exn (Database.graph db) cid in
  match k.kind with
  | Klass.Base -> [ cid ]
  | Klass.Virtual d -> begin
    let if_member c =
      if Database.is_member db o c then remove_targets db c o else []
    in
    match d with
    | Klass.Select (c, _) | Klass.Hide (_, c) | Klass.Refine (_, c) ->
      remove_targets db c o
    | Klass.Refine_from { target; _ } -> remove_targets db target o
    | Klass.Union (a, b) -> if_member a @ if_member b
    | Klass.Intersect (a, b) -> if_member a @ if_member b
    | Klass.Difference (a, _) -> remove_targets db a o
  end

let remove ?policy db objects cid =
  ignore policy;
  List.iter
    (fun o ->
      let bases = dedup (remove_targets db cid o) in
      List.iter (fun b -> Database.remove_base_membership db o b) bases)
    objects
