(** Binary codec for the view-schema {!History}: every version of every
    view. One encoding shared by the catalog container format and the
    durable layer's ["views"] extension blob, so the history a recovery
    reconstructs is byte-compatible with the one a catalog round-trip
    produces. *)

val add_view : Buffer.t -> View_schema.t -> unit
val read_view : string -> int -> View_schema.t * int

val add_history : Buffer.t -> History.t -> unit
val read_history : string -> int -> History.t * int
(** Versions are re-registered oldest-first, so the decoded history
    satisfies {!History.register}'s sequencing invariant. *)

val encode : History.t -> string

val decode : string -> History.t
(** @raise Tse_store.Codec.Corrupt on malformed or trailing bytes. *)
