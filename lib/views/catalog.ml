module Oid = Tse_store.Oid
module Heap = Tse_store.Heap
module Codec = Tse_store.Codec
module Snapshot = Tse_store.Snapshot
module Storage = Tse_store.Storage
module Klass = Tse_schema.Klass
module Schema_codec = Tse_schema.Schema_codec
module Schema_graph = Tse_schema.Schema_graph
module Database = Tse_db.Database

(* Primitive and schema codecs live in Tse_store.Codec and
   Tse_schema.Schema_codec (shared with the durability layer); this module
   only owns the catalog container format: schema + base memberships +
   view history + heap snapshot. *)

let add_cid = Schema_codec.add_cid
let read_cid = Schema_codec.read_cid

let schema_blob db history =
  let buf = Buffer.create 4096 in
  let graph = Database.graph db in
  add_cid buf (Schema_graph.root graph);
  let classes =
    Schema_graph.classes graph
    |> List.sort (fun (a : Klass.t) b -> Oid.compare a.cid b.cid)
  in
  Codec.add_list buf Schema_codec.add_class classes;
  (* per-object explicit base memberships *)
  let bases =
    List.map
      (fun o -> (o, Oid.Set.elements (Database.base_membership db o)))
      (List.sort Oid.compare (Database.objects db))
  in
  Codec.add_list buf
    (fun buf (o, cids) ->
      add_cid buf o;
      Codec.add_list buf add_cid cids)
    bases;
  (* view history (same codec as the durable layer's "views" blob) *)
  (match history with
  | None -> Codec.add_list buf History_codec.add_view []
  | Some h -> History_codec.add_history buf h);
  Buffer.contents buf

let to_string ?history db =
  let blob = schema_blob db history in
  let heap_snapshot = Snapshot.to_string (Database.heap db) in
  let buf = Buffer.create (String.length blob + String.length heap_snapshot + 64) in
  Buffer.add_string buf "TSE-CATALOG 1\n";
  Buffer.add_string buf (Printf.sprintf "SCHEMA %d\n" (String.length blob));
  Buffer.add_string buf blob;
  Buffer.add_string buf "\nHEAP\n";
  Buffer.add_string buf heap_snapshot;
  Buffer.contents buf

let of_string text =
  let header = "TSE-CATALOG 1\n" in
  if String.length text < String.length header
     || String.sub text 0 (String.length header) <> header
  then failwith "Catalog: bad header";
  let pos = String.length header in
  let nl = String.index_from text pos '\n' in
  let schema_line = String.sub text pos (nl - pos) in
  let blob_len =
    match String.split_on_char ' ' schema_line with
    | [ "SCHEMA"; n ] -> int_of_string n
    | _ -> failwith "Catalog: bad SCHEMA line"
  in
  let blob_start = nl + 1 in
  let blob = String.sub text blob_start blob_len in
  let rest = blob_start + blob_len in
  let heap_marker = "\nHEAP\n" in
  if
    String.length text < rest + String.length heap_marker
    || String.sub text rest (String.length heap_marker) <> heap_marker
  then failwith "Catalog: missing HEAP section";
  let heap_text =
    String.sub text
      (rest + String.length heap_marker)
      (String.length text - rest - String.length heap_marker)
  in
  try
    (* heap first: it owns the OID generator *)
    let heap = Snapshot.of_string heap_text in
    let pos = 0 in
    let root, pos = read_cid blob pos in
    let graph = Schema_graph.restore_empty ~gen:(Heap.gen heap) ~root in
    let classes, pos = Codec.read_list Schema_codec.read_class blob pos in
    List.iter (Schema_graph.install graph) classes;
    Schema_graph.relink_subs graph;
    let bases, pos =
      Codec.read_list
        (fun s pos ->
          let o, pos = read_cid s pos in
          let cids, pos = Codec.read_list read_cid s pos in
          ((o, cids), pos))
        blob pos
    in
    let db = Database.restore ~heap ~graph ~bases in
    List.iter (fun (k : Klass.t) -> Database.note_new_class db k.cid) classes;
    let history, _pos = History_codec.read_history blob pos in
    (db, history)
  with Codec.Corrupt (what, pos) ->
    failwith (Printf.sprintf "Catalog: %s at %d" what pos)

let () = Storage.declare_failpoints "catalog"

let save ?history db path =
  Storage.write_atomic ~fp:"catalog" ~path (to_string ?history db)

let load path =
  match Storage.read_file path with
  | s -> of_string s
  | exception Sys_error msg ->
    failwith (Printf.sprintf "Catalog.load %S: %s" path msg)
