module Codec = Tse_store.Codec
module Schema_codec = Tse_schema.Schema_codec

(* Binary codec for a full view-schema history: every version of every
   view, flat. Shared between the catalog container format and the
   durable layer's "views" extension blob. *)

let add_view buf (v : View_schema.t) =
  Codec.add_str buf v.view_name;
  Codec.add_int buf v.version;
  Codec.add_list buf
    (fun buf (cid, lname) ->
      Schema_codec.add_cid buf cid;
      Codec.add_str buf lname)
    v.members

let read_view s pos =
  let name, pos = Codec.read_str s pos in
  let version, pos = Codec.read_int s pos in
  let members, pos =
    Codec.read_list
      (fun s pos ->
        let cid, pos = Schema_codec.read_cid s pos in
        let lname, pos = Codec.read_str s pos in
        ((cid, lname), pos))
      s pos
  in
  ({ View_schema.view_name = name; version; members }, pos)

let add_history buf h =
  let views =
    List.concat_map (fun name -> History.versions h name) (History.view_names h)
  in
  Codec.add_list buf add_view views

let read_history s pos =
  let views, pos = Codec.read_list read_view s pos in
  let h = History.create () in
  List.iter
    (fun (v : View_schema.t) -> History.register h v)
    (List.sort
       (fun (a : View_schema.t) b -> Int.compare a.version b.version)
       views);
  (h, pos)

let encode h =
  let buf = Buffer.create 256 in
  add_history buf h;
  Buffer.contents buf

let decode s =
  let h, pos = read_history s 0 in
  if pos <> String.length s then Codec.fail_at pos "trailing history bytes";
  h
