module Value = Tse_store.Value
module Oid = Tse_store.Oid
module Prop = Tse_schema.Prop
module Expr = Tse_schema.Expr
module Type_info = Tse_schema.Type_info
module Schema_graph = Tse_schema.Schema_graph
module Database = Tse_db.Database
module Ops = Tse_algebra.Ops

type t = {
  db : Database.t;
  classes : Tse_schema.Klass.cid list;
  virtuals : Tse_schema.Klass.cid list;
}

let random_pred rng g ~src ~salt =
  match Type_info.stored_attrs g src with
  | [] -> None
  | attrs ->
    let p = List.nth attrs (Random.State.int rng (List.length attrs)) in
    let base =
      match p.Prop.body with
      | Prop.Stored { ty = Value.TInt; _ } ->
        Expr.(attr p.Prop.name >= int (Random.State.int rng 100))
      | Prop.Stored { ty = Value.TBool; _ } ->
        Expr.(attr p.Prop.name === bool (Random.State.bool rng))
      | Prop.Stored _ | Prop.Method _ ->
        Expr.(attr p.Prop.name === str (Printf.sprintf "v%d" salt))
    in
    (* sometimes observe a membership, exercising class dependencies *)
    if Random.State.int rng 4 = 0 then
      let cname = Schema_graph.name_of g src in
      Some Expr.(base && In_class cname)
    else Some base

let generate ~seed ~classes ?(attrs_per_class = 3) ?(objects = 0)
    ?(virtuals = 0) ?(full_reclassify = false) () =
  let rng = Random.State.make [| seed |] in
  let db = Database.create () in
  Database.set_full_reclassify db full_reclassify;
  let g = Database.graph db in
  let attr_counter = ref 0 in
  let made = ref [] in
  for i = 0 to classes - 1 do
    let props =
      List.init attrs_per_class (fun _ ->
          incr attr_counter;
          let name = Printf.sprintf "a%d" !attr_counter in
          let ty =
            match Random.State.int rng 3 with
            | 0 -> Value.TInt
            | 1 -> Value.TString
            | _ -> Value.TBool
          in
          Prop.stored ~origin:(Oid.of_int 0) name ty)
    in
    let supers =
      match !made with
      | [] -> []
      | existing ->
        let pick () = List.nth existing (Random.State.int rng (List.length existing)) in
        let s1 = pick () in
        if List.length existing >= 2 && Random.State.int rng 4 = 0 then begin
          let s2 = pick () in
          if Oid.equal s1 s2 then [ s1 ] else [ s1; s2 ]
        end
        else [ s1 ]
    in
    (* a second super may be a descendant of the first; add_edge would then
       raise on redundancy only for cycles, which cannot occur here as all
       supers predate the class *)
    let cid =
      Schema_graph.register_base g ~name:(Printf.sprintf "C%d" i) ~props ~supers
    in
    Database.note_new_class db cid;
    made := cid :: !made
  done;
  let classes_list = List.rev !made in
  (* virtual select classes over random sources (bases or earlier
     virtuals), so derivation chains occur; a duplicate derivation is
     rejected by the algebra and simply skipped *)
  let virt = ref [] in
  let vsources = Array.of_list classes_list in
  for v = 0 to virtuals - 1 do
    let pool_extra = Array.of_list !virt in
    let total = Array.length vsources + Array.length pool_extra in
    let k = Random.State.int rng total in
    let src =
      if k < Array.length vsources then vsources.(k)
      else pool_extra.(k - Array.length vsources)
    in
    match random_pred rng g ~src ~salt:v with
    | None -> ()
    | Some pred -> (
      match Ops.select db ~name:(Printf.sprintf "V%d" v) ~src pred with
      | cid -> virt := cid :: !virt
      | exception Ops.Error _ -> ())
  done;
  let virtuals_list = List.rev !virt in
  let arr = Array.of_list classes_list in
  for j = 0 to objects - 1 do
    let cid = arr.(Random.State.int rng (Array.length arr)) in
    let init =
      Type_info.stored_attrs g cid
      |> List.filteri (fun k _ -> k < 2)
      |> List.map (fun (p : Prop.t) ->
             let v =
               match p.body with
               | Prop.Stored { ty = Value.TInt; _ } ->
                 Value.Int (Random.State.int rng 100)
               | Prop.Stored { ty = Value.TBool; _ } ->
                 Value.Bool (Random.State.bool rng)
               | Prop.Stored _ | Prop.Method _ ->
                 Value.String (Printf.sprintf "v%d" j)
             in
             (p.name, v))
    in
    ignore (Database.create_object db cid ~init)
  done;
  { db; classes = classes_list; virtuals = virtuals_list }

let class_names t =
  List.map (Schema_graph.name_of (Database.graph t.db)) t.classes

let random_class rng t =
  List.nth t.classes (Random.State.int rng (List.length t.classes))

let random_attr rng t cid =
  match Type_info.stored_attrs (Database.graph t.db) cid with
  | [] -> None
  | attrs ->
    let p = List.nth attrs (Random.State.int rng (List.length attrs)) in
    Some p.Prop.name
