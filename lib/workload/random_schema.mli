(** Seeded random schemas and populations, for property tests and
    scalability benchmarks.

    Schemas are rooted DAGs: each class gets one or (occasionally) two
    superclasses among the previously created ones, and a few stored
    attributes with distinct names, so multiple-inheritance diamonds and
    deep chains both occur. Optionally a layer of [select] virtual
    classes is derived over random sources (base or earlier virtual), with
    predicates over the sources' stored attributes and occasional
    [In_class] membership tests. All randomness is drawn from a
    caller-seeded state — identical seeds give identical databases (the
    twin-fixture requirement of the verification tests). *)

type t = {
  db : Tse_db.Database.t;
  classes : Tse_schema.Klass.cid list;  (** creation order: supers first *)
  virtuals : Tse_schema.Klass.cid list;
      (** the generated [select] classes, creation order *)
}

val generate :
  seed:int ->
  classes:int ->
  ?attrs_per_class:int ->
  ?objects:int ->
  ?virtuals:int ->
  ?full_reclassify:bool ->
  unit ->
  t
(** [objects] objects are spread uniformly over the base classes (default
    0). [attrs_per_class] defaults to 3. [virtuals] requests that many
    derived [select] classes (default 0; duplicates the classifier rejects
    are silently skipped, so fewer may materialize). [full_reclassify]
    pins the database to the full-fixpoint oracle instead of the
    incremental reclassification engine — twin databases generated from
    one seed with the two settings are behaviourally comparable. *)

val class_names : t -> string list

val random_class : Random.State.t -> t -> Tse_schema.Klass.cid
val random_attr : Random.State.t -> t -> Tse_schema.Klass.cid -> string option
(** A stored attribute usable at the class, if any. *)
