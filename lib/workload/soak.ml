module Value = Tse_store.Value
module Oid = Tse_store.Oid
module Heap = Tse_store.Heap
module Failpoint = Tse_store.Failpoint
module Prop = Tse_schema.Prop
module Expr = Tse_schema.Expr
module Type_info = Tse_schema.Type_info
module Schema_graph = Tse_schema.Schema_graph
module Invariants = Tse_schema.Invariants
module Database = Tse_db.Database
module Durable = Tse_db.Durable
module Analysis = Tse_analysis.Analysis
module Occ = Tse_concurrency.Occ
module History = Tse_views.History
module View_schema = Tse_views.View_schema
module Change = Tse_core.Change
module Tsem = Tse_core.Tsem
module Durable_tse = Tse_core.Durable_tse
module Verify = Tse_core.Verify
module Metrics = Tse_obs.Metrics
module Timeseries = Tse_obs.Timeseries

(* Chaos soak: a seeded scenario generator drives hundreds of view
   evolutions (long version chains) against a durable database while OCC
   writers and old-version readers run alongside, and a crash is
   injected mid-evolution — at a random evolve phase or WAL record
   boundary — every few steps. A never-crashed in-memory twin (the
   oracle) executes exactly the same logical operations; after every
   recovery the harness asserts schema invariants, analyzer cleanliness
   and structural twin equivalence. Any discrepancy is a violation, and
   violations are the harness's verdict. *)

type config = {
  seed : int;
  steps : int;  (* evolution attempts *)
  crashes : int;  (* injected crash/recover cycles (best effort target) *)
  dir : string;
  policy : Durable.sync_policy option;
  classes : int;
  objects : int;
  writers : int;  (* OCC writer transactions per step *)
  checkpoint_every : int;  (* steps between checkpoints; 0 = never *)
  sampler : Timeseries.t option;
      (* externally-owned sampler (serve-stats passes the one its
         endpoint serves); [None] means the run creates a private one *)
}

let default ~dir =
  {
    seed = 42;
    steps = 300;
    crashes = 30;
    dir;
    policy = None;
    classes = 6;
    objects = 30;
    writers = 3;
    checkpoint_every = 20;
    sampler = None;
  }

type outcome = {
  steps_run : int;
  evolutions_applied : int;
  evolutions_rejected : int;
  crashes_injected : int;
  recoveries : int;
  rolled_forward : int;
  rolled_back : int;
  final_version : int;
  total_versions : int;
  occ_commits : int;
  occ_retries : int;
  reads : int;
  recovery_ms : float list;  (* one entry per crash recovery, in order *)
  violations : string list;
  timeseries : Timeseries.t;  (* one tick per step *)
}

let view_name = "main"

let recovery_hist =
  Metrics.histogram
    ~buckets:[ 0.5; 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. ]
    "soak.recovery_ms"

(* crash sites: every evolve phase plus the two WAL record boundaries of
   the evolution protocol, plus a torn write of the begin record *)
let crash_sites =
  [|
    ("evolve.change", Failpoint.Crash_now);
    ("evolve.derive", Failpoint.Crash_now);
    ("evolve.classify", Failpoint.Crash_now);
    ("evolve.integrate", Failpoint.Crash_now);
    ("evolve.reclassify", Failpoint.Crash_now);
    ("evolve.log.begin", Failpoint.Crash_now);
    ("evolve.log.commit", Failpoint.Crash_now);
    ("wal.append.short", Failpoint.Short_write 11);
  |]

(* ---------------- deterministic base population ---------------- *)

let stored = Prop.stored ~origin:(Oid.of_int 0)

let build_base ~classes ~objects db =
  let graph = Database.graph db in
  let made = ref [] in
  for i = 0 to classes - 1 do
    let props =
      [
        stored (Printf.sprintf "a%d" i) Value.TInt;
        stored (Printf.sprintf "s%d" i) Value.TString;
      ]
    in
    let supers =
      match !made with prev :: _ when i mod 3 <> 0 -> [ prev ] | _ -> []
    in
    let cid =
      Schema_graph.register_base graph
        ~name:(Printf.sprintf "C%d" i)
        ~props ~supers
    in
    Database.note_new_class db cid;
    made := cid :: !made
  done;
  let arr = Array.of_list (List.rev !made) in
  for j = 0 to objects - 1 do
    let i = j mod classes in
    ignore
      (Database.create_object db arr.(i)
         ~init:
           [
             (Printf.sprintf "a%d" i, Value.Int (j * 7));
             (Printf.sprintf "s%d" i, Value.String (Printf.sprintf "o%d" j));
           ])
  done

(* ---------------- change generation ---------------- *)

(* Generated against the oracle's current view (identical to the durable
   one by the twin invariant). Most changes are accepted; a deliberate
   minority reference stale names and get rejected, exercising the
   durable abort path. *)
let gen_change rng oracle step =
  let view = Tsem.current oracle view_name in
  let members = view.View_schema.members in
  let locals = List.map snd members in
  let pick xs = List.nth xs (Random.State.int rng (List.length xs)) in
  let cls = pick locals in
  match Random.State.int rng 100 with
  | n when n < 38 ->
    Change.Add_attribute
      {
        cls;
        def =
          Change.attr ~default:(Value.Int 0)
            (Printf.sprintf "x%d" step)
            Value.TInt;
      }
  | n when n < 52 ->
    Change.Add_method
      {
        cls;
        method_name = Printf.sprintf "m%d" step;
        body = Expr.int (step + 1);
      }
  | n when n < 62 ->
    (* may reference an attribute that was never added, or was added to
       a different class: a deterministic rejection *)
    Change.Delete_attribute
      { cls; attr_name = Printf.sprintf "x%d" (Random.State.int rng (step + 1)) }
  | n when n < 72 ->
    (* unanchored: anchoring to an evolved class replays its whole
       derivation chain, which makes late soak steps arbitrarily slow;
       the crash-matrix unit tests cover the anchored form *)
    Change.Add_class { cls = Printf.sprintf "K%d" step; connected_to = None }
  | n when n < 80 ->
    Change.Rename_class { old_name = cls; new_name = Printf.sprintf "R%d" step }
  | n when n < 86 -> Change.Delete_method { cls; method_name = Printf.sprintf "m%d" (Random.State.int rng (step + 1)) }
  | n when n < 92 ->
    let sup = pick locals and sub = pick locals in
    Change.Add_edge { sup; sub }
  | n when n < 96 -> Change.Delete_class { cls }
  | _ -> (
    (* partition on a stored int attribute of the member class *)
    let cid = fst (List.find (fun (_, l) -> String.equal l cls) members) in
    let graph = Database.graph (Tsem.db oracle) in
    let int_attrs =
      if Schema_graph.mem graph cid then
        Type_info.stored_attrs graph cid
        |> List.filter (fun (p : Prop.t) ->
               match p.body with
               | Prop.Stored { ty = Value.TInt; _ } -> true
               | _ -> false)
      else []
    in
    match int_attrs with
    | [] ->
      Change.Add_attribute
        {
          cls;
          def =
            Change.attr ~default:(Value.Int 1)
              (Printf.sprintf "x%d" step)
              Value.TInt;
        }
    | attrs ->
      let a = (pick attrs).Prop.name in
      Change.Partition_class
        {
          cls;
          predicate = Expr.(attr a >= int (Random.State.int rng 150));
          into_true = Printf.sprintf "P%dt" step;
          into_false = Printf.sprintf "P%df" step;
        })

let gen_changes rng oracle step =
  let first = gen_change rng oracle step in
  (* occasionally a two-change unit, proving list atomicity *)
  if Random.State.int rng 5 = 0 then
    [
      first;
      Change.Add_attribute
        {
          cls = List.nth (List.map snd (Tsem.current oracle view_name).View_schema.members) 0;
          def =
            Change.attr ~default:(Value.Int 0)
              (Printf.sprintf "y%d" step)
              Value.TInt;
        };
    ]
  else [ first ]

(* ---------------- runtime state ---------------- *)

type state = {
  mutable t : Durable_tse.t;
  mutable occ : Occ.t;
  oracle : Tsem.t;
  rng : Random.State.t;
  traffic_rng : Random.State.t;
  mutable violations : string list;
  mutable occ_commits : int;
  mutable occ_retries_seen : int;
  mutable reads : int;
  mutable recovery_ms : float list;
}

let violate st fmt =
  Printf.ksprintf
    (fun msg ->
      Tse_obs.Log.warn "soak" "violation: %s" msg;
      st.violations <- msg :: st.violations)
    fmt

let fingerprint_of t =
  Verify.db_fingerprint ~history:(Durable_tse.history t) (Durable_tse.db t)

let oracle_fingerprint oracle =
  Verify.db_fingerprint ~history:(Tsem.history oracle) (Tsem.db oracle)

(* Everything the ISSUE demands after a recovery: schema invariants,
   database consistency, analyzer cleanliness, and structural twin
   equivalence against the never-crashed oracle. *)
let post_recovery_checks st ctx =
  let db = Durable_tse.db st.t in
  (match Database.check db with
  | [] -> ()
  | ps -> violate st "%s: Database.check: %s" ctx (String.concat "; " ps));
  (match Invariants.check (Database.graph db) with
  | [] -> ()
  | ps -> violate st "%s: Invariants.check: %s" ctx (String.concat "; " ps));
  let report = Analysis.analyze (Database.graph db) in
  if not (Analysis.is_clean report) then
    violate st "%s: analyzer errors: %d" ctx (List.length (Analysis.errors report));
  let fp_d = fingerprint_of st.t in
  let fp_o = oracle_fingerprint st.oracle in
  if not (String.equal fp_d fp_o) then
    violate st "%s: twin divergence (recovered state differs from oracle)" ctx

let reattach st =
  st.occ <- Occ.create (Durable_tse.db st.t)

let recover st ~policy ctx =
  let t0 = Unix.gettimeofday () in
  let t, report = Durable_tse.open_dir ?policy ~dir:(Durable_tse.dir st.t) () in
  let ms = (Unix.gettimeofday () -. t0) *. 1000. in
  Metrics.observe recovery_hist ms;
  st.recovery_ms <- ms :: st.recovery_ms;
  st.t <- t;
  reattach st;
  (report, ms, ctx)

(* ---------------- traffic ---------------- *)

(* Writers target the seed attributes (a<i>/s<i> of base class C<i>) —
   these exist on both twins for the whole run, whatever the view
   evolution does on top. The write goes through an OCC session against
   the durable database and is mirrored onto the oracle only after the
   session validates. *)
let writer_traffic st ~writers ~classes =
  let rng = st.traffic_rng in
  let odb = Tsem.db st.oracle in
  let ograph = Database.graph odb in
  for _w = 1 to writers do
    let i = Random.State.int rng classes in
    match Schema_graph.find_by_name ograph (Printf.sprintf "C%d" i) with
    | None -> ()
    | Some k -> (
      let members = Database.extent_list odb k.Tse_schema.Klass.cid in
      match members with
      | [] -> ()
      | _ -> (
        let o = List.nth members (Random.State.int rng (List.length members)) in
        let name, v =
          if Random.State.bool rng then
            (Printf.sprintf "a%d" i, Value.Int (Random.State.int rng 1000))
          else
            ( Printf.sprintf "s%d" i,
              Value.String (Printf.sprintf "w%d" (Random.State.int rng 1000)) )
        in
        match
          Occ.commit_with_retry ~jitter:rng
            ~durable:(Durable_tse.durable st.t) st.occ (fun sess ->
              st.reads <- st.reads + 1;
              ignore (Occ.read sess o name);
              Occ.write sess o name v)
        with
        | (), _attempt ->
          st.occ_commits <- st.occ_commits + 1;
          Database.set_attr odb o name v
        | exception Occ.Too_many_conflicts _ ->
          (* single-threaded harness: cannot happen, but keep the twin
             honest if it ever does *)
          ()))
  done

(* Readers pinned to historical view versions: every class of a randomly
   chosen old version must still resolve and its extent must agree with
   the oracle's. *)
let reader_traffic st =
  let rng = st.traffic_rng in
  let hist = Durable_tse.history st.t in
  let versions = History.versions hist view_name in
  if versions <> [] then begin
    let v = List.nth versions (Random.State.int rng (List.length versions)) in
    let db = Durable_tse.db st.t in
    let odb = Tsem.db st.oracle in
    let graph = Database.graph db in
    List.iter
      (fun (cid, lname) ->
        if Schema_graph.mem graph cid then begin
          st.reads <- st.reads + 1;
          let sz = Database.extent_size db cid in
          let osz =
            if Schema_graph.mem (Database.graph odb) cid then
              Database.extent_size odb cid
            else -1
          in
          if sz <> osz then
            violate st
              "pinned reader: extent of %s (v%d) differs: durable %d oracle %d"
              lname v.View_schema.version sz osz
        end)
      v.View_schema.members
  end

(* ---------------- the soak loop ---------------- *)

let run cfg =
  let rng = Random.State.make [| cfg.seed |] in
  let ts =
    match cfg.sampler with Some ts -> ts | None -> Timeseries.create ()
  in
  Failpoint.reset ();
  let t, _ = Durable_tse.open_dir ?policy:cfg.policy ~dir:cfg.dir () in
  let oracle = Tsem.create () in
  build_base ~classes:cfg.classes ~objects:cfg.objects (Durable_tse.db t);
  build_base ~classes:cfg.classes ~objects:cfg.objects (Tsem.db oracle);
  let _v =
    Durable_tse.define_view_by_names t ~name:view_name
      (List.init cfg.classes (Printf.sprintf "C%d"))
  in
  let _ov =
    Tsem.define_view_by_names oracle ~name:view_name
      (List.init cfg.classes (Printf.sprintf "C%d"))
  in
  Durable_tse.commit t;
  Durable_tse.sync t;
  let st =
    {
      t;
      occ = Occ.create (Durable_tse.db t);
      oracle;
      rng;
      traffic_rng = Random.State.make [| cfg.seed; 0xbee |];
      violations = [];
      occ_commits = 0;
      occ_retries_seen = 0;
      reads = 0;
      recovery_ms = [];
    }
  in
  (* initial twin check: both sides must agree before any chaos *)
  if not (String.equal (fingerprint_of st.t) (oracle_fingerprint oracle)) then
    violate st "setup: twin divergence before any evolution";
  let applied = ref 0 and rejected = ref 0 in
  let crashes_done = ref 0 and recoveries = ref 0 in
  let forward = ref 0 and back = ref 0 in
  let retries0 = Metrics.find_counter "occ.retries" in
  Timeseries.sample ts (* baseline tick: rates start from step 0 *);
  for step = 0 to cfg.steps - 1 do
    (* 1. concurrent traffic, synced so a later crash cannot lose state
       the oracle already mirrors *)
    writer_traffic st ~writers:cfg.writers ~classes:cfg.classes;
    reader_traffic st;
    Durable_tse.commit st.t;
    Durable_tse.sync st.t;
    (* 2. decide whether this step crashes mid-evolution *)
    let remaining_steps = cfg.steps - step in
    let remaining_crashes = cfg.crashes - !crashes_done in
    let inject =
      remaining_crashes > 0
      && (remaining_steps <= remaining_crashes
         || Random.State.float rng 1.0
            < (1.4 *. float_of_int cfg.crashes /. float_of_int cfg.steps))
    in
    let site =
      if inject then begin
        let name, action =
          crash_sites.(Random.State.int rng (Array.length crash_sites))
        in
        Failpoint.arm name action;
        Some name
      end
      else None
    in
    (* 3. one evolution attempt *)
    let changes = gen_changes rng oracle step in
    let pre_version = (Tsem.current oracle view_name).View_schema.version in
    (match Durable_tse.evolve_many st.t ~view:view_name changes with
    | Ok v ->
      Option.iter (fun _ -> Failpoint.reset ()) site;
      incr applied;
      (* mirror on the twin; it executed the same prefix of history, so
         the same changes must succeed with the same resulting version *)
      (match Tsem.evolve_many oracle ~view:view_name changes with
      | ov ->
        if ov.View_schema.version <> v.View_schema.version then
          violate st "step %d: version skew: durable v%d oracle v%d" step
            v.View_schema.version ov.View_schema.version
      | exception e ->
        violate st "step %d: oracle rejected what durable applied: %s" step
          (Printexc.to_string e))
    | Error _msg ->
      Option.iter (fun _ -> Failpoint.reset ()) site;
      incr rejected;
      (* rejection forced a reopen inside evolve_many; the OCC manager
         watches a dead database value now *)
      reattach st;
      post_recovery_checks st (Printf.sprintf "step %d (rejected)" step)
    | exception Failpoint.Crash where ->
      incr crashes_done;
      Failpoint.reset ();
      Durable_tse.abandon st.t;
      let report, _ms, _ = recover st ~policy:cfg.policy
          (Printf.sprintf "step %d crash at %s" step where) in
      incr recoveries;
      let post_version =
        (Durable_tse.current st.t view_name).View_schema.version
      in
      let expected_forward = pre_version + List.length changes in
      if post_version = expected_forward then begin
        incr forward;
        incr applied;
        (* the durable side completed the evolution during recovery:
           bring the twin up to date before comparing *)
        match Tsem.evolve_many oracle ~view:view_name changes with
        | _ -> ()
        | exception e ->
          violate st "step %d: oracle cannot follow roll-forward: %s" step
            (Printexc.to_string e)
      end
      else if post_version = pre_version then begin
        incr back;
        incr rejected
      end
      else
        violate st
          "step %d: hybrid state after crash at %s: v%d not in {v%d, v%d}"
          step where post_version pre_version expected_forward;
      ignore report;
      post_recovery_checks st
        (Printf.sprintf "step %d crash at %s" step where));
    (* 4. periodic checkpoint bounds recovery time *)
    if cfg.checkpoint_every > 0 && (step + 1) mod cfg.checkpoint_every = 0 then
      Durable_tse.checkpoint st.t;
    (* 5. one sampler tick per step — ops/s and quantile series over
       the life of the run, embedded in the JSON report *)
    Timeseries.sample ts
  done;
  (* final shutdown/reopen cycle: the surviving state must be readable
     cold and still equivalent to the twin *)
  Durable_tse.close st.t;
  let t, _ = Durable_tse.open_dir ?policy:cfg.policy ~dir:cfg.dir () in
  st.t <- t;
  incr recoveries;
  reattach st;
  post_recovery_checks st "final reopen";
  let final_version =
    (Durable_tse.current st.t view_name).View_schema.version
  in
  let total_versions = History.total_versions (Durable_tse.history st.t) in
  st.occ_retries_seen <- Metrics.find_counter "occ.retries" - retries0;
  Durable_tse.close st.t;
  {
    steps_run = cfg.steps;
    evolutions_applied = !applied;
    evolutions_rejected = !rejected;
    crashes_injected = !crashes_done;
    recoveries = !recoveries;
    rolled_forward = !forward;
    rolled_back = !back;
    final_version;
    total_versions;
    occ_commits = st.occ_commits;
    occ_retries = st.occ_retries_seen;
    reads = st.reads;
    recovery_ms = List.rev st.recovery_ms;
    violations = List.rev st.violations;
    timeseries = ts;
  }

(* ---------------- reporting ---------------- *)

(* The headline series embedded in the report — the full sampler dump
   (every registry metric) stays behind the /series endpoint. *)
let embedded_series =
  [
    "occ.commits";  (* ops/s *)
    "wal.fsyncs";
    "evolve.ms.rate";  (* evolutions/s *)
    "soak.recovery_ms.p50";
    "soak.recovery_ms.p99";
  ]

let to_json cfg (o : outcome) =
  let buf = Buffer.create 1024 in
  let hist_buckets = [ 1.; 2.; 5.; 10.; 20.; 50.; 100.; 200.; 500.; 1000. ] in
  let rh = Metrics.Histogram.of_observations ~buckets:hist_buckets o.recovery_ms in
  (* bucket interpolation can estimate past the true extreme; the exact
     max is known here, so clamp the reported quantiles to it *)
  let rmax = List.fold_left Float.max 0. o.recovery_ms in
  let q v = Float.min v rmax in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf "  \"bench\": \"scenarios\",\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"domains\": %d,\n"
       (Tse_pool.Pool.size (Tse_pool.Pool.global ())));
  Buffer.add_string buf
    (Printf.sprintf "  \"host_cores\": %d,\n"
       (Domain.recommended_domain_count ()));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"config\": {\"seed\": %d, \"steps\": %d, \"crashes\": %d, \
        \"classes\": %d, \"objects\": %d, \"writers\": %d, \
        \"checkpoint_every\": %d, \"policy\": \"%s\"},\n"
       cfg.seed cfg.steps cfg.crashes cfg.classes cfg.objects cfg.writers
       cfg.checkpoint_every
       (match cfg.policy with
       | None -> "default"
       | Some p -> Durable.policy_to_string p));
  Buffer.add_string buf
    (Printf.sprintf
       "  \"results\": {\"steps\": %d, \"evolutions_applied\": %d, \
        \"evolutions_rejected\": %d, \"crashes_injected\": %d, \
        \"recoveries\": %d, \"rolled_forward\": %d, \"rolled_back\": %d, \
        \"final_version\": %d, \"total_versions\": %d, \"occ_commits\": %d, \
        \"occ_retries\": %d, \"reads\": %d},\n"
       o.steps_run o.evolutions_applied o.evolutions_rejected
       o.crashes_injected o.recoveries o.rolled_forward o.rolled_back
       o.final_version o.total_versions o.occ_commits o.occ_retries o.reads);
  Buffer.add_string buf
    (Printf.sprintf
       "  \"recovery_latency_ms\": {\"count\": %d, \"p50\": %.3f, \"p95\": \
        %.3f, \"p99\": %.3f, \"max\": %.3f, \"buckets_ms\": [%s], \
        \"cumulative_counts\": [%s]},\n"
       rh.Metrics.h_count (q rh.Metrics.h_p50) (q rh.Metrics.h_p95)
       (q rh.Metrics.h_p99) rmax
       (String.concat ", " (List.map (Printf.sprintf "%g") hist_buckets))
       (String.concat ", "
          (List.map (fun (_, c) -> string_of_int c) rh.Metrics.h_buckets)));
  Buffer.add_string buf
    (Printf.sprintf "  \"timeseries\": {\"interval_ms\": %d, \"series\": [%s]},\n"
       (Timeseries.interval_ms o.timeseries)
       (String.concat ", "
          (List.filter_map
             (fun name ->
               match Timeseries.points o.timeseries name with
               | [] -> None
               | pts ->
                 Some
                   (Printf.sprintf "{\"name\": \"%s\", \"points\": [%s]}"
                      (Metrics.json_escape name)
                      (String.concat ", "
                         (List.map
                            (fun (t, v) -> Printf.sprintf "[%d, %.6g]" t v)
                            pts))))
             embedded_series)));
  Buffer.add_string buf
    (Printf.sprintf "  \"violations\": [%s],\n"
       (String.concat ", "
          (List.map
             (fun v -> "\"" ^ Metrics.json_escape v ^ "\"")
             o.violations)));
  Buffer.add_string buf
    (Printf.sprintf "  \"pass\": %b\n" (o.violations = []));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_outcome ppf (o : outcome) =
  Format.fprintf ppf
    "@[<v>soak: %d steps, %d applied, %d rejected, %d crash(es), %d \
     recover(ies) (%d forward / %d back)@ view chain: v%d current, %d \
     versions total@ occ: %d commits, %d retries, %d reads@ violations: %d%s@]"
    o.steps_run o.evolutions_applied o.evolutions_rejected o.crashes_injected
    o.recoveries o.rolled_forward o.rolled_back o.final_version
    o.total_versions o.occ_commits o.occ_retries o.reads
    (List.length o.violations)
    (match o.violations with
    | [] -> ""
    | vs -> "\n  " ^ String.concat "\n  " vs)
