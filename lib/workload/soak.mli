(** Chaos soak harness: seeded end-to-end crash/recovery scenarios.

    One [run] drives hundreds of view evolutions (a long version chain)
    against a {!Tse_core.Durable_tse} database while OCC writers and
    readers pinned to historical view versions run alongside. Crashes
    are injected mid-evolution — at every evolve phase failpoint and at
    both WAL record boundaries of the evolution protocol, including a
    torn begin record — and after {e every} recovery the harness
    asserts:

    - {!Tse_db.Database.check} and {!Tse_schema.Invariants.check} hold;
    - the static analyzer ({!Tse_analysis.Analysis}) reports no errors;
    - the recovered state is structurally identical
      ({!Tse_core.Verify.db_fingerprint}) to a never-crashed in-memory
      twin that executed the same logical operations;
    - the view version is exactly pre- or post-evolution, never a
      hybrid.

    Failed assertions become [violations] in the {!outcome}; an empty
    list is the pass verdict. The whole run is deterministic in
    [config.seed]. *)

type config = {
  seed : int;
  steps : int;  (** evolution attempts *)
  crashes : int;  (** target number of injected crash/recover cycles *)
  dir : string;  (** database directory (created if absent) *)
  policy : Tse_db.Durable.sync_policy option;
  classes : int;  (** base classes in the seed schema *)
  objects : int;  (** objects populated at setup *)
  writers : int;  (** OCC writer transactions per step *)
  checkpoint_every : int;  (** steps between checkpoints; 0 = never *)
  sampler : Tse_obs.Timeseries.t option;
      (** sampler ticked once per step; [Some] lets a live stats
          endpoint serve the same ring buffers the run fills, [None]
          gives the run a private one (reported either way) *)
}

val default : dir:string -> config
(** 300 steps, 30 crashes, seed 42. *)

type outcome = {
  steps_run : int;
  evolutions_applied : int;
  evolutions_rejected : int;
  crashes_injected : int;
  recoveries : int;
  rolled_forward : int;
      (** crashes recovered to the post-evolution version *)
  rolled_back : int;  (** crashes recovered to the pre-evolution version *)
  final_version : int;
  total_versions : int;
  occ_commits : int;
  occ_retries : int;
  reads : int;
  recovery_ms : float list;  (** per crash recovery, in order *)
  violations : string list;  (** empty = pass *)
  timeseries : Tse_obs.Timeseries.t;
      (** the run's sampler — ops/s, fsync and evolution rates,
          recovery-latency quantiles, one point per step *)
}

val run : config -> outcome
(** Also feeds the [soak.recovery_ms] metrics histogram. *)

val to_json : config -> outcome -> string
(** The BENCH_scenarios.json document: config, results, recovery-latency
    quantile table, embedded headline time-series, violations, pass
    verdict. *)

val pp_outcome : Format.formatter -> outcome -> unit
