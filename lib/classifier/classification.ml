module Oid = Tse_store.Oid
module Prop = Tse_schema.Prop
module Klass = Tse_schema.Klass
module Schema_graph = Tse_schema.Schema_graph
module Type_info = Tse_schema.Type_info
module Database = Tse_db.Database
module Trace = Tse_obs.Trace
module Failpoint = Tse_store.Failpoint

type cid = Klass.cid

let fp_classify = "evolve.classify"
let fp_integrate = "evolve.integrate"
let fp_reclassify = "evolve.reclassify"
let () = List.iter Failpoint.declare [ fp_classify; fp_integrate; fp_reclassify ]

let usable_props graph cid =
  Type_info.full_type graph cid
  |> List.filter_map (fun (_, e) ->
         match e with Type_info.Single p -> Some p | Type_info.Conflict _ -> None)

(* Common properties of two types: the same property (uid) in both, or two
   signature-equal definitions — the lowest common supertype (Section 3.2). *)
let common_props a_props b_props =
  List.filter
    (fun (p : Prop.t) ->
      List.exists
        (fun (q : Prop.t) -> Prop.same_prop p q || Prop.signature_equal p q)
        b_props)
    a_props

let intended_type db derivation =
  let graph = Database.graph db in
  let ft = usable_props graph in
  match derivation with
  | Klass.Select (src, _) -> ft src
  | Klass.Hide (names, src) ->
    List.filter (fun (p : Prop.t) -> not (List.mem p.name names)) (ft src)
  | Klass.Refine (props, src) -> ft src @ props
  | Klass.Refine_from { src; prop_name; target } -> begin
    match Type_info.find_usable graph src prop_name with
    | Some p -> ft target @ [ p ]
    | None -> ft target
  end
  | Klass.Union (a, b) -> common_props (ft a) (ft b)
  | Klass.Intersect (a, b) ->
    let fa = ft a in
    fa
    @ List.filter
        (fun (q : Prop.t) ->
          not (List.exists (fun (p : Prop.t) -> String.equal p.name q.name) fa))
        (ft b)
  | Klass.Difference (a, _) -> ft a

let find_duplicate db cid =
  let graph = Database.graph db in
  let k = Schema_graph.find_exn graph cid in
  match Klass.derivation k with
  | None -> None
  | Some d ->
    List.find_map
      (fun (other : Klass.t) ->
        if Oid.equal other.cid cid then None
        else
          match Klass.derivation other with
          | Some d' when Klass.derivation_equal d d' -> Some other.cid
          | Some _ | None -> None)
      (Schema_graph.classes graph)

(* Minimal elements of the set of common strict ancestors of [a] and [b]. *)
let minimal_common_ancestors graph a b =
  let commons =
    Oid.Set.inter (Schema_graph.ancestors graph a) (Schema_graph.ancestors graph b)
  in
  Oid.Set.filter
    (fun c ->
      not
        (Oid.Set.exists
           (fun d ->
             (not (Oid.equal c d))
             && Schema_graph.is_strict_ancestor graph ~anc:c ~desc:d)
           commons))
    commons

(* Remove direct edges around [cid] that became transitive-redundant. *)
let repair_edges graph cid =
  let k = Schema_graph.find_exn graph cid in
  let check ~sup ~sub =
    if Schema_graph.is_redundant_edge graph ~sup ~sub then
      Schema_graph.remove_edge graph ~sup ~sub
  in
  (* edges skipping over [cid]: from its supers to its subs *)
  List.iter
    (fun sup ->
      List.iter
        (fun sub ->
          let ksup = Schema_graph.find_exn graph sup in
          if List.exists (Oid.equal sub) ksup.subs then check ~sup ~sub)
        k.subs)
    k.supers

let link_by_derivation graph cid derivation intended =
  let add ~sup ~sub =
    if not (Oid.equal sup sub) then Schema_graph.add_edge graph ~sup ~sub
  in
  match derivation with
  | Klass.Select (src, _) | Klass.Difference (src, _) -> add ~sup:src ~sub:cid
  | Klass.Refine (_, src) -> add ~sup:src ~sub:cid
  | Klass.Refine_from { src; target; _ } ->
    add ~sup:target ~sub:cid;
    (* the property's provider becomes a superclass too — in the TSE
       translation the provider is the primed class, giving Figure 7's
       TA' under both TA and Student'; skip the edge when the provider is
       already an ancestor of the target *)
    if not (Schema_graph.is_ancestor_or_self graph ~anc:src ~desc:target) then
      add ~sup:src ~sub:cid
  | Klass.Intersect (a, b) ->
    add ~sup:a ~sub:cid;
    add ~sup:b ~sub:cid
  | Klass.Hide (_, src) ->
    (* the hide class slots in above its source, below the minimal
       ancestors whose whole type its own (reduced) type still covers; if
       the hidden property was inherited from everywhere, it climbs to the
       root *)
    let covered sup =
      List.for_all
        (fun (p : Prop.t) ->
          List.exists
            (fun (q : Prop.t) -> Prop.same_prop p q || Prop.signature_equal p q)
            intended)
        (usable_props graph sup)
    in
    let candidates =
      Oid.Set.filter covered (Schema_graph.ancestors graph src)
    in
    let minimal =
      Oid.Set.filter
        (fun c ->
          not
            (Oid.Set.exists
               (fun d ->
                 (not (Oid.equal c d))
                 && Schema_graph.is_strict_ancestor graph ~anc:c ~desc:d)
               candidates))
        candidates
    in
    Oid.Set.iter (fun sup -> add ~sup ~sub:cid) minimal;
    add ~sup:cid ~sub:src
  | Klass.Union (a, b) ->
    let commons = minimal_common_ancestors graph a b in
    Oid.Set.iter
      (fun s ->
        if not (Oid.equal s (Schema_graph.root graph)) then add ~sup:s ~sub:cid)
      commons;
    if not (Schema_graph.is_ancestor_or_self graph ~anc:b ~desc:a) then
      add ~sup:cid ~sub:a;
    if not (Schema_graph.is_ancestor_or_self graph ~anc:a ~desc:b) then
      add ~sup:cid ~sub:b

(* Materialize intended properties the class does not inherit at its
   position: MultiView code promotion. Shares the uid so diamond paths and
   local/inherited duplicates resolve to a single property. *)
let materialize_props graph cid intended =
  let k = Schema_graph.find_exn graph cid in
  List.iter
    (fun (p : Prop.t) ->
      let inherited =
        List.exists (Prop.same_prop p) (Type_info.inherited_candidates graph cid p.name)
      in
      let local = Klass.has_local_prop k p.name in
      if (not inherited) && not local then
        let p = if Oid.equal p.origin cid then p else Prop.promote p in
        Klass.add_local_prop k p)
    intended

let integrate db cid =
  let graph = Database.graph db in
  (* classify: decide where the class belongs (or that it already exists) *)
  let placement =
    Trace.with_span "evolve.classify" @@ fun () ->
    Failpoint.hit fp_classify;
    match find_duplicate db cid with
    | Some existing -> `Duplicate existing
    | None ->
      let k = Schema_graph.find_exn graph cid in
      let derivation =
        match Klass.derivation k with
        | Some d -> d
        | None -> invalid_arg "Classification.integrate: base class"
      in
      (* intended type computed before any linking mutates inheritance *)
      let intended = intended_type db derivation in
      link_by_derivation graph cid derivation intended;
      (* never leave the new class disconnected (Section 6.6.1's ROOT rule) *)
      if (Schema_graph.find_exn graph cid).supers = [] then
        Schema_graph.add_edge graph ~sup:(Schema_graph.root graph) ~sub:cid;
      `Placed (k, intended)
  in
  match placement with
  | `Duplicate existing ->
    Schema_graph.remove graph cid;
    Database.note_removed_class db cid;
    existing
  | `Placed (k, intended) ->
    (* integrate: promote properties and repair inheritance edges *)
    (Trace.with_span "evolve.integrate" @@ fun () ->
     Failpoint.hit fp_integrate;
     materialize_props graph cid intended;
     repair_edges graph cid;
     Database.note_new_class db cid);
    (* reclassify: populate the new class's extent from its sources *)
    (Trace.with_span "evolve.reclassify" @@ fun () ->
     Failpoint.hit fp_reclassify;
     let candidates =
       List.fold_left
         (fun acc src -> Oid.Set.union acc (Database.extent db src))
         Oid.Set.empty (Klass.sources k)
     in
     Oid.Set.iter (fun o -> Database.reclassify db o) candidates);
    cid
