(** Optimistic concurrency control for multi-user sessions.

    The paper runs on GemStone, which supplies "persistent storage,
    concurrency control, etc." (Section 5). The store's {!Tse_store.Txn}
    gives heap-level atomicity; this module adds the multi-user layer:
    GemStone-style optimistic sessions with commit-time validation.

    A session buffers its writes and records the version of every object
    it read. [commit] validates that no recorded object has since been
    committed by another session (first-committer-wins); on success the
    buffered writes are applied atomically, on conflict the session aborts
    with the conflicting objects listed.

    Object versions are maintained by listening to the database's change
    events, so direct (non-session) updates also invalidate concurrent
    readers — there is no way to sneak past validation. *)

type t
(** The concurrency manager for one database (one per database). *)

type session

type conflict = {
  objects : Tse_store.Oid.t list;  (** read by this session, since changed *)
}

val create : Tse_db.Database.t -> t
(** Registers the version-tracking listener. *)

val begin_session : t -> session

val read : session -> Tse_store.Oid.t -> string -> Tse_store.Value.t
(** Read a property through the session: records the object in the read
    set; sees the session's own buffered writes. *)

val write : session -> Tse_store.Oid.t -> string -> Tse_store.Value.t -> unit
(** Buffer a write (not visible to other sessions until commit). The
    object joins the read set (write skew is thereby excluded). *)

val commit : session -> (unit, conflict) result
(** Validate and apply. After a result is returned the session is closed;
    reusing it raises [Invalid_argument]. *)

val abort : session -> unit

val is_active : session -> bool
val reads : session -> int
val writes : session -> int

(** {2 Retrying} *)

exception Too_many_conflicts of conflict
(** The last attempt's conflict. *)

val commit_with_retry :
  ?attempts:int ->
  ?backoff:float ->
  ?jitter:Random.State.t ->
  ?durable:Tse_db.Durable.t ->
  t ->
  (session -> 'a) ->
  'a * int
(** [commit_with_retry t f] runs [f] against a fresh session and commits;
    on conflict it retries with a new session (so the body re-reads
    current state), sleeping [backoff * attempt * u] seconds — [u]
    uniform in [0.5, 1.5), capped at 50ms — between attempts. The
    jitter keeps writers that conflicted at the same instant from
    retrying in lock-step; [jitter] supplies the random state (a seeded
    process-wide default otherwise, so runs stay reproducible). Returns
    the body's result and the number of the attempt that committed
    (1 = no conflicts). An exception from [f] aborts the session and
    propagates; if [f] itself aborts the session, that counts as a
    conflict and is retried. Exhausting every attempt increments the
    [occ.retry_exhausted] counter (alongside [occ.retries], which counts
    each sleep) before raising.

    [durable] appends the validated writes to that handle's log as one
    {!Tse_db.Durable.commit} — through its sync policy, so [Group]/
    [Manual] handles amortize the commit fsync across sessions; call
    {!Tse_db.Durable.sync} when a caller needs the barrier.

    @raise Too_many_conflicts after [attempts] (default 5) conflicts.
    @raise Invalid_argument on [attempts < 1] or negative [backoff]. *)
