(** Fixed-size domain pool with chunked work-sharing.

    The parallel substrate for OID-sharded execution: a pool owns
    [size - 1] persistent worker domains (the caller's domain is the
    coordinator and always participates), and [run]/[map_chunks] split
    an index range [0, n) into contiguous chunks that workers claim
    from a shared atomic cursor.  Chunks are contiguous and ascending,
    so per-chunk results concatenated in chunk order reproduce the
    sequential ascending-OID order — determinism never depends on
    which domain ran which chunk.

    A pool of size 1 spawns no domains and executes everything inline
    on the caller's domain; with the default [TSE_DOMAINS=1] every code
    path is bit-identical to the sequential implementation. *)

type t

val create : int -> t
(** [create size] makes a pool running work on [size] domains total
    (the coordinator plus [size - 1] spawned workers).  [size] is
    clamped to [1, 64]. *)

val size : t -> int

val shutdown : t -> unit
(** Join all worker domains.  The pool must be idle.  Idempotent. *)

val run : t -> n:int -> (lo:int -> hi:int -> unit) -> unit
(** [run t ~n f] partitions [0, n) into contiguous chunks and calls
    [f ~lo ~hi] once per chunk (half-open [lo, hi)), spread across all
    domains of the pool.  Returns once every chunk has completed.  If
    any chunk raises, one of the raised exceptions is re-raised on the
    caller's domain — after all remaining chunks have still run, so
    the pool stays reusable.  [f] must not touch shared mutable state
    unless that state is domain-safe.  Not reentrant: [f] must not
    call back into the same pool. *)

val map_chunks : t -> n:int -> (lo:int -> hi:int -> 'a) -> 'a list
(** [map_chunks t ~n f] is [run] but collects each chunk's result,
    returned in ascending chunk order (ascending [lo]) regardless of
    which domain computed what. *)

val chunk_ranges : size:int -> n:int -> (int * int) list
(** The chunk decomposition [run] uses: contiguous half-open ranges
    covering [0, n) in ascending order.  Exposed for tests and for
    callers that need to pre-size per-chunk buffers. *)

val default_domains : unit -> int
(** The pool size requested by the environment: [TSE_DOMAINS], default
    1, clamped to [1, 64]. *)

val global : unit -> t
(** The process-wide pool, created on first use with
    [default_domains ()] domains. *)

val set_global_size : int -> unit
(** Replace the global pool with one of the given size (shutting the
    old one down).  Used by tests and benchmarks to sweep domain
    counts; production code sizes the pool once via [TSE_DOMAINS]. *)

val threshold : unit -> int
(** Minimum number of work items before callers should bother going
    parallel: [TSE_PAR_THRESHOLD], default 2048.  Inputs below the
    threshold take the sequential path even when the pool has many
    domains — fan-out overhead dominates on small inputs, and small
    inputs are exactly the hand-crafted corpora the corruption tests
    feed through the codecs. *)

val set_threshold : int -> unit
(** Override the parallel threshold (tests drop it to 1 to force tiny
    inputs through the parallel paths). *)
