(* Fixed-size domain pool with chunked work-sharing.

   [size - 1] persistent workers park on a condition variable; the
   coordinator publishes a job (bump of [epoch] under the mutex), all
   domains — coordinator included — pull contiguous chunks off a shared
   atomic cursor, and the domain that completes the last chunk wakes the
   coordinator.  Workers that sleep through an entire job simply join
   the newest one (or park again): completion is tracked by a per-job
   [remaining] counter, never by counting workers, so a stolen schedule
   can't deadlock.  Chunks are claimed in ascending order but may finish
   out of order; callers that need ordered results use [map_chunks],
   which writes each chunk's result into its own slot.

   A size-1 pool spawns nothing and runs the single chunk [0, n)
   inline, making the default TSE_DOMAINS=1 configuration byte-for-byte
   the sequential code path (no atomics, no extra metrics). *)

module Metrics = Tse_obs.Metrics

let m_jobs = Metrics.counter "pool.par_jobs"
let m_chunks = Metrics.counter "pool.par_chunks"

type job = {
  chunks : (int * int) array;
  cursor : int Atomic.t;  (* next chunk index to claim *)
  remaining : int Atomic.t;  (* chunks not yet completed *)
  jf : lo:int -> hi:int -> unit;
  failed : exn option Atomic.t;  (* first exception, wins by CAS *)
}

type t = {
  size : int;
  mu : Mutex.t;
  work_cond : Condition.t;  (* workers: a new epoch or stop *)
  done_cond : Condition.t;  (* coordinator: last chunk completed *)
  mutable job : job option;
  mutable epoch : int;
  mutable stop : bool;
  mutable busy : bool;  (* reentrancy guard, coordinator-only *)
  mutable workers : unit Domain.t array;
}

let clamp_size n = if n < 1 then 1 else if n > 64 then 64 else n

let chunk_ranges ~size ~n =
  if n <= 0 then []
  else begin
    let pieces = if size <= 1 then 1 else min n (size * 4) in
    let base = n / pieces and rem = n mod pieces in
    let ranges = ref [] and lo = ref 0 in
    for i = 0 to pieces - 1 do
      let len = base + if i < rem then 1 else 0 in
      ranges := (!lo, !lo + len) :: !ranges;
      lo := !lo + len
    done;
    List.rev !ranges
  end

let run_chunks t j =
  let nchunks = Array.length j.chunks in
  let rec loop () =
    let i = Atomic.fetch_and_add j.cursor 1 in
    if i < nchunks then begin
      let lo, hi = j.chunks.(i) in
      (try j.jf ~lo ~hi
       with e -> ignore (Atomic.compare_and_set j.failed None (Some e)));
      if Atomic.fetch_and_add j.remaining (-1) = 1 then begin
        (* Last chunk: wake the coordinator.  Lock/unlock pairs with the
           coordinator's wait loop so the signal can't be lost. *)
        Mutex.lock t.mu;
        Condition.broadcast t.done_cond;
        Mutex.unlock t.mu
      end;
      loop ()
    end
  in
  loop ()

let worker t () =
  let last_epoch = ref 0 in
  let rec loop () =
    Mutex.lock t.mu;
    while (not t.stop) && t.epoch = !last_epoch do
      Condition.wait t.work_cond t.mu
    done;
    if t.stop then Mutex.unlock t.mu
    else begin
      last_epoch := t.epoch;
      let j = t.job in
      Mutex.unlock t.mu;
      (match j with Some j -> run_chunks t j | None -> ());
      loop ()
    end
  in
  loop ()

let create size =
  let size = clamp_size size in
  let t =
    {
      size;
      mu = Mutex.create ();
      work_cond = Condition.create ();
      done_cond = Condition.create ();
      job = None;
      epoch = 0;
      stop = false;
      busy = false;
      workers = [||];
    }
  in
  if size > 1 then
    t.workers <- Array.init (size - 1) (fun _ -> Domain.spawn (worker t));
  t

let size t = t.size

let shutdown t =
  if Array.length t.workers > 0 then begin
    Mutex.lock t.mu;
    t.stop <- true;
    Condition.broadcast t.work_cond;
    Mutex.unlock t.mu;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

let run t ~n f =
  match chunk_ranges ~size:t.size ~n with
  | [] -> ()
  | [ (lo, hi) ] -> f ~lo ~hi
  | ranges ->
    if t.busy then
      invalid_arg "Pool.run: reentrant use of a pool from inside its own job";
    t.busy <- true;
    let chunks = Array.of_list ranges in
    let j =
      {
        chunks;
        cursor = Atomic.make 0;
        remaining = Atomic.make (Array.length chunks);
        jf = f;
        failed = Atomic.make None;
      }
    in
    Metrics.incr m_jobs;
    Metrics.add m_chunks (Array.length chunks);
    Mutex.lock t.mu;
    t.job <- Some j;
    t.epoch <- t.epoch + 1;
    Condition.broadcast t.work_cond;
    Mutex.unlock t.mu;
    (* The coordinator works too. *)
    run_chunks t j;
    Mutex.lock t.mu;
    while Atomic.get j.remaining > 0 do
      Condition.wait t.done_cond t.mu
    done;
    t.job <- None;
    Mutex.unlock t.mu;
    t.busy <- false;
    (match Atomic.get j.failed with Some e -> raise e | None -> ())

let map_chunks t ~n f =
  let ranges = Array.of_list (chunk_ranges ~size:t.size ~n) in
  let out = Array.make (Array.length ranges) None in
  let idx_of = Hashtbl.create (Array.length ranges) in
  Array.iteri (fun i (lo, _) -> Hashtbl.replace idx_of lo i) ranges;
  run t ~n (fun ~lo ~hi ->
      out.(Hashtbl.find idx_of lo) <- Some (f ~lo ~hi));
  Array.to_list out |> List.map Option.get

(* ---- global pool + tuning knobs ------------------------------------- *)

let env_int name ~default =
  match Sys.getenv_opt name with
  | Some s -> (match int_of_string_opt (String.trim s) with Some n -> n | None -> default)
  | None -> default

let default_domains () = clamp_size (env_int "TSE_DOMAINS" ~default:1)

let g_pool : t option ref = ref None
let g_gauge = Metrics.gauge "pool.domains"

let global () =
  match !g_pool with
  | Some t -> t
  | None ->
    let t = create (default_domains ()) in
    Metrics.set_gauge g_gauge (float_of_int t.size);
    g_pool := Some t;
    t

let set_global_size n =
  (match !g_pool with Some t -> shutdown t | None -> ());
  let t = create (clamp_size n) in
  Metrics.set_gauge g_gauge (float_of_int t.size);
  g_pool := Some t

let g_threshold = ref (max 1 (env_int "TSE_PAR_THRESHOLD" ~default:2048))
let threshold () = !g_threshold
let set_threshold n = g_threshold := max 1 n
