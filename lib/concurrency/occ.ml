module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Database = Tse_db.Database
module Metrics = Tse_obs.Metrics

let m_sessions = Metrics.counter "occ.sessions"
let m_commits = Metrics.counter "occ.commits"
let m_conflicts = Metrics.counter "occ.conflicts"
let m_aborts = Metrics.counter "occ.aborts"
let m_retries = Metrics.counter "occ.retries"

type t = {
  db : Database.t;
  versions : int Oid.Tbl.t;  (* bumped on every committed change *)
}

type session = {
  mgr : t;
  read_set : int Oid.Tbl.t;  (* object -> version when first read *)
  (* buffered writes, newest last *)
  mutable write_log : (Oid.t * string * Value.t) list;
  mutable active : bool;
}

type conflict = { objects : Oid.t list }

let version t o = Option.value (Oid.Tbl.find_opt t.versions o) ~default:0

let bump t o = Oid.Tbl.replace t.versions o (version t o + 1)

let create db =
  let t = { db; versions = Oid.Tbl.create 256 } in
  Database.add_listener db (fun event ->
      match event with
      | Database.Object_created o
      | Database.Object_destroyed o
      | Database.Attr_set (o, _, _)
      | Database.Bases_changed o ->
        bump t o
      | Database.Reclassified _ | Database.Membership_delta _ ->
        (* membership recomputation follows an attribute change that
           already bumped; reclassification alone does not invalidate *)
        ());
  t

let begin_session mgr =
  Metrics.incr m_sessions;
  { mgr; read_set = Oid.Tbl.create 16; write_log = []; active = true }

let check_active s what =
  if not s.active then
    invalid_arg (Printf.sprintf "Occ.%s: session already finished" what)

let track_read s o =
  if not (Oid.Tbl.mem s.read_set o) then
    Oid.Tbl.replace s.read_set o (version s.mgr o)

let read s o name =
  check_active s "read";
  track_read s o;
  (* the session sees its own buffered writes *)
  let own =
    List.fold_left
      (fun acc (o', n, v) -> if Oid.equal o o' && String.equal n name then Some v else acc)
      None s.write_log
  in
  match own with Some v -> v | None -> Database.get_prop s.mgr.db o name

let write s o name v =
  check_active s "write";
  track_read s o;
  s.write_log <- s.write_log @ [ (o, name, v) ]

let validate s =
  Oid.Tbl.fold
    (fun o seen acc -> if version s.mgr o <> seen then o :: acc else acc)
    s.read_set []

let commit s =
  check_active s "commit";
  s.active <- false;
  match validate s with
  | [] ->
    (* apply buffered writes; each bumps versions via the listener, which
       is what makes this commit visible to concurrent validators *)
    List.iter (fun (o, name, v) -> Database.set_attr s.mgr.db o name v) s.write_log;
    Metrics.incr m_commits;
    Ok ()
  | objects ->
    Metrics.incr m_conflicts;
    Error { objects = List.sort_uniq Oid.compare objects }

let abort s =
  Metrics.incr m_aborts;
  s.active <- false
let is_active s = s.active
let reads s = Oid.Tbl.length s.read_set
let writes s = List.length s.write_log

exception Too_many_conflicts of conflict

let m_retry_exhausted = Metrics.counter "occ.retry_exhausted"

(* Process-wide default jitter source: seeded, so retry schedules are
   reproducible run to run, yet uncorrelated between the retrying
   sessions of one run. *)
let default_jitter = lazy (Random.State.make [| 0x0cc; 0x7e57ed |])

(* Run [f] against fresh sessions until one commits, sleeping between
   attempts with bounded, jittered linear backoff. Each retry re-reads
   through a new session, so the body observes the state the conflicting
   commit left. With [?durable] the winning validation is also appended
   to the durable log as one batch — under that handle's sync policy, so
   a grouped or manual policy amortizes the fsync across many retrying
   writers. *)
let commit_with_retry ?(attempts = 5) ?(backoff = 0.001) ?jitter ?durable t f =
  if attempts < 1 then invalid_arg "Occ.commit_with_retry: attempts < 1";
  if backoff < 0. then invalid_arg "Occ.commit_with_retry: negative backoff";
  let max_backoff = 0.05 in
  let rng = match jitter with Some r -> r | None -> Lazy.force default_jitter in
  let rec go attempt =
    let s = begin_session t in
    let result =
      match f s with
      | v -> if is_active s then commit s |> Result.map (fun () -> v)
             else Error { objects = [] }  (* body aborted the session *)
      | exception e ->
        if is_active s then abort s;
        raise e
    in
    match result with
    | Ok v ->
      Option.iter Tse_db.Durable.commit durable;
      (v, attempt)
    | Error conflict ->
      if attempt >= attempts then begin
        Metrics.incr m_retry_exhausted;
        raise (Too_many_conflicts conflict)
      end
      else begin
        Metrics.incr m_retries;
        (* multiply by a factor in [0.5, 1.5) so retry storms from
           writers that conflicted at the same instant de-synchronize
           instead of colliding again in lock-step *)
        let factor = 0.5 +. Random.State.float rng 1.0 in
        let delay =
          Float.min max_backoff (backoff *. float_of_int attempt *. factor)
        in
        if delay > 0. then Unix.sleepf delay;
        go (attempt + 1)
      end
  in
  go 1
