module Oid = Tse_store.Oid
module Prop = Tse_schema.Prop
module Expr = Tse_schema.Expr
module Klass = Tse_schema.Klass
module Schema_graph = Tse_schema.Schema_graph
module Type_info = Tse_schema.Type_info
module Database = Tse_db.Database
module Classification = Tse_classifier.Classification

type cid = Klass.cid

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let check_src db src =
  if not (Schema_graph.mem (Database.graph db) src) then
    error "unknown source class %s" (Oid.to_string src)

let check_name db name =
  match Schema_graph.find_by_name (Database.graph db) name with
  | Some _ -> error "class name %s already in use" name
  | None -> ()

let fp_derive = "evolve.derive"
let () = Tse_store.Failpoint.declare fp_derive

let register db ~name derivation props =
  check_name db name;
  let cid =
    Tse_obs.Trace.with_span ~attrs:[ ("class", name) ] "evolve.derive"
    @@ fun () ->
    Tse_store.Failpoint.hit fp_derive;
    Schema_graph.register_virtual (Database.graph db) ~name derivation props
  in
  Classification.integrate db cid

let select db ~name ~src pred =
  check_src db src;
  let graph = Database.graph db in
  List.iter
    (fun attr ->
      if not (Type_info.has_prop graph src attr) then
        error "select predicate reads %s, undefined for %s" attr
          (Schema_graph.name_of graph src))
    (Expr.free_attrs pred);
  List.iter
    (fun cname ->
      if Schema_graph.find_by_name graph cname = None then
        error "select predicate references unknown class %s" cname)
    (Expr.referenced_classes pred);
  register db ~name (Klass.Select (src, pred)) []

let hide db ~name ~props ~src =
  check_src db src;
  if props = [] then error "hide: empty property list";
  let graph = Database.graph db in
  List.iter
    (fun p ->
      if not (Type_info.has_prop graph src p) then
        error "hide: %s is not defined for %s" p (Schema_graph.name_of graph src))
    props;
  register db ~name (Klass.Hide (props, src)) []

let refine db ~name ~props ~src =
  check_src db src;
  if props = [] then error "refine: empty property list";
  let graph = Database.graph db in
  List.iter
    (fun (p : Prop.t) ->
      if Type_info.has_prop graph src p.name then
        error "refine: %s already defined for %s" p.name
          (Schema_graph.name_of graph src))
    props;
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (p : Prop.t) ->
      if Hashtbl.mem seen p.Prop.name then
        error "refine: duplicate property %s" p.Prop.name
      else Hashtbl.add seen p.Prop.name ())
    props;
  register db ~name (Klass.Refine (props, src)) props

let refine_from db ~name ~src ~prop_name ~target =
  check_src db src;
  check_src db target;
  let graph = Database.graph db in
  (match Type_info.find_usable graph src prop_name with
  | Some _ -> ()
  | None ->
    error "refine_from: %s has no usable property %s"
      (Schema_graph.name_of graph src) prop_name);
  if Type_info.has_prop graph target prop_name then
    error "refine_from: %s already defined for %s" prop_name
      (Schema_graph.name_of graph target);
  register db ~name (Klass.Refine_from { src; prop_name; target }) []

let union db ~name a b =
  check_src db a;
  check_src db b;
  register db ~name (Klass.Union (a, b)) []

let intersect db ~name a b =
  check_src db a;
  check_src db b;
  register db ~name (Klass.Intersect (a, b)) []

let difference db ~name a b =
  check_src db a;
  check_src db b;
  register db ~name (Klass.Difference (a, b)) []

let primed_name db base =
  let graph = Database.graph db in
  let rec go candidate =
    if Schema_graph.find_by_name graph candidate = None then candidate
    else go (candidate ^ "'")
  in
  go (base ^ "'")

let fresh_name db base =
  let graph = Database.graph db in
  if Schema_graph.find_by_name graph base = None then base
  else
    let rec go i =
      let candidate = Printf.sprintf "%s$%d" base i in
      if Schema_graph.find_by_name graph candidate = None then candidate
      else go (i + 1)
    in
    go 2

type query =
  | Class of string
  | Select of query * Expr.t
  | Hide of string list * query
  | Refine of Prop.t list * query
  | Union of query * query
  | Intersect of query * query
  | Difference of query * query

let define_vc db ~name query =
  let rec eval ~name query =
    let sub base q = eval ~name:(fresh_name db (name ^ "$" ^ base)) q in
    match query with
    | Class cname -> begin
      match Schema_graph.find_by_name (Database.graph db) cname with
      | Some k -> k.Klass.cid
      | None -> error "defineVC: unknown class %s" cname
    end
    | Select (q, pred) -> select db ~name ~src:(sub "src" q) pred
    | Hide (props, q) -> hide db ~name ~props ~src:(sub "src" q)
    | Refine (props, q) -> refine db ~name ~props ~src:(sub "src" q)
    | Union (a, b) -> union db ~name (sub "l" a) (sub "r" b)
    | Intersect (a, b) -> intersect db ~name (sub "l" a) (sub "r" b)
    | Difference (a, b) -> difference db ~name (sub "l" a) (sub "r" b)
  in
  eval ~name query
