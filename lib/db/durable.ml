module Oid = Tse_store.Oid
module Heap = Tse_store.Heap
module Codec = Tse_store.Codec
module Snapshot = Tse_store.Snapshot
module Storage = Tse_store.Storage
module Wal = Tse_store.Wal
module Recovery = Tse_store.Recovery
module Failpoint = Tse_store.Failpoint
module Schema_graph = Tse_schema.Schema_graph
module Schema_codec = Tse_schema.Schema_codec
module Klass = Tse_schema.Klass
module Metrics = Tse_obs.Metrics
module Trace = Tse_obs.Trace

let m_commits = Metrics.counter "durable.commits"
let m_empty_commits = Metrics.counter "durable.empty_commits"
let m_checkpoints = Metrics.counter "durable.checkpoints"
let m_opens = Metrics.counter "durable.opens"

type sync_policy = Every_commit | Group of int | Manual

type t = {
  dir : string;
  database : Database.t;
  wal : Wal.t;
  mutable seq : int;  (* last appended batch *)
  mutable pending : Heap.op list;  (* newest first *)
  dirty_bases : unit Oid.Tbl.t;
  mutable last_schema : string;  (* last durable schema image *)
  ext_last : (string, string) Hashtbl.t;  (* last durable blob per ext tag *)
  ext_staged : (string, string) Hashtbl.t;  (* staged for the next commit *)
  mutable policy : sync_policy;
  mutable unsynced : int;  (* commits appended since the last sync barrier *)
  mutable closed : bool;
}

let db t = t.database
let dir t = t.dir
let seq t = t.seq
let snapshot_path dir = Filename.concat dir "snapshot"
let wal_path dir = Filename.concat dir "wal"

let check_policy = function
  | Group n when n < 1 ->
    invalid_arg (Printf.sprintf "Durable: Group of %d: size must be >= 1" n)
  | p -> p

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "every" | "every_commit" | "everycommit" -> Every_commit
  | "manual" -> Manual
  | spec -> (
    match String.split_on_char ':' spec with
    | [ "group"; n ] -> (
      match int_of_string_opt n with
      | Some n -> check_policy (Group n)
      | None -> invalid_arg (Printf.sprintf "Durable: bad sync policy %S" s))
    | _ -> invalid_arg (Printf.sprintf "Durable: bad sync policy %S" s))

let policy_to_string = function
  | Every_commit -> "every_commit"
  | Group n -> Printf.sprintf "group:%d" n
  | Manual -> "manual"

(* mirrors DB_FULL_RECLASSIFY: the environment picks the default so CI can
   run the whole suite under a grouped policy without touching the tests *)
let env_policy () =
  match Sys.getenv_opt "TSE_SYNC_POLICY" with
  | None | Some "" -> Every_commit
  | Some s -> policy_of_string s

let () = Storage.declare_failpoints "checkpoint"

(* the two WAL record boundaries of the evolution protocol: crash before
   the intent record (nothing logged -> rollback) and crash between the
   intent and the decision marker (dangling begin -> rollback) *)
let fp_evo_begin = "evolve.log.begin"
let fp_evo_commit = "evolve.log.commit"
let () = List.iter Failpoint.declare [ fp_evo_begin; fp_evo_commit ]

(* ------------------------------------------------------------------ *)
(* Snapshot format                                                     *)
(* ------------------------------------------------------------------ *)

let encode_bases db =
  let buf = Buffer.create 256 in
  let bases =
    List.map
      (fun o -> (o, Oid.Set.elements (Database.base_membership db o)))
      (List.sort Oid.compare (Database.objects db))
  in
  Codec.add_list buf
    (fun buf (o, cids) ->
      Schema_codec.add_cid buf o;
      Codec.add_list buf Schema_codec.add_cid cids)
    bases;
  Buffer.contents buf

let decode_bases s =
  let bases, pos =
    Codec.read_list
      (fun s pos ->
        let o, pos = Schema_codec.read_cid s pos in
        let cids, pos = Codec.read_list Schema_codec.read_cid s pos in
        ((o, cids), pos))
      s 0
  in
  if pos <> String.length s then Codec.fail_at pos "trailing bases bytes";
  bases

let snapshot_string t =
  let db = t.database in
  let schema = Schema_codec.encode_graph (Database.graph db) in
  let bases = encode_bases db in
  let heap_text = Snapshot.to_string (Database.heap db) in
  let buf = Buffer.create (String.length heap_text + 256) in
  Buffer.add_string buf "TSE-DB 1\n";
  Buffer.add_string buf (Printf.sprintf "seq %d\n" t.seq);
  Buffer.add_string buf (Printf.sprintf "SCHEMA %d\n" (String.length schema));
  Buffer.add_string buf schema;
  Buffer.add_string buf (Printf.sprintf "\nBASES %d\n" (String.length bases));
  Buffer.add_string buf bases;
  (* upper-layer extension blobs (e.g. the view history), keyed by the same
     tags the log's [Ext] entries use, in a stable order *)
  Hashtbl.fold (fun tag blob acc -> (tag, blob) :: acc) t.ext_last []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.iter (fun (tag, blob) ->
         Buffer.add_string buf
           (Printf.sprintf "\nEXT %s %d\n" tag (String.length blob));
         Buffer.add_string buf blob);
  Buffer.add_string buf "\nHEAP\n";
  Buffer.add_string buf heap_text;
  Buffer.contents buf

(* [seq, schema blob, bases blob, heap text] *)
let parse_snapshot text =
  let fail what = failwith ("Durable: snapshot: " ^ what) in
  let header = "TSE-DB 1\n" in
  if String.length text < String.length header
     || String.sub text 0 (String.length header) <> header
  then fail "bad header";
  let pos = String.length header in
  let line_end pos = String.index_from text pos '\n' in
  let nl = line_end pos in
  let seq =
    match String.split_on_char ' ' (String.sub text pos (nl - pos)) with
    | [ "seq"; n ] -> ( try int_of_string n with _ -> fail "bad seq line")
    | _ -> fail "bad seq line"
  in
  let sized pos keyword =
    let nl = line_end pos in
    let len =
      match String.split_on_char ' ' (String.sub text pos (nl - pos)) with
      | [ k; n ] when String.equal k keyword -> (
        try int_of_string n with _ -> fail ("bad " ^ keyword ^ " line"))
      | _ -> fail ("bad " ^ keyword ^ " line")
    in
    if String.length text < nl + 1 + len then fail (keyword ^ " truncated");
    (String.sub text (nl + 1) len, nl + 1 + len)
  in
  let schema, pos = sized (nl + 1) "SCHEMA" in
  if pos >= String.length text || text.[pos] <> '\n' then
    fail "missing newline after SCHEMA";
  let bases, pos = sized (pos + 1) "BASES" in
  (* zero or more "\nEXT <tag> <len>\n<blob>" sections precede the heap *)
  let exts = ref [] in
  let pos = ref pos in
  let starts_with prefix =
    String.length text >= !pos + String.length prefix
    && String.sub text !pos (String.length prefix) = prefix
  in
  while starts_with "\nEXT " do
    let line_start = !pos + 1 in
    let nl = line_end line_start in
    (match
       String.split_on_char ' ' (String.sub text line_start (nl - line_start))
     with
    | [ "EXT"; tag; n ] ->
      let len = try int_of_string n with _ -> fail "bad EXT line" in
      if String.length text < nl + 1 + len then fail "EXT truncated";
      exts := (tag, String.sub text (nl + 1) len) :: !exts;
      pos := nl + 1 + len
    | _ -> fail "bad EXT line")
  done;
  let pos = !pos in
  let heap_marker = "\nHEAP\n" in
  if
    String.length text < pos + String.length heap_marker
    || String.sub text pos (String.length heap_marker) <> heap_marker
  then fail "missing HEAP section";
  let heap_text =
    String.sub text
      (pos + String.length heap_marker)
      (String.length text - pos - String.length heap_marker)
  in
  (seq, schema, bases, List.rev !exts, heap_text)

(* ------------------------------------------------------------------ *)
(* Open = snapshot + log replay                                        *)
(* ------------------------------------------------------------------ *)

let attach t =
  let heap = Database.heap t.database in
  Heap.set_logger heap (Some (fun op -> t.pending <- op :: t.pending));
  Database.add_listener t.database (fun event ->
      match event with
      | Database.Bases_changed o | Database.Object_destroyed o ->
        Oid.Tbl.replace t.dirty_bases o ()
      | Database.Object_created _ | Database.Attr_set _
      | Database.Reclassified _ | Database.Membership_delta _ ->
        (* already captured as physical heap ops *)
        ())

let open_dir ?policy ~dir () =
  Metrics.incr m_opens;
  Trace.with_span ~attrs:[ ("dir", dir) ] "durable.open" @@ fun () ->
  let policy =
    match policy with
    | Some p -> check_policy p
    | None -> env_policy ()
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let snap_file = snapshot_path dir in
  let snap_seq, snap_schema, snap_bases, snap_exts, heap =
    if Sys.file_exists snap_file then begin
      match Storage.read_file snap_file with
      | text ->
        let seq, schema, bases, exts, heap_text = parse_snapshot text in
        let heap =
          try Snapshot.of_string heap_text
          with Failure msg -> failwith ("Durable: snapshot: " ^ msg)
        in
        (seq, Some schema, decode_bases bases, exts, heap)
      | exception Sys_error msg ->
        failwith (Printf.sprintf "Durable.open_dir %S: %s" snap_file msg)
    end
    else (0, None, [], [], Heap.create ())
  in
  (* replay the log tail: heap ops directly, extension entries into the
     latest schema image, a base-membership overlay, and an opaque
     last-blob-wins table for every other tag (upper layers interpret
     those through {!ext}) *)
  let latest_schema = ref snap_schema in
  let bases_tbl = Oid.Tbl.create 64 in
  List.iter (fun (o, cids) -> Oid.Tbl.replace bases_tbl o cids) snap_bases;
  let ext_last : (string, string) Hashtbl.t = Hashtbl.create 4 in
  List.iter (fun (tag, blob) -> Hashtbl.replace ext_last tag blob) snap_exts;
  let on_ext kind blob =
    match kind with
    | "schema" -> latest_schema := Some blob
    | "bases" ->
      List.iter (fun (o, cids) -> Oid.Tbl.replace bases_tbl o cids)
        (decode_bases blob)
    | other -> Hashtbl.replace ext_last other blob
  in
  let report =
    Recovery.replay ~heap ~path:(wal_path dir) ~after:snap_seq ~on_ext
  in
  let graph =
    match !latest_schema with
    | Some blob -> (
      try Schema_codec.decode_graph ~gen:(Heap.gen heap) blob
      with Codec.Corrupt (what, pos) ->
        failwith (Printf.sprintf "Durable: schema: %s at %d" what pos))
    | None -> Schema_graph.create ~gen:(Heap.gen heap)
  in
  (* drop memberships of objects destroyed later in the log *)
  let bases =
    Oid.Tbl.fold
      (fun o cids acc -> if Heap.mem heap o then (o, cids) :: acc else acc)
      bases_tbl []
  in
  let database = Database.restore ~heap ~graph ~bases in
  List.iter
    (fun (k : Klass.t) -> Database.note_new_class database k.cid)
    (Schema_graph.classes graph);
  let seq = max snap_seq report.Recovery.last_seq in
  let t =
    {
      dir;
      database;
      wal = Wal.open_append ~path:(wal_path dir);
      seq;
      pending = [];
      dirty_bases = Oid.Tbl.create 16;
      last_schema = Schema_codec.encode_graph graph;
      ext_last;
      ext_staged = Hashtbl.create 4;
      policy;
      unsynced = 0;
      closed = false;
    }
  in
  attach t;
  (t, report)

(* ------------------------------------------------------------------ *)
(* Commit / checkpoint / close                                         *)
(* ------------------------------------------------------------------ *)

let check_open t what =
  if t.closed then invalid_arg (Printf.sprintf "Durable.%s: closed" what)

let policy t = t.policy
let unsynced_commits t = t.unsynced
let wal_stats t = Wal.stats t.wal

let sync t =
  check_open t "sync";
  Wal.sync t.wal;
  t.unsynced <- 0

let set_policy t p =
  check_open t "set_policy";
  let p = check_policy p in
  (* a policy switch is a barrier: nothing committed under the old policy
     stays exposed to the new one's weaker (or different) cadence *)
  sync t;
  t.policy <- p

let stage_ext t ~tag blob =
  check_open t "stage_ext";
  (match tag with
  | "schema" | "bases" ->
    invalid_arg (Printf.sprintf "Durable.stage_ext: reserved tag %s" tag)
  | _ -> ());
  if String.contains tag ' ' || String.contains tag '\n' then
    invalid_arg (Printf.sprintf "Durable.stage_ext: bad tag %S" tag);
  Hashtbl.replace t.ext_staged tag blob

let ext t tag =
  match Hashtbl.find_opt t.ext_staged tag with
  | Some blob -> Some blob
  | None -> Hashtbl.find_opt t.ext_last tag

let commit_extra t ~extra =
  check_open t "commit";
  Trace.with_span "durable.commit" @@ fun () ->
  let db = t.database in
  let ops = List.rev_map (fun op -> Wal.Op op) t.pending in
  let bases_entry =
    if Oid.Tbl.length t.dirty_bases = 0 then []
    else begin
      let buf = Buffer.create 64 in
      let dirty =
        Oid.Tbl.fold (fun o () acc -> o :: acc) t.dirty_bases []
        |> List.sort Oid.compare
      in
      Codec.add_list buf
        (fun buf o ->
          Schema_codec.add_cid buf o;
          let cids =
            if Database.mem_object db o then
              Oid.Set.elements (Database.base_membership db o)
            else []
          in
          Codec.add_list buf Schema_codec.add_cid cids)
        dirty;
      [ Wal.Ext ("bases", Buffer.contents buf) ]
    end
  in
  let schema = Schema_codec.encode_graph (Database.graph db) in
  let schema_entry =
    if String.equal schema t.last_schema then []
    else [ Wal.Ext ("schema", schema) ]
  in
  let ext_entries =
    Hashtbl.fold
      (fun tag blob acc ->
        if Hashtbl.find_opt t.ext_last tag = Some blob then acc
        else (tag, blob) :: acc)
      t.ext_staged []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (tag, blob) -> Wal.Ext (tag, blob))
  in
  if ops = [] && bases_entry = [] && schema_entry = [] && ext_entries = []
     && extra = []
  then begin
    (* anything staged was byte-identical to the durable image *)
    Hashtbl.reset t.ext_staged;
    Metrics.incr m_empty_commits
  end
  else begin
    Metrics.incr m_commits;
    let gen_entry = [ Wal.Gen (Oid.Gen.peek (Heap.gen (Database.heap db))) ] in
    let entries = ops @ gen_entry @ bases_entry @ schema_entry @ ext_entries
                  @ extra in
    let seq = t.seq + 1 in
    (match t.policy with
    | Every_commit -> Wal.append t.wal ~seq entries
    | Group _ | Manual ->
      Wal.append_nosync t.wal ~seq entries;
      t.unsynced <- t.unsynced + 1);
    (* the batch is appended (durable now, or framed for the next sync
       barrier): advance the in-memory image *)
    t.seq <- seq;
    t.pending <- [];
    Oid.Tbl.reset t.dirty_bases;
    t.last_schema <- schema;
    List.iter
      (function
        | Wal.Ext (tag, blob) -> Hashtbl.replace t.ext_last tag blob
        | _ -> ())
      ext_entries;
    Hashtbl.reset t.ext_staged;
    match t.policy with
    | Group n when t.unsynced >= n -> sync t
    | Every_commit | Group _ | Manual -> ()
  end

let commit t = commit_extra t ~extra:[]

(* ------------------------------------------------------------------ *)
(* Evolution protocol records                                          *)
(* ------------------------------------------------------------------ *)

(* The two-record unit is always eagerly fsynced whatever the sync
   policy: the begin (intent) must be durable before the commit marker,
   and the marker before any in-memory application starts — otherwise a
   crash could leave applied effects whose decision record was lost.
   [Wal.append] flushes any buffered group first, so log order is kept. *)

let append_forced t entries =
  let seq = t.seq + 1 in
  Wal.append t.wal ~seq entries;
  t.seq <- seq;
  t.unsynced <- 0;
  seq

let log_evolve_begin t ~view payload =
  check_open t "log_evolve_begin";
  commit t;
  (* the record's eid is its own batch sequence number *)
  Failpoint.hit fp_evo_begin;
  let seq = t.seq + 1 in
  ignore (append_forced t [ Wal.Evo_begin { eid = seq; view; payload } ]);
  Metrics.incr (Metrics.counter "durable.evo_begins");
  seq

let log_evolve_commit t ~eid ~view =
  check_open t "log_evolve_commit";
  Failpoint.hit fp_evo_commit;
  ignore (append_forced t [ Wal.Evo_commit { eid; view } ]);
  Metrics.incr (Metrics.counter "durable.evo_commits")

let commit_evolve_done t ~eid =
  check_open t "commit_evolve_done";
  commit_extra t ~extra:[ Wal.Evo_done { eid; ok = true } ];
  Metrics.incr (Metrics.counter "durable.evo_applied")

let log_evolve_abort t ~eid =
  check_open t "log_evolve_abort";
  (* called on a handle whose in-memory state is poisoned by a failed
     roll-forward: durably neutralize the committed intent WITHOUT
     folding any of the poisoned pending state into the log *)
  t.pending <- [];
  Oid.Tbl.reset t.dirty_bases;
  Hashtbl.reset t.ext_staged;
  ignore (append_forced t [ Wal.Evo_done { eid; ok = false } ]);
  Metrics.incr (Metrics.counter "durable.evo_aborted")

let checkpoint t =
  check_open t "checkpoint";
  Metrics.incr m_checkpoints;
  Trace.with_span "durable.checkpoint" @@ fun () ->
  commit t;
  (* the snapshot folds the whole in-memory image, so everything framed
     must be on disk first: a checkpoint is always a sync barrier *)
  sync t;
  Storage.write_atomic ~fp:"checkpoint" ~path:(snapshot_path t.dir)
    (snapshot_string t);
  (* a crash before this reset is benign: replay skips seq <= snapshot's *)
  Wal.reset t.wal

let close t =
  check_open t "close";
  commit t;
  sync t;
  t.closed <- true;
  Heap.set_logger (Database.heap t.database) None;
  Wal.close t.wal

let abandon t =
  if not t.closed then begin
    t.closed <- true;
    Heap.set_logger (Database.heap t.database) None;
    Wal.abandon t.wal
  end
