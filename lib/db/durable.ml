module Oid = Tse_store.Oid
module Heap = Tse_store.Heap
module Codec = Tse_store.Codec
module Snapshot = Tse_store.Snapshot
module Storage = Tse_store.Storage
module Wal = Tse_store.Wal
module Recovery = Tse_store.Recovery
module Schema_graph = Tse_schema.Schema_graph
module Schema_codec = Tse_schema.Schema_codec
module Klass = Tse_schema.Klass
module Metrics = Tse_obs.Metrics
module Trace = Tse_obs.Trace

let m_commits = Metrics.counter "durable.commits"
let m_empty_commits = Metrics.counter "durable.empty_commits"
let m_checkpoints = Metrics.counter "durable.checkpoints"
let m_opens = Metrics.counter "durable.opens"

type sync_policy = Every_commit | Group of int | Manual

type t = {
  dir : string;
  database : Database.t;
  wal : Wal.t;
  mutable seq : int;  (* last appended batch *)
  mutable pending : Heap.op list;  (* newest first *)
  dirty_bases : unit Oid.Tbl.t;
  mutable last_schema : string;  (* last durable schema image *)
  mutable policy : sync_policy;
  mutable unsynced : int;  (* commits appended since the last sync barrier *)
  mutable closed : bool;
}

let db t = t.database
let dir t = t.dir
let seq t = t.seq
let snapshot_path dir = Filename.concat dir "snapshot"
let wal_path dir = Filename.concat dir "wal"

let check_policy = function
  | Group n when n < 1 ->
    invalid_arg (Printf.sprintf "Durable: Group of %d: size must be >= 1" n)
  | p -> p

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "every" | "every_commit" | "everycommit" -> Every_commit
  | "manual" -> Manual
  | spec -> (
    match String.split_on_char ':' spec with
    | [ "group"; n ] -> (
      match int_of_string_opt n with
      | Some n -> check_policy (Group n)
      | None -> invalid_arg (Printf.sprintf "Durable: bad sync policy %S" s))
    | _ -> invalid_arg (Printf.sprintf "Durable: bad sync policy %S" s))

let policy_to_string = function
  | Every_commit -> "every_commit"
  | Group n -> Printf.sprintf "group:%d" n
  | Manual -> "manual"

(* mirrors DB_FULL_RECLASSIFY: the environment picks the default so CI can
   run the whole suite under a grouped policy without touching the tests *)
let env_policy () =
  match Sys.getenv_opt "TSE_SYNC_POLICY" with
  | None | Some "" -> Every_commit
  | Some s -> policy_of_string s

let () = Storage.declare_failpoints "checkpoint"

(* ------------------------------------------------------------------ *)
(* Snapshot format                                                     *)
(* ------------------------------------------------------------------ *)

let encode_bases db =
  let buf = Buffer.create 256 in
  let bases =
    List.map
      (fun o -> (o, Oid.Set.elements (Database.base_membership db o)))
      (List.sort Oid.compare (Database.objects db))
  in
  Codec.add_list buf
    (fun buf (o, cids) ->
      Schema_codec.add_cid buf o;
      Codec.add_list buf Schema_codec.add_cid cids)
    bases;
  Buffer.contents buf

let decode_bases s =
  let bases, pos =
    Codec.read_list
      (fun s pos ->
        let o, pos = Schema_codec.read_cid s pos in
        let cids, pos = Codec.read_list Schema_codec.read_cid s pos in
        ((o, cids), pos))
      s 0
  in
  if pos <> String.length s then Codec.fail_at pos "trailing bases bytes";
  bases

let snapshot_string t =
  let db = t.database in
  let schema = Schema_codec.encode_graph (Database.graph db) in
  let bases = encode_bases db in
  let heap_text = Snapshot.to_string (Database.heap db) in
  let buf = Buffer.create (String.length heap_text + 256) in
  Buffer.add_string buf "TSE-DB 1\n";
  Buffer.add_string buf (Printf.sprintf "seq %d\n" t.seq);
  Buffer.add_string buf (Printf.sprintf "SCHEMA %d\n" (String.length schema));
  Buffer.add_string buf schema;
  Buffer.add_string buf (Printf.sprintf "\nBASES %d\n" (String.length bases));
  Buffer.add_string buf bases;
  Buffer.add_string buf "\nHEAP\n";
  Buffer.add_string buf heap_text;
  Buffer.contents buf

(* [seq, schema blob, bases blob, heap text] *)
let parse_snapshot text =
  let fail what = failwith ("Durable: snapshot: " ^ what) in
  let header = "TSE-DB 1\n" in
  if String.length text < String.length header
     || String.sub text 0 (String.length header) <> header
  then fail "bad header";
  let pos = String.length header in
  let line_end pos = String.index_from text pos '\n' in
  let nl = line_end pos in
  let seq =
    match String.split_on_char ' ' (String.sub text pos (nl - pos)) with
    | [ "seq"; n ] -> ( try int_of_string n with _ -> fail "bad seq line")
    | _ -> fail "bad seq line"
  in
  let sized pos keyword =
    let nl = line_end pos in
    let len =
      match String.split_on_char ' ' (String.sub text pos (nl - pos)) with
      | [ k; n ] when String.equal k keyword -> (
        try int_of_string n with _ -> fail ("bad " ^ keyword ^ " line"))
      | _ -> fail ("bad " ^ keyword ^ " line")
    in
    if String.length text < nl + 1 + len then fail (keyword ^ " truncated");
    (String.sub text (nl + 1) len, nl + 1 + len)
  in
  let schema, pos = sized (nl + 1) "SCHEMA" in
  if pos >= String.length text || text.[pos] <> '\n' then
    fail "missing newline after SCHEMA";
  let bases, pos = sized (pos + 1) "BASES" in
  let heap_marker = "\nHEAP\n" in
  if
    String.length text < pos + String.length heap_marker
    || String.sub text pos (String.length heap_marker) <> heap_marker
  then fail "missing HEAP section";
  let heap_text =
    String.sub text
      (pos + String.length heap_marker)
      (String.length text - pos - String.length heap_marker)
  in
  (seq, schema, bases, heap_text)

(* ------------------------------------------------------------------ *)
(* Open = snapshot + log replay                                        *)
(* ------------------------------------------------------------------ *)

let attach t =
  let heap = Database.heap t.database in
  Heap.set_logger heap (Some (fun op -> t.pending <- op :: t.pending));
  Database.add_listener t.database (fun event ->
      match event with
      | Database.Bases_changed o | Database.Object_destroyed o ->
        Oid.Tbl.replace t.dirty_bases o ()
      | Database.Object_created _ | Database.Attr_set _
      | Database.Reclassified _ | Database.Membership_delta _ ->
        (* already captured as physical heap ops *)
        ())

let open_dir ?policy ~dir () =
  Metrics.incr m_opens;
  Trace.with_span ~attrs:[ ("dir", dir) ] "durable.open" @@ fun () ->
  let policy =
    match policy with
    | Some p -> check_policy p
    | None -> env_policy ()
  in
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let snap_file = snapshot_path dir in
  let snap_seq, snap_schema, snap_bases, heap =
    if Sys.file_exists snap_file then begin
      match Storage.read_file snap_file with
      | text ->
        let seq, schema, bases, heap_text = parse_snapshot text in
        let heap =
          try Snapshot.of_string heap_text
          with Failure msg -> failwith ("Durable: snapshot: " ^ msg)
        in
        (seq, Some schema, decode_bases bases, heap)
      | exception Sys_error msg ->
        failwith (Printf.sprintf "Durable.open_dir %S: %s" snap_file msg)
    end
    else (0, None, [], Heap.create ())
  in
  (* replay the log tail: heap ops directly, extension entries into the
     latest schema image and a base-membership overlay *)
  let latest_schema = ref snap_schema in
  let bases_tbl = Oid.Tbl.create 64 in
  List.iter (fun (o, cids) -> Oid.Tbl.replace bases_tbl o cids) snap_bases;
  let on_ext kind blob =
    match kind with
    | "schema" -> latest_schema := Some blob
    | "bases" ->
      List.iter (fun (o, cids) -> Oid.Tbl.replace bases_tbl o cids)
        (decode_bases blob)
    | other -> failwith ("Durable: unknown log extension " ^ other)
  in
  let report =
    Recovery.replay ~heap ~path:(wal_path dir) ~after:snap_seq ~on_ext
  in
  let graph =
    match !latest_schema with
    | Some blob -> (
      try Schema_codec.decode_graph ~gen:(Heap.gen heap) blob
      with Codec.Corrupt (what, pos) ->
        failwith (Printf.sprintf "Durable: schema: %s at %d" what pos))
    | None -> Schema_graph.create ~gen:(Heap.gen heap)
  in
  (* drop memberships of objects destroyed later in the log *)
  let bases =
    Oid.Tbl.fold
      (fun o cids acc -> if Heap.mem heap o then (o, cids) :: acc else acc)
      bases_tbl []
  in
  let database = Database.restore ~heap ~graph ~bases in
  List.iter
    (fun (k : Klass.t) -> Database.note_new_class database k.cid)
    (Schema_graph.classes graph);
  let seq = max snap_seq report.Recovery.last_seq in
  let t =
    {
      dir;
      database;
      wal = Wal.open_append ~path:(wal_path dir);
      seq;
      pending = [];
      dirty_bases = Oid.Tbl.create 16;
      last_schema = Schema_codec.encode_graph graph;
      policy;
      unsynced = 0;
      closed = false;
    }
  in
  attach t;
  (t, report)

(* ------------------------------------------------------------------ *)
(* Commit / checkpoint / close                                         *)
(* ------------------------------------------------------------------ *)

let check_open t what =
  if t.closed then invalid_arg (Printf.sprintf "Durable.%s: closed" what)

let policy t = t.policy
let unsynced_commits t = t.unsynced
let wal_stats t = Wal.stats t.wal

let sync t =
  check_open t "sync";
  Wal.sync t.wal;
  t.unsynced <- 0

let set_policy t p =
  check_open t "set_policy";
  let p = check_policy p in
  (* a policy switch is a barrier: nothing committed under the old policy
     stays exposed to the new one's weaker (or different) cadence *)
  sync t;
  t.policy <- p

let commit t =
  check_open t "commit";
  Trace.with_span "durable.commit" @@ fun () ->
  let db = t.database in
  let ops = List.rev_map (fun op -> Wal.Op op) t.pending in
  let bases_entry =
    if Oid.Tbl.length t.dirty_bases = 0 then []
    else begin
      let buf = Buffer.create 64 in
      let dirty =
        Oid.Tbl.fold (fun o () acc -> o :: acc) t.dirty_bases []
        |> List.sort Oid.compare
      in
      Codec.add_list buf
        (fun buf o ->
          Schema_codec.add_cid buf o;
          let cids =
            if Database.mem_object db o then
              Oid.Set.elements (Database.base_membership db o)
            else []
          in
          Codec.add_list buf Schema_codec.add_cid cids)
        dirty;
      [ Wal.Ext ("bases", Buffer.contents buf) ]
    end
  in
  let schema = Schema_codec.encode_graph (Database.graph db) in
  let schema_entry =
    if String.equal schema t.last_schema then []
    else [ Wal.Ext ("schema", schema) ]
  in
  if ops = [] && bases_entry = [] && schema_entry = [] then
    Metrics.incr m_empty_commits
  else begin
    Metrics.incr m_commits;
    let gen_entry = [ Wal.Gen (Oid.Gen.peek (Heap.gen (Database.heap db))) ] in
    let entries = ops @ gen_entry @ bases_entry @ schema_entry in
    let seq = t.seq + 1 in
    (match t.policy with
    | Every_commit -> Wal.append t.wal ~seq entries
    | Group _ | Manual ->
      Wal.append_nosync t.wal ~seq entries;
      t.unsynced <- t.unsynced + 1);
    (* the batch is appended (durable now, or framed for the next sync
       barrier): advance the in-memory image *)
    t.seq <- seq;
    t.pending <- [];
    Oid.Tbl.reset t.dirty_bases;
    t.last_schema <- schema;
    match t.policy with
    | Group n when t.unsynced >= n -> sync t
    | Every_commit | Group _ | Manual -> ()
  end

let checkpoint t =
  check_open t "checkpoint";
  Metrics.incr m_checkpoints;
  Trace.with_span "durable.checkpoint" @@ fun () ->
  commit t;
  (* the snapshot folds the whole in-memory image, so everything framed
     must be on disk first: a checkpoint is always a sync barrier *)
  sync t;
  Storage.write_atomic ~fp:"checkpoint" ~path:(snapshot_path t.dir)
    (snapshot_string t);
  (* a crash before this reset is benign: replay skips seq <= snapshot's *)
  Wal.reset t.wal

let close t =
  check_open t "close";
  commit t;
  sync t;
  t.closed <- true;
  Heap.set_logger (Database.heap t.database) None;
  Wal.close t.wal
