module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Heap = Tse_store.Heap
module Stats = Tse_store.Stats
module Schema_graph = Tse_schema.Schema_graph
module Klass = Tse_schema.Klass
module Prop = Tse_schema.Prop
module Type_info = Tse_schema.Type_info
module Expr = Tse_schema.Expr
module Invariants = Tse_schema.Invariants
module Slicing = Tse_objmodel.Slicing

type cid = Klass.cid

type t = {
  heap : Heap.t;
  graph : Schema_graph.t;
  model : Slicing.t;
  stats : Stats.t;
  extents : Oid.Set.t ref Oid.Tbl.t;
  base_member : Oid.Set.t ref Oid.Tbl.t;  (* object -> base classes *)
  mutable deriv_order : cid list option;  (* cache *)
  mutable listeners : (event -> unit) list;
}

and event =
  | Object_created of Oid.t
  | Object_destroyed of Oid.t
  | Attr_set of Oid.t * string * Value.t
  | Reclassified of Oid.t
  | Bases_changed of Oid.t

let create () =
  let heap = Heap.create () in
  let graph = Schema_graph.create ~gen:(Heap.gen heap) in
  let stats = Stats.create () in
  let model = Slicing.create ~graph ~heap ~stats in
  {
    heap;
    graph;
    model;
    stats;
    extents = Oid.Tbl.create 64;
    base_member = Oid.Tbl.create 256;
    deriv_order = None;
    listeners = [];
  }

let add_listener t f = t.listeners <- t.listeners @ [ f ]
let notify t event = List.iter (fun f -> f event) t.listeners

let graph t = t.graph
let heap t = t.heap
let model t = t.model
let stats t = t.stats
let root t = Schema_graph.root t.graph

let extent_ref t cid =
  match Oid.Tbl.find_opt t.extents cid with
  | Some r -> r
  | None ->
    let r = ref Oid.Set.empty in
    Oid.Tbl.replace t.extents cid r;
    r

let extent t cid = !(extent_ref t cid)
let extent_list t cid = Oid.Set.elements (extent t cid)
let extent_size t cid = Oid.Set.cardinal (extent t cid)

let note_new_class t cid =
  ignore (extent_ref t cid);
  t.deriv_order <- None

let note_removed_class t cid =
  Oid.Tbl.remove t.extents cid;
  t.deriv_order <- None

(* Virtual classes topologically sorted by the derivation DAG (sources
   first). Base classes do not appear. *)
let compute_derivation_order t =
  let virtuals =
    List.filter Klass.is_virtual (Schema_graph.classes t.graph)
  in
  let pending = Oid.Tbl.create 16 in
  List.iter (fun (k : Klass.t) -> Oid.Tbl.replace pending k.cid k) virtuals;
  let order = ref [] in
  let rec emit (k : Klass.t) =
    if Oid.Tbl.mem pending k.cid then begin
      Oid.Tbl.remove pending k.cid;
      List.iter
        (fun src ->
          match Oid.Tbl.find_opt pending src with
          | Some ksrc -> emit ksrc
          | None -> ())
        (Klass.sources k);
      order := k.cid :: !order
    end
  in
  List.iter emit virtuals;
  List.rev !order

let derivation_order t =
  match t.deriv_order with
  | Some o -> o
  | None ->
    let o = compute_derivation_order t in
    t.deriv_order <- Some o;
    o

let base_membership t o =
  match Oid.Tbl.find_opt t.base_member o with
  | Some r -> !r
  | None -> Oid.Set.empty

let is_member t o cid = Slicing.is_member t.model o cid
let member_classes t o = Slicing.member_classes t.model o
let objects t = Slicing.objects t.model
let object_count t = Slicing.object_count t.model
let mem_object t o = Oid.Tbl.mem t.base_member o

(* ------------------------------------------------------------------ *)
(* Property access                                                     *)
(* ------------------------------------------------------------------ *)

(* Resolve which member class's local definition of [name] applies to [o]:
   most specific member class; among unrelated candidates a promoted
   definition wins; remaining ties are a real ambiguity. *)
let resolve_prop t o name =
  let candidates =
    List.filter_map
      (fun cid ->
        match Klass.local_prop (Schema_graph.find_exn t.graph cid) name with
        | Some p -> Some (cid, p)
        | None -> None)
      (member_classes t o)
  in
  match candidates with
  | [] -> None
  | [ c ] -> Some c
  | candidates ->
    let not_overridden (cid, _) =
      not
        (List.exists
           (fun (other, _) ->
             (not (Oid.equal other cid))
             && Schema_graph.is_strict_ancestor t.graph ~anc:cid ~desc:other)
           candidates)
    in
    let minimal = List.filter not_overridden candidates in
    (match minimal with
    | [ c ] -> Some c
    | minimal -> begin
      match List.filter (fun (_, (p : Prop.t)) -> p.promoted) minimal with
      | [ c ] -> Some c
      | _ ->
        (* distinct unrelated properties under one name: invocable only
           after renaming (Section 6.1.1) *)
        let distinct_uids =
          List.sort_uniq Int.compare
            (List.map (fun (_, (p : Prop.t)) -> p.uid) minimal)
        in
        if List.length distinct_uids <= 1 then
          (match minimal with c :: _ -> Some c | [] -> None)
        else
          raise
            (Expr.Type_error
               (Printf.sprintf "ambiguous property %s (rename to disambiguate)"
                  name))
    end)

let rec get_prop t o name =
  match resolve_prop t o name with
  | None -> raise (Expr.Unknown_property name)
  | Some (_cid, p) -> begin
    match p.Prop.body with
    | Prop.Stored _ -> Slicing.get_attr t.model o name
    | Prop.Method e -> Expr.eval (env t o) e
  end

and env t o =
  {
    Expr.self = o;
    get = (fun name -> get_prop t o name);
    member_of =
      (fun cname ->
        match Schema_graph.find_by_name t.graph cname with
        | Some k -> is_member t o k.cid
        | None -> false);
  }

let eval t o e = Expr.eval (env t o) e

let holds t o e =
  (* an object that lacks the property — or holds a null that cannot be
     ordered — simply does not satisfy the predicate *)
  match Expr.eval_bool (env t o) e with
  | b -> b
  | exception Expr.Unknown_property _ -> false
  | exception Expr.Type_error _ -> false

(* ------------------------------------------------------------------ *)
(* Membership fixpoint                                                  *)
(* ------------------------------------------------------------------ *)

let isa_closure t set =
  Oid.Set.fold
    (fun c acc -> Oid.Set.union acc (Schema_graph.ancestors t.graph c))
    set set

let formula_holds t o current (k : Klass.t) =
  let mem c = Oid.Set.mem c current in
  match k.kind with
  | Klass.Base -> Oid.Set.mem k.cid current
  | Klass.Virtual d -> begin
    match d with
    | Klass.Select (c, pred) -> mem c && holds t o pred
    | Klass.Hide (_, c) -> mem c
    | Klass.Refine (_, c) -> mem c
    | Klass.Refine_from { target; _ } -> mem target
    | Klass.Union (a, b) -> mem a || mem b
    | Klass.Intersect (a, b) -> mem a && mem b
    | Klass.Difference (a, b) -> mem a && not (mem b)
  end

let remove_from_extents t o =
  Oid.Tbl.iter (fun _ r -> r := Oid.Set.remove o !r) t.extents

let sync_extents t o membership =
  remove_from_extents t o;
  Oid.Set.iter (fun cid -> extent_ref t cid := Oid.Set.add o !(extent_ref t cid)) membership

(* Desired membership of [o]: its base classes, closed upward, plus every
   virtual class whose derivation formula holds, iterated to a fixpoint.
   Implementation objects are synchronized eagerly after each round so
   that predicates can read attributes introduced by refine classes. *)
let reclassify t o =
  let base = base_membership t o in
  let order = derivation_order t in
  let rootc = root t in
  (* Formulas are evaluated IN-ROUND against the set built so far: the
     derivation order guarantees every class's sources were decided
     earlier in the same pass, so one pass computes the complete
     membership — crucially, a class the object remains a member of is
     never transiently absent, which would destroy its implementation
     slice (and the stored data it carries) during synchronization. *)
  let round () =
    let m = ref (isa_closure t base) in
    List.iter
      (fun cid ->
        let k = Schema_graph.find_exn t.graph cid in
        if formula_holds t o !m k then begin
          m := Oid.Set.add cid !m;
          m := Oid.Set.union !m (Schema_graph.ancestors t.graph cid)
        end)
      order;
    Oid.Set.remove rootc !m
  in
  let rec fix current fuel =
    let next = round () in
    Slicing.set_membership t.model o (Oid.Set.elements next);
    if Oid.Set.equal next current then next
    else if fuel = 0 then next (* nonmonotone derivations may not converge *)
    else fix next (fuel - 1)
  in
  let final = fix (Oid.Set.remove rootc (isa_closure t base)) 4 in
  sync_extents t o final;
  notify t (Reclassified o)

let reclassify_all t = List.iter (fun o -> reclassify t o) (objects t)

(* ------------------------------------------------------------------ *)
(* Object lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let set_attr t o name v =
  (match resolve_prop t o name with
  | None -> raise (Expr.Unknown_property name)
  | Some (_, p) -> begin
    match p.Prop.body with
    | Prop.Method _ ->
      raise (Expr.Type_error (Printf.sprintf "%s is a method, not settable" name))
    | Prop.Stored { ty; _ } ->
      if not (Value.conforms v ty) then
        raise
          (Expr.Type_error
             (Format.asprintf "%a does not conform to %a for attribute %s"
                Value.pp v Value.pp_ty ty name))
  end);
  Slicing.set_attr t.model o name v;
  notify t (Attr_set (o, name, v));
  reclassify t o

(* Stored base membership is kept MINIMAL: a class implied by another
   member (as its ancestor) is dropped, and the upward closure is
   recomputed at every reclassification. This is what lets a later
   delete_edge change what an object is a member of — closures are never
   frozen at creation time. *)
let minimal_bases t set =
  Oid.Set.filter
    (fun c ->
      not
        (Oid.Set.exists
           (fun d ->
             (not (Oid.equal c d))
             && Schema_graph.is_strict_ancestor t.graph ~anc:c ~desc:d)
           set))
    set

let create_object ?(init = []) t cid =
  let k = Schema_graph.find_exn t.graph cid in
  if Klass.is_virtual k then
    invalid_arg
      (Printf.sprintf "Database.create_object: %s is virtual" k.name);
  let o = Slicing.create_object t.model cid in
  Oid.Tbl.replace t.base_member o (ref (Oid.Set.singleton cid));
  (* classify first so attributes carried by refine slices are storable;
     each assignment re-derives select-class memberships *)
  reclassify t o;
  List.iter (fun (name, v) -> set_attr t o name v) init;
  notify t (Bases_changed o);
  notify t (Object_created o);
  o

let destroy_object t o =
  remove_from_extents t o;
  Oid.Tbl.remove t.base_member o;
  Slicing.destroy_object t.model o;
  notify t (Object_destroyed o)

let add_base_membership t o cid =
  let k = Schema_graph.find_exn t.graph cid in
  if Klass.is_virtual k then
    invalid_arg "Database.add_base_membership: virtual class";
  let r =
    match Oid.Tbl.find_opt t.base_member o with
    | Some r -> r
    | None -> invalid_arg "Database.add_base_membership: unknown object"
  in
  r := minimal_bases t (Oid.Set.add cid !r);
  notify t (Bases_changed o);
  reclassify t o

let remove_base_membership t o cid =
  let r =
    match Oid.Tbl.find_opt t.base_member o with
    | Some r -> r
    | None -> invalid_arg "Database.remove_base_membership: unknown object"
  in
  (* expand to the full implied base membership, subtract the class and
     its descendants, and re-minimalize: losing TA-ness this way keeps the
     TeachingStaff-ness the object had through TA *)
  let is_base c = Klass.is_base (Schema_graph.find_exn t.graph c) in
  let expanded =
    Oid.Set.filter is_base (isa_closure t !r) |> Oid.Set.remove (root t)
  in
  let dead = Oid.Set.add cid (Schema_graph.descendants t.graph cid) in
  r := minimal_bases t (Oid.Set.diff expanded dead);
  notify t (Bases_changed o);
  reclassify t o


let restore ~heap ~graph ~bases =
  let stats = Stats.create () in
  let model = Slicing.rebuild ~graph ~heap ~stats in
  let t =
    {
      heap;
      graph;
      model;
      stats;
      extents = Oid.Tbl.create 64;
      base_member = Oid.Tbl.create 256;
      deriv_order = None;
      listeners = [];
    }
  in
  List.iter
    (fun (o, cids) ->
      Oid.Tbl.replace t.base_member o
        (ref (List.fold_left (fun acc c -> Oid.Set.add c acc) Oid.Set.empty cids)))
    bases;
  (* extents re-derived from the restored membership facts *)
  List.iter
    (fun o ->
      List.iter
        (fun cid -> extent_ref t cid := Oid.Set.add o !(extent_ref t cid))
        (member_classes t o))
    (objects t);
  t

(* ------------------------------------------------------------------ *)
(* Consistency oracle                                                  *)
(* ------------------------------------------------------------------ *)

let check t =
  let problems = ref (Invariants.check t.graph) in
  let add fmt = Format.kasprintf (fun s -> problems := !problems @ [ s ]) fmt in
  let name_of = Schema_graph.name_of t.graph in
  (* extent index vs model membership *)
  List.iter
    (fun (k : Klass.t) ->
      if not (Oid.equal k.cid (root t)) then begin
        let ext = extent t k.cid in
        List.iter
          (fun o ->
            if not (is_member t o k.cid) then
              add "extent of %s lists non-member %s" k.name (Oid.to_string o))
          (Oid.Set.elements ext)
      end)
    (Schema_graph.classes t.graph);
  List.iter
    (fun o ->
      List.iter
        (fun cid ->
          if not (Oid.Set.mem o (extent t cid)) then
            add "object %s member of %s but missing from its extent"
              (Oid.to_string o) (name_of cid))
        (member_classes t o))
    (objects t);
  (* is-a extent subset invariant *)
  List.iter
    (fun (k : Klass.t) ->
      List.iter
        (fun sup ->
          if not (Oid.equal sup (root t)) then
            if not (Oid.Set.subset (extent t k.cid) (extent t sup)) then
              add "extent(%s) not a subset of extent(%s)" k.name (name_of sup))
        k.supers)
    (Schema_graph.classes t.graph);
  (* derivation formulas *)
  List.iter
    (fun cid ->
      let k = Schema_graph.find_exn t.graph cid in
      List.iter
        (fun o ->
          let current =
            List.fold_left
              (fun acc c -> Oid.Set.add c acc)
              Oid.Set.empty (member_classes t o)
          in
          let should = formula_holds t o current k in
          let has = Oid.Set.mem cid current in
          if should && not has then
            add "object %s should be a member of %s by its derivation"
              (Oid.to_string o) k.name
          else if has && not should then
            add "object %s is a member of %s against its derivation"
              (Oid.to_string o) k.name)
        (objects t))
    (derivation_order t);
  !problems

let check_exn t =
  match check t with
  | [] -> ()
  | problems ->
    failwith ("database inconsistent:\n  " ^ String.concat "\n  " problems)

let pp_extents ppf t =
  let classes =
    Schema_graph.classes t.graph
    |> List.sort (fun (a : Klass.t) b -> String.compare a.name b.name)
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (k : Klass.t) ->
      if not (Oid.equal k.cid (root t)) then
        Format.fprintf ppf "%s: {%s}@ " k.name
          (String.concat ", "
             (List.map Oid.to_string (extent_list t k.cid))))
    classes;
  Format.fprintf ppf "@]"
