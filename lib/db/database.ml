module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Heap = Tse_store.Heap
module Stats = Tse_store.Stats
module Schema_graph = Tse_schema.Schema_graph
module Klass = Tse_schema.Klass
module Prop = Tse_schema.Prop
module Type_info = Tse_schema.Type_info
module Expr = Tse_schema.Expr
module Deps = Tse_schema.Deps
module Invariants = Tse_schema.Invariants
module Slicing = Tse_objmodel.Slicing
module Pool = Tse_pool.Pool

type cid = Klass.cid

let reclassify_fuel = 4

(* Per-object memo of select-predicate verdicts. An entry for a select
   class is the last value its predicate evaluated to for this object;
   entries are dropped when a dependency recorded in the Deps index
   changes (attribute written, membership of an observed class changed),
   and the whole memo is discarded on any schema change ([v_gen]).
   [primed] means a full fixpoint has completed under this generation, so
   a MISSING entry proves the object was not a member of the select's
   source the last time memberships settled. *)
type verdict_state = {
  mutable v_gen : int;
  mutable primed : bool;
  verdicts : bool Oid.Tbl.t;
}

type t = {
  heap : Heap.t;
  graph : Schema_graph.t;
  model : Slicing.t;
  stats : Stats.t;
  extents : Oid.Set.t ref Oid.Tbl.t;
  base_member : Oid.Set.t ref Oid.Tbl.t;  (* object -> base classes *)
  mutable deriv_order : cid list option;  (* cache *)
  mutable listeners : (event -> unit) list;
  (* --- incremental reclassification engine --- *)
  mutable deps : Deps.t option;  (* cache, keyed on graph version *)
  mutable deps_version : int;
  mutable cache_gen : int;  (* bumped when per-object caches must die *)
  verdict_cache : verdict_state Oid.Tbl.t;
  resolve_cache : (int * (string, (cid * Prop.t) option) Hashtbl.t) Oid.Tbl.t;
  (* compiled select predicates, keyed by select cid; entries carry the
     compile stamp they were built under (see [compile_stamp]) *)
  pred_cache : (int * (Oid.t -> bool)) Oid.Tbl.t;
  mutable full_reclassify : bool;  (* oracle escape hatch *)
  formula_evals : int Atomic.t;  (* also bumped from worker domains *)
  mutable nonconverge_warned : bool;
  mutable nonconvergence_hook : Oid.t -> unit;
  (* true while a parallel region reads this database from several
     domains: memoizing caches on the read path switch to bypass mode *)
  mutable shared_read : bool;
}

and event =
  | Object_created of Oid.t
  | Object_destroyed of Oid.t
  | Attr_set of Oid.t * string * Value.t
  | Reclassified of Oid.t
  | Membership_delta of Oid.t * cid list * cid list
  | Bases_changed of Oid.t

let default_nonconvergence_hook o =
  Tse_obs.Log.warn "db"
    "derivation fixpoint for object %s did not converge within %d rounds \
     (nonmonotone derivation); memberships may oscillate"
    (Oid.to_string o) (reclassify_fuel + 1)

(* Reclassification-engine counters (see DESIGN.md §9). All are plain
   field increments; eval_pred and the memo lookup are the hottest. *)
module Metrics = Tse_obs.Metrics

let m_objects_visited = Metrics.counter "reclass.objects_visited"
let m_memo_hits = Metrics.counter "reclass.verdict_memo_hits"
let m_evals = Metrics.counter "reclass.formula_evals"
let m_noop_skips = Metrics.counter "reclass.verdict_noop_skips"
let m_attr_skips = Metrics.counter "reclass.untouched_attr_skips"
let m_rounds = Metrics.counter "reclass.fixpoint_rounds"
let m_fuel_exhausted = Metrics.counter "reclass.fuel_exhausted"
let m_nonconvergence = Metrics.counter "reclass.nonconvergence_warnings"
let m_compiled_evals = Metrics.counter "reclass.compiled_evals"
let m_pred_compiles = Metrics.counter "reclass.pred_compiles"

let env_full_reclassify () =
  match Sys.getenv_opt "DB_FULL_RECLASSIFY" with
  | Some ("1" | "true" | "yes") -> true
  | Some _ | None -> false

let create () =
  let heap = Heap.create () in
  let graph = Schema_graph.create ~gen:(Heap.gen heap) in
  let stats = Stats.create () in
  let model = Slicing.create ~graph ~heap ~stats in
  {
    heap;
    graph;
    model;
    stats;
    extents = Oid.Tbl.create 64;
    base_member = Oid.Tbl.create 256;
    deriv_order = None;
    listeners = [];
    deps = None;
    deps_version = -1;
    cache_gen = 0;
    verdict_cache = Oid.Tbl.create 256;
    resolve_cache = Oid.Tbl.create 256;
    pred_cache = Oid.Tbl.create 16;
    full_reclassify = env_full_reclassify ();
    formula_evals = Atomic.make 0;
    nonconverge_warned = false;
    nonconvergence_hook = default_nonconvergence_hook;
    shared_read = false;
  }

let add_listener t f = t.listeners <- t.listeners @ [ f ]
let notify t event = List.iter (fun f -> f event) t.listeners

let graph t = t.graph
let heap t = t.heap
let model t = t.model
let stats t = t.stats
let root t = Schema_graph.root t.graph

let formula_eval_count t = Atomic.get t.formula_evals
let full_reclassify t = t.full_reclassify

let set_full_reclassify t b =
  if not (Bool.equal t.full_reclassify b) then begin
    t.full_reclassify <- b;
    (* verdict memos were not maintained while the oracle path ran *)
    t.cache_gen <- t.cache_gen + 1
  end

let set_nonconvergence_hook t f = t.nonconvergence_hook <- f

let warn_nonconvergence t o =
  Metrics.incr m_nonconvergence;
  if not t.nonconverge_warned then begin
    t.nonconverge_warned <- true;
    t.nonconvergence_hook o
  end

let extent_ref t cid =
  match Oid.Tbl.find_opt t.extents cid with
  | Some r -> r
  | None ->
    let r = ref Oid.Set.empty in
    Oid.Tbl.replace t.extents cid r;
    r

let extent t cid = !(extent_ref t cid)
let extent_list t cid = Oid.Set.elements (extent t cid)
let extent_size t cid = Oid.Set.cardinal (extent t cid)

let note_new_class t cid =
  ignore (extent_ref t cid);
  t.deriv_order <- None;
  t.deps <- None

let note_removed_class t cid =
  Oid.Tbl.remove t.extents cid;
  t.deriv_order <- None;
  t.deps <- None

(* Virtual classes topologically sorted by the derivation DAG (sources
   first). Base classes do not appear. *)
let compute_derivation_order t =
  let virtuals =
    List.filter Klass.is_virtual (Schema_graph.classes t.graph)
  in
  let pending = Oid.Tbl.create 16 in
  List.iter (fun (k : Klass.t) -> Oid.Tbl.replace pending k.cid k) virtuals;
  let order = ref [] in
  let rec emit (k : Klass.t) =
    if Oid.Tbl.mem pending k.cid then begin
      Oid.Tbl.remove pending k.cid;
      List.iter
        (fun src ->
          match Oid.Tbl.find_opt pending src with
          | Some ksrc -> emit ksrc
          | None -> ())
        (Klass.sources k);
      order := k.cid :: !order
    end
  in
  List.iter emit virtuals;
  List.rev !order

let derivation_order t =
  match t.deriv_order with
  | Some o -> o
  | None ->
    let o = compute_derivation_order t in
    t.deriv_order <- Some o;
    o

(* The dependency index, recomputed whenever the schema graph moved under
   it. A recompute also retires every per-object cache: predicates,
   resolution orders and carrier classes may all have changed. *)
let deps t =
  let v = Schema_graph.version t.graph in
  match t.deps with
  | Some d when t.deps_version = v -> d
  | _ ->
    let d = Deps.compute t.graph in
    t.deps <- Some d;
    t.deps_version <- v;
    t.cache_gen <- t.cache_gen + 1;
    d

(* Enter shared-read mode for a parallel region: worker domains will
   evaluate predicates against this database concurrently, so every
   memoizing cache a read can touch must be either bypassed
   ([resolve_prop] checks the flag) or warmed here on the coordinating
   domain so worker lookups are pure hits — the schema-graph reachability
   caches mutate on miss, as do the derivation order and Deps index. *)
let with_shared_read t f =
  List.iter
    (fun (k : Klass.t) -> ignore (Schema_graph.ancestors t.graph k.Klass.cid))
    (Schema_graph.classes t.graph);
  ignore (derivation_order t);
  ignore (deps t);
  t.shared_read <- true;
  Fun.protect ~finally:(fun () -> t.shared_read <- false) f

let verdict_state t o =
  match Oid.Tbl.find_opt t.verdict_cache o with
  | Some vs when vs.v_gen = t.cache_gen -> vs
  | Some vs ->
    vs.v_gen <- t.cache_gen;
    vs.primed <- false;
    Oid.Tbl.reset vs.verdicts;
    vs
  | None ->
    let vs =
      { v_gen = t.cache_gen; primed = false; verdicts = Oid.Tbl.create 8 }
    in
    Oid.Tbl.replace t.verdict_cache o vs;
    vs

let base_membership t o =
  match Oid.Tbl.find_opt t.base_member o with
  | Some r -> !r
  | None -> Oid.Set.empty

let is_member t o cid = Slicing.is_member t.model o cid
let member_classes t o = Slicing.member_classes t.model o
let objects t = Slicing.objects t.model
let object_count t = Slicing.object_count t.model
let mem_object t o = Oid.Tbl.mem t.base_member o

let membership_set t o =
  List.fold_left
    (fun acc c -> Oid.Set.add c acc)
    Oid.Set.empty (member_classes t o)

(* ------------------------------------------------------------------ *)
(* Property access                                                     *)
(* ------------------------------------------------------------------ *)

(* Resolve which member class's local definition of [name] applies to [o]:
   most specific member class; among unrelated candidates a promoted
   definition wins; remaining ties are a real ambiguity. *)
let resolve_prop_uncached t o name =
  let candidates =
    List.filter_map
      (fun cid ->
        match Klass.local_prop (Schema_graph.find_exn t.graph cid) name with
        | Some p -> Some (cid, p)
        | None -> None)
      (member_classes t o)
  in
  match candidates with
  | [] -> None
  | [ c ] -> Some c
  | candidates ->
    let not_overridden (cid, _) =
      not
        (List.exists
           (fun (other, _) ->
             (not (Oid.equal other cid))
             && Schema_graph.is_strict_ancestor t.graph ~anc:cid ~desc:other)
           candidates)
    in
    let minimal = List.filter not_overridden candidates in
    (match minimal with
    | [ c ] -> Some c
    | minimal -> begin
      match List.filter (fun (_, (p : Prop.t)) -> p.promoted) minimal with
      | [ c ] -> Some c
      | _ ->
        (* distinct unrelated properties under one name: invocable only
           after renaming (Section 6.1.1) *)
        let distinct_uids =
          List.sort_uniq Int.compare
            (List.map (fun (_, (p : Prop.t)) -> p.uid) minimal)
        in
        if List.length distinct_uids <= 1 then
          (match minimal with c :: _ -> Some c | [] -> None)
        else
          raise
            (Expr.Type_error
               (Printf.sprintf "ambiguous property %s (rename to disambiguate)"
                  name))
    end)

(* Memoized per object: formula evaluation otherwise re-resolves every
   property linearly over the member classes. The memo is keyed on the
   membership signature implicitly — any membership change for the object
   drops its table, any schema change retires it via [cache_gen]. The
   ambiguous case raises and is deliberately not cached. *)
let resolve_tbl t o =
  ignore (deps t);
  match Oid.Tbl.find_opt t.resolve_cache o with
  | Some (g, tbl) when g = t.cache_gen -> tbl
  | _ ->
    let tbl = Hashtbl.create 8 in
    Oid.Tbl.replace t.resolve_cache o (t.cache_gen, tbl);
    tbl

let resolve_prop t o name =
  if t.shared_read then
    (* Parallel region: several domains resolve concurrently, so the
       per-object memo table must not be touched. Resolution is pure. *)
    resolve_prop_uncached t o name
  else begin
    let tbl = resolve_tbl t o in
    match Hashtbl.find_opt tbl name with
    | Some r -> r
    | None ->
      let r = resolve_prop_uncached t o name in
      Hashtbl.replace tbl name r;
      r
  end

let rec get_prop t o name =
  match resolve_prop t o name with
  | None -> raise (Expr.Unknown_property name)
  | Some (_cid, p) -> begin
    match p.Prop.body with
    | Prop.Stored _ -> Slicing.get_attr t.model o name
    | Prop.Method e -> Expr.eval (env t o) e
  end

and env t o =
  {
    Expr.self = o;
    get = (fun name -> get_prop t o name);
    member_of =
      (fun cname ->
        match Schema_graph.find_by_name t.graph cname with
        | Some k -> is_member t o k.cid
        | None -> false);
  }

let eval t o e = Expr.eval (env t o) e

let holds t o e =
  (* an object that lacks the property — or holds a null that cannot be
     ordered — simply does not satisfy the predicate *)
  match Expr.eval_bool (env t o) e with
  | b -> b
  | exception Expr.Unknown_property _ -> false
  | exception Expr.Type_error _ -> false

(* ------------------------------------------------------------------ *)
(* Compiled predicate evaluation                                       *)
(* ------------------------------------------------------------------ *)

(* Anything compiled against this database is valid only while the stamp
   is unchanged. The graph version covers every Tsem-mediated evolution
   (they all register or remove classes); [cache_gen] additionally covers
   direct schema surgery, which mutates class records in place and then
   bumps it via [reclassify_all]. Both components only grow, so their sum
   changes whenever either does. *)
let compile_stamp t = Schema_graph.version t.graph + t.cache_gen

(* Binder for Expr_compile: names are resolved once at compile time.

   The attribute fast path rests on a static fact about the whole graph:
   when exactly ONE class declares a stored local property under [name],
   per-object resolution can only ever pick that class (a non-member
   raises Unknown_property, a member reads its slice at that class, with
   the declared default standing in for an unset slot). That skips the
   member_classes fold + candidate filtering that [get_prop] pays on
   every read. Any other shape — several declarers, a method, no
   declarer — falls back to the dynamic resolver, which is always
   correct. *)
let compiled_binder t =
  let b_attr name =
    let declaring =
      List.filter_map
        (fun (k : Klass.t) ->
          match Klass.local_prop k name with
          | Some p -> Some (k.cid, p)
          | None -> None)
        (Schema_graph.classes t.graph)
    in
    match declaring with
    | [ (cid, { Prop.body = Prop.Stored { default; _ }; _ }) ] ->
      let read = Slicing.slot_reader t.model cid name in
      fun o -> begin
        match read o with
        | Some Value.Null -> default
        | Some v -> v
        | None -> raise (Expr.Unknown_property name)
      end
    | _ -> fun o -> get_prop t o name
  in
  let b_member cname =
    match Schema_graph.find_by_name t.graph cname with
    | Some k ->
      let cid = k.Klass.cid in
      fun o -> is_member t o cid
    | None -> fun _ -> false
  in
  {
    Tse_schema.Expr_compile.b_attr;
    b_member;
    b_self = (fun o -> Value.Ref o);
  }

let compile_pred t pred =
  Metrics.incr m_pred_compiles;
  Tse_schema.Expr_compile.compile_pred (compiled_binder t) pred

(* Per-select-class cache of compiled predicates, used by the
   reclassification engine. The oracle path deliberately keeps the
   interpreted [eval_pred] so differential tests compare compiled against
   interpreted evaluation. *)
let compiled_select_pred t cid pred =
  let stamp = compile_stamp t in
  match Oid.Tbl.find_opt t.pred_cache cid with
  | Some (s, fn) when s = stamp -> fn
  | _ ->
    let fn = compile_pred t pred in
    Oid.Tbl.replace t.pred_cache cid (stamp, fn);
    fn

(* ------------------------------------------------------------------ *)
(* Membership fixpoint                                                  *)
(* ------------------------------------------------------------------ *)

let isa_closure t set =
  Oid.Set.fold
    (fun c acc -> Oid.Set.union acc (Schema_graph.ancestors t.graph c))
    set set

(* One shape for the oracle, the cached engine and the checker: only how
   a select predicate's verdict is obtained differs. *)
let formula_holds_with pred_fn current (k : Klass.t) =
  let mem c = Oid.Set.mem c current in
  match k.kind with
  | Klass.Base -> Oid.Set.mem k.cid current
  | Klass.Virtual d -> begin
    match d with
    | Klass.Select (c, pred) -> mem c && pred_fn k.cid pred
    | Klass.Hide (_, c) -> mem c
    | Klass.Refine (_, c) -> mem c
    | Klass.Refine_from { target; _ } -> mem target
    | Klass.Union (a, b) -> mem a || mem b
    | Klass.Intersect (a, b) -> mem a && mem b
    | Klass.Difference (a, b) -> mem a && not (mem b)
  end

let formula_holds t o current k =
  formula_holds_with (fun _ pred -> holds t o pred) current k

let eval_pred t o pred =
  Atomic.incr t.formula_evals;
  Metrics.incr m_evals;
  holds t o pred

(* The incremental engine's evaluation path: same verdict as [eval_pred]
   (Expr_compile.compile_pred implements the [holds] contract), obtained
   through the per-select compiled closure. *)
let eval_pred_compiled t o cid pred =
  Atomic.incr t.formula_evals;
  Metrics.incr m_evals;
  Metrics.incr m_compiled_evals;
  (compiled_select_pred t cid pred) o

let cached_verdict t vs o cid pred =
  match Oid.Tbl.find_opt vs.verdicts cid with
  | Some b ->
    Metrics.incr m_memo_hits;
    b
  | None ->
    let b = eval_pred_compiled t o cid pred in
    Oid.Tbl.replace vs.verdicts cid b;
    b

(* Desired membership of [o] after one pass over the derivation order.
   Formulas are evaluated IN-ROUND against the set built so far: the
   derivation order guarantees every class's sources were decided earlier
   in the same pass, so one pass computes the complete membership —
   crucially, a class the object remains a member of is never transiently
   absent, which would destroy its implementation slice (and the stored
   data it carries) during synchronization. *)
let membership_round t ~pred_fn ~base_closure ~order =
  let m = ref base_closure in
  List.iter
    (fun cid ->
      let k = Schema_graph.find_exn t.graph cid in
      if formula_holds_with pred_fn !m k then begin
        m := Oid.Set.add cid !m;
        m := Oid.Set.union !m (Schema_graph.ancestors t.graph cid)
      end)
    order;
  Oid.Set.remove (root t) !m

let remove_from_extents t o =
  Oid.Tbl.iter (fun _ r -> r := Oid.Set.remove o !r) t.extents

let sync_extents t o membership =
  remove_from_extents t o;
  Oid.Set.iter
    (fun cid -> extent_ref t cid := Oid.Set.add o !(extent_ref t cid))
    membership

(* Synchronize the object model mid-fixpoint and keep the property
   resolution memo honest: a membership change invalidates it. *)
let set_membership_sync t o next =
  Slicing.set_membership t.model o (Oid.Set.elements next);
  Oid.Tbl.remove t.resolve_cache o

let delta_events t o ~before ~after =
  let added = Oid.Set.diff after before in
  let removed = Oid.Set.diff before after in
  if not (Oid.Set.is_empty added && Oid.Set.is_empty removed) then
    notify t
      (Membership_delta (o, Oid.Set.elements added, Oid.Set.elements removed))

(* --- oracle: the literal Section 3.2 full fixpoint ------------------ *)

(* Every select predicate is re-evaluated in every round and the extent
   index is rebuilt with a full per-class sweep — kept verbatim as the
   correctness oracle (DB_FULL_RECLASSIFY=1) and the bench baseline. *)
let reclassify_oracle t o =
  Metrics.incr m_objects_visited;
  let base = base_membership t o in
  let order = derivation_order t in
  let base_closure = isa_closure t base in
  let before = membership_set t o in
  let pred_fn _cid pred = eval_pred t o pred in
  (* convergence means: the round's output equals the membership it was
     EVALUATED under. Predicates read the object model (In_class tests,
     attribute resolution through slices), so comparing against the
     previous round's output alone can declare a fixpoint whose verdicts
     were computed against a stale model — e.g. when joining a base class
     makes a select's In_class test true but the output happens to equal
     the base closure. *)
  let rec fix evaluated_under fuel =
    Metrics.incr m_rounds;
    let next = membership_round t ~pred_fn ~base_closure ~order in
    set_membership_sync t o next;
    if Oid.Set.equal next evaluated_under then next
    else if fuel = 0 then begin
      (* nonmonotone derivations may not converge *)
      Metrics.incr m_fuel_exhausted;
      Tse_obs.Watchdog.fuel_pressure ~what:"oracle";
      warn_nonconvergence t o;
      next
    end
    else fix next (fuel - 1)
  in
  let final = fix before reclassify_fuel in
  sync_extents t o final;
  notify t (Reclassified o);
  delta_events t o ~before ~after:final

(* --- incremental engine -------------------------------------------- *)

(* Apply one round's membership outcome: sync the model and drop the
   verdicts the Deps index says a membership change can invalidate, so
   the next round re-evaluates exactly those predicates. *)
let apply_round t vs o ~prev ~next =
  if not (Oid.Set.equal prev next) then begin
    set_membership_sync t o next;
    let d = deps t in
    let changed =
      Oid.Set.union (Oid.Set.diff prev next) (Oid.Set.diff next prev)
    in
    Oid.Set.iter
      (fun x ->
        Oid.Set.iter
          (fun s -> Oid.Tbl.remove vs.verdicts s)
          (Deps.selects_on_class d x))
      changed
  end

let run_incremental_fixpoint t vs o =
  Metrics.incr m_objects_visited;
  let before = membership_set t o in
  let base_closure = isa_closure t (base_membership t o) in
  let order = derivation_order t in
  let pred_fn cid pred = cached_verdict t vs o cid pred in
  let model_now = ref before in
  (* same convergence rule as the oracle: stop only when the round's
     output equals the membership it was evaluated under; apply_round's
     verdict invalidation makes the confirming round re-evaluate exactly
     the predicates a membership change can have flipped *)
  let rec fix fuel =
    Metrics.incr m_rounds;
    let evaluated_under = !model_now in
    let next = membership_round t ~pred_fn ~base_closure ~order in
    apply_round t vs o ~prev:evaluated_under ~next;
    model_now := next;
    if Oid.Set.equal next evaluated_under then next
    else if fuel = 0 then begin
      Metrics.incr m_fuel_exhausted;
      Tse_obs.Watchdog.fuel_pressure ~what:"incremental";
      warn_nonconvergence t o;
      next
    end
    else fix (fuel - 1)
  in
  let final = fix reclassify_fuel in
  vs.primed <- true;
  (* extent deltas: add/remove per changed class, never a full sweep *)
  let added = Oid.Set.diff final before in
  let removed = Oid.Set.diff before final in
  Oid.Set.iter
    (fun c -> extent_ref t c := Oid.Set.add o !(extent_ref t c))
    added;
  Oid.Set.iter
    (fun c ->
      match Oid.Tbl.find_opt t.extents c with
      | Some r -> r := Oid.Set.remove o !r
      | None -> ())
    removed;
  notify t (Reclassified o);
  if not (Oid.Set.is_empty added && Oid.Set.is_empty removed) then
    notify t
      (Membership_delta (o, Oid.Set.elements added, Oid.Set.elements removed))

(* [dirty = Some s]: the verdicts of the selects in [s] are suspect (an
   attribute they read was written); anything else is known-good, so if
   re-evaluating them changes nothing, memberships cannot have moved and
   the whole reclassification is a no-op. [dirty = None]: the membership
   STRUCTURE changed (base classes moved) — cached verdicts stay valid,
   but the fixpoint must run. *)
let reclassify_incr t o dirty =
  ignore (deps t);
  let vs = verdict_state t o in
  let must_run =
    match dirty with
    | None -> true
    | Some set when vs.primed ->
      Oid.Set.fold
        (fun cid changed ->
          match Oid.Tbl.find_opt vs.verdicts cid with
          | None ->
            (* never evaluated under this generation: the object was not a
               member of the select's source when memberships last
               settled, and an attribute write cannot make it one *)
            changed
          | Some old -> begin
            match (Schema_graph.find_exn t.graph cid).kind with
            | Klass.Virtual (Klass.Select (_, pred)) ->
              let now = eval_pred_compiled t o cid pred in
              Oid.Tbl.replace vs.verdicts cid now;
              changed || not (Bool.equal old now)
            | Klass.Base | Klass.Virtual _ -> changed
          end)
        set false
    | Some set ->
      (* unprimed: no fixpoint has run under this generation; stale
         entries cannot exist, but nothing can be proven either *)
      Oid.Set.iter (Oid.Tbl.remove vs.verdicts) set;
      true
  in
  if must_run then run_incremental_fixpoint t vs o
  else Metrics.incr m_noop_skips

let reclassify t o =
  if t.full_reclassify then reclassify_oracle t o
  else reclassify_incr t o None

(* --- parallel bulk reclassification --------------------------------- *)

let m_par_batches = Metrics.counter "reclass.parallel_batches"
let m_par_unchanged = Metrics.counter "reclass.parallel_unchanged"

(* Phase-1 result for one object: the outcome of a single membership
   round evaluated against the pre-batch state, plus the verdicts that
   round computed fresh (memo hits are not re-recorded, matching
   [cached_verdict]). *)
type pre_round = {
  pv_before : Oid.Set.t;
  pv_next : Oid.Set.t;
  pv_new : (cid * bool) list;
}

(* Workers must never hit the compile-on-miss branch of
   [compiled_select_pred]: build every select's closure on the
   coordinator first, so in-region lookups are read-only stamp hits. *)
let precompile_selects t =
  List.iter
    (fun cid ->
      match (Schema_graph.find_exn t.graph cid).Klass.kind with
      | Klass.Virtual (Klass.Select (_, pred)) ->
        ignore (compiled_select_pred t cid pred : Oid.t -> bool)
      | Klass.Base | Klass.Virtual _ -> ())
    (derivation_order t)

(* One membership round for [o], read-only against shared state: verdict
   memos are probed but never written (fresh verdicts go into a local
   table and the returned list), so any number of objects can run this
   concurrently.  Predicates only ever read the object they are applied
   to — the Expr language has no cross-object dereference — which is
   what makes per-object rounds independent. *)
let pre_round t o =
  let before = membership_set t o in
  let base_closure = isa_closure t (base_membership t o) in
  let order = derivation_order t in
  let shared =
    match Oid.Tbl.find_opt t.verdict_cache o with
    | Some vs when vs.v_gen = t.cache_gen -> Some vs.verdicts
    | Some _ | None -> None
  in
  let local = Oid.Tbl.create 8 in
  let fresh = ref [] in
  let pred_fn cid pred =
    match Oid.Tbl.find_opt local cid with
    | Some b -> b
    | None ->
      let memo =
        match shared with
        | Some tbl -> Oid.Tbl.find_opt tbl cid
        | None -> None
      in
      let b =
        match memo with
        | Some b ->
          Metrics.incr m_memo_hits;
          b
        | None ->
          let b = eval_pred_compiled t o cid pred in
          fresh := (cid, b) :: !fresh;
          b
      in
      Oid.Tbl.replace local cid b;
      b
  in
  let next = membership_round t ~pred_fn ~base_closure ~order in
  { pv_before = before; pv_next = next; pv_new = List.rev !fresh }

(* Merge one phase-1 result on the coordinating domain, in input order.
   Unchanged objects replay exactly what the sequential fixpoint would
   have done for them — memo writes, primed flag, counters, and the
   [Reclassified] event, with no model or extent mutation.  Changed
   objects seed their memo with the phase-1 verdicts (still valid: they
   were computed under the same pre-batch membership the sequential
   round 1 would use) and run the ordinary incremental engine. *)
let integrate_pre t o pre =
  let vs = verdict_state t o in
  List.iter (fun (cid, b) -> Oid.Tbl.replace vs.verdicts cid b) pre.pv_new;
  if Oid.Set.equal pre.pv_next pre.pv_before then begin
    vs.primed <- true;
    Metrics.incr m_par_unchanged;
    Metrics.incr m_objects_visited;
    Metrics.incr m_rounds;
    notify t (Reclassified o)
  end
  else reclassify_incr t o None

(* Bulk reclassification of [os], in list order.  Below the parallel
   threshold — or with a single-domain pool, or under the oracle — this
   IS the sequential loop; above it, per-object verdict rounds fan out
   across the pool (phase 1, read-only) and are integrated one by one on
   the coordinating domain (phase 2: memo merges, model/extent mutation,
   events), preserving the sequential event order exactly. *)
let reclassify_many t os =
  let pool = Pool.global () in
  let n = List.length os in
  if t.full_reclassify || Pool.size pool <= 1 || n < Pool.threshold () then
    List.iter (fun o -> reclassify t o) os
  else begin
    Tse_obs.Trace.with_span "reclassify.parallel" @@ fun () ->
    Metrics.incr m_par_batches;
    precompile_selects t;
    let objs = Array.of_list os in
    let pres = Array.make n None in
    with_shared_read t (fun () ->
        Pool.run pool ~n (fun ~lo ~hi ->
            for i = lo to hi - 1 do
              pres.(i) <- Some (pre_round t objs.(i))
            done));
    Array.iteri
      (fun i pre -> integrate_pre t objs.(i) (Option.get pre))
      pres
  end

(* The recompute-the-world entry point. Direct (destructive) schema
   surgery mutates class properties without going through the graph's
   versioned mutators, so every derived cache is dropped first. *)
let reclassify_all t =
  t.deriv_order <- None;
  t.deps <- None;
  t.deps_version <- -1;
  t.cache_gen <- t.cache_gen + 1;
  reclassify_many t (objects t)

(* ------------------------------------------------------------------ *)
(* Object lifecycle                                                    *)
(* ------------------------------------------------------------------ *)

let set_attr t o name v =
  (match resolve_prop t o name with
  | None -> raise (Expr.Unknown_property name)
  | Some (_, p) -> begin
    match p.Prop.body with
    | Prop.Method _ ->
      raise (Expr.Type_error (Printf.sprintf "%s is a method, not settable" name))
    | Prop.Stored { ty; _ } ->
      if not (Value.conforms v ty) then
        raise
          (Expr.Type_error
             (Format.asprintf "%a does not conform to %a for attribute %s"
                Value.pp v Value.pp_ty ty name))
  end);
  Slicing.set_attr t.model o name v;
  notify t (Attr_set (o, name, v));
  if t.full_reclassify then reclassify_oracle t o
  else begin
    let dirty = Deps.selects_on_attr (deps t) name in
    (* an attribute no derivation predicate can observe: memberships are
       untouched, skip reclassification entirely *)
    if Oid.Set.is_empty dirty then Metrics.incr m_attr_skips
    else reclassify_incr t o (Some dirty)
  end

(* Stored base membership is kept MINIMAL: a class implied by another
   member (as its ancestor) is dropped, and the upward closure is
   recomputed at every reclassification. This is what lets a later
   delete_edge change what an object is a member of — closures are never
   frozen at creation time. *)
let minimal_bases t set =
  Oid.Set.filter
    (fun c ->
      not
        (Oid.Set.exists
           (fun d ->
             (not (Oid.equal c d))
             && Schema_graph.is_strict_ancestor t.graph ~anc:c ~desc:d)
           set))
    set

let create_object ?(init = []) t cid =
  let k = Schema_graph.find_exn t.graph cid in
  if Klass.is_virtual k then
    invalid_arg
      (Printf.sprintf "Database.create_object: %s is virtual" k.name);
  let o = Slicing.create_object t.model cid in
  Oid.Tbl.replace t.base_member o (ref (Oid.Set.singleton cid));
  (* seed the extent index with the full initial membership (the creation
     class and its ancestors, already materialized by the object model) so
     delta maintenance starts from a consistent membership/extent pair *)
  List.iter
    (fun c -> extent_ref t c := Oid.Set.add o !(extent_ref t c))
    (member_classes t o);
  (* creation is announced before the init writes, so listeners never
     observe Attr_set for an object they were not told exists *)
  notify t (Object_created o);
  notify t (Bases_changed o);
  (* classify first so attributes carried by refine slices are storable;
     each assignment re-derives select-class memberships *)
  reclassify t o;
  List.iter (fun (name, v) -> set_attr t o name v) init;
  o

let destroy_object t o =
  if t.full_reclassify then remove_from_extents t o
  else
    List.iter
      (fun c ->
        match Oid.Tbl.find_opt t.extents c with
        | Some r -> r := Oid.Set.remove o !r
        | None -> ())
      (member_classes t o);
  Oid.Tbl.remove t.base_member o;
  Oid.Tbl.remove t.verdict_cache o;
  Oid.Tbl.remove t.resolve_cache o;
  Slicing.destroy_object t.model o;
  notify t (Object_destroyed o)

let add_base_membership t o cid =
  let k = Schema_graph.find_exn t.graph cid in
  if Klass.is_virtual k then
    invalid_arg "Database.add_base_membership: virtual class";
  let r =
    match Oid.Tbl.find_opt t.base_member o with
    | Some r -> r
    | None -> invalid_arg "Database.add_base_membership: unknown object"
  in
  r := minimal_bases t (Oid.Set.add cid !r);
  notify t (Bases_changed o);
  reclassify t o

let remove_base_membership t o cid =
  let r =
    match Oid.Tbl.find_opt t.base_member o with
    | Some r -> r
    | None -> invalid_arg "Database.remove_base_membership: unknown object"
  in
  (* expand to the full implied base membership, subtract the class and
     its descendants, and re-minimalize: losing TA-ness this way keeps the
     TeachingStaff-ness the object had through TA *)
  let is_base c = Klass.is_base (Schema_graph.find_exn t.graph c) in
  let expanded =
    Oid.Set.filter is_base (isa_closure t !r) |> Oid.Set.remove (root t)
  in
  let dead = Oid.Set.add cid (Schema_graph.descendants t.graph cid) in
  r := minimal_bases t (Oid.Set.diff expanded dead);
  notify t (Bases_changed o);
  reclassify t o


let restore ~heap ~graph ~bases =
  let stats = Stats.create () in
  let model = Slicing.rebuild ~graph ~heap ~stats in
  let t =
    {
      heap;
      graph;
      model;
      stats;
      extents = Oid.Tbl.create 64;
      base_member = Oid.Tbl.create 256;
      deriv_order = None;
      listeners = [];
      deps = None;
      deps_version = -1;
      cache_gen = 0;
      verdict_cache = Oid.Tbl.create 256;
      resolve_cache = Oid.Tbl.create 256;
      pred_cache = Oid.Tbl.create 16;
      full_reclassify = env_full_reclassify ();
      formula_evals = Atomic.make 0;
      nonconverge_warned = false;
      nonconvergence_hook = default_nonconvergence_hook;
      shared_read = false;
    }
  in
  List.iter
    (fun (o, cids) ->
      Oid.Tbl.replace t.base_member o
        (ref (List.fold_left (fun acc c -> Oid.Set.add c acc) Oid.Set.empty cids)))
    bases;
  (* extents re-derived from the restored membership facts *)
  List.iter
    (fun o ->
      List.iter
        (fun cid -> extent_ref t cid := Oid.Set.add o !(extent_ref t cid))
        (member_classes t o))
    (objects t);
  t

(* ------------------------------------------------------------------ *)
(* Consistency oracle                                                  *)
(* ------------------------------------------------------------------ *)

let check t =
  let problems = ref (Invariants.check t.graph) in
  let add fmt = Format.kasprintf (fun s -> problems := !problems @ [ s ]) fmt in
  let name_of = Schema_graph.name_of t.graph in
  (* extent index vs model membership *)
  List.iter
    (fun (k : Klass.t) ->
      if not (Oid.equal k.cid (root t)) then begin
        let ext = extent t k.cid in
        List.iter
          (fun o ->
            if not (is_member t o k.cid) then
              add "extent of %s lists non-member %s" k.name (Oid.to_string o))
          (Oid.Set.elements ext)
      end)
    (Schema_graph.classes t.graph);
  List.iter
    (fun o ->
      List.iter
        (fun cid ->
          if not (Oid.Set.mem o (extent t cid)) then
            add "object %s member of %s but missing from its extent"
              (Oid.to_string o) (name_of cid))
        (member_classes t o))
    (objects t);
  (* is-a extent subset invariant *)
  List.iter
    (fun (k : Klass.t) ->
      List.iter
        (fun sup ->
          if not (Oid.equal sup (root t)) then
            if not (Oid.Set.subset (extent t k.cid) (extent t sup)) then
              add "extent(%s) not a subset of extent(%s)" k.name (name_of sup))
        k.supers)
    (Schema_graph.classes t.graph);
  (* derivation formulas *)
  List.iter
    (fun cid ->
      let k = Schema_graph.find_exn t.graph cid in
      List.iter
        (fun o ->
          let current =
            List.fold_left
              (fun acc c -> Oid.Set.add c acc)
              Oid.Set.empty (member_classes t o)
          in
          let should = formula_holds t o current k in
          let has = Oid.Set.mem cid current in
          if should && not has then
            add "object %s should be a member of %s by its derivation"
              (Oid.to_string o) k.name
          else if has && not should then
            add "object %s is a member of %s against its derivation"
              (Oid.to_string o) k.name)
        (objects t))
    (derivation_order t);
  !problems

let check_exn t =
  match check t with
  | [] -> ()
  | problems ->
    failwith ("database inconsistent:\n  " ^ String.concat "\n  " problems)

let pp_extents ppf t =
  let classes =
    Schema_graph.classes t.graph
    |> List.sort (fun (a : Klass.t) b -> String.compare a.name b.name)
  in
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (k : Klass.t) ->
      if not (Oid.equal k.cid (root t)) then
        Format.fprintf ppf "%s: {%s}@ " k.name
          (String.concat ", "
             (List.map Oid.to_string (extent_list t k.cid))))
    classes;
  Format.fprintf ppf "@]"
