(** Crash-safe persistence for a {!Database}: snapshot + write-ahead log.

    A durable database lives in a directory holding two files:

    - [snapshot] — a checkpoint image (header with the last folded batch
      sequence number, the encoded schema graph, the per-object base
      memberships, and a heap snapshot), replaced atomically;
    - [wal] — the write-ahead log of every commit since that snapshot.

    Every committed change is captured through the heap's mutation
    observer ({!Tse_store.Heap.set_logger}) and the database's change
    events, so one {!commit} appends exactly one checksummed batch:
    the physical heap ops, an OID-generator watermark, the base
    memberships that changed, and — only when it differs from the last
    durable image — the re-encoded schema graph.

    {!open_dir} is recovery: load the snapshot (if any), replay the log
    tail, truncating a torn or corrupt tail instead of failing, and
    report what happened.

    {b Sync policies.} When a commit is fsynced is a policy, not a fact
    of the commit itself: [Every_commit] (the default) fsyncs inside
    every {!commit} — the strongest contract and the slowest; [Group n]
    buffers framed batches and flushes them with one write + one fsync
    every [n] commits; [Manual] only flushes at an explicit {!sync}
    barrier ({!checkpoint} and {!close} always force one). Under a
    grouped or manual policy a crash loses at most the commits since the
    last barrier — never a synced one, and recovery degrades a group
    torn mid-flush to the longest whole-record prefix. *)

type t

(** When {!commit} makes a batch durable. *)
type sync_policy =
  | Every_commit  (** fsync inside every commit (default) *)
  | Group of int  (** one write + one fsync per [n] commits; [n >= 1] *)
  | Manual  (** only {!sync}/{!checkpoint}/{!close} flush *)

val policy_of_string : string -> sync_policy
(** ["every_commit"] (or ["every"]), ["group:N"], ["manual"].
    @raise Invalid_argument on anything else, or [group:N] with [N < 1]. *)

val policy_to_string : sync_policy -> string

val open_dir :
  ?policy:sync_policy -> dir:string -> unit -> t * Tse_store.Recovery.report
(** Open (creating the directory and an empty database if needed). The
    report describes the log replay: batches applied and skipped, bytes
    dropped from a bad tail and why. [policy] defaults to the
    [TSE_SYNC_POLICY] environment variable (same syntax as
    {!policy_of_string}; mirrors [DB_FULL_RECLASSIFY]) and otherwise to
    [Every_commit].

    @raise Failure if the snapshot itself is unreadable or corrupt (the
    snapshot is written atomically, so this means outside interference,
    not a crash), or if a structurally valid log batch contradicts the
    snapshot. *)

val db : t -> Database.t
val dir : t -> string

val seq : t -> int
(** Sequence number of the last appended batch. *)

val commit : t -> unit
(** Append everything buffered since the previous commit as one atomic
    batch; whether it is fsynced before returning is the sync policy's
    call (under [Group n] the commit completing the group flushes it).
    A commit with no changes writes nothing. *)

val sync : t -> unit
(** Explicit sync barrier: flush every unsynced commit with one write
    and one fsync. On return they are durable. No-op under
    [Every_commit] or when nothing is pending. *)

val policy : t -> sync_policy
val set_policy : t -> sync_policy -> unit
(** Forces a {!sync} barrier before switching, so no commit is ever
    governed by a policy weaker than the one it was made under. *)

val unsynced_commits : t -> int
(** Commits appended since the last sync barrier (0 under
    [Every_commit]). *)

val wal_stats : t -> Tse_store.Wal.stats
(** The log's amortization counters: fsyncs, bytes framed, batches per
    sync. *)

val checkpoint : t -> unit
(** {!commit}, then {!sync} (a checkpoint is always a barrier), then
    fold the whole state into a fresh snapshot (atomically: temp file,
    fsync, rename) and reset the log. A crash between the rename and
    the log reset is safe: replay skips batches the snapshot already
    covers. *)

val close : t -> unit
(** {!commit}, {!sync}, detach the observers and close the log. The
    value must not be used afterwards. *)
