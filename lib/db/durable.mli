(** Crash-safe persistence for a {!Database}: snapshot + write-ahead log.

    A durable database lives in a directory holding two files:

    - [snapshot] — a checkpoint image (header with the last folded batch
      sequence number, the encoded schema graph, the per-object base
      memberships, and a heap snapshot), replaced atomically;
    - [wal] — the write-ahead log of every commit since that snapshot.

    Every committed change is captured through the heap's mutation
    observer ({!Tse_store.Heap.set_logger}) and the database's change
    events, so one {!commit} appends exactly one checksummed batch:
    the physical heap ops, an OID-generator watermark, the base
    memberships that changed, and — only when it differs from the last
    durable image — the re-encoded schema graph.

    {!open_dir} is recovery: load the snapshot (if any), replay the log
    tail, truncating a torn or corrupt tail instead of failing, and
    report what happened. *)

type t

val open_dir : dir:string -> t * Tse_store.Recovery.report
(** Open (creating the directory and an empty database if needed). The
    report describes the log replay: batches applied and skipped, bytes
    dropped from a bad tail and why.

    @raise Failure if the snapshot itself is unreadable or corrupt (the
    snapshot is written atomically, so this means outside interference,
    not a crash), or if a structurally valid log batch contradicts the
    snapshot. *)

val db : t -> Database.t
val dir : t -> string

val seq : t -> int
(** Sequence number of the last appended batch. *)

val commit : t -> unit
(** Append everything buffered since the previous commit as one atomic
    batch and fsync. A commit with no changes writes nothing. *)

val checkpoint : t -> unit
(** {!commit}, then fold the whole state into a fresh snapshot
    (atomically: temp file, fsync, rename) and reset the log. A crash
    between the rename and the log reset is safe: replay skips batches
    the snapshot already covers. *)

val close : t -> unit
(** {!commit}, detach the observers and close the log. The value must
    not be used afterwards. *)
