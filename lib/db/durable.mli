(** Crash-safe persistence for a {!Database}: snapshot + write-ahead log.

    A durable database lives in a directory holding two files:

    - [snapshot] — a checkpoint image (header with the last folded batch
      sequence number, the encoded schema graph, the per-object base
      memberships, and a heap snapshot), replaced atomically;
    - [wal] — the write-ahead log of every commit since that snapshot.

    Every committed change is captured through the heap's mutation
    observer ({!Tse_store.Heap.set_logger}) and the database's change
    events, so one {!commit} appends exactly one checksummed batch:
    the physical heap ops, an OID-generator watermark, the base
    memberships that changed, and — only when it differs from the last
    durable image — the re-encoded schema graph.

    {!open_dir} is recovery: load the snapshot (if any), replay the log
    tail, truncating a torn or corrupt tail instead of failing, and
    report what happened.

    {b Sync policies.} When a commit is fsynced is a policy, not a fact
    of the commit itself: [Every_commit] (the default) fsyncs inside
    every {!commit} — the strongest contract and the slowest; [Group n]
    buffers framed batches and flushes them with one write + one fsync
    every [n] commits; [Manual] only flushes at an explicit {!sync}
    barrier ({!checkpoint} and {!close} always force one). Under a
    grouped or manual policy a crash loses at most the commits since the
    last barrier — never a synced one, and recovery degrades a group
    torn mid-flush to the longest whole-record prefix. *)

type t

(** When {!commit} makes a batch durable. *)
type sync_policy =
  | Every_commit  (** fsync inside every commit (default) *)
  | Group of int  (** one write + one fsync per [n] commits; [n >= 1] *)
  | Manual  (** only {!sync}/{!checkpoint}/{!close} flush *)

val policy_of_string : string -> sync_policy
(** ["every_commit"] (or ["every"]), ["group:N"], ["manual"].
    @raise Invalid_argument on anything else, or [group:N] with [N < 1]. *)

val policy_to_string : sync_policy -> string

val open_dir :
  ?policy:sync_policy -> dir:string -> unit -> t * Tse_store.Recovery.report
(** Open (creating the directory and an empty database if needed). The
    report describes the log replay: batches applied and skipped, bytes
    dropped from a bad tail and why. [policy] defaults to the
    [TSE_SYNC_POLICY] environment variable (same syntax as
    {!policy_of_string}; mirrors [DB_FULL_RECLASSIFY]) and otherwise to
    [Every_commit].

    @raise Failure if the snapshot itself is unreadable or corrupt (the
    snapshot is written atomically, so this means outside interference,
    not a crash), or if a structurally valid log batch contradicts the
    snapshot. *)

val db : t -> Database.t
val dir : t -> string

val seq : t -> int
(** Sequence number of the last appended batch. *)

val commit : t -> unit
(** Append everything buffered since the previous commit as one atomic
    batch; whether it is fsynced before returning is the sync policy's
    call (under [Group n] the commit completing the group flushes it).
    A commit with no changes writes nothing. *)

(** {2 Extension blobs}

    Upper layers persist state the store has no schema for (the view
    history, say) as opaque tagged blobs: {!stage_ext} stages a blob,
    the next {!commit} logs it (only when it differs from the last
    durable image, mirroring the schema diffing) in the same atomic
    batch as that commit's physical ops, and {!checkpoint} folds it
    into the snapshot. On {!open_dir} the last durable blob per tag is
    available through {!ext}. *)

val stage_ext : t -> tag:string -> string -> unit
(** Stage [blob] under [tag] for the next commit. [tag] must not be
    ["schema"]/["bases"] (the store's own) and must be free of spaces
    and newlines. @raise Invalid_argument otherwise. *)

val ext : t -> string -> string option
(** The staged blob for a tag, or failing that the last durable one. *)

(** {2 Evolution protocol records}

    A schema evolution is made crash-atomic with a two-record WAL unit
    plus a completion marker (see {!Tse_store.Wal.entry}): the caller
    logs intent ({!log_evolve_begin}: the encoded change list), then
    decision ({!log_evolve_commit}), then applies the evolution in
    memory and calls {!commit_evolve_done} so the physical effects and
    the [Evo_done] marker land in {e one} batch. Both protocol records
    are eagerly fsynced whatever the sync policy. Recovery
    ({!open_dir}'s report) surfaces committed-but-undone evolutions as
    [evo_pending] for the caller to roll forward; a begin with no
    commit marker is discarded. The call sites are guarded by the
    ["evolve.log.begin"] and ["evolve.log.commit"] failpoints. *)

val log_evolve_begin : t -> view:string -> string -> int
(** Flush any buffered work ({!commit}), then append + fsync the intent
    record. Returns the evolution id (the record's batch sequence
    number). *)

val log_evolve_commit : t -> eid:int -> view:string -> unit
(** Append + fsync the decision marker: the evolution will happen. *)

val commit_evolve_done : t -> eid:int -> unit
(** {!commit} everything the applied evolution buffered, with the
    [Evo_done ok=true] marker inside the same batch — the effects and
    the marker are atomic: recovery either sees both (skip) or neither
    (roll forward). *)

val log_evolve_abort : t -> eid:int -> unit
(** Durably abort a committed evolution whose roll-forward failed:
    discard everything buffered in memory (it is poisoned by the partial
    application) and append + fsync [Evo_done ok=false] alone. The
    handle should be reopened afterwards. *)

val sync : t -> unit
(** Explicit sync barrier: flush every unsynced commit with one write
    and one fsync. On return they are durable. No-op under
    [Every_commit] or when nothing is pending. *)

val policy : t -> sync_policy
val set_policy : t -> sync_policy -> unit
(** Forces a {!sync} barrier before switching, so no commit is ever
    governed by a policy weaker than the one it was made under. *)

val unsynced_commits : t -> int
(** Commits appended since the last sync barrier (0 under
    [Every_commit]). *)

val wal_stats : t -> Tse_store.Wal.stats
(** The log's amortization counters: fsyncs, bytes framed, batches per
    sync. *)

val checkpoint : t -> unit
(** {!commit}, then {!sync} (a checkpoint is always a barrier), then
    fold the whole state into a fresh snapshot (atomically: temp file,
    fsync, rename) and reset the log. A crash between the rename and
    the log reset is safe: replay skips batches the snapshot already
    covers. *)

val close : t -> unit
(** {!commit}, {!sync}, detach the observers and close the log. The
    value must not be used afterwards. *)

val abandon : t -> unit
(** Detach the observers and close the log {e without} committing or
    flushing anything buffered — dropping the handle exactly as a crash
    would have. For test harnesses after a simulated {!
    Tse_store.Failpoint.Crash} and for discarding a handle poisoned by a
    failed recovery roll-forward. Idempotent. *)
