(** The database kernel: one global schema, one object-slicing object
    model, one shared persistent object population (paper, Figure 6's
    "Global Schema Manager" layer).

    Membership semantics implemented here:
    - an object carries an explicit set of {e base} classes it was placed
      into (closed upward within the base hierarchy);
    - membership of every {e virtual} class is defined by its derivation
      formula (Section 3.2) and recomputed to a fixpoint whenever an
      object's base membership or attribute values change;
    - class extents are the materialized global extents, indexed per class
      for scans; [check] cross-validates extents, the object model and the
      derivation formulas. *)

type t
type cid = Tse_schema.Klass.cid

val create : unit -> t

val restore :
  heap:Tse_store.Heap.t ->
  graph:Tse_schema.Schema_graph.t ->
  bases:(Tse_store.Oid.t * cid list) list ->
  t
(** Reassemble a database from catalog parts: a loaded heap, a loaded
    schema graph (sharing the heap's OID generator) and the per-object
    explicit base memberships. The object model is rebuilt by scanning
    the heap; extents are re-derived from the restored memberships. *)

val graph : t -> Tse_schema.Schema_graph.t
val heap : t -> Tse_store.Heap.t
val model : t -> Tse_objmodel.Slicing.t
val stats : t -> Tse_store.Stats.t
val root : t -> cid

(** {2 Objects} *)

val create_object :
  ?init:(string * Tse_store.Value.t) list -> t -> cid -> Tse_store.Oid.t
(** Create a conceptual object as a member of the given {e base} class,
    assign the listed attributes, then derive its virtual-class
    memberships.
    @raise Invalid_argument if the class is virtual (update operators
    translate virtual-class creation into base-class creation). *)

val destroy_object : t -> Tse_store.Oid.t -> unit
val objects : t -> Tse_store.Oid.t list
val object_count : t -> int
val mem_object : t -> Tse_store.Oid.t -> bool

(** {2 Membership} *)

val add_base_membership : t -> Tse_store.Oid.t -> cid -> unit
(** Place the object into a base class (and, implicitly, its base
    ancestors), then reclassify. *)

val remove_base_membership : t -> Tse_store.Oid.t -> cid -> unit
(** Remove the object from a base class and that class's base descendants,
    then reclassify. *)

val base_membership : t -> Tse_store.Oid.t -> Tse_store.Oid.Set.t
val is_member : t -> Tse_store.Oid.t -> cid -> bool
val member_classes : t -> Tse_store.Oid.t -> cid list

val reclassify : t -> Tse_store.Oid.t -> unit
(** Recompute the object's virtual-class memberships to a fixpoint and
    synchronize implementation objects and extents. *)

val reclassify_all : t -> unit

val reclassify_many : t -> Tse_store.Oid.t list -> unit
(** Reclassify every object in the list, in list order.  Equivalent to
    [List.iter (reclassify t)] — and literally that loop below the
    parallel threshold, under the oracle, or with a single-domain pool.
    Above the threshold the per-object verdict rounds are evaluated in
    parallel across the global {!Tse_pool.Pool} (read-only phase) and
    integrated one object at a time on the calling domain (memo merges,
    model and extent mutation, events), preserving the sequential event
    order exactly. *)

val with_shared_read : t -> (unit -> 'a) -> 'a
(** Run [f] in shared-read mode: concurrent read-only evaluation from
    other domains is safe for its duration.  Warms every memoizing cache
    a read can touch (schema reachability, derivation order, Deps) and
    switches [resolve_prop] memoization to bypass.  The caller must not
    mutate the database, and must not return lazily-evaluated state,
    until the region ends. *)

(** {2 Incremental reclassification engine}

    [set_attr] consults a static dependency index ({!Tse_schema.Deps})
    to re-evaluate only the select predicates that can observe the
    written attribute; extents are maintained by per-class deltas rather
    than full sweeps. The pre-index full-fixpoint path is kept as a
    correctness oracle, selectable per database or via the
    [DB_FULL_RECLASSIFY=1] environment variable at creation time. *)

val reclassify_fuel : int
(** Extra fixpoint rounds granted after the first before the engine gives
    up on a nonmonotone derivation and calls the nonconvergence hook. *)

val full_reclassify : t -> bool
val set_full_reclassify : t -> bool -> unit
(** Switch between the incremental engine ([false], default) and the full
    fixpoint oracle ([true]). Switching invalidates all verdict caches,
    so the modes can be toggled mid-run for differential testing. *)

val formula_eval_count : t -> int
(** Running count of select-predicate evaluations performed during
    reclassification (both modes). The incremental engine's contract:
    writing an attribute no predicate depends on adds zero. *)

val set_nonconvergence_hook : t -> (Tse_store.Oid.t -> unit) -> unit
(** Called at most once per database with the first object whose fixpoint
    exhausted its fuel. Default prints a warning to [stderr]. *)

(** {2 Extents} *)

val extent : t -> cid -> Tse_store.Oid.Set.t
(** The global extent (paper, footnote 14: "extent" always means global
    extent). *)

val extent_list : t -> cid -> Tse_store.Oid.t list
val extent_size : t -> cid -> int

(** {2 Properties} *)

val get_prop : t -> Tse_store.Oid.t -> string -> Tse_store.Value.t
(** Read a property: a stored attribute slot, or a derived method
    evaluated on the fly.
    @raise Tse_schema.Expr.Unknown_property if undefined for the object.
    @raise Tse_schema.Expr.Type_error if the name is ambiguous for the
    object (unresolved multiple-inheritance conflict). *)

val set_attr : t -> Tse_store.Oid.t -> string -> Tse_store.Value.t -> unit
(** Write a stored attribute (type-checked against its declaration), then
    reclassify the object (its select-class memberships may change).
    @raise Tse_schema.Expr.Type_error on type mismatch or when the target
    is a method. *)

val env : t -> Tse_store.Oid.t -> Tse_schema.Expr.env
val eval : t -> Tse_store.Oid.t -> Tse_schema.Expr.t -> Tse_store.Value.t
val holds : t -> Tse_store.Oid.t -> Tse_schema.Expr.t -> bool
(** Predicate evaluation; unknown properties make the predicate [false]
    rather than raising (an object that lacks the attribute cannot satisfy
    a condition on it). *)

(** {2 Compiled predicate evaluation}

    The query engine and the reclassification engine share one compiled
    evaluation path: predicates are lowered once (constant folding,
    conjunct ordering, fast-path attribute getters bound against the
    current schema) and the resulting closure is reused per object. *)

val compile_stamp : t -> int
(** Validity stamp for anything compiled against this database's schema
    state. Strictly increases on every schema evolution (graph version)
    and on direct schema surgery / cache retirement ([reclassify_all]);
    callers caching compiled artifacts must discard them when the stamp
    they were built under no longer matches. *)

val compile_pred : t -> Tse_schema.Expr.t -> Tse_store.Oid.t -> bool
(** Compile a predicate into a per-object membership test with exactly
    the {!holds} semantics (evaluation errors absorbed into [false]).
    The closure reads live object state but binds schema facts at compile
    time — it must be discarded when {!compile_stamp} changes. *)

val compiled_binder : t -> Tse_store.Oid.t Tse_schema.Expr_compile.binder
(** The name binder {!compile_pred} uses (fast-path attribute getters,
    pre-resolved class membership tests); exposed so the query layer can
    compile value-context expressions against the same semantics. *)

(** {2 Change notifications}

    Observers for derived structures (indexes, caches). Events fire after
    the database state has changed. *)

type event =
  | Object_created of Tse_store.Oid.t
  | Object_destroyed of Tse_store.Oid.t
  | Attr_set of Tse_store.Oid.t * string * Tse_store.Value.t
      (** object, attribute, new value *)
  | Reclassified of Tse_store.Oid.t
  | Membership_delta of Tse_store.Oid.t * cid list * cid list
      (** object, classes gained, classes lost — fired after
          [Reclassified], only when the membership set actually changed.
          Derived structures (per-class indexes, extent observers) can
          maintain themselves from the delta instead of rescanning. *)
  | Bases_changed of Tse_store.Oid.t
      (** the object's explicit base-class membership set changed (fires
          on creation and on add/remove of a base membership) *)

val add_listener : t -> (event -> unit) -> unit

(** {2 Registration hooks} *)

val note_new_class : t -> cid -> unit
(** Tell the kernel a class was added to the graph (invalidates the cached
    derivation order and creates an empty extent). *)

val note_removed_class : t -> cid -> unit

val derivation_order : t -> cid list
(** Virtual classes ordered so every class follows its sources. *)

(** {2 Consistency oracle} *)

val check : t -> string list
(** Cross-validates: extent index vs object-model membership; derivation
    formulas vs actual virtual-class extents; the is-a extent-subset
    invariant; plus {!Tse_schema.Invariants.check} on the schema. Empty
    means consistent. *)

val check_exn : t -> unit

val pp_extents : Format.formatter -> t -> unit
