module Database = Tse_db.Database
module View_schema = Tse_views.View_schema
module History = Tse_views.History
module Closure = Tse_views.Closure
module Schema_graph = Tse_schema.Schema_graph

let src = Logs.Src.create "tse.tsem" ~doc:"Transparent Schema Evolution Manager"

module Log = (val Logs.src_log src : Logs.LOG)

type t = { db : Database.t; history : History.t }

let fp_change = "evolve.change"
let () = Tse_store.Failpoint.declare fp_change

let of_database ?history db =
  let history =
    match history with Some h -> h | None -> History.create ()
  in
  { db; history }

let create () = of_database (Database.create ())
let db t = t.db
let history t = t.history

let define_view t ~name ?(complete_closure = true) cids =
  let view = View_schema.make ~name ~version:0 (Database.graph t.db) cids in
  if complete_closure then ignore (Closure.complete t.db view);
  History.register t.history view;
  view

let define_view_by_names t ~name ?complete_closure names =
  let graph = Database.graph t.db in
  let cids =
    List.map (fun n -> (Schema_graph.find_by_name_exn graph n).Tse_schema.Klass.cid) names
  in
  define_view t ~name ?complete_closure cids

let current t name = History.current_exn t.history name

let evolve t ~view change =
  (* The whole evolution runs under the watchdog's budget clock
     (admission + translation + history swap) — W302 fires when the
     end-to-end latency blows TSE_EVOLVE_BUDGET_MS, which is what a
     caller blocked on [evolve] actually experiences. *)
  Tse_obs.Watchdog.time_evolution ~view @@ fun () ->
  let old_view = current t view in
  Log.info (fun m ->
      m "evolving view %s (v%d): %s" view old_view.View_schema.version
        (Change.to_string change));
  let classes_before = Schema_graph.size (Database.graph t.db) in
  Admission.admit t.db old_view change;
  let new_view =
    Tse_obs.Trace.with_span
      ~attrs:[ ("view", view); ("change", Change.to_string change) ]
      "evolve.change"
    @@ fun () ->
    Tse_store.Failpoint.hit fp_change;
    Translator.apply t.db old_view change
  in
  let registered = History.replace t.history new_view in
  Log.info (fun m ->
      m "view %s replaced by v%d (%d new global classes)" view
        registered.View_schema.version
        (Schema_graph.size (Database.graph t.db) - classes_before));
  registered

let evolve_many t ~view changes =
  List.iter (fun c -> ignore (evolve t ~view c)) changes;
  current t view

let all_views_fingerprints t ~except =
  History.view_names t.history
  |> List.filter (fun n -> not (String.equal n except))
  |> List.map (fun n -> (n, Verify.view_fingerprint t.db (current t n)))
