module Codec = Tse_store.Codec
module Failpoint = Tse_store.Failpoint
module Recovery = Tse_store.Recovery
module Database = Tse_db.Database
module Durable = Tse_db.Durable
module History = Tse_views.History
module History_codec = Tse_views.History_codec
module View_schema = Tse_views.View_schema
module Metrics = Tse_obs.Metrics
module Trace = Tse_obs.Trace

(* Crash-atomic transparent schema evolution over a durable database.

   The protocol is logical redo: an evolution is logged as intent
   (Evo_begin, carrying the encoded change list) then decision
   (Evo_commit), both fsynced, BEFORE any in-memory application; the
   application's physical effects land in one batch together with the
   Evo_done marker. Recovery therefore sees exactly one of

     - nothing, or a begin with no commit  -> the evolution never
       happened: roll back by ignoring it (none of its effects are in
       the log);
     - begin + commit, no done             -> the evolution was promised:
       roll it forward by replaying the decoded change list through
       [Tsem.evolve_many] on the recovered (pre-evolution) state;
     - begin + commit + done               -> the effects are already in
       the log: skip.

   A roll-forward that fails deterministically (the payload does not
   decode, or the change list is rejected against the recovered state)
   is durably neutralized with Evo_done ok=false and the database is
   reopened from disk — the aborted evolution's partial in-memory
   effects never reach the log, so the result is a clean pre-evolution
   state. *)

type t = {
  mutable d : Durable.t;
  mutable tsem : Tsem.t;
  dir : string;
  policy : Durable.sync_policy option;
}

type open_report = {
  recovery : Recovery.report;
  rolled_forward : (int * string) list;
  aborted : int list;
}

let views_tag = "views"
let m_rolled_forward = Metrics.counter "tse.evo_rolled_forward"
let m_aborted = Metrics.counter "tse.evo_aborted"

let stage_views d tsem =
  Durable.stage_ext d ~tag:views_tag (History_codec.encode (Tsem.history tsem))

let open_once ?policy ~dir () =
  let d, report = Durable.open_dir ?policy ~dir () in
  let history =
    match Durable.ext d views_tag with
    | Some blob -> History_codec.decode blob
    | None -> History.create ()
  in
  let tsem = Tsem.of_database ~history (Durable.db d) in
  (d, tsem, report)

(* Replay one committed-but-unapplied evolution on the recovered state.
   [Failpoint.Crash] escapes (a crash during recovery is a crash); any
   other failure is deterministic — the same state fed the same changes
   — and reported for durable abortion. *)
let roll_forward d tsem (p : Recovery.pending_evolution) =
  Trace.with_span
    ~attrs:[ ("eid", string_of_int p.eid); ("view", p.view) ]
    "recovery.roll_forward"
  @@ fun () ->
  match Change_codec.decode p.payload with
  | exception Codec.Corrupt (what, _) ->
    Error (Printf.sprintf "undecodable evolution payload: %s" what)
  | changes -> (
    match Tsem.evolve_many tsem ~view:p.view changes with
    | _new_view ->
      stage_views d tsem;
      Durable.commit_evolve_done d ~eid:p.eid;
      Ok ()
    | exception (Failpoint.Crash _ as e) -> raise e
    | exception Change.Rejected msg -> Error msg
    | exception e -> Error (Printexc.to_string e))

let open_dir ?policy ~dir () =
  let rolled_forward = ref [] in
  let aborted = ref [] in
  (* each iteration durably resolves at least one pending evolution
     (done ok=true or ok=false), so this terminates; the fuel is a
     safety net against protocol bugs, not a real bound *)
  let rec go fuel =
    if fuel = 0 then
      failwith "Durable_tse.open_dir: recovery did not converge";
    let d, tsem, report = open_once ?policy ~dir () in
    let rec resolve = function
      | [] -> (d, tsem, report)
      | p :: rest -> (
        match roll_forward d tsem p with
        | Ok () ->
          Metrics.incr m_rolled_forward;
          rolled_forward :=
            (p.Recovery.eid, p.Recovery.view) :: !rolled_forward;
          resolve rest
        | Error msg ->
          Tse_obs.Log.warn "tse" "evolution %d on %s aborted at recovery: %s"
            p.Recovery.eid p.Recovery.view msg;
          Metrics.incr m_aborted;
          aborted := p.Recovery.eid :: !aborted;
          (* the failed application poisoned the in-memory state: durably
             neutralize the intent, drop the handle, reopen from disk *)
          Durable.log_evolve_abort d ~eid:p.Recovery.eid;
          Durable.abandon d;
          go (fuel - 1)
        | exception (Failpoint.Crash _ as e) ->
          (* simulated process death mid-recovery *)
          Durable.abandon d;
          raise e)
    in
    resolve report.Recovery.evo_pending
  in
  let d, tsem, recovery = go 1000 in
  ( { d; tsem; dir; policy },
    {
      recovery;
      rolled_forward = List.rev !rolled_forward;
      aborted = List.rev !aborted;
    } )

let db t = Durable.db t.d
let tsem t = t.tsem
let durable t = t.d
let dir t = t.dir
let history t = Tsem.history t.tsem
let current t view = Tsem.current t.tsem view

let reopen t =
  let fresh, _report = open_dir ?policy:t.policy ~dir:t.dir () in
  t.d <- fresh.d;
  t.tsem <- fresh.tsem

let define_view_by_names t ~name ?complete_closure names =
  let v = Tsem.define_view_by_names t.tsem ~name ?complete_closure names in
  stage_views t.d t.tsem;
  Durable.commit t.d;
  v

let evolve_many t ~view changes =
  match changes with
  | [] -> Ok (Tsem.current t.tsem view)
  | _ -> (
    (* cheap precondition: an unknown view must not burn a begin/commit
       pair only to be aborted at the forced reopen *)
    match History.current (Tsem.history t.tsem) view with
    | None -> Error (Printf.sprintf "no view named %s" view)
    | Some _ -> (
      let payload = Change_codec.encode changes in
      let eid = Durable.log_evolve_begin t.d ~view payload in
      Durable.log_evolve_commit t.d ~eid ~view;
      (* decision is durable: from here the evolution either completes in
         this process or is rolled forward by the next open *)
      match Tsem.evolve_many t.tsem ~view changes with
      | new_view ->
        stage_views t.d t.tsem;
        Durable.commit_evolve_done t.d ~eid;
        Ok new_view
      | exception (Failpoint.Crash _ as e) -> raise e
      | exception e ->
        let msg =
          match e with
          | Change.Rejected m -> m
          | e -> Printexc.to_string e
        in
        (* the half-applied change list poisoned the in-memory state:
           recover from disk. The committed intent is retried there on
           clean state; a deterministic rejection fails again and is
           durably aborted, leaving the pre-evolution state. *)
        Durable.abandon t.d;
        reopen t;
        Error msg))

let evolve t ~view change = evolve_many t ~view [ change ]

let commit t = Durable.commit t.d
let sync t = Durable.sync t.d
let checkpoint t = Durable.checkpoint t.d

let close t =
  stage_views t.d t.tsem;
  Durable.close t.d

let abandon t = Durable.abandon t.d
