(** Crash-atomic transparent schema evolution: {!Tsem} over a
    {!Tse_db.Durable} database, with every evolution WAL-logged as a
    two-record unit (intent + decision) before it is applied, and its
    effects committed atomically with a completion marker.

    The guarantee: whatever instant the process dies at — before the
    begin record, between begin and commit, during any evolve phase
    (change/derive/classify/integrate/reclassify), or mid-write of the
    effects batch — {!open_dir} recovers to {e exactly} the
    pre-evolution or the post-evolution view version, never a hybrid.
    Committed-but-unapplied evolutions are rolled forward by replaying
    their decoded change list through {!Tsem.evolve_many}; a begin with
    no commit marker (including a torn, truncated one) is rolled back by
    discarding it. A roll-forward that fails deterministically is
    durably aborted ([Evo_done ok=false]) and leaves the pre-evolution
    state. *)

type t

type open_report = {
  recovery : Tse_store.Recovery.report;
  rolled_forward : (int * string) list;
      (** evolutions replayed at this open: [(eid, view)], log order *)
  aborted : int list;
      (** committed evolutions durably neutralized because their
          roll-forward failed (undecodable payload, deterministic
          rejection) *)
}

val open_dir :
  ?policy:Tse_db.Durable.sync_policy -> dir:string -> unit -> t * open_report
(** Open (or create) the durable database, roll pending evolutions
    forward, and wrap it in a {!Tsem} whose view history is restored
    from the durable ["views"] extension blob. *)

val db : t -> Tse_db.Database.t
val tsem : t -> Tsem.t
val durable : t -> Tse_db.Durable.t
val dir : t -> string
val history : t -> Tse_views.History.t

val current : t -> string -> Tse_views.View_schema.t
(** @raise Invalid_argument for an unknown view. *)

val define_view_by_names :
  t ->
  name:string ->
  ?complete_closure:bool ->
  string list ->
  Tse_views.View_schema.t
(** Define version 0 of a view and persist it (history blob + schema)
    in one commit. *)

val evolve_many :
  t -> view:string -> Change.t list -> (Tse_views.View_schema.t, string) result
(** Evolve a view by a change list, atomically: log intent + decision
    (each fsynced), apply in memory, then commit the effects together
    with the completion marker. [Error msg] means the list was rejected;
    the database has been re-opened from disk and is in the
    pre-evolution state (the whole list is all-or-nothing, unlike
    {!Tsem.evolve_many} which applies a prefix).

    A {!Tse_store.Failpoint.Crash} escapes untouched — the harness that
    armed it must {!abandon} the handle and {!open_dir} again, exactly
    like a process restart. *)

val evolve :
  t -> view:string -> Change.t -> (Tse_views.View_schema.t, string) result

val commit : t -> unit
(** Persist buffered object/data traffic (see {!Tse_db.Durable.commit}). *)

val sync : t -> unit
val checkpoint : t -> unit

val close : t -> unit

val abandon : t -> unit
(** Drop the handle without flushing anything — as a crash would. *)
