module Codec = Tse_store.Codec
module Value = Tse_store.Value
module Expr = Tse_schema.Expr

(* Binary codec for [Change.t] lists — the payload of a WAL [Evo_begin]
   record. Reuses the primitive codec plus the schema layer's value and
   expression encodings, so every constructor round-trips exactly. *)

let add_opt buf = function
  | None -> Buffer.add_char buf '0'
  | Some s ->
    Buffer.add_char buf '1';
    Codec.add_str buf s

let read_opt s pos =
  if pos >= String.length s then Codec.fail_at pos "eof in option";
  match s.[pos] with
  | '0' -> (None, pos + 1)
  | '1' ->
    let v, pos = Codec.read_str s (pos + 1) in
    (Some v, pos)
  | c -> Codec.fail_at pos (Printf.sprintf "bad option tag %C" c)

let add_attr_def buf (d : Change.attr_def) =
  Codec.add_str buf d.attr_name;
  Value.encode_ty buf d.ty;
  Value.encode buf d.default;
  Buffer.add_char buf (if d.required then '1' else '0')

let read_attr_def s pos =
  let attr_name, pos = Codec.read_str s pos in
  let ty, pos = Value.decode_ty s pos in
  let default, pos = Value.decode s pos in
  if pos >= String.length s then Codec.fail_at pos "eof in attr_def";
  let required =
    match s.[pos] with
    | '1' -> true
    | '0' -> false
    | c -> Codec.fail_at pos (Printf.sprintf "bad required flag %C" c)
  in
  ({ Change.attr_name; ty; default; required }, pos + 1)

let add_change buf (c : Change.t) =
  match c with
  | Add_attribute { cls; def } ->
    Buffer.add_char buf 'a';
    Codec.add_str buf cls;
    add_attr_def buf def
  | Delete_attribute { cls; attr_name } ->
    Buffer.add_char buf 'd';
    Codec.add_str buf cls;
    Codec.add_str buf attr_name
  | Add_method { cls; method_name; body } ->
    Buffer.add_char buf 'm';
    Codec.add_str buf cls;
    Codec.add_str buf method_name;
    Expr.encode buf body
  | Delete_method { cls; method_name } ->
    Buffer.add_char buf 'n';
    Codec.add_str buf cls;
    Codec.add_str buf method_name
  | Add_edge { sup; sub } ->
    Buffer.add_char buf 'e';
    Codec.add_str buf sup;
    Codec.add_str buf sub
  | Delete_edge { sup; sub; connected_to } ->
    Buffer.add_char buf 'f';
    Codec.add_str buf sup;
    Codec.add_str buf sub;
    add_opt buf connected_to
  | Add_class { cls; connected_to } ->
    Buffer.add_char buf 'c';
    Codec.add_str buf cls;
    add_opt buf connected_to
  | Delete_class { cls } ->
    Buffer.add_char buf 'x';
    Codec.add_str buf cls
  | Insert_class { cls; sup; sub } ->
    Buffer.add_char buf 'i';
    Codec.add_str buf cls;
    Codec.add_str buf sup;
    Codec.add_str buf sub
  | Delete_class_2 { cls } ->
    Buffer.add_char buf 'y';
    Codec.add_str buf cls
  | Rename_class { old_name; new_name } ->
    Buffer.add_char buf 'r';
    Codec.add_str buf old_name;
    Codec.add_str buf new_name
  | Partition_class { cls; predicate; into_true; into_false } ->
    Buffer.add_char buf 'p';
    Codec.add_str buf cls;
    Expr.encode buf predicate;
    Codec.add_str buf into_true;
    Codec.add_str buf into_false
  | Coalesce_classes { a; b; as_name } ->
    Buffer.add_char buf 'o';
    Codec.add_str buf a;
    Codec.add_str buf b;
    Codec.add_str buf as_name

let read_change s pos =
  if pos >= String.length s then Codec.fail_at pos "eof in change";
  let tag = s.[pos] in
  let pos = pos + 1 in
  match tag with
  | 'a' ->
    let cls, pos = Codec.read_str s pos in
    let def, pos = read_attr_def s pos in
    (Change.Add_attribute { cls; def }, pos)
  | 'd' ->
    let cls, pos = Codec.read_str s pos in
    let attr_name, pos = Codec.read_str s pos in
    (Change.Delete_attribute { cls; attr_name }, pos)
  | 'm' ->
    let cls, pos = Codec.read_str s pos in
    let method_name, pos = Codec.read_str s pos in
    let body, pos = Expr.decode s pos in
    (Change.Add_method { cls; method_name; body }, pos)
  | 'n' ->
    let cls, pos = Codec.read_str s pos in
    let method_name, pos = Codec.read_str s pos in
    (Change.Delete_method { cls; method_name }, pos)
  | 'e' ->
    let sup, pos = Codec.read_str s pos in
    let sub, pos = Codec.read_str s pos in
    (Change.Add_edge { sup; sub }, pos)
  | 'f' ->
    let sup, pos = Codec.read_str s pos in
    let sub, pos = Codec.read_str s pos in
    let connected_to, pos = read_opt s pos in
    (Change.Delete_edge { sup; sub; connected_to }, pos)
  | 'c' ->
    let cls, pos = Codec.read_str s pos in
    let connected_to, pos = read_opt s pos in
    (Change.Add_class { cls; connected_to }, pos)
  | 'x' ->
    let cls, pos = Codec.read_str s pos in
    (Change.Delete_class { cls }, pos)
  | 'i' ->
    let cls, pos = Codec.read_str s pos in
    let sup, pos = Codec.read_str s pos in
    let sub, pos = Codec.read_str s pos in
    (Change.Insert_class { cls; sup; sub }, pos)
  | 'y' ->
    let cls, pos = Codec.read_str s pos in
    (Change.Delete_class_2 { cls }, pos)
  | 'r' ->
    let old_name, pos = Codec.read_str s pos in
    let new_name, pos = Codec.read_str s pos in
    (Change.Rename_class { old_name; new_name }, pos)
  | 'p' ->
    let cls, pos = Codec.read_str s pos in
    let predicate, pos = Expr.decode s pos in
    let into_true, pos = Codec.read_str s pos in
    let into_false, pos = Codec.read_str s pos in
    (Change.Partition_class { cls; predicate; into_true; into_false }, pos)
  | 'o' ->
    let a, pos = Codec.read_str s pos in
    let b, pos = Codec.read_str s pos in
    let as_name, pos = Codec.read_str s pos in
    (Change.Coalesce_classes { a; b; as_name }, pos)
  | c -> Codec.fail_at (pos - 1) (Printf.sprintf "bad change tag %C" c)

let encode changes =
  let buf = Buffer.create 128 in
  Codec.add_list buf add_change changes;
  Buffer.contents buf

let decode s =
  (* [Expr.decode] raises [Failure] on malformed input; normalize to the
     codec's exception so callers have one error to catch *)
  match
    let changes, pos = Codec.read_list read_change s 0 in
    if pos <> String.length s then Codec.fail_at pos "trailing change bytes";
    changes
  with
  | changes -> changes
  | exception Failure msg -> raise (Codec.Corrupt (msg, 0))
