(** Machine-checkable versions of the Section 6 propositions.

    {b Proposition A} (per operator): the TSE translation produces a view
    S'' equal to the view S' that direct modification would have produced
    — same classes (by view-local name), same types, same extents, same
    generalization edges.

    {b Proposition B}: no {e other} view is affected by a TSE change — its
    fingerprint (types + extents + edges, under view-local names) is
    identical before and after.

    {b Theorem 1}: every class of a view whose classes derive (directly or
    transitively) from base classes through the object algebra is
    updatable — checked by walking the derivation DAG and marking, exactly
    as the proof does. *)

val class_fingerprint :
  Tse_db.Database.t -> name:string -> Tse_schema.Klass.cid -> string
(** [name], type signature and extent of one class. *)

val view_fingerprint : Tse_db.Database.t -> Tse_views.View_schema.t -> string
(** Canonical, order-independent dump of everything a view user can
    observe: per-class fingerprints plus the generated hierarchy. *)

val diff_views :
  (Tse_db.Database.t * Tse_views.View_schema.t) ->
  (Tse_db.Database.t * Tse_views.View_schema.t) ->
  string list
(** Human-readable differences between two views (possibly over different
    databases); empty when observationally equal. *)

val updatable_classes :
  Tse_db.Database.t -> Tse_store.Oid.Set.t
(** The fixpoint marking of Theorem 1's proof: base classes are updatable;
    a virtual class is updatable once all of its sources are. Returns the
    set of updatable class ids. *)

val all_updatable : Tse_db.Database.t -> Tse_views.View_schema.t -> bool

val db_fingerprint :
  ?history:Tse_views.History.t -> Tse_db.Database.t -> string
(** Structural fingerprint of the whole database — classes (type
    signatures, inheritance and extents, all by name), objects (tags and
    slot values) and, when given, every view version in [history].
    Deliberately free of property uids and any process-local state: a
    crashed-and-recovered database fingerprints identically to a
    never-crashed twin that executed the same logical operations. The
    crash matrix and the soak harness's twin check are built on this. *)
