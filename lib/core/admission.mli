(** The evolution admission gate: static analysis of a schema-change
    request {e before} the derive/classify/integrate pipeline runs.

    A change is checked against the pre-change schema: an [Add_method]
    body is typechecked at the class it is being added to, a
    [Partition_class] predicate is typechecked as a select predicate at
    the class being partitioned, and an [Add_attribute] default is
    checked for conformance with the declared type ([E108]). Changes
    that introduce no new expression are admitted unconditionally (the
    translator's own preconditions still apply).

    The policy comes from the [TSE_ANALYZE] environment variable:
    - ["enforce"] (the default, also any unrecognized value): a change
      with [Error]-severity diagnostics raises {!Change.Rejected} with
      the rendered diagnostics;
    - ["warn"]: diagnostics are logged through [Tse_obs.Log] and the
      change proceeds — the escape hatch;
    - ["off"] (also ["0"], ["false"]): the gate is skipped entirely.

    Every gate run is wrapped in an [evolve.analyze] trace span and
    feeds the [analysis.*] counters: [gate_checks], [gate_errors],
    [gate_warnings], [gate_rejections] and one
    [capacity_{augmenting,preserving,reducing}] counter per admitted
    change (the paper Section 3 capacity classification of the change
    itself). *)

type policy = Enforce | Warn | Off

val policy_of_string : string -> policy option

val policy : unit -> policy
(** The active policy: the last {!set_policy}, else [TSE_ANALYZE], else
    [Enforce]. *)

val set_policy : policy -> unit
(** Programmatic override (tests, benchmarks). *)

val capacity_of_change : Change.t -> Tse_analysis.Analysis.capacity
(** Section 3 capacity classification of a change as seen from the
    requesting view: adding stored attributes or classes augments;
    deletions reduce (view capacity — globally nothing is destroyed);
    everything else preserves. *)

val check :
  Tse_db.Database.t ->
  Tse_views.View_schema.t ->
  Change.t ->
  Tse_analysis.Diagnostic.t list
(** The diagnostics the gate would act on, policy-independent. A class
    name that does not resolve in the view yields no diagnostics — the
    translator rejects it with its own precondition message. *)

val admit : Tse_db.Database.t -> Tse_views.View_schema.t -> Change.t -> unit
(** Run the gate under the active policy.
    @raise Change.Rejected under [Enforce] when {!check} reports
    errors. *)
