(** Binary codec for {!Change.t} lists — the payload carried by a WAL
    [Evo_begin] record, so a committed-but-unapplied evolution can be
    replayed through {!Tsem.evolve_many} at recovery. Built on the
    store's primitive codec plus {!Tse_store.Value} and
    {!Tse_schema.Expr} encodings; every constructor round-trips. *)

val encode : Change.t list -> string

val decode : string -> Change.t list
(** @raise Tse_store.Codec.Corrupt on malformed or trailing bytes. *)

val add_change : Buffer.t -> Change.t -> unit
val read_change : string -> int -> Change.t * int
