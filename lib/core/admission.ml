module Database = Tse_db.Database
module View_schema = Tse_views.View_schema
module Diagnostic = Tse_analysis.Diagnostic
module Typecheck = Tse_analysis.Typecheck
module Analysis = Tse_analysis.Analysis
module Metrics = Tse_obs.Metrics

type policy = Enforce | Warn | Off

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "enforce" | "on" | "1" | "true" -> Some Enforce
  | "warn" -> Some Warn
  | "off" | "0" | "false" -> Some Off
  | _ -> None

let override = ref None

let policy () =
  match !override with
  | Some p -> p
  | None -> (
      match Sys.getenv_opt "TSE_ANALYZE" with
      | None -> Enforce
      | Some s -> Option.value ~default:Enforce (policy_of_string s))

let set_policy p = override := Some p

let capacity_of_change change =
  match change with
  | Change.Add_attribute _ | Change.Add_class _ | Change.Insert_class _ ->
      Analysis.Augmenting
  | Change.Delete_attribute _ | Change.Delete_method _ | Change.Delete_edge _
  | Change.Delete_class _ | Change.Delete_class_2 _ ->
      Analysis.Reducing
  | Change.Add_method _ | Change.Add_edge _ | Change.Rename_class _
  | Change.Partition_class _ | Change.Coalesce_classes _ ->
      Analysis.Preserving

let check db view change =
  let graph = Database.graph db in
  let resolve cls = View_schema.cid_of view cls in
  match change with
  | Change.Add_method { cls; method_name; body } -> (
      match resolve cls with
      | None -> []
      | Some cid -> Typecheck.check_method graph cid ~cls ~prop:method_name body
      )
  | Change.Partition_class { cls; predicate; into_true; into_false } -> (
      match resolve cls with
      | None -> []
      | Some cid ->
          let typing =
            Typecheck.check_predicate graph cid ~cls ~prop:"partition"
              predicate
          in
          (* lens verdict on the would-be select halves: a constant
             predicate makes one partition a statically empty view no
             update could ever land in (Lens E123) *)
          let empty_half name pred =
            match Typecheck.const_eval pred with
            | Some (Tse_store.Value.Bool false) | Some Tse_store.Value.Null ->
                [
                  Diagnostic.makef ~cls:name Diagnostic.Error ~code:"E123"
                    "partition predicate is constantly false: %s would be a \
                     statically empty view (no create/add/set can ever land \
                     in it)"
                    name;
                ]
            | _ -> []
          in
          typing
          @ empty_half into_true predicate
          @ empty_half into_false (Tse_schema.Expr.Not predicate))
  | Change.Coalesce_classes { a; b = _; as_name } ->
      [
        Diagnostic.makef ~cls:as_name Diagnostic.Warning ~code:"W212"
          "create/add through the coalesced union targets its first operand \
           %s (Section 6.5.4); membership in %s is the side-condition"
          a a;
      ]
  | Change.Add_attribute { cls; def } ->
      if Tse_store.Value.conforms def.Change.default def.Change.ty then []
      else
        [
          Diagnostic.makef ~cls ~prop:def.Change.attr_name Diagnostic.Error
            ~code:"E108" "default value %s does not conform to declared type %s"
            (Tse_store.Value.to_string def.Change.default)
            (Tse_store.Value.ty_to_string def.Change.ty);
        ]
  | _ -> []

let render diags =
  String.concat "; "
    (List.map (fun d -> Format.asprintf "%a" Diagnostic.pp d) diags)

let admit db view change =
  match policy () with
  | Off -> ()
  | (Enforce | Warn) as pol ->
      Tse_obs.Trace.with_span
        ~attrs:[ ("change", Change.to_string change) ]
        "evolve.analyze"
      @@ fun () ->
      Metrics.incr (Metrics.counter "analysis.gate_checks");
      Metrics.incr
        (Metrics.counter
           (Printf.sprintf "analysis.capacity_%s"
              (Analysis.capacity_to_string (capacity_of_change change))));
      let diags = check db view change in
      let errs = List.filter Diagnostic.is_error diags in
      let warns = List.filter Diagnostic.is_warning diags in
      Metrics.add (Metrics.counter "analysis.gate_errors") (List.length errs);
      Metrics.add (Metrics.counter "analysis.gate_warnings")
        (List.length warns);
      match (pol, errs) with
      | Enforce, _ :: _ ->
          Metrics.incr (Metrics.counter "analysis.gate_rejections");
          raise
            (Change.Rejected
               (Printf.sprintf "static analysis rejected %s: %s"
                  (Change.to_string change) (render errs)))
      | _ ->
          List.iter
            (fun d ->
              Tse_obs.Log.warn "analysis" "%s"
                (Format.asprintf "%a" Diagnostic.pp d))
            diags
