(** The Transparent Schema Evolution Manager (paper, Section 5, Figure 6):
    the control module tying the pipeline together.

    On a schema-change request against a view it (1) calls the TSE
    Translator, which executes the extended object algebra, (2) lets the
    Classifier integrate the new virtual classes into the global schema
    (done inside the algebra operators here), (3) has the View Manager
    generate the new view schema, and (4) registers it in the View Schema
    History, replacing the user's current version. *)

type t

val create : unit -> t

val of_database : ?history:Tse_views.History.t -> Tse_db.Database.t -> t
(** Wrap an existing database; [history] (default empty) seeds the view
    schema history — recovery uses it to resume an evolved database. *)

val db : t -> Tse_db.Database.t
val history : t -> Tse_views.History.t

val define_view :
  t -> name:string -> ?complete_closure:bool -> Tse_schema.Klass.cid list -> Tse_views.View_schema.t
(** Create version 0 of a view over the given classes. With
    [complete_closure] (default true), classes required for type closure
    are pulled in automatically (Section 5's View Manager). *)

val define_view_by_names :
  t -> name:string -> ?complete_closure:bool -> string list -> Tse_views.View_schema.t

val current : t -> string -> Tse_views.View_schema.t
(** @raise Invalid_argument for an unknown view. *)

val evolve : t -> view:string -> Change.t -> Tse_views.View_schema.t
(** The transparent schema change: translate, classify, regenerate,
    register — the user's view is replaced by the new version; every older
    version (and every other view) remains intact and operational.
    @raise Change.Rejected when the change's preconditions fail. *)

val evolve_many : t -> view:string -> Change.t list -> Tse_views.View_schema.t

val all_views_fingerprints : t -> except:string -> (string * string) list
(** Fingerprints of the current version of every view other than [except]
    — the Proposition B instrumentation. *)
