module Oid = Tse_store.Oid
module Klass = Tse_schema.Klass
module Schema_graph = Tse_schema.Schema_graph
module Type_info = Tse_schema.Type_info
module Database = Tse_db.Database
module View_schema = Tse_views.View_schema
module Generation = Tse_views.Generation

let class_fingerprint db ~name cid =
  let graph = Database.graph db in
  let extent =
    Database.extent_list db cid |> List.map Oid.to_string |> String.concat ","
  in
  Printf.sprintf "%s :: type{%s} extent{%s}" name
    (Type_info.type_signature graph cid)
    extent

let view_fingerprint db view =
  let graph = Database.graph db in
  let classes =
    View_schema.classes view
    |> List.map (fun cid ->
           let name =
             match View_schema.local_name view cid with
             | Some n -> n
             | None -> Schema_graph.name_of graph cid
           in
           class_fingerprint db ~name cid)
    |> List.sort String.compare
  in
  String.concat "\n" classes
  ^ "\nedges: "
  ^ Generation.edges_signature graph view

let diff_views (db1, view1) (db2, view2) =
  let index db view =
    List.filter_map
      (fun cid ->
        Option.map
          (fun name -> (name, class_fingerprint db ~name cid))
          (View_schema.local_name view cid))
      (View_schema.classes view)
  in
  let i1 = index db1 view1 and i2 = index db2 view2 in
  let problems = ref [] in
  let add fmt = Format.kasprintf (fun s -> problems := !problems @ [ s ]) fmt in
  List.iter
    (fun (name, fp1) ->
      match List.assoc_opt name i2 with
      | None -> add "class %s only in first view" name
      | Some fp2 ->
        if not (String.equal fp1 fp2) then
          add "class %s differs:\n  S'': %s\n  S' : %s" name fp1 fp2)
    i1;
  List.iter
    (fun (name, _) ->
      if List.assoc_opt name i1 = None then add "class %s only in second view" name)
    i2;
  let e1 = Generation.edges_signature (Database.graph db1) view1 in
  let e2 = Generation.edges_signature (Database.graph db2) view2 in
  if not (String.equal e1 e2) then
    add "hierarchies differ:\n  S'': %s\n  S' : %s" e1 e2;
  !problems

let updatable_classes db =
  let graph = Database.graph db in
  let classes = Schema_graph.classes graph in
  let marked = ref Oid.Set.empty in
  List.iter
    (fun (k : Klass.t) ->
      if Klass.is_base k then marked := Oid.Set.add k.cid !marked)
    classes;
  let progress = ref true in
  while !progress do
    progress := false;
    List.iter
      (fun (k : Klass.t) ->
        if
          (not (Oid.Set.mem k.cid !marked))
          && List.for_all (fun s -> Oid.Set.mem s !marked) (Klass.sources k)
        then begin
          marked := Oid.Set.add k.cid !marked;
          progress := true
        end)
      classes
  done;
  !marked

let all_updatable db view =
  let marked = updatable_classes db in
  List.for_all (fun cid -> Oid.Set.mem cid marked) (View_schema.classes view)

(* Whole-database structural fingerprint: everything observable through
   names — classes (type signature, inheritance by name, sorted extent),
   objects (tag + sorted slots) and, when given, the view history. No
   property uids or other process-local identifiers appear, so the
   fingerprint is stable across a crash/recover cycle and comparable
   between a recovered database and a never-crashed twin. *)
let db_fingerprint ?history db =
  let graph = Database.graph db in
  let heap = Database.heap db in
  let buf = Buffer.create 1024 in
  Schema_graph.classes graph
  |> List.map (fun (k : Klass.t) ->
         let name = Schema_graph.name_of graph k.cid in
         let supers =
           List.map (Schema_graph.name_of graph) k.supers
           |> List.sort String.compare |> String.concat ","
         in
         Printf.sprintf "%s supers{%s} %s"
           (class_fingerprint db ~name k.cid)
           supers
           (if Klass.is_base k then "base" else "virtual"))
  |> List.sort String.compare
  |> List.iter (fun line ->
         Buffer.add_string buf line;
         Buffer.add_char buf '\n');
  Database.objects db |> List.sort Oid.compare
  |> List.iter (fun o ->
         let slots =
           Tse_store.Heap.slots heap o
           |> List.map (fun (n, v) ->
                  Printf.sprintf "%s=%s" n (Tse_store.Value.to_string v))
           |> List.sort String.compare |> String.concat ","
         in
         Buffer.add_string buf
           (Printf.sprintf "obj %s tag{%s} slots{%s}\n" (Oid.to_string o)
              (Tse_store.Heap.tag_of heap o)
              slots));
  (match history with
  | None -> ()
  | Some h ->
    List.iter
      (fun name ->
        List.iter
          (fun (v : View_schema.t) ->
            let members =
              List.map
                (fun (cid, lname) ->
                  Printf.sprintf "%s->%s"
                    (Schema_graph.name_of graph cid)
                    lname)
                v.members
              |> List.sort String.compare |> String.concat ","
            in
            Buffer.add_string buf
              (Printf.sprintf "view %s v%d {%s}\n" name v.version members))
          (Tse_views.History.versions h name))
      (Tse_views.History.view_names h));
  Buffer.contents buf
