module Oid = Tse_store.Oid
module Value = Tse_store.Value
module Prop = Tse_schema.Prop
module Klass = Tse_schema.Klass
module Expr = Tse_schema.Expr
module Schema_graph = Tse_schema.Schema_graph
module Type_info = Tse_schema.Type_info
module Database = Tse_db.Database
module Ops = Tse_algebra.Ops
module View_schema = Tse_views.View_schema
module Generation = Tse_views.Generation

type cid = Klass.cid

let rejected fmt = Format.kasprintf (fun s -> raise (Change.Rejected s)) fmt

let resolve view name =
  match View_schema.cid_of view name with
  | Some cid -> cid
  | None -> rejected "class %s is not in view %s" name view.View_schema.view_name

(* ------------------------------------------------------------------ *)
(* Mapping old view classes to their primed replacements               *)
(* ------------------------------------------------------------------ *)

type ctx = {
  db : Database.t;
  view : View_schema.t;
  mapping : (cid * cid) list ref;  (* old -> new, insertion ordered *)
}

let map_add ctx ~old_cid ~new_cid =
  ctx.mapping := !(ctx.mapping) @ [ (old_cid, new_cid) ]

let mapped ctx cid =
  List.find_map
    (fun (o, n) -> if Oid.equal o cid then Some n else None)
    !(ctx.mapping)

let map_or_id ctx cid = Option.value (mapped ctx cid) ~default:cid

(* Replacement is-a edges between primed classes: mirror every old view
   edge whose endpoints changed, so that the generated view hierarchy of
   the new view equals the old one (Proposition A's E'' = E). The deleted
   edge, when the change is delete_edge, is excluded by the caller. *)
let stitch ?(except = []) ctx =
  let graph = Database.graph ctx.db in
  let edges = Generation.edges graph ctx.view in
  List.iter
    (fun (sup, sub) ->
      let skip =
        List.exists
          (fun (s, b) -> Oid.equal s sup && Oid.equal b sub)
          except
      in
      if not skip then begin
        let sup' = map_or_id ctx sup and sub' = map_or_id ctx sub in
        if
          (not (Oid.equal sup' sup) || not (Oid.equal sub' sub))
          && (not (Schema_graph.is_ancestor_or_self graph ~anc:sup' ~desc:sub'))
          && not (Schema_graph.is_ancestor_or_self graph ~anc:sub' ~desc:sup')
        then Schema_graph.add_edge graph ~sup:sup' ~sub:sub'
      end)
    edges

(* After restructuring, recompute memberships of every object that could
   be affected (members of any replaced class). *)
let refresh_members ctx =
  let objs =
    List.fold_left
      (fun acc (old_cid, _) -> Oid.Set.union acc (Database.extent ctx.db old_cid))
      Oid.Set.empty !(ctx.mapping)
  in
  (* bulk entry point: fans out across the domain pool above the
     parallel threshold, and is exactly this Set.iter below it *)
  Database.reclassify_many ctx.db (Oid.Set.elements objs)

(* The replacement view: every mapped class substituted (keeping its
   view-local name — the renaming step of Section 6.1.3). *)
let finish ctx =
  List.fold_left
    (fun view (old_cid, new_cid) ->
      View_schema.substitute view ~old_cid ~new_cid)
    (View_schema.copy ctx.view)
    !(ctx.mapping)

let make_ctx db view = { db; view; mapping = ref [] }

(* ------------------------------------------------------------------ *)
(* 6.1 / 6.3: add_attribute, add_method                                 *)
(* ------------------------------------------------------------------ *)

(* Shared skeleton: refine C with the new property, then propagate to the
   subclasses within the view via inheritance-refine, stopping where a
   local same-named property overrides (Section 6.1.2). *)
let add_property db view ~cls_name ~prop_name ~mk_prop =
  let ctx = make_ctx db view in
  let graph = Database.graph db in
  let cls = resolve view cls_name in
  if Type_info.has_prop graph cls prop_name then
    rejected "%s already defined for %s" prop_name cls_name;
  let c' =
    Ops.refine db ~name:(Ops.primed_name db (Schema_graph.name_of graph cls))
      ~props:[ mk_prop () ] ~src:cls
  in
  map_add ctx ~old_cid:cls ~new_cid:c';
  let rec walk tmp =
    List.iter
      (fun sub ->
        if mapped ctx sub = None then
          if Type_info.has_prop graph sub prop_name then
            (* a same-named property is already visible here — locally
               defined or inherited along another path — and overrides:
               propagation stops (Section 6.1.2) *)
            ()
          else begin
            let sub' =
              Ops.refine_from db
                ~name:(Ops.primed_name db (Schema_graph.name_of graph sub))
                ~src:(map_or_id ctx tmp) ~prop_name ~target:sub
            in
            map_add ctx ~old_cid:sub ~new_cid:sub';
            walk sub
          end)
      (Generation.direct_subs_in_view graph view tmp)
  in
  walk cls;
  stitch ctx;
  refresh_members ctx;
  finish ctx

(* ------------------------------------------------------------------ *)
(* 6.2 / 6.4: delete_attribute, delete_method                           *)
(* ------------------------------------------------------------------ *)

let delete_property db view ~cls_name ~prop_name ~want_stored =
  let ctx = make_ctx db view in
  let graph = Database.graph db in
  let cls = resolve view cls_name in
  let view_set = View_schema.class_set view in
  (match Type_info.find graph cls prop_name with
  | None -> rejected "%s is not defined for %s" prop_name cls_name
  | Some (Type_info.Conflict _) -> ()
  | Some (Type_info.Single p) ->
    if want_stored && not (Prop.is_stored p) then
      rejected "%s is a method; use delete_method" prop_name;
    if (not want_stored) && Prop.is_stored p then
      rejected "%s is an attribute; use delete_attribute" prop_name);
  (* only local properties may be deleted (full-inheritance invariant) —
     where "local" is either a genuinely local (possibly overriding)
     definition, or view-relative local: the class is the uppermost one in
     the view exposing the property (Section 6.2.1) *)
  if
    (not (Klass.has_local_prop (Schema_graph.find_exn graph cls) prop_name))
    && not (Type_info.is_uppermost_in graph ~view:view_set cls prop_name)
  then
    rejected "%s is inherited within the view; delete it at its uppermost class"
      prop_name;
  (* the property identity being deleted at [cls] *)
  let deleted_uid =
    match Type_info.find graph cls prop_name with
    | Some (Type_info.Single p) -> Some p.Prop.uid
    | Some (Type_info.Conflict _) | None -> None
  in
  (* a suppressed same-named attribute to restore afterwards *)
  let suppressed = Type_info.inherited_candidates graph cls prop_name in
  let suppressed =
    List.filter
      (fun (p : Prop.t) -> Some p.uid <> deleted_uid)
      suppressed
  in
  (* hide the property from cls and its view subclasses, stopping where a
     different local definition overrides it *)
  let rec walk tmp =
    List.iter
      (fun sub ->
        if mapped ctx sub = None then begin
          let k = Schema_graph.find_exn graph sub in
          let overriding =
            match Klass.local_prop k prop_name with
            | Some p -> Some p.Prop.uid <> deleted_uid
            | None -> false
          in
          if not overriding then begin
            let sub' =
              Ops.hide db
                ~name:(Ops.primed_name db (Schema_graph.name_of graph sub))
                ~props:[ prop_name ] ~src:sub
            in
            map_add ctx ~old_cid:sub ~new_cid:sub';
            walk sub
          end
        end)
      (Generation.direct_subs_in_view graph view tmp)
  in
  let cls' =
    Ops.hide db ~name:(Ops.primed_name db (Schema_graph.name_of graph cls))
      ~props:[ prop_name ] ~src:cls
  in
  map_add ctx ~old_cid:cls ~new_cid:cls';
  walk cls;
  (* restore the suppressed attribute, if any (Section 6.2.2) *)
  (match suppressed with
  | [] -> ()
  | p :: _ ->
    let super_c = p.Prop.origin in
    ctx.mapping :=
      List.map
        (fun (old_cid, hidden_cid) ->
          let restored =
            Ops.refine_from db
              ~name:(Ops.primed_name db (Schema_graph.name_of graph old_cid))
              ~src:super_c ~prop_name ~target:hidden_cid
          in
          (old_cid, restored))
        !(ctx.mapping));
  stitch ctx;
  refresh_members ctx;
  finish ctx

(* ------------------------------------------------------------------ *)
(* 6.5: add_edge                                                        *)
(* ------------------------------------------------------------------ *)

let add_edge db view ~sup_name ~sub_name =
  let ctx = make_ctx db view in
  let graph = Database.graph db in
  let csup = resolve view sup_name and csub = resolve view sub_name in
  if Oid.equal csup csub then rejected "add_edge: %s-%s is a self edge" sup_name sub_name;
  if Schema_graph.is_strict_ancestor graph ~anc:csup ~desc:csub then
    rejected "add_edge: %s is already a superclass of %s" sup_name sub_name;
  if Schema_graph.is_strict_ancestor graph ~anc:csub ~desc:csup then
    rejected "add_edge: %s-%s would create a cycle" sup_name sub_name;
  let sup_props = Tse_classifier.Classification.intended_type db (Klass.Hide ([], csup)) in
  (* phase 1: the new subclass side inherits C_sup's properties; same-named
     local properties override (footnote 15) *)
  let refine_with w =
    let props =
      List.filter
        (fun (p : Prop.t) ->
          match Type_info.find graph w p.name with
          | Some _ -> false (* overriding: not added *)
          | None -> true)
        sup_props
    in
    if props = [] then
      (* nothing to inherit: still prime the class so extent bookkeeping
         and renaming stay uniform — an empty refine is just the identity,
         realized as select-true to keep the derivation well-formed *)
      Ops.select db ~name:(Ops.primed_name db (Schema_graph.name_of graph w))
        ~src:w (Expr.bool true)
    else
      Ops.refine db ~name:(Ops.primed_name db (Schema_graph.name_of graph w))
        ~props ~src:w
  in
  let rec walk_subs tmp =
    List.iter
      (fun sub ->
        if mapped ctx sub = None then begin
          let sub' = refine_with sub in
          map_add ctx ~old_cid:sub ~new_cid:sub';
          walk_subs sub
        end)
      (Generation.direct_subs_in_view graph view tmp)
  in
  let csub' = refine_with csub in
  map_add ctx ~old_cid:csub ~new_cid:csub';
  walk_subs csub;
  (* phase 2: the extent of C_sub flows into C_sup and its superclasses
     (top-down so each union classifies beneath the previous one) *)
  let super_chain =
    let ancs =
      Oid.Set.inter (Schema_graph.ancestors graph csup) (View_schema.class_set view)
    in
    let in_order =
      List.filter (fun c -> Oid.Set.mem c ancs) (Schema_graph.topo_order graph)
    in
    in_order @ [ csup ]
  in
  List.iter
    (fun v ->
      if not (Schema_graph.is_strict_ancestor graph ~anc:v ~desc:csub) then begin
        let v' =
          Ops.union db ~name:(Ops.primed_name db (Schema_graph.name_of graph v))
            v
            (map_or_id ctx csub)
        in
        map_add ctx ~old_cid:v ~new_cid:v'
      end)
    super_chain;
  stitch ctx;
  (* the new is-a relationship itself *)
  let new_sup = map_or_id ctx csup and new_sub = map_or_id ctx csub in
  if not (Schema_graph.is_ancestor_or_self graph ~anc:new_sup ~desc:new_sub) then
    Schema_graph.add_edge graph ~sup:new_sup ~sub:new_sub;
  refresh_members ctx;
  finish ctx

(* ------------------------------------------------------------------ *)
(* 6.6: delete_edge                                                     *)
(* ------------------------------------------------------------------ *)

(* The class plus its principal-source chain: Select/Hide/Refine follow
   their source, Refine_from its target, and the binary operators their
   first operand — the thread along which the translator derives "the same
   view class, one version earlier". *)
let version_lineage graph cid =
  let rec go acc c =
    let acc = Oid.Set.add c acc in
    match (Schema_graph.find_exn graph c).Klass.kind with
    | Klass.Base -> acc
    | Klass.Virtual d ->
      let next =
        match d with
        | Klass.Select (s, _) | Klass.Hide (_, s) | Klass.Refine (_, s) -> s
        | Klass.Refine_from { target; _ } -> target
        | Klass.Union (a, _) | Klass.Intersect (a, _) | Klass.Difference (a, _)
          -> a
      in
      if Oid.Set.mem next acc then acc else go acc next
  in
  go Oid.Set.empty cid

(* Global descendant reachability that avoids the deleted edge — the
   "assuming the edge has been deleted" hypothetical of Section 6.6. It
   must run on the global graph, not on the generated view hierarchy:
   transitive reduction erases the redundant-but-vital direct edges of
   Figure 11's diamond. An edge (x, y) is treated as deleted when x is a
   version of the edge's superclass end and y a version of its subclass
   end: such an edge is the deleted relationship itself, possibly wearing
   an older name. Every other path — through another view class, or
   through an unrelated global class outside the view — is a different
   is-a relationship and stays open; the previous whole-source-lineage
   exclusion wrongly closed those alternate routes, which is what the
   Proposition B replays pinned. *)
let reaches_avoiding graph ~esup ~esub ~blocked ~sub_versions a b =
  let seen = ref Oid.Set.empty in
  let rec go c =
    Oid.equal c b
    || List.exists
         (fun d ->
           (not (Oid.equal c esup && Oid.equal d esub))
           && (not (Oid.Set.mem d !seen))
           && (not (Oid.Set.mem d sub_versions && Oid.Set.mem c blocked))
           &&
           (seen := Oid.Set.add d !seen;
            go d))
         (Schema_graph.subs graph c)
  in
  (not (Oid.equal a b)) && go a

(* The avoiding-reachability test for the deletion of view edge
   (esup, esub), with the blocked version sets precomputed. *)
let deleted_edge_avoiding graph ~esup ~esub =
  let sub_versions = version_lineage graph esub in
  let blocked = version_lineage graph esup in
  reaches_avoiding graph ~esup ~esub ~blocked ~sub_versions

(* Uppermost providers within the view of the property identified by
   [uid]: view classes exposing it with no view member above them doing
   so. *)
let view_providers graph view ~name ~uid =
  let has c =
    match Type_info.find graph c name with
    | Some (Type_info.Single p) -> p.Prop.uid = uid
    | Some (Type_info.Conflict ps) ->
      List.exists (fun (p : Prop.t) -> p.Prop.uid = uid) ps
    | None -> false
  in
  List.filter
    (fun c ->
      has c
      && not
           (List.exists
              (fun other ->
                (not (Oid.equal other c))
                && has other
                && Schema_graph.is_strict_ancestor graph ~anc:other ~desc:c)
              (View_schema.classes view)))
    (View_schema.classes view)

(* findProperties: the properties [w] inherits only through the deleted
   edge — no uppermost provider still reaches [w] once the edge is gone. *)
let view_find_properties db view ~esup ~esub w =
  let graph = Database.graph db in
  let avoiding = deleted_edge_avoiding graph ~esup ~esub in
  Type_info.full_type graph w
  |> List.filter_map (fun (name, entry) ->
         let candidates =
           match entry with
           | Type_info.Single p -> [ p ]
           | Type_info.Conflict ps -> ps
         in
         let survives (p : Prop.t) =
           let providers = view_providers graph view ~name ~uid:p.Prop.uid in
           List.exists (fun c -> Oid.equal c w || avoiding c w) providers
           (* a property with no in-view provider comes from outside the
              view (or is local): it cannot be lost by the edge *)
           || providers = []
         in
         if List.exists survives candidates then None else Some name)

let delete_edge db view ~sup_name ~sub_name ~connected_to =
  let ctx = make_ctx db view in
  let graph = Database.graph db in
  let csup = resolve view sup_name and csub = resolve view sub_name in
  let view_edges = Generation.edges graph view in
  if
    not
      (List.exists
         (fun (s, b) -> Oid.equal s csup && Oid.equal b csub)
         view_edges)
  then rejected "delete_edge: %s is not a direct superclass of %s in the view" sup_name sub_name;
  let upper =
    Option.map
      (fun name ->
        let c = resolve view name in
        if not (Schema_graph.is_strict_ancestor graph ~anc:c ~desc:csup) then
          rejected "delete_edge: %s must be a superclass of %s" name sup_name;
        c)
      connected_to
  in
  (* phase A: superclasses of C_sup lose C_sub's instances, except those
     still visible through other paths (the commonSub correction) *)
  let avoiding = deleted_edge_avoiding graph ~esup:csup ~esub:csub in
  let still_super_without_edge v = avoiding v csub in
  let common_sub_view v =
    let commons =
      List.filter
        (fun d -> avoiding v d && avoiding csub d)
        (View_schema.classes view)
    in
    List.filter
      (fun d ->
        not
          (List.exists
             (fun d' -> (not (Oid.equal d d')) && avoiding d' d)
             commons))
      commons
  in
  let super_chain =
    let ancs =
      Oid.Set.inter (Schema_graph.ancestors graph csup) (View_schema.class_set view)
    in
    let in_order =
      List.filter (fun c -> Oid.Set.mem c ancs) (Schema_graph.topo_order graph)
    in
    in_order @ [ csup ]
  in
  List.iter
    (fun v ->
      if not (still_super_without_edge v) then begin
        let vname = Schema_graph.name_of graph v in
        let still_visible = common_sub_view v in
        let d = Ops.difference db ~name:(Ops.fresh_name db (vname ^ "$diff")) v csub in
        let v' =
          match still_visible with
          | [] ->
            (* nothing to restore: v' is just the difference, under v's
               primed name *)
            let v' = d in
            let k = Schema_graph.find_exn graph v' in
            k.Klass.name <- Ops.primed_name db vname;
            v'
          | xs ->
            let x =
              List.fold_left
                (fun acc c ->
                  Ops.union db ~name:(Ops.fresh_name db (vname ^ "$x")) acc c)
                (List.hd xs) (List.tl xs)
            in
            Ops.union db ~name:(Ops.primed_name db vname) d x
        in
        map_add ctx ~old_cid:v ~new_cid:v'
      end)
    super_chain;
  (* phase B: subclasses of C_sub lose the properties inherited only
     through the deleted edge *)
  let subs_chain = Generation.descendants_in_view graph view csub in
  List.iter
    (fun w ->
      let y = view_find_properties db view ~esup:csup ~esub:csub w in
      if y <> [] then begin
        let w' =
          Ops.hide db ~name:(Ops.primed_name db (Schema_graph.name_of graph w))
            ~props:y ~src:w
        in
        map_add ctx ~old_cid:w ~new_cid:w'
      end)
    subs_chain;
  stitch ctx ~except:[ (csup, csub) ];
  (* reattachment when C_sub would be left disconnected in the view *)
  (match upper with
  | Some u ->
    let u' = map_or_id ctx u and sub' = map_or_id ctx csub in
    if not (Schema_graph.is_ancestor_or_self graph ~anc:u' ~desc:sub') then
      Schema_graph.add_edge graph ~sup:u' ~sub:sub'
  | None -> ());
  refresh_members ctx;
  finish ctx

(* ------------------------------------------------------------------ *)
(* 6.7: add_class                                                       *)
(* ------------------------------------------------------------------ *)

(* Replay the derivation chain of [cid], substituting each origin base
   class with its fresh empty subclass (Figure 13 (e)). *)
let rec replay db ~subst ~basename cid =
  let graph = Database.graph db in
  let k = Schema_graph.find_exn graph cid in
  match k.kind with
  | Klass.Base -> begin
    match List.assoc_opt (Oid.to_int cid) subst with
    | Some c -> c
    | None -> rejected "add_class: origin %s not substituted" k.name
  end
  | Klass.Virtual d ->
    let sub c = replay db ~subst ~basename c in
    (* the name must be drawn after the sources are replayed, or nested
       replays would race for the same fresh name *)
    let fresh () = Ops.fresh_name db basename in
    (match d with
    | Klass.Select (c, pred) ->
      let src = sub c in
      Ops.select db ~name:(fresh ()) ~src pred
    | Klass.Hide (ps, c) ->
      let src = sub c in
      Ops.hide db ~name:(fresh ()) ~props:ps ~src
    | Klass.Refine (props, c) ->
      let src = sub c in
      Ops.refine db ~name:(fresh ()) ~props ~src
    | Klass.Refine_from { src; prop_name; target } ->
      let src = sub src in
      let target = sub target in
      Ops.refine_from db ~name:(fresh ()) ~src ~prop_name ~target
    | Klass.Union (a, b) ->
      let a = sub a and b = sub b in
      Ops.union db ~name:(fresh ()) a b
    | Klass.Intersect (a, b) ->
      let a = sub a and b = sub b in
      Ops.intersect db ~name:(fresh ()) a b
    | Klass.Difference (a, b) ->
      let a = sub a and b = sub b in
      Ops.difference db ~name:(fresh ()) a b)

let add_class db view ~cls_name ~connected_to =
  let graph = Database.graph db in
  if View_schema.cid_of view cls_name <> None then
    rejected "add_class: %s already in view" cls_name;
  let global_name = Ops.fresh_name db cls_name in
  let cadd =
    match connected_to with
    | None ->
      (* no anchor: a fresh empty base class under the root *)
      let cid =
        Schema_graph.register_base graph ~name:global_name ~props:[] ~supers:[]
      in
      Database.note_new_class db cid;
      cid
    | Some sup_name ->
      let csup = resolve view sup_name in
      let origins = Macros.origin_classes db csup in
      let subst =
        List.map
          (fun origin ->
            let x =
              Schema_graph.register_base graph
                ~name:(Ops.fresh_name db (cls_name ^ "$x"))
                ~props:[] ~supers:[ origin ]
            in
            Database.note_new_class db x;
            (Oid.to_int origin, x))
          origins
      in
      let cadd =
        match Schema_graph.find_exn graph csup with
        | { Klass.kind = Klass.Base; _ } ->
          (* base anchor: the substituted class itself is the new class *)
          let x = List.assoc (Oid.to_int csup) subst in
          (Schema_graph.find_exn graph x).Klass.name <- global_name;
          x
        | _ ->
          let c = replay db ~subst ~basename:(cls_name ^ "$r") csup in
          (Schema_graph.find_exn graph c).Klass.name <- global_name;
          c
      in
      (* guaranteed subclass (Section 6.7.3): make the view edge real *)
      if not (Schema_graph.is_ancestor_or_self graph ~anc:csup ~desc:cadd) then
        Schema_graph.add_edge graph ~sup:csup ~sub:cadd;
      cadd
  in
  let view' = View_schema.copy view in
  View_schema.add_class view' ~as_name:cls_name graph cadd;
  view'

(* ------------------------------------------------------------------ *)
(* 6.8 / 6.9: delete_class, insert_class, delete_class_2                *)
(* ------------------------------------------------------------------ *)

let delete_class _db view ~cls_name =
  let cid = resolve view cls_name in
  let view' = View_schema.copy view in
  View_schema.remove_class view' cid;
  view'

let rec apply db view change =
  match change with
  | Change.Add_attribute { cls; def } ->
    add_property db view ~cls_name:cls ~prop_name:def.attr_name
      ~mk_prop:(fun () ->
        Prop.stored ~origin:(Oid.of_int 0) ~default:def.default
          ~required:def.required def.attr_name def.ty)
  | Change.Add_method { cls; method_name; body } ->
    add_property db view ~cls_name:cls ~prop_name:method_name ~mk_prop:(fun () ->
        Prop.method_ ~origin:(Oid.of_int 0) method_name body)
  | Change.Delete_attribute { cls; attr_name } ->
    delete_property db view ~cls_name:cls ~prop_name:attr_name ~want_stored:true
  | Change.Delete_method { cls; method_name } ->
    delete_property db view ~cls_name:cls ~prop_name:method_name
      ~want_stored:false
  | Change.Add_edge { sup; sub } -> add_edge db view ~sup_name:sup ~sub_name:sub
  | Change.Delete_edge { sup; sub; connected_to } ->
    delete_edge db view ~sup_name:sup ~sub_name:sub ~connected_to
  | Change.Add_class { cls; connected_to } ->
    add_class db view ~cls_name:cls ~connected_to
  | Change.Delete_class { cls } -> delete_class db view ~cls_name:cls
  | Change.Rename_class { old_name; new_name } ->
    let cid = resolve view old_name in
    if View_schema.cid_of view new_name <> None then
      rejected "rename_class: %s already names a class in the view" new_name;
    let view' = View_schema.copy view in
    View_schema.rename view' cid new_name;
    view'
  | Change.Partition_class { cls; predicate; into_true; into_false } ->
    (* Section 9 extension, object-preserving form: the partitions are two
       complementary select classes below the original *)
    let graph = Database.graph db in
    let cid = resolve view cls in
    List.iter
      (fun n ->
        if View_schema.cid_of view n <> None then
          rejected "partition_class: %s already in view" n)
      [ into_true; into_false ];
    let ctrue =
      try Ops.select db ~name:(Ops.fresh_name db into_true) ~src:cid predicate
      with Ops.Error m -> rejected "partition_class: %s" m
    in
    let cfalse =
      Ops.select db
        ~name:(Ops.fresh_name db into_false)
        ~src:cid (Expr.Not predicate)
    in
    let view' = View_schema.copy view in
    View_schema.add_class view' ~as_name:into_true graph ctrue;
    View_schema.add_class view' ~as_name:into_false graph cfalse;
    view'
  | Change.Coalesce_classes { a; b; as_name } ->
    let graph = Database.graph db in
    let ca = resolve view a and cb = resolve view b in
    if Oid.equal ca cb then rejected "coalesce_classes: same class";
    (match View_schema.cid_of view as_name with
    | Some c when not (Oid.equal c ca || Oid.equal c cb) ->
      rejected "coalesce_classes: %s already in view" as_name
    | Some _ | None -> ());
    let fused =
      try Ops.union db ~name:(Ops.fresh_name db as_name) ca cb
      with Ops.Error m -> rejected "coalesce_classes: %s" m
    in
    let view' = View_schema.copy view in
    View_schema.remove_class view' ca;
    View_schema.remove_class view' cb;
    View_schema.add_class view' ~as_name graph fused;
    view'
  | Change.Insert_class { cls; sup; sub } ->
    (* Section 6.9.1: add_class + add_edge *)
    ignore (resolve view sup);
    ignore (resolve view sub);
    let view = apply db view (Change.Add_class { cls; connected_to = Some sup }) in
    apply db view (Change.Add_edge { sup = cls; sub })
  | Change.Delete_class_2 { cls } ->
    (* Section 6.9.2: rewire every subclass to the superclasses, then cut
       the class loose and drop it from the view *)
    let graph = Database.graph db in
    let cdel = resolve view cls in
    let subs = Generation.direct_subs_in_view graph view cdel in
    let sups = Generation.direct_supers_in_view graph view cdel in
    let name_of_in v c =
      match View_schema.local_name v c with
      | Some n -> n
      | None -> Schema_graph.name_of graph c
    in
    let view =
      List.fold_left
        (fun view sub ->
          let sub_name = name_of_in view sub in
          let view =
            apply db view
              (Change.Delete_edge
                 { sup = cls; sub = sub_name; connected_to = None })
          in
          List.fold_left
            (fun view sup ->
              let sup_name = name_of_in view sup in
              try
                apply db view (Change.Add_edge { sup = sup_name; sub = sub_name })
              with Change.Rejected _ -> view (* already a superclass *))
            view sups)
        view subs
    in
    (* finally cut the class loose from its own superclasses: its local
       extent becomes invisible to them (Section 6.9.2) *)
    let view =
      List.fold_left
        (fun view sup ->
          let sup_name = name_of_in view sup in
          try
            apply db view
              (Change.Delete_edge
                 { sup = sup_name; sub = cls; connected_to = None })
          with Change.Rejected _ -> view)
        view sups
    in
    apply db view (Change.Delete_class { cls })

let class_mapping db view change =
  (* re-run on a context to surface the mapping; apply builds it anew *)
  let before = View_schema.classes view in
  let after = apply db view change in
  List.filter_map
    (fun old_cid ->
      match View_schema.local_name view old_cid with
      | None -> None
      | Some lname -> (
        match View_schema.cid_of after lname with
        | Some new_cid when not (Oid.equal new_cid old_cid) ->
          Some (old_cid, new_cid)
        | Some _ | None -> None))
    before
